// Benchmarks regenerating every table and figure of the paper's evaluation
// (Table 1, Figures 5-8), plus ablation benches for the design choices
// DESIGN.md calls out (utility variants, step-size policies, baselines,
// dynamic adaptation) and micro-benchmarks of the optimizer, simulator and
// distributed runtime.
//
// Custom metrics reported per benchmark:
//
//	utility        final aggregate utility
//	iters          iterations/rounds until convergence (or budget)
//	laterr_pct     mean per-subtask latency error vs the published Table 1
//	viol           max constraint violation at the end of the run
//
// Run with: go test -bench=. -benchmem
package lla_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"testing"
	"time"

	"lla"
	"lla/internal/baseline"
	"lla/internal/core"
	"lla/internal/eval"
	"lla/internal/fleet"
	"lla/internal/price"
	rec "lla/internal/recover"
	"lla/internal/sim"
	"lla/internal/task"
	"lla/internal/transport"
	"lla/internal/wire"
	"lla/internal/workload"
)

// BenchmarkTable1 regenerates Table 1: LLA on the base workload to
// convergence; reports the achieved utility and the mean relative latency
// error against the published values.
func BenchmarkTable1(b *testing.B) {
	ref := workload.Table1LatenciesMs()
	for i := 0; i < b.N; i++ {
		w := workload.Base()
		e, err := core.NewEngine(w, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		snap, ok := e.RunUntilConverged(8000, 1e-8, 50, 1e-3)
		if !ok {
			b.Fatal("did not converge")
		}
		var sumRel float64
		var n int
		for ti, tk := range w.Tasks {
			for si, s := range tk.Subtasks {
				want := ref[tk.Name][s.Name]
				sumRel += math.Abs(snap.LatMs[ti][si]-want) / want
				n++
			}
		}
		b.ReportMetric(snap.Utility, "utility")
		b.ReportMetric(float64(snap.Iteration), "iters")
		b.ReportMetric(sumRel/float64(n)*100, "laterr_pct")
	}
}

// BenchmarkFig5StepSizes regenerates Figure 5: utility-vs-iteration for
// fixed gamma in {0.1, 1, 10} and the adaptive heuristic (500 iterations
// each, as in the paper).
func BenchmarkFig5StepSizes(b *testing.B) {
	configs := []struct {
		name string
		step core.StepPolicy
	}{
		{"gamma=0.1", core.StepPolicy{Gamma: 0.1}},
		{"gamma=1", core.StepPolicy{Gamma: 1}},
		{"gamma=10", core.StepPolicy{Gamma: 10}},
		{"adaptive", core.StepPolicy{Adaptive: true, Gamma: 1}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := core.NewEngine(workload.Base(), core.Config{Step: cfg.step})
				if err != nil {
					b.Fatal(err)
				}
				e.Run(500, nil)
				snap := e.Snapshot()
				b.ReportMetric(snap.Utility, "utility")
				b.ReportMetric(math.Max(snap.MaxResourceViolation, snap.MaxPathViolationFrac), "viol")
			}
		})
	}
}

// BenchmarkFig6Scalability regenerates Figure 6: convergence at 3, 6 and 12
// tasks with overprovisioned critical times.
func BenchmarkFig6Scalability(b *testing.B) {
	for _, factor := range []int{1, 2, 4} {
		b.Run(strconv.Itoa(3*factor)+"tasks", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := workload.Replicate(workload.Base(), factor, 8)
				if err != nil {
					b.Fatal(err)
				}
				e, err := core.NewEngine(w, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				snap, ok := e.RunUntilConverged(4000, 1e-8, 50, 1e-2)
				if !ok {
					b.Fatal("did not converge")
				}
				b.ReportMetric(snap.Utility, "utility")
				b.ReportMetric(snap.Utility/float64(3*factor), "utility_per_task")
				b.ReportMetric(float64(snap.Iteration), "iters")
			}
		})
	}
}

// BenchmarkFig7Schedulability regenerates Figure 7: the unschedulable
// six-task workload; reports the residual violation and the worst
// critical-path overshoot ratio.
func BenchmarkFig7Schedulability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := workload.Replicate(workload.Base(), 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		e, err := core.NewEngine(w, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		e.Run(500, nil)
		snap := e.Snapshot()
		worst := 0.0
		for ti := range snap.CriticalPathMs {
			worst = math.Max(worst, snap.CriticalPathMs[ti]/snap.CriticalTimeMs[ti])
		}
		b.ReportMetric(math.Max(snap.MaxResourceViolation, snap.MaxPathViolationFrac), "viol")
		b.ReportMetric(worst, "critpath_ratio")
	}
}

// BenchmarkFig8ErrorCorrection regenerates Figure 8: the closed loop of
// optimizer, simulated testbed and online model error correction; reports
// the post-correction fast and slow shares (paper: 0.20 and 0.25).
func BenchmarkFig8ErrorCorrection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig8(eval.Options{Quick: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		fast, _ := strconv.ParseFloat(res.Tables[0].Rows[0][2], 64)
		slow, _ := strconv.ParseFloat(res.Tables[0].Rows[1][2], 64)
		b.ReportMetric(fast, "fast_share")
		b.ReportMetric(slow, "slow_share")
	}
}

// BenchmarkWeightVariants is the Section 3.2 ablation: sum vs normalized vs
// raw path weighting on the base workload.
func BenchmarkWeightVariants(b *testing.B) {
	for _, mode := range []task.WeightMode{task.WeightSum, task.WeightPathNormalized, task.WeightPathRaw} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := core.NewEngine(workload.Base(), core.Config{WeightMode: mode})
				if err != nil {
					b.Fatal(err)
				}
				snap, ok := e.RunUntilConverged(8000, 1e-8, 50, 1e-2)
				if !ok {
					b.Fatal("did not converge")
				}
				b.ReportMetric(snap.Utility, "utility")
				b.ReportMetric(float64(snap.Iteration), "iters")
			}
		})
	}
}

// BenchmarkBaselines compares LLA against the centralized reference solver
// and the deadline-slicing heuristics on the base workload.
func BenchmarkBaselines(b *testing.B) {
	b.Run("lla", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := core.NewEngine(workload.Base(), core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			snap, _ := e.RunUntilConverged(8000, 1e-8, 50, 1e-3)
			b.ReportMetric(snap.Utility, "utility")
			b.ReportMetric(math.Max(snap.MaxResourceViolation, snap.MaxPathViolationFrac), "viol")
		}
	})
	b.Run("central", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, ev, err := baseline.Central(workload.Base(), baseline.CentralConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(ev.Utility, "utility")
			b.ReportMetric(math.Max(ev.MaxResourceViolation, ev.MaxPathViolationFrac), "viol")
		}
	})
	for _, bl := range []struct {
		name string
		mk   func(*workload.Workload) (*baseline.Assignment, error)
	}{
		{"even-slice", baseline.EvenSlice},
		{"wcet-proportional", baseline.ProportionalSlice},
	} {
		b.Run(bl.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := workload.Base()
				a, err := bl.mk(w)
				if err != nil {
					b.Fatal(err)
				}
				ev, err := baseline.Evaluate(w, a, task.WeightPathNormalized)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ev.Utility, "utility")
				b.ReportMetric(math.Max(ev.MaxResourceViolation, ev.MaxPathViolationFrac), "viol")
			}
		})
	}
}

// BenchmarkAdaptation measures re-convergence after runtime variations (the
// abstract's "adapts to both workload and resource variations").
func BenchmarkAdaptation(b *testing.B) {
	b.Run("availability-drop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The base workload has zero slack (every resource saturated,
			// every path at its deadline), so any capacity loss is
			// infeasible; use the overprovisioned variant.
			w, err := workload.Replicate(workload.Base(), 1, 4)
			if err != nil {
				b.Fatal(err)
			}
			e, err := core.NewEngine(w, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := e.RunUntilConverged(8000, 1e-8, 50, 1e-3); !ok {
				b.Fatal("initial convergence failed")
			}
			before := e.Iteration()
			if err := e.SetAvailability("r0", 0.7); err != nil {
				b.Fatal(err)
			}
			snap, ok := e.RunUntilConverged(8000, 1e-8, 50, 1e-2)
			if !ok {
				b.Fatal("re-convergence failed")
			}
			b.ReportMetric(float64(snap.Iteration-before), "reconverge_iters")
			b.ReportMetric(snap.Utility, "utility")
		}
	})
	b.Run("rate-surge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := core.NewEngine(workload.Prototype(), core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := e.RunUntilConverged(8000, 1e-7, 20, 1e-2); !ok {
				b.Fatal("initial convergence failed")
			}
			before := e.Iteration()
			// The slow tasks' arrival rate rises ~23%: min share 0.13 ->
			// 0.16 (a larger surge would exceed the CPUs' capacity given
			// the fast tasks' deadline-driven 0.286 shares).
			for _, tn := range []string{"task3", "task4"} {
				for si := 1; si <= 3; si++ {
					name := "T" + tn[4:] + strconv.Itoa(si)
					if err := e.SetMinShare(tn, name, 0.16); err != nil {
						b.Fatal(err)
					}
				}
			}
			snap, ok := e.RunUntilConverged(8000, 1e-7, 20, 1e-2)
			if !ok {
				b.Fatal("re-convergence failed")
			}
			b.ReportMetric(float64(snap.Iteration-before), "reconverge_iters")
		}
	})
}

// BenchmarkEngineStep measures the per-iteration cost of the synchronous
// optimizer on the base workload (21 subtasks, 8 resources).
func BenchmarkEngineStep(b *testing.B) {
	e, err := core.NewEngine(workload.Base(), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepLarge measures the per-iteration cost at 12 tasks.
func BenchmarkEngineStepLarge(b *testing.B) {
	w, err := workload.Replicate(workload.Base(), 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEngine(w, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkScale measures steady-state Step cost across replication
// factors (Section 5.3's scaling axis) for the serial path (workers=1) and
// the sharded parallel path (workers=0, i.e. GOMAXPROCS). Compare the
// matching sub-benchmarks for the parallel speedup at each scale; allocs/op
// must be 0 for every variant.
func BenchmarkScale(b *testing.B) {
	for _, factor := range []int{8, 32, 128} {
		for _, workers := range []int{1, 0} {
			label := "parallel"
			if workers == 1 {
				label = "serial"
			}
			b.Run(fmt.Sprintf("x%d/%s", factor, label), func(b *testing.B) {
				w, err := workload.Replicate(workload.Base(), factor, 2)
				if err != nil {
					b.Fatal(err)
				}
				e, err := core.NewEngine(w, core.Config{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				for i := 0; i < 30; i++ {
					e.Step() // settle into the steady state
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
				b.ReportMetric(float64(e.Workers()), "workers")
			})
		}
	}
}

// BenchmarkScaleParallel runs the paper's 64-fold replicated workload
// through both engine variants and reports the parallel speedup directly.
// The timed loop is the parallel engine's steady-state Step; allocs/op must
// report 0.
func BenchmarkScaleParallel(b *testing.B) {
	w, err := workload.Replicate(workload.Base(), 64, 2)
	if err != nil {
		b.Fatal(err)
	}
	serial, err := core.NewEngine(w, core.Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer serial.Close()
	par, err := core.NewEngine(w, core.Config{Workers: 0})
	if err != nil {
		b.Fatal(err)
	}
	defer par.Close()
	const probe = 300
	for i := 0; i < 30; i++ {
		serial.Step()
		par.Step()
	}
	start := time.Now()
	for i := 0; i < probe; i++ {
		serial.Step()
	}
	serialNs := float64(time.Since(start).Nanoseconds()) / probe
	start = time.Now()
	for i := 0; i < probe; i++ {
		par.Step()
	}
	parNs := float64(time.Since(start).Nanoseconds()) / probe
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.Step()
	}
	b.ReportMetric(serialNs/parNs, "speedup")
	b.ReportMetric(serialNs, "serial_ns/iter")
	b.ReportMetric(float64(par.Workers()), "workers")
}

// BenchmarkEngineStepConverged measures the steady-state Step cost after the
// trajectory has frozen, dense vs sparse, on the Fig 6-scale workload (12
// tasks, 84 subtasks). This is the active-set path's headline number: past
// convergence the sparse engine only verifies fingerprints, so its ns/op
// must sit far below the dense sweep while producing identical bits.
// skipped_pct reports the fraction of controller solves skipped during the
// timed loop (0 for dense, ~100 for sparse at a frozen fixed point).
func BenchmarkEngineStepConverged(b *testing.B) {
	for _, variant := range []struct {
		name   string
		sparse core.SparseMode
	}{
		{"dense", core.SparseOff},
		{"sparse", core.SparseOn},
	} {
		b.Run(variant.name, func(b *testing.B) {
			w, err := workload.Replicate(workload.Base(), 4, 8)
			if err != nil {
				b.Fatal(err)
			}
			e, err := core.NewEngine(w, core.Config{Sparse: variant.sparse})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			e.Run(600, nil) // well past the bitwise freeze (~iteration 115)
			e.ResetSparseStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
			b.StopTimer()
			st := e.SparseStats()
			if total := st.SkippedSolves + st.ExecutedSolves; total > 0 {
				b.ReportMetric(float64(st.SkippedSolves)/float64(total)*100, "skipped_pct")
			} else {
				b.ReportMetric(0, "skipped_pct")
			}
		})
	}
}

// BenchmarkFig6ScalabilitySparse models a long-running deployment at Figure
// 6's scales: converge on the sparse path, then keep iterating for 400 more
// steady-state iterations (a live system never stops stepping — that tail
// is where the active set pays). skipped_pct reports the controller solves
// skipped across the entire run, convergence phase included.
func BenchmarkFig6ScalabilitySparse(b *testing.B) {
	for _, factor := range []int{1, 2, 4} {
		b.Run(strconv.Itoa(3*factor)+"tasks", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := workload.Replicate(workload.Base(), factor, 8)
				if err != nil {
					b.Fatal(err)
				}
				e, err := core.NewEngine(w, core.Config{Sparse: core.SparseOn})
				if err != nil {
					b.Fatal(err)
				}
				snap, ok := e.RunUntilConverged(4000, 1e-8, 50, 1e-2)
				if !ok {
					b.Fatal("did not converge")
				}
				e.Run(400, nil) // steady-state tail of a live deployment
				st := e.SparseStats()
				total := st.SkippedSolves + st.ExecutedSolves
				b.ReportMetric(snap.Utility, "utility")
				b.ReportMetric(float64(snap.Iteration), "iters")
				b.ReportMetric(float64(st.SkippedSolves)/float64(total)*100, "skipped_pct")
				e.Close()
			}
		})
	}
}

// BenchmarkRoundsToConverge measures rounds-to-converge per price solver on
// the Figure 6 12-task workload under the KKT stationarity criterion
// (DESIGN.md §12) — the headline metric of the accelerated price dynamics.
// Every solver reaches the same fixed point; the accelerated ones must get
// there in no more rounds than the reference gradient (scripts/benchparse
// gates on the rounds metric, which is deterministic per solver). In the
// distributed runtime each round is a full broadcast round, so rounds saved
// here are network round-trips saved there.
func BenchmarkRoundsToConverge(b *testing.B) {
	for _, solver := range price.Solvers() {
		b.Run(string(solver), func(b *testing.B) {
			var rounds, fallbacks float64
			for i := 0; i < b.N; i++ {
				w, err := workload.Replicate(workload.Base(), 4, 8)
				if err != nil {
					b.Fatal(err)
				}
				e, err := core.NewEngine(w, core.Config{PriceSolver: solver})
				if err != nil {
					b.Fatal(err)
				}
				snap, ok := e.RunUntilKKT(4000, 1e-9, 3, 1e-6)
				if !ok {
					b.Fatalf("solver %s did not reach KKT stationarity", solver)
				}
				rounds = float64(snap.Iteration)
				fallbacks = float64(e.SolverFallbacks())
				e.Close()
			}
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(fallbacks, "fallbacks")
		})
	}
}

// BenchmarkRecoveryRounds measures crash-recovery cost as optimizer rounds
// to KKT stationarity (the same criterion as BenchmarkRoundsToConverge, so
// no convergence-window floor skews the comparison): "cold" re-converges a
// fresh engine from scratch, "warm" restores the on-converged checkpoint
// through the full durable path (encode, WAL write, Latest, decode, Restore)
// and re-converges from there. scripts/benchparse gates warm < cold — the
// checkpoint subsystem's whole value is that a restart never pays the cold
// price.
func BenchmarkRecoveryRounds(b *testing.B) {
	makeWorkload := func() *workload.Workload {
		w, err := workload.Replicate(workload.Base(), 4, 8)
		if err != nil {
			b.Fatal(err)
		}
		return w
	}
	b.Run("cold", func(b *testing.B) {
		var rounds float64
		for i := 0; i < b.N; i++ {
			e, err := core.NewEngine(makeWorkload(), core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			snap, ok := e.RunUntilKKT(4000, 1e-9, 3, 1e-6)
			if !ok {
				b.Fatal("cold run did not reach KKT stationarity")
			}
			rounds = float64(snap.Iteration)
			e.Close()
		}
		b.ReportMetric(rounds, "rounds")
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		w, err := rec.NewWriter(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		e, err := core.NewEngine(makeWorkload(), core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		if _, ok := e.RunUntilKKT(4000, 1e-9, 3, 1e-6); !ok {
			b.Fatal("reference run did not reach KKT stationarity")
		}
		if _, err := w.Save(rec.Capture(e, rec.CaptureOptions{Converged: true})); err != nil {
			b.Fatal(err)
		}
		var rounds float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp, _, err := rec.Latest(dir)
			if err != nil {
				b.Fatal(err)
			}
			restored, err := rec.Restore(cp, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			pre := restored.Probe().Iteration
			snap, ok := restored.RunUntilKKT(4000, 1e-9, 3, 1e-6)
			if !ok {
				b.Fatal("warm restore did not reach KKT stationarity")
			}
			rounds = float64(snap.Iteration - pre)
			restored.Close()
		}
		b.ReportMetric(rounds, "rounds")
	})
}

// BenchmarkFleetConverge measures the hierarchical sharded fleet
// (SHARDING.md). "clustered" runs the mid-size clustered workload through a
// 4-shard fleet and the single-engine reference side by side, reporting the
// aggregator's boundary rounds against the single engine's KKT rounds —
// scripts/benchparse gates rounds <= 2x single_rounds, the hierarchy's
// price-iteration overhead bound. "1m" is ROADMAP item 1's headline scale
// target: one million subtasks partitioned across 16 shards, end to end to
// certification, with serial sweeps; benchparse gates converged == 1.
// "1m-parallel" is the same problem with 16 concurrent shard sweeps —
// benchparse gates identical round counts and the parallel speedup. All runs
// are deterministic (seeded partitions, per-shard bitwise-reproducible
// sweeps, schedule-independent rounds).
func BenchmarkFleetConverge(b *testing.B) {
	b.Run("clustered", func(b *testing.B) {
		var rounds, single, boundary float64
		for i := 0; i < b.N; i++ {
			w, err := workload.Clustered(workload.DefaultClusteredConfig(1))
			if err != nil {
				b.Fatal(err)
			}
			f, err := fleet.New(w, fleet.Config{Shards: 4, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			res, err := f.Run()
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Converged {
				b.Fatal("fleet did not certify")
			}
			e, err := core.NewEngine(w, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			snap, ok := e.RunUntilKKT(20000, 1e-6, 3, 1e-6)
			e.Close()
			if !ok {
				b.Fatal("single engine did not reach KKT stationarity")
			}
			rounds = float64(res.Rounds)
			single = float64(snap.Iteration)
			boundary = float64(res.BoundaryCount)
		}
		b.ReportMetric(rounds, "rounds")
		b.ReportMetric(single, "single_rounds")
		b.ReportMetric(boundary, "boundary")
	})
	// "1m" (serial sweeps) and "1m-parallel" (16 concurrent sweeps) run the
	// identical problem; benchparse gates that the parallel run certifies in
	// the SAME number of rounds (bitwise determinism at the round level) and
	// at <= 0.5x the serial wall-clock when >= 4 CPUs are available.
	bench1m := func(shardWorkers int) func(*testing.B) {
		return func(b *testing.B) {
			cfg := workload.DefaultClusteredConfig(1)
			cfg.Clusters = 16
			cfg.TasksPerCluster = 125
			cfg.ReplicateFactor = 100
			cfg.ResourcesPerCluster = 500
			cfg.MinSubtasks = 5
			cfg.MaxSubtasks = 5
			cfg.ChainOnly = true
			cfg.SlackFactor = 400
			cfg.CrossFraction = 0.002
			var converged, rounds, subtasks float64
			for i := 0; i < b.N; i++ {
				w, err := workload.Clustered(cfg)
				if err != nil {
					b.Fatal(err)
				}
				f, err := fleet.New(w, fleet.Config{Shards: 16, Seed: 1, ShardWorkers: shardWorkers})
				if err != nil {
					b.Fatal(err)
				}
				res, err := f.Run()
				f.Close()
				if err != nil {
					b.Fatal(err)
				}
				converged = 0
				if res.Converged {
					converged = 1
				}
				rounds = float64(res.Rounds)
				subtasks = float64(w.TotalSubtasks())
			}
			b.ReportMetric(converged, "converged")
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(subtasks, "subtasks")
			b.ReportMetric(float64(shardWorkers), "shard_workers")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
		}
	}
	b.Run("1m", bench1m(1))
	b.Run("1m-parallel", bench1m(16))
}

// BenchmarkDistributedRounds measures distributed rounds per second over
// the in-process transport.
func BenchmarkDistributedRounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt, err := lla.NewDistributed(workload.Base(), core.Config{}, transport.NewInproc(transport.InprocConfig{}))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Run(100); err != nil {
			b.Fatal(err)
		}
		rt.Close()
	}
}

// BenchmarkSimulator measures simulated milliseconds per wall second on the
// prototype workload under the quantum scheduler.
func BenchmarkSimulator(b *testing.B) {
	s, err := sim.New(workload.Prototype(), sim.Config{Scheduler: sim.Quantum, QuantumMs: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunFor(100)
	}
}

// BenchmarkWireCodec measures the binary wire codec (PROTOCOL.md) on the
// frame the protocol optimizes for — one round's 64 price updates as a
// single batched frame with dictionary-compressed resource ids — against
// the 64 individual length-prefixed JSON frames the legacy framing ships
// for the same round. benchparse gates binary_bytes at <= json_bytes/10.
func BenchmarkWireCodec(b *testing.B) {
	const entries = 64
	resources := make([]string, entries)
	updates := make([]wire.PriceUpdate, entries)
	jsonBytes := 0
	for i := range resources {
		resources[i] = fmt.Sprintf("resource-%02d", i)
		updates[i] = wire.PriceUpdate{
			Round:    1200 + i,
			Epoch:    3,
			Resource: resources[i],
			Mu:       0.125 + float64(i)/1024,
		}
		one, err := json.Marshal(updates[i])
		if err != nil {
			b.Fatal(err)
		}
		oneFrame, err := json.Marshal(transport.Message{
			From: "res/" + resources[i], To: "ctl/task1", Kind: "price", Payload: one,
		})
		if err != nil {
			b.Fatal(err)
		}
		jsonBytes += 4 + len(oneFrame) // the legacy framing's length prefix
	}
	payload, err := json.Marshal(updates)
	if err != nil {
		b.Fatal(err)
	}
	msg := transport.Message{From: "coordinator", To: "ctl/task1", Kind: "price", Payload: payload}

	dict, err := wire.NewDict(resources, []string{"task1"}, [][]string{{}})
	if err != nil {
		b.Fatal(err)
	}
	codec := wire.NewCodec(dict)
	frame, err := codec.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}

	r := bufio.NewReader(bytes.NewReader(nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := codec.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		r.Reset(bytes.NewReader(enc))
		if _, err := codec.Read(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(frame)), "binary_bytes")
	b.ReportMetric(float64(jsonBytes), "json_bytes")
	b.ReportMetric(float64(jsonBytes)/float64(len(frame)), "compression")
}
