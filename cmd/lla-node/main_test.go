package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rec "lla/internal/recover"
)

func TestRunBadInputs(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-workload", "/nonexistent.json", "-demo"},
		{"-workload", "base", "-role", "warp", "-registry", "/tmp/x"},
		{"-workload", "base"}, // no registry, no demo
		{"-workload", "base", "-demo", "-wire", "smoke-signals"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestHelpListsEveryFlag pins the flag set both ways: every expected flag is
// declared with usage text that renders into the help output, and no flag can
// be added without being listed here (forcing its documentation).
func TestHelpListsEveryFlag(t *testing.T) {
	want := map[string]bool{
		"workload": true, "registry": true, "role": true, "id": true,
		"rounds": true, "demo": true, "print-registry": true,
		"debug-addr": true, "trace": true, "workers": true, "sparse": true,
		"solver": true, "checkpoint-dir": true, "checkpoint-every": true,
		"wire": true, "fleet": true, "shards": true, "shard-workers": true,
	}
	fs, _ := newFlagSet()
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	help := buf.String()
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage text", f.Name)
		}
		if !strings.Contains(help, "-"+f.Name) {
			t.Errorf("help output does not list -%s:\n%s", f.Name, help)
		}
	})
	for name := range want {
		if !got[name] {
			t.Errorf("expected flag -%s is not declared", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("flag -%s is declared but not in the expected list — document it here", name)
		}
	}
}

// TestDemoCheckpoints runs the loopback demo with a checkpoint directory: the
// run must leave decodable checkpoint generations behind, and a second demo
// over the same directory must resume the persisted coordinator epoch.
func TestDemoCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("demo spins up a full TCP deployment")
	}
	dir := t.TempDir()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	args := []string{"-workload", "prototype", "-demo", "-rounds", "200",
		"-checkpoint-dir", dir, "-checkpoint-every", "40"}
	if err := run(context.Background(), args); err != nil {
		t.Fatalf("demo with checkpoints: %v", err)
	}
	cp, _, err := rec.Latest(dir)
	if err != nil {
		t.Fatalf("demo left no decodable checkpoint: %v", err)
	}
	if cp.Workload == nil || len(cp.Workload.Tasks) == 0 {
		t.Error("checkpoint carries no workload")
	}
	if cp.Engine.Iteration == 0 {
		t.Error("checkpoint carries no optimizer progress")
	}
	// Seed the directory with a bumped epoch: the next demo must pick it up.
	wr, err := rec.NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp.Epoch = 4
	if _, err := wr.Save(cp); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args); err != nil {
		t.Fatalf("second demo over reused checkpoint dir: %v", err)
	}
	cp2, _, err := rec.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Epoch != 4 {
		t.Errorf("final checkpoint epoch = %d, want the resumed 4", cp2.Epoch)
	}
}

func TestPrintRegistry(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), []string{"-workload", "base", "-print-registry"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	data := make([]byte, 1<<16)
	n, _ := r.Read(data)
	registry := make(map[string]string)
	if err := json.Unmarshal(data[:n], &registry); err != nil {
		t.Fatalf("registry output not JSON: %v", err)
	}
	// 1 coordinator + 3 controllers + 8 resources.
	if len(registry) != 12 {
		t.Fatalf("registry has %d entries, want 12", len(registry))
	}
	for k := range registry {
		if !strings.HasPrefix(k, "res/") && !strings.HasPrefix(k, "ctl/") && k != "coordinator" {
			t.Errorf("unexpected registry key %q", k)
		}
	}
}

func TestDemoPrototype(t *testing.T) {
	if testing.Short() {
		t.Skip("demo spins up a full TCP deployment")
	}
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run(context.Background(), []string{"-workload", "prototype", "-demo", "-rounds", "300"}); err != nil {
		t.Fatalf("demo: %v", err)
	}
}

// TestFleetMode runs the in-process sharded fleet on the base workload and
// checks it certifies (the command errors if the fleet fails to converge).
func TestFleetMode(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run(context.Background(), []string{"-workload", "base", "-fleet", "-shards", "2", "-workers", "1"}); err != nil {
		t.Fatalf("fleet: %v", err)
	}
}

func TestRegistryFileErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-workload", "base", "-registry", "/nonexistent.json", "-role", "resource", "-id", "r0"}); err == nil {
		t.Fatal("missing registry should fail")
	}
	bad := filepath.Join(t.TempDir(), "reg.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-workload", "base", "-registry", bad, "-role", "resource", "-id", "r0"}); err == nil {
		t.Fatal("corrupt registry should fail")
	}
}

func TestLoadWorkloadJSONFile(t *testing.T) {
	// A valid workload file loads.
	w, err := loadWorkload("base")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name {
		t.Errorf("round trip changed name: %q", back.Name)
	}
	// Corrupt file fails.
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadWorkload(badPath); err == nil {
		t.Fatal("corrupt workload should fail")
	}
}
