package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBadInputs(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-workload", "/nonexistent.json", "-demo"},
		{"-workload", "base", "-role", "warp", "-registry", "/tmp/x"},
		{"-workload", "base"}, // no registry, no demo
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestPrintRegistry(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), []string{"-workload", "base", "-print-registry"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	data := make([]byte, 1<<16)
	n, _ := r.Read(data)
	registry := make(map[string]string)
	if err := json.Unmarshal(data[:n], &registry); err != nil {
		t.Fatalf("registry output not JSON: %v", err)
	}
	// 1 coordinator + 3 controllers + 8 resources.
	if len(registry) != 12 {
		t.Fatalf("registry has %d entries, want 12", len(registry))
	}
	for k := range registry {
		if !strings.HasPrefix(k, "res/") && !strings.HasPrefix(k, "ctl/") && k != "coordinator" {
			t.Errorf("unexpected registry key %q", k)
		}
	}
}

func TestDemoPrototype(t *testing.T) {
	if testing.Short() {
		t.Skip("demo spins up a full TCP deployment")
	}
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run(context.Background(), []string{"-workload", "prototype", "-demo", "-rounds", "300"}); err != nil {
		t.Fatalf("demo: %v", err)
	}
}

func TestRegistryFileErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-workload", "base", "-registry", "/nonexistent.json", "-role", "resource", "-id", "r0"}); err == nil {
		t.Fatal("missing registry should fail")
	}
	bad := filepath.Join(t.TempDir(), "reg.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-workload", "base", "-registry", bad, "-role", "resource", "-id", "r0"}); err == nil {
		t.Fatal("corrupt registry should fail")
	}
}

func TestLoadWorkloadJSONFile(t *testing.T) {
	// A valid workload file loads.
	w, err := loadWorkload("base")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name {
		t.Errorf("round trip changed name: %q", back.Name)
	}
	// Corrupt file fails.
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadWorkload(badPath); err == nil {
		t.Fatal("corrupt workload should fail")
	}
}
