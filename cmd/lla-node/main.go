// Command lla-node runs one LLA node — a resource price agent or a task
// controller — communicating over TCP, so a workload's optimization can be
// spread across processes and machines (Section 4.1 of the paper).
//
// The deployment is described by a workload JSON (see cmd/lla-workload, or
// the built-in names "base" and "prototype") and a registry JSON mapping
// logical node names to host:port. Logical names are "res/<resourceID>",
// "ctl/<taskName>" and optionally "coordinator".
//
//	lla-node -workload base -registry reg.json -role resource -id r0 -rounds 500
//	lla-node -workload base -registry reg.json -role controller -id task1 -rounds 500
//	lla-node -workload base -demo -rounds 500        # all nodes in-process
//	lla-node -workload base -demo -workers 4         # shard local optimizer work
//	lla-node -workload base -print-registry          # template registry
//
// -workers sets core.Config.Workers for every engine-backed computation the
// process hosts (0 = GOMAXPROCS, 1 = serial). The optimizer's sharded
// iteration is bitwise-deterministic, so the setting changes wall-clock
// time only, never results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"lla/internal/core"
	"lla/internal/dist"
	"lla/internal/fleet"
	"lla/internal/obs"
	"lla/internal/price"
	rec "lla/internal/recover"
	"lla/internal/transport"
	"lla/internal/workload"
)

func main() {
	// SIGINT/SIGTERM stop the node gracefully: the protocol loop exits at
	// its next receive, final state is flushed, and endpoints are closed. A
	// second signal kills the process the default way.
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lla-node:", err)
		os.Exit(1)
	}
}

// nodeFlags holds every lla-node flag value. newFlagSet is the single place
// flags are declared, so the help test can assert the complete set.
type nodeFlags struct {
	workloadArg, registryPath, role, id, debugAddr, tracePath, solver, checkpointDir *string
	wireMode                                                                        *string
	demo, printRegistry, sparse, fleetMode                                          *bool
	rounds, workers, checkpointEvery, shards, shardWorkers                          *int
}

// newFlagSet declares the full lla-node flag set.
func newFlagSet() (*flag.FlagSet, *nodeFlags) {
	fs := flag.NewFlagSet("lla-node", flag.ContinueOnError)
	f := &nodeFlags{
		workloadArg:   fs.String("workload", "base", `workload: "base", "prototype", or a JSON file path`),
		registryPath:  fs.String("registry", "", "JSON file mapping logical node names to host:port"),
		role:          fs.String("role", "", `node role: "resource" or "controller"`),
		id:            fs.String("id", "", "resource ID or task name this node hosts"),
		rounds:        fs.Int("rounds", 500, "number of synchronous optimization rounds"),
		demo:          fs.Bool("demo", false, "run the entire deployment in-process over TCP loopback"),
		printRegistry: fs.Bool("print-registry", false, "print a template registry for the workload and exit"),
		debugAddr:     fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:8080)"),
		tracePath:     fs.String("trace", "", "append JSONL trace events to this file"),
		workers:       fs.Int("workers", 0, "optimizer worker shards for engine-backed computation in this process: 0 = GOMAXPROCS, 1 = serial (results are bitwise-identical either way)"),
		sparse:        fs.Bool("sparse", true, "delta-encode unchanged price broadcasts and share reports (bitwise identical to the dense protocol)"),
		solver:        fs.String("solver", "", "price dynamics: gradient (default), newton, anderson, price-discovery — every node of a deployment must use the same setting"),
		checkpointDir: fs.String("checkpoint-dir", "",
			"demo mode: persist crash-safe checkpoints of the deployment's optimizer state here; the coordinator epoch resumes from the newest one"),
		checkpointEvery: fs.Int("checkpoint-every", 0,
			"demo mode: rounds between periodic checkpoint saves (0 = a default period)"),
		wireMode: fs.String("wire", "binary",
			"TCP message framing: binary (the PROTOCOL.md codec, negotiated per connection with automatic JSON fallback for pre-codec peers) or json (legacy length-prefixed JSON)"),
		fleetMode: fs.Bool("fleet", false,
			"run the hierarchical sharded fleet in-process: partition the workload across shard engines and iterate only the boundary prices (SHARDING.md)"),
		shards: fs.Int("shards", 4, "fleet mode: number of coordinator shards"),
		shardWorkers: fs.Int("shard-workers", 0,
			"fleet mode: concurrent shard sweeps per aggregator round (0 = min(shards, GOMAXPROCS), 1 = serial; results are bitwise identical either way)"),
	}
	return fs, f
}

func run(ctx context.Context, args []string) error {
	fs, f := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	workloadArg := f.workloadArg
	registryPath := f.registryPath
	role := f.role
	id := f.id
	rounds := f.rounds
	demo := f.demo
	printRegistry := f.printRegistry
	debugAddr := f.debugAddr
	tracePath := f.tracePath
	workers := f.workers
	sparse := f.sparse
	solver := f.solver
	sol, err := price.ParseSolver(*solver)
	if err != nil {
		return err
	}
	if *f.wireMode != "binary" && *f.wireMode != "json" {
		return fmt.Errorf("unknown -wire mode %q (have binary, json)", *f.wireMode)
	}
	cfg := core.Config{Workers: *workers, Sparse: core.SparseOn, PriceSolver: sol}
	if !*sparse {
		cfg.Sparse = core.SparseOff
	}

	o, obsDone, err := buildObserver(*debugAddr, *tracePath)
	if err != nil {
		return err
	}
	defer obsDone()

	w, err := loadWorkload(*workloadArg)
	if err != nil {
		return err
	}

	if *printRegistry {
		reg := make(map[string]string)
		for _, addr := range dist.Addresses(w) {
			reg[addr] = "127.0.0.1:0"
		}
		out, err := json.MarshalIndent(reg, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	if *f.fleetMode {
		return runFleet(w, cfg, *f.shards, *f.shardWorkers, *rounds, o, *f.wireMode)
	}

	if *demo {
		return runDemo(ctx, w, cfg, *rounds, o, *f.checkpointDir, *f.checkpointEvery, *f.wireMode)
	}

	if *registryPath == "" {
		return fmt.Errorf("-registry is required (or use -demo / -print-registry)")
	}
	raw, err := os.ReadFile(*registryPath)
	if err != nil {
		return err
	}
	registry := make(map[string]string)
	if err := json.Unmarshal(raw, &registry); err != nil {
		return fmt.Errorf("parsing registry: %w", err)
	}
	net := transport.NewTCP(registry)
	if *f.wireMode == "binary" {
		net.SetCodec(nodeCodec(w, o))
	}

	switch *role {
	case "resource":
		fmt.Fprintf(os.Stderr, "resource node %s: running %d rounds\n", *id, *rounds)
		mu, err := dist.RunResourceObserved(ctx, w, cfg, net, *id, *rounds, o)
		if err != nil {
			return err
		}
		fmt.Printf("resource %s final price mu=%.4f\n", *id, mu)
		return nil
	case "controller":
		fmt.Fprintf(os.Stderr, "controller node %s: running %d rounds\n", *id, *rounds)
		lats, utility, err := dist.RunControllerObserved(ctx, w, cfg, net, *id, *rounds, o)
		if err != nil {
			return err
		}
		fmt.Printf("task %s final utility %.4f\n", *id, utility)
		names := make([]string, 0, len(lats))
		for n := range lats {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s latency %.3f ms\n", n, lats[n])
		}
		return nil
	default:
		return fmt.Errorf("unknown role %q (want resource or controller)", *role)
	}
}

// nodeCodec builds the workload's binary codec, publishing lla_wire_*
// metrics when an observer registry exists.
func nodeCodec(w *workload.Workload, o *obs.Observer) transport.Codec {
	var reg *obs.Registry
	if o != nil {
		reg = o.Metrics
	}
	return dist.WireCodec(w, reg)
}

// loadWorkload resolves built-in names or reads a JSON file.
func loadWorkload(arg string) (*workload.Workload, error) {
	switch arg {
	case "base":
		return workload.Base(), nil
	case "prototype":
		return workload.Prototype(), nil
	}
	raw, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	var w workload.Workload
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, fmt.Errorf("parsing workload %s: %w", arg, err)
	}
	return &w, nil
}

// buildObserver assembles the process's observability from the -debug-addr
// and -trace flags: a metrics registry served over HTTP (with expvar and
// pprof), and a JSONL trace sink appending to a file. Both flags empty means
// no observer (nil) and zero overhead. The returned cleanup flushes and
// closes whatever was opened; it is safe to call unconditionally.
func buildObserver(debugAddr, tracePath string) (*obs.Observer, func(), error) {
	if debugAddr == "" && tracePath == "" {
		return nil, func() {}, nil
	}
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	var closers []func()
	if tracePath != "" {
		f, err := os.OpenFile(tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, func() {}, err
		}
		j := obs.NewJSONL(f)
		o.Trace = j
		closers = append(closers, func() {
			if err := j.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "lla-node: trace:", err)
			}
			f.Close()
		})
	}
	if debugAddr != "" {
		srv, addr, err := obs.Serve(debugAddr, o.Metrics)
		if err != nil {
			for _, c := range closers {
				c()
			}
			return nil, func() {}, err
		}
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/metrics (also /debug/vars, /debug/pprof)\n", addr)
		closers = append(closers, func() { srv.Close() })
	}
	return o, func() {
		for _, c := range closers {
			c()
		}
	}, nil
}

// runFleet hosts the hierarchical sharded fleet (SHARDING.md) in one
// process: the workload is partitioned across shard engines, boundary
// resource prices iterate at the aggregator, and with binary framing every
// PRICE_AGG/BOUNDARY exchange round-trips through the wire codec.
func runFleet(w *workload.Workload, cfg core.Config, shards, shardWorkers, rounds int, o *obs.Observer, wireMode string) error {
	f, err := fleet.New(w, fleet.Config{
		Shards:       shards,
		Seed:         1,
		ShardWorkers: shardWorkers,
		Engine:       cfg,
		MaxRounds:    rounds,
		WireVerify:   wireMode == "binary",
		Observer:     o,
	})
	if err != nil {
		return err
	}
	defer f.Close()
	part := f.Partition()
	fmt.Fprintf(os.Stderr, "fleet: %d tasks across %d shards, %d boundary resources (cut %d)\n",
		len(w.Tasks), part.Shards, len(part.Boundary), part.CutCost)
	res, err := f.Run()
	if err != nil {
		return err
	}
	fmt.Printf("converged=%v rounds=%d local_iters=%d swept=%d skipped=%d shard_workers=%d kkt=%.3g boundary_residual=%.3g utility=%.3f\n",
		res.Converged, res.Rounds, res.LocalIters, res.SweptShards, res.SkippedShards, res.ShardWorkers,
		res.KKTMax, res.BoundaryResidual, res.Utility)
	for s := 0; s < part.Shards; s++ {
		fmt.Printf("  shard %d: %d tasks\n", s, len(part.ShardTasks[s]))
	}
	if !res.Converged {
		return fmt.Errorf("fleet did not certify within %d rounds", res.Rounds)
	}
	return nil
}

// runDemo hosts the full deployment in one process over TCP loopback. With a
// checkpoint directory, the coordinator seeds its epoch from the newest
// checkpoint there, and the run's optimizer state is persisted into it —
// periodically and at the end — via a serial mirror engine (the protocol is
// bitwise-identical to the engine, so the mirror's state IS the
// deployment's).
func runDemo(ctx context.Context, w *workload.Workload, cfg core.Config, rounds int, o *obs.Observer, ckptDir string, ckptEvery int, wireMode string) error {
	registry := make(map[string]string)
	for _, addr := range dist.Addresses(w) {
		registry[addr] = "127.0.0.1:0"
	}
	net := transport.NewTCP(registry)
	if wireMode == "binary" {
		net.SetCodec(nodeCodec(w, o))
	}
	rt, err := dist.New(w, cfg, net)
	if err != nil {
		return err
	}
	defer rt.Close()
	rt.Observe(o)
	// A signal mid-run drains the protocol gracefully and reports the state
	// reached so far.
	stopOnSignal := make(chan struct{})
	defer close(stopOnSignal)
	go func() {
		select {
		case <-ctx.Done():
			rt.Shutdown()
		case <-stopOnSignal:
		}
	}()
	fmt.Fprintf(os.Stderr, "demo: %d tasks, %d resources, %d rounds over TCP loopback\n",
		len(w.Tasks), len(w.Resources), rounds)
	var res *dist.Result
	if ckptDir != "" {
		// The failover runner is the plain run loop plus epoch seeding from
		// the checkpoint directory (no crashes are scheduled here).
		res, err = rt.RunWithFailover(rounds, dist.FailoverPlan{
			CheckpointDir: ckptDir, RelTol: 1e-7, Window: 20,
		})
	} else {
		res, err = rt.RunUntilConverged(rounds, 1e-7, 20)
	}
	if err != nil {
		return err
	}
	fmt.Printf("converged=%v rounds=%d utility=%.3f\n", res.Converged, res.Rounds, res.Utility)
	if ckptDir != "" {
		if err := checkpointDemo(w, cfg, ckptDir, ckptEvery, res); err != nil {
			return err
		}
	}
	for ti, t := range w.Tasks {
		fmt.Printf("task %s:", t.Name)
		for si, s := range t.Subtasks {
			fmt.Printf(" %s=%.2fms", s.Name, res.LatMs[ti][si])
		}
		fmt.Println()
	}
	return nil
}

// checkpointDemo persists the demo run's optimizer state: a serial mirror
// engine replays the deployment's (bitwise-identical) trajectory up to the
// emitted-round count, saving a generation every ckptEvery rounds and a final
// one stamped with the coordinator epoch.
func checkpointDemo(w *workload.Workload, cfg core.Config, dir string, every int, res *dist.Result) error {
	wr, err := rec.NewWriter(dir, 0)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(w, cfg)
	if err != nil {
		return err
	}
	defer eng.Close()
	if every <= 0 {
		every = 50
	}
	for done := 0; done < res.Rounds; {
		n := every
		if done+n > res.Rounds {
			n = res.Rounds - done
		}
		eng.Run(n, nil)
		done += n
		_, err := wr.Save(rec.Capture(eng, rec.CaptureOptions{
			Epoch:     res.Epoch,
			Converged: res.Converged && done == res.Rounds,
		}))
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "checkpointed %d generations into %s (epoch %d)\n", wr.Saves(), dir, res.Epoch)
	return nil
}
