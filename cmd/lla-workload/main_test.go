package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lla/internal/workload"
)

func TestRunRequiresMode(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no mode should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestGenerateValidateDescribeCycle(t *testing.T) {
	// Generate writes to stdout; capture through a pipe.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	genErr := run([]string{"-generate", "-seed", "9", "-tasks", "3"})
	w.Close()
	os.Stdout = old
	if genErr != nil {
		t.Fatal(genErr)
	}
	data := make([]byte, 1<<20)
	n, _ := r.Read(data)
	data = data[:n]

	var wl workload.Workload
	if err := json.Unmarshal(data, &wl); err != nil {
		t.Fatalf("generated output is not a valid workload: %v", err)
	}
	if len(wl.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(wl.Tasks))
	}

	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", path}); err != nil {
		t.Errorf("validate: %v", err)
	}
	if err := run([]string{"-describe", path}); err != nil {
		t.Errorf("describe: %v", err)
	}
}

func TestDescribeBuiltins(t *testing.T) {
	for _, name := range []string{"base", "prototype"} {
		if err := run([]string{"-describe", name}); err != nil {
			t.Errorf("describe %s: %v", name, err)
		}
	}
}

func TestValidateMissingFile(t *testing.T) {
	if err := run([]string{"-validate", "/nonexistent/w.json"}); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestValidateRejectsBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", path}); err == nil {
		t.Fatal("invalid workload should fail")
	}
}

func TestGenerateBadParams(t *testing.T) {
	if err := run([]string{"-generate", "-tasks", "0"}); err == nil {
		t.Fatal("zero tasks should fail")
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := load("/nonexistent/path.json"); err == nil {
		t.Fatal("unknown path should fail")
	}
}
