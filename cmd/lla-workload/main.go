// Command lla-workload generates, validates and inspects workload JSON
// files for the other tools.
//
//	lla-workload -generate -seed 7 -tasks 6 -resources 10 > w.json
//	lla-workload -validate w.json
//	lla-workload -describe base
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lla/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lla-workload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lla-workload", flag.ContinueOnError)
	generate := fs.Bool("generate", false, "generate a random workload JSON on stdout")
	validate := fs.String("validate", "", "validate a workload JSON file")
	describe := fs.String("describe", "", `describe a workload: "base", "prototype" or a JSON file`)
	seed := fs.Int64("seed", 1, "generator seed")
	tasks := fs.Int("tasks", 5, "number of tasks to generate")
	resources := fs.Int("resources", 8, "size of the resource pool")
	minSub := fs.Int("min-subtasks", 3, "minimum subtasks per task")
	maxSub := fs.Int("max-subtasks", 7, "maximum subtasks per task")
	slack := fs.Float64("slack", 8, "critical-time slack factor (lower = tighter deadlines)")
	chains := fs.Bool("chains", false, "generate linear chains instead of DAGs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *generate:
		cfg := workload.DefaultRandomConfig(*seed)
		cfg.NumTasks = *tasks
		cfg.NumResources = *resources
		cfg.MinSubtasks = *minSub
		cfg.MaxSubtasks = *maxSub
		cfg.SlackFactor = *slack
		cfg.ChainOnly = *chains
		w, err := workload.Random(cfg)
		if err != nil {
			return err
		}
		out, err := json.Marshal(w)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil

	case *validate != "":
		raw, err := os.ReadFile(*validate)
		if err != nil {
			return err
		}
		var w workload.Workload
		if err := json.Unmarshal(raw, &w); err != nil {
			return err
		}
		fmt.Printf("%s: valid (%d tasks, %d subtasks, %d resources)\n",
			*validate, len(w.Tasks), w.TotalSubtasks(), len(w.Resources))
		return nil

	case *describe != "":
		w, err := load(*describe)
		if err != nil {
			return err
		}
		describeWorkload(w)
		return nil

	default:
		return fmt.Errorf("one of -generate, -validate or -describe is required")
	}
}

// load resolves built-in names or reads a JSON file.
func load(arg string) (*workload.Workload, error) {
	switch arg {
	case "base":
		return workload.Base(), nil
	case "prototype":
		return workload.Prototype(), nil
	}
	raw, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	var w workload.Workload
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// describeWorkload prints a structural summary.
func describeWorkload(w *workload.Workload) {
	fmt.Printf("workload %s: %d tasks, %d subtasks, %d resources\n\n",
		w.Name, len(w.Tasks), w.TotalSubtasks(), len(w.Resources))
	for _, r := range w.Resources {
		fmt.Printf("resource %-10s kind=%-4s availability=%.2f lag=%.1fms\n",
			r.ID, r.Kind, r.Availability, r.LagMs)
	}
	fmt.Println()
	for _, t := range w.Tasks {
		paths, err := t.Paths()
		if err != nil {
			fmt.Printf("task %s: invalid graph: %v\n", t.Name, err)
			continue
		}
		fmt.Printf("task %-12s critical=%.0fms trigger=%v(%.0fms) subtasks=%d paths=%d\n",
			t.Name, t.CriticalMs, t.Trigger.Kind, t.Trigger.PeriodMs, len(t.Subtasks), len(paths))
		for _, s := range t.Subtasks {
			fmt.Printf("  %-8s on %-10s wcet=%.1fms minShare=%.2f\n", s.Name, s.Resource, s.ExecMs, s.MinShare)
		}
	}
}
