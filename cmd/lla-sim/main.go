// Command lla-sim regenerates the paper's evaluation artifacts — Table 1
// and Figures 5-8 — plus the repo's own studies (ablations, percentile
// sweeps, the churn admission-control experiment). Each experiment prints
// its tables, a downsampled view of its figure series, and
// paper-vs-measured notes; -csv dumps the full series for external
// plotting.
//
//	lla-sim -experiment table1
//	lla-sim -experiment all -csv out/
//	lla-sim -experiment churn -quick
//	lla-sim -experiment fig5 -trace fig5.jsonl -debug-addr localhost:8080
//
// -trace streams one JSONL line per optimizer iteration (KKT residuals,
// prices, demands — see OBSERVABILITY.md); -debug-addr serves /metrics,
// /debug/vars and /debug/pprof while the experiments run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lla/internal/core"
	"lla/internal/eval"
	"lla/internal/gateway"
	"lla/internal/obs"
	"lla/internal/price"
	"lla/internal/stats"
)

// sparseMode maps the boolean -sparse flag onto the engine's tri-state
// toggle (the zero value means "auto", which also resolves to on).
func sparseMode(on bool) core.SparseMode {
	if on {
		return core.SparseOn
	}
	return core.SparseOff
}

// experiments is the single registry of runnable experiments: the -experiment
// flag's help text, the name lookup, and the "all" execution order are all
// derived from this slice, so adding an entry here is the whole registration.
var experiments = []struct {
	id string
	fn func(eval.Options) (*eval.Result, error)
}{
	{"table1", eval.Table1},
	{"fig5", eval.Fig5},
	{"fig6", eval.Fig6},
	{"fig7", eval.Fig7},
	{"fig8", eval.Fig8},
	{"percentiles", eval.Percentiles},
	{"ablation-weights", eval.AblationWeights},
	{"ablation-baselines", eval.AblationBaselines},
	{"adaptation", eval.Adaptation},
	{"churn", eval.Churn},
	{"solvers", eval.Solvers},
	{"soak", eval.Soak},
	{"fleet", eval.Fleet},
}

// experimentIDs lists every registered experiment id, in run order.
func experimentIDs() []string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	return ids
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lla-sim:", err)
		os.Exit(1)
	}
}

// simFlags holds every lla-sim flag value. newFlagSet is the single place
// flags are declared, so the help test can assert the complete set.
type simFlags struct {
	experiment, solver, csvDir, tracePath, debugAddr, checkpointDir *string
	wireMode, gatewayAddr                                           *string
	quick, sparse                                                   *bool
	seed                                                            *int64
	workers, sampleEvery, checkpointEvery, shards, shardWorkers     *int
}

// newFlagSet declares the full lla-sim flag set.
func newFlagSet() (*flag.FlagSet, *simFlags) {
	fs := flag.NewFlagSet("lla-sim", flag.ContinueOnError)
	f := &simFlags{
		experiment: fs.String("experiment", "all",
			"experiment: "+strings.Join(experimentIDs(), ", ")+", all"),
		quick:   fs.Bool("quick", false, "shrink iteration budgets (smoke test)"),
		seed:    fs.Int64("seed", 1, "simulation seed (fig8, soak)"),
		workers: fs.Int("workers", 0, "optimizer shards per iteration: 0 = GOMAXPROCS, 1 = serial (results are identical either way)"),
		sparse:  fs.Bool("sparse", true, "incremental active-set iteration: skip converged controllers and clean resources (bitwise identical to the dense path)"),
		solver:  fs.String("solver", "", "price dynamics: gradient (default), newton, anderson, price-discovery — accelerated solvers reach the same fixed point in fewer rounds"),
		csvDir:  fs.String("csv", "", "directory to write full series CSVs into"),
		tracePath: fs.String("trace", "",
			"append per-iteration JSONL telemetry (samples + events) to this file"),
		debugAddr: fs.String("debug-addr", "",
			"serve /metrics, /debug/vars and /debug/pprof on this address while experiments run"),
		sampleEvery: fs.Int("trace-every", 1, "record every Nth iteration in the trace (1 = all)"),
		checkpointDir: fs.String("checkpoint-dir", "",
			"directory for crash-safe checkpoints in experiments that write them (soak); empty = a per-run temp dir"),
		checkpointEvery: fs.Int("checkpoint-every", 0,
			"churn events between periodic checkpoint saves (0 = experiment default)"),
		wireMode: fs.String("wire", "binary",
			"message framing for distributed-runtime experiments (soak): binary (PROTOCOL.md codec) or json (legacy framing) — results are bitwise identical"),
		gatewayAddr: fs.String("gateway-addr", "",
			"serve the live SSE control-plane gateway (/stream, /state) on this address while experiments run"),
		shards: fs.Int("shards", 0,
			"fleet experiment: number of coordinator shards (0 = experiment default; see SHARDING.md)"),
		shardWorkers: fs.Int("shard-workers", 0,
			"fleet experiment: concurrent shard sweeps per aggregator round (0 = min(shards, GOMAXPROCS), 1 = serial; results are bitwise identical either way)"),
	}
	return fs, f
}

func run(args []string) error {
	fs, f := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiment := f.experiment
	quick := f.quick
	seed := f.seed
	workers := f.workers
	sparse := f.sparse
	solver := f.solver
	csvDir := f.csvDir
	tracePath := f.tracePath
	debugAddr := f.debugAddr
	sampleEvery := f.sampleEvery

	if *f.wireMode != "binary" && *f.wireMode != "json" {
		return fmt.Errorf("unknown -wire mode %q (have binary, json)", *f.wireMode)
	}

	var o *obs.Observer
	if *tracePath != "" || *debugAddr != "" || *f.gatewayAddr != "" {
		o = &obs.Observer{Metrics: obs.NewRegistry()}
		if *tracePath != "" {
			f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			j := obs.NewJSONL(f)
			j.Every = *sampleEvery
			o.Recorder, o.Trace = j, j
			defer func() {
				if err := j.Err(); err != nil {
					fmt.Fprintln(os.Stderr, "lla-sim: trace:", err)
				}
			}()
		}
		if *debugAddr != "" {
			srv, addr, err := obs.Serve(*debugAddr, o.Metrics)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/metrics (also /debug/vars, /debug/pprof)\n", addr)
		}
		if *f.gatewayAddr != "" {
			gw := gateway.New(gateway.Config{}, o.Metrics)
			o.Recorder = obs.MultiRecorder(o.Recorder, gw)
			o.Trace = obs.MultiSink(o.Trace, gw)
			srv, addr, err := gateway.Serve(*f.gatewayAddr, gw)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "gateway on http://%s/stream (SSE; snapshot at /state — see OBSERVABILITY.md)\n", addr)
		}
	}

	runners := make(map[string]func(eval.Options) (*eval.Result, error), len(experiments))
	for _, e := range experiments {
		runners[e.id] = e.fn
	}

	var selected []string
	if *experiment == "all" {
		selected = experimentIDs()
	} else if _, ok := runners[*experiment]; ok {
		selected = []string{*experiment}
	} else {
		return fmt.Errorf("unknown experiment %q (see -h for the list)", *experiment)
	}

	sol, err := price.ParseSolver(*solver)
	if err != nil {
		return err
	}
	opts := eval.Options{Quick: *quick, Seed: *seed, Workers: *workers, Observer: o, Sparse: sparseMode(*sparse), Solver: sol,
		CheckpointDir: *f.checkpointDir, CheckpointEvery: *f.checkpointEvery, Wire: *f.wireMode,
		Shards: *f.shards, ShardWorkers: *f.shardWorkers}
	for _, name := range selected {
		res, err := runners[name](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(res.Render())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCSVs dumps each result's series and tables as CSV files.
func writeCSVs(dir string, res *eval.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if len(res.Series) > 0 {
		path := filepath.Join(dir, res.ID+"_series.csv")
		if err := os.WriteFile(path, []byte(stats.MergeCSV(res.Series...)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", res.ID, i))
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}
