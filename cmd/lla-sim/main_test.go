package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	// Redirect stdout to keep test output readable.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run([]string{"-experiment", "table1", "-quick"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run([]string{"-experiment", "fig5", "-quick", "-csv", dir}); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5_series.csv")); err != nil {
		t.Errorf("series CSV missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5_table0.csv")); err != nil {
		t.Errorf("table CSV missing: %v", err)
	}
}
