package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

// TestHelpListsEveryExperiment rebuilds the -experiment usage line the way
// run does and checks every registered runner appears in it: the registry
// slice is the single source of truth, so a new experiment cannot be
// runnable but undocumented.
func TestHelpListsEveryExperiment(t *testing.T) {
	fs := flag.NewFlagSet("lla-sim", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.String("experiment", "all", "experiment: "+strings.Join(experimentIDs(), ", ")+", all")
	fs.Usage()
	help := buf.String()
	for _, e := range experiments {
		if !strings.Contains(help, e.id) {
			t.Errorf("help text does not list experiment %q:\n%s", e.id, help)
		}
	}
	if !strings.Contains(help, "churn") {
		t.Errorf("help text missing the churn experiment:\n%s", help)
	}
}

// TestHelpListsEveryFlag pins the flag set both ways: every expected flag is
// declared with usage text that renders into the help output, and no flag can
// be added without being listed here (forcing its documentation).
func TestHelpListsEveryFlag(t *testing.T) {
	want := map[string]bool{
		"experiment": true, "quick": true, "seed": true, "workers": true,
		"sparse": true, "solver": true, "csv": true, "trace": true,
		"debug-addr": true, "trace-every": true,
		"checkpoint-dir": true, "checkpoint-every": true,
		"wire": true, "gateway-addr": true, "shards": true, "shard-workers": true,
	}
	fs, _ := newFlagSet()
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	help := buf.String()
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage text", f.Name)
		}
		if !strings.Contains(help, "-"+f.Name) {
			t.Errorf("help output does not list -%s:\n%s", f.Name, help)
		}
	})
	for name := range want {
		if !got[name] {
			t.Errorf("expected flag -%s is not declared", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("flag -%s is declared but not in the expected list — document it here", name)
		}
	}
}

func TestRunRejectsUnknownWireMode(t *testing.T) {
	err := run([]string{"-experiment", "table1", "-quick", "-wire", "carrier-pigeon"})
	if err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Fatalf("unknown wire mode accepted: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	// Redirect stdout to keep test output readable.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run([]string{"-experiment", "table1", "-quick"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run([]string{"-experiment", "fig5", "-quick", "-csv", dir}); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5_series.csv")); err != nil {
		t.Errorf("series CSV missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5_table0.csv")); err != nil {
		t.Errorf("table CSV missing: %v", err)
	}
}
