module lla

go 1.22
