// Package lla is the public API of the LLA (Lagrangian Latency Assignment)
// library, a reproduction of "Online Optimization for Latency Assignment in
// Distributed Real-Time Systems" (Lumezanu, Bhola, Astley — ICDCS 2008).
//
// LLA assigns per-subtask latencies (equivalently, proportional-share
// resource fractions) to distributed end-to-end tasks so that the aggregate
// utility — a concave, non-increasing function of each task's latency — is
// maximized subject to per-resource capacity constraints and per-path
// critical-time (deadline) constraints. The optimization runs online and
// distributed: resources price their congestion, task controllers price
// their deadline slack, and both sides iterate by gradient projection.
//
// The facade re-exports the library's layers:
//
//   - Task modeling: Task, Subtask, NewTask (builder), Periodic/Poisson/
//     Bursty triggers.
//   - Utility curves: Linear, NegLatency, Quadratic, ExpPenalty,
//     NewPiecewiseLinear.
//   - Workloads: Workload, plus the paper's evaluation workloads
//     (BaseWorkload, PrototypeWorkload), replication scaling and a random
//     generator.
//   - The optimizer: Engine (synchronous) and the distributed runtime
//     (NewDistributed) over in-process or TCP transports.
//   - The simulator: Simulator, a discrete-event proportional-share world
//     for enacting and measuring assignments.
//   - Online model error correction: Corrector.
//   - Observability: Observer (per-iteration telemetry via RingRecorder/
//     JSONLWriter, a Prometheus-text MetricsRegistry, trace events) and
//     ServeDebug for the /metrics + pprof endpoint; see OBSERVABILITY.md.
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// mapping between the paper's sections and the packages.
package lla

import (
	"lla/internal/admit"
	"lla/internal/baseline"
	"lla/internal/closedloop"
	"lla/internal/core"
	"lla/internal/dist"
	"lla/internal/errcorr"
	"lla/internal/gateway"
	"lla/internal/obs"
	"lla/internal/price"
	"lla/internal/share"
	"lla/internal/sim"
	"lla/internal/task"
	"lla/internal/transport"
	"lla/internal/utility"
	"lla/internal/wire"
	"lla/internal/workload"
)

// Task modeling.
type (
	// Task is an end-to-end task: subtasks, a precedence DAG, a trigger and
	// a critical time.
	Task = task.Task
	// Subtask is one stage of a task, consuming exactly one resource.
	Subtask = task.Subtask
	// TaskBuilder constructs tasks fluently; see NewTask.
	TaskBuilder = task.Builder
	// Trigger describes a task's triggering-event arrival pattern.
	Trigger = task.Trigger
	// WeightMode selects the utility variant (sum vs path-weighted).
	WeightMode = task.WeightMode
)

// NewTask starts building a task with the given name and critical time
// (milliseconds).
func NewTask(name string, criticalMs float64) *TaskBuilder {
	return task.NewBuilder(name, criticalMs)
}

// Trigger constructors.
var (
	// Periodic returns a fixed-period trigger.
	Periodic = task.Periodic
	// Poisson returns a Poisson-arrival trigger.
	Poisson = task.Poisson
	// Bursty returns an on/off bursty trigger.
	Bursty = task.Bursty
)

// Weight modes (Section 3.2 of the paper).
const (
	// WeightSum weights every subtask equally.
	WeightSum = task.WeightSum
	// WeightPathNormalized weights subtasks by the fraction of paths
	// through them (the paper's path-weighted variant; default).
	WeightPathNormalized = task.WeightPathNormalized
	// WeightPathRaw uses unnormalized path counts (ablation).
	WeightPathRaw = task.WeightPathRaw
)

// Utility curves.
type (
	// Curve maps aggregate latency to benefit; implementations must be
	// concave and non-increasing.
	Curve = utility.Curve
	// Linear is f(x) = K*C - x.
	Linear = utility.Linear
	// NegLatency is f(x) = -x.
	NegLatency = utility.NegLatency
	// Quadratic is f(x) = A - B*x².
	Quadratic = utility.Quadratic
	// ExpPenalty is f(x) = A - B*(e^(x/Tau) - 1), a concave approximation
	// of an inelastic (hard-deadline) task.
	ExpPenalty = utility.ExpPenalty
)

// NewPiecewiseLinear builds a concave piecewise-linear curve.
var NewPiecewiseLinear = utility.NewPiecewiseLinear

// Resource is a schedulable CPU or network link with availability B_r and
// proportional-share lag l_r.
type Resource = share.Resource

// Resource kinds.
const (
	// CPU labels a processing resource.
	CPU = share.CPU
	// Link labels a network-bandwidth resource.
	Link = share.Link
)

// Engine is the synchronous LLA optimizer. Step fans the per-task
// controller work across Config.Workers shards with a bitwise-deterministic
// reduction, so any worker count produces identical trajectories; the
// steady-state iteration is allocation-free. Call Close to release the
// shard workers when discarding an engine early.
type Engine = core.Engine

// Config configures the optimizer (weight mode, step policy, parallelism,
// ...). Config.Workers selects the iteration's shard count: 0 = GOMAXPROCS,
// 1 = fully serial.
type Config = core.Config

// StepPolicy configures price step sizes; Adaptive enables the paper's
// congestion-doubling heuristic.
type StepPolicy = core.StepPolicy

// SparseMode selects the iteration path: the default (SparseAuto, the zero
// value) resolves to SparseOn — the incremental active-set path that skips
// controllers whose observed prices are unchanged and resources whose
// contributing shares are unchanged. SparseOff forces the dense sweep. Both
// paths produce bitwise-identical trajectories; only wall-clock time
// differs.
type SparseMode = core.SparseMode

// Sparse iteration toggles for Config.Sparse.
const (
	SparseAuto = core.SparseAuto
	SparseOn   = core.SparseOn
	SparseOff  = core.SparseOff
)

// SparseStats aggregates the active-set path's skip counters, as
// Engine.SparseStats returns.
type SparseStats = core.SparseStats

// PriceSolver selects the resource-price dynamics for Config.PriceSolver
// (DESIGN.md §12): the reference gradient projection, or an accelerated
// second-order solver that reaches the same fixed point in far fewer
// rounds. Every solver keeps the engine ≡ distributed-runtime bitwise
// equivalence and the zero-allocation steady-state step.
type PriceSolver = price.Solver

// Price solvers for Config.PriceSolver.
const (
	// SolverGradient is the paper's gradient projection with the Section
	// 5.2 congestion-doubling heuristic — the reference dynamics (default).
	SolverGradient = price.SolverGradient
	// SolverNewton is diagonal Newton in log-price coordinates, scaled by
	// the closed-form demand-response curvature (~10x fewer rounds).
	SolverNewton = price.SolverNewton
	// SolverAnderson is safeguarded coordinate-wise Anderson acceleration
	// over the reference gradient map.
	SolverAnderson = price.SolverAnderson
	// SolverPriceDiscovery is the multiplicative tatonnement update of
	// Agrawal & Boyd's price-discovery method.
	SolverPriceDiscovery = price.SolverPriceDiscovery
)

// ParsePriceSolver resolves a flag or config string ("" = gradient) to a
// PriceSolver, rejecting unknown names.
var ParsePriceSolver = price.ParseSolver

// PriceSolvers lists every implemented solver, reference first.
var PriceSolvers = price.Solvers

// Snapshot is the optimizer's observable state after an iteration. Engines
// also offer SnapshotInto (refill a reusable snapshot without allocating)
// and Probe (just the convergence scalars) for per-iteration polling.
type Snapshot = core.Snapshot

// Probe is the allocation-free convergence view of an iteration: aggregate
// utility and the maximum constraint violations, as Engine.Probe returns.
type Probe = core.Probe

// Workload is a complete problem instance: tasks, resources and utility
// curves.
type Workload = workload.Workload

// NewEngine compiles a workload into a synchronous optimizer.
func NewEngine(w *Workload, cfg Config) (*Engine, error) {
	return core.NewEngine(w, cfg)
}

// Paper evaluation workloads.
var (
	// BaseWorkload returns the three-task simulation workload of Section 5
	// (Table 1 / Figure 4).
	BaseWorkload = workload.Base
	// PrototypeWorkload returns the four-task prototype workload of
	// Section 6.
	PrototypeWorkload = workload.Prototype
	// Replicate scales a workload by task replication.
	Replicate = workload.Replicate
	// RandomWorkload generates a seeded random workload.
	RandomWorkload = workload.Random
)

// SchedulabilityReport is the result of the static necessary-condition
// analysis; the sufficient schedulability test is running LLA itself
// (Section 5.4 of the paper).
type SchedulabilityReport = workload.SchedulabilityReport

// AnalyzeWorkload runs the static necessary conditions for schedulability
// (path and resource floors).
var AnalyzeWorkload = workload.Analyze

// RandomConfig parametrizes RandomWorkload.
type RandomConfig = workload.RandomConfig

// DefaultRandomConfig returns a schedulable medium-sized configuration.
var DefaultRandomConfig = workload.DefaultRandomConfig

// Simulator is the discrete-event proportional-share world.
type Simulator = sim.Sim

// SimConfig configures the simulator.
type SimConfig = sim.Config

// Scheduler kinds for the simulator.
const (
	// SchedGPS is the idealized fluid proportional-share scheduler.
	SchedGPS = sim.GPS
	// SchedQuantum is the quantum-based scheduler with realistic lag.
	SchedQuantum = sim.Quantum
	// SchedSFQ is the start-time fair queuing scheduler.
	SchedSFQ = sim.SFQ
)

// NewSimulator builds a simulator for a workload.
func NewSimulator(w *Workload, cfg SimConfig) (*Simulator, error) {
	return sim.New(w, cfg)
}

// Enactor implements the paper's enactment policy (Section 4.4): the
// optimizer runs continuously but allocations are pushed to the schedulers
// only on significant change.
type Enactor = core.Enactor

// NewEnactor returns an enactor with the paper's thresholds.
var NewEnactor = core.NewEnactor

// ClosedLoop packages the paper's deployed system shape (Section 6): the
// optimizer runs continuously against a (simulated) proportional-share
// system, enacting allocations through the enactment policy and improving
// the share model online from measured latencies.
type ClosedLoop = closedloop.Loop

// ClosedLoopConfig parametrizes a ClosedLoop.
type ClosedLoopConfig = closedloop.Config

// ClosedLoopEpoch is one loop iteration's observation.
type ClosedLoopEpoch = closedloop.Epoch

// NewClosedLoop builds a closed loop over a workload.
func NewClosedLoop(w *Workload, engineCfg Config, simCfg SimConfig, cfg ClosedLoopConfig) (*ClosedLoop, error) {
	return closedloop.New(w, engineCfg, simCfg, cfg)
}

// Corrector is the online additive model-error corrector (Section 6.3).
type Corrector = errcorr.Corrector

// CorrectorConfig parametrizes a Corrector.
type CorrectorConfig = errcorr.Config

// NewCorrector builds a corrector.
var NewCorrector = errcorr.New

// Distributed runtime.
type (
	// Distributed drives LLA as message-passing resource and controller
	// nodes over a transport.
	Distributed = dist.Runtime
	// DistResult summarizes a distributed run.
	DistResult = dist.Result
	// Network is a messaging substrate (in-process or TCP).
	Network = transport.Network
)

// NewDistributed assembles a distributed deployment on the given network.
func NewDistributed(w *Workload, cfg Config, net Network) (*Distributed, error) {
	return dist.New(w, cfg, net)
}

// Observability (see OBSERVABILITY.md). An Observer bundles the three
// channels — per-iteration Recorder, metrics Registry, trace Sink — and
// attaches to an Engine (Engine.Observe) or a Distributed runtime
// (Distributed.Observe); attaching costs nothing on the unobserved hot path.
type (
	// Observer bundles the observability channels; any field may be nil.
	Observer = obs.Observer
	// IterationSample is one iteration's full telemetry: utility, KKT
	// residuals, constraint violations, prices, demands, step sizes.
	IterationSample = obs.IterationSample
	// Recorder receives IterationSamples (see Ring and JSONL).
	Recorder = obs.Recorder
	// MetricsRegistry holds named counters/gauges/histograms and renders
	// them in Prometheus text format.
	MetricsRegistry = obs.Registry
	// TraceEvent is a structured runtime event (convergence, workload
	// change, lease expiry, degradation transitions).
	TraceEvent = obs.Event
	// TraceSink receives TraceEvents (see MemorySink and JSONL).
	TraceSink = obs.Sink
	// RingRecorder keeps the last N samples in memory.
	RingRecorder = obs.Ring
	// MemorySink accumulates trace events in memory.
	MemorySink = obs.Memory
	// JSONLWriter streams samples and events as JSON lines; it is both a
	// Recorder and a TraceSink.
	JSONLWriter = obs.JSONL
)

var (
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewRingRecorder returns a recorder keeping the last n samples.
	NewRingRecorder = obs.NewRing
	// NewJSONLWriter returns a JSONL telemetry writer over w.
	NewJSONLWriter = obs.NewJSONL
	// ServeDebug starts an HTTP server exposing /metrics, /debug/vars and
	// /debug/pprof for a registry.
	ServeDebug = obs.Serve
	// DebugHandler returns the same endpoints as an http.Handler.
	DebugHandler = obs.DebugHandler
)

// FaultPolicy tunes the distributed fault-tolerance machinery
// (retransmission backoff and failure-detection leases).
type FaultPolicy = dist.FaultPolicy

var (
	// DefaultFaultPolicy returns the retransmission/lease defaults.
	DefaultFaultPolicy = dist.DefaultFaultPolicy
	// RunAsyncWithPolicy is RunAsync with an explicit fault policy.
	RunAsyncWithPolicy = dist.RunAsyncWithPolicy
	// RunAsyncObserved is RunAsyncWithPolicy with an observer attached:
	// dist counters increment live, resource gauges track prices, and the
	// trace sink sees degradation transitions.
	RunAsyncObserved = dist.RunAsyncObserved
)

// AsyncResult summarizes an asynchronous distributed run.
type AsyncResult = dist.AsyncResult

// RunAsync runs LLA without round synchronization for the given wall-clock
// duration: nodes compute on whatever prices/latencies have arrived and
// publish immediately. Prefer fixed moderate steps under long message
// delays (see internal/dist documentation).
var RunAsync = dist.RunAsync

// NewInprocNetwork returns an in-process network. Its DelayMs/DropRate
// knobs cover simple robustness tests; for the full fault repertoire
// (jitter, duplication, reordering, partitions, crash/restart) wrap any
// network in NewChaosNetwork.
func NewInprocNetwork(cfg InprocConfig) Network {
	return transport.NewInproc(cfg)
}

// InprocConfig tunes the in-process network.
type InprocConfig = transport.InprocConfig

// NewTCPNetwork returns a TCP network with a logical-name registry.
func NewTCPNetwork(registry map[string]string) *transport.TCP {
	return transport.NewTCP(registry)
}

// Binary wire protocol (PROTOCOL.md). A WireCodec frames messages in the
// versioned binary format; TCP networks negotiate it per connection (with
// automatic JSON fallback for pre-codec peers, version skew and dictionary
// mismatch), and in-process networks round-trip every delivery through it.
type (
	// WireCodec is the binary frame codec; it satisfies the transport
	// Codec interface accepted by TCP/Inproc SetCodec.
	WireCodec = wire.Codec
	// WireDict is the shared id dictionary that compresses resource/task
	// names to varint indexes; peers must agree on it (the handshake
	// carries its hash).
	WireDict = wire.Dict
)

var (
	// NewWireCodec returns a binary codec; dict may be nil for
	// string-mode frames.
	NewWireCodec = wire.NewCodec
	// NewWireDict builds an id dictionary from resource/task/subtask
	// names.
	NewWireDict = wire.NewDict
	// NewWorkloadWireCodec builds the codec for a workload's id space,
	// publishing lla_wire_* metrics when reg is non-nil.
	NewWorkloadWireCodec = dist.WireCodec
)

// Streaming control-plane gateway (PROTOCOL.md §6, OBSERVABILITY.md): an
// HTTP/SSE endpoint publishing delta-encoded live optimizer state. A
// Gateway is both a Recorder and a TraceSink; compose it with other
// channels via MultiRecorder/MultiSink.
type (
	// Gateway streams keyframe/delta/trace SSE events at /stream and the
	// current state snapshot at /state.
	Gateway = gateway.Gateway
	// GatewayConfig tunes keyframe cadence and per-connection queues.
	GatewayConfig = gateway.Config
	// GatewayKeyframe is the full streamed state.
	GatewayKeyframe = gateway.Keyframe
	// GatewayDelta is one iteration's changes against the previous event.
	GatewayDelta = gateway.Delta
)

var (
	// NewGateway returns a gateway publishing lla_gateway_* metrics on reg
	// (which may be nil).
	NewGateway = gateway.New
	// ServeGateway starts the gateway's HTTP server on addr.
	ServeGateway = gateway.Serve
	// MultiRecorder fans Begin/Commit out to several recorders.
	MultiRecorder = obs.MultiRecorder
	// MultiSink fans trace events out to several sinks.
	MultiSink = obs.MultiSink
)

// ChaosConfig tunes deterministic, seeded fault injection.
type ChaosConfig = transport.ChaosConfig

// NewChaosNetwork wraps any Network with deterministic fault injection —
// loss, delay/jitter, duplication, reordering, partitions and node
// crash/restart — for robustness testing (see README "Chaos testing").
func NewChaosNetwork(inner Network, cfg ChaosConfig) *transport.Chaos {
	return transport.NewChaos(inner, cfg)
}

// Admission control and price-guided placement (see DESIGN.md "Admission &
// placement"). An AdmissionController sits above a live Engine and screens
// arriving tasks through three gates — static necessary conditions, a price
// screen against the live dual variables, and a bounded warm-started trial
// optimization on a forked scratch engine — then enacts admitted tasks via
// warm-started workload replacement. A Placer binds candidate subtasks to
// the cheapest feasible resources at the live prices and can re-place
// resident tasks under sustained price skew.
type (
	// AdmissionController screens and enacts arriving/departing tasks over
	// a live engine.
	AdmissionController = admit.Controller
	// AdmissionConfig tunes the admission gates (headroom, overcommit,
	// cost-benefit bound, trial budgets, quarantine backoff).
	AdmissionConfig = admit.Config
	// AdmissionDecision is one entry of the controller's decision log.
	AdmissionDecision = admit.Decision
	// AdmissionEstimate is the price screen's demand prediction.
	AdmissionEstimate = admit.Estimate
	// Placer binds subtasks to the cheapest feasible resources at the live
	// prices.
	Placer = admit.Placer
	// PlacerConfig tunes placement and rebalance triggers.
	PlacerConfig = admit.PlacerConfig
	// PlacedCandidate is a task offered for placed admission: advisory
	// bindings plus per-subtask candidate resource sets.
	PlacedCandidate = admit.Candidate
)

// NewAdmissionController builds an admission controller over a running
// engine (converge the engine first: the price screen reads live prices).
func NewAdmissionController(e *Engine, cfg AdmissionConfig) *AdmissionController {
	return admit.New(e, cfg)
}

// NewPlacer builds a price-guided placer; attach it with
// AdmissionController.UsePlacer.
var NewPlacer = admit.NewPlacer

// Churn traces: seeded arrival/departure workloads for admission studies
// (the lla-sim "churn" experiment replays one against the controller).
type (
	// ChurnTemplate is a replicable chain-pipeline task shape.
	ChurnTemplate = workload.ChurnTemplate
	// ChurnConfig parametrizes GenerateChurn.
	ChurnConfig = workload.ChurnConfig
	// ChurnEvent is one arrival or departure in a trace.
	ChurnEvent = workload.ChurnEvent
)

// GenerateChurn produces a seeded Poisson arrival/departure trace.
var GenerateChurn = workload.GenerateChurn

// Distributed-deployment admission: a running Distributed runtime's
// coordinator answers admission queries against its live price mirrors
// (static + price gates only; the trial gate needs an engine).
type (
	// DistAdmissionQuery describes a chain-pipeline candidate.
	DistAdmissionQuery = dist.AdmissionQuery
	// DistAdmissionDecision is the coordinator's verdict.
	DistAdmissionDecision = dist.AdmissionDecision
)

// QueryAdmission asks a running deployment's coordinator whether a
// candidate could join, blocking up to the timeout for the decision.
var QueryAdmission = dist.QueryAdmission

// Baselines (offline deadline-slicing heuristics and the centralized
// reference solver) for comparison against LLA.
type (
	// BaselineAssignment is a per-task latency assignment produced by a
	// baseline algorithm.
	BaselineAssignment = baseline.Assignment
	// BaselineEvaluation summarizes an assignment's utility and constraint
	// violations.
	BaselineEvaluation = baseline.Evaluation
	// CentralConfig parametrizes the centralized reference solver.
	CentralConfig = baseline.CentralConfig
)

var (
	// EvenSlice distributes each critical time evenly along paths.
	EvenSlice = baseline.EvenSlice
	// ProportionalSlice distributes critical times proportionally to WCET.
	ProportionalSlice = baseline.ProportionalSlice
	// EvaluateAssignment scores an assignment against a workload.
	EvaluateAssignment = baseline.Evaluate
	// CentralSolve runs the centralized augmented-Lagrangian reference
	// solver.
	CentralSolve = baseline.Central
)
