#!/usr/bin/env bash
# Runs the core optimizer benchmarks and writes BENCH_core.json (parsed via
# scripts/benchparse), failing if the sparse converged-step path is not
# faster than the dense one.
#
#   scripts/bench.sh [output.json]
#   BENCHTIME=200ms scripts/bench.sh     # quicker smoke run (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_core.json}"
benchtime="${BENCHTIME:-1s}"

go test -run '^$' \
  -bench 'BenchmarkEngineStepConverged|BenchmarkFig6ScalabilitySparse|BenchmarkEngineStep$|BenchmarkEngineStepLarge$' \
  -benchtime "$benchtime" -json . \
  | go run ./scripts/benchparse -o "$out" -check
