#!/usr/bin/env bash
# Runs the core optimizer benchmarks and writes BENCH_core.json (parsed via
# scripts/benchparse), failing if the sparse converged-step path is not
# faster than the dense one, an accelerated price solver needs more
# rounds-to-converge than the reference gradient, or a warm checkpoint
# restart does not re-converge in fewer rounds than a cold one, or the
# binary wire frame is not at least 10x smaller than its JSON equivalent.
#
#   scripts/bench.sh [output.json]
#   BENCHTIME=200ms scripts/bench.sh     # quicker smoke run (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_core.json}"
benchtime="${BENCHTIME:-1s}"

go test -run '^$' \
  -bench 'BenchmarkEngineStepConverged|BenchmarkFig6ScalabilitySparse|BenchmarkEngineStep$|BenchmarkEngineStepLarge$|BenchmarkRoundsToConverge|BenchmarkRecoveryRounds|BenchmarkWireCodec$' \
  -benchtime "$benchtime" -json . \
  | go run ./scripts/benchparse -o "$out" -check

# benchparse exits non-zero on empty input, but guard the artifact too: a
# truncated or missing report must never be committed as a baseline.
if [[ ! -s "$out" ]]; then
  echo "bench.sh: $out is missing or empty — the benchmark run produced no parsable output" >&2
  exit 1
fi
