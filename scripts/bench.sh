#!/usr/bin/env bash
# Runs the core optimizer benchmarks and writes BENCH_core.json (parsed via
# scripts/benchparse), failing if the sparse converged-step path is not
# faster than the dense one, an accelerated price solver needs more
# rounds-to-converge than the reference gradient, a warm checkpoint
# restart does not re-converge in fewer rounds than a cold one, the
# binary wire frame is not at least 10x smaller than its JSON equivalent,
# the million-subtask sharded fleet fails to certify convergence, or the
# fleet's boundary rounds exceed twice the single engine's KKT rounds.
#
#   scripts/bench.sh [output.json]
#   BENCHTIME=200ms scripts/bench.sh     # quicker smoke run (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_core.json}"
benchtime="${BENCHTIME:-1s}"

# The raw test2json stream lands in a temp file so a failed gate can still
# print what ran; the trap reclaims it on every exit path.
raw="$(mktemp -t bench-raw.XXXXXX)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkEngineStepConverged|BenchmarkFig6ScalabilitySparse|BenchmarkEngineStep$|BenchmarkEngineStepLarge$|BenchmarkRoundsToConverge|BenchmarkRecoveryRounds|BenchmarkWireCodec$|BenchmarkFleetConverge' \
  -benchtime "$benchtime" -json . > "$raw"

# benchparse writes the report before running its gates, so on a gate
# failure $out still holds every parsed metric — print it as the summary.
if ! go run ./scripts/benchparse -o "$out" -check < "$raw"; then
  echo "bench.sh: benchparse gate failed; parsed benchmark report follows" >&2
  cat "$out" >&2 || true
  exit 1
fi

# benchparse exits non-zero on empty input, but guard the artifact too: a
# truncated or missing report must never be committed as a baseline.
if [[ ! -s "$out" ]]; then
  echo "bench.sh: $out is missing or empty — the benchmark run produced no parsable output" >&2
  exit 1
fi
