#!/usr/bin/env bash
# Runs the core optimizer benchmarks and writes BENCH_core.json (parsed via
# scripts/benchparse), failing if the sparse converged-step path is not
# faster than the dense one, an accelerated price solver needs more
# rounds-to-converge than the reference gradient, a warm checkpoint
# restart does not re-converge in fewer rounds than a cold one, the
# binary wire frame is not at least 10x smaller than its JSON equivalent,
# the million-subtask sharded fleet fails to certify convergence, the
# fleet's boundary rounds exceed twice the single engine's KKT rounds, the
# parallel 1m fleet run diverges from the serial round count (or, on >= 4
# CPUs, fails to halve its wall-clock), or a previously gated benchmark
# disappears from the report.
#
#   scripts/bench.sh [output.json]
#   BENCHTIME=200ms scripts/bench.sh     # quicker smoke run (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_core.json}"
benchtime="${BENCHTIME:-1s}"

# Pin GOMAXPROCS explicitly for every benchmark invocation: the fleet
# parallel-vs-serial comparison is only meaningful when both runs see the
# same, known CPU budget (the 1m benchmarks record it as the cpus metric).
# Honor an externally pinned value; default to the machine width.
: "${GOMAXPROCS:=$(nproc)}"
export GOMAXPROCS

# The raw test2json stream lands in a temp file so a failed gate can still
# print what ran; the trap reclaims it on every exit path.
raw="$(mktemp -t bench-raw.XXXXXX)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkEngineStepConverged|BenchmarkFig6ScalabilitySparse|BenchmarkEngineStep$|BenchmarkEngineStepLarge$|BenchmarkRoundsToConverge|BenchmarkRecoveryRounds|BenchmarkWireCodec$' \
  -benchtime "$benchtime" -json . > "$raw"

# The fleet benchmarks run in their own pinned invocation: the serial and
# parallel 1m runs must not share a process with the engine microbenchmarks
# (GC pressure from earlier runs would skew the wall-clock ratio the
# parallel gate compares). The stream is concatenated into the same raw
# file; benchparse parses both invocations as one report.
go test -run '^$' \
  -bench 'BenchmarkFleetConverge' \
  -benchtime "$benchtime" -json . >> "$raw"

# Gate against the committed baseline too: a gated benchmark that vanishes
# from the report (renamed, regex narrowed) must fail loudly, not turn its
# gate into a silent no-op. The baseline is the previous $out, if any.
prev_args=()
if [[ -s "$out" ]]; then
  prev="$(mktemp -t bench-prev.XXXXXX)"
  trap 'rm -f "$raw" "$prev"' EXIT
  cp "$out" "$prev"
  prev_args=(-prev "$prev")
fi

# benchparse writes the report before running its gates, so on a gate
# failure $out still holds every parsed metric — print it as the summary.
if ! go run ./scripts/benchparse -o "$out" -check "${prev_args[@]}" < "$raw"; then
  echo "bench.sh: benchparse gate failed; parsed benchmark report follows" >&2
  cat "$out" >&2 || true
  exit 1
fi

# benchparse exits non-zero on empty input, but guard the artifact too: a
# truncated or missing report must never be committed as a baseline.
if [[ ! -s "$out" ]]; then
  echo "bench.sh: $out is missing or empty — the benchmark run produced no parsable output" >&2
  exit 1
fi
