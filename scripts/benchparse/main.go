// Command benchparse turns `go test -bench -json` output (the test2json
// event stream) into a compact BENCH_core.json: one record per benchmark
// with its iteration count and every reported metric (ns/op, B/op,
// allocs/op, and custom metrics like skipped_pct).
//
//	go test -run '^$' -bench . -json . | go run ./scripts/benchparse -o BENCH_core.json -check
//
// -check enforces the sparse-iteration regression gate: the steady-state
// converged Step must be faster on the sparse path than on the dense path
// (BenchmarkEngineStepConverged/sparse vs /dense), or the exit code is 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream benchparse needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// record is one parsed benchmark result.
type record struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// report is the BENCH_core.json document.
type report struct {
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output path for the parsed benchmark report")
	check := flag.Bool("check", false,
		"fail unless BenchmarkEngineStepConverged/sparse ns/op is below .../dense")
	prev := flag.String("prev", "",
		"path to a prior report: fail, naming them, if gated benchmarks it contains are missing from this run")
	flag.Parse()

	recs, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchparse:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchparse: no benchmark results in input")
		os.Exit(1)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	doc, err := json.MarshalIndent(report{Benchmarks: recs}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchparse:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchparse:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchparse: %d benchmarks -> %s\n", len(recs), *out)

	if *check {
		if err := checkSparseFaster(recs); err != nil {
			fmt.Fprintln(os.Stderr, "benchparse: CHECK FAILED:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchparse: check passed: converged-step sparse < dense")
		if err := checkAcceleratedRounds(recs); err != nil {
			fmt.Fprintln(os.Stderr, "benchparse: CHECK FAILED:", err)
			os.Exit(1)
		}
		if err := checkRecoveryWarmFaster(recs); err != nil {
			fmt.Fprintln(os.Stderr, "benchparse: CHECK FAILED:", err)
			os.Exit(1)
		}
		if err := checkWireCompression(recs); err != nil {
			fmt.Fprintln(os.Stderr, "benchparse: CHECK FAILED:", err)
			os.Exit(1)
		}
		if err := checkFleetConverge(recs); err != nil {
			fmt.Fprintln(os.Stderr, "benchparse: CHECK FAILED:", err)
			os.Exit(1)
		}
		if err := checkFleetParallel(recs); err != nil {
			fmt.Fprintln(os.Stderr, "benchparse: CHECK FAILED:", err)
			os.Exit(1)
		}
	}
	if *prev != "" {
		if err := checkNoGatedLoss(*prev, recs); err != nil {
			fmt.Fprintln(os.Stderr, "benchparse: CHECK FAILED:", err)
			os.Exit(1)
		}
	}
}

// parse consumes a test2json stream and extracts benchmark result lines.
// test2json splits a benchmark result across output events (the name flushes
// on the tab, the timings arrive separately), so output fragments are
// reassembled into logical lines before parsing. Non-JSON input is tolerated
// (plain `go test -bench` output works too).
func parse(f *os.File) ([]record, error) {
	var recs []record
	var buf strings.Builder
	flush := func(chunk string) {
		buf.WriteString(chunk)
		for {
			s := buf.String()
			nl := strings.IndexByte(s, '\n')
			if nl < 0 {
				return
			}
			if r, ok := parseBenchLine(strings.TrimSpace(s[:nl])); ok {
				recs = append(recs, r)
			}
			buf.Reset()
			buf.WriteString(s[nl+1:])
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action != "output" {
				continue
			}
			flush(ev.Output)
			continue
		}
		flush(line + "\n")
	}
	flush("\n") // terminate a trailing partial line
	return recs, sc.Err()
}

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkFoo/sub-8   123456   987.6 ns/op   42.0 custom_metric   0 B/op   0 allocs/op
func parseBenchLine(s string) (record, bool) {
	if !strings.HasPrefix(s, "Benchmark") {
		return record{}, false
	}
	fields := strings.Fields(s)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: fields[0], Iters: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if _, ok := r.Metrics["ns/op"]; !ok {
		return record{}, false
	}
	return r, true
}

// checkSparseFaster enforces the regression gate on the converged-step pair.
func checkSparseFaster(recs []record) error {
	find := func(sub string) (record, error) {
		for _, r := range recs {
			if strings.HasPrefix(r.Name, "BenchmarkEngineStepConverged/"+sub) {
				return r, nil
			}
		}
		return record{}, fmt.Errorf("BenchmarkEngineStepConverged/%s missing from input", sub)
	}
	dense, err := find("dense")
	if err != nil {
		return err
	}
	sparse, err := find("sparse")
	if err != nil {
		return err
	}
	d, s := dense.Metrics["ns/op"], sparse.Metrics["ns/op"]
	if s >= d {
		return fmt.Errorf("sparse steady-state step (%.1f ns/op) is not faster than dense (%.1f ns/op)", s, d)
	}
	fmt.Fprintf(os.Stderr, "benchparse: converged step: dense %.1f ns/op, sparse %.1f ns/op (%.2fx)\n", d, s, d/s)
	return nil
}

// checkAcceleratedRounds enforces the price-dynamics regression gate: every
// accelerated solver's rounds-to-converge (BenchmarkRoundsToConverge/<solver>)
// must not exceed the reference gradient's. Absent rounds benchmarks skip the
// gate (narrower runs stay usable); a sweep that has accelerated records but
// no gradient baseline is an error.
func checkAcceleratedRounds(recs []record) error {
	const prefix = "BenchmarkRoundsToConverge/"
	gradient := -1.0
	accel := make(map[string]float64)
	for _, r := range recs {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		name := trimCPUSuffix(strings.TrimPrefix(r.Name, prefix))
		rounds, ok := r.Metrics["rounds"]
		if !ok {
			return fmt.Errorf("%s reported no rounds metric", r.Name)
		}
		if name == "gradient" {
			gradient = rounds
		} else {
			accel[name] = rounds
		}
	}
	if gradient < 0 && len(accel) == 0 {
		return nil
	}
	if gradient < 0 {
		return fmt.Errorf("rounds benchmarks present but the gradient baseline is missing")
	}
	names := make([]string, 0, len(accel))
	for name := range accel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if accel[name] > gradient {
			return fmt.Errorf("accelerated solver %s needs %.0f rounds to converge, more than gradient's %.0f",
				name, accel[name], gradient)
		}
	}
	fmt.Fprintf(os.Stderr, "benchparse: check passed: accelerated rounds <= gradient (%.0f)\n", gradient)
	return nil
}

// checkRecoveryWarmFaster enforces the crash-recovery regression gate: a
// warm restart from a checkpoint (BenchmarkRecoveryRounds/warm) must
// re-converge in strictly fewer rounds than a cold restart from scratch
// (.../cold). Absent recovery benchmarks skip the gate (narrower runs stay
// usable); a run with one side but not the other is an error.
func checkRecoveryWarmFaster(recs []record) error {
	const prefix = "BenchmarkRecoveryRounds/"
	warm, cold := -1.0, -1.0
	for _, r := range recs {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		rounds, ok := r.Metrics["rounds"]
		if !ok {
			return fmt.Errorf("%s reported no rounds metric", r.Name)
		}
		switch trimCPUSuffix(strings.TrimPrefix(r.Name, prefix)) {
		case "warm":
			warm = rounds
		case "cold":
			cold = rounds
		}
	}
	if warm < 0 && cold < 0 {
		return nil
	}
	if warm < 0 || cold < 0 {
		return fmt.Errorf("recovery benchmarks incomplete: warm=%v cold=%v (need both)", warm >= 0, cold >= 0)
	}
	if warm >= cold {
		return fmt.Errorf("warm recovery (%.0f rounds) is not below cold re-convergence (%.0f rounds)", warm, cold)
	}
	fmt.Fprintf(os.Stderr, "benchparse: check passed: warm recovery %.0f rounds < cold %.0f\n", warm, cold)
	return nil
}

// checkWireCompression enforces the binary wire-protocol gate
// (PROTOCOL.md): a batched price round in binary framing
// (BenchmarkWireCodec's binary_bytes) must be at least 10x smaller than
// the legacy JSON frames for the same round (json_bytes). An absent wire
// benchmark skips the gate (narrower runs stay usable).
func checkWireCompression(recs []record) error {
	for _, r := range recs {
		if trimCPUSuffix(r.Name) != "BenchmarkWireCodec" {
			continue
		}
		bin, okB := r.Metrics["binary_bytes"]
		js, okJ := r.Metrics["json_bytes"]
		if !okB || !okJ {
			return fmt.Errorf("%s did not report binary_bytes and json_bytes", r.Name)
		}
		if bin <= 0 || js <= 0 {
			return fmt.Errorf("%s reported degenerate sizes: binary=%.0f json=%.0f", r.Name, bin, js)
		}
		if 10*bin > js {
			return fmt.Errorf("binary price batch (%.0f B) is not >=10x smaller than its JSON frames (%.0f B)", bin, js)
		}
		fmt.Fprintf(os.Stderr, "benchparse: check passed: wire batch %.0f B binary vs %.0f B JSON (%.1fx)\n", bin, js, js/bin)
		return nil
	}
	return nil
}

// checkFleetConverge enforces the sharded-fleet gates (SHARDING.md): the
// million-subtask run (BenchmarkFleetConverge/1m) must certify convergence
// (converged == 1), and on the clustered workload the aggregator's boundary
// rounds (.../clustered rounds) must not exceed twice the single engine's
// KKT rounds (single_rounds) — the hierarchy may pay coordination overhead,
// but never more than 2x in price iterations. Absent fleet benchmarks skip
// the gate (narrower runs stay usable); a record missing its metrics is an
// error.
func checkFleetConverge(recs []record) error {
	for _, r := range recs {
		switch trimCPUSuffix(r.Name) {
		case "BenchmarkFleetConverge/1m":
			conv, ok := r.Metrics["converged"]
			if !ok {
				return fmt.Errorf("%s reported no converged metric", r.Name)
			}
			if conv != 1 {
				return fmt.Errorf("the million-subtask fleet run did not certify convergence (converged=%.0f)", conv)
			}
			fmt.Fprintf(os.Stderr, "benchparse: check passed: 1M-subtask fleet certified in %.0f rounds\n",
				r.Metrics["rounds"])
		case "BenchmarkFleetConverge/clustered":
			rounds, okR := r.Metrics["rounds"]
			single, okS := r.Metrics["single_rounds"]
			if !okR || !okS {
				return fmt.Errorf("%s did not report rounds and single_rounds", r.Name)
			}
			if single <= 0 {
				return fmt.Errorf("%s reported a degenerate single-engine baseline (%.0f rounds)", r.Name, single)
			}
			if rounds > 2*single {
				return fmt.Errorf("fleet boundary rounds (%.0f) exceed 2x the single engine's KKT rounds (%.0f)",
					rounds, single)
			}
			fmt.Fprintf(os.Stderr, "benchparse: check passed: fleet rounds %.0f <= 2x single-engine %.0f\n",
				rounds, single)
		}
	}
	return nil
}

// checkFleetParallel enforces the parallel-rounds gate (SHARDING.md):
// BenchmarkFleetConverge/1m-parallel (16 concurrent shard sweeps) must
// certify in exactly the serial run's round count — parallel sweeps leave
// no scheduling fingerprint — and, when the run had at least 4 CPUs, finish
// in at most half the serial wall-clock. Below 4 CPUs the wall-clock half
// of the gate is SKIPPED with an explicit message (a 1-CPU runner cannot
// speed up by running sweeps concurrently); it never silently passes. A
// report carrying one of the pair but not the other is an error.
func checkFleetParallel(recs []record) error {
	var serial, parallel *record
	for i := range recs {
		switch trimCPUSuffix(recs[i].Name) {
		case "BenchmarkFleetConverge/1m":
			serial = &recs[i]
		case "BenchmarkFleetConverge/1m-parallel":
			parallel = &recs[i]
		}
	}
	if serial == nil && parallel == nil {
		return nil
	}
	if serial == nil || parallel == nil {
		return fmt.Errorf("fleet parallel benchmarks incomplete: 1m present=%v, 1m-parallel present=%v (need both)",
			serial != nil, parallel != nil)
	}
	if conv := parallel.Metrics["converged"]; conv != 1 {
		return fmt.Errorf("the parallel million-subtask fleet run did not certify convergence (converged=%.0f)", conv)
	}
	sr, pr := serial.Metrics["rounds"], parallel.Metrics["rounds"]
	if sr != pr {
		return fmt.Errorf("parallel fleet certified in %.0f rounds but serial in %.0f — parallel sweeps changed the trajectory", pr, sr)
	}
	cpus, ok := parallel.Metrics["cpus"]
	if !ok {
		return fmt.Errorf("%s reported no cpus metric", parallel.Name)
	}
	if cpus < 4 {
		fmt.Fprintf(os.Stderr,
			"benchparse: check SKIPPED: fleet parallel wall-clock gate needs >= 4 CPUs, run had %.0f (round-count equality still enforced: %.0f rounds)\n",
			cpus, pr)
		return nil
	}
	sn, pn := serial.Metrics["ns/op"], parallel.Metrics["ns/op"]
	if pn > 0.5*sn {
		return fmt.Errorf("parallel 1m fleet (%.0f ns/op) is not <= 0.5x the serial run (%.0f ns/op) on %.0f CPUs",
			pn, sn, cpus)
	}
	fmt.Fprintf(os.Stderr, "benchparse: check passed: parallel 1m fleet %.2fx faster than serial, same %.0f rounds\n",
		sn/pn, pr)
	return nil
}

// gatedPrefixes lists the benchmark families the -check gates consume. A
// report that silently drops one of these (a renamed benchmark, a narrowed
// bench regex) would turn its gate into a no-op — checkNoGatedLoss makes
// that loud instead.
var gatedPrefixes = []string{
	"BenchmarkEngineStepConverged/",
	"BenchmarkRoundsToConverge/",
	"BenchmarkRecoveryRounds/",
	"BenchmarkWireCodec",
	"BenchmarkFleetConverge/",
}

// isGated reports whether a (GOMAXPROCS-suffix-stripped) benchmark name
// belongs to a gated family.
func isGated(name string) bool {
	for _, p := range gatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkNoGatedLoss fails, naming each one, when a gated benchmark present
// in the previous report is missing from the current run. Names are
// compared with the -GOMAXPROCS suffix stripped so a runner-width change is
// not a diff. A missing previous report skips the check (first run).
func checkNoGatedLoss(prevPath string, recs []record) error {
	raw, err := os.ReadFile(prevPath)
	if os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "benchparse: no previous report at %s, skipping gated-loss check\n", prevPath)
		return nil
	}
	if err != nil {
		return fmt.Errorf("reading previous report: %w", err)
	}
	var prev report
	if err := json.Unmarshal(raw, &prev); err != nil {
		return fmt.Errorf("parsing previous report %s: %w", prevPath, err)
	}
	have := make(map[string]bool, len(recs))
	for _, r := range recs {
		have[trimCPUSuffix(r.Name)] = true
	}
	var missing []string
	for _, r := range prev.Benchmarks {
		name := trimCPUSuffix(r.Name)
		if isGated(name) && !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("gated benchmark(s) present in %s but missing from this run: %s — a gate just became a no-op",
			prevPath, strings.Join(missing, ", "))
	}
	fmt.Fprintf(os.Stderr, "benchparse: check passed: every gated benchmark from %s is present\n", prevPath)
	return nil
}

// trimCPUSuffix strips go test's -GOMAXPROCS sub-benchmark suffix (the
// solver name itself may contain dashes, so only a trailing all-digit
// segment is removed).
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}
