// Quickstart: define a tiny two-task workload, optimize it with LLA, and
// print the resulting latency/share assignment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"lla"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Two pipelines share a CPU and a network link. The "alerts" pipeline
	// has a tight deadline; "analytics" is elastic.
	alerts, err := lla.NewTask("alerts", 40).
		Trigger(lla.Periodic(100)).
		Subtask("detect", "cpu-0", 3).
		Subtask("notify", "link-0", 2).
		Chain("detect", "notify").
		Build()
	if err != nil {
		return err
	}
	analytics, err := lla.NewTask("analytics", 200).
		Trigger(lla.Periodic(100)).
		Subtask("ingest", "cpu-0", 5).
		Subtask("publish", "link-0", 4).
		Chain("ingest", "publish").
		Build()
	if err != nil {
		return err
	}

	w := &lla.Workload{
		Name:  "quickstart",
		Tasks: []*lla.Task{alerts, analytics},
		Resources: []lla.Resource{
			{ID: "cpu-0", Kind: lla.CPU, Availability: 1, LagMs: 1},
			{ID: "link-0", Kind: lla.Link, Availability: 1, LagMs: 1},
		},
		Curves: map[string]lla.Curve{
			"alerts":    lla.Linear{K: 2, CMs: 40},
			"analytics": lla.Linear{K: 2, CMs: 200},
		},
	}

	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		return err
	}
	snap, converged := engine.RunUntilConverged(5000, 1e-7, 20, 1e-3)
	fmt.Printf("converged=%v after %d iterations, total utility %.2f\n\n",
		converged, snap.Iteration, snap.Utility)

	fmt.Println("task       subtask   latency(ms)  share")
	for ti, t := range w.Tasks {
		for si, s := range t.Subtasks {
			fmt.Printf("%-10s %-9s %10.2f  %5.3f\n",
				t.Name, s.Name, snap.LatMs[ti][si], snap.Shares[ti][si])
		}
	}
	fmt.Println()
	for ti, t := range w.Tasks {
		fmt.Printf("%-10s critical path %6.2f ms of %6.2f ms budget (utility %.2f)\n",
			t.Name, snap.CriticalPathMs[ti], t.CriticalMs, snap.TaskUtility[ti])
	}
	for ri, r := range w.Resources {
		fmt.Printf("%-10s share sum %.3f of %.2f available\n", r.ID, snap.ShareSums[ri], r.Availability)
	}
	return nil
}
