// Admission: admission control layered on top of LLA, as the paper suggests
// (Section 3.2: "We assume any admission control is layered on top of our
// approach"). Tasks ask to join a running system; each candidate is first
// screened by the static necessary conditions and then admitted only if LLA
// converges to a feasible allocation with it included (the paper's
// Section 5.4 schedulability test). Rejected tasks leave the running
// allocation untouched; admitted tasks warm-start from the current prices.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"os"

	"lla"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "admission:", err)
		os.Exit(1)
	}
}

// pipeline builds an n-stage chain task across the cluster's resources.
func pipeline(name string, criticalMs float64, execMs float64, resources []string) (*lla.Task, error) {
	b := lla.NewTask(name, criticalMs).Trigger(lla.Periodic(100))
	var names []string
	for i, r := range resources {
		sn := fmt.Sprintf("%s-s%d", name, i)
		b.Subtask(sn, r, execMs)
		names = append(names, sn)
	}
	b.Chain(names...)
	return b.Build()
}

// admit runs the two-stage admission test for candidate inside workload w
// (already containing it). It returns whether the system remains
// schedulable, using a fresh engine so the running system is not disturbed.
func admit(w *lla.Workload) (bool, string) {
	// Stage 1: static necessary conditions (cheap pre-filter).
	rep, err := lla.AnalyzeWorkload(w)
	if err != nil {
		return false, err.Error()
	}
	if !rep.Feasible() {
		return false, "rejected by static floors: " + rep.String()
	}
	// Stage 2: the sufficient test — run LLA and require feasible
	// convergence (Section 5.4).
	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		return false, err.Error()
	}
	snap, ok := engine.RunUntilConverged(4000, 1e-7, 20, 1e-3)
	if !ok || !snap.Feasible(1e-3) {
		return false, fmt.Sprintf("LLA does not converge feasibly (resViol %.3f, pathViol %.3f)",
			snap.MaxResourceViolation, snap.MaxPathViolationFrac)
	}
	return true, fmt.Sprintf("feasible at utility %.2f", snap.Utility)
}

func run() error {
	resources := []lla.Resource{
		{ID: "node-a", Kind: lla.CPU, Availability: 1, LagMs: 1},
		{ID: "node-b", Kind: lla.CPU, Availability: 1, LagMs: 1},
		{ID: "wan", Kind: lla.Link, Availability: 0.8, LagMs: 2},
	}
	resIDs := []string{"node-a", "node-b", "wan"}

	// The running system starts with one resident task.
	resident, err := pipeline("resident", 120, 4, resIDs)
	if err != nil {
		return err
	}
	w := &lla.Workload{
		Name:      "admission",
		Tasks:     []*lla.Task{resident},
		Resources: resources,
		Curves:    map[string]lla.Curve{"resident": lla.Linear{K: 2, CMs: 120}},
	}
	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		return err
	}
	snap, _ := engine.RunUntilConverged(4000, 1e-7, 20, 1e-3)
	fmt.Printf("running system: 1 task, utility %.2f\n\n", snap.Utility)

	// A stream of candidates with progressively tighter demands.
	candidates := []struct {
		name     string
		critical float64
		exec     float64
	}{
		{"batch-analytics", 400, 6},
		{"interactive", 90, 5},
		{"tight-deadline", 25, 4}, // needs ~(4+lag)/share per stage; infeasible
		{"impossible", 10, 5},     // fails even the static floors
	}

	for _, c := range candidates {
		cand, err := pipeline(c.name, c.critical, c.exec, resIDs)
		if err != nil {
			return err
		}
		trial := w.Clone()
		trial.Tasks = append(trial.Tasks, cand)
		trial.Curves[c.name] = lla.Linear{K: 2, CMs: c.critical}

		ok, why := admit(trial)
		if !ok {
			fmt.Printf("REJECT %-16s %s\n", c.name, why)
			continue
		}
		fmt.Printf("ADMIT  %-16s %s\n", c.name, why)
		// Enact: swap the running engine onto the accepted workload,
		// warm-starting from the current prices.
		w = trial
		if err := engine.ReplaceWorkload(w); err != nil {
			return err
		}
		snap, converged := engine.RunUntilConverged(4000, 1e-7, 20, 1e-3)
		fmt.Printf("       system now %d tasks, re-converged=%v at iteration %d, utility %.2f\n",
			len(w.Tasks), converged, snap.Iteration, snap.Utility)
	}

	fmt.Println("\nfinal allocation:")
	final := engine.Snapshot()
	for ti, t := range w.Tasks {
		fmt.Printf("  %-16s crit.path %6.2f / %6.0f ms\n", t.Name, final.CriticalPathMs[ti], t.CriticalMs)
	}
	return nil
}
