// Admission: price-driven admission control layered on top of LLA, as the
// paper suggests (Section 3.2: "We assume any admission control is layered
// on top of our approach"). A running engine is wrapped in an
// AdmissionController; each arriving task passes three gates — the static
// necessary conditions, a price screen against the live dual variables, and
// a bounded warm-started trial optimization on a forked scratch engine
// (the paper's Section 5.4 schedulability test, made incremental) — and
// admitted tasks are enacted with a warm-started re-convergence. Rejected
// candidates are quarantined with event-counted backoff so repeat offers
// stay cheap, and a price-guided Placer picks each subtask's resource at
// the live prices instead of trusting the advisory bindings.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"os"

	"lla"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "admission:", err)
		os.Exit(1)
	}
}

// offer wraps a template task in a placed candidate: the bindings inside
// tpl are advisory, and a nil candidate set lets the placer choose any
// workload resource per stage at the live prices.
func offer(ctrl *lla.AdmissionController, tpl lla.ChurnTemplate, name string, advisory []string) error {
	t, curve, err := tpl.Instantiate(name, advisory)
	if err != nil {
		return err
	}
	d, err := ctrl.OfferPlaced(lla.PlacedCandidate{Task: t, Curve: curve})
	if err != nil {
		return err
	}
	report(d)
	return nil
}

// report prints one decision-log entry.
func report(d lla.AdmissionDecision) {
	verdict := "REJECT"
	if d.Admitted {
		verdict = "ADMIT "
	}
	if d.Kind == "departure" {
		verdict = "DEPART"
	}
	fmt.Printf("%s %-14s gate=%-10s %s\n", verdict, d.Task, d.Stage, d.Reason)
	if d.Admitted && d.ReconvergeIters > 0 {
		fmt.Printf("       re-converged in %d warm-started iterations, utility now %.2f\n",
			d.ReconvergeIters, d.Utility)
	}
}

func run() error {
	resources := []lla.Resource{
		{ID: "node-a", Kind: lla.CPU, Availability: 1, LagMs: 1},
		{ID: "node-b", Kind: lla.CPU, Availability: 1, LagMs: 1},
		{ID: "wan", Kind: lla.Link, Availability: 0.8, LagMs: 2},
	}
	resIDs := []string{"node-a", "node-b", "wan"}

	// The running system starts with one resident three-stage pipeline.
	residentTpl := lla.ChurnTemplate{Name: "resident", CriticalMs: 150, StageExecMs: []float64{4, 3, 4}, UtilityK: 2}
	resident, curve, err := residentTpl.Instantiate("resident", resIDs)
	if err != nil {
		return err
	}
	w := &lla.Workload{
		Name:      "admission",
		Tasks:     []*lla.Task{resident},
		Resources: resources,
		Curves:    map[string]lla.Curve{"resident": curve},
	}
	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		return err
	}
	defer engine.Close()
	snap, _ := engine.RunUntilConverged(4000, 1e-7, 20, 1e-3)
	fmt.Printf("running system: 1 task, utility %.2f\n\n", snap.Utility)

	// The controller screens offers against the converged prices; the
	// placer rebinds each stage to the cheapest feasible resource.
	ctrl := lla.NewAdmissionController(engine, lla.AdmissionConfig{})
	ctrl.UsePlacer(lla.NewPlacer(lla.PlacerConfig{}))

	// A stream of candidates with progressively tighter demands. Advisory
	// bindings deliberately pile onto node-a; the placer spreads them.
	loose := lla.ChurnTemplate{Name: "batch", CriticalMs: 400, StageExecMs: []float64{6, 5}, UtilityK: 2}
	medium := lla.ChurnTemplate{Name: "interactive", CriticalMs: 90, StageExecMs: []float64{5, 4}, UtilityK: 2}
	impossible := lla.ChurnTemplate{Name: "impossible", CriticalMs: 8, StageExecMs: []float64{5, 5}, UtilityK: 2}
	advisory := []string{"node-a", "node-a"}

	if err := offer(ctrl, loose, "batch", advisory); err != nil {
		return err
	}
	if err := offer(ctrl, medium, "interactive", advisory); err != nil {
		return err
	}
	// Fails the static floors: no allocation can meet an 8 ms deadline.
	if err := offer(ctrl, impossible, "impossible", advisory); err != nil {
		return err
	}
	// An immediate repeat offer hits the quarantine, not the full gates.
	if err := offer(ctrl, impossible, "impossible", advisory); err != nil {
		return err
	}

	// A departure frees capacity; the remaining tasks re-converge warm.
	d, err := ctrl.Remove("batch")
	if err != nil {
		return err
	}
	report(d)

	// Enough controller events have passed that the quarantine has
	// expired: the repeat offer is evaluated for real again (and fails the
	// same static gate — backoff just makes retries cheap, not successful).
	if err := offer(ctrl, impossible, "impossible", advisory); err != nil {
		return err
	}

	fmt.Println("\nfinal allocation:")
	final := engine.Snapshot()
	for ti, t := range engine.Problem().Workload().Tasks {
		fmt.Printf("  %-14s crit.path %6.2f / %6.0f ms, stages on", t.Name, final.CriticalPathMs[ti], t.CriticalMs)
		for _, s := range t.Subtasks {
			fmt.Printf(" %s", s.Resource)
		}
		fmt.Println()
	}
	fmt.Printf("\ndecision log: %d entries, final utility %.2f\n", len(ctrl.Log()), engine.Snapshot().Utility)
	return nil
}
