// Distributed: run LLA as genuinely distributed resource and controller
// nodes exchanging price/latency messages over TCP on localhost, and verify
// the converged allocation matches the synchronous engine.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"math"
	"os"

	"lla"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	w := lla.BaseWorkload()

	// Registry: every node name gets a kernel-assigned localhost port.
	registry := map[string]string{"coordinator": "127.0.0.1:0"}
	for _, t := range w.Tasks {
		registry["ctl/"+t.Name] = "127.0.0.1:0"
	}
	for _, r := range w.Resources {
		registry["res/"+r.ID] = "127.0.0.1:0"
	}
	net := lla.NewTCPNetwork(registry)

	rt, err := lla.NewDistributed(w, lla.Config{}, net)
	if err != nil {
		return err
	}
	defer rt.Close()

	fmt.Printf("running %d controller nodes and %d resource nodes over TCP...\n",
		len(w.Tasks), len(w.Resources))
	res, err := rt.RunUntilConverged(3000, 1e-7, 20)
	if err != nil {
		return err
	}
	fmt.Printf("converged=%v after %d rounds, utility %.3f\n\n", res.Converged, res.Rounds, res.Utility)

	// Cross-check against the synchronous engine run for the same rounds.
	engine, err := lla.NewEngine(lla.BaseWorkload(), lla.Config{})
	if err != nil {
		return err
	}
	engine.Run(res.Rounds, nil)
	want := engine.Snapshot()
	maxDiff := 0.0
	for ti := range res.LatMs {
		for si := range res.LatMs[ti] {
			if d := math.Abs(res.LatMs[ti][si] - want.LatMs[ti][si]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("synchronous engine after %d iterations: utility %.3f\n", res.Rounds, want.Utility)
	fmt.Printf("max per-subtask latency difference vs engine: %.2e ms\n\n", maxDiff)

	fmt.Println("final resource prices (mu):")
	for ri, r := range w.Resources {
		fmt.Printf("  %-4s %8.2f\n", r.ID, res.Mu[ri])
	}
	return nil
}
