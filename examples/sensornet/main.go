// Sensornet: the paper's "complex pull" scenario — a gateway polls two
// sensor clusters, aggregates their readings and delivers a fused report.
// The example optimizes latency assignments with LLA, enacts them on the
// discrete-event simulator, and compares the measured end-to-end latency
// distributions against the even-slicing baseline, demonstrating why a
// capacity-aware optimizer matters on a congested deployment.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"os"

	"lla"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sensornet:", err)
		os.Exit(1)
	}
}

// buildWorkload: two pull-aggregation tasks contending on the gateway CPU
// and backbone link.
func buildWorkload() (*lla.Workload, error) {
	poll := func(name string, critical, execScale float64, period float64) (*lla.Task, error) {
		return lla.NewTask(name, critical).
			Trigger(lla.Poisson(period)).
			Subtask("request", "gw-cpu", 1*execScale).
			Subtask("cluster-a", "radio-a", 3*execScale).
			Subtask("cluster-b", "radio-b", 4*execScale).
			Subtask("aggregate", "gw-cpu2", 2*execScale).
			Subtask("deliver", "backbone", 2*execScale).
			Edge("request", "cluster-a").
			Edge("request", "cluster-b").
			Edge("cluster-a", "aggregate").
			Edge("cluster-b", "aggregate").
			Edge("aggregate", "deliver").
			Build()
	}
	fast, err := poll("telemetry", 60, 1, 50)
	if err != nil {
		return nil, err
	}
	slow, err := poll("inventory", 240, 1.6, 120)
	if err != nil {
		return nil, err
	}
	return &lla.Workload{
		Name:  "sensornet",
		Tasks: []*lla.Task{fast, slow},
		Resources: []lla.Resource{
			{ID: "gw-cpu", Kind: lla.CPU, Availability: 1, LagMs: 1},
			{ID: "gw-cpu2", Kind: lla.CPU, Availability: 1, LagMs: 1},
			{ID: "radio-a", Kind: lla.Link, Availability: 0.6, LagMs: 2},
			{ID: "radio-b", Kind: lla.Link, Availability: 0.6, LagMs: 2},
			{ID: "backbone", Kind: lla.Link, Availability: 0.8, LagMs: 1},
		},
		Curves: map[string]lla.Curve{
			"telemetry": lla.Linear{K: 2, CMs: 60},
			"inventory": lla.Linear{K: 2, CMs: 240},
		},
	}, nil
}

// measure enacts an assignment of shares and reports per-task latency
// percentiles after simulating for durMs.
func measure(w *lla.Workload, shares [][]float64, seed int64, durMs float64) ([][3]float64, error) {
	world, err := lla.NewSimulator(w, lla.SimConfig{Scheduler: lla.SchedQuantum, QuantumMs: 4, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := world.SetShares(shares); err != nil {
		return nil, err
	}
	world.RunFor(durMs / 5) // warm-up
	world.ResetStats()
	world.RunFor(durMs)
	out := make([][3]float64, len(w.Tasks))
	for ti := range w.Tasks {
		lat := world.TaskLatency(ti)
		out[ti] = [3]float64{lat.Quantile(0.5), lat.Quantile(0.95), lat.Quantile(0.99)}
	}
	return out, nil
}

// sharesFor converts a latency assignment into shares via the workload's
// share model.
func sharesFor(w *lla.Workload, latMs [][]float64) [][]float64 {
	shares := make([][]float64, len(w.Tasks))
	for ti, t := range w.Tasks {
		shares[ti] = make([]float64, len(t.Subtasks))
		for si, s := range t.Subtasks {
			r, _ := w.ResourceByID(s.Resource)
			shares[ti][si] = (s.ExecMs + r.LagMs) / latMs[ti][si]
		}
	}
	return shares
}

func run() error {
	w, err := buildWorkload()
	if err != nil {
		return err
	}

	// LLA assignment.
	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		return err
	}
	snap, ok := engine.RunUntilConverged(8000, 1e-7, 20, 1e-3)
	if !ok {
		return fmt.Errorf("LLA did not converge: %v", snap)
	}

	// Even-slicing baseline (capacity-blind).
	even, err := lla.EvenSlice(w)
	if err != nil {
		return err
	}
	evenEval, err := lla.EvaluateAssignment(w, even, lla.WeightPathNormalized)
	if err != nil {
		return err
	}

	fmt.Printf("model view:    LLA utility %.2f (feasible: %v)\n", snap.Utility, snap.Feasible(1e-3))
	fmt.Printf("               even-slice utility %.2f (max resource overload %.2f)\n\n",
		evenEval.Utility, evenEval.MaxResourceViolation)

	const simMs = 120000
	llaLat, err := measure(w, snap.Shares, 7, simMs)
	if err != nil {
		return err
	}
	evenLat, err := measure(w, sharesFor(w, even.LatMs), 7, simMs)
	if err != nil {
		return err
	}

	fmt.Println("measured end-to-end latency (ms):")
	fmt.Println("task        policy       p50      p95      p99   deadline")
	for ti, t := range w.Tasks {
		fmt.Printf("%-11s lla     %8.1f %8.1f %8.1f %10.0f\n", t.Name, llaLat[ti][0], llaLat[ti][1], llaLat[ti][2], t.CriticalMs)
		fmt.Printf("%-11s even    %8.1f %8.1f %8.1f %10.0f\n", t.Name, evenLat[ti][0], evenLat[ti][1], evenLat[ti][2], t.CriticalMs)
	}
	fmt.Println()
	if evenEval.MaxResourceViolation > 0.01 {
		fmt.Println("(the capacity-blind even slicer overloads the scarce radios; LLA prices them)")
	} else {
		fmt.Printf("(both are feasible here, but LLA's utility %.0f beats even slicing's %.0f by\n",
			snap.Utility, evenEval.Utility)
		fmt.Println(" spending the scarce radio capacity where the deadlines are tight)")
	}
	return nil
}
