// Errorcorrection: the paper's Section 6 system experiment as a runnable
// program, driven by the library's ClosedLoop. The four-task prototype
// workload executes on the simulated testbed while LLA assigns shares from
// its latency model; halfway through, online model error correction is
// enabled and the optimizer discovers it can meet the fast tasks' deadlines
// with the minimum share, reallocating the surplus to the slow tasks
// (Figure 8).
//
//	go run ./examples/errorcorrection
package main

import (
	"fmt"
	"os"

	"lla"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "errorcorrection:", err)
		os.Exit(1)
	}
}

func run() error {
	loop, err := lla.NewClosedLoop(
		lla.PrototypeWorkload(),
		lla.Config{},
		lla.SimConfig{Scheduler: lla.SchedQuantum, QuantumMs: 5, Seed: 1},
		lla.ClosedLoopConfig{EpochMs: 1000},
	)
	if err != nil {
		return err
	}

	const (
		epochs   = 30
		enableAt = 10
	)
	fmt.Println("epoch  sim-time  fast-share  slow-share  fast-errMs  enacted  correction")
	observe := func(e lla.ClosedLoopEpoch) {
		state := "off"
		if e.CorrectionActive {
			state = "on"
		}
		fmt.Printf("%5d  %7.0fs  %10.3f  %10.3f  %10.1f  %7v  %s\n",
			e.Index, e.SimTimeMs/1000, e.Snapshot.Shares[0][0], e.Snapshot.Shares[2][0],
			e.ErrMs[0][0], e.Enacted, state)
	}

	// Phase 1: pure model (the paper starts without correction).
	loop.SetCorrection(false)
	if err := loop.RunEpochs(enableAt, observe); err != nil {
		return err
	}
	fmt.Println(">>> enabling online model error correction")
	loop.SetCorrection(true)
	if err := loop.RunEpochs(epochs-enableAt, observe); err != nil {
		return err
	}

	var last lla.ClosedLoopEpoch
	if err := loop.RunEpochs(1, func(e lla.ClosedLoopEpoch) { last = e }); err != nil {
		return err
	}
	fmt.Printf("\nfinal: fast share %.3f (paper: 0.20), slow share %.3f (paper: 0.25)\n",
		last.Snapshot.Shares[0][0], last.Snapshot.Shares[2][0])
	fmt.Printf("enactment policy pushed %d allocations over %d epochs\n", loop.Enactments(), epochs+1)
	fmt.Println("the model over-predicted latency by the learned error; correction freed the surplus")
	return nil
}
