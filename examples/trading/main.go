// Trading: the program-trading scenario from the paper's introduction.
// Market data fans out to a pricing engine and a risk monitor while order
// flow competes for the same network uplink and CPUs. LLA continuously
// balances the shares; mid-run the market data rate surges (raising the
// pricing pipeline's minimum shares) and a CPU loses capacity, and the
// optimizer re-converges to a new allocation — the paper's workload and
// resource variations (Section 1).
//
//	go run ./examples/trading
package main

import (
	"fmt"
	"os"

	"lla"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trading:", err)
		os.Exit(1)
	}
}

// buildWorkload assembles the trading floor: three tasks over two CPUs and
// two links.
func buildWorkload() (*lla.Workload, error) {
	// Market data pipeline: feed handler fans out to pricing and risk.
	md, err := lla.NewTask("market-data", 50).
		Trigger(lla.Bursty(5, 400, 300)).
		SubtaskOpts(lla.Subtask{Name: "feed", Resource: "cpu-md", ExecMs: 1, MinShare: 0.2}).
		SubtaskOpts(lla.Subtask{Name: "price", Resource: "cpu-strat", ExecMs: 2, MinShare: 0.2}).
		SubtaskOpts(lla.Subtask{Name: "risk", Resource: "link-lan", ExecMs: 2, MinShare: 0.1}).
		Edge("feed", "price").
		Edge("feed", "risk").
		Build()
	if err != nil {
		return nil, err
	}

	// Order pipeline: strategy decision then exchange uplink; tight deadline.
	orders, err := lla.NewTask("orders", 30).
		Trigger(lla.Poisson(50)).
		SubtaskOpts(lla.Subtask{Name: "decide", Resource: "cpu-strat", ExecMs: 3, MinShare: 0.1}).
		SubtaskOpts(lla.Subtask{Name: "send", Resource: "link-wan", ExecMs: 2, MinShare: 0.1}).
		Chain("decide", "send").
		Build()
	if err != nil {
		return nil, err
	}

	// Analytics: elastic background model fitting; benefits from surplus.
	analytics, err := lla.NewTask("analytics", 500).
		Trigger(lla.Periodic(200)).
		Subtask("aggregate", "cpu-md", 10).
		Subtask("fit", "cpu-strat", 15).
		Subtask("report", "link-lan", 5).
		Chain("aggregate", "fit", "report").
		Build()
	if err != nil {
		return nil, err
	}

	return &lla.Workload{
		Name:  "trading-floor",
		Tasks: []*lla.Task{md, orders, analytics},
		Resources: []lla.Resource{
			{ID: "cpu-md", Kind: lla.CPU, Availability: 1, LagMs: 1},
			{ID: "cpu-strat", Kind: lla.CPU, Availability: 1, LagMs: 1},
			{ID: "link-lan", Kind: lla.Link, Availability: 1, LagMs: 0.5},
			{ID: "link-wan", Kind: lla.Link, Availability: 1, LagMs: 0.5},
		},
		Curves: map[string]lla.Curve{
			// Market data and orders approximate inelastic deadlines.
			"market-data": lla.ExpPenalty{A: 100, B: 2, Tau: 12},
			"orders":      lla.ExpPenalty{A: 100, B: 2, Tau: 8},
			// Analytics trades latency for surplus capacity.
			"analytics": lla.Linear{K: 2, CMs: 500},
		},
	}, nil
}

func printAllocation(w *lla.Workload, snap lla.Snapshot, label string) {
	fmt.Printf("--- %s (utility %.2f, iteration %d) ---\n", label, snap.Utility, snap.Iteration)
	for ti, t := range w.Tasks {
		fmt.Printf("%-12s crit.path %6.2f / %6.2f ms  shares:", t.Name, snap.CriticalPathMs[ti], t.CriticalMs)
		for si, s := range t.Subtasks {
			fmt.Printf(" %s=%.3f", s.Name, snap.Shares[ti][si])
		}
		fmt.Println()
	}
	fmt.Println()
}

func run() error {
	w, err := buildWorkload()
	if err != nil {
		return err
	}
	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		return err
	}

	snap, ok := engine.RunUntilConverged(8000, 1e-7, 20, 1e-3)
	if !ok {
		return fmt.Errorf("initial optimization did not converge: %v", snap)
	}
	printAllocation(w, snap, "steady state")

	// Market surge: the feed rate triples, tripling the shares needed to
	// keep the market-data queues bounded.
	fmt.Println(">>> market data surge: minimum shares for the feed pipeline rise")
	for _, sub := range []struct {
		task, name string
		min        float64
	}{
		{"market-data", "feed", 0.5},
		{"market-data", "price", 0.5},
	} {
		if err := engine.SetMinShare(sub.task, sub.name, sub.min); err != nil {
			return err
		}
	}
	snap, ok = engine.RunUntilConverged(8000, 1e-7, 20, 1e-3)
	if !ok {
		return fmt.Errorf("did not re-converge after surge: %v", snap)
	}
	printAllocation(w, snap, "after market surge")

	// Partial CPU failure: the strategy CPU loses 30% of its capacity.
	fmt.Println(">>> resource degradation: cpu-strat availability drops to 0.7")
	if err := engine.SetAvailability("cpu-strat", 0.7); err != nil {
		return err
	}
	snap, ok = engine.RunUntilConverged(8000, 1e-7, 20, 1e-3)
	if !ok {
		return fmt.Errorf("did not re-converge after degradation: %v", snap)
	}
	printAllocation(w, snap, "after degradation")
	return nil
}
