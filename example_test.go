package lla_test

import (
	"fmt"

	"lla"
)

// ExampleNewEngine optimizes a one-task workload and prints the allocation.
func ExampleNewEngine() {
	t, err := lla.NewTask("pipeline", 50).
		Trigger(lla.Periodic(100)).
		Subtask("stage1", "cpu", 4).
		Subtask("stage2", "net", 3).
		Chain("stage1", "stage2").
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	w := &lla.Workload{
		Name:  "example",
		Tasks: []*lla.Task{t},
		Resources: []lla.Resource{
			{ID: "cpu", Kind: lla.CPU, Availability: 1, LagMs: 1},
			{ID: "net", Kind: lla.Link, Availability: 1, LagMs: 1},
		},
		Curves: map[string]lla.Curve{"pipeline": lla.Linear{K: 2, CMs: 50}},
	}
	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	snap, converged := engine.RunUntilConverged(5000, 1e-7, 20, 1e-3)
	// Alone on both resources, the task takes the full availability:
	// latency = (WCET + lag) / 1.
	fmt.Printf("converged=%v stage1=%.1fms stage2=%.1fms\n",
		converged, snap.LatMs[0][0], snap.LatMs[0][1])
	// Output: converged=true stage1=5.0ms stage2=4.0ms
}

// ExampleNewTask shows the fluent task builder with a fan-out graph.
func ExampleNewTask() {
	t, err := lla.NewTask("fanout", 100).
		Subtask("root", "r0", 1).
		Subtask("left", "r1", 2).
		Subtask("right", "r2", 3).
		Edge("root", "left").
		Edge("root", "right").
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	paths, _ := t.Paths()
	fmt.Printf("subtasks=%d paths=%d\n", len(t.Subtasks), len(paths))
	// Output: subtasks=3 paths=2
}

// ExampleBaseWorkload inspects the paper's Table 1 workload.
func ExampleBaseWorkload() {
	w := lla.BaseWorkload()
	fmt.Printf("%s: %d tasks, %d subtasks, %d resources\n",
		w.Name, len(w.Tasks), w.TotalSubtasks(), len(w.Resources))
	// Output: base-3task: 3 tasks, 21 subtasks, 8 resources
}
