package lla_test

import (
	"math"
	"testing"

	"lla"
)

// smallWorkload builds a two-task workload through the public facade only.
func smallWorkload(t testing.TB) *lla.Workload {
	t.Helper()
	fast, err := lla.NewTask("fast", 40).
		Trigger(lla.Periodic(100)).
		Subtask("a", "cpu", 3).
		Subtask("b", "net", 2).
		Chain("a", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := lla.NewTask("slow", 300).
		Trigger(lla.Poisson(150)).
		Subtask("x", "cpu", 6).
		Subtask("y", "net", 5).
		Chain("x", "y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &lla.Workload{
		Name:  "facade-small",
		Tasks: []*lla.Task{fast, slow},
		Resources: []lla.Resource{
			{ID: "cpu", Kind: lla.CPU, Availability: 1, LagMs: 1},
			{ID: "net", Kind: lla.Link, Availability: 1, LagMs: 1},
		},
		Curves: map[string]lla.Curve{
			"fast": lla.Linear{K: 2, CMs: 40},
			"slow": lla.Linear{K: 2, CMs: 300},
		},
	}
}

func TestFacadeEngineEndToEnd(t *testing.T) {
	w := smallWorkload(t)
	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := engine.RunUntilConverged(5000, 1e-7, 20, 1e-3)
	if !ok {
		t.Fatalf("no convergence: %v", snap)
	}
	if !snap.Feasible(1e-3) {
		t.Fatalf("infeasible: %v", snap)
	}
	// Both resources saturated under linear (always-hungry) utilities.
	for ri, sum := range snap.ShareSums {
		if math.Abs(sum-1) > 0.01 {
			t.Errorf("resource %d share sum %v, want ≈1", ri, sum)
		}
	}
}

func TestFacadeSimulatorEndToEnd(t *testing.T) {
	w := smallWorkload(t)
	engine, err := lla.NewEngine(w, lla.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := engine.RunUntilConverged(5000, 1e-7, 20, 1e-3)

	world, err := lla.NewSimulator(w, lla.SimConfig{Scheduler: lla.SchedGPS, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.SetShares(snap.Shares); err != nil {
		t.Fatal(err)
	}
	world.RunFor(30000)
	for ti, tk := range w.Tasks {
		p95 := world.TaskLatency(ti).Quantile(0.95)
		if p95 > tk.CriticalMs {
			t.Errorf("%s measured p95 %.1f exceeds deadline %.0f", tk.Name, p95, tk.CriticalMs)
		}
		if p95 <= 0 || math.IsNaN(p95) {
			t.Errorf("%s p95 = %v, want positive", tk.Name, p95)
		}
	}
}

func TestFacadeDistributedEndToEnd(t *testing.T) {
	w := smallWorkload(t)
	rt, err := lla.NewDistributed(w, lla.Config{}, lla.NewInprocNetwork(lla.InprocConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.RunUntilConverged(3000, 1e-7, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("distributed run did not converge in %d rounds", res.Rounds)
	}
	// Same utility as the synchronous engine.
	engine, err := lla.NewEngine(smallWorkload(t), lla.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := engine.RunUntilConverged(5000, 1e-7, 20, 1e-3)
	if math.Abs(res.Utility-want.Utility) > 0.01*math.Abs(want.Utility) {
		t.Errorf("distributed utility %v vs engine %v", res.Utility, want.Utility)
	}
}

func TestFacadeBaselinesEndToEnd(t *testing.T) {
	w := smallWorkload(t)
	even, err := lla.EvenSlice(w)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := lla.EvaluateAssignment(w, even, lla.WeightPathNormalized)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MaxPathViolationFrac > 1e-9 {
		t.Errorf("even slicing violated a deadline: %v", ev.MaxPathViolationFrac)
	}
	_, central, err := lla.CentralSolve(w, lla.CentralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !central.Feasible(0.02) {
		t.Errorf("central solution infeasible: %+v", central)
	}
	if central.Utility < ev.Utility-1e-6 {
		t.Errorf("central %.2f worse than even slicing %.2f", central.Utility, ev.Utility)
	}
}

func TestFacadePaperWorkloads(t *testing.T) {
	if w := lla.BaseWorkload(); len(w.Tasks) != 3 || w.TotalSubtasks() != 21 {
		t.Error("base workload shape wrong")
	}
	if w := lla.PrototypeWorkload(); len(w.Tasks) != 4 || len(w.Resources) != 3 {
		t.Error("prototype workload shape wrong")
	}
	w, err := lla.RandomWorkload(lla.DefaultRandomConfig(5))
	if err != nil || w.Validate() != nil {
		t.Errorf("random workload: %v", err)
	}
	w2, err := lla.Replicate(lla.BaseWorkload(), 2, 4)
	if err != nil || len(w2.Tasks) != 6 {
		t.Errorf("replicate: %v", err)
	}
}

func TestFacadeCorrector(t *testing.T) {
	c, err := lla.NewCorrector(lla.CorrectorConfig{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.ErrMs() != 0 {
		t.Error("fresh corrector should report zero")
	}
}

// Random schedulable workloads: LLA must converge to a feasible point and
// beat (or match) every feasible slicing baseline. This is the library's
// headline guarantee exercised as a property test over generated problems.
func TestFacadeLLADominatesOnRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := lla.DefaultRandomConfig(seed)
		cfg.SlackFactor = 10
		w, err := lla.RandomWorkload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := lla.NewEngine(w, lla.Config{})
		if err != nil {
			t.Fatal(err)
		}
		snap, ok := engine.RunUntilConverged(8000, 1e-8, 30, 1e-2)
		if !ok {
			t.Errorf("seed %d: did not converge: %v", seed, snap)
			continue
		}
		if !snap.Feasible(1e-2) {
			t.Errorf("seed %d: infeasible: %v", seed, snap)
		}
		for _, mk := range []func(*lla.Workload) (*lla.BaselineAssignment, error){
			lla.EvenSlice, lla.ProportionalSlice,
		} {
			a, err := mk(w)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := lla.EvaluateAssignment(w, a, lla.WeightPathNormalized)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Feasible(1e-6) && ev.Utility > snap.Utility+1e-6 {
				t.Errorf("seed %d: %s utility %.3f beats LLA %.3f", seed, a.Name, ev.Utility, snap.Utility)
			}
		}
	}
}
