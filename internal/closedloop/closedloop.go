// Package closedloop packages the paper's deployed system shape (Section
// 6): the LLA optimizer running continuously against a live (here:
// simulated) proportional-share system, with allocations enacted through an
// enactment policy and the share model improved online by additive error
// correction from measured high-percentile latencies. eval.Fig8 and the
// errorcorrection example are thin drivers around this loop.
package closedloop

import (
	"fmt"

	"lla/internal/core"
	"lla/internal/errcorr"
	"lla/internal/sim"
	"lla/internal/workload"
)

// Config parametrizes the loop.
type Config struct {
	// EpochMs is the simulated time between optimizer enactments
	// (default 1000).
	EpochMs float64
	// ConvergeIters bounds the optimizer iterations per epoch
	// (default 4000).
	ConvergeIters int
	// Corrector configures the per-subtask error correctors.
	Corrector errcorr.Config
	// CorrectionDisabled turns off online error correction (the loop then
	// only optimizes and enacts on the raw model).
	CorrectionDisabled bool
}

func (c Config) withDefaults() Config {
	if c.EpochMs == 0 {
		c.EpochMs = 1000
	}
	if c.ConvergeIters == 0 {
		c.ConvergeIters = 4000
	}
	return c
}

// Epoch reports one loop iteration to the observer.
type Epoch struct {
	// Index is the zero-based epoch number.
	Index int
	// SimTimeMs is the simulation clock after the epoch.
	SimTimeMs float64
	// Snapshot is the optimizer state enacted during the epoch.
	Snapshot core.Snapshot
	// Enacted reports whether the enactment policy pushed new shares.
	Enacted bool
	// ErrMs[ti][si] are the current additive model errors.
	ErrMs [][]float64
	// CorrectionActive reports whether error correction ran this epoch.
	CorrectionActive bool
}

// Loop binds an engine, a simulated world, correctors and an enactor.
type Loop struct {
	cfg        Config
	w          *workload.Workload
	engine     *core.Engine
	world      *sim.Sim
	enactor    *core.Enactor
	correctors [][]*errcorr.Corrector
	correcting bool
	epoch      int
}

// New builds a closed loop over a workload: a fresh engine and simulator
// are constructed from the given configurations.
func New(w *workload.Workload, engineCfg core.Config, simCfg sim.Config, cfg Config) (*Loop, error) {
	cfg = cfg.withDefaults()
	engine, err := core.NewEngine(w, engineCfg)
	if err != nil {
		return nil, err
	}
	world, err := sim.New(w, simCfg)
	if err != nil {
		return nil, err
	}
	l := &Loop{
		cfg:        cfg,
		w:          w,
		engine:     engine,
		world:      world,
		enactor:    core.NewEnactor(),
		correcting: !cfg.CorrectionDisabled,
	}
	for _, tk := range w.Tasks {
		row := make([]*errcorr.Corrector, len(tk.Subtasks))
		for si := range tk.Subtasks {
			c, err := errcorr.New(cfg.Corrector)
			if err != nil {
				return nil, err
			}
			row[si] = c
		}
		l.correctors = append(l.correctors, row)
	}
	return l, nil
}

// Engine exposes the optimizer (e.g. for dynamic workload/resource changes
// between epochs).
func (l *Loop) Engine() *core.Engine { return l.engine }

// World exposes the simulated system.
func (l *Loop) World() *sim.Sim { return l.world }

// SetCorrection enables or disables online error correction at runtime (the
// Figure 8 experiment enables it mid-run).
func (l *Loop) SetCorrection(on bool) { l.correcting = on && !l.cfg.CorrectionDisabled }

// Correcting reports whether correction is active.
func (l *Loop) Correcting() bool { return l.correcting }

// RunEpochs executes n epochs: optimize → enact (policy-gated) → simulate →
// observe → correct. observe may be nil.
func (l *Loop) RunEpochs(n int, observe func(Epoch)) error {
	for i := 0; i < n; i++ {
		snap, _ := l.engine.RunUntilConverged(l.cfg.ConvergeIters, 1e-7, 20, 1e-2)

		enacted := false
		if shares := l.enactor.Consider(snap); shares != nil {
			if err := l.world.SetShares(shares); err != nil {
				return fmt.Errorf("closedloop: enacting epoch %d: %w", l.epoch, err)
			}
			enacted = true
		}

		l.world.ResetStats()
		l.world.RunFor(l.cfg.EpochMs)

		if l.correcting {
			if err := l.correct(snap); err != nil {
				return err
			}
		}

		ep := Epoch{
			Index:            l.epoch,
			SimTimeMs:        l.world.NowMs(),
			Snapshot:         snap,
			Enacted:          enacted,
			CorrectionActive: l.correcting,
		}
		for ti := range l.correctors {
			row := make([]float64, len(l.correctors[ti]))
			for si := range l.correctors[ti] {
				row[si] = l.correctors[ti][si].ErrMs()
			}
			ep.ErrMs = append(ep.ErrMs, row)
		}
		if observe != nil {
			observe(ep)
		}
		l.epoch++
	}
	return nil
}

// correct folds the epoch's measured latencies into the correctors and the
// engine's share functions: the sampled high percentile is compared against
// the uncorrected model prediction (c+l)/share (Section 6.3).
func (l *Loop) correct(snap core.Snapshot) error {
	prob := l.engine.Problem()
	for ti, tk := range l.w.Tasks {
		for si := range tk.Subtasks {
			base := prob.Tasks[ti].Share[si]
			base.ErrMs = 0
			predicted := base.LatencyFor(snap.Shares[ti][si])
			c := l.correctors[ti][si]
			if !c.Observe(l.world.SubtaskLatency(ti, si), predicted) {
				continue
			}
			if err := l.engine.SetErrorMs(tk.Name, prob.Tasks[ti].SubtaskNames[si], c.ErrMs()); err != nil {
				return fmt.Errorf("closedloop: correcting %s/%s: %w", tk.Name, prob.Tasks[ti].SubtaskNames[si], err)
			}
		}
	}
	return nil
}

// Enactments reports how many allocations the loop has pushed to the world.
func (l *Loop) Enactments() int { return l.enactor.Enactments() }
