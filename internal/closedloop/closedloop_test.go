package closedloop

import (
	"math"
	"testing"

	"lla/internal/core"
	"lla/internal/errcorr"
	"lla/internal/sim"
	"lla/internal/workload"
)

func newLoop(t *testing.T, cfg Config) *Loop {
	t.Helper()
	l, err := New(workload.Prototype(), core.Config{},
		sim.Config{Scheduler: sim.Quantum, QuantumMs: 5, Seed: 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// The full Figure 8 behaviour through the closed loop: correction off, the
// loop holds the model optimum; enabling it shifts fast shares to the
// minimum and slow shares to the surplus.
func TestLoopReproducesErrorCorrectionShift(t *testing.T) {
	l := newLoop(t, Config{EpochMs: 800})
	l.SetCorrection(false)

	var last Epoch
	if err := l.RunEpochs(6, func(e Epoch) { last = e }); err != nil {
		t.Fatal(err)
	}
	if math.Abs(last.Snapshot.Shares[0][0]-10.0/35) > 0.01 {
		t.Fatalf("pre-correction fast share = %v, want 0.286", last.Snapshot.Shares[0][0])
	}
	if last.CorrectionActive {
		t.Fatal("correction should be off")
	}
	for _, row := range last.ErrMs {
		for _, v := range row {
			if v != 0 {
				t.Fatalf("errors should be zero before correction: %v", last.ErrMs)
			}
		}
	}

	l.SetCorrection(true)
	if !l.Correcting() {
		t.Fatal("correction should be on")
	}
	if err := l.RunEpochs(12, func(e Epoch) { last = e }); err != nil {
		t.Fatal(err)
	}
	if math.Abs(last.Snapshot.Shares[0][0]-0.2) > 0.01 {
		t.Errorf("post-correction fast share = %v, want 0.20", last.Snapshot.Shares[0][0])
	}
	if math.Abs(last.Snapshot.Shares[2][0]-0.25) > 0.01 {
		t.Errorf("post-correction slow share = %v, want 0.25", last.Snapshot.Shares[2][0])
	}
	if last.ErrMs[0][0] > -5 {
		t.Errorf("learned fast error = %v, want clearly negative", last.ErrMs[0][0])
	}
}

// The enactment policy keeps the loop quiet once converged: enactments stop
// growing while epochs continue.
func TestLoopEnactmentGoesQuiet(t *testing.T) {
	l := newLoop(t, Config{EpochMs: 500, CorrectionDisabled: true})
	if err := l.RunEpochs(5, nil); err != nil {
		t.Fatal(err)
	}
	afterWarm := l.Enactments()
	if afterWarm == 0 {
		t.Fatal("first epoch must enact")
	}
	if err := l.RunEpochs(5, nil); err != nil {
		t.Fatal(err)
	}
	if l.Enactments() != afterWarm {
		t.Errorf("enactments grew from %d to %d on a stable system", afterWarm, l.Enactments())
	}
}

// CorrectionDisabled makes SetCorrection(true) a no-op.
func TestLoopCorrectionDisabledIsSticky(t *testing.T) {
	l := newLoop(t, Config{CorrectionDisabled: true})
	l.SetCorrection(true)
	if l.Correcting() {
		t.Fatal("disabled correction must not be re-enabled")
	}
}

// Epoch observations are well-formed and monotone in time.
func TestLoopEpochObservations(t *testing.T) {
	l := newLoop(t, Config{EpochMs: 300})
	var epochs []Epoch
	if err := l.RunEpochs(4, func(e Epoch) { epochs = append(epochs, e) }); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 4 {
		t.Fatalf("epochs = %d, want 4", len(epochs))
	}
	for i, e := range epochs {
		if e.Index != i {
			t.Errorf("epoch %d has index %d", i, e.Index)
		}
		if i > 0 && e.SimTimeMs <= epochs[i-1].SimTimeMs {
			t.Errorf("sim time not monotone: %v then %v", epochs[i-1].SimTimeMs, e.SimTimeMs)
		}
		if len(e.ErrMs) != 4 {
			t.Errorf("ErrMs covers %d tasks, want 4", len(e.ErrMs))
		}
	}
	if l.Engine() == nil || l.World() == nil {
		t.Error("accessors returned nil")
	}
}

// Dynamic changes through the exposed engine integrate with the loop: a
// capacity drop mid-run re-enacts a new allocation.
func TestLoopReactsToCapacityDrop(t *testing.T) {
	l := newLoop(t, Config{EpochMs: 500, CorrectionDisabled: true})
	if err := l.RunEpochs(4, nil); err != nil {
		t.Fatal(err)
	}
	before := l.Enactments()
	// cpu2 loses capacity (0.9 -> 0.85; the fast tasks' deadline-driven
	// 2x0.286 plus the slow floors 2x0.13 need 0.83, so 0.85 stays
	// feasible): shares must shift.
	if err := l.Engine().SetAvailability("cpu2", 0.85); err != nil {
		t.Fatal(err)
	}
	var last Epoch
	if err := l.RunEpochs(4, func(e Epoch) { last = e }); err != nil {
		t.Fatal(err)
	}
	if l.Enactments() == before {
		t.Error("capacity drop should trigger a new enactment")
	}
	sum := 0.0
	for ti := range last.Snapshot.Shares {
		sum += last.Snapshot.Shares[ti][2] // subtasks on cpu2
	}
	if sum > 0.851 {
		t.Errorf("cpu2 share sum %v exceeds new availability", sum)
	}
}

func TestLoopRejectsInvalidInputs(t *testing.T) {
	bad := workload.Prototype()
	bad.Tasks = nil
	if _, err := New(bad, core.Config{}, sim.Config{}, Config{}); err == nil {
		t.Error("invalid workload should fail")
	}
	if _, err := New(workload.Prototype(), core.Config{}, sim.Config{},
		Config{Corrector: errcorr.Config{Alpha: 2}}); err == nil {
		t.Error("invalid corrector config should fail")
	}
}
