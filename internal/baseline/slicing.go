// Package baseline implements the comparison algorithms LLA is evaluated
// against: classic offline deadline-slicing heuristics (in the spirit of the
// related work the paper cites — Bettati & Liu's even slicing and
// WCET-proportional slicing) and a centralized penalty-method solver that
// cross-validates the distributed optimizer's optimum.
//
// The slicing baselines work with a fixed end-to-end deadline and ignore
// resource capacity (the paper notes "Neither BST nor AST account for
// resource capacity"), so on congested workloads they can demand more than
// a resource can supply; Evaluate reports such violations.
package baseline

import (
	"fmt"
	"math"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// Assignment is a per-task latency assignment produced by a baseline.
type Assignment struct {
	// Name identifies the producing algorithm.
	Name string
	// LatMs[ti][si] mirrors the workload's task/subtask indexing.
	LatMs [][]float64
}

// EvenSlice distributes each task's critical time evenly along every path:
// subtask s gets C_i / L_s where L_s is the length of the longest path
// through s. Every path p then satisfies Σ_{s∈p} C/L_s <= C because
// L_s >= |p| for all s in p.
func EvenSlice(w *workload.Workload) (*Assignment, error) {
	a := &Assignment{Name: "even-slice"}
	for _, t := range w.Tasks {
		paths, err := t.Paths()
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		longest := make([]int, len(t.Subtasks))
		for _, p := range paths {
			for _, s := range p {
				if len(p) > longest[s] {
					longest[s] = len(p)
				}
			}
		}
		lats := make([]float64, len(t.Subtasks))
		for si := range t.Subtasks {
			lats[si] = t.CriticalMs / float64(longest[si])
		}
		a.LatMs = append(a.LatMs, lats)
	}
	return a, nil
}

// ProportionalSlice distributes each task's critical time along every path
// proportionally to WCET: subtask s gets C_i * c_s / W_s where W_s is the
// maximum summed WCET among paths through s. Every path p satisfies
// Σ_{s∈p} C*c_s/W_s <= C because W_s >= W_p for s in p.
func ProportionalSlice(w *workload.Workload) (*Assignment, error) {
	a := &Assignment{Name: "wcet-proportional"}
	for _, t := range w.Tasks {
		paths, err := t.Paths()
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		maxW := make([]float64, len(t.Subtasks))
		for _, p := range paths {
			sum := 0.0
			for _, s := range p {
				sum += t.Subtasks[s].ExecMs
			}
			for _, s := range p {
				if sum > maxW[s] {
					maxW[s] = sum
				}
			}
		}
		lats := make([]float64, len(t.Subtasks))
		for si, s := range t.Subtasks {
			lats[si] = t.CriticalMs * s.ExecMs / maxW[si]
		}
		a.LatMs = append(a.LatMs, lats)
	}
	return a, nil
}

// Evaluation summarizes an assignment against a workload.
type Evaluation struct {
	// Utility is the aggregate utility Σ U_i at the assignment.
	Utility float64
	// TaskUtility holds per-task utilities.
	TaskUtility []float64
	// ShareSums[resourceID] is the demanded share on each resource.
	ShareSums map[string]float64
	// MaxResourceViolation is max over resources of (demand − B_r), clamped
	// at 0.
	MaxResourceViolation float64
	// MaxPathViolationFrac is max over paths of (latency − C)/C, clamped at
	// 0.
	MaxPathViolationFrac float64
	// CriticalPathMs holds each task's longest-path latency.
	CriticalPathMs []float64
}

// Feasible reports whether no constraint is violated beyond tol.
func (e *Evaluation) Feasible(tol float64) bool {
	return e.MaxResourceViolation <= tol && e.MaxPathViolationFrac <= tol
}

// Evaluate computes the utility and constraint diagnostics of an assignment
// under the given weight mode.
func Evaluate(w *workload.Workload, a *Assignment, mode task.WeightMode) (*Evaluation, error) {
	if len(a.LatMs) != len(w.Tasks) {
		return nil, fmt.Errorf("baseline: assignment covers %d tasks, workload has %d", len(a.LatMs), len(w.Tasks))
	}
	ev := &Evaluation{ShareSums: make(map[string]float64, len(w.Resources))}
	for _, r := range w.Resources {
		ev.ShareSums[r.ID] = 0
	}
	for ti, t := range w.Tasks {
		lats := a.LatMs[ti]
		if len(lats) != len(t.Subtasks) {
			return nil, fmt.Errorf("baseline: task %s assignment covers %d subtasks, want %d", t.Name, len(lats), len(t.Subtasks))
		}
		u, err := utility.NewTaskUtility(t, mode, w.Curves[t.Name])
		if err != nil {
			return nil, err
		}
		val, err := u.Value(lats)
		if err != nil {
			return nil, err
		}
		ev.TaskUtility = append(ev.TaskUtility, val)
		ev.Utility += val

		cp, _, err := t.CriticalPathMs(lats)
		if err != nil {
			return nil, err
		}
		ev.CriticalPathMs = append(ev.CriticalPathMs, cp)
		if frac := (cp - t.CriticalMs) / t.CriticalMs; frac > ev.MaxPathViolationFrac {
			ev.MaxPathViolationFrac = frac
		}
		for si, s := range t.Subtasks {
			r, _ := w.ResourceByID(s.Resource)
			fn := share.WCETLag{ExecMs: s.ExecMs, LagMs: r.LagMs}
			ev.ShareSums[s.Resource] += fn.Share(lats[si])
		}
	}
	for _, r := range w.Resources {
		if over := ev.ShareSums[r.ID] - r.Availability; over > ev.MaxResourceViolation {
			ev.MaxResourceViolation = over
		}
	}
	if math.IsNaN(ev.Utility) {
		return nil, fmt.Errorf("baseline: NaN utility for %s", a.Name)
	}
	return ev, nil
}
