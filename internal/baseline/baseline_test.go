package baseline

import (
	"math"
	"testing"

	"lla/internal/core"
	"lla/internal/task"
	"lla/internal/workload"
)

func TestEvenSliceRespectsDeadlines(t *testing.T) {
	w := workload.Base()
	a, err := EvenSlice(w)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tk := range w.Tasks {
		cp, _, err := tk.CriticalPathMs(a.LatMs[ti])
		if err != nil {
			t.Fatal(err)
		}
		if cp > tk.CriticalMs+1e-9 {
			t.Errorf("%s: even-slice critical path %.2f exceeds %.1f", tk.Name, cp, tk.CriticalMs)
		}
	}
	// Task 3 is a 6-chain: every slice is C/6.
	for si, lat := range a.LatMs[2] {
		if math.Abs(lat-53.0/6) > 1e-9 {
			t.Errorf("task3 slice %d = %v, want %v", si, lat, 53.0/6)
		}
	}
}

func TestProportionalSliceRespectsDeadlines(t *testing.T) {
	w := workload.Base()
	a, err := ProportionalSlice(w)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tk := range w.Tasks {
		cp, _, err := tk.CriticalPathMs(a.LatMs[ti])
		if err != nil {
			t.Fatal(err)
		}
		if cp > tk.CriticalMs+1e-9 {
			t.Errorf("%s: proportional-slice critical path %.2f exceeds %.1f", tk.Name, cp, tk.CriticalMs)
		}
	}
	// Chain task: slices proportional to WCET summing to C on the chain.
	sum := 0.0
	for _, lat := range a.LatMs[2] {
		sum += lat
	}
	if math.Abs(sum-53) > 1e-9 {
		t.Errorf("task3 slices sum to %v, want 53", sum)
	}
}

// On the congested base workload the capacity-blind slicing baselines demand
// more share than the resources can supply, while LLA stays feasible with
// higher utility than any feasible baseline would achieve.
func TestSlicingBaselinesOverloadResources(t *testing.T) {
	w := workload.Base()
	for _, mk := range []func(*workload.Workload) (*Assignment, error){EvenSlice, ProportionalSlice} {
		a, err := mk(w)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Evaluate(w, a, task.WeightPathNormalized)
		if err != nil {
			t.Fatal(err)
		}
		if ev.MaxResourceViolation <= 0.05 {
			t.Errorf("%s: expected clear resource overload on the congested base workload, got %.4f",
				a.Name, ev.MaxResourceViolation)
		}
		if ev.MaxPathViolationFrac > 1e-9 {
			t.Errorf("%s: slicing must never violate deadlines, got %.4f", a.Name, ev.MaxPathViolationFrac)
		}
	}
}

func TestEvaluateShapeErrors(t *testing.T) {
	w := workload.Base()
	if _, err := Evaluate(w, &Assignment{Name: "bad"}, task.WeightSum); err == nil {
		t.Error("wrong task count should fail")
	}
	a, _ := EvenSlice(w)
	a.LatMs[0] = a.LatMs[0][:2]
	if _, err := Evaluate(w, a, task.WeightSum); err == nil {
		t.Error("wrong subtask count should fail")
	}
}

// The centralized penalty solver and LLA must agree on the base workload:
// same utility within 1% and both feasible. This is the cross-validation of
// the distributed optimum.
func TestCentralMatchesLLAOnBase(t *testing.T) {
	w := workload.Base()
	_, ev, err := Central(w, CentralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible(0.02) {
		t.Fatalf("central solution infeasible: resViol=%.4f pathViol=%.4f",
			ev.MaxResourceViolation, ev.MaxPathViolationFrac)
	}
	e, err := core.NewEngine(w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(5000, 1e-8, 50, 1e-3)
	if !ok {
		t.Fatal("LLA did not converge")
	}
	rel := math.Abs(ev.Utility-snap.Utility) / math.Abs(snap.Utility)
	if rel > 0.01 {
		t.Errorf("central utility %.2f vs LLA %.2f (%.2f%% apart)", ev.Utility, snap.Utility, rel*100)
	}
	t.Logf("central=%.3f LLA=%.3f (%.3f%% apart)", ev.Utility, snap.Utility, rel*100)
}

func TestCentralOnPrototype(t *testing.T) {
	w := workload.Prototype()
	_, ev, err := Central(w, CentralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible(0.02) {
		t.Fatalf("central infeasible on prototype: %+v", ev)
	}
	// Optimal utility: fast tasks at 105ms paths, slow at 3*18/0.1643.
	want := -(2*105 + 2*3*18/(0.45-10.0/35))
	if math.Abs(ev.Utility-want)/math.Abs(want) > 0.02 {
		t.Errorf("central utility %.1f, want ≈ %.1f", ev.Utility, want)
	}
}

func TestCentralRejectsInvalidWorkload(t *testing.T) {
	w := workload.Base()
	w.Tasks = nil
	if _, _, err := Central(w, CentralConfig{}); err == nil {
		t.Error("invalid workload should fail")
	}
}

// LLA beats both slicing baselines in utility whenever the baselines are
// compared on a workload where all are feasible (overprovisioned variant).
func TestLLADominatesBaselinesWhenFeasible(t *testing.T) {
	w, err := workload.Replicate(workload.Base(), 1, 4) // relaxed critical times
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(5000, 1e-8, 50, 1e-3)
	if !ok {
		t.Fatal("LLA did not converge")
	}
	for _, mk := range []func(*workload.Workload) (*Assignment, error){EvenSlice, ProportionalSlice} {
		a, err := mk(w)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Evaluate(w, a, task.WeightPathNormalized)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Feasible(1e-6) && ev.Utility > snap.Utility+1e-6 {
			t.Errorf("%s beats LLA: %.2f > %.2f", a.Name, ev.Utility, snap.Utility)
		}
	}
}
