package baseline

import (
	"math"

	"lla/internal/core"
	"lla/internal/task"
	"lla/internal/workload"
)

// CentralConfig parametrizes the centralized solver.
type CentralConfig struct {
	// WeightMode selects the utility variant (default path-weighted).
	WeightMode task.WeightMode
	// Rounds is the number of multiplier-update rounds (default 150).
	Rounds int
	// StepsPerRound is the number of inner gradient steps per round
	// (default 300).
	StepsPerRound int
	// Rho is the augmented-Lagrangian penalty weight (default 100).
	Rho float64
	// Step is the inner projected-gradient step size (default 0.02).
	Step float64
}

func (c CentralConfig) withDefaults() CentralConfig {
	if c.WeightMode == 0 {
		c.WeightMode = task.WeightPathNormalized
	}
	if c.Rounds == 0 {
		c.Rounds = 150
	}
	if c.StepsPerRound == 0 {
		c.StepsPerRound = 300
	}
	if c.Rho == 0 {
		c.Rho = 100
	}
	if c.Step == 0 {
		c.Step = 0.02
	}
	return c
}

// Central solves the latency-assignment problem with a centralized
// augmented-Lagrangian (method of multipliers): inner projected-gradient
// ascent on
//
//	Σ_i U_i(lat) − Σ_j (1/2ρ)·(max(0, m_j + ρ·g_j(lat))² − m_j²)
//
// over both constraint families (g_r = Σshare − B_r for resources,
// g_p = (Σlat − C)/C for paths), with the multiplier estimates m_j updated
// between rounds as m_j ← max(0, m_j + ρ·g_j). Unlike a pure penalty method
// this satisfies the constraints exactly at a moderate ρ. It is deliberately
// a different algorithm from LLA (primal, centralized, global view); the
// test suite uses it to cross-validate the distributed optimizer's optimum
// and the benchmark harness reports it as the "centralized reference".
func Central(w *workload.Workload, cfg CentralConfig) (*Assignment, *Evaluation, error) {
	cfg = cfg.withDefaults()
	p, err := core.Compile(w, cfg.WeightMode)
	if err != nil {
		return nil, nil, err
	}

	// Start from even slicing, projected into the admissible boxes.
	start, err := EvenSlice(w)
	if err != nil {
		return nil, nil, err
	}
	lat := make([][]float64, len(p.Tasks))
	for ti := range p.Tasks {
		pt := &p.Tasks[ti]
		lat[ti] = make([]float64, len(pt.Res))
		for si := range lat[ti] {
			lat[ti][si] = clampf(start.LatMs[ti][si], pt.LatMinMs[si], pt.LatMaxMs[si])
		}
	}

	muHat := make([]float64, len(p.Resources))
	lamHat := make([][]float64, len(p.Tasks))
	for ti := range p.Tasks {
		lamHat[ti] = make([]float64, len(p.Tasks[ti].Paths))
	}
	rho := cfg.Rho

	resViol := func(ri int) float64 {
		sum := 0.0
		for _, sub := range p.Resources[ri].Subs {
			sum += p.Tasks[sub[0]].Share[sub[1]].Share(lat[sub[0]][sub[1]])
		}
		return sum - p.Resources[ri].Availability
	}
	pathViol := func(ti, pi int) float64 {
		pt := &p.Tasks[ti]
		sum := 0.0
		for _, s := range pt.Paths[pi] {
			sum += lat[ti][s]
		}
		return (sum - pt.CriticalMs) / pt.CriticalMs
	}

	for round := 0; round < cfg.Rounds; round++ {
		for it := 0; it < cfg.StepsPerRound; it++ {
			// Effective multipliers max(0, m + rho*g) at the current point.
			muEff := make([]float64, len(p.Resources))
			for ri := range p.Resources {
				muEff[ri] = math.Max(0, muHat[ri]+rho*resViol(ri))
			}
			moved := 0.0
			for ti := range p.Tasks {
				pt := &p.Tasks[ti]
				agg := 0.0
				for si, wgt := range pt.Weights {
					agg += wgt * lat[ti][si]
				}
				slope := pt.Curve.Slope(agg)
				lamEff := make([]float64, len(pt.Paths))
				for pi := range pt.Paths {
					lamEff[pi] = math.Max(0, lamHat[ti][pi]+rho*pathViol(ti, pi))
				}
				for si := range lat[ti] {
					g := pt.Weights[si] * slope
					g -= muEff[pt.Res[si]] * pt.Share[si].Deriv(lat[ti][si])
					for _, pi := range pt.PathsThrough[si] {
						g -= lamEff[pi] / pt.CriticalMs
					}
					next := clampf(lat[ti][si]+cfg.Step*g, pt.LatMinMs[si], pt.LatMaxMs[si])
					moved += math.Abs(next - lat[ti][si])
					lat[ti][si] = next
				}
			}
			if moved < 1e-12 {
				break
			}
		}
		// Multiplier updates.
		for ri := range muHat {
			muHat[ri] = math.Max(0, muHat[ri]+rho*resViol(ri))
		}
		for ti := range lamHat {
			for pi := range lamHat[ti] {
				lamHat[ti][pi] = math.Max(0, lamHat[ti][pi]+rho*pathViol(ti, pi))
			}
		}
	}

	a := &Assignment{Name: "centralized", LatMs: lat}
	ev, err := Evaluate(w, a, cfg.WeightMode)
	if err != nil {
		return nil, nil, err
	}
	return a, ev, nil
}

// clampf bounds v to [lo, hi].
func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
