package core

// Pinned-price support for hierarchical sharding (SHARDING.md). A fleet
// shard's engine owns only its local tasks; a boundary resource — one whose
// demand comes from tasks in more than one shard — cannot be priced from any
// single shard's partial demand. The fleet aggregator therefore pins boundary
// prices: the shard engine keeps reducing its local demand on the resource
// every Step (the aggregator reads it via ShareSumAt), but the price update
// is suppressed and the congestion flag is the externally supplied one.
//
// Pinning composes with the sparse active-set path without invalidation: the
// controllers' input fingerprints compare the mu/congested snapshot bitwise,
// so an out-of-band PinPrice re-activates exactly the controllers that
// observe the pinned resource on their next Step, and a pinned resource's
// cached demand stays valid until one of its contributors re-solves with
// changed latencies (the ordinary dirty propagation).
//
// Pins are deliberately not carried by Fork or checkpoints: they are
// fleet-session state owned by the aggregator, which re-pins every boundary
// price after any shard restart (it would be stale otherwise).

import "fmt"

// ResourceIndex returns the compiled index of the resource with the given
// ID, or -1 if the problem has no such resource. Callers doing repeated
// per-resource access (the fleet aggregator) resolve IDs once at setup.
func (e *Engine) ResourceIndex(id string) int {
	for ri := range e.p.Resources {
		if e.p.Resources[ri].ID == id {
			return ri
		}
	}
	return -1
}

// MuAt returns the current price of resource ri.
func (e *Engine) MuAt(ri int) float64 { return e.agents[ri].Mu }

// ShareSumAt returns resource ri's total demanded share as of the latest
// resource phase (or the construction-time refresh before the first Step).
func (e *Engine) ShareSumAt(ri int) float64 { return e.shareSums[ri] }

// CongestedAt returns resource ri's congestion flag as seen by the
// controllers' adaptive path-step heuristic.
func (e *Engine) CongestedAt(ri int) bool { return e.congested[ri] }

// PinnedAt reports whether resource ri's price is externally pinned.
func (e *Engine) PinnedAt(ri int) bool { return e.pinned != nil && e.pinned[ri] }

// CurvatureAt returns resource ri's demand-response curvature
// −∂(Σ share)/∂μ at the current latencies and price, summed over its
// subtasks in compiled Subs order (the same serial order as curvatureInto,
// so per-shard sums aggregate to the single-engine value bitwise when the
// contributor sets coincide).
func (e *Engine) CurvatureAt(ri int) float64 {
	mu := e.agents[ri].Mu
	c := 0.0
	for _, sub := range e.p.Resources[ri].Subs {
		c += e.p.ResponseSlope(sub[0], sub[1], e.controllers[sub[0]].LatMs[sub[1]], mu)
	}
	return c
}

// PinPrice fixes resource ri's price and congestion flag to externally
// supplied values. Subsequent Steps keep reducing the resource's demand but
// never move its price; the pin stays in force until UnpinPrice. The sparse
// path needs no blanket invalidation: a changed price or congestion bit
// shows up in the observing controllers' fingerprints on the next Step.
func (e *Engine) PinPrice(ri int, mu float64, congested bool) error {
	if ri < 0 || ri >= len(e.agents) {
		return fmt.Errorf("core: pin: resource index %d out of range [0,%d)", ri, len(e.agents))
	}
	if !(mu >= 0) { // also rejects NaN
		return fmt.Errorf("core: pin: price must be >= 0, got %v", mu)
	}
	if e.pinned == nil {
		e.pinned = make([]bool, len(e.agents))
		e.pinnedCong = make([]bool, len(e.agents))
	}
	a := e.agents[ri]
	changed := !e.pinned[ri] || a.Mu != mu || e.pinnedCong[ri] != congested
	e.pinned[ri] = true
	e.pinnedCong[ri] = congested
	a.Mu = mu
	e.congested[ri] = congested
	if changed {
		e.pinEpoch++
		// Accelerated dynamics extrapolate from iterate history; an
		// out-of-band price move is a discontinuity that history must not
		// straddle.
		if e.dyn != nil {
			e.dyn.Invalidate()
		}
	}
	return nil
}

// PinEpoch returns the engine's pin-state epoch: it advances exactly when a
// PinPrice changes a pinned value (first pin, moved price, or flipped
// congestion bit) and on every effective UnpinPrice. An unchanged epoch
// certifies that no pinned input moved since the caller last observed it.
func (e *Engine) PinEpoch() uint64 { return e.pinEpoch }

// UnpinPrice returns resource ri's price to engine ownership; the next
// resource phase reprices it from current demand. Unpinning an unpinned
// resource is a no-op.
func (e *Engine) UnpinPrice(ri int) {
	if e.pinned == nil || ri < 0 || ri >= len(e.agents) || !e.pinned[ri] {
		return
	}
	e.pinned[ri] = false
	e.pinEpoch++
	// The agent's gradient state was frozen while pinned; force a real
	// reprice on the next sparse phase rather than trusting a stale
	// fixed-point flag.
	e.agentStable[ri] = false
	if e.dyn != nil {
		e.dyn.Invalidate()
	}
}
