package core

import (
	"fmt"
	"strings"
)

// Snapshot captures the optimizer's observable state after an iteration: the
// quantities the paper's figures plot (utility, share sums) and the
// constraint diagnostics its schedulability test relies on (Section 5.4).
type Snapshot struct {
	// Iteration is the number of completed iterations.
	Iteration int
	// Utility is the aggregate utility Σ_i U_i.
	Utility float64
	// TaskUtility holds per-task utilities, workload task order.
	TaskUtility []float64
	// LatMs[ti][si] are the assigned latencies.
	LatMs [][]float64
	// ShareMs[ti][si] are the implied resource shares.
	Shares [][]float64
	// ShareSums[ri] is the total share demanded on each resource.
	ShareSums []float64
	// Mu[ri] is each resource's price.
	Mu []float64
	// CriticalPathMs[ti] is each task's longest path latency.
	CriticalPathMs []float64
	// CriticalTimeMs[ti] is each task's deadline, for convenience.
	CriticalTimeMs []float64
	// MaxResourceViolation is max_r (ShareSums[r] − B_r), clamped at 0:
	// positive means resource congestion.
	MaxResourceViolation float64
	// MaxPathViolationFrac is max over tasks of
	// (CriticalPath − CriticalTime)/CriticalTime, clamped at 0: positive
	// means a deadline cannot be met.
	MaxPathViolationFrac float64
}

// Snapshot assembles the current state into freshly allocated slices.
func (e *Engine) Snapshot() Snapshot {
	var s Snapshot
	e.SnapshotInto(&s)
	return s
}

// SnapshotInto assembles the current state into s, reusing s's slices when
// their capacity suffices. Callers that poll every iteration (monitoring
// loops, convergence studies) can hold one Snapshot and refill it without
// per-iteration garbage; the refilled snapshot aliases its previous
// buffers, so copy anything that must outlive the next call.
func (e *Engine) SnapshotInto(s *Snapshot) {
	nt, nr := len(e.controllers), len(e.agents)
	s.Iteration = e.iter
	s.Utility = 0
	s.MaxResourceViolation = 0
	s.MaxPathViolationFrac = 0
	s.ShareSums = resizeFloats(s.ShareSums, nr)
	copy(s.ShareSums, e.shareSums)
	s.Mu = resizeFloats(s.Mu, nr)
	for ri, a := range e.agents {
		s.Mu[ri] = a.Mu
		over := e.shareSums[ri] - e.p.Resources[ri].Availability
		if over > s.MaxResourceViolation {
			s.MaxResourceViolation = over
		}
	}
	s.TaskUtility = resizeFloats(s.TaskUtility, nt)
	s.LatMs = resizeRows(s.LatMs, nt)
	s.Shares = resizeRows(s.Shares, nt)
	s.CriticalPathMs = resizeFloats(s.CriticalPathMs, nt)
	s.CriticalTimeMs = resizeFloats(s.CriticalTimeMs, nt)
	for ti, c := range e.controllers {
		u := c.Utility()
		s.TaskUtility[ti] = u
		s.Utility += u
		s.LatMs[ti] = resizeFloats(s.LatMs[ti], len(c.LatMs))
		copy(s.LatMs[ti], c.LatMs)
		s.Shares[ti] = resizeFloats(s.Shares[ti], len(c.LatMs))
		c.SharesInto(s.Shares[ti])
		cp, _ := c.CriticalPathMs()
		crit := e.p.Tasks[ti].CriticalMs
		s.CriticalPathMs[ti] = cp
		s.CriticalTimeMs[ti] = crit
		if frac := (cp - crit) / crit; frac > s.MaxPathViolationFrac {
			s.MaxPathViolationFrac = frac
		}
	}
}

// Probe is the allocation-free convergence view of an iteration: the three
// scalars RunUntilConverged's stopping rule needs, computed without the
// deep copies a full Snapshot makes.
type Probe struct {
	// Iteration is the number of completed iterations.
	Iteration int
	// Utility is the aggregate utility Σ_i U_i.
	Utility float64
	// MaxResourceViolation matches Snapshot.MaxResourceViolation.
	MaxResourceViolation float64
	// MaxPathViolationFrac matches Snapshot.MaxPathViolationFrac.
	MaxPathViolationFrac float64
}

// Probe computes the convergence scalars for the current state. The values
// are bitwise-identical to the corresponding Snapshot fields (same
// summation and max-scan order) at none of the allocation cost.
func (e *Engine) Probe() Probe {
	pr := Probe{Iteration: e.iter}
	for ri := range e.agents {
		over := e.shareSums[ri] - e.p.Resources[ri].Availability
		if over > pr.MaxResourceViolation {
			pr.MaxResourceViolation = over
		}
	}
	for ti, c := range e.controllers {
		pr.Utility += c.Utility()
		cp, _ := c.CriticalPathMs()
		crit := e.p.Tasks[ti].CriticalMs
		if frac := (cp - crit) / crit; frac > pr.MaxPathViolationFrac {
			pr.MaxPathViolationFrac = frac
		}
	}
	return pr
}

// resizeFloats returns a slice of length n, reusing s's backing array when
// it is large enough.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// resizeRows returns a row slice of length n, keeping existing rows so
// their backing arrays stay reusable.
func resizeRows(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		out := make([][]float64, n)
		copy(out, s)
		return out
	}
	return s[:n]
}

// Feasible reports whether no constraint is violated beyond tol.
func (s Snapshot) Feasible(tol float64) bool {
	return s.MaxResourceViolation <= tol && s.MaxPathViolationFrac <= tol
}

// String renders a compact human-readable summary.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iter=%d utility=%.3f maxResViol=%.4f maxPathViol=%.4f",
		s.Iteration, s.Utility, s.MaxResourceViolation, s.MaxPathViolationFrac)
	return b.String()
}

// LatencyByName returns the latency assigned to the named subtask of the
// named task, resolving through the engine's problem. It returns an error
// for unknown names.
func (e *Engine) LatencyByName(taskName, subtaskName string) (float64, error) {
	ti, si, err := e.findSubtask(taskName, subtaskName)
	if err != nil {
		return 0, err
	}
	return e.controllers[ti].LatMs[si], nil
}

// ShareByName returns the share implied by the current latency of the named
// subtask.
func (e *Engine) ShareByName(taskName, subtaskName string) (float64, error) {
	ti, si, err := e.findSubtask(taskName, subtaskName)
	if err != nil {
		return 0, err
	}
	return e.p.Tasks[ti].Share[si].Share(e.controllers[ti].LatMs[si]), nil
}
