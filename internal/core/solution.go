package core

import (
	"fmt"
	"strings"
)

// Snapshot captures the optimizer's observable state after an iteration: the
// quantities the paper's figures plot (utility, share sums) and the
// constraint diagnostics its schedulability test relies on (Section 5.4).
type Snapshot struct {
	// Iteration is the number of completed iterations.
	Iteration int
	// Utility is the aggregate utility Σ_i U_i.
	Utility float64
	// TaskUtility holds per-task utilities, workload task order.
	TaskUtility []float64
	// LatMs[ti][si] are the assigned latencies.
	LatMs [][]float64
	// ShareMs[ti][si] are the implied resource shares.
	Shares [][]float64
	// ShareSums[ri] is the total share demanded on each resource.
	ShareSums []float64
	// Mu[ri] is each resource's price.
	Mu []float64
	// CriticalPathMs[ti] is each task's longest path latency.
	CriticalPathMs []float64
	// CriticalTimeMs[ti] is each task's deadline, for convenience.
	CriticalTimeMs []float64
	// MaxResourceViolation is max_r (ShareSums[r] − B_r), clamped at 0:
	// positive means resource congestion.
	MaxResourceViolation float64
	// MaxPathViolationFrac is max over tasks of
	// (CriticalPath − CriticalTime)/CriticalTime, clamped at 0: positive
	// means a deadline cannot be met.
	MaxPathViolationFrac float64
}

// Snapshot assembles the current state.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Iteration: e.iter,
		ShareSums: append([]float64(nil), e.shareSums...),
	}
	for ri, a := range e.agents {
		s.Mu = append(s.Mu, a.Mu)
		over := e.shareSums[ri] - e.p.Resources[ri].Availability
		if over > s.MaxResourceViolation {
			s.MaxResourceViolation = over
		}
	}
	for ti, c := range e.controllers {
		u := c.Utility()
		s.TaskUtility = append(s.TaskUtility, u)
		s.Utility += u
		s.LatMs = append(s.LatMs, append([]float64(nil), c.LatMs...))
		s.Shares = append(s.Shares, c.Shares())
		cp, _ := c.CriticalPathMs()
		crit := e.p.Tasks[ti].CriticalMs
		s.CriticalPathMs = append(s.CriticalPathMs, cp)
		s.CriticalTimeMs = append(s.CriticalTimeMs, crit)
		if frac := (cp - crit) / crit; frac > s.MaxPathViolationFrac {
			s.MaxPathViolationFrac = frac
		}
	}
	return s
}

// Feasible reports whether no constraint is violated beyond tol.
func (s Snapshot) Feasible(tol float64) bool {
	return s.MaxResourceViolation <= tol && s.MaxPathViolationFrac <= tol
}

// String renders a compact human-readable summary.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iter=%d utility=%.3f maxResViol=%.4f maxPathViol=%.4f",
		s.Iteration, s.Utility, s.MaxResourceViolation, s.MaxPathViolationFrac)
	return b.String()
}

// LatencyByName returns the latency assigned to the named subtask of the
// named task, resolving through the engine's problem. It returns an error
// for unknown names.
func (e *Engine) LatencyByName(taskName, subtaskName string) (float64, error) {
	ti, si, err := e.findSubtask(taskName, subtaskName)
	if err != nil {
		return 0, err
	}
	return e.controllers[ti].LatMs[si], nil
}

// ShareByName returns the share implied by the current latency of the named
// subtask.
func (e *Engine) ShareByName(taskName, subtaskName string) (float64, error) {
	ti, si, err := e.findSubtask(taskName, subtaskName)
	if err != nil {
		return 0, err
	}
	return e.p.Tasks[ti].Share[si].Share(e.controllers[ti].LatMs[si]), nil
}
