package core

import (
	"testing"

	"lla/internal/workload"
)

// TestPinEpoch locks in the epoch contract the fleet's shard skipping rests
// on: the epoch advances exactly when a pin changes something — a new pin,
// a moved price, a flipped congestion bit, an unpin — and stays put when a
// pin re-asserts the identical (price, congested) pair.
func TestPinEpoch(t *testing.T) {
	e, err := NewEngine(twoTaskOneResource(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	e0 := e.PinEpoch()
	if err := e.PinPrice(0, 5, false); err != nil {
		t.Fatal(err)
	}
	e1 := e.PinEpoch()
	if e1 != e0+1 {
		t.Fatalf("new pin: epoch %d -> %d, want +1", e0, e1)
	}
	if err := e.PinPrice(0, 5, false); err != nil {
		t.Fatal(err)
	}
	if got := e.PinEpoch(); got != e1 {
		t.Fatalf("identical re-pin moved epoch %d -> %d", e1, got)
	}
	if err := e.PinPrice(0, 6, false); err != nil {
		t.Fatal(err)
	}
	if got := e.PinEpoch(); got != e1+1 {
		t.Fatalf("price move: epoch %d, want %d", got, e1+1)
	}
	if err := e.PinPrice(0, 6, true); err != nil {
		t.Fatal(err)
	}
	if got := e.PinEpoch(); got != e1+2 {
		t.Fatalf("congestion flip: epoch %d, want %d", got, e1+2)
	}
	e.UnpinPrice(0)
	if got := e.PinEpoch(); got != e1+3 {
		t.Fatalf("unpin: epoch %d, want %d", got, e1+3)
	}
}

// TestCarryFromWarmStart checks the carry semantics: prices carry by
// resource ID, surviving tasks' latencies carry by name, and the carried
// trajectory then matches stepping the donor — the same contract Fork
// guarantees, reached through the ID/name-matching path churn uses.
func TestCarryFromWarmStart(t *testing.T) {
	w := workload.Base()
	donor, err := NewEngine(w, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer donor.Close()
	donor.Run(60, nil)

	recv, err := NewEngine(w.Clone(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.CarryFrom(donor)

	ds, rs := donor.Snapshot(), recv.Snapshot()
	for ri := range ds.Mu {
		if ds.Mu[ri] != rs.Mu[ri] {
			t.Fatalf("mu[%d]: donor %v receiver %v", ri, ds.Mu[ri], rs.Mu[ri])
		}
	}
	for ti := range ds.LatMs {
		for si := range ds.LatMs[ti] {
			if ds.LatMs[ti][si] != rs.LatMs[ti][si] {
				t.Fatalf("lat[%d][%d]: donor %v receiver %v", ti, si, ds.LatMs[ti][si], rs.LatMs[ti][si])
			}
		}
	}

	for i := 0; i < 50; i++ {
		donor.Step()
		recv.Step()
		dp, rp := donor.Probe(), recv.Probe()
		if dp.Utility != rp.Utility {
			t.Fatalf("step %d: carried engine diverged: donor %v receiver %v", i, dp.Utility, rp.Utility)
		}
	}
}

// TestCarryFromPartialOverlap: a receiver sharing only part of the donor's
// problem carries the overlap and cold-starts the rest.
func TestCarryFromPartialOverlap(t *testing.T) {
	donor, err := NewEngine(twoTaskOneResource(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer donor.Close()
	donor.Run(200, nil)

	// Same resource r0, one surviving task t1, one new task.
	w2 := twoTaskOneResource()
	w2.Tasks[1].Name = "t3"
	w2.Curves["t3"] = w2.Curves["t2"]
	delete(w2.Curves, "t2")
	recv, err := NewEngine(w2, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	cold := recv.Snapshot()
	recv.CarryFrom(donor)
	warm := recv.Snapshot()

	if warm.Mu[0] != donor.Snapshot().Mu[0] {
		t.Fatalf("r0 price not carried: %v want %v", warm.Mu[0], donor.Snapshot().Mu[0])
	}
	if warm.LatMs[0][0] != donor.Snapshot().LatMs[0][0] {
		t.Fatalf("surviving t1 latency not carried")
	}
	if warm.LatMs[1][0] != cold.LatMs[1][0] {
		t.Fatalf("new task t3 should keep its cold start, got %v want %v", warm.LatMs[1][0], cold.LatMs[1][0])
	}
}
