package core

import (
	"math"
	"testing"

	"lla/internal/price"
	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// newTestProblem compiles a one-task chain over two resources.
func newTestProblem(t *testing.T, curve utility.Curve) *Problem {
	t.Helper()
	tk := task.NewBuilder("t", 100).
		Subtask("a", "r0", 3).
		Subtask("b", "r1", 2).
		Chain("a", "b").
		MustBuild()
	w := &workload.Workload{
		Name:  "unit",
		Tasks: []*task.Task{tk},
		Resources: []share.Resource{
			{ID: "r0", Kind: share.CPU, Availability: 1, LagMs: 1},
			{ID: "r1", Kind: share.Link, Availability: 1, LagMs: 1},
		},
		Curves: map[string]utility.Curve{"t": curve},
	}
	p, err := Compile(w, task.WeightPathNormalized)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func fixedStep() price.StepSizer { return &price.Fixed{Value: 1} }

func TestControllerInitialLatenciesAreFairSplit(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	c := NewController(p, 0, fixedStep, 1, false, 30)
	// Each subtask is alone on its resource: fair share = full availability
	// -> latency = (c+l)/1.
	if math.Abs(c.LatMs[0]-4) > 1e-12 || math.Abs(c.LatMs[1]-3) > 1e-12 {
		t.Errorf("initial latencies = %v, want [4 3]", c.LatMs)
	}
}

func TestControllerClosedFormAllocation(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	c := NewController(p, 0, fixedStep, 1, false, 30)
	// With mu = [16, 9], lambda = 0, w = 1, |f'| = 1:
	// lat_a = sqrt(16*4/1) = 8; lat_b = sqrt(9*3/1) ≈ 5.196.
	c.AllocateLatencies([]float64{16, 9})
	if math.Abs(c.LatMs[0]-8) > 1e-9 {
		t.Errorf("lat_a = %v, want 8", c.LatMs[0])
	}
	if math.Abs(c.LatMs[1]-math.Sqrt(27)) > 1e-9 {
		t.Errorf("lat_b = %v, want sqrt(27)", c.LatMs[1])
	}
}

func TestControllerPathPriceRaisesUnderViolation(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	c := NewController(p, 0, fixedStep, 1, false, 30)
	// Force the path over its critical time.
	c.LatMs[0], c.LatMs[1] = 80, 40 // sum 120 > C=100
	c.UpdatePathPrices(nil)
	if c.Lambda[0] <= 0 {
		t.Errorf("lambda = %v, want positive after violation", c.Lambda[0])
	}
	// With slack, the price projects back to zero.
	c.LatMs[0], c.LatMs[1] = 10, 10
	for i := 0; i < 10; i++ {
		c.UpdatePathPrices(nil)
	}
	if c.Lambda[0] != 0 {
		t.Errorf("lambda = %v, want 0 after sustained slack", c.Lambda[0])
	}
}

func TestControllerZeroPriceTakesMinLatency(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	c := NewController(p, 0, fixedStep, 1, false, 30)
	c.AllocateLatencies([]float64{0, 0})
	if c.LatMs[0] != p.Tasks[0].LatMinMs[0] || c.LatMs[1] != p.Tasks[0].LatMinMs[1] {
		t.Errorf("free resources should give minimum latencies, got %v", c.LatMs)
	}
}

func TestControllerHugePriceClampsAtMax(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	c := NewController(p, 0, fixedStep, 1, false, 30)
	c.AllocateLatencies([]float64{1e12, 1e12})
	if c.LatMs[0] != p.Tasks[0].LatMaxMs[0] || c.LatMs[1] != p.Tasks[0].LatMaxMs[1] {
		t.Errorf("expensive resources should clamp at max latencies, got %v (max %v)",
			c.LatMs, p.Tasks[0].LatMaxMs)
	}
}

func TestControllerNonlinearInnerLoopConverges(t *testing.T) {
	p := newTestProblem(t, utility.Quadratic{A: 1000, B: 0.1})
	c := NewController(p, 0, fixedStep, 1, false, 50)
	c.AllocateLatencies([]float64{20, 20})
	// The fixed point satisfies the stationarity condition:
	// w·f'(L) = mu·share'(lat) for interior latencies.
	agg := 0.0
	for si, w := range p.Tasks[0].Weights {
		agg += w * c.LatMs[si]
	}
	for si := range c.LatMs {
		lat := c.LatMs[si]
		if lat <= p.Tasks[0].LatMinMs[si]+1e-9 || lat >= p.Tasks[0].LatMaxMs[si]-1e-9 {
			continue
		}
		lhs := p.Tasks[0].Weights[si] * p.Tasks[0].Curve.Slope(agg)
		rhs := 20 * p.Tasks[0].Share[si].Deriv(lat)
		if math.Abs(lhs-rhs) > 1e-6*math.Abs(lhs) {
			t.Errorf("subtask %d: stationarity residual %v vs %v", si, lhs, rhs)
		}
	}
}

func TestControllerClampDeadlineSafe(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	c := NewController(p, 0, fixedStep, 1, false, 30)
	pt := &p.Tasks[0]

	// Violating assignment: path sum 120 > C=100.
	c.LatMs[0], c.LatMs[1] = 80, 40
	if v := c.ClampDeadlineSafe(); v > 1e-12 {
		t.Fatalf("residual violation %v, want 0", v)
	}
	sum := c.LatMs[0] + c.LatMs[1]
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("clamped path sum = %v, want exactly the critical time 100", sum)
	}
	for si, lat := range c.LatMs {
		if lat < pt.LatMinMs[si]-1e-12 {
			t.Errorf("subtask %d clamped below its floor: %v < %v", si, lat, pt.LatMinMs[si])
		}
	}
	// Slack above each floor shrinks by a common factor.
	r0 := (c.LatMs[0] - pt.LatMinMs[0]) / (80 - pt.LatMinMs[0])
	r1 := (c.LatMs[1] - pt.LatMinMs[1]) / (40 - pt.LatMinMs[1])
	if math.Abs(r0-r1) > 1e-9 {
		t.Errorf("slack factors differ: %v vs %v", r0, r1)
	}

	// A feasible assignment is left untouched.
	c.LatMs[0], c.LatMs[1] = 30, 20
	if v := c.ClampDeadlineSafe(); v != 0 {
		t.Errorf("feasible point reported violation %v", v)
	}
	if c.LatMs[0] != 30 || c.LatMs[1] != 20 {
		t.Errorf("feasible point modified: %v", c.LatMs)
	}
}

func TestControllerResetPrices(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	c := NewController(p, 0, fixedStep, 1, false, 30)
	c.LatMs[0], c.LatMs[1] = 80, 40
	c.UpdatePathPrices(nil)
	if c.Lambda[0] == 0 {
		t.Fatal("setup failed: lambda should be positive")
	}
	c.ResetPrices()
	if c.Lambda[0] != 0 {
		t.Errorf("lambda = %v after reset, want 0", c.Lambda[0])
	}
}

func TestControllerSharesAndCriticalPath(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	c := NewController(p, 0, fixedStep, 1, false, 30)
	c.LatMs[0], c.LatMs[1] = 8, 6
	shares := c.Shares()
	if math.Abs(shares[0]-0.5) > 1e-12 || math.Abs(shares[1]-0.5) > 1e-12 {
		t.Errorf("shares = %v, want [0.5 0.5]", shares)
	}
	cp, pi := c.CriticalPathMs()
	if math.Abs(cp-14) > 1e-12 || pi != 0 {
		t.Errorf("critical path = %v (path %d), want 14 (path 0)", cp, pi)
	}
	if u := c.Utility(); math.Abs(u-(200-14)) > 1e-12 {
		t.Errorf("utility = %v, want 186", u)
	}
}

func TestResourceAgentPriceDynamics(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	a := NewResourceAgent(p, 0, fixedStep(), 1, false, 1)
	if a.Congested(1.0) {
		t.Error("exact saturation should be within the congestion margin")
	}
	if !a.Congested(1.05) {
		t.Error("5% overload should be congested")
	}
	a.UpdatePrice(1.5) // overload: price rises
	if a.Mu <= 1 {
		t.Errorf("mu = %v, want > 1 after overload", a.Mu)
	}
	high := a.Mu
	a.UpdatePrice(0.5) // slack: price falls
	if a.Mu >= high {
		t.Errorf("mu = %v, want < %v after slack", a.Mu, high)
	}
	a.ResetPrice(1)
	if a.Mu != 1 {
		t.Errorf("mu = %v after reset, want 1", a.Mu)
	}
}

func TestResourceAgentShareSum(t *testing.T) {
	p := newTestProblem(t, utility.Linear{K: 2, CMs: 100})
	a := NewResourceAgent(p, 0, fixedStep(), 1, false, 1)
	lat := [][]float64{{8, 6}}
	sum := a.ShareSum(func(ti int) []float64 { return lat[ti] })
	// r0 hosts only subtask a: share = 4/8 = 0.5.
	if math.Abs(sum-0.5) > 1e-12 {
		t.Errorf("share sum = %v, want 0.5", sum)
	}
}

// Mixed-curve random workloads exercise the nonlinear path at scale: LLA
// must still converge to feasible KKT points.
func TestEngineMixedCurveRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := workload.DefaultRandomConfig(seed)
		cfg.MixedCurves = true
		cfg.SlackFactor = 10
		w, err := workload.Random(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(w, Config{})
		if err != nil {
			t.Fatal(err)
		}
		snap, ok := e.RunUntilConverged(10000, 1e-8, 30, 1e-2)
		if !ok {
			t.Errorf("seed %d: did not converge: %v", seed, snap)
			continue
		}
		if !snap.Feasible(1e-2) {
			t.Errorf("seed %d: infeasible: %v", seed, snap)
		}
		for _, r := range e.KKTResiduals() {
			if r > 0.05 {
				t.Errorf("seed %d: KKT residual %v", seed, r)
			}
		}
	}
}
