// Package core implements LLA (Lagrangian Latency Assignment), the paper's
// central contribution (Section 4): a distributed dual-decomposition
// algorithm that assigns per-subtask latencies maximizing aggregate utility
// subject to proportional-share resource constraints (Equation 3) and
// per-path critical-time constraints (Equation 4). Task controllers solve
// the per-task Lagrangian stationarity conditions (latency allocation,
// Section 4.2) while resources and controllers update congestion prices by
// gradient projection (price computation, Section 4.3).
package core

import (
	"fmt"
	"math"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// Problem is a compiled, index-based view of a workload: all name lookups,
// path enumerations and weight derivations are done once so that iterations
// touch only dense slices.
type Problem struct {
	// Tasks holds one compiled task per workload task, same order.
	Tasks []ProblemTask
	// Resources holds the compiled resources.
	Resources []ProblemResource

	src *workload.Workload
}

// ProblemTask is the compiled per-task view used by its task controller.
type ProblemTask struct {
	// Name is the task name.
	Name string
	// CriticalMs is the task's critical time.
	CriticalMs float64
	// Curve maps aggregate weighted latency to utility.
	Curve utility.Curve
	// Weights are the per-subtask utility weights w_s for the configured
	// weight mode.
	Weights []float64
	// Paths lists every root-to-leaf path as subtask indices.
	Paths [][]int
	// PathsThrough[s] lists the indices (into Paths) of paths containing
	// subtask s.
	PathsThrough [][]int
	// Res[s] is the index into Problem.Resources of subtask s's resource.
	Res []int
	// Share[s] is subtask s's share function (WCET + resource lag; the
	// additive error term is updated in place by error correction).
	Share []share.WCETLag
	// LatMinMs[s] is the lowest admissible latency: the latency at which
	// the subtask would consume the resource's full availability.
	LatMinMs []float64
	// LatMaxMs[s] is the highest admissible latency: the critical time,
	// tightened by the subtask's rate-derived minimum share when present.
	LatMaxMs []float64
	// SubtaskNames holds the subtask names for reporting.
	SubtaskNames []string
}

// ProblemResource is the compiled per-resource view used by its price agent.
type ProblemResource struct {
	// ID is the resource identifier.
	ID string
	// Availability is B_r.
	Availability float64
	// LagMs is the scheduling lag l_r.
	LagMs float64
	// Subs lists the (task index, subtask index) pairs consuming this
	// resource.
	Subs [][2]int
}

// Compile validates the workload and builds the dense problem view.
// weightMode selects the utility variant of Section 3.2.
func Compile(w *workload.Workload, weightMode task.WeightMode) (*Problem, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := &Problem{src: w}

	resIdx := make(map[string]int, len(w.Resources))
	for i, r := range w.Resources {
		resIdx[r.ID] = i
		p.Resources = append(p.Resources, ProblemResource{
			ID:           r.ID,
			Availability: r.Availability,
			LagMs:        r.LagMs,
		})
	}

	for ti, t := range w.Tasks {
		weights, err := t.Weights(weightMode)
		if err != nil {
			return nil, fmt.Errorf("core: task %s: %w", t.Name, err)
		}
		paths, err := t.Paths()
		if err != nil {
			return nil, fmt.Errorf("core: task %s: %w", t.Name, err)
		}
		n := len(t.Subtasks)
		pt := ProblemTask{
			Name:         t.Name,
			CriticalMs:   t.CriticalMs,
			Curve:        w.Curves[t.Name],
			Weights:      weights,
			Paths:        paths,
			PathsThrough: make([][]int, n),
			Res:          make([]int, n),
			Share:        make([]share.WCETLag, n),
			LatMinMs:     make([]float64, n),
			LatMaxMs:     make([]float64, n),
			SubtaskNames: make([]string, n),
		}
		for pi, path := range paths {
			for _, s := range path {
				pt.PathsThrough[s] = append(pt.PathsThrough[s], pi)
			}
		}
		for si, s := range t.Subtasks {
			ri := resIdx[s.Resource]
			r := w.Resources[ri]
			pt.Res[si] = ri
			pt.Share[si] = share.WCETLag{ExecMs: s.ExecMs, LagMs: r.LagMs}
			pt.SubtaskNames[si] = s.Name
			pt.LatMinMs[si] = pt.Share[si].LatencyFor(r.Availability)
			maxLat := t.CriticalMs
			if s.MinShare > 0 {
				if cap := pt.Share[si].LatencyFor(s.MinShare); cap < maxLat {
					maxLat = cap
				}
			}
			if maxLat < pt.LatMinMs[si] {
				// Degenerate bounds (e.g. availability too low for the
				// deadline): keep a consistent interval; the constraint
				// violation will surface in the snapshot instead.
				maxLat = pt.LatMinMs[si]
			}
			pt.LatMaxMs[si] = maxLat
			p.Resources[ri].Subs = append(p.Resources[ri].Subs, [2]int{ti, si})
		}
		p.Tasks = append(p.Tasks, pt)
	}
	return p, nil
}

// Workload returns the workload this problem was compiled from.
func (p *Problem) Workload() *workload.Workload { return p.src }

// NumSubtasks counts subtasks across all tasks.
func (p *Problem) NumSubtasks() int {
	n := 0
	for i := range p.Tasks {
		n += len(p.Tasks[i].Res)
	}
	return n
}

// ResponseSlope returns subtask (ti, si)'s demand response to its resource
// price, −∂share/∂μ ≥ 0, at the given latency and price. On the
// stationarity solution (Equation 7) lat − e = sqrt(μ·k/denom) with
// k = c + l, so share = k/(lat−e) = sqrt(k·denom/μ) and
// ∂share/∂μ = −share/(2μ) — the closed-form diagonal of the dual Hessian
// that the DiagonalNewton price dynamics consume as curvature. Bound-active
// subtasks (and free resources) do not respond: a clamped latency stays
// clamped under a marginal price move, so their response is zero. The
// interior test matches the KKT-residual one so curvature and stationarity
// agree on which subtasks count.
func (p *Problem) ResponseSlope(ti, si int, latMs, mu float64) float64 {
	pt := &p.Tasks[ti]
	if mu <= 0 {
		return 0
	}
	lo, hi := pt.LatMinMs[si], pt.LatMaxMs[si]
	if latMs <= lo*(1+1e-6) || latMs >= hi*(1-1e-6) {
		return 0
	}
	return pt.Share[si].Share(latMs) / (2 * mu)
}

// refreshBounds recomputes a subtask's latency bounds after a change to its
// share function (error correction) or its resource's availability.
func (p *Problem) refreshBounds(ti, si int) {
	pt := &p.Tasks[ti]
	r := p.Resources[pt.Res[si]]
	pt.LatMinMs[si] = pt.Share[si].LatencyFor(r.Availability)
	maxLat := pt.CriticalMs
	minShare := p.src.Tasks[ti].Subtasks[si].MinShare
	if minShare > 0 {
		if cap := pt.Share[si].LatencyFor(minShare); cap < maxLat {
			maxLat = cap
		}
	}
	if maxLat < pt.LatMinMs[si] {
		maxLat = pt.LatMinMs[si]
	}
	pt.LatMaxMs[si] = maxLat
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// safeSqrt returns sqrt(max(x, 0)).
func safeSqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
