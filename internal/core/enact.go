package core

import "math"

// Enactor implements the paper's enactment policy (Section 4.4): LLA runs
// continuously, but new allocations are pushed to the system (schedulers)
// only when significant changes occur — re-weighting every scheduler each
// iteration would cost far more than it gains. The Enactor decides, per
// snapshot, whether the allocation changed enough to enact, and tracks the
// last enacted allocation.
type Enactor struct {
	// MinRelChange is the per-subtask relative share change that triggers
	// enactment (default 0.02 = 2%).
	MinRelChange float64
	// MinUtilityGainFrac enacts when the utility improved by this fraction
	// since the last enactment even if no single share moved much
	// (default 0.01, the paper's 1%).
	MinUtilityGainFrac float64

	lastShares  [][]float64
	lastUtility float64
	enactments  int
}

// NewEnactor returns an enactor with the paper's thresholds.
func NewEnactor() *Enactor {
	return &Enactor{MinRelChange: 0.02, MinUtilityGainFrac: 0.01}
}

// Consider inspects a snapshot and returns the shares to enact, or nil when
// the current allocation should be left in place. The first call always
// enacts.
func (e *Enactor) Consider(snap Snapshot) [][]float64 {
	if e.lastShares == nil {
		return e.enact(snap)
	}
	if e.sharesMoved(snap.Shares) {
		return e.enact(snap)
	}
	denom := math.Max(math.Abs(e.lastUtility), 1e-12)
	if math.Abs(snap.Utility-e.lastUtility)/denom >= e.MinUtilityGainFrac {
		return e.enact(snap)
	}
	return nil
}

// sharesMoved reports whether any subtask's share changed beyond the
// relative threshold.
func (e *Enactor) sharesMoved(shares [][]float64) bool {
	if len(shares) != len(e.lastShares) {
		return true
	}
	for ti := range shares {
		if len(shares[ti]) != len(e.lastShares[ti]) {
			return true
		}
		for si := range shares[ti] {
			prev := e.lastShares[ti][si]
			if prev == 0 {
				if shares[ti][si] != 0 {
					return true
				}
				continue
			}
			if math.Abs(shares[ti][si]-prev)/prev >= e.MinRelChange {
				return true
			}
		}
	}
	return false
}

// enact records and returns the snapshot's shares; the stored and returned
// copies are independent so callers may mutate the result freely.
func (e *Enactor) enact(snap Snapshot) [][]float64 {
	stored := make([][]float64, len(snap.Shares))
	out := make([][]float64, len(snap.Shares))
	for ti := range snap.Shares {
		stored[ti] = append([]float64(nil), snap.Shares[ti]...)
		out[ti] = append([]float64(nil), snap.Shares[ti]...)
	}
	e.lastShares = stored
	e.lastUtility = snap.Utility
	e.enactments++
	return out
}

// Enactments reports how many allocations have been enacted.
func (e *Enactor) Enactments() int { return e.enactments }
