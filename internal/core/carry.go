package core

// State carry-over between engines: the warm-start primitive behind
// ReplaceWorkload and the fleet's incremental repartitioning
// (fleet.ReplaceWorkload). A freshly built engine adopts as much of one or
// more donor engines' optimization state as still applies — resource prices
// by ID, surviving tasks' latencies and path prices by name — so
// re-convergence after churn starts from the already-discovered congestion
// landscape instead of the paper's cold initial point.

// CarryFrom warm-starts the engine from the donors' live state:
//
//   - every resource whose ID appears in a donor adopts that donor's current
//     price;
//   - every task whose name appears in a donor with identical structure
//     (same subtask names in order, same path count) adopts that donor's
//     latencies and path prices, re-clamped into the receiver's (possibly
//     changed) bounds.
//
// Donors are consulted in argument order and the first match wins, so the
// result is a pure function of (receiver, donor list) — deterministic for
// the fleet's bitwise guarantees. Anything unmatched keeps the receiver's
// cold-start value. The receiver's resource caches are refreshed at the end;
// donors are read-only throughout and must stay alive (not Closed-and-
// overwritten) until the call returns. Pins are deliberately not carried —
// they are session state owned by whoever pinned them (see pin.go).
func (e *Engine) CarryFrom(donors ...*Engine) {
	muDone := make([]bool, len(e.p.Resources))
	taskDone := make([]bool, len(e.p.Tasks))
	for _, d := range donors {
		d.carryInto(e, muDone, taskDone)
	}
	e.refreshResourceState()
	// Accelerated dynamics must not extrapolate across the carry
	// discontinuity (relevant when the receiver has already stepped).
	if e.dyn != nil {
		e.dyn.Invalidate()
	}
}

// carryInto copies d's prices and task state into e where IDs/names match
// and the slot has not been filled by an earlier donor.
func (d *Engine) carryInto(e *Engine, muDone, taskDone []bool) {
	oldMu := make(map[string]float64, len(d.p.Resources))
	for ri := range d.p.Resources {
		oldMu[d.p.Resources[ri].ID] = d.agents[ri].Mu
	}
	for ri := range e.p.Resources {
		if muDone[ri] {
			continue
		}
		if mu, ok := oldMu[e.p.Resources[ri].ID]; ok {
			e.agents[ri].Mu = mu
			muDone[ri] = true
		}
	}

	oldByName := make(map[string]int, len(d.p.Tasks))
	for ti := range d.p.Tasks {
		oldByName[d.p.Tasks[ti].Name] = ti
	}
	for ti := range e.p.Tasks {
		if taskDone[ti] {
			continue
		}
		oi, ok := oldByName[e.p.Tasks[ti].Name]
		if !ok {
			continue
		}
		oldTask, newTask := &d.p.Tasks[oi], &e.p.Tasks[ti]
		if len(oldTask.SubtaskNames) != len(newTask.SubtaskNames) ||
			len(oldTask.Paths) != len(newTask.Paths) {
			continue // structure changed: start this task fresh
		}
		same := true
		for si := range newTask.SubtaskNames {
			if oldTask.SubtaskNames[si] != newTask.SubtaskNames[si] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		copy(e.controllers[ti].LatMs, d.controllers[oi].LatMs)
		copy(e.controllers[ti].Lambda, d.controllers[oi].Lambda)
		// Re-clamp carried latencies into the (possibly changed) bounds.
		for si := range e.controllers[ti].LatMs {
			e.controllers[ti].LatMs[si] = clamp(e.controllers[ti].LatMs[si],
				newTask.LatMinMs[si], newTask.LatMaxMs[si])
		}
		taskDone[ti] = true
	}
}
