package core

import (
	"math"
	"testing"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// singleSubtaskWorkload: one task, one subtask, one resource. The optimum is
// analytic: utility decreases with latency, so the subtask takes the whole
// availability: lat* = (c+l)/B.
func singleSubtaskWorkload() *workload.Workload {
	t := task.NewBuilder("t", 100).Subtask("s", "r0", 3).MustBuild()
	return &workload.Workload{
		Name:      "single",
		Tasks:     []*task.Task{t},
		Resources: []share.Resource{{ID: "r0", Kind: share.CPU, Availability: 1, LagMs: 1}},
		Curves:    map[string]utility.Curve{"t": utility.Linear{K: 2, CMs: 100}},
	}
}

func TestEngineSingleSubtaskOptimum(t *testing.T) {
	e, err := NewEngine(singleSubtaskWorkload(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(2000, 1e-6, 10, 1e-3)
	if !ok {
		t.Fatalf("did not converge: %v", snap)
	}
	// lat* = (3+1)/1 = 4ms; share = 1.
	if got := snap.LatMs[0][0]; math.Abs(got-4) > 0.01 {
		t.Errorf("lat = %v, want 4", got)
	}
	if got := snap.ShareSums[0]; math.Abs(got-1) > 0.01 {
		t.Errorf("share sum = %v, want 1", got)
	}
}

// twoTaskOneResource: two single-subtask tasks with (c+l) = 4 and 9 share a
// unit resource under linear utility. KKT gives lat_i = sqrt(k_i)·Σ_j
// sqrt(k_j)/B: lat1 = 10, lat2 = 15, mu* = 25.
func twoTaskOneResource() *workload.Workload {
	t1 := task.NewBuilder("t1", 1000).Subtask("s1", "r0", 3).MustBuild()
	t2 := task.NewBuilder("t2", 1000).Subtask("s2", "r0", 8).MustBuild()
	return &workload.Workload{
		Name:      "two",
		Tasks:     []*task.Task{t1, t2},
		Resources: []share.Resource{{ID: "r0", Kind: share.CPU, Availability: 1, LagMs: 1}},
		Curves: map[string]utility.Curve{
			"t1": utility.Linear{K: 2, CMs: 1000},
			"t2": utility.Linear{K: 2, CMs: 1000},
		},
	}
}

func TestEngineTwoTaskAnalyticOptimum(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		e, err := NewEngine(twoTaskOneResource(), Config{Step: StepPolicy{Adaptive: adaptive, Gamma: 1}})
		if err != nil {
			t.Fatal(err)
		}
		snap, ok := e.RunUntilConverged(5000, 1e-7, 20, 1e-3)
		if !ok {
			t.Fatalf("adaptive=%v: did not converge: %v", adaptive, snap)
		}
		if got := snap.LatMs[0][0]; math.Abs(got-10) > 0.1 {
			t.Errorf("adaptive=%v: lat1 = %v, want 10", adaptive, got)
		}
		if got := snap.LatMs[1][0]; math.Abs(got-15) > 0.15 {
			t.Errorf("adaptive=%v: lat2 = %v, want 15", adaptive, got)
		}
		if got := snap.Mu[0]; math.Abs(got-25) > 0.5 {
			t.Errorf("adaptive=%v: mu = %v, want 25", adaptive, got)
		}
		// KKT residuals at the optimum are tiny.
		for _, r := range e.KKTResiduals() {
			if r > 1e-2 {
				t.Errorf("adaptive=%v: KKT residual %v too large", adaptive, r)
			}
		}
	}
}

// The prototype workload's model-based optimum is analytic (DESIGN.md /
// Section 6.4 analysis): the fast tasks' critical time binds at per-subtask
// latency 35ms → share 10/35 ≈ 0.2857; the slow tasks absorb the remaining
// availability: 0.45 − 0.2857 ≈ 0.1643 each.
func TestEnginePrototypeModelOptimum(t *testing.T) {
	e, err := NewEngine(workload.Prototype(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(6000, 1e-7, 20, 1e-3)
	if !ok {
		t.Fatalf("did not converge: %v", snap)
	}
	fastShare, err := e.ShareByName("task1", "T11")
	if err != nil {
		t.Fatal(err)
	}
	slowShare, err := e.ShareByName("task3", "T31")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fastShare-10.0/35) > 0.01 {
		t.Errorf("fast share = %.4f, want %.4f", fastShare, 10.0/35)
	}
	if math.Abs(slowShare-(0.45-10.0/35)) > 0.01 {
		t.Errorf("slow share = %.4f, want %.4f", slowShare, 0.45-10.0/35)
	}
	// Fast critical path binds at 105ms.
	if cp := snap.CriticalPathMs[0]; math.Abs(cp-105) > 1 {
		t.Errorf("fast critical path = %v, want ≈105", cp)
	}
	if !snap.Feasible(1e-3) {
		t.Errorf("solution infeasible: %v", snap)
	}
}

// After installing a negative model error on the fast subtasks (the model
// over-predicted latency), the optimizer drops the fast shares to the
// rate-derived minimum 0.2 and gives the slow tasks 0.25 — the Figure 8
// post-correction allocation.
func TestEnginePrototypeErrorCorrectionShift(t *testing.T) {
	e, err := NewEngine(workload.Prototype(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3000, nil)
	for _, tn := range []string{"task1", "task2"} {
		for _, sn := range []string{"T11", "T12", "T13", "T21", "T22", "T23"} {
			if err := e.SetErrorMs(tn, sn, -20); err != nil {
				// Subtask belongs to the other task; skip.
				continue
			}
		}
	}
	snap, ok := e.RunUntilConverged(6000, 1e-7, 20, 1e-3)
	if !ok {
		t.Fatalf("did not re-converge: %v", snap)
	}
	fastShare, _ := e.ShareByName("task1", "T11")
	slowShare, _ := e.ShareByName("task3", "T31")
	if math.Abs(fastShare-0.2) > 0.005 {
		t.Errorf("fast share after correction = %.4f, want 0.20", fastShare)
	}
	if math.Abs(slowShare-0.25) > 0.005 {
		t.Errorf("slow share after correction = %.4f, want 0.25", slowShare)
	}
}

// Base workload: converges to the Table 1 solution (see DESIGN.md for the
// reconstruction): every resource saturated, every critical path within 1%
// of its critical time, subtask latencies near the published values.
func TestEngineBaseWorkloadMatchesTable1(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(8000, 1e-8, 50, 1e-3)
	if !ok {
		t.Fatalf("did not converge: %v", snap)
	}
	for ri, sum := range snap.ShareSums {
		if math.Abs(sum-1) > 0.02 {
			t.Errorf("resource %d share sum = %.4f, want ≈1", ri, sum)
		}
	}
	for ti, cp := range snap.CriticalPathMs {
		crit := snap.CriticalTimeMs[ti]
		if cp > crit*1.001 {
			t.Errorf("task %d critical path %.2f exceeds critical time %.1f", ti, cp, crit)
		}
		if cp < crit*0.98 {
			t.Errorf("task %d critical path %.2f more than 2%% below critical time %.1f (paper: <1%%)", ti, cp, crit)
		}
	}
	// Per-subtask latencies close to the published Table 1 values.
	ref := workload.Table1LatenciesMs()
	w := workload.Base()
	var maxRel, sumRel float64
	var count int
	for ti, tk := range w.Tasks {
		for si, s := range tk.Subtasks {
			want := ref[tk.Name][s.Name]
			got := snap.LatMs[ti][si]
			rel := math.Abs(got-want) / want
			sumRel += rel
			count++
			if rel > maxRel {
				maxRel = rel
			}
			if rel > 0.10 {
				t.Errorf("%s.%s latency = %.2f, published %.1f (%.1f%% off)", tk.Name, s.Name, got, want, rel*100)
			}
		}
	}
	if mean := sumRel / float64(count); mean > 0.05 {
		t.Errorf("mean relative latency error %.3f > 5%%", mean)
	}
	t.Logf("Table 1 comparison: mean rel err %.2f%%, max %.2f%%, utility %.2f",
		sumRel/float64(count)*100, maxRel*100, snap.Utility)
}

// Section 5.4: replicating the base tasks without scaling critical times
// makes the workload unschedulable; LLA must NOT converge to a feasible
// point and the critical paths overshoot their constraints severely.
func TestEngineDetectsUnschedulableWorkload(t *testing.T) {
	w6, err := workload.Replicate(workload.Base(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(w6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(1500, 1e-8, 50, 1e-3)
	if ok && snap.Feasible(1e-3) {
		t.Fatalf("unschedulable workload reported as converged feasible: %v", snap)
	}
	// The critical-path overshoot is large (paper reports 1.75–2.41x).
	worst := 0.0
	for ti, cp := range snap.CriticalPathMs {
		ratio := cp / snap.CriticalTimeMs[ti]
		if ratio > worst {
			worst = ratio
		}
	}
	if worst < 1.3 {
		t.Errorf("worst critical-path ratio %.2f, want clearly infeasible (>1.3)", worst)
	}
}

// Scaled workloads with relaxed critical times stay schedulable and converge
// (Section 5.3), with utility growing with the task count.
func TestEngineScalabilityConverges(t *testing.T) {
	var prevUtility float64
	for _, factor := range []int{1, 2, 4} {
		w, err := workload.Replicate(workload.Base(), factor, 4)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(w, Config{})
		if err != nil {
			t.Fatal(err)
		}
		snap, ok := e.RunUntilConverged(8000, 1e-8, 50, 1e-2)
		if !ok {
			t.Fatalf("factor %d: did not converge: %v", factor, snap)
		}
		if snap.Utility <= prevUtility {
			t.Errorf("factor %d: utility %.2f did not grow (prev %.2f)", factor, snap.Utility, prevUtility)
		}
		prevUtility = snap.Utility
	}
}

// Resource variation: dropping availability mid-run re-converges to a new
// feasible allocation with the reduced capacity respected.
func TestEngineAdaptsToAvailabilityDrop(t *testing.T) {
	e, err := NewEngine(twoTaskOneResource(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.RunUntilConverged(5000, 1e-7, 20, 1e-3); !ok {
		t.Fatal("initial convergence failed")
	}
	if err := e.SetAvailability("r0", 0.5); err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(8000, 1e-7, 20, 1e-3)
	if !ok {
		t.Fatalf("did not re-converge after availability drop: %v", snap)
	}
	if snap.ShareSums[0] > 0.501 {
		t.Errorf("share sum %.4f exceeds new availability 0.5", snap.ShareSums[0])
	}
	// Optimum scales: lat_i = sqrt(k_i)·Σsqrt(k_j)/B doubles.
	if got := snap.LatMs[0][0]; math.Abs(got-20) > 0.2 {
		t.Errorf("lat1 after drop = %v, want 20", got)
	}
	if err := e.SetAvailability("r0", 1.5); err == nil {
		t.Error("invalid availability should fail")
	}
	if err := e.SetAvailability("zz", 0.5); err == nil {
		t.Error("unknown resource should fail")
	}
}

// Workload variation: raising a subtask's minimum share floor forces the
// optimizer to keep at least that share allocated.
func TestEngineAdaptsToMinShareChange(t *testing.T) {
	e, err := NewEngine(twoTaskOneResource(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3000, nil)
	if err := e.SetMinShare("t1", "s1", 0.6); err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(8000, 1e-7, 20, 1e-3)
	if !ok {
		t.Fatalf("did not re-converge: %v", snap)
	}
	s1, _ := e.ShareByName("t1", "s1")
	if s1 < 0.6-1e-6 {
		t.Errorf("share = %v, want >= 0.6 (min-share floor)", s1)
	}
	if err := e.SetMinShare("t1", "s1", 2); err == nil {
		t.Error("invalid min share should fail")
	}
	if err := e.SetMinShare("t1", "zz", 0.1); err == nil {
		t.Error("unknown subtask should fail")
	}
	if err := e.SetMinShare("zz", "s1", 0.1); err == nil {
		t.Error("unknown task should fail")
	}
}

// Nonlinear (quadratic) curves exercise the controller's inner fixed point;
// the converged point must satisfy the KKT stationarity conditions.
func TestEngineNonlinearCurveKKT(t *testing.T) {
	w := twoTaskOneResource()
	w.Curves["t1"] = utility.Quadratic{A: 1000, B: 0.05}
	w.Curves["t2"] = utility.Quadratic{A: 1000, B: 0.01}
	e, err := NewEngine(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(10000, 1e-8, 30, 1e-3)
	if !ok {
		t.Fatalf("did not converge: %v", snap)
	}
	for _, r := range e.KKTResiduals() {
		if r > 2e-2 {
			t.Errorf("KKT residual %v too large for nonlinear curve", r)
		}
	}
	if !snap.Feasible(1e-3) {
		t.Errorf("infeasible: %v", snap)
	}
}

// The sum and path-weighted variants both converge on the base workload
// (Section 5.2 reports no convergence difference).
func TestEngineWeightVariantsConverge(t *testing.T) {
	for _, mode := range []task.WeightMode{task.WeightSum, task.WeightPathNormalized, task.WeightPathRaw} {
		e, err := NewEngine(workload.Base(), Config{WeightMode: mode})
		if err != nil {
			t.Fatal(err)
		}
		snap, ok := e.RunUntilConverged(8000, 1e-8, 50, 1e-2)
		if !ok {
			t.Errorf("mode %v: did not converge: %v", mode, snap)
		}
		if !snap.Feasible(1e-2) {
			t.Errorf("mode %v: infeasible: %v", mode, snap)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	e, err := NewEngine(singleSubtaskWorkload(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if e.Iteration() != 1 {
		t.Errorf("Iteration = %d, want 1", e.Iteration())
	}
	if e.Problem() == nil || e.Controller(0) == nil {
		t.Error("accessors returned nil")
	}
	if _, err := e.LatencyByName("t", "s"); err != nil {
		t.Errorf("LatencyByName: %v", err)
	}
	if _, err := e.LatencyByName("t", "zz"); err == nil {
		t.Error("unknown subtask should fail")
	}
	if _, err := e.ShareByName("zz", "s"); err == nil {
		t.Error("unknown task should fail")
	}
	if s := e.Snapshot().String(); s == "" {
		t.Error("empty snapshot string")
	}
	if err := e.SetErrorMs("t", "zz", 1); err == nil {
		t.Error("unknown subtask should fail")
	}
}

func TestEngineRejectsInvalidWorkload(t *testing.T) {
	w := singleSubtaskWorkload()
	w.Tasks = nil
	if _, err := NewEngine(w, Config{}); err == nil {
		t.Fatal("invalid workload should fail to compile")
	}
}

func TestCompileIndexes(t *testing.T) {
	p, err := Compile(workload.Base(), task.WeightPathNormalized)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSubtasks() != 21 {
		t.Errorf("NumSubtasks = %d, want 21", p.NumSubtasks())
	}
	if p.Workload() == nil {
		t.Error("Workload() nil")
	}
	// PathsThrough is consistent with Paths.
	for _, pt := range p.Tasks {
		for si, pis := range pt.PathsThrough {
			for _, pi := range pis {
				found := false
				for _, s := range pt.Paths[pi] {
					if s == si {
						found = true
					}
				}
				if !found {
					t.Errorf("task %s: PathsThrough[%d] lists path %d which misses the subtask", pt.Name, si, pi)
				}
			}
		}
		// Bounds sane.
		for si := range pt.LatMinMs {
			if pt.LatMinMs[si] <= 0 || pt.LatMaxMs[si] < pt.LatMinMs[si] {
				t.Errorf("task %s subtask %d: bad bounds [%v,%v]", pt.Name, si, pt.LatMinMs[si], pt.LatMaxMs[si])
			}
		}
	}
}

// Latencies always stay within their admissible bounds during iteration.
func TestEngineLatenciesRespectBounds(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Step: StepPolicy{Adaptive: false, Gamma: 10}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e.Step()
		for ti := range e.p.Tasks {
			pt := &e.p.Tasks[ti]
			for si, lat := range e.controllers[ti].LatMs {
				if lat < pt.LatMinMs[si]-1e-9 || lat > pt.LatMaxMs[si]+1e-9 {
					t.Fatalf("iter %d: task %d subtask %d latency %v outside [%v,%v]",
						i, ti, si, lat, pt.LatMinMs[si], pt.LatMaxMs[si])
				}
			}
		}
	}
}
