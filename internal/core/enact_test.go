package core

import (
	"testing"

	"lla/internal/workload"
)

func TestEnactorFirstCallAlwaysEnacts(t *testing.T) {
	en := NewEnactor()
	snap := Snapshot{Shares: [][]float64{{0.5}}, Utility: 10}
	if got := en.Consider(snap); got == nil {
		t.Fatal("first allocation must enact")
	}
	if en.Enactments() != 1 {
		t.Errorf("enactments = %d, want 1", en.Enactments())
	}
}

func TestEnactorSkipsTinyChanges(t *testing.T) {
	en := NewEnactor()
	en.Consider(Snapshot{Shares: [][]float64{{0.5, 0.3}}, Utility: 100})
	// 0.1% share drift, 0.1% utility drift: below both thresholds.
	if got := en.Consider(Snapshot{Shares: [][]float64{{0.5005, 0.3001}}, Utility: 100.1}); got != nil {
		t.Error("tiny drift should not enact")
	}
	if en.Enactments() != 1 {
		t.Errorf("enactments = %d, want 1", en.Enactments())
	}
}

func TestEnactorReactsToShareMove(t *testing.T) {
	en := NewEnactor()
	en.Consider(Snapshot{Shares: [][]float64{{0.5}}, Utility: 100})
	if got := en.Consider(Snapshot{Shares: [][]float64{{0.6}}, Utility: 100}); got == nil {
		t.Error("20% share move should enact")
	}
}

func TestEnactorReactsToUtilityGain(t *testing.T) {
	en := NewEnactor()
	en.Consider(Snapshot{Shares: [][]float64{{0.5}}, Utility: 100})
	if got := en.Consider(Snapshot{Shares: [][]float64{{0.5001}}, Utility: 105}); got == nil {
		t.Error("5% utility gain should enact")
	}
}

func TestEnactorStructuralChangeEnacts(t *testing.T) {
	en := NewEnactor()
	en.Consider(Snapshot{Shares: [][]float64{{0.5}}, Utility: 100})
	if got := en.Consider(Snapshot{Shares: [][]float64{{0.5}, {0.2}}, Utility: 100}); got == nil {
		t.Error("task-count change should enact")
	}
	en2 := NewEnactor()
	en2.Consider(Snapshot{Shares: [][]float64{{0.5, 0.5}}, Utility: 100})
	if got := en2.Consider(Snapshot{Shares: [][]float64{{0.5}}, Utility: 100}); got == nil {
		t.Error("subtask-count change should enact")
	}
}

func TestEnactorZeroShareTransitions(t *testing.T) {
	en := NewEnactor()
	en.Consider(Snapshot{Shares: [][]float64{{0}}, Utility: 100})
	if got := en.Consider(Snapshot{Shares: [][]float64{{0.1}}, Utility: 100}); got == nil {
		t.Error("zero to nonzero should enact")
	}
}

func TestEnactorReturnsDeepCopy(t *testing.T) {
	en := NewEnactor()
	got := en.Consider(Snapshot{Shares: [][]float64{{0.5}}, Utility: 100})
	got[0][0] = 99
	if next := en.Consider(Snapshot{Shares: [][]float64{{0.5}}, Utility: 100}); next != nil {
		t.Error("mutating the returned slice must not affect enactor state")
	}
}

// During a long converged stretch the enactor goes quiet — the paper's "the
// optimization algorithm executes much less frequently than regular
// processing".
func TestEnactorQuietAfterConvergence(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	en := NewEnactor()
	e.Run(2000, func(s Snapshot) { en.Consider(s) })
	total := en.Enactments()
	// Run another 500 converged iterations: no new enactments.
	e.Run(500, func(s Snapshot) { en.Consider(s) })
	if en.Enactments() != total {
		t.Errorf("enactments grew from %d to %d after convergence", total, en.Enactments())
	}
	if total > 200 {
		t.Errorf("%d enactments over the transient, want far fewer than iterations", total)
	}
}

func TestReplaceWorkloadCarriesPrices(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snapBefore, ok := e.RunUntilConverged(5000, 1e-8, 50, 1e-3)
	if !ok {
		t.Fatal("initial convergence failed")
	}
	muBefore := append([]float64(nil), snapBefore.Mu...)

	// Same workload: everything carries over; immediately converged.
	if err := e.ReplaceWorkload(workload.Base()); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	for ri := range muBefore {
		if snap.Mu[ri] != muBefore[ri] {
			t.Errorf("mu[%d] = %v, want carried %v", ri, snap.Mu[ri], muBefore[ri])
		}
	}
	snapAfter, ok := e.RunUntilConverged(200, 1e-8, 50, 1e-3)
	if !ok {
		t.Fatalf("warm restart should converge almost immediately: %v", snapAfter)
	}
}

func TestReplaceWorkloadWithNewTask(t *testing.T) {
	w4, err := workload.Replicate(workload.Base(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(w4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.RunUntilConverged(5000, 1e-8, 50, 1e-3); !ok {
		t.Fatal("initial convergence failed")
	}

	// A fourth task joins (replicate one task of the relaxed workload).
	w6, err := workload.Replicate(workload.Base(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReplaceWorkload(w6); err != nil {
		t.Fatal(err)
	}
	warm := e.Iteration()
	snap, ok := e.RunUntilConverged(5000, 1e-8, 50, 1e-2)
	if !ok {
		t.Fatalf("did not converge after task join: %v", snap)
	}
	warmIters := snap.Iteration - warm
	if len(snap.TaskUtility) != 6 {
		t.Fatalf("tasks after join = %d, want 6", len(snap.TaskUtility))
	}

	// Cold start for comparison: warm restart should not be slower by more
	// than a small factor (it is usually much faster).
	cold, err := NewEngine(w6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	coldSnap, ok := cold.RunUntilConverged(5000, 1e-8, 50, 1e-2)
	if !ok {
		t.Fatal("cold start did not converge")
	}
	t.Logf("warm restart %d iters, cold start %d iters", warmIters, coldSnap.Iteration)
	if warmIters > coldSnap.Iteration*3 {
		t.Errorf("warm restart (%d iters) much slower than cold (%d)", warmIters, coldSnap.Iteration)
	}
}

func TestReplaceWorkloadRejectsInvalid(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := workload.Base()
	bad.Tasks = nil
	if err := e.ReplaceWorkload(bad); err == nil {
		t.Fatal("invalid workload should fail")
	}
	// The engine is still usable after a failed replace.
	e.Step()
	if e.Snapshot().Utility == 0 {
		t.Error("engine unusable after failed replace")
	}
}

func TestReplaceWorkloadStructureChangeStartsFresh(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(500, nil)

	// Change task1's structure (different subtask names): it must restart
	// fresh but the engine still converges.
	w := workload.Base()
	w.Tasks[0].Subtasks[0].Name = "renamed"
	if err := e.ReplaceWorkload(w); err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(5000, 1e-8, 50, 1e-2)
	if !ok {
		t.Fatalf("did not converge after structural change: %v", snap)
	}
	if _, err := e.LatencyByName("task1", "renamed"); err != nil {
		t.Errorf("renamed subtask not found: %v", err)
	}
}
