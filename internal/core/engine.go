package core

import (
	"fmt"
	"math"
	"runtime"

	"lla/internal/obs"
	"lla/internal/price"
	"lla/internal/stats"
	"lla/internal/task"
	"lla/internal/workload"
)

// StepPolicy configures the price step sizes (Section 5.2).
type StepPolicy struct {
	// Adaptive selects the paper's congestion-doubling heuristic; when
	// false the step size is fixed at Gamma.
	Adaptive bool
	// Gamma is the fixed step size, or the adaptive policy's base value.
	Gamma float64
	// Max caps the adaptive ramp (0 = price.DefaultAdaptiveMax).
	Max float64
}

// Config configures an Engine.
type Config struct {
	// WeightMode selects the utility variant of Section 3.2 (default:
	// path-weighted).
	WeightMode task.WeightMode
	// Step configures the price step sizes (default: adaptive with base 1,
	// the paper's best-performing setting).
	Step StepPolicy
	// InitialMu is the starting resource price (default 1).
	InitialMu float64
	// MaxInner bounds the controller's fixed-point rounds for nonlinear
	// curves (default 30).
	MaxInner int
	// Workers sets how many shards Step fans the per-task controller work
	// across: 0 (or negative) uses GOMAXPROCS, 1 runs everything on the
	// calling goroutine (the serial path). Controllers only read the
	// previous iteration's resource state, and the per-resource share sums
	// are reduced serially in a fixed subtask order, so every worker count
	// produces bitwise-identical results.
	Workers int
	// Sparse selects the incremental active-set iteration (sparse.go):
	// SparseAuto resolves to SparseOn because the sparse path is
	// bitwise-identical to the dense one at every iteration and worker
	// count; SparseOff forces the dense path (benchmark baseline).
	Sparse SparseMode
	// PriceSolver selects the resource-price dynamics (DESIGN.md §12):
	// price.SolverGradient (the default) is the paper's gradient projection
	// with the Section 5.2 doubling heuristic, bit-for-bit the pre-Dynamics
	// behavior; the accelerated solvers (newton, anderson, price-discovery)
	// trade it for updates that need far fewer rounds to converge. Path
	// prices always use the reference gradient dynamics — only the resource
	// half of the dual update is pluggable.
	PriceSolver price.Solver
}

// WithDefaults returns the config with every unset field filled with the
// paper's default. Exported so the other runtimes (internal/dist) share this
// single source of truth instead of mirroring the defaults.
func (c Config) WithDefaults() Config {
	if c.WeightMode == 0 {
		c.WeightMode = task.WeightPathNormalized
	}
	if c.Step.Gamma == 0 {
		c.Step = StepPolicy{Adaptive: true, Gamma: 1}
	}
	if c.InitialMu == 0 {
		c.InitialMu = 1
	}
	if c.MaxInner == 0 {
		c.MaxInner = 30
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Sparse == SparseAuto {
		c.Sparse = SparseOn
	}
	if c.PriceSolver == "" {
		c.PriceSolver = price.SolverGradient
	}
	return c
}

// NewStepSizer builds one step sizer from the config's StepPolicy. It is
// the single source of truth for step-sizer construction: the engine and
// the distributed runtimes (which build controllers and agents directly)
// all go through it, so a config produces identical price dynamics in every
// runtime. Call on a config that has been through WithDefaults.
func (c Config) NewStepSizer() price.StepSizer {
	if c.Step.Adaptive {
		a := price.NewAdaptive(c.Step.Gamma)
		a.Max = c.Step.Max
		return a
	}
	return &price.Fixed{Value: c.Step.Gamma}
}

// NewDynamics builds the configured price-dynamics solver. Like NewStepSizer
// it is the single source of truth: the engine and the distributed runtimes
// construct their dynamics through it, so a config produces identical price
// trajectories in every runtime. Call on a config that has been through
// WithDefaults, and call Reset on the result before the first Step.
func (c Config) NewDynamics() price.Dynamics {
	return price.NewDynamics(c.PriceSolver, price.DynamicsConfig{
		NewStep:     c.NewStepSizer,
		BaseGamma:   c.Step.Gamma,
		PriceScaled: c.Step.Adaptive,
	})
}

// Accelerated reports whether the config selects a non-reference price
// solver — the condition under which runtimes swap the built-in agent
// gradient step for a Dynamics instance.
func (c Config) Accelerated() bool {
	return c.PriceSolver != "" && c.PriceSolver != price.SolverGradient
}

// Engine drives LLA synchronously: one Step performs a full iteration —
// latency allocation at every task controller followed by price computation
// at every resource (Section 4.1). The engine is the vehicle for the
// paper's simulation experiments and the reference implementation the
// distributed runtime is tested against.
type Engine struct {
	p           *Problem
	cfg         Config
	controllers []*Controller
	agents      []*ResourceAgent

	iter int
	// shareSums and congested cache the previous iteration's resource
	// state; controllers consume it for the adaptive path-step heuristic.
	shareSums []float64
	congested []bool

	// mu is the reused per-Step snapshot of resource prices; taking it
	// before the controller phase is what lets shards run against a frozen
	// previous-iteration view.
	mu []float64
	// shares[ti][si] is the per-subtask share scratch: each shard writes
	// the shares of its own tasks after allocating latencies, and the
	// serial reduction sums them per resource in compiled subtask order so
	// the result is bitwise-independent of the worker count. Backed by one
	// flat allocation.
	shares [][]float64
	// nshards is the resolved shard count (Config.Workers clamped to the
	// task count, at least 1).
	nshards int
	// pool holds the parked shard workers; nil until the first parallel
	// Step and whenever nshards == 1.
	pool *workerPool

	// Incremental-iteration state (sparse.go). sparse selects the
	// active-set Step path; inc is the once-built CSR incidence index;
	// fpMu/fpCong hold each controller's input fingerprint (aligned with
	// inc.taskRes); the bool vectors carry the per-controller and per-agent
	// fixed-point flags; shardSkipped is the per-shard skip tally folded
	// into sstats after the join.
	sparse       bool
	inc          Incidence
	fpMu         []float64
	fpCong       []bool
	ctlSolved    []bool
	ctlStable    []bool
	latChanged   []bool
	agentStable  []bool
	sumValid     []bool
	shardSkipped []uint64
	sstats       SparseStats

	// Accelerated price dynamics (DESIGN.md §12). dyn is nil for the
	// reference gradient solver — the agents' built-in UpdatePrice path is
	// kept bit-for-bit untouched; for accelerated solvers the resource phase
	// runs resourcePhaseDyn instead. dynAvail/dynCurv are the preallocated
	// StepInput scratch; dynDelta is the last round's largest |Δμ| (the
	// residual-trajectory gauge).
	dyn      price.Dynamics
	dynAvail []float64
	dynCurv  []float64
	dynDelta float64

	// Pinned-price state (pin.go). pinned is nil until the first PinPrice —
	// standalone engines pay one nil-check per resource phase. A pinned
	// resource's price is owned externally (the fleet boundary aggregator):
	// the resource phase still reduces its demand but never moves its price,
	// and its congestion flag is the externally supplied one.
	pinned     []bool
	pinnedCong []bool
	// pinEpoch counts pin-state changes: it advances whenever a PinPrice
	// actually moves a pinned value (price or congestion bit) and on every
	// UnpinPrice. A caller that recorded the epoch at its last sweep can
	// prove "no pinned input changed since" with one integer compare — the
	// fleet's shard-level active set rests on it.
	pinEpoch uint64

	// obsv holds the attached observability channels (nil = disabled); the
	// hot path pays one nil-check per Step when nothing is attached.
	obsv *obsHandles
}

// NewEngine compiles the workload and builds controllers and resource
// agents.
func NewEngine(w *workload.Workload, cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	p, err := Compile(w, cfg.WeightMode)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		p:         p,
		cfg:       cfg,
		shareSums: make([]float64, len(p.Resources)),
		congested: make([]bool, len(p.Resources)),
		mu:        make([]float64, len(p.Resources)),
		nshards:   resolveShards(cfg.Workers, len(p.Tasks)),
		sparse:    cfg.Sparse != SparseOff,
	}
	flat := make([]float64, p.NumSubtasks())
	e.shares = make([][]float64, len(p.Tasks))
	for ti := range p.Tasks {
		n := len(p.Tasks[ti].Res)
		e.shares[ti] = flat[:n:n]
		flat = flat[n:]
	}
	// Callers that drop an engine without Close must not leak its parked
	// workers; the pool never references the engine, so finalization fires.
	runtime.SetFinalizer(e, (*Engine).Close)
	newStep := cfg.NewStepSizer
	for ti := range p.Tasks {
		e.controllers = append(e.controllers, NewController(p, ti, newStep, cfg.Step.Gamma, cfg.Step.Adaptive, cfg.MaxInner))
	}
	for ri := range p.Resources {
		e.agents = append(e.agents, NewResourceAgent(p, ri, newStep(), cfg.Step.Gamma, cfg.Step.Adaptive, cfg.InitialMu))
	}
	if cfg.Accelerated() {
		e.dyn = cfg.NewDynamics()
		e.dyn.Reset(len(p.Resources))
		e.dynAvail = make([]float64, len(p.Resources))
		e.dynCurv = make([]float64, len(p.Resources))
	}
	e.initSparse()
	e.refreshResourceState()
	return e, nil
}

// Problem exposes the compiled problem (read-only use).
func (e *Engine) Problem() *Problem { return e.p }

// Controller returns the controller of task ti.
func (e *Engine) Controller(ti int) *Controller { return e.controllers[ti] }

// Iteration returns the number of completed iterations.
func (e *Engine) Iteration() int { return e.iter }

// latOf adapts controller latencies for ResourceAgent.ShareSum.
func (e *Engine) latOf(ti int) []float64 { return e.controllers[ti].LatMs }

// refreshResourceState recomputes the cached share sums and congestion
// flags from the controllers' current latencies. Every caller is reacting
// to an out-of-band state change (construction, availability change, fork
// warm-start, workload replacement), so it also drops the sparse path's
// cached fixed points.
func (e *Engine) refreshResourceState() {
	for ri, a := range e.agents {
		sum := a.ShareSum(e.latOf)
		e.shareSums[ri] = sum
		e.congested[ri] = a.Congested(sum)
	}
	e.invalidateSparse()
}

// Step performs one full LLA iteration: each controller refreshes its path
// prices (Equation 9) and re-solves its latencies against the current
// resource prices (Equation 7); then each resource agent re-prices its
// capacity from the new demand (Equation 8).
//
// The controller phase fans out across nshards contiguous task ranges:
// controllers are independent given the frozen mu/congested snapshot, so
// shards never touch shared mutable state. Each shard also evaluates its
// tasks' share functions into the engine scratch; the resource phase then
// reduces those values serially in compiled subtask order, which makes the
// arithmetic — and therefore the whole trajectory — bitwise-identical for
// every worker count. Steady-state Steps perform no heap allocation.
func (e *Engine) Step() {
	for ri, a := range e.agents {
		e.mu[ri] = a.Mu
	}
	if e.nshards > 1 {
		if e.pool == nil {
			e.pool = newWorkerPool(e.nshards - 1)
		}
		e.pool.dispatch(e)
	} else {
		e.runShard(0)
	}
	switch {
	case e.dyn != nil:
		e.resourcePhaseDyn()
	case e.sparse:
		e.resourcePhaseSparse()
	default:
		for ri, a := range e.agents {
			sum := a.ShareSumFrom(e.shares)
			e.shareSums[ri] = sum
			if e.pinned != nil && e.pinned[ri] {
				e.congested[ri] = e.pinnedCong[ri]
				continue
			}
			a.UpdatePrice(sum)
			e.congested[ri] = a.Congested(sum)
		}
	}
	e.iter++
	if e.obsv != nil {
		e.publishObs()
	}
}

// resourcePhaseSparse is the active-set resource phase: a resource is clean
// — its cached sum, congestion flag and price are reused verbatim — when a
// previous reduction populated the cache (sumValid), the last executed
// gradient step was a bitwise no-op (agentStable: neither Mu nor the step
// sizer moved), and no contributing task re-solved with changed latencies
// this Step (resourceDirty). Under those conditions the dense recomputation
// would reproduce every cached bit: the shares scratch rows of clean tasks
// still hold exactly what their last executed solve wrote, so ShareSumFrom
// would return the cached sum, and re-running the fixed-point price update
// on identical inputs would return the cached price.
func (e *Engine) resourcePhaseSparse() {
	var clean, repriced uint64
	for ri, a := range e.agents {
		if e.sumValid[ri] && e.agentStable[ri] && !e.resourceDirty(ri) {
			clean++
			continue
		}
		sum := a.ShareSumFrom(e.shares)
		e.shareSums[ri] = sum
		if e.pinned != nil && e.pinned[ri] {
			// Pinned price: the reduction refreshes the cached demand but the
			// price and congestion flag are externally owned. agentStable is
			// trivially true — a no-op "update" is a bitwise fixed point — so
			// the resource goes clean as soon as its contributors freeze.
			e.congested[ri] = e.pinnedCong[ri]
			e.agentStable[ri] = true
		} else {
			changed := a.UpdatePrice(sum)
			e.congested[ri] = a.Congested(sum)
			e.agentStable[ri] = !changed
		}
		e.sumValid[ri] = true
		repriced++
	}
	var skipped uint64
	for _, n := range e.shardSkipped {
		skipped += n
	}
	e.sstats.Iterations++
	e.sstats.SkippedSolves += skipped
	e.sstats.ExecutedSolves += uint64(len(e.controllers)) - skipped
	e.sstats.CleanResources += clean
	e.sstats.RepricedResources += repriced
}

// resourcePhaseDyn is the resource phase of the accelerated price solvers:
// reduce every resource's demand (the shares scratch rows of skipped
// controllers still hold their fixed-point values, so the serial reduction
// stays valid under the sparse controller path), hand the whole vector to
// the Dynamics, and write the advanced prices back to the agents. There is
// no per-resource skipping here — accelerated updates move prices in ways
// the agent-stability test does not model — but the controller-side sparse
// skipping keeps working unchanged: a repriced resource changes the
// mu/congested fingerprints of exactly the controllers that observe it, so
// an accelerated price change re-activates its dependent controllers on the
// next Step.
func (e *Engine) resourcePhaseDyn() {
	for ri, a := range e.agents {
		sum := a.ShareSumFrom(e.shares)
		e.shareSums[ri] = sum
		if e.pinned != nil && e.pinned[ri] {
			e.congested[ri] = e.pinnedCong[ri]
		} else {
			e.congested[ri] = a.Congested(sum)
		}
		e.dynAvail[ri] = e.p.Resources[ri].Availability
	}
	if e.dyn.NeedsCurvature() {
		e.curvatureInto(e.dynCurv)
	}
	// e.mu holds this Step's frozen price snapshot; advancing it in place is
	// safe (the controller phase has joined, and the next Step re-snapshots)
	// and gives the Dynamics the previous prices as its iterate history.
	e.dyn.Step(price.StepInput{
		Mu:        e.mu,
		ShareSums: e.shareSums,
		Avail:     e.dynAvail,
		Congested: e.congested,
		Curvature: e.dynCurv,
	})
	maxd := 0.0
	for ri, a := range e.agents {
		if e.pinned != nil && e.pinned[ri] {
			// The Dynamics advanced the whole vector; a pinned coordinate's
			// move is discarded — its price is externally owned.
			e.mu[ri] = a.Mu
			continue
		}
		if d := math.Abs(e.mu[ri] - a.Mu); d > maxd {
			maxd = d
		}
		a.Mu = e.mu[ri]
	}
	e.dynDelta = maxd
	if e.sparse {
		var skipped uint64
		for _, n := range e.shardSkipped {
			skipped += n
		}
		e.sstats.Iterations++
		e.sstats.SkippedSolves += skipped
		e.sstats.ExecutedSolves += uint64(len(e.controllers)) - skipped
		e.sstats.RepricedResources += uint64(len(e.agents))
	}
}

// curvatureInto fills dst with each resource's demand-response curvature
// −∂(Σ share)/∂μ, summed over its subtasks in compiled Subs order — the
// same serial order as the share reduction, so the result is bitwise
// worker-count independent and matches the per-resource sum a distributed
// resource node computes locally.
func (e *Engine) curvatureInto(dst []float64) {
	for ri := range e.p.Resources {
		mu := e.mu[ri]
		c := 0.0
		for _, sub := range e.p.Resources[ri].Subs {
			c += e.p.ResponseSlope(sub[0], sub[1], e.controllers[sub[0]].LatMs[sub[1]], mu)
		}
		dst[ri] = c
	}
}

// PriceSolver returns the configured price-dynamics solver.
func (e *Engine) PriceSolver() price.Solver { return e.cfg.PriceSolver }

// SolverFallbacks returns the cumulative safeguard-fallback count of the
// configured price dynamics (0 for the reference gradient solver, which
// never falls back).
func (e *Engine) SolverFallbacks() uint64 {
	if e.dyn == nil {
		return 0
	}
	return e.dyn.Fallbacks()
}

// runShard executes the controller phase for shard w's contiguous task
// range against the frozen e.mu/e.congested snapshot, leaving the resulting
// share values in e.shares for the serial reduction.
func (e *Engine) runShard(w int) {
	nt := len(e.controllers)
	lo, hi := w*nt/e.nshards, (w+1)*nt/e.nshards
	if !e.sparse {
		for ti := lo; ti < hi; ti++ {
			c := e.controllers[ti]
			c.UpdatePathPrices(e.congested)
			c.AllocateLatencies(e.mu)
			c.SharesInto(e.shares[ti])
		}
		return
	}
	// Active-set path: skip a controller's solve when its previous executed
	// solve changed nothing (ctlStable: latencies, path prices and step
	// sizers all came out bitwise-unchanged) and the prices it observes are
	// bitwise-identical to that solve's fingerprint — re-running the solve
	// would reproduce its state and its shares scratch row verbatim. Shards
	// only touch their own tasks' flags, so the parallel dispatch stays
	// race-free, and the skip decision depends only on frozen per-Step
	// inputs, so it is identical under every worker count.
	var skipped uint64
	for ti := lo; ti < hi; ti++ {
		if e.ctlSolved[ti] && e.ctlStable[ti] && e.fingerprintClean(ti) {
			e.latChanged[ti] = false
			skipped++
			continue
		}
		c := e.controllers[ti]
		e.recordFingerprint(ti)
		priceChanged := c.UpdatePathPrices(e.congested)
		latChanged := c.AllocateLatencies(e.mu)
		if latChanged || !e.ctlSolved[ti] {
			c.SharesInto(e.shares[ti])
		}
		e.latChanged[ti] = latChanged
		e.ctlStable[ti] = !priceChanged && !latChanged
		e.ctlSolved[ti] = true
	}
	e.shardSkipped[w] = skipped
}

// resolveShards maps Config.Workers to the effective shard count.
func resolveShards(workers, numTasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numTasks {
		workers = numTasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Workers returns the effective shard count of the parallel controller
// phase (1 means the fully serial path).
func (e *Engine) Workers() int { return e.nshards }

// Close retires the engine's parked shard workers. It is safe to call
// multiple times, and the engine remains usable afterwards — the next
// parallel Step simply respawns the pool. Engines abandoned without Close
// are cleaned up by a finalizer, but long-lived programs that churn through
// engines should Close them promptly.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// Run executes n iterations, invoking record (if non-nil) after each with
// the fresh snapshot.
func (e *Engine) Run(n int, record func(Snapshot)) {
	for i := 0; i < n; i++ {
		e.Step()
		if record != nil {
			record(e.Snapshot())
		}
	}
}

// RunUntilConverged iterates until the total utility is stable (relative
// change < relTol for window consecutive iterations) and no constraint is
// violated beyond tol, or until maxIters. It returns the final snapshot and
// whether convergence was reached. Each iteration is judged through the
// allocation-free Probe rather than a deep-copied Snapshot; the full
// snapshot is assembled once on exit.
func (e *Engine) RunUntilConverged(maxIters int, relTol float64, window int, tol float64) (Snapshot, bool) {
	if maxIters <= 0 {
		return Snapshot{}, false
	}
	det := stats.NewConvergenceDetector(relTol, window)
	for i := 0; i < maxIters; i++ {
		e.Step()
		pr := e.Probe()
		if det.Observe(pr.Utility) && pr.MaxResourceViolation < tol && pr.MaxPathViolationFrac < tol {
			e.emit(obs.Event{Kind: obs.EventConverged, Iteration: pr.Iteration, Value: pr.Utility})
			return e.Snapshot(), true
		}
	}
	return e.Snapshot(), false
}

// RunUntilKKT iterates until the point is a certified stationary point: the
// worst normalized Equation 7 residual over interior subtasks stays below
// kktTol for window consecutive iterations while no constraint is violated
// beyond tol, or until maxIters. It returns the final snapshot and whether
// convergence was reached.
//
// This is a strictly stronger criterion than RunUntilConverged's
// utility-stability window: under oscillating prices the aggregate utility
// can sit still (the oscillation cancels across tasks) while the KKT
// residuals are still shrinking, so the utility window can declare
// convergence at a point that is not yet the fixed point. Solver
// comparisons (the eval solvers sweep, BenchmarkRoundsToConverge) use this
// criterion so every solver is measured against the same true fixed point.
func (e *Engine) RunUntilKKT(maxIters int, kktTol float64, window int, tol float64) (Snapshot, bool) {
	if maxIters <= 0 || window <= 0 {
		return Snapshot{}, false
	}
	stable := 0
	for i := 0; i < maxIters; i++ {
		e.Step()
		kktMax, _, _ := e.KKTStats()
		pr := e.Probe()
		if kktMax < kktTol && pr.MaxResourceViolation < tol && pr.MaxPathViolationFrac < tol {
			stable++
			if stable >= window {
				e.emit(obs.Event{Kind: obs.EventConverged, Iteration: pr.Iteration, Value: pr.Utility})
				return e.Snapshot(), true
			}
		} else {
			stable = 0
		}
	}
	return e.Snapshot(), false
}

// SetAvailability changes a resource's availability B_r at runtime (resource
// variation, e.g. partial failure or reservation change) and refreshes the
// latency bounds of every subtask on it. The optimizer adapts over the
// following iterations; prices are left untouched so adaptation is
// incremental, as in the paper's continuously-running deployment.
// Like SetErrorMs and SetMinShare it must be called from the goroutine
// driving Step: shard workers only run inside a Step, so changes applied
// between Steps are published to them by the next dispatch.
func (e *Engine) SetAvailability(resourceID string, availability float64) error {
	if availability <= 0 || availability > 1 {
		return fmt.Errorf("core: availability %v outside (0,1]", availability)
	}
	for ri := range e.p.Resources {
		if e.p.Resources[ri].ID != resourceID {
			continue
		}
		e.p.Resources[ri].Availability = availability
		for _, sub := range e.p.Resources[ri].Subs {
			e.p.refreshBounds(sub[0], sub[1])
		}
		e.refreshResourceState()
		e.emit(obs.Event{Kind: obs.EventWorkloadChange, Iteration: e.iter,
			Resource: resourceID, Detail: "availability", Value: availability})
		return nil
	}
	return fmt.Errorf("core: unknown resource %q", resourceID)
}

// SetErrorMs installs the additive model-error correction for one subtask
// (Section 6.3): the share model becomes share = (c+l)/(lat − errMs).
func (e *Engine) SetErrorMs(taskName, subtaskName string, errMs float64) error {
	ti, si, err := e.findSubtask(taskName, subtaskName)
	if err != nil {
		return err
	}
	e.p.Tasks[ti].Share[si].ErrMs = errMs
	e.p.refreshBounds(ti, si)
	e.invalidateSparse()
	e.emit(obs.Event{Kind: obs.EventWorkloadChange, Iteration: e.iter,
		Task: taskName, Subtask: subtaskName, Detail: "err_ms", Value: errMs})
	return nil
}

// SetMinShare changes a subtask's minimum-share floor at runtime (workload
// variation: a rate change shifts the share needed to keep queues bounded).
func (e *Engine) SetMinShare(taskName, subtaskName string, minShare float64) error {
	if minShare < 0 || minShare > 1 {
		return fmt.Errorf("core: min share %v outside [0,1]", minShare)
	}
	ti, si, err := e.findSubtask(taskName, subtaskName)
	if err != nil {
		return err
	}
	e.p.src.Tasks[ti].Subtasks[si].MinShare = minShare
	e.p.refreshBounds(ti, si)
	e.invalidateSparse()
	e.emit(obs.Event{Kind: obs.EventWorkloadChange, Iteration: e.iter,
		Task: taskName, Subtask: subtaskName, Detail: "min_share", Value: minShare})
	return nil
}

// findSubtask resolves names to compiled indices.
func (e *Engine) findSubtask(taskName, subtaskName string) (int, int, error) {
	for ti := range e.p.Tasks {
		if e.p.Tasks[ti].Name != taskName {
			continue
		}
		for si, n := range e.p.Tasks[ti].SubtaskNames {
			if n == subtaskName {
				return ti, si, nil
			}
		}
		return 0, 0, fmt.Errorf("core: task %s has no subtask %q", taskName, subtaskName)
	}
	return 0, 0, fmt.Errorf("core: unknown task %q", taskName)
}

// KKTResiduals measures how far the current point is from stationarity: for
// every subtask whose latency is strictly inside its bounds, the residual of
// Equation 7 normalized by the price scale. Near the optimum these vanish;
// tests use this to certify optimality beyond utility stabilization. It
// allocates a fresh slice per call — hot paths (obs sampling) use
// KKTResidualsInto with a reused buffer instead.
func (e *Engine) KKTResiduals() []float64 {
	return e.KKTResidualsInto(nil)
}

// KKTResidualsInto appends the interior-subtask stationarity residuals to
// dst[:0] and returns the extended slice, reusing dst's capacity so repeated
// calls with the returned buffer are allocation-free once it has grown to
// the interior-subtask count.
func (e *Engine) KKTResidualsInto(dst []float64) []float64 {
	dst = dst[:0]
	for ti := range e.p.Tasks {
		slope := e.p.Tasks[ti].Curve.Slope(e.controllers[ti].aggregate())
		for si := range e.controllers[ti].LatMs {
			if r, ok := e.kktResidual(ti, si, slope); ok {
				dst = append(dst, r)
			}
		}
	}
	return dst
}
