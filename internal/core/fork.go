package core

import (
	"lla/internal/workload"
)

// Config returns the engine's resolved configuration (after WithDefaults).
// Layers above the engine — admission control, placement — read it to price
// candidates under the same weight mode and defaults the engine runs with.
func (e *Engine) Config() Config { return e.cfg }

// CurrentWorkload returns a deep copy of the workload the engine is
// currently optimizing, with every runtime mutation baked in. The compiled
// problem — not the source workload — is authoritative for resource
// availabilities (SetAvailability updates the problem in place without
// writing back), so the copy re-reads them from the problem; minimum-share
// floors are already written through to the source by SetMinShare. Admission
// control builds candidate workloads from this copy so a trial optimization
// sees exactly the world the live engine does.
func (e *Engine) CurrentWorkload() *workload.Workload {
	w := e.p.src.Clone()
	for ri := range e.p.Resources {
		w.Resources[ri].Availability = e.p.Resources[ri].Availability
	}
	return w
}

// Fork returns an independent engine warm-started from the live state: the
// fork optimizes a deep copy of the current workload with the same config,
// and its latencies, path prices, resource prices and model-error
// corrections match the original exactly, so its next Step produces the
// same iterate the original's would. The fork shares no mutable state with
// the original — trial optimizations (the admission controller's
// sufficiency gate) can ReplaceWorkload and iterate freely without
// disturbing the running system. The fork's iteration counter starts at
// zero (so trial convergence cost reads directly off its snapshots) and its
// adaptive step sizers start fresh. Close the fork when done with it.
func (e *Engine) Fork() (*Engine, error) {
	next, err := NewEngine(e.CurrentWorkload(), e.cfg)
	if err != nil {
		return nil, err
	}
	for ti := range e.p.Tasks {
		copy(next.controllers[ti].LatMs, e.controllers[ti].LatMs)
		copy(next.controllers[ti].Lambda, e.controllers[ti].Lambda)
		for si := range e.p.Tasks[ti].Share {
			// ErrMs lives only in the compiled share functions (SetErrorMs
			// does not touch the source workload), so carry it explicitly.
			next.p.Tasks[ti].Share[si].ErrMs = e.p.Tasks[ti].Share[si].ErrMs
			next.p.refreshBounds(ti, si)
		}
	}
	for ri := range e.agents {
		next.agents[ri].Mu = e.agents[ri].Mu
	}
	next.refreshResourceState()
	return next, nil
}
