package core

import (
	"runtime"
	"testing"

	"lla/internal/workload"
)

// engines returns a serial and a parallel engine over the same workload
// constructor.
func engines(t *testing.T, mk func() *workload.Workload, workers int) (*Engine, *Engine) {
	t.Helper()
	serial, err := NewEngine(mk(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(mk(), Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { serial.Close(); par.Close() })
	return serial, par
}

// requireBitwiseEqual compares the full optimizer state of two engines.
func requireBitwiseEqual(t *testing.T, iter int, serial, par *Engine) {
	t.Helper()
	for ti := range serial.controllers {
		sc, pc := serial.controllers[ti], par.controllers[ti]
		for si := range sc.LatMs {
			if sc.LatMs[si] != pc.LatMs[si] {
				t.Fatalf("iter %d: task %d subtask %d latency diverged: serial %x parallel %x",
					iter, ti, si, sc.LatMs[si], pc.LatMs[si])
			}
		}
		for pi := range sc.Lambda {
			if sc.Lambda[pi] != pc.Lambda[pi] {
				t.Fatalf("iter %d: task %d path %d lambda diverged: serial %x parallel %x",
					iter, ti, pi, sc.Lambda[pi], pc.Lambda[pi])
			}
		}
	}
	for ri := range serial.agents {
		if serial.agents[ri].Mu != par.agents[ri].Mu {
			t.Fatalf("iter %d: resource %d mu diverged: serial %x parallel %x",
				iter, ri, serial.agents[ri].Mu, par.agents[ri].Mu)
		}
	}
	su, pu := serial.Probe(), par.Probe()
	if su.Utility != pu.Utility {
		t.Fatalf("iter %d: utility diverged: serial %x parallel %x", iter, su.Utility, pu.Utility)
	}
}

// TestParallelMatchesSerialBitwise locks in the engine's central invariant:
// the sharded controller phase plus the fixed-order reduction produce a
// trajectory bitwise-identical to the serial engine, every iteration.
func TestParallelMatchesSerialBitwise(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *workload.Workload
	}{
		{"base", workload.Base},
		{"replicated-x16", func() *workload.Workload {
			w, err := workload.Replicate(workload.Base(), 16, 2)
			if err != nil {
				t.Fatal(err)
			}
			return w
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, par := engines(t, tc.mk, 4)
			if got := par.Workers(); got < 2 {
				t.Fatalf("parallel engine resolved to %d shards, want >= 2", got)
			}
			for i := 0; i < 500; i++ {
				serial.Step()
				par.Step()
				requireBitwiseEqual(t, i, serial, par)
			}
			ss, ps := serial.Snapshot(), par.Snapshot()
			if ss.Utility != ps.Utility || ss.MaxResourceViolation != ps.MaxResourceViolation {
				t.Fatalf("final snapshots diverged: serial %+v parallel %+v", ss, ps)
			}
		})
	}
}

// TestDynamicChangesBetweenParallelSteps interleaves every runtime mutation
// (availability, min share, model error) with parallel Steps and checks the
// trajectory still matches a serial engine driven identically. Run under
// -race this also proves the pool's happens-before edges publish the
// mutations to the shard workers.
func TestDynamicChangesBetweenParallelSteps(t *testing.T) {
	mk := func() *workload.Workload {
		w, err := workload.Replicate(workload.Base(), 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	serial, par := engines(t, mk, 4)
	mutate := func(e *Engine, round int) {
		var err error
		switch round % 3 {
		case 0:
			err = e.SetAvailability("r0", 0.7+0.05*float64(round%4))
		case 1:
			err = e.SetMinShare("task1", "T12", 0.02+0.01*float64(round%3))
		case 2:
			err = e.SetErrorMs("task2", "T21", 0.1*float64(round%5))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 12; round++ {
		mutate(serial, round)
		mutate(par, round)
		for i := 0; i < 40; i++ {
			serial.Step()
			par.Step()
		}
		requireBitwiseEqual(t, round*40, serial, par)
	}
}

// TestStepDoesNotAllocate proves the steady-state hot path is garbage-free
// for both the serial and the parallel engine.
func TestStepDoesNotAllocate(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w, err := workload.Replicate(workload.Base(), 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(w, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 50; i++ {
			e.Step() // warm the pool and any lazily grown stacks
		}
		if allocs := testing.AllocsPerRun(100, e.Step); allocs != 0 {
			t.Errorf("workers=%d: Step allocates %v objects per iteration, want 0", workers, allocs)
		}
	}
}

// TestProbeMatchesSnapshot checks the lightweight convergence probe agrees
// bitwise with the full snapshot's stopping-rule fields.
func TestProbeMatchesSnapshot(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 100; i++ {
		e.Step()
		pr, snap := e.Probe(), e.Snapshot()
		if pr.Utility != snap.Utility ||
			pr.MaxResourceViolation != snap.MaxResourceViolation ||
			pr.MaxPathViolationFrac != snap.MaxPathViolationFrac ||
			pr.Iteration != snap.Iteration {
			t.Fatalf("iter %d: probe %+v disagrees with snapshot %v", i, pr, snap)
		}
	}
}

// TestSnapshotIntoReuses checks the write-into snapshot matches the
// allocating one and stops allocating once its buffers are sized.
func TestSnapshotIntoReuses(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(50, nil)
	want := e.Snapshot()
	var got Snapshot
	e.SnapshotInto(&got)
	if got.Utility != want.Utility || got.Iteration != want.Iteration {
		t.Fatalf("SnapshotInto = %v, want %v", got, want)
	}
	for ti := range want.LatMs {
		for si := range want.LatMs[ti] {
			if got.LatMs[ti][si] != want.LatMs[ti][si] || got.Shares[ti][si] != want.Shares[ti][si] {
				t.Fatalf("SnapshotInto row %d differs from Snapshot", ti)
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { e.SnapshotInto(&got) }); allocs != 0 {
		t.Errorf("warm SnapshotInto allocates %v objects, want 0", allocs)
	}
}

// TestEngineCloseIsReusable checks Close retires the pool without bricking
// the engine: the next parallel Step respawns workers and the trajectory is
// unaffected.
func TestEngineCloseIsReusable(t *testing.T) {
	serial, par := engines(t, workload.Base, 3)
	for i := 0; i < 100; i++ {
		serial.Step()
		par.Step()
		if i == 50 {
			par.Close()
			par.Close() // idempotent
		}
	}
	requireBitwiseEqual(t, 100, serial, par)
}

// TestReplaceWorkloadSwapsPool checks a workload replacement retires the
// old pool and the replacement engine still matches a serial reference.
func TestReplaceWorkloadSwapsPool(t *testing.T) {
	before := runtime.NumGoroutine()
	serial, par := engines(t, workload.Base, 4)
	grown, err := workload.Replicate(workload.Base(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		serial.Step()
		par.Step()
	}
	if err := serial.ReplaceWorkload(grown); err != nil {
		t.Fatal(err)
	}
	if err := par.ReplaceWorkload(grown); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		serial.Step()
		par.Step()
	}
	requireBitwiseEqual(t, 200, serial, par)
	serial.Close()
	par.Close()
	// Pools park one goroutine per extra shard; after Close everything
	// should drain back to (roughly) the starting count.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d running, started with %d", n, before)
	}
}

// TestWorkerResolution pins the Config.Workers contract: 0 means
// GOMAXPROCS, clamped to the task count; explicit counts are honored.
func TestWorkerResolution(t *testing.T) {
	base := workload.Base() // 3 tasks
	cases := []struct {
		workers int
		want    int
	}{
		{1, 1},
		{2, 2},
		{64, 3},
		{0, min(runtime.GOMAXPROCS(0), 3)},
		{-5, min(runtime.GOMAXPROCS(0), 3)},
	}
	for _, tc := range cases {
		e, err := NewEngine(base, Config{Workers: tc.workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Workers(); got != tc.want {
			t.Errorf("Workers=%d resolved to %d shards, want %d", tc.workers, got, tc.want)
		}
		e.Close()
	}
}
