package core

import (
	"lla/internal/price"
)

// ResourceAgent is the per-resource price computer of Section 4.3: it
// receives the latencies (equivalently, shares) of the subtasks scheduled on
// its resource and updates the resource price mu by gradient projection
// (Equation 8). Like Controller it is runtime-agnostic: the synchronous
// engine and the distributed runtime both drive it.
type ResourceAgent struct {
	p  *Problem
	ri int

	// Mu is the current resource price (Lagrange multiplier of the capacity
	// constraint).
	Mu float64
	// grad is the reference gradient-projection coordinate update: the step
	// sizer (ramping under congestion when the adaptive policy is
	// configured), the base-step floor, and the price-scaled step floor of
	// adaptive mode — see price.GradStep for the arithmetic.
	grad price.GradStep
}

// NewResourceAgent builds the agent for resource ri with an initial price.
// A positive initial price lets the first latency allocation see capacity
// pressure immediately; the paper's iterations behave equivalently after a
// few steps regardless of the start.
func NewResourceAgent(p *Problem, ri int, step price.StepSizer, baseGamma float64, priceScaled bool, initialMu float64) *ResourceAgent {
	return &ResourceAgent{p: p, ri: ri, Mu: initialMu,
		grad: price.GradStep{Step: step, BaseGamma: baseGamma, PriceScaled: priceScaled}}
}

// ShareSum computes the total share demanded on this resource given every
// controller's current latencies. latOf returns controller latencies by task
// index.
func (a *ResourceAgent) ShareSum(latOf func(ti int) []float64) float64 {
	r := &a.p.Resources[a.ri]
	sum := 0.0
	for _, sub := range r.Subs {
		ti, si := sub[0], sub[1]
		sum += a.p.Tasks[ti].Share[si].Share(latOf(ti)[si])
	}
	return sum
}

// ShareSumFrom reduces the total demand on this resource from pre-evaluated
// per-subtask share values (indexed [task][subtask]). The summation order is
// the compiled subtask order — identical to ShareSum's — so the reduction is
// bitwise-deterministic no matter how many workers produced the values.
func (a *ResourceAgent) ShareSumFrom(shares [][]float64) float64 {
	r := &a.p.Resources[a.ri]
	sum := 0.0
	for _, sub := range r.Subs {
		sum += shares[sub[0]][sub[1]]
	}
	return sum
}

// CongestionMargin is the relative violation below which a constraint is
// treated as merely saturated rather than congested for step-size ramping.
// At LLA's optimum resources sit exactly at capacity, so without a margin
// the adaptive heuristic's congested flag would flicker forever and the
// alternating step sizes would sustain a limit cycle around the optimum.
// Price *updates* always use the exact gradients; the margin gates only the
// ramping.
const CongestionMargin = 0.01

// Congested reports whether the given demand violates the capacity
// constraint beyond the ramping margin.
func (a *ResourceAgent) Congested(shareSum float64) bool {
	return shareSum > a.p.Resources[a.ri].Availability*(1+CongestionMargin)
}

// UpdatePrice performs the gradient-projection step (Equation 8) for the
// given demand and feeds the step sizer with the congestion state.
//
// The effective step is clamped to the local stability bound: with
// share = (c+l)/lat and lat = sqrt(mu·k/denom), demand scales as 1/sqrt(mu),
// so the price iteration contracts only for gamma < 4·mu/B. Clamping at
// 2·mu/B (safety factor 2, floored at the base step so the price can rise
// from zero) lets the paper's multiplicative ramp run while the price is
// large without destabilizing it near the equilibrium. The arithmetic lives
// in price.GradStep — the reference coordinate update the accelerated
// solvers embed as their safeguard.
//
// It reports whether the call moved any agent state — the price or the step
// sizer's size, compared bitwise. A false return means the update was a
// fixed point: replaying it with the same demand would change nothing,
// which is what lets the sparse engine path mark the resource clean (the
// sizer check relies on Gamma() being the sizer's entire observable state,
// true of both price.Fixed and price.Adaptive).
func (a *ResourceAgent) UpdatePrice(shareSum float64) bool {
	next, changed := a.grad.Update(a.Mu, a.p.Resources[a.ri].Availability, shareSum, a.Congested(shareSum))
	a.Mu = next
	return changed
}

// StepGamma returns the step sizer's current step size — the state of the
// Section 5.2 adaptive controller, recorded per iteration by the
// observability layer.
func (a *ResourceAgent) StepGamma() float64 { return a.grad.Step.Gamma() }

// ResetPrice restores the initial price and step size; used after structural
// workload changes.
func (a *ResourceAgent) ResetPrice(initialMu float64) {
	a.Mu = initialMu
	a.grad.Reset()
}
