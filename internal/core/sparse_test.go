package core

import (
	"testing"

	"lla/internal/workload"
)

// sparseCases are the workloads the determinism property tests sweep: the
// paper's base workload (which sustains a limit cycle at its zero-slack
// optimum — the hardest case for skip logic because controllers keep waking
// up), the Fig 6-scale replication (which reaches a global bitwise fixed
// point), and a wider replication.
func sparseCases(t *testing.T) []struct {
	name  string
	iters int
	mk    func() *workload.Workload
} {
	t.Helper()
	rep := func(factor int, critScale float64) func() *workload.Workload {
		return func() *workload.Workload {
			w, err := workload.Replicate(workload.Base(), factor, critScale)
			if err != nil {
				t.Fatal(err)
			}
			return w
		}
	}
	return []struct {
		name  string
		iters int
		mk    func() *workload.Workload
	}{
		{"base", 500, workload.Base},
		{"fig6-x4", 400, rep(4, 8)},
		{"replicated-x16", 300, rep(16, 2)},
	}
}

// newSparsePair builds a dense and a sparse engine over the same workload
// and worker count.
func newSparsePair(t *testing.T, mk func() *workload.Workload, workers int) (dense, sparse *Engine) {
	t.Helper()
	dense, err := NewEngine(mk(), Config{Workers: workers, Sparse: SparseOff})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err = NewEngine(mk(), Config{Workers: workers, Sparse: SparseOn})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dense.Close(); sparse.Close() })
	return dense, sparse
}

// requireSnapshotsBitwiseEqual compares two engines' full snapshots — every
// latency, share, price, sum and diagnostic — with exact float equality.
func requireSnapshotsBitwiseEqual(t *testing.T, iter int, a, b *Snapshot) {
	t.Helper()
	if a.Iteration != b.Iteration || a.Utility != b.Utility ||
		a.MaxResourceViolation != b.MaxResourceViolation ||
		a.MaxPathViolationFrac != b.MaxPathViolationFrac {
		t.Fatalf("iter %d: scalar diagnostics diverged:\n dense  %+v\n sparse %+v", iter, a, b)
	}
	for ti := range a.LatMs {
		if a.TaskUtility[ti] != b.TaskUtility[ti] ||
			a.CriticalPathMs[ti] != b.CriticalPathMs[ti] {
			t.Fatalf("iter %d: task %d diagnostics diverged", iter, ti)
		}
		for si := range a.LatMs[ti] {
			if a.LatMs[ti][si] != b.LatMs[ti][si] {
				t.Fatalf("iter %d: task %d subtask %d latency diverged: dense %x sparse %x",
					iter, ti, si, a.LatMs[ti][si], b.LatMs[ti][si])
			}
			if a.Shares[ti][si] != b.Shares[ti][si] {
				t.Fatalf("iter %d: task %d subtask %d share diverged: dense %x sparse %x",
					iter, ti, si, a.Shares[ti][si], b.Shares[ti][si])
			}
		}
	}
	for ri := range a.Mu {
		if a.Mu[ri] != b.Mu[ri] {
			t.Fatalf("iter %d: resource %d mu diverged: dense %x sparse %x",
				iter, ri, a.Mu[ri], b.Mu[ri])
		}
		if a.ShareSums[ri] != b.ShareSums[ri] {
			t.Fatalf("iter %d: resource %d share sum diverged: dense %x sparse %x",
				iter, ri, a.ShareSums[ri], b.ShareSums[ri])
		}
	}
}

// TestSparseMatchesDenseBitwise is the tentpole's contract: the active-set
// path produces byte-identical snapshots to the dense path at every single
// iteration, for every workload and worker count. Skipping is only legal
// when re-execution would provably reproduce the same bits, so any
// divergence — even in the last ulp, even transiently — is a bug.
func TestSparseMatchesDenseBitwise(t *testing.T) {
	for _, tc := range sparseCases(t) {
		for _, workers := range []int{1, 4} {
			t.Run(tc.name, func(t *testing.T) {
				dense, sparse := newSparsePair(t, tc.mk, workers)
				var ds, ss Snapshot
				for i := 0; i < tc.iters; i++ {
					dense.Step()
					sparse.Step()
					dense.SnapshotInto(&ds)
					sparse.SnapshotInto(&ss)
					requireSnapshotsBitwiseEqual(t, i, &ds, &ss)
				}
				if st := sparse.SparseStats(); st.Iterations != uint64(tc.iters) {
					t.Errorf("sparse stats counted %d iterations, want %d", st.Iterations, tc.iters)
				}
			})
		}
	}
}

// TestSparseSkipsAtSteadyState checks the optimization actually engages: on
// the Fig 6-scale workload the trajectory freezes bitwise, after which every
// controller solve and every resource reprice must be skipped.
func TestSparseSkipsAtSteadyState(t *testing.T) {
	w, err := workload.Replicate(workload.Base(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(w, Config{Workers: 1, Sparse: SparseOn})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(600, nil) // well past the empirical freeze (~iter 115)

	e.ResetSparseStats()
	const probe = 100
	e.Run(probe, nil)
	st := e.SparseStats()
	nt, nr := uint64(len(e.controllers)), uint64(len(e.agents))
	if st.SkippedSolves != probe*nt {
		t.Errorf("frozen engine skipped %d/%d controller solves", st.SkippedSolves, probe*nt)
	}
	if st.CleanResources != probe*nr {
		t.Errorf("frozen engine marked %d/%d resource updates clean", st.CleanResources, probe*nr)
	}
}

// TestSparseMutationsInvalidate interleaves every runtime mutation — and a
// mid-run workload replacement — with Steps, checking the sparse engine
// tracks the dense one bitwise throughout. A missing invalidation would show
// up as the sparse engine coasting on stale cached state after a mutation.
func TestSparseMutationsInvalidate(t *testing.T) {
	mk := func() *workload.Workload {
		w, err := workload.Replicate(workload.Base(), 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	for _, workers := range []int{1, 4} {
		dense, sparse := newSparsePair(t, mk, workers)
		mutate := func(e *Engine, round int) {
			var err error
			switch round % 3 {
			case 0:
				err = e.SetAvailability("r0", 0.7+0.05*float64(round%4))
			case 1:
				err = e.SetMinShare("task1", "T12", 0.02+0.01*float64(round%3))
			case 2:
				err = e.SetErrorMs("task2", "T21", 0.1*float64(round%5))
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		var ds, ss Snapshot
		for round := 0; round < 12; round++ {
			// Let both engines freeze before mutating so the invalidation,
			// not a still-hot active set, is what forces the re-solve.
			for i := 0; i < 120; i++ {
				dense.Step()
				sparse.Step()
			}
			mutate(dense, round)
			mutate(sparse, round)
			for i := 0; i < 40; i++ {
				dense.Step()
				sparse.Step()
				dense.SnapshotInto(&ds)
				sparse.SnapshotInto(&ss)
				requireSnapshotsBitwiseEqual(t, round*160+i, &ds, &ss)
			}
		}
		grown, err := workload.Replicate(workload.Base(), 12, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := dense.ReplaceWorkload(grown); err != nil {
			t.Fatal(err)
		}
		if err := sparse.ReplaceWorkload(grown); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			dense.Step()
			sparse.Step()
			dense.SnapshotInto(&ds)
			sparse.SnapshotInto(&ss)
			requireSnapshotsBitwiseEqual(t, 2000+i, &ds, &ss)
		}
	}
}

// TestSparseForkStartsInvalidated checks a fork of a frozen sparse engine
// re-solves from its warm start instead of inheriting the parent's active
// set, and still matches a dense fork bitwise.
func TestSparseForkStartsInvalidated(t *testing.T) {
	dense, sparse := newSparsePair(t, workload.Base, 1)
	for i := 0; i < 300; i++ {
		dense.Step()
		sparse.Step()
	}
	df, err := dense.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	sf, err := sparse.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	var ds, ss Snapshot
	for i := 0; i < 100; i++ {
		df.Step()
		sf.Step()
		df.SnapshotInto(&ds)
		sf.SnapshotInto(&ss)
		requireSnapshotsBitwiseEqual(t, i, &ds, &ss)
	}
}

// TestSparseConfigDefaults pins the toggle semantics: the zero value
// resolves to on, explicit off is honored, and WithDefaults is idempotent.
func TestSparseConfigDefaults(t *testing.T) {
	if got := (Config{}).WithDefaults().Sparse; got != SparseOn {
		t.Errorf("zero-value Sparse resolved to %v, want SparseOn", got)
	}
	if got := (Config{Sparse: SparseOff}).WithDefaults().Sparse; got != SparseOff {
		t.Errorf("explicit SparseOff resolved to %v, want SparseOff", got)
	}
	on, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	if !on.SparseEnabled() {
		t.Error("default-config engine should run the sparse path")
	}
	off, err := NewEngine(workload.Base(), Config{Sparse: SparseOff})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.SparseEnabled() {
		t.Error("SparseOff engine should run the dense path")
	}
	off.Run(50, nil)
	if st := off.SparseStats(); st != (SparseStats{}) {
		t.Errorf("dense engine accumulated sparse stats: %+v", st)
	}
	for mode, want := range map[SparseMode]string{SparseAuto: "auto", SparseOn: "on", SparseOff: "off"} {
		if got := mode.String(); got != want {
			t.Errorf("SparseMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
}

// TestIncidenceIndex pins the CSR builder on the base workload: every
// task→resource edge has its mirror, rows are deduplicated, and offsets are
// monotone.
func TestIncidenceIndex(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	inc := e.inc
	p := e.Problem()
	for ti := range p.Tasks {
		row := inc.taskRes[inc.taskResOff[ti]:inc.taskResOff[ti+1]]
		seen := map[int32]bool{}
		for _, ri := range row {
			if seen[ri] {
				t.Fatalf("task %d lists resource %d twice", ti, ri)
			}
			seen[ri] = true
			// Mirror edge: resource ri must list task ti.
			found := false
			for _, tj := range inc.resTask[inc.resTaskOff[ri]:inc.resTaskOff[ri+1]] {
				if int(tj) == ti {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("resource %d missing mirror edge for task %d", ri, ti)
			}
		}
		// Every compiled subtask's resource must appear in the row.
		for _, ri := range p.Tasks[ti].Res {
			if !seen[int32(ri)] {
				t.Fatalf("task %d row missing resource %d", ti, ri)
			}
		}
	}
}
