package core

import "sync"

// workerPool holds the engine's persistent shard workers. Spawning
// goroutines per Step would heap-allocate a closure per worker per
// iteration; instead each worker parks on its own buffered channel and is
// woken by sending the engine pointer, which allocates nothing. Workers
// reference only the pool — never an Engine — so a parked pool does not pin
// an abandoned engine in memory and the engine's finalizer can release the
// goroutines of callers that forget Close.
type workerPool struct {
	// feed[w] wakes worker w; worker w always runs shard w+1 (shard 0 runs
	// on the dispatching goroutine). Closing the channel retires the worker.
	feed []chan *Engine
	wg   sync.WaitGroup
	once sync.Once
}

// newWorkerPool starts extra parked workers (one per shard beyond shard 0).
func newWorkerPool(extra int) *workerPool {
	p := &workerPool{feed: make([]chan *Engine, extra)}
	for w := range p.feed {
		ch := make(chan *Engine, 1)
		p.feed[w] = ch
		shard := w + 1
		go func() {
			for e := range ch {
				e.runShard(shard)
				p.wg.Done()
			}
		}()
	}
	return p
}

// dispatch runs one parallel controller phase: it wakes every worker, runs
// shard 0 on the calling goroutine, and returns once all shards finish. The
// channel sends order the caller's writes (mu, congested) before the shard
// reads, and wg.Wait orders the shards' writes (LatMs, shares) before the
// caller's reduction.
func (p *workerPool) dispatch(e *Engine) {
	p.wg.Add(len(p.feed))
	for _, ch := range p.feed {
		ch <- e
	}
	e.runShard(0)
	p.wg.Wait()
}

// close retires the workers. Idempotent; safe on a pool mid-park.
func (p *workerPool) close() {
	p.once.Do(func() {
		for _, ch := range p.feed {
			close(ch)
		}
	})
}
