package core

import (
	"fmt"

	"lla/internal/price"
)

// Engine checkpointing (DESIGN.md §13). EngineState is the complete
// serializable dual state of a running engine: everything that influences
// the trajectory of future Steps. Restoring it into a freshly built engine
// over the same compiled problem and config resumes the run bitwise — every
// subsequent Snapshot is byte-identical to the uninterrupted run's, under
// every Workers count and every price solver.
//
// What is deliberately NOT captured, because Step reconstructs it from the
// captured state before reading it: the per-Step price snapshot e.mu
// (re-read from the agents at the top of every Step), the controllers'
// latPrev change-detection scratch (overwritten on entry to
// AllocateLatencies), the Dynamics avail/curvature scratch (refilled each
// resource phase), and the shares scratch rows — each row always equals
// Share(current LatMs) (rows are rewritten whenever latencies move), so
// RestoreState recomputes them from the restored latencies bit-for-bit.

// EngineState is a deep-copied checkpoint of an Engine's optimizer state.
// Slices indexed per task hold one inner slice per compiled task, in
// compiled order; per-resource slices follow Problem.Resources order; the
// fingerprint slices follow the CSR incidence layout, which is rebuilt
// deterministically from the compiled problem.
type EngineState struct {
	// Iteration is the completed-iteration count.
	Iteration int

	// LatMs, Lambda and PathGamma are each controller's latency assignment,
	// path prices, and path step-sizer sizes.
	LatMs     [][]float64
	Lambda    [][]float64
	PathGamma [][]float64

	// ErrMs carries each subtask's model-error correction: SetErrorMs writes
	// only the compiled problem (never the source workload), so an engine
	// rebuilt from the workload would silently lose it without this.
	ErrMs [][]float64

	// Mu and AgentGamma are each resource agent's price and step-sizer size;
	// ShareSums/Congested the cached previous-iteration resource state.
	Mu         []float64
	AgentGamma []float64
	ShareSums  []float64
	Congested  []bool

	// Sparse active-set state: the controller input fingerprints (incidence
	// layout) and the per-controller/per-agent fixed-point flags. Restoring
	// them verbatim — rather than invalidating — is what keeps the first
	// post-restore Step identical to the uninterrupted one: the skip contract
	// is exact, so a restored bit-identical state satisfies it identically.
	FpMu        []float64
	FpCong      []bool
	CtlSolved   []bool
	CtlStable   []bool
	LatChanged  []bool
	AgentStable []bool
	SumValid    []bool
	Sparse      SparseStats

	// Dyn is the accelerated price solver's internal state (nil when the
	// reference gradient runs on the agents' built-in path); DynReset marks a
	// Dynamics that was present but not capturable, which restores under the
	// Reset-on-restore contract instead. DynDelta is the last round's largest
	// price move.
	Dyn      *price.DynamicsState
	DynReset bool
	DynDelta float64
}

// CaptureState deep-copies the engine's full optimizer state. Call it
// between Steps (the same discipline as the Set* mutators); the engine is
// not touched.
func (e *Engine) CaptureState() EngineState {
	st := EngineState{
		Iteration:   e.iter,
		LatMs:       make([][]float64, len(e.controllers)),
		Lambda:      make([][]float64, len(e.controllers)),
		PathGamma:   make([][]float64, len(e.controllers)),
		ErrMs:       make([][]float64, len(e.controllers)),
		Mu:          make([]float64, len(e.agents)),
		AgentGamma:  make([]float64, len(e.agents)),
		ShareSums:   append([]float64(nil), e.shareSums...),
		Congested:   append([]bool(nil), e.congested...),
		FpMu:        append([]float64(nil), e.fpMu...),
		FpCong:      append([]bool(nil), e.fpCong...),
		CtlSolved:   append([]bool(nil), e.ctlSolved...),
		CtlStable:   append([]bool(nil), e.ctlStable...),
		LatChanged:  append([]bool(nil), e.latChanged...),
		AgentStable: append([]bool(nil), e.agentStable...),
		SumValid:    append([]bool(nil), e.sumValid...),
		Sparse:      e.sstats,
		DynDelta:    e.dynDelta,
	}
	for ti, c := range e.controllers {
		st.LatMs[ti] = append([]float64(nil), c.LatMs...)
		st.Lambda[ti] = append([]float64(nil), c.Lambda...)
		st.PathGamma[ti] = make([]float64, len(c.pathStep))
		for pi := range c.pathStep {
			st.PathGamma[ti][pi] = c.pathStep[pi].Gamma()
		}
		st.ErrMs[ti] = make([]float64, len(e.p.Tasks[ti].Share))
		for si := range e.p.Tasks[ti].Share {
			st.ErrMs[ti][si] = e.p.Tasks[ti].Share[si].ErrMs
		}
	}
	for ri, a := range e.agents {
		st.Mu[ri] = a.Mu
		st.AgentGamma[ri] = a.grad.Step.Gamma()
	}
	if e.dyn != nil {
		if ds, ok := price.CaptureDynamics(e.dyn); ok {
			st.Dyn = &ds
		} else {
			st.DynReset = true
		}
	}
	return st
}

// restoreSizer forces one step sizer to a captured gamma; Fixed sizers (no
// setter) accept only their own value.
func restoreSizer(s price.StepSizer, gamma float64, what string) error {
	if gs, ok := s.(price.GammaSetter); ok {
		gs.SetGamma(gamma)
		return nil
	}
	if s.Gamma() != gamma {
		return fmt.Errorf("core: %s sizer %T cannot restore gamma %v (has %v and no SetGamma)", what, s, gamma, s.Gamma())
	}
	return nil
}

// RestoreState loads a captured state into this engine. The engine must be
// freshly built over the same workload structure and config the checkpoint
// was taken under (the recover package rebuilds it from the checkpoint's
// embedded workload); any shape or solver mismatch is an error and leaves no
// guarantee about the engine's state — rebuild before retrying. Workers and
// Sparse may differ freely: both are bitwise-neutral.
func (e *Engine) RestoreState(st EngineState) error {
	if len(st.LatMs) != len(e.controllers) || len(st.Lambda) != len(e.controllers) ||
		len(st.PathGamma) != len(e.controllers) || len(st.ErrMs) != len(e.controllers) {
		return fmt.Errorf("core: checkpoint has %d tasks, engine has %d", len(st.LatMs), len(e.controllers))
	}
	if len(st.Mu) != len(e.agents) || len(st.AgentGamma) != len(e.agents) ||
		len(st.ShareSums) != len(e.agents) || len(st.Congested) != len(e.agents) ||
		len(st.AgentStable) != len(e.agents) || len(st.SumValid) != len(e.agents) {
		return fmt.Errorf("core: checkpoint has %d resources, engine has %d", len(st.Mu), len(e.agents))
	}
	if len(st.FpMu) != len(e.fpMu) || len(st.FpCong) != len(e.fpCong) {
		return fmt.Errorf("core: checkpoint fingerprint layout (%d slots) does not match engine (%d)", len(st.FpMu), len(e.fpMu))
	}
	if len(st.CtlSolved) != len(e.controllers) || len(st.CtlStable) != len(e.controllers) ||
		len(st.LatChanged) != len(e.controllers) {
		return fmt.Errorf("core: checkpoint controller flags sized %d, engine has %d tasks", len(st.CtlSolved), len(e.controllers))
	}
	for ti, c := range e.controllers {
		if len(st.LatMs[ti]) != len(c.LatMs) || len(st.ErrMs[ti]) != len(e.p.Tasks[ti].Share) {
			return fmt.Errorf("core: checkpoint task %d has %d subtasks, engine has %d", ti, len(st.LatMs[ti]), len(c.LatMs))
		}
		if len(st.Lambda[ti]) != len(c.Lambda) || len(st.PathGamma[ti]) != len(c.pathStep) {
			return fmt.Errorf("core: checkpoint task %d has %d paths, engine has %d", ti, len(st.Lambda[ti]), len(c.Lambda))
		}
	}
	switch {
	case st.Dyn != nil && e.dyn == nil:
		return fmt.Errorf("core: checkpoint holds %s solver state, engine runs the gradient agent path", st.Dyn.Solver)
	case st.Dyn == nil && !st.DynReset && e.dyn != nil:
		return fmt.Errorf("core: checkpoint was taken on the gradient agent path, engine runs %s", e.dyn.Solver())
	}

	for ti, c := range e.controllers {
		for si := range e.p.Tasks[ti].Share {
			// ErrMs first: refreshBounds reads it, and the restored latencies
			// below must not be re-clamped against stale bounds.
			e.p.Tasks[ti].Share[si].ErrMs = st.ErrMs[ti][si]
			e.p.refreshBounds(ti, si)
		}
		copy(c.LatMs, st.LatMs[ti])
		copy(c.Lambda, st.Lambda[ti])
		for pi := range c.pathStep {
			if err := restoreSizer(c.pathStep[pi], st.PathGamma[ti][pi], fmt.Sprintf("task %d path %d", ti, pi)); err != nil {
				return err
			}
		}
		// The shares scratch row must hold Share(restored LatMs): a restored
		// clean resource reuses it verbatim in the next serial reduction.
		c.SharesInto(e.shares[ti])
	}
	for ri, a := range e.agents {
		a.Mu = st.Mu[ri]
		if err := restoreSizer(a.grad.Step, st.AgentGamma[ri], fmt.Sprintf("resource %d", ri)); err != nil {
			return err
		}
	}
	copy(e.shareSums, st.ShareSums)
	copy(e.congested, st.Congested)
	copy(e.fpMu, st.FpMu)
	copy(e.fpCong, st.FpCong)
	copy(e.ctlSolved, st.CtlSolved)
	copy(e.ctlStable, st.CtlStable)
	copy(e.latChanged, st.LatChanged)
	copy(e.agentStable, st.AgentStable)
	copy(e.sumValid, st.SumValid)
	e.sstats = st.Sparse
	e.dynDelta = st.DynDelta
	e.iter = st.Iteration

	if st.Dyn != nil {
		if err := price.RestoreDynamics(e.dyn, *st.Dyn); err != nil {
			return err
		}
	} else if st.DynReset && e.dyn != nil {
		// Reset-on-restore contract: the solver's history is gone, so it must
		// restart from cleared state (NewEngine already Reset it; do it again
		// in case the engine has stepped).
		e.dyn.Reset(len(e.agents))
	}
	return nil
}
