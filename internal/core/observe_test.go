package core

import (
	"runtime"
	"sync"
	"testing"

	"lla/internal/obs"
	"lla/internal/workload"
)

// Alloc regression for the observability hook: with no observer attached,
// the steady-state Step must stay allocation-free — the hot path pays one
// nil-check and nothing else. Guards the PR 1 zero-allocation invariant on
// both the serial and the sharded iteration, for both iteration paths.
func TestStepZeroAllocsNilObserver(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, mode := range []SparseMode{SparseOn, SparseOff} {
			e, err := NewEngine(workload.Base(), Config{Workers: workers, Sparse: mode})
			if err != nil {
				t.Fatal(err)
			}
			e.Run(50, nil) // warm up: scratch buffers reach steady state
			allocs := testing.AllocsPerRun(200, func() { e.Step() })
			if allocs != 0 {
				t.Errorf("workers=%d sparse=%v: Step allocated %.1f/op with nil observer, want 0",
					workers, mode, allocs)
			}
			e.Close()
		}
	}
}

// With an observer attached the bound still holds: the KKT residual vector
// goes through the reused KKTResidualsInto scratch and the ring recorder's
// Commit deep-copies into pre-grown slots, so once warm the observed Step
// performs no heap allocation either.
func TestStepZeroAllocsWithObserver(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e, err := NewEngine(workload.Base(), Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		o := &obs.Observer{Recorder: obs.NewRing(8), Metrics: obs.NewRegistry()}
		e.Observe(o)
		e.Run(50, nil) // warm up: ring slots and the residual scratch grow once
		allocs := testing.AllocsPerRun(200, func() { e.Step() })
		if allocs != 0 {
			t.Errorf("workers=%d: observed Step allocated %.1f/op, want 0", workers, allocs)
		}
		e.Close()
	}
}

// Attaching and detaching an observer mid-run must not disturb the
// trajectory: observation is read-only.
func TestObserveIsReadOnly(t *testing.T) {
	plain, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	observed, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer observed.Close()
	o := &obs.Observer{Recorder: obs.NewRing(16), Metrics: obs.NewRegistry(), Trace: &obs.Memory{}}
	observed.Observe(o)

	plain.Run(60, nil)
	observed.Run(30, nil)
	observed.Observe(nil)
	observed.Run(15, nil)
	observed.Observe(o)
	observed.Run(15, nil)

	a, b := plain.Snapshot(), observed.Snapshot()
	if a.Utility != b.Utility {
		t.Errorf("observation changed the trajectory: %v vs %v", a.Utility, b.Utility)
	}
	for ri := range a.Mu {
		if a.Mu[ri] != b.Mu[ri] {
			t.Errorf("mu[%d]: %v vs %v", ri, a.Mu[ri], b.Mu[ri])
		}
	}
}

// The recorder contract under the race detector: the driving goroutine
// Steps a sharded engine with a Ring attached while a reader goroutine
// polls samples and renders the metrics registry concurrently.
func TestObserveRecorderConcurrentReaders(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ring := obs.NewRing(32)
	reg := obs.NewRegistry()
	o := &obs.Observer{Recorder: ring, Metrics: reg, Trace: &obs.Memory{}}
	e.Observe(o)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sink := ring.Samples()
			for i := 1; i < len(sink); i++ {
				if sink[i].Iteration <= sink[i-1].Iteration {
					t.Errorf("samples out of order: %d then %d", sink[i-1].Iteration, sink[i].Iteration)
					return
				}
			}
			reg.WritePrometheus(discard{})
		}
	}()
	for i := 0; i < 400; i++ {
		e.Step()
	}
	close(stop)
	wg.Wait()

	if ring.Total() != 400 {
		t.Errorf("ring recorded %d iterations, want 400", ring.Total())
	}
	last, ok := ring.Last()
	if !ok || last.Iteration != 400 {
		t.Errorf("last sample = %+v, ok=%v, want iteration 400", last, ok)
	}
	if last.KKTCount == 0 {
		t.Error("converging engine reported no interior subtasks in the KKT stats")
	}
	if len(last.Mu) != len(workload.Base().Resources) {
		t.Errorf("sample has %d prices, want %d", len(last.Mu), len(workload.Base().Resources))
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// WithDefaults is the single source of default-filling: the worker count it
// fills matches what the engine resolves, so every entry point that calls
// WithDefaults (engine, dist runtime, standalone nodes) agrees on the
// effective configuration.
func TestWithDefaultsFillsWorkers(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("WithDefaults Workers = %d, want GOMAXPROCS %d", cfg.Workers, runtime.GOMAXPROCS(0))
	}
	if again := cfg.WithDefaults(); again != cfg {
		t.Errorf("WithDefaults is not idempotent: %+v vs %+v", again, cfg)
	}
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	want := resolveShards(cfg.Workers, len(workload.Base().Tasks))
	if e.Workers() != want {
		t.Errorf("engine resolved %d shards, want %d from the filled default", e.Workers(), want)
	}
}

// Engine trace events: convergence emits exactly one converged event, and
// runtime mutators stamp workload_change events with the mutated entity.
func TestEngineTraceEvents(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mem := &obs.Memory{}
	e.Observe(&obs.Observer{Trace: mem})

	if _, ok := e.RunUntilConverged(20000, 1e-9, 30, 1e-3); !ok {
		t.Fatal("engine did not converge")
	}
	conv := mem.ByKind(obs.EventConverged)
	if len(conv) != 1 {
		t.Fatalf("got %d converged events, want 1", len(conv))
	}
	if conv[0].Iteration == 0 || conv[0].Value == 0 {
		t.Errorf("converged event missing iteration/utility: %+v", conv[0])
	}

	if err := e.SetAvailability("r0", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := e.SetErrorMs("task1", "T11", 0.5); err != nil {
		t.Fatal(err)
	}
	changes := mem.ByKind(obs.EventWorkloadChange)
	if len(changes) != 2 {
		t.Fatalf("got %d workload_change events, want 2", len(changes))
	}
	if changes[0].Resource == "" || changes[0].Detail != "availability" {
		t.Errorf("availability change event: %+v", changes[0])
	}
	if changes[1].Task == "" || changes[1].Detail != "err_ms" {
		t.Errorf("err_ms change event: %+v", changes[1])
	}
}
