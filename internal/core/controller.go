package core

import (
	"math"

	"lla/internal/price"
)

// Controller is the task controller of Section 4.1: it owns one task's path
// prices and latencies, and — given the current resource prices — performs
// the latency-allocation step of Section 4.2. Controllers are deliberately
// self-contained message-driven state machines so the same code runs inside
// the synchronous Engine and the distributed runtime.
type Controller struct {
	p  *Problem
	ti int

	// LatMs[s] is the controller's current latency assignment.
	LatMs []float64
	// Lambda[pi] is the price of path pi (the Lagrange multiplier of its
	// critical-time constraint).
	Lambda []float64
	// pathStep[pi] sizes the gradient step of path pi's price.
	pathStep []price.StepSizer

	// latPrev is the AllocateLatencies change-detection scratch (the entry
	// latencies, compared bitwise against the exit latencies).
	latPrev []float64

	// maxInner bounds the fixed-point iterations used for curves with
	// non-constant slope.
	maxInner int
	// baseGamma floors the path-step stability clamp.
	baseGamma float64
	// priceScaled (adaptive mode) floors the effective path step at half
	// the local price scale, mirroring ResourceAgent's treatment.
	priceScaled bool
}

// NewController builds the controller for task ti with latencies initialized
// to a fair share split of each subtask's resource (every subtask on a
// resource starts with an equal fraction of its availability).
func NewController(p *Problem, ti int, newStep func() price.StepSizer, baseGamma float64, priceScaled bool, maxInner int) *Controller {
	pt := &p.Tasks[ti]
	n := len(pt.Res)
	c := &Controller{
		p:           p,
		ti:          ti,
		LatMs:       make([]float64, n),
		latPrev:     make([]float64, n),
		Lambda:      make([]float64, len(pt.Paths)),
		pathStep:    make([]price.StepSizer, len(pt.Paths)),
		maxInner:    maxInner,
		baseGamma:   baseGamma,
		priceScaled: priceScaled,
	}
	if c.maxInner <= 0 {
		c.maxInner = 30
	}
	for pi := range c.pathStep {
		c.pathStep[pi] = newStep()
	}
	for si := range c.LatMs {
		r := p.Resources[pt.Res[si]]
		fair := r.Availability / float64(len(r.Subs))
		c.LatMs[si] = clamp(pt.Share[si].LatencyFor(fair), pt.LatMinMs[si], pt.LatMaxMs[si])
	}
	return c
}

// UpdatePathPrices performs the path-price half of price computation
// (Equation 9) using the controller's current latencies, and feeds each
// path's step sizer. congestedRes marks resources whose capacity constraint
// is currently violated: per the paper's adaptive heuristic (Section 5.2),
// a path's step size is ramped while any resource it traverses is congested.
// The effective step is clamped to the path analog of the resource-price
// stability bound: the path latency responds to lambda as
// d(Σlat)/dλ ≈ −Σlat / (2(λ + w·|f'|)), so contraction requires
// gamma < 4(λ_p + w_min·|f'|); we clamp at twice the price scale, floored at
// the base step.
//
// It reports whether the call moved any controller state: a path price, or
// a step sizer's size. The sparse engine path skips a re-solve only when a
// previous identical-input call reported no change, so the comparison is
// bitwise and the sizer check relies on Gamma() being the sizer's entire
// observable state (true of both price.Fixed and price.Adaptive — Observe
// with an unchanged Gamma is a no-op that would absorb identically on
// replay).
func (c *Controller) UpdatePathPrices(congestedRes []bool) bool {
	pt := &c.p.Tasks[c.ti]
	slope := pt.Curve.Slope(c.aggregate())
	changed := false
	for pi, path := range pt.Paths {
		sum := 0.0
		pathCongested := false
		wMin := math.Inf(1)
		for _, s := range path {
			sum += c.LatMs[s]
			if congestedRes != nil && congestedRes[pt.Res[s]] {
				pathCongested = true
			}
			if w := pt.Weights[s]; w < wMin {
				wMin = w
			}
		}
		if sum > pt.CriticalMs*(1+CongestionMargin) {
			pathCongested = true
		}
		g0 := c.pathStep[pi].Gamma()
		c.pathStep[pi].Observe(pathCongested)
		gamma := c.pathStep[pi].Gamma()
		if gamma != g0 {
			changed = true
		}
		scale := c.Lambda[pi] + wMin*math.Abs(slope)
		if c.priceScaled && gamma < scale/2 {
			gamma = scale / 2
		}
		if cap := math.Max(c.baseGamma, 2*scale); gamma > cap {
			gamma = cap
		}
		if next := price.UpdatePath(c.Lambda[pi], gamma, sum, pt.CriticalMs); next != c.Lambda[pi] {
			c.Lambda[pi] = next
			changed = true
		}
	}
	return changed
}

// AllocateLatencies performs the latency-allocation step (Section 4.2):
// given the resource prices mu (indexed like Problem.Resources), it solves
// the stationarity condition (Equation 7)
//
//	∂U/∂lat_s − Σ_{p∋s} λ_p − μ_r · ∂share/∂lat_s = 0
//
// for every subtask. With share = (c+l)/(lat−e) this gives the closed form
//
//	lat_s = e + sqrt( μ_r (c+l) / (Λ_s − w_s · f'(L)) ),
//
// clamped to the subtask's admissible interval. For curves with
// non-constant slope f'(L) depends on the aggregate L, so the controller
// fixed-points on L (converges monotonically for concave curves; linear
// curves exit after one inner round).
//
// It reports whether any latency changed bitwise — the trigger for
// re-evaluating the task's shares and for marking its resources dirty in
// the sparse engine path.
func (c *Controller) AllocateLatencies(mu []float64) bool {
	copy(c.latPrev, c.LatMs)
	pt := &c.p.Tasks[c.ti]
	agg := c.aggregate()
	for inner := 0; inner < c.maxInner; inner++ {
		slope := pt.Curve.Slope(agg)
		for si := range c.LatMs {
			lambdaSum := 0.0
			for _, pi := range pt.PathsThrough[si] {
				lambdaSum += c.Lambda[pi]
			}
			denom := lambdaSum - pt.Weights[si]*slope
			muR := mu[pt.Res[si]]
			var lat float64
			switch {
			case muR <= 0:
				// Free resource: the stationarity pressure is all downward;
				// take the most share the resource allows.
				lat = pt.LatMinMs[si]
			case denom <= 1e-12:
				// No downward pressure from utility or deadlines: release
				// the resource entirely.
				lat = pt.LatMaxMs[si]
			default:
				sf := pt.Share[si]
				lat = sf.ErrMs + safeSqrt(muR*(sf.ExecMs+sf.LagMs)/denom)
			}
			c.LatMs[si] = clamp(lat, pt.LatMinMs[si], pt.LatMaxMs[si])
		}
		next := c.aggregate()
		if math.Abs(next-agg) < 1e-9*(1+math.Abs(agg)) {
			break
		}
		agg = next
	}
	for si, lat := range c.LatMs {
		if lat != c.latPrev[si] {
			return true
		}
	}
	return false
}

// ResponseSlope returns subtask si's demand response −∂share/∂μ at the
// controller's current latency — the cheap local Hessian estimate the
// fixed-point solve already implies (see Problem.ResponseSlope for the
// closed form). The engine and the distributed resource nodes sum it per
// resource as the curvature input of the DiagonalNewton price dynamics.
func (c *Controller) ResponseSlope(si int, mu float64) float64 {
	return c.p.ResponseSlope(c.ti, si, c.LatMs[si], mu)
}

// aggregate returns the weighted latency sum Σ w_s · lat_s.
func (c *Controller) aggregate() float64 {
	pt := &c.p.Tasks[c.ti]
	sum := 0.0
	for si, w := range pt.Weights {
		sum += w * c.LatMs[si]
	}
	return sum
}

// Utility returns the task's utility at the current latencies.
func (c *Controller) Utility() float64 {
	return c.p.Tasks[c.ti].Curve.Value(c.aggregate())
}

// CriticalPathMs returns the longest path latency under the current
// assignment and the index of that path.
func (c *Controller) CriticalPathMs() (float64, int) {
	pt := &c.p.Tasks[c.ti]
	best, bestIdx := 0.0, -1
	for pi, path := range pt.Paths {
		sum := 0.0
		for _, s := range path {
			sum += c.LatMs[s]
		}
		if bestIdx < 0 || sum > best {
			best, bestIdx = sum, pi
		}
	}
	return best, bestIdx
}

// Shares returns the per-subtask resource shares implied by the current
// latencies.
func (c *Controller) Shares() []float64 {
	out := make([]float64, len(c.LatMs))
	c.SharesInto(out)
	return out
}

// SharesInto writes the per-subtask resource shares implied by the current
// latencies into dst (len >= len(LatMs)). The engine's hot path and
// SnapshotInto use it to keep steady-state iterations allocation-free.
func (c *Controller) SharesInto(dst []float64) {
	pt := &c.p.Tasks[c.ti]
	for si, lat := range c.LatMs {
		dst[si] = pt.Share[si].Share(lat)
	}
}

// ClampDeadlineSafe pulls the current latencies toward their lower bounds
// until every path meets its critical-time constraint (Equation 4), and
// returns the worst remaining relative violation — 0 unless the workload is
// degenerate (a path's minimum latencies already exceed the critical time).
// The distributed runtimes call it while operating on stale prices: a
// degraded allocation may be suboptimal, but it must never break a deadline.
// Shrinking a latency only lowers the sums of the other paths through the
// same subtask, so a single pass over the paths suffices.
func (c *Controller) ClampDeadlineSafe() float64 {
	pt := &c.p.Tasks[c.ti]
	for _, path := range pt.Paths {
		sum, minSum := 0.0, 0.0
		for _, s := range path {
			sum += c.LatMs[s]
			minSum += pt.LatMinMs[s]
		}
		if sum <= pt.CriticalMs {
			continue
		}
		// Scale every subtask's slack above its floor by the common factor
		// that lands the path exactly on the critical time.
		f := 0.0
		if sum > minSum {
			f = (pt.CriticalMs - minSum) / (sum - minSum)
		}
		if f < 0 {
			f = 0
		}
		for _, s := range path {
			if nl := pt.LatMinMs[s] + (c.LatMs[s]-pt.LatMinMs[s])*f; nl < c.LatMs[s] {
				c.LatMs[s] = nl
			}
		}
	}
	worst := 0.0
	for _, path := range pt.Paths {
		sum := 0.0
		for _, s := range path {
			sum += c.LatMs[s]
		}
		if v := (sum - pt.CriticalMs) / pt.CriticalMs; v > worst {
			worst = v
		}
	}
	return worst
}

// ResetPrices zeroes the path prices and resets their step sizers; used
// after structural workload changes.
func (c *Controller) ResetPrices() {
	for pi := range c.Lambda {
		c.Lambda[pi] = 0
		c.pathStep[pi].Reset()
	}
}
