package core

import (
	"testing"

	"lla/internal/price"
	"lla/internal/workload"
)

// pinTestEngine builds an engine over the base workload with the given
// sparse mode and solver.
func pinTestEngine(t *testing.T, sparse SparseMode, solver price.Solver) *Engine {
	t.Helper()
	e, err := NewEngine(workload.Base(), Config{Workers: 1, Sparse: sparse, PriceSolver: solver})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestPinPriceHoldsPrice asserts a pinned price never moves under any
// resource-phase variant while unpinned prices keep iterating.
func TestPinPriceHoldsPrice(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sparse SparseMode
		solver price.Solver
	}{
		{"dense gradient", SparseOff, price.SolverGradient},
		{"sparse gradient", SparseOn, price.SolverGradient},
		{"dense newton", SparseOff, price.SolverNewton},
		{"sparse newton", SparseOn, price.SolverNewton},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := pinTestEngine(t, tc.sparse, tc.solver)
			const pinMu = 3.25
			if err := e.PinPrice(0, pinMu, true); err != nil {
				t.Fatal(err)
			}
			if !e.PinnedAt(0) {
				t.Fatal("PinnedAt(0) = false after PinPrice")
			}
			for i := 0; i < 50; i++ {
				e.Step()
				if got := e.MuAt(0); got != pinMu {
					t.Fatalf("iter %d: pinned price moved: %v != %v", i, got, pinMu)
				}
				if !e.CongestedAt(0) {
					t.Fatalf("iter %d: pinned congestion flag lost", i)
				}
			}
			moved := false
			for ri := 1; ri < len(e.agents); ri++ {
				if e.MuAt(ri) != e.cfg.InitialMu {
					moved = true
				}
			}
			if !moved {
				t.Fatal("no unpinned price moved in 50 iterations")
			}
		})
	}
}

// TestPinPriceDemandTracksControllers asserts the pinned resource's demand
// keeps being reduced: raising the pinned price must shrink the local share
// sum on that resource.
func TestPinPriceDemandTracksControllers(t *testing.T) {
	e := pinTestEngine(t, SparseOn, price.SolverGradient)
	for i := 0; i < 200; i++ {
		e.Step()
	}
	before := e.ShareSumAt(0)
	if err := e.PinPrice(0, e.MuAt(0)*50, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e.Step()
	}
	after := e.ShareSumAt(0)
	if !(after < before) {
		t.Fatalf("demand did not fall after 50x price pin: before=%v after=%v", before, after)
	}
}

// TestUnpinPriceResumesPricing asserts UnpinPrice returns the resource to
// engine ownership.
func TestUnpinPriceResumesPricing(t *testing.T) {
	e := pinTestEngine(t, SparseOn, price.SolverGradient)
	if err := e.PinPrice(0, 1e-6, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.Step()
	}
	e.UnpinPrice(0)
	for i := 0; i < 200; i++ {
		e.Step()
	}
	if e.MuAt(0) == 1e-6 {
		t.Fatal("price never moved after UnpinPrice")
	}
}

// TestPinPriceSparseMatchesDense asserts the sparse path stays bitwise equal
// to the dense path under pinning — including pins applied mid-run.
func TestPinPriceSparseMatchesDense(t *testing.T) {
	dense := pinTestEngine(t, SparseOff, price.SolverGradient)
	sparse := pinTestEngine(t, SparseOn, price.SolverGradient)
	for i := 0; i < 300; i++ {
		if i == 40 {
			for _, e := range []*Engine{dense, sparse} {
				if err := e.PinPrice(1, 2.5, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		if i == 150 {
			dense.UnpinPrice(1)
			sparse.UnpinPrice(1)
		}
		dense.Step()
		sparse.Step()
		ds, ss := dense.Snapshot(), sparse.Snapshot()
		if ds.Utility != ss.Utility {
			t.Fatalf("iter %d: utility diverged: dense=%v sparse=%v", i, ds.Utility, ss.Utility)
		}
		for ri := range ds.Mu {
			if ds.Mu[ri] != ss.Mu[ri] || ds.ShareSums[ri] != ss.ShareSums[ri] {
				t.Fatalf("iter %d resource %d: dense/sparse mismatch", i, ri)
			}
		}
	}
}

// TestPinPriceRejectsBadInputs covers the defensive paths.
func TestPinPriceRejectsBadInputs(t *testing.T) {
	e := pinTestEngine(t, SparseOn, price.SolverGradient)
	if err := e.PinPrice(-1, 1, false); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := e.PinPrice(len(e.agents), 1, false); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := e.PinPrice(0, -1, false); err == nil {
		t.Fatal("negative price accepted")
	}
	e.UnpinPrice(99) // no-op, must not panic
	if e.ResourceIndex("no-such-resource") != -1 {
		t.Fatal("unknown resource resolved")
	}
	if ri := e.ResourceIndex(e.p.Resources[0].ID); ri != 0 {
		t.Fatalf("ResourceIndex = %d, want 0", ri)
	}
}
