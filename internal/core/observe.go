package core

import (
	"math"

	"lla/internal/obs"
)

// obsHandles caches everything the per-iteration publication needs so the
// observed hot path performs no registry lookups: the observer itself plus
// metric handles resolved once at attach time.
type obsHandles struct {
	o   *obs.Observer
	em  *obs.EngineMetrics
	res []*obs.ResourceMetrics
	sm  *obs.SparseMetrics
	// kkt is the reused residual-vector scratch: publishObs computes the
	// Equation 7 residuals once per iteration into it and derives the
	// max/mean summary from the vector, keeping observed Steps
	// allocation-free after the buffer's first growth.
	kkt []float64
	// lastSparse remembers the cumulative sparse counters at the previous
	// publication so the monotone lla_sparse_* counters advance by deltas.
	lastSparse SparseStats
	// slv carries the price-dynamics metric set; lastFallbacks remembers
	// the cumulative safeguard-fallback count at the previous publication
	// (same delta pattern as lastSparse).
	slv           *obs.SolverMetrics
	lastFallbacks uint64
}

// Observe attaches the observability channels to the engine; nil detaches.
// With nothing attached Step pays a single nil-check (the steady-state
// iteration stays allocation-free — see the alloc regression tests); with an
// Observer attached, every Step publishes an IterationSample to the
// Recorder and refreshes the registered gauges, and the engine emits trace
// events on convergence and runtime workload changes.
//
// Like the Set* mutators, Observe must be called from the goroutine driving
// Step. The channels themselves may be read concurrently: the provided
// recorders and sinks are safe for concurrent readers, and gauges/counters
// are atomic.
func (e *Engine) Observe(o *obs.Observer) {
	if o == nil {
		e.obsv = nil
		return
	}
	h := &obsHandles{o: o, lastSparse: e.sstats}
	if o.Metrics != nil {
		h.em = obs.NewEngineMetrics(o.Metrics)
		for ri := range e.p.Resources {
			h.res = append(h.res, obs.NewResourceMetrics(o.Metrics, e.p.Resources[ri].ID))
		}
		if e.sparse {
			h.sm = obs.NewSparseMetrics(o.Metrics)
		}
		h.slv = obs.NewSolverMetrics(o.Metrics, string(e.cfg.PriceSolver))
		h.lastFallbacks = e.SolverFallbacks()
	}
	e.obsv = h
}

// emit forwards a trace event when an observer is attached.
func (e *Engine) emit(ev obs.Event) {
	if e.obsv != nil {
		e.obsv.o.Emit(ev)
	}
}

// publishObs pushes the completed iteration's telemetry to the attached
// channels. It runs on the driving goroutine after the shard join, so it
// reads the same frozen state the reduction produced.
func (e *Engine) publishObs() {
	h := e.obsv
	pr := e.Probe()
	// One residual-vector pass feeds both the summary gauges and the
	// per-iteration sample; KKTResidualsInto reuses h.kkt's capacity so the
	// observed Step performs no allocation at steady state.
	h.kkt = e.KKTResidualsInto(h.kkt)
	kktMax, kktMean, kktCount := summarize(h.kkt)

	if h.sm != nil {
		cur := e.sstats
		h.sm.SkippedSolves.Add(int64(cur.SkippedSolves - h.lastSparse.SkippedSolves))
		h.sm.ExecutedSolves.Add(int64(cur.ExecutedSolves - h.lastSparse.ExecutedSolves))
		h.sm.CleanResources.Add(int64(cur.CleanResources - h.lastSparse.CleanResources))
		h.sm.RepricedResources.Add(int64(cur.RepricedResources - h.lastSparse.RepricedResources))
		h.lastSparse = cur
	}

	if h.slv != nil {
		h.slv.Rounds.Inc()
		fb := e.SolverFallbacks()
		h.slv.Fallbacks.Add(int64(fb - h.lastFallbacks))
		h.lastFallbacks = fb
		resid := e.dynDelta
		if e.dyn == nil {
			// Gradient paths leave e.mu holding the pre-update snapshot, so
			// the last round's price movement is recoverable directly.
			resid = 0
			for ri, a := range e.agents {
				if d := math.Abs(a.Mu - e.mu[ri]); d > resid {
					resid = d
				}
			}
		}
		h.slv.Residual.Set(resid)
	}

	if h.em != nil {
		h.em.Iterations.Inc()
		h.em.Utility.Set(pr.Utility)
		h.em.KKTMax.Set(kktMax)
		h.em.MaxResourceViolation.Set(pr.MaxResourceViolation)
		h.em.MaxPathViolation.Set(pr.MaxPathViolationFrac)
		for ri, rm := range h.res {
			avail := e.p.Resources[ri].Availability
			rm.ShareSum.Set(e.shareSums[ri])
			rm.Availability.Set(avail)
			rm.Utilization.Set(e.shareSums[ri] / avail)
			rm.Price.Set(e.agents[ri].Mu)
		}
	}

	rec := h.o.Recorder
	if rec == nil {
		return
	}
	s := rec.Begin(e.iter)
	if s == nil {
		return
	}
	s.Iteration = e.iter
	s.Utility = pr.Utility
	s.MaxResourceViolation = pr.MaxResourceViolation
	s.MaxPathViolationFrac = pr.MaxPathViolationFrac
	s.KKTMax, s.KKTMean, s.KKTCount = kktMax, kktMean, kktCount
	s.Mu = s.Mu[:0]
	s.ShareSums = s.ShareSums[:0]
	s.Avail = s.Avail[:0]
	s.Gamma = s.Gamma[:0]
	for ri, a := range e.agents {
		s.Mu = append(s.Mu, a.Mu)
		s.ShareSums = append(s.ShareSums, e.shareSums[ri])
		s.Avail = append(s.Avail, e.p.Resources[ri].Availability)
		s.Gamma = append(s.Gamma, a.StepGamma())
	}
	s.Lambda = s.Lambda[:0]
	for _, c := range e.controllers {
		s.Lambda = append(s.Lambda, c.Lambda...)
	}
	s.KKT = append(s.KKT[:0], h.kkt...)
	rec.Commit(s)
}

// summarize reduces a residual vector to the max/mean/count summary that
// KKTStats would compute, from an already-materialized vector.
func summarize(res []float64) (max, mean float64, n int) {
	sum := 0.0
	for _, r := range res {
		sum += r
		if r > max {
			max = r
		}
	}
	if len(res) > 0 {
		mean = sum / float64(len(res))
	}
	return max, mean, len(res)
}

// kktResidual returns the normalized Equation 7 stationarity residual of
// subtask (ti, si) given the task's current curve slope, and whether the
// subtask is interior (bound-active subtasks need not be stationary).
func (e *Engine) kktResidual(ti, si int, slope float64) (float64, bool) {
	pt := &e.p.Tasks[ti]
	c := e.controllers[ti]
	lat := c.LatMs[si]
	lo, hi := pt.LatMinMs[si], pt.LatMaxMs[si]
	if lat <= lo*(1+1e-6) || lat >= hi*(1-1e-6) {
		return 0, false
	}
	lambdaSum := 0.0
	for _, pi := range pt.PathsThrough[si] {
		lambdaSum += c.Lambda[pi]
	}
	mu := e.agents[pt.Res[si]].Mu
	resid := pt.Weights[si]*slope - lambdaSum - mu*pt.Share[si].Deriv(lat)
	scale := math.Max(1, math.Abs(lambdaSum)+math.Abs(pt.Weights[si]*slope))
	return math.Abs(resid) / scale, true
}

// KKTStats summarizes the Equation 7 residuals over interior subtasks —
// the per-iteration convergence signal the observability layer records —
// without allocating. n is the number of interior subtasks; with n == 0
// every subtask is bound-active and max/mean are 0.
func (e *Engine) KKTStats() (max, mean float64, n int) {
	sum := 0.0
	for ti := range e.p.Tasks {
		slope := e.p.Tasks[ti].Curve.Slope(e.controllers[ti].aggregate())
		for si := range e.controllers[ti].LatMs {
			if r, ok := e.kktResidual(ti, si, slope); ok {
				sum += r
				if r > max {
					max = r
				}
				n++
			}
		}
	}
	if n > 0 {
		mean = sum / float64(n)
	}
	return max, mean, n
}
