package core

// Incremental sparse iteration (DESIGN.md §11). LLA's gradient-projection
// loop converges by making ever-smaller price moves; near the fixed point
// the floating-point updates literally stop changing bits (the step rounds
// to a no-op), yet the dense Step keeps re-solving every task controller
// and re-summing every resource. The sparse path exploits that: it skips a
// controller's solve when its observed prices are bitwise identical to its
// previous solve AND that solve was a self-fixed-point (it left the
// controller's own state — latencies, path prices, step sizers — bitwise
// unchanged), and it skips a resource's reprice when no contributing
// subtask's share changed AND the previous gradient step was likewise a
// bitwise no-op.
//
// The skip condition is exact, not approximate: both the controller solve
// and the resource reprice are deterministic state machines S' = F(S, x).
// If the last executed transition observed F(S, x) == S and the inputs x
// are bitwise unchanged, re-running F would reproduce S and the cached
// outputs verbatim — so sparse mode produces byte-identical snapshots to
// the dense path at every iteration and under every Workers count. Any
// out-of-band mutation of S or of the problem data (SetAvailability,
// SetErrorMs, SetMinShare, ReplaceWorkload) invalidates every cached
// fingerprint; see Engine.invalidateSparse.

// SparseMode selects the engine's iteration path.
type SparseMode int

const (
	// SparseAuto (the zero value) resolves to SparseOn: the incremental
	// path is the default because it is bitwise-indistinguishable from the
	// dense path and strictly cheaper at steady state.
	SparseAuto SparseMode = iota
	// SparseOn enables the incremental active-set iteration.
	SparseOn
	// SparseOff forces the dense path: every controller solves and every
	// resource reprices on every Step. Useful for benchmarking the sparse
	// speedup and as an escape hatch.
	SparseOff
)

// String renders the mode for flags and telemetry.
func (m SparseMode) String() string {
	switch m {
	case SparseOn:
		return "on"
	case SparseOff:
		return "off"
	default:
		return "auto"
	}
}

// Incidence is the CSR-style index of the bipartite task/resource structure,
// built once at engine construction: which distinct resources a task's
// controller observes (the mu/congested slots it fingerprints), and which
// distinct tasks contribute shares to a resource (the dirty-propagation
// fan-in of its price update). Both directions are flat int32 arrays so the
// per-Step scans stay cache-dense and allocation-free. It is exported for
// structure-aware consumers outside the engine — the fleet partitioner walks
// it to compute balanced min-cut shard assignments (SHARDING.md).
type Incidence struct {
	// taskResOff/taskRes: task ti observes resources
	// taskRes[taskResOff[ti]:taskResOff[ti+1]], in first-appearance order.
	taskResOff []int32
	taskRes    []int32
	// resTaskOff/resTask: resource ri receives shares from tasks
	// resTask[resTaskOff[ri]:resTaskOff[ri+1]], in first-appearance order.
	resTaskOff []int32
	resTask    []int32
}

// NumTasks returns the task count the index was built over.
func (inc *Incidence) NumTasks() int { return len(inc.taskResOff) - 1 }

// NumResources returns the resource count the index was built over.
func (inc *Incidence) NumResources() int { return len(inc.resTaskOff) - 1 }

// TaskResources returns the distinct resources task ti touches, in
// first-appearance order. The returned slice aliases the index; callers must
// not mutate it.
func (inc *Incidence) TaskResources(ti int) []int32 {
	return inc.taskRes[inc.taskResOff[ti]:inc.taskResOff[ti+1]]
}

// ResourceTasks returns the distinct tasks contributing shares to resource
// ri, in first-appearance order. The returned slice aliases the index;
// callers must not mutate it.
func (inc *Incidence) ResourceTasks(ri int) []int32 {
	return inc.resTask[inc.resTaskOff[ri]:inc.resTaskOff[ri+1]]
}

// NewIncidence builds both CSR directions from the compiled problem.
func NewIncidence(p *Problem) Incidence {
	var inc Incidence
	inc.taskResOff = make([]int32, len(p.Tasks)+1)
	seenRes := make([]int32, len(p.Resources))
	for i := range seenRes {
		seenRes[i] = -1
	}
	for ti := range p.Tasks {
		inc.taskResOff[ti] = int32(len(inc.taskRes))
		for _, ri := range p.Tasks[ti].Res {
			if seenRes[ri] != int32(ti) {
				seenRes[ri] = int32(ti)
				inc.taskRes = append(inc.taskRes, int32(ri))
			}
		}
	}
	inc.taskResOff[len(p.Tasks)] = int32(len(inc.taskRes))

	inc.resTaskOff = make([]int32, len(p.Resources)+1)
	seenTask := make([]int32, len(p.Tasks))
	for i := range seenTask {
		seenTask[i] = -1
	}
	for ri := range p.Resources {
		inc.resTaskOff[ri] = int32(len(inc.resTask))
		for _, sub := range p.Resources[ri].Subs {
			if seenTask[sub[0]] != int32(ri) {
				seenTask[sub[0]] = int32(ri)
				inc.resTask = append(inc.resTask, int32(sub[0]))
			}
		}
	}
	inc.resTaskOff[len(p.Resources)] = int32(len(inc.resTask))
	return inc
}

// SparseStats counts the incremental path's activity since engine
// construction (or the last ResetSparseStats). All counts are totals across
// iterations; skipped/(skipped+executed) is the controller skip rate the
// benchmarks report as skipped_pct.
type SparseStats struct {
	// Iterations counts Steps taken while the sparse path was enabled.
	Iterations uint64
	// SkippedSolves counts controller solves skipped because the observed
	// prices were bitwise unchanged and the controller was at a fixed point.
	SkippedSolves uint64
	// ExecutedSolves counts controller solves actually performed.
	ExecutedSolves uint64
	// CleanResources counts resource price updates skipped because no
	// contributing share changed and the projected gradient was at its
	// fixed point.
	CleanResources uint64
	// RepricedResources counts resource price updates actually performed.
	RepricedResources uint64
}

// SparseStats returns the engine's cumulative sparse-path counters. With the
// dense path configured (SparseOff) every field stays zero.
func (e *Engine) SparseStats() SparseStats { return e.sstats }

// ResetSparseStats zeroes the cumulative counters (benchmark windows).
func (e *Engine) ResetSparseStats() { e.sstats = SparseStats{} }

// SparseEnabled reports whether the engine runs the incremental path.
func (e *Engine) SparseEnabled() bool { return e.sparse }

// fingerprintClean reports whether task ti's observed price view — the mu
// and congested slots of every resource it touches — is bitwise identical
// to the view recorded at its previous executed solve. Float comparison is
// deliberately exact (==): a skip is only sound for identical bits, and
// NaNs (which would compare unequal to themselves and force a solve) cannot
// reach the price vector because price updates project onto [0, MaxPrice].
func (e *Engine) fingerprintClean(ti int) bool {
	lo, hi := e.inc.taskResOff[ti], e.inc.taskResOff[ti+1]
	for j := lo; j < hi; j++ {
		ri := e.inc.taskRes[j]
		if e.mu[ri] != e.fpMu[j] || e.congested[ri] != e.fpCong[j] {
			return false
		}
	}
	return true
}

// recordFingerprint snapshots task ti's observed price view before a solve.
func (e *Engine) recordFingerprint(ti int) {
	lo, hi := e.inc.taskResOff[ti], e.inc.taskResOff[ti+1]
	for j := lo; j < hi; j++ {
		ri := e.inc.taskRes[j]
		e.fpMu[j] = e.mu[ri]
		e.fpCong[j] = e.congested[ri]
	}
}

// resourceDirty reports whether any task contributing shares to resource ri
// re-solved with changed latencies this Step.
func (e *Engine) resourceDirty(ri int) bool {
	lo, hi := e.inc.resTaskOff[ri], e.inc.resTaskOff[ri+1]
	for j := lo; j < hi; j++ {
		if e.latChanged[e.inc.resTask[j]] {
			return true
		}
	}
	return false
}

// invalidateSparse drops every cached fingerprint and fixed-point flag. Any
// mutation of the problem data or controller/agent state outside Step —
// availability changes, model-error corrections, min-share updates,
// workload replacement — must call it: the skip contract is "inputs
// identical AND state untouched", and out-of-band writes break the second
// half invisibly.
func (e *Engine) invalidateSparse() {
	for i := range e.ctlSolved {
		e.ctlSolved[i] = false
		e.ctlStable[i] = false
		e.latChanged[i] = true
	}
	for i := range e.agentStable {
		e.agentStable[i] = false
		e.sumValid[i] = false
	}
	// Accelerated price dynamics carry iterate history (Anderson's mixing
	// window); an out-of-band change invalidates it for the same reason it
	// invalidates the fingerprints — extrapolating across the discontinuity
	// would be meaningless.
	if e.dyn != nil {
		e.dyn.Invalidate()
	}
}

// initSparse sizes the incremental-path state for a freshly compiled
// problem. Called from NewEngine regardless of mode so the toggles can be
// compared without re-allocating; the dense path never reads these.
func (e *Engine) initSparse() {
	e.inc = NewIncidence(e.p)
	e.fpMu = make([]float64, len(e.inc.taskRes))
	e.fpCong = make([]bool, len(e.inc.taskRes))
	e.ctlSolved = make([]bool, len(e.p.Tasks))
	e.ctlStable = make([]bool, len(e.p.Tasks))
	e.latChanged = make([]bool, len(e.p.Tasks))
	e.agentStable = make([]bool, len(e.p.Resources))
	e.sumValid = make([]bool, len(e.p.Resources))
	e.shardSkipped = make([]uint64, e.nshards)
	e.invalidateSparse()
}
