package core

import (
	"testing"

	"lla/internal/price"
	"lla/internal/workload"
)

// TestRestoreBitwiseEverySolverAndWorkers is the checkpoint tentpole's
// contract: crash at iteration k, capture, restore into a fresh engine, and
// every subsequent snapshot is byte-identical to the uninterrupted run — for
// every price solver, every capture/restore Workers combination, and both
// with and without the sparse path having accumulated skip state.
func TestRestoreBitwiseEverySolverAndWorkers(t *testing.T) {
	w4 := func(t *testing.T) *workload.Workload {
		w, err := workload.Replicate(workload.Base(), 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	const crashAt = 60
	const tail = 120
	for _, solver := range price.Solvers() {
		for _, wk := range []struct{ capture, restore int }{{1, 1}, {1, 4}, {4, 1}} {
			t.Run(string(solver), func(t *testing.T) {
				cfg := Config{Workers: wk.capture, PriceSolver: solver}
				ref, err := NewEngine(w4(t), cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer ref.Close()
				for i := 0; i < crashAt; i++ {
					ref.Step()
				}
				st := ref.CaptureState()

				restoredCfg := cfg
				restoredCfg.Workers = wk.restore
				restored, err := NewEngine(w4(t), restoredCfg)
				if err != nil {
					t.Fatal(err)
				}
				defer restored.Close()
				if err := restored.RestoreState(st); err != nil {
					t.Fatalf("RestoreState: %v", err)
				}
				if restored.Iteration() != crashAt {
					t.Fatalf("restored iteration = %d, want %d", restored.Iteration(), crashAt)
				}

				var rs, cs Snapshot
				ref.SnapshotInto(&rs)
				restored.SnapshotInto(&cs)
				requireSnapshotsBitwiseEqual(t, crashAt, &rs, &cs)
				for i := 0; i < tail; i++ {
					ref.Step()
					restored.Step()
					ref.SnapshotInto(&rs)
					restored.SnapshotInto(&cs)
					requireSnapshotsBitwiseEqual(t, crashAt+i, &rs, &cs)
				}
				if ref.SolverFallbacks() != restored.SolverFallbacks() {
					t.Fatalf("fallback counts diverged: ref %d restored %d",
						ref.SolverFallbacks(), restored.SolverFallbacks())
				}
				if ref.SparseStats() != restored.SparseStats() {
					t.Fatalf("sparse stats diverged:\n ref      %+v\n restored %+v",
						ref.SparseStats(), restored.SparseStats())
				}
			})
		}
	}
}

// TestRestoreCarriesErrorMs: SetErrorMs writes only the compiled problem, so
// a restore that rebuilt the engine from the workload alone would lose it.
// The captured state must carry it and the restored trajectory must match.
func TestRestoreCarriesErrorMs(t *testing.T) {
	ref, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for i := 0; i < 20; i++ {
		ref.Step()
	}
	name := ref.Problem().Tasks[0].Name
	sub := ref.Problem().Tasks[0].SubtaskNames[0]
	if err := ref.SetErrorMs(name, sub, 0.4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ref.Step()
	}
	st := ref.CaptureState()

	restored, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if got := restored.Problem().Tasks[0].Share[0].ErrMs; got != 0.4 {
		t.Fatalf("restored ErrMs = %v, want 0.4", got)
	}
	var rs, cs Snapshot
	for i := 0; i < 50; i++ {
		ref.Step()
		restored.Step()
		ref.SnapshotInto(&rs)
		restored.SnapshotInto(&cs)
		requireSnapshotsBitwiseEqual(t, i, &rs, &cs)
	}
}

// TestRestoreRejectsMismatch: shape and solver mismatches must refuse the
// restore rather than load approximately.
func TestRestoreRejectsMismatch(t *testing.T) {
	ref, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.Step()
	st := ref.CaptureState()

	bigger, err := workload.Replicate(workload.Base(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewEngine(bigger, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.RestoreState(st); err == nil {
		t.Fatal("restoring into a differently shaped engine succeeded, want error")
	}

	accel, err := NewEngine(workload.Base(), Config{Workers: 1, PriceSolver: price.SolverNewton})
	if err != nil {
		t.Fatal(err)
	}
	defer accel.Close()
	if err := accel.RestoreState(st); err == nil {
		t.Fatal("restoring gradient checkpoint into newton engine succeeded, want error")
	}

	accelSt := func() EngineState {
		e, err := NewEngine(workload.Base(), Config{Workers: 1, PriceSolver: price.SolverAnderson})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Step()
		return e.CaptureState()
	}()
	if err := ref.RestoreState(accelSt); err == nil {
		t.Fatal("restoring anderson checkpoint into gradient engine succeeded, want error")
	}
}
