package core

import (
	"testing"

	"lla/internal/workload"
)

// TestForkMatchesOriginal locks in the warm-start contract: a fork taken
// mid-run produces exactly the trajectory the original produces from the
// same point.
func TestForkMatchesOriginal(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(50, nil)

	f, err := e.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 100; i++ {
		e.Step()
		f.Step()
		ep, fp := e.Probe(), f.Probe()
		if ep.Utility != fp.Utility ||
			ep.MaxResourceViolation != fp.MaxResourceViolation ||
			ep.MaxPathViolationFrac != fp.MaxPathViolationFrac {
			t.Fatalf("step %d: fork diverged: orig %+v fork %+v", i, ep, fp)
		}
	}
	es, fs := e.Snapshot(), f.Snapshot()
	for ti := range es.LatMs {
		for si := range es.LatMs[ti] {
			if es.LatMs[ti][si] != fs.LatMs[ti][si] {
				t.Fatalf("lat[%d][%d]: orig %v fork %v", ti, si, es.LatMs[ti][si], fs.LatMs[ti][si])
			}
		}
	}
	for ri := range es.Mu {
		if es.Mu[ri] != fs.Mu[ri] {
			t.Fatalf("mu[%d]: orig %v fork %v", ri, es.Mu[ri], fs.Mu[ri])
		}
	}
}

// TestForkIsolation: stepping (and mutating) the fork leaves the original
// engine's state untouched.
func TestForkIsolation(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(50, nil)
	before := e.Snapshot()

	f, err := e.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.SetAvailability(e.Problem().Resources[0].ID, 0.4); err != nil {
		t.Fatal(err)
	}
	f.Run(200, nil)

	after := e.Snapshot()
	if before.Utility != after.Utility {
		t.Fatalf("original utility changed: %v -> %v", before.Utility, after.Utility)
	}
	for ri := range before.Mu {
		if before.Mu[ri] != after.Mu[ri] {
			t.Fatalf("original mu[%d] changed: %v -> %v", ri, before.Mu[ri], after.Mu[ri])
		}
	}
	if e.Problem().Resources[0].Availability == 0.4 {
		t.Fatal("fork availability change leaked into the original problem")
	}
}

// TestCurrentWorkloadBakesRuntimeState: availability changes (which do not
// write back to the source workload) and min-share changes both appear in
// the copy, and mutating the copy does not touch the engine.
func TestCurrentWorkloadBakesRuntimeState(t *testing.T) {
	w := workload.Base()
	e, err := NewEngine(w, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rid := w.Resources[0].ID
	if err := e.SetAvailability(rid, 0.55); err != nil {
		t.Fatal(err)
	}

	c := e.CurrentWorkload()
	got, ok := c.ResourceByID(rid)
	if !ok || got.Availability != 0.55 {
		t.Fatalf("copy availability = %v, want 0.55", got.Availability)
	}
	c.Resources[0].Availability = 0.1
	c.Tasks[0].CriticalMs = 1
	if e.Problem().Resources[0].Availability != 0.55 {
		t.Fatal("mutating the copy changed the engine's problem")
	}
	if e.Problem().Tasks[0].CriticalMs == 1 {
		t.Fatal("mutating a copied task changed the engine's problem")
	}
}

// TestForkCarriesErrorCorrection: the ErrMs correction lives only in the
// compiled problem; a fork must inherit it.
func TestForkCarriesErrorCorrection(t *testing.T) {
	w := workload.Base()
	e, err := NewEngine(w, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tn, sn := w.Tasks[0].Name, w.Tasks[0].Subtasks[0].Name
	if err := e.SetErrorMs(tn, sn, 0.7); err != nil {
		t.Fatal(err)
	}
	f, err := e.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.Problem().Tasks[0].Share[0].ErrMs; got != 0.7 {
		t.Fatalf("fork ErrMs = %v, want 0.7", got)
	}
}
