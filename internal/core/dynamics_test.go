package core

import (
	"testing"

	"lla/internal/obs"
	"lla/internal/price"
	"lla/internal/workload"
)

// solverEngine builds an engine over the replicated base workload with the
// given solver and worker count.
func solverEngine(t *testing.T, s price.Solver, workers int) *Engine {
	t.Helper()
	w, err := workload.Replicate(workload.Base(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(w, Config{Workers: workers, PriceSolver: s})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestSolverStepDoesNotAllocate extends the zero-allocation invariant to
// every price solver: once warm, the steady-state Step performs no heap
// allocation on the serial and the sharded engine, with and without an
// observer attached.
func TestSolverStepDoesNotAllocate(t *testing.T) {
	for _, s := range price.Solvers() {
		for _, workers := range []int{1, 4} {
			e := solverEngine(t, s, workers)
			for i := 0; i < 50; i++ {
				e.Step()
			}
			if allocs := testing.AllocsPerRun(100, e.Step); allocs != 0 {
				t.Errorf("solver=%s workers=%d: Step allocates %v/op, want 0", s, workers, allocs)
			}
			// The observed path must hold the bound too: solver metrics are
			// resolved once at attach time and published by delta.
			o := &obs.Observer{Recorder: obs.NewRing(8), Metrics: obs.NewRegistry()}
			e.Observe(o)
			for i := 0; i < 50; i++ {
				e.Step()
			}
			if allocs := testing.AllocsPerRun(100, e.Step); allocs != 0 {
				t.Errorf("solver=%s workers=%d: observed Step allocates %v/op, want 0", s, workers, allocs)
			}
		}
	}
}

// TestSolverParallelMatchesSerial extends the engine's central invariant to
// every price solver: the accelerated resource phase runs after the shard
// join on the serially reduced share sums (and a curvature vector summed in
// compiled subtask order), so the trajectory is bitwise worker-count
// independent for each solver.
func TestSolverParallelMatchesSerial(t *testing.T) {
	for _, s := range price.Solvers() {
		t.Run(string(s), func(t *testing.T) {
			serial := solverEngine(t, s, 1)
			par := solverEngine(t, s, 4)
			if par.Workers() < 2 {
				t.Fatalf("parallel engine resolved to %d shards, want >= 2", par.Workers())
			}
			for i := 0; i < 200; i++ {
				serial.Step()
				par.Step()
				requireBitwiseEqual(t, i, serial, par)
			}
		})
	}
}

// TestGradientSolverKeepsAgentPath pins the compatibility contract: selecting
// the gradient solver explicitly must not install a Dynamics — the agents'
// built-in UpdatePrice path stays in charge — and the trajectory is bitwise
// identical to the default configuration.
func TestGradientSolverKeepsAgentPath(t *testing.T) {
	def, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	grad, err := NewEngine(workload.Base(), Config{Workers: 1, PriceSolver: price.SolverGradient})
	if err != nil {
		t.Fatal(err)
	}
	defer grad.Close()
	if def.dyn != nil || grad.dyn != nil {
		t.Fatalf("gradient configurations must not install a Dynamics (default %v, explicit %v)",
			def.dyn, grad.dyn)
	}
	if grad.PriceSolver() != price.SolverGradient {
		t.Fatalf("PriceSolver() = %q, want gradient", grad.PriceSolver())
	}
	for i := 0; i < 300; i++ {
		def.Step()
		grad.Step()
		requireBitwiseEqual(t, i, def, grad)
	}
}

// TestGradientDynamicsMatchesAgentPath proves the two gradient
// implementations are interchangeable: an engine whose resource phase is
// forced through a GradientProjection Dynamics reproduces the agents'
// built-in path bit for bit, across runtime mutations. This is the anchor
// for "fall back to gradient means the reference behavior" — the safeguard
// path of every accelerated solver runs this exact arithmetic.
func TestGradientDynamicsMatchesAgentPath(t *testing.T) {
	ref, err := NewEngine(workload.Base(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	forced, err := NewEngine(workload.Base(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer forced.Close()
	// Install the reference dynamics by hand, exactly as NewEngine does for
	// accelerated solvers. The engines are fresh, so the Dynamics' new step
	// sizers agree with the agents' sizers.
	forced.dyn = forced.cfg.NewDynamics()
	forced.dyn.Reset(len(forced.p.Resources))
	forced.dynAvail = make([]float64, len(forced.p.Resources))
	forced.dynCurv = make([]float64, len(forced.p.Resources))
	if forced.dyn.Solver() != price.SolverGradient {
		t.Fatalf("config built a %q dynamics, want gradient", forced.dyn.Solver())
	}

	for round := 0; round < 6; round++ {
		for i := 0; i < 50; i++ {
			ref.Step()
			forced.Step()
			requireBitwiseEqual(t, round*50+i, ref, forced)
		}
		// Out-of-band changes go through the same invalidation on both paths.
		if err := ref.SetAvailability("r0", 0.7+0.05*float64(round)); err != nil {
			t.Fatal(err)
		}
		if err := forced.SetAvailability("r0", 0.7+0.05*float64(round)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunUntilKKT exercises the stationarity-certified stopping rule: it
// converges on the base workload to a point whose worst Equation 7 residual
// is below the tolerance, degenerate arguments refuse cleanly, and the
// accelerated Newton solver reaches the certificate in a fraction of the
// gradient's rounds.
func TestRunUntilKKT(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	snap, ok := e.RunUntilKKT(3000, 1e-9, 3, 1e-6)
	if !ok {
		t.Fatalf("gradient did not reach the KKT certificate in 3000 rounds (iter %d)", snap.Iteration)
	}
	if max, _, n := e.KKTStats(); n == 0 || max >= 1e-9 {
		t.Fatalf("certified point has KKT max %v over %d interior subtasks, want < 1e-9", max, n)
	}
	if snap.MaxResourceViolation >= 1e-6 || snap.MaxPathViolationFrac >= 1e-6 {
		t.Fatalf("certified point violates constraints: resource %v path %v",
			snap.MaxResourceViolation, snap.MaxPathViolationFrac)
	}

	if _, ok := e.RunUntilKKT(0, 1e-9, 3, 1e-6); ok {
		t.Error("maxIters=0 must report not converged")
	}
	if _, ok := e.RunUntilKKT(100, 1e-9, 0, 1e-6); ok {
		t.Error("window=0 must report not converged")
	}

	// The speedup claim is measured on the replicated workload the rounds
	// benchmark uses (BenchmarkRoundsToConverge): newton must certify in at
	// most half the gradient's rounds there.
	mk := func(s price.Solver) *Engine {
		w, err := workload.Replicate(workload.Base(), 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		re, err := NewEngine(w, Config{Workers: 1, PriceSolver: s})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(re.Close)
		return re
	}
	gsnap, ok := mk(price.SolverGradient).RunUntilKKT(4000, 1e-9, 3, 1e-6)
	if !ok {
		t.Fatal("gradient did not reach the KKT certificate on the replicated workload")
	}
	nsnap, ok := mk(price.SolverNewton).RunUntilKKT(4000, 1e-9, 3, 1e-6)
	if !ok {
		t.Fatal("newton did not reach the KKT certificate on the replicated workload")
	}
	if nsnap.Iteration*2 > gsnap.Iteration {
		t.Errorf("newton certified in %d rounds, gradient in %d — want at least 2x fewer",
			nsnap.Iteration, gsnap.Iteration)
	}
}

// TestResponseSlope pins the curvature formula the Newton dynamics consume:
// interior subtasks respond with share/(2mu), bound-active subtasks and free
// resources do not respond, and the controller wrapper evaluates the same
// quantity at the live latency.
func TestResponseSlope(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	p := e.Problem()
	pt := &p.Tasks[0]
	lo, hi := pt.LatMinMs[0], pt.LatMaxMs[0]
	mid := (lo + hi) / 2

	want := pt.Share[0].Share(mid) / (2 * 1.5)
	if got := p.ResponseSlope(0, 0, mid, 1.5); got != want {
		t.Errorf("interior slope = %v, want share/(2mu) = %v", got, want)
	}
	if got := p.ResponseSlope(0, 0, mid, 0); got != 0 {
		t.Errorf("free resource (mu=0) must not respond, got %v", got)
	}
	if got := p.ResponseSlope(0, 0, lo, 1); got != 0 {
		t.Errorf("lower-bound-active subtask must not respond, got %v", got)
	}
	if got := p.ResponseSlope(0, 0, hi, 1); got != 0 {
		t.Errorf("upper-bound-active subtask must not respond, got %v", got)
	}

	e.Run(50, nil)
	c := e.Controller(0)
	for si := range c.LatMs {
		if got, want := c.ResponseSlope(si, 2), p.ResponseSlope(0, si, c.LatMs[si], 2); got != want {
			t.Errorf("controller slope[%d] = %v, problem slope = %v", si, got, want)
		}
	}
}

// TestSolverMetricsMatchEngine asserts the published lla_solver_* metrics
// agree with the engine's own accounting: rounds count the Steps taken while
// observed, and the fallback counter tracks SolverFallbacks exactly.
func TestSolverMetricsMatchEngine(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Workers: 1, PriceSolver: price.SolverNewton})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := obs.NewRegistry()
	e.Observe(&obs.Observer{Metrics: reg})
	e.Run(120, nil)

	// The registry returns the same handles for the same name and labels.
	sm := obs.NewSolverMetrics(reg, string(price.SolverNewton))
	if got := sm.Rounds.Value(); got != 120 {
		t.Errorf("lla_solver_rounds_total = %d, want 120", got)
	}
	if got, want := sm.Fallbacks.Value(), int64(e.SolverFallbacks()); got != want {
		t.Errorf("lla_solver_fallbacks_total = %d, engine SolverFallbacks = %d", got, want)
	}
	if e.SolverFallbacks() == 0 {
		t.Error("newton on the base workload should exercise the safeguard at least once")
	}
	if resid := sm.Residual.Value(); resid < 0 {
		t.Errorf("lla_solver_residual_max = %v, want >= 0", resid)
	}
}
