package core

import (
	"lla/internal/workload"
)

// ReplaceWorkload swaps the engine's workload for a new one — tasks may
// join, leave or change structure — while warm-starting the optimizer from
// the current state: resource prices carry over by resource ID, and the
// latencies and path prices of tasks that survive (same name, same subtask
// names, same path count) carry over as well. The paper's system runs
// continuously as applications come and go (Section 1); warm-started prices
// re-converge far faster than a cold restart because the congestion
// landscape of unchanged resources is already priced.
func (e *Engine) ReplaceWorkload(w *workload.Workload) error {
	next, err := NewEngine(w, e.cfg)
	if err != nil {
		return err
	}

	// Carry resource prices over by ID.
	oldMu := make(map[string]float64, len(e.p.Resources))
	for ri := range e.p.Resources {
		oldMu[e.p.Resources[ri].ID] = e.agents[ri].Mu
	}
	for ri := range next.p.Resources {
		if mu, ok := oldMu[next.p.Resources[ri].ID]; ok {
			next.agents[ri].Mu = mu
		}
	}

	// Carry surviving tasks' latencies and path prices over by name.
	oldByName := make(map[string]int, len(e.p.Tasks))
	for ti := range e.p.Tasks {
		oldByName[e.p.Tasks[ti].Name] = ti
	}
	for ti := range next.p.Tasks {
		oi, ok := oldByName[next.p.Tasks[ti].Name]
		if !ok {
			continue
		}
		oldTask, newTask := &e.p.Tasks[oi], &next.p.Tasks[ti]
		if len(oldTask.SubtaskNames) != len(newTask.SubtaskNames) ||
			len(oldTask.Paths) != len(newTask.Paths) {
			continue // structure changed: start this task fresh
		}
		same := true
		for si := range newTask.SubtaskNames {
			if oldTask.SubtaskNames[si] != newTask.SubtaskNames[si] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		copy(next.controllers[ti].LatMs, e.controllers[oi].LatMs)
		copy(next.controllers[ti].Lambda, e.controllers[oi].Lambda)
		// Re-clamp carried latencies into the (possibly changed) bounds.
		for si := range next.controllers[ti].LatMs {
			next.controllers[ti].LatMs[si] = clamp(next.controllers[ti].LatMs[si],
				newTask.LatMinMs[si], newTask.LatMaxMs[si])
		}
	}

	next.refreshResourceState()
	// Retire the old worker pool before the overwrite: next has never
	// stepped, so its pool field is nil and the replacement engine respawns
	// workers lazily on its first parallel Step.
	e.Close()
	*e = *next
	return nil
}
