package core

import (
	"lla/internal/workload"
)

// ReplaceWorkload swaps the engine's workload for a new one — tasks may
// join, leave or change structure — while warm-starting the optimizer from
// the current state via CarryFrom: resource prices carry over by resource
// ID, and the latencies and path prices of tasks that survive (same name,
// same subtask names, same path count) carry over as well. The paper's
// system runs continuously as applications come and go (Section 1);
// warm-started prices re-converge far faster than a cold restart because
// the congestion landscape of unchanged resources is already priced.
func (e *Engine) ReplaceWorkload(w *workload.Workload) error {
	next, err := NewEngine(w, e.cfg)
	if err != nil {
		return err
	}
	next.CarryFrom(e)
	// Retire the old worker pool before the overwrite: next has never
	// stepped, so its pool field is nil and the replacement engine respawns
	// workers lazily on its first parallel Step.
	e.Close()
	*e = *next
	return nil
}
