// Package errcorr implements the paper's online model error correction
// (Section 6.3). The share model's latency prediction (c+l)/share is not
// always accurate — job releases on a shared resource are not synchronized,
// so the model over-predicts. The corrector compares high-percentile
// measured latencies against the model's prediction, maintains an additive
// error with exponential smoothing, and feeds it back into the optimizer's
// share functions (share = (c+l)/(lat − err)).
package errcorr

import (
	"fmt"
	"math"

	"lla/internal/stats"
)

// Config parametrizes a corrector.
type Config struct {
	// Alpha is the exponential-smoothing factor in (0,1] (default 0.3).
	Alpha float64
	// Percentile is the sample percentile compared against the model's
	// prediction, in (0,1). The paper uses "high percentile samples
	// (greater than 90th percentile)"; the default is 0.95.
	Percentile float64
	// MinSamples is the number of samples required before a correction is
	// produced (default 20).
	MinSamples int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Percentile == 0 {
		c.Percentile = 0.95
	}
	if c.MinSamples == 0 {
		c.MinSamples = 20
	}
	return c
}

// Corrector tracks the additive model error of one subtask.
type Corrector struct {
	cfg  Config
	ewma *stats.EWMA
}

// New returns a corrector.
func New(cfg Config) (*Corrector, error) {
	cfg = cfg.withDefaults()
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("errcorr: alpha %v outside (0,1]", cfg.Alpha)
	}
	if cfg.Percentile <= 0 || cfg.Percentile >= 1 {
		return nil, fmt.Errorf("errcorr: percentile %v outside (0,1)", cfg.Percentile)
	}
	if cfg.MinSamples < 1 {
		return nil, fmt.Errorf("errcorr: MinSamples %d < 1", cfg.MinSamples)
	}
	return &Corrector{cfg: cfg, ewma: stats.NewEWMA(cfg.Alpha)}, nil
}

// Observe folds one measurement period into the error estimate: samples are
// the period's measured latencies, predictedMs the model's current latency
// prediction for the subtask. It returns true when the estimate was updated
// (enough samples were available).
func (c *Corrector) Observe(samples *stats.Reservoir, predictedMs float64) bool {
	if samples.Count() < c.cfg.MinSamples {
		return false
	}
	measured := samples.Quantile(c.cfg.Percentile)
	if math.IsNaN(measured) {
		return false
	}
	c.ewma.Add(measured - predictedMs)
	return true
}

// ErrMs returns the smoothed additive error (measured − modeled), or 0
// before any observation. A negative value means the model over-predicts.
func (c *Corrector) ErrMs() float64 {
	if !c.ewma.Initialized() {
		return 0
	}
	return c.ewma.Value()
}

// Initialized reports whether at least one period has been folded in.
func (c *Corrector) Initialized() bool { return c.ewma.Initialized() }

// Reset forgets all history.
func (c *Corrector) Reset() { c.ewma.Reset() }
