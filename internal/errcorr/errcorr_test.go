package errcorr

import (
	"math"
	"testing"

	"lla/internal/stats"
)

func reservoirOf(values ...float64) *stats.Reservoir {
	r := stats.NewReservoir(1024)
	for _, v := range values {
		r.Add(v)
	}
	return r
}

func constSamples(v float64, n int) *stats.Reservoir {
	r := stats.NewReservoir(1024)
	for i := 0; i < n; i++ {
		r.Add(v)
	}
	return r
}

func TestCorrectorLearnsNegativeError(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.ErrMs() != 0 || c.Initialized() {
		t.Fatal("fresh corrector should report zero error")
	}
	// Model predicts 35ms; measured p95 is 17.5ms.
	for i := 0; i < 50; i++ {
		if !c.Observe(constSamples(17.5, 100), 35) {
			t.Fatal("observation rejected")
		}
	}
	if got := c.ErrMs(); math.Abs(got-(-17.5)) > 0.1 {
		t.Errorf("ErrMs = %v, want ≈ -17.5", got)
	}
}

func TestCorrectorUsesHighPercentile(t *testing.T) {
	c, err := New(Config{Percentile: 0.9, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 100 samples: 99 at 10ms, 1 at 100ms -> p90 = 10.
	r := stats.NewReservoir(1024)
	for i := 0; i < 99; i++ {
		r.Add(10)
	}
	r.Add(100)
	c.Observe(r, 20)
	got := c.ErrMs()
	if math.Abs(got-(-10)) > 1.5 {
		t.Errorf("ErrMs = %v, want ≈ -10 (p90-based)", got)
	}
}

func TestCorrectorRequiresMinSamples(t *testing.T) {
	c, err := New(Config{MinSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Observe(reservoirOf(1, 2, 3), 5) {
		t.Error("observation with too few samples should be rejected")
	}
	if c.ErrMs() != 0 {
		t.Errorf("ErrMs = %v, want 0", c.ErrMs())
	}
}

func TestCorrectorSmoothing(t *testing.T) {
	c, err := New(Config{Alpha: 0.5, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(constSamples(10, 10), 20) // err -10
	c.Observe(constSamples(20, 10), 20) // err 0 -> smoothed -5
	if got := c.ErrMs(); math.Abs(got-(-5)) > 1e-9 {
		t.Errorf("ErrMs = %v, want -5", got)
	}
	c.Reset()
	if c.ErrMs() != 0 || c.Initialized() {
		t.Error("Reset did not clear state")
	}
}

func TestCorrectorConfigValidation(t *testing.T) {
	bad := []Config{
		{Alpha: -1},
		{Alpha: 2},
		{Percentile: -0.5},
		{Percentile: 1.5},
		{MinSamples: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v) should fail", i, cfg)
		}
	}
}
