// Package recover implements crash-safe checkpointing for the LLA engine
// (DESIGN.md §13): a versioned, checksummed binary codec over the full
// optimizer state — dual prices, latencies, step-sizer and solver internals,
// sparse active-set fingerprints, admission quarantine clocks, and the
// workload identity — plus an atomic write-rename Writer and a Restore that
// resumes the run bitwise-identically to the uninterrupted one.
//
// The dual prices are a compact, sufficient summary of optimization
// progress (the property the paper's online setting leans on), so a
// checkpoint is small — a few hundred bytes per task — and a restore
// re-converges warm in a handful of rounds instead of a cold re-run.
package recover

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"

	"lla/internal/admit"
	"lla/internal/core"
	"lla/internal/price"
	"lla/internal/workload"
)

// Format envelope: magic, a format version, the payload length, the payload,
// and a CRC-32 (IEEE) of the payload. Every multi-byte integer is
// little-endian; every slice and string is u32-length-prefixed. Decoding is
// defensive end to end — truncated, bit-flipped or version-skewed inputs
// produce errors, never panics and never a silently partial load.
const (
	ckptMagic   = "LLACKPT\x00"
	ckptVersion = 1
)

// Checkpoint is one durable snapshot of a running system.
type Checkpoint struct {
	// Epoch is the coordinator generation the snapshot was taken under
	// (failover fencing, DESIGN.md §13); standalone engines leave it 0.
	Epoch uint64
	// Seed identifies the workload/trace generation seed.
	Seed int64
	// Converged marks an on-converged checkpoint (vs a periodic one).
	Converged bool
	// Solver is the price solver the engine state belongs to.
	Solver price.Solver
	// Workload is the full workload the engine was optimizing; Restore
	// rebuilds the engine from it.
	Workload *workload.Workload
	// Engine is the complete optimizer state.
	Engine core.EngineState
	// Admit carries the admission controller's event counter and quarantine
	// clocks when one is checkpointed (nil otherwise).
	Admit *admit.State
}

// CaptureOptions parameterize Capture.
type CaptureOptions struct {
	Epoch     uint64
	Seed      int64
	Converged bool
	// Admit, when non-nil, has its state captured into the checkpoint.
	Admit *admit.Controller
}

// Capture snapshots a live engine (and optionally its admission controller)
// into a Checkpoint. Call it between Steps, like the engine's mutators.
func Capture(eng *core.Engine, opts CaptureOptions) *Checkpoint {
	cp := &Checkpoint{
		Epoch:     opts.Epoch,
		Seed:      opts.Seed,
		Converged: opts.Converged,
		Solver:    eng.Config().PriceSolver,
		Workload:  eng.CurrentWorkload(),
		Engine:    eng.CaptureState(),
	}
	if opts.Admit != nil {
		st := opts.Admit.State()
		cp.Admit = &st
	}
	return cp
}

// Restore builds a fresh engine from the checkpoint's workload and loads the
// checkpointed state into it, resuming the run bitwise. cfg supplies the
// bitwise-neutral knobs (Workers, Sparse) and must otherwise match the
// capturing configuration (step policy, weight mode); the price solver is
// forced from the checkpoint so a flag mismatch cannot silently load
// cross-solver state.
func Restore(cp *Checkpoint, cfg core.Config) (*core.Engine, error) {
	cfg.PriceSolver = cp.Solver
	eng, err := core.NewEngine(cp.Workload, cfg)
	if err != nil {
		return nil, fmt.Errorf("recover: rebuilding engine from checkpoint workload: %w", err)
	}
	if err := eng.RestoreState(cp.Engine); err != nil {
		eng.Close()
		return nil, fmt.Errorf("recover: %w", err)
	}
	return eng, nil
}

// WorkloadHash returns the identity hash of the checkpoint's workload: the
// SHA-256 of its canonical JSON encoding (deterministic — the encoder emits
// slices in compiled order, never map order). Nodes compare it to fence a
// coordinator restored from a checkpoint of a different workload.
func (cp *Checkpoint) WorkloadHash() ([32]byte, error) {
	b, err := json.Marshal(cp.Workload)
	if err != nil {
		return [32]byte{}, fmt.Errorf("recover: hashing workload: %w", err)
	}
	return sha256.Sum256(b), nil
}

// Encode serializes the checkpoint: envelope, payload, checksum.
func (cp *Checkpoint) Encode() ([]byte, error) {
	wj, err := json.Marshal(cp.Workload)
	if err != nil {
		return nil, fmt.Errorf("recover: encoding workload: %w", err)
	}
	hash := sha256.Sum256(wj)

	var p payload
	p.u64(cp.Epoch)
	p.i64(cp.Seed)
	p.bool(cp.Converged)
	p.str(string(cp.Solver))
	p.bytes(wj)
	p.raw(hash[:])
	encodeEngine(&p, &cp.Engine)
	if cp.Admit == nil {
		p.u8(0)
	} else {
		p.u8(1)
		p.i64(int64(cp.Admit.Event))
		p.u32(uint32(len(cp.Admit.Quarantine)))
		for _, q := range cp.Admit.Quarantine {
			p.str(q.Name)
			p.i64(int64(q.Strikes))
			p.i64(int64(q.Until))
		}
	}

	out := make([]byte, 0, len(ckptMagic)+2+4+len(p.b)+4)
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint16(out, ckptVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.b)))
	out = append(out, p.b...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p.b))
	return out, nil
}

// Decode parses and validates an encoded checkpoint. Any corruption —
// truncation, bit flips (caught by the CRC or the workload hash), an
// unsupported version, trailing garbage, or internal inconsistencies — is an
// error.
func Decode(b []byte) (*Checkpoint, error) {
	n := len(ckptMagic)
	if len(b) < n+2+4 {
		return nil, fmt.Errorf("recover: checkpoint truncated (%d bytes)", len(b))
	}
	if string(b[:n]) != ckptMagic {
		return nil, fmt.Errorf("recover: bad checkpoint magic")
	}
	if v := binary.LittleEndian.Uint16(b[n:]); v != ckptVersion {
		return nil, fmt.Errorf("recover: unsupported checkpoint version %d (have %d)", v, ckptVersion)
	}
	plen := int64(binary.LittleEndian.Uint32(b[n+2:]))
	body := b[n+2+4:]
	if int64(len(body)) != plen+4 {
		return nil, fmt.Errorf("recover: checkpoint payload length %d does not match %d remaining bytes", plen, len(body)-4)
	}
	pay := body[:plen]
	if got, want := crc32.ChecksumIEEE(pay), binary.LittleEndian.Uint32(body[plen:]); got != want {
		return nil, fmt.Errorf("recover: checkpoint checksum mismatch (corrupt)")
	}
	return decodePayload(pay)
}

// decodePayload parses the checksummed payload body.
func decodePayload(pay []byte) (*Checkpoint, error) {
	r := &reader{b: pay}
	cp := &Checkpoint{}
	cp.Epoch = r.u64()
	cp.Seed = r.i64()
	cp.Converged = r.bool()
	solver, err := price.ParseSolver(r.str())
	if err != nil && r.err == nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	cp.Solver = solver
	wj := r.bytes()
	var hash [32]byte
	r.raw(hash[:])
	if r.err != nil {
		return nil, r.err
	}
	if sha256.Sum256(wj) != hash {
		return nil, fmt.Errorf("recover: workload hash mismatch (corrupt or cross-version checkpoint)")
	}
	w := &workload.Workload{}
	if err := json.Unmarshal(wj, w); err != nil {
		return nil, fmt.Errorf("recover: decoding checkpoint workload: %w", err)
	}
	cp.Workload = w
	if err := decodeEngine(r, &cp.Engine); err != nil {
		return nil, err
	}
	switch r.u8() {
	case 0:
	case 1:
		st := &admit.State{Event: int(r.i64())}
		n := r.len(16) // name + two i64s per entry, minimum
		for i := 0; i < n && r.err == nil; i++ {
			st.Quarantine = append(st.Quarantine, admit.QuarantineEntry{
				Name: r.str(), Strikes: int(r.i64()), Until: int(r.i64()),
			})
		}
		cp.Admit = st
	default:
		if r.err == nil {
			return nil, fmt.Errorf("recover: bad admission-state tag")
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("recover: %d trailing bytes after checkpoint payload", len(r.b)-r.off)
	}
	return cp, nil
}

// encodeEngine appends the engine-state section.
func encodeEngine(p *payload, st *core.EngineState) {
	p.i64(int64(st.Iteration))
	p.u32(uint32(len(st.LatMs)))
	for ti := range st.LatMs {
		p.f64s(st.LatMs[ti])
		p.f64s(st.Lambda[ti])
		p.f64s(st.PathGamma[ti])
		p.f64s(st.ErrMs[ti])
	}
	p.f64s(st.Mu)
	p.f64s(st.AgentGamma)
	p.f64s(st.ShareSums)
	p.bools(st.Congested)
	p.f64s(st.FpMu)
	p.bools(st.FpCong)
	p.bools(st.CtlSolved)
	p.bools(st.CtlStable)
	p.bools(st.LatChanged)
	p.bools(st.AgentStable)
	p.bools(st.SumValid)
	p.u64(st.Sparse.Iterations)
	p.u64(st.Sparse.SkippedSolves)
	p.u64(st.Sparse.ExecutedSolves)
	p.u64(st.Sparse.CleanResources)
	p.u64(st.Sparse.RepricedResources)
	p.f64(st.DynDelta)
	switch {
	case st.Dyn != nil:
		p.u8(1)
		p.str(string(st.Dyn.Solver))
		p.f64s(st.Dyn.Gammas)
		p.u64(st.Dyn.Fallbacks)
		p.i64(int64(st.Dyn.Window))
		p.u32(uint32(len(st.Dyn.Cnt)))
		for _, c := range st.Dyn.Cnt {
			p.i64(int64(c))
		}
		p.f64s(st.Dyn.Xs)
		p.f64s(st.Dyn.Fs)
		p.bools(st.Dyn.Accepted)
		p.f64s(st.Dyn.PrevAbsF)
	case st.DynReset:
		p.u8(2)
	default:
		p.u8(0)
	}
}

// decodeEngine parses the engine-state section.
func decodeEngine(r *reader, st *core.EngineState) error {
	st.Iteration = int(r.i64())
	nt := r.len(8)
	for ti := 0; ti < nt && r.err == nil; ti++ {
		st.LatMs = append(st.LatMs, r.f64s())
		st.Lambda = append(st.Lambda, r.f64s())
		st.PathGamma = append(st.PathGamma, r.f64s())
		st.ErrMs = append(st.ErrMs, r.f64s())
	}
	st.Mu = r.f64s()
	st.AgentGamma = r.f64s()
	st.ShareSums = r.f64s()
	st.Congested = r.bools()
	st.FpMu = r.f64s()
	st.FpCong = r.bools()
	st.CtlSolved = r.bools()
	st.CtlStable = r.bools()
	st.LatChanged = r.bools()
	st.AgentStable = r.bools()
	st.SumValid = r.bools()
	st.Sparse.Iterations = r.u64()
	st.Sparse.SkippedSolves = r.u64()
	st.Sparse.ExecutedSolves = r.u64()
	st.Sparse.CleanResources = r.u64()
	st.Sparse.RepricedResources = r.u64()
	st.DynDelta = r.f64()
	switch r.u8() {
	case 0:
	case 1:
		ds := &price.DynamicsState{}
		solver, err := price.ParseSolver(r.str())
		if err != nil && r.err == nil {
			return fmt.Errorf("recover: %w", err)
		}
		ds.Solver = solver
		ds.Gammas = r.f64s()
		ds.Fallbacks = r.u64()
		ds.Window = int(r.i64())
		nc := r.len(8)
		for i := 0; i < nc && r.err == nil; i++ {
			ds.Cnt = append(ds.Cnt, int(r.i64()))
		}
		ds.Xs = r.f64s()
		ds.Fs = r.f64s()
		ds.Accepted = r.bools()
		ds.PrevAbsF = r.f64s()
		st.Dyn = ds
	case 2:
		st.DynReset = true
	default:
		if r.err == nil {
			return fmt.Errorf("recover: bad solver-state tag")
		}
	}
	return r.err
}

// payload is the append-only encode buffer.
type payload struct{ b []byte }

func (p *payload) u8(v uint8)   { p.b = append(p.b, v) }
func (p *payload) u32(v uint32) { p.b = binary.LittleEndian.AppendUint32(p.b, v) }
func (p *payload) u64(v uint64) { p.b = binary.LittleEndian.AppendUint64(p.b, v) }
func (p *payload) i64(v int64)  { p.u64(uint64(v)) }
func (p *payload) f64(v float64) {
	p.u64(math.Float64bits(v))
}
func (p *payload) bool(v bool) {
	if v {
		p.u8(1)
	} else {
		p.u8(0)
	}
}
func (p *payload) raw(b []byte)  { p.b = append(p.b, b...) }
func (p *payload) str(s string)  { p.u32(uint32(len(s))); p.b = append(p.b, s...) }
func (p *payload) bytes(b []byte) {
	p.u32(uint32(len(b)))
	p.raw(b)
}
func (p *payload) f64s(v []float64) {
	p.u32(uint32(len(v)))
	for _, x := range v {
		p.f64(x)
	}
}
func (p *payload) bools(v []bool) {
	p.u32(uint32(len(v)))
	for _, x := range v {
		p.bool(x)
	}
}

// reader is the bounds-checked decode cursor: the first failure latches err
// and every subsequent read returns zero values, so decode code can read
// linearly and check err at section boundaries. Slice lengths are validated
// against the remaining byte count before allocating, so hostile length
// prefixes cannot force huge allocations.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("recover: corrupt checkpoint: "+format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, len(r.b)-r.off)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64    { return int64(r.u64()) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) bool() bool    { return r.u8() != 0 }
func (r *reader) raw(dst []byte) { copy(dst, r.take(len(dst))) }

// len reads a u32 length prefix and validates it against the bytes left,
// assuming each element needs at least elemSize bytes.
func (r *reader) len(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.b)-r.off {
		r.fail("length prefix %d exceeds %d remaining bytes", n, len(r.b)-r.off)
		return 0
	}
	return n
}

func (r *reader) str() string {
	n := r.len(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *reader) bytes() []byte {
	n := r.len(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) f64s() []float64 {
	n := r.len(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) bools() []bool {
	n := r.len(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.bool()
	}
	return out
}
