package recover

import (
	"bytes"
	"encoding/binary"
	"testing"

	"lla/internal/admit"
	"lla/internal/core"
	"lla/internal/price"
	"lla/internal/workload"
)

// fuzzSeedCheckpoint builds one real encoded checkpoint (Anderson solver +
// admission state, the deepest payload shape) for the fuzz corpus.
func fuzzSeedCheckpoint(f *testing.F) []byte {
	f.Helper()
	w, err := workload.Replicate(workload.Base(), 2, 4)
	if err != nil {
		f.Fatal(err)
	}
	eng, err := core.NewEngine(w, core.Config{Workers: 1, PriceSolver: price.SolverAnderson})
	if err != nil {
		f.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 15; i++ {
		eng.Step()
	}
	ctrl := admit.New(eng, admit.Config{})
	ctrl.RestoreState(admit.State{Event: 5, Quarantine: []admit.QuarantineEntry{{Name: "q", Strikes: 1, Until: 9}}})
	b, err := Capture(eng, CaptureOptions{Epoch: 2, Seed: 11, Admit: ctrl}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	return b
}

// FuzzDecodeCheckpoint hardens the checkpoint codec against arbitrary bytes,
// seeded with the same hostile shapes as the transport readFrame corpus:
// truncations, bit flips, version skew, hostile length prefixes, and
// trailing garbage must all error — never panic, never load silently.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid := fuzzSeedCheckpoint(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(ckptMagic))
	// Truncated envelope prefixes.
	for _, cut := range []int{1, len(ckptMagic), len(ckptMagic) + 2, len(ckptMagic) + 5, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Bit flips in the envelope, the payload, and the trailing CRC.
	for _, pos := range []int{0, len(ckptMagic), len(ckptMagic) + 3, len(valid) / 3, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x01
		f.Add(mut)
	}
	// Version skew.
	skew := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(skew[len(ckptMagic):], ckptVersion+1)
	f.Add(skew)
	// Hostile payload length claims far beyond the input.
	hostile := append([]byte(nil), valid[:len(ckptMagic)+2]...)
	hostile = binary.LittleEndian.AppendUint32(hostile, 0xFFFF_FF00)
	f.Add(hostile)
	// Trailing garbage after a valid checkpoint.
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err != nil {
			return // malformed input must fail cleanly
		}
		// A successful decode is a complete checkpoint: it must re-encode,
		// and the re-encoding must decode to the same payload bytes.
		b2, err := cp.Encode()
		if err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", err)
		}
		if _, err := Decode(b2); err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
	})
}

// FuzzDecodePayload drives the post-checksum payload parser directly —
// arbitrary bytes reach the deep structural decoding here without having to
// forge a matching CRC first.
func FuzzDecodePayload(f *testing.F) {
	valid := fuzzSeedCheckpoint(f)
	// The payload sits between the 14-byte envelope header and the 4-byte CRC.
	pay := valid[len(ckptMagic)+2+4 : len(valid)-4]
	f.Add(append([]byte(nil), pay...))
	f.Add([]byte{})
	for _, cut := range []int{1, 8, 17, len(pay) / 2, len(pay) - 1} {
		f.Add(append([]byte(nil), pay[:cut]...))
	}
	for _, pos := range []int{0, 8, 16, len(pay) / 4, len(pay) - 1} {
		mut := append([]byte(nil), pay...)
		mut[pos] ^= 0x80
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodePayload(data) // must not panic or hang, errors are fine
	})
}

// A hostile slice-length prefix must error without allocating the claimed
// size up front.
func TestDecodeHostileLengthAllocs(t *testing.T) {
	var p payload
	p.u64(1)                  // epoch
	p.i64(2)                  // seed
	p.bool(false)             // converged
	p.u32(0xFFFF_FF00)        // hostile solver-string length
	body := p.b
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := decodePayload(body); err == nil {
			t.Fatal("hostile length prefix decoded successfully")
		}
	})
	if allocs > 10 {
		t.Errorf("hostile length prefix cost %.0f allocations per decode", allocs)
	}
}

// The envelope rejects inputs whose declared payload length disagrees with
// the byte count, in both directions.
func TestDecodeLengthMismatch(t *testing.T) {
	valid := func() []byte {
		w := workload.Base()
		eng, err := core.NewEngine(w, core.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		b, err := Capture(eng, CaptureOptions{}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}()
	short := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(short[len(ckptMagic)+2:], uint32(len(valid))) // claims more than present
	if _, err := Decode(short); err == nil {
		t.Fatal("oversized payload claim decoded successfully")
	}
	if !bytes.HasPrefix(valid, []byte(ckptMagic)) {
		t.Fatal("encoded checkpoint missing magic")
	}
}
