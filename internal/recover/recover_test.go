package recover

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lla/internal/admit"
	"lla/internal/core"
	"lla/internal/price"
	"lla/internal/workload"
)

// newRunEngine builds an engine on the Fig 6-scale workload and steps it.
func newRunEngine(t *testing.T, solver price.Solver, steps int) *core.Engine {
	t.Helper()
	w, err := workload.Replicate(workload.Base(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(w, core.Config{Workers: 1, PriceSolver: solver})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	for i := 0; i < steps; i++ {
		eng.Step()
	}
	return eng
}

// requireProbeEqual compares two engines' probes bitwise.
func requireProbeEqual(t *testing.T, step int, a, b *core.Engine) {
	t.Helper()
	pa, pb := a.Probe(), b.Probe()
	if pa != pb {
		t.Fatalf("step %d: probes diverged:\n original %+v\n restored %+v", step, pa, pb)
	}
}

// TestCheckpointRoundTrip: Capture → Encode → Decode → Restore resumes the
// run bitwise for every solver.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, solver := range price.Solvers() {
		t.Run(string(solver), func(t *testing.T) {
			eng := newRunEngine(t, solver, 40)
			cp := Capture(eng, CaptureOptions{Epoch: 3, Seed: 42, Converged: true})
			b, err := cp.Encode()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := Decode(b)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Epoch != 3 || dec.Seed != 42 || !dec.Converged || dec.Solver != solver {
				t.Fatalf("metadata did not round-trip: %+v", dec)
			}
			h1, _ := cp.WorkloadHash()
			h2, _ := dec.WorkloadHash()
			if h1 != h2 {
				t.Fatal("workload hash changed across the round trip")
			}
			restored, err := Restore(dec, core.Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			requireProbeEqual(t, 0, eng, restored)
			for i := 0; i < 80; i++ {
				eng.Step()
				restored.Step()
				requireProbeEqual(t, i+1, eng, restored)
			}
		})
	}
}

// TestCheckpointCarriesAdmitState: quarantine clocks survive the round trip.
func TestCheckpointCarriesAdmitState(t *testing.T) {
	eng := newRunEngine(t, price.SolverGradient, 30)
	ctrl := admit.New(eng, admit.Config{})
	st := admit.State{Event: 17, Quarantine: []admit.QuarantineEntry{
		{Name: "burst-3", Strikes: 2, Until: 21},
		{Name: "web-9", Strikes: 1, Until: 19},
	}}
	ctrl.RestoreState(st)

	cp := Capture(eng, CaptureOptions{Admit: ctrl})
	b, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admit == nil {
		t.Fatal("admission state missing after round trip")
	}
	got := *dec.Admit
	if got.Event != st.Event || len(got.Quarantine) != len(st.Quarantine) {
		t.Fatalf("admission state = %+v, want %+v", got, st)
	}
	for i := range st.Quarantine {
		if got.Quarantine[i] != st.Quarantine[i] {
			t.Fatalf("quarantine[%d] = %+v, want %+v", i, got.Quarantine[i], st.Quarantine[i])
		}
	}
}

// TestDecodeRejectsCorruption: truncations, bit flips and version skew all
// error; none load silently.
func TestDecodeRejectsCorruption(t *testing.T) {
	eng := newRunEngine(t, price.SolverAnderson, 25)
	b, err := Capture(eng, CaptureOptions{}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b); err != nil {
		t.Fatalf("pristine checkpoint failed to decode: %v", err)
	}
	for cut := 0; cut < len(b); cut += 97 {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	for pos := 0; pos < len(b); pos += 131 {
		mut := append([]byte(nil), b...)
		mut[pos] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", pos)
		}
	}
	skew := append([]byte(nil), b...)
	skew[len(ckptMagic)] = 0xFE // version field
	if _, err := Decode(skew); err == nil {
		t.Fatal("version-skewed checkpoint decoded successfully")
	}
	if _, err := Decode(append(append([]byte(nil), b...), 0xAA)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
}

// TestWriterAtomicAndPruned: Save publishes complete files only, keeps the
// configured generation count, and Latest falls back past a corrupted tail.
func TestWriterAtomicAndPruned(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := newRunEngine(t, price.SolverGradient, 0)
	var lastPath string
	for i := 0; i < 4; i++ {
		for j := 0; j < 10; j++ {
			eng.Step()
		}
		lastPath, err = w.Save(Capture(eng, CaptureOptions{Seed: 1}))
		if err != nil {
			t.Fatal(err)
		}
	}
	if names := listCheckpoints(dir); len(names) != 2 {
		t.Fatalf("writer kept %d checkpoints, want 2: %v", len(names), names)
	}
	if w.Saves() != 4 || w.LastBytes() == 0 {
		t.Fatalf("writer counters: saves=%d lastBytes=%d", w.Saves(), w.LastBytes())
	}

	cp, path, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != lastPath {
		t.Fatalf("Latest returned %s, want %s", path, lastPath)
	}
	if cp.Engine.Iteration != 40 {
		t.Fatalf("latest checkpoint at iteration %d, want 40", cp.Engine.Iteration)
	}

	// Corrupt the newest file: Latest must fall back to the older one.
	b, err := os.ReadFile(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(lastPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, path, err = Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path == lastPath {
		t.Fatal("Latest returned the corrupted checkpoint")
	}
	if cp.Engine.Iteration != 30 {
		t.Fatalf("fallback checkpoint at iteration %d, want 30", cp.Engine.Iteration)
	}

	// No temp litter after successful saves.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestLatestEmptyDir reports os.ErrNotExist for a checkpoint-free directory.
func TestLatestEmptyDir(t *testing.T) {
	if _, _, err := Latest(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Latest on empty dir: %v, want ErrNotExist", err)
	}
}
