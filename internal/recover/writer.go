package recover

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ckptExt and ckptPrefix name checkpoint files: ckpt-<generation>.llackpt,
// zero-padded so lexical order is save order. The generation is the Writer's
// own monotone counter, not the engine iteration: workload churn resets the
// engine's iteration counter (ReplaceWorkload), so iteration-keyed names
// would sort a newer checkpoint behind an older one and Latest would resume
// from stale state.
const (
	ckptPrefix = "ckpt-"
	ckptExt    = ".llackpt"
)

// DefaultKeep is how many checkpoints a Writer retains when not configured:
// enough that one torn/corrupt tail file never loses the run.
const DefaultKeep = 3

// Writer persists checkpoints into a directory with the WAL discipline:
// encode, write to a temp file, fsync, rename into place, fsync the
// directory, then prune old generations. A crash at any point leaves either
// the previous set of complete checkpoints or the previous set plus one new
// complete checkpoint — never a torn file under a checkpoint name.
type Writer struct {
	dir  string
	keep int
	// gen is the next generation number, seeded past the directory's existing
	// checkpoints so a restarted writer keeps appending to the same sequence.
	gen uint64
	// saves counts successful Save calls (telemetry hook for the callers'
	// lla_recover_checkpoints_total).
	saves uint64
	// lastBytes is the size of the most recent encoded checkpoint.
	lastBytes int
}

// NewWriter builds a writer rooted at dir (created if missing), retaining
// keep generations (0 = DefaultKeep).
func NewWriter(dir string, keep int) (*Writer, error) {
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recover: creating checkpoint dir: %w", err)
	}
	w := &Writer{dir: dir, keep: keep}
	for _, name := range listCheckpoints(dir) {
		if g, ok := parseGeneration(name); ok && g >= w.gen {
			w.gen = g + 1
		}
	}
	return w, nil
}

// parseGeneration extracts the generation number from a checkpoint filename.
func parseGeneration(name string) (uint64, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptExt)
	g, err := strconv.ParseUint(s, 10, 64)
	return g, err == nil
}

// Dir returns the checkpoint directory.
func (w *Writer) Dir() string { return w.dir }

// Saves returns the count of successful Save calls.
func (w *Writer) Saves() uint64 { return w.saves }

// LastBytes returns the encoded size of the most recent checkpoint.
func (w *Writer) LastBytes() int { return w.lastBytes }

// Save encodes and durably writes one checkpoint, returning its final path.
func (w *Writer) Save(cp *Checkpoint) (string, error) {
	b, err := cp.Encode()
	if err != nil {
		return "", err
	}
	final := filepath.Join(w.dir, fmt.Sprintf("%s%012d%s", ckptPrefix, w.gen, ckptExt))
	tmp, err := os.CreateTemp(w.dir, ckptPrefix+"*.tmp")
	if err != nil {
		return "", fmt.Errorf("recover: creating temp checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("recover: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("recover: publishing checkpoint: %w", err)
	}
	// Persist the rename itself; without this a crash can roll the directory
	// back to a state where the temp file never existed.
	if d, err := os.Open(w.dir); err == nil {
		d.Sync()
		d.Close()
	}
	w.gen++
	w.saves++
	w.lastBytes = len(b)
	w.prune()
	return final, nil
}

// prune removes all but the newest keep checkpoints (best effort).
func (w *Writer) prune() {
	names := listCheckpoints(w.dir)
	for len(names) > w.keep {
		os.Remove(filepath.Join(w.dir, names[0]))
		names = names[1:]
	}
}

// listCheckpoints returns the checkpoint filenames in dir, oldest first.
func listCheckpoints(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasPrefix(n, ckptPrefix) && strings.HasSuffix(n, ckptExt) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Latest loads the newest decodable checkpoint in dir, skipping (but
// reporting in the error on total failure) corrupt files — a torn write or a
// flipped bit in the newest generation falls back to the one before it.
// It returns the checkpoint and its path; os.ErrNotExist when the directory
// holds no checkpoint at all.
func Latest(dir string) (*Checkpoint, string, error) {
	names := listCheckpoints(dir)
	if len(names) == 0 {
		return nil, "", fmt.Errorf("recover: no checkpoints in %s: %w", dir, os.ErrNotExist)
	}
	var lastErr error
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		b, err := os.ReadFile(path)
		if err != nil {
			lastErr = err
			continue
		}
		cp, err := Decode(b)
		if err != nil {
			lastErr = err
			continue
		}
		return cp, path, nil
	}
	return nil, "", fmt.Errorf("recover: every checkpoint in %s is unreadable (last: %w)", dir, lastErr)
}
