package wire

import (
	"fmt"
	"hash/fnv"
)

// Dict is the shared name dictionary that lets frames refer to resources,
// tasks and subtasks by small varint indexes instead of inline strings.
// Both peers derive it deterministically from the same compiled workload
// (compiled resource/task order), and the negotiation handshake compares a
// 64-bit hash of the contents: peers whose dictionaries disagree fall back
// to JSON rather than risk misnaming an entity (PROTOCOL.md §5).
//
// A Dict is immutable after construction and safe for concurrent use.
type Dict struct {
	resources []string
	tasks     []string
	subs      [][]string

	resIdx  map[string]int
	taskIdx map[string]int
	subIdx  []map[string]int

	hash uint64
}

// NewDict builds a dictionary from the compiled resource ids, task names,
// and per-task subtask names (subs[i] lists task i's subtasks; subs may be
// nil when no latency frames will be dict-encoded). Duplicate names within
// a namespace are rejected: an ambiguous index could silently misroute a
// price.
func NewDict(resources, tasks []string, subs [][]string) (*Dict, error) {
	if subs != nil && len(subs) != len(tasks) {
		return nil, fmt.Errorf("wire: %d subtask lists for %d tasks", len(subs), len(tasks))
	}
	d := &Dict{
		resources: append([]string(nil), resources...),
		tasks:     append([]string(nil), tasks...),
		resIdx:    make(map[string]int, len(resources)),
		taskIdx:   make(map[string]int, len(tasks)),
		subIdx:    make([]map[string]int, len(tasks)),
	}
	for i, r := range d.resources {
		if _, dup := d.resIdx[r]; dup {
			return nil, fmt.Errorf("wire: duplicate resource id %q", r)
		}
		d.resIdx[r] = i
	}
	d.subs = make([][]string, len(tasks))
	for i, t := range d.tasks {
		if _, dup := d.taskIdx[t]; dup {
			return nil, fmt.Errorf("wire: duplicate task name %q", t)
		}
		d.taskIdx[t] = i
		if subs != nil {
			d.subs[i] = append([]string(nil), subs[i]...)
		}
		d.subIdx[i] = make(map[string]int, len(d.subs[i]))
		for j, s := range d.subs[i] {
			if _, dup := d.subIdx[i][s]; dup {
				return nil, fmt.Errorf("wire: duplicate subtask name %q in task %q", s, t)
			}
			d.subIdx[i][s] = j
		}
	}
	d.hash = d.computeHash()
	return d, nil
}

// Hash returns the dictionary content hash exchanged during negotiation.
// A nil dictionary hashes to 0, so two dictless peers negotiate binary
// string-mode frames.
func (d *Dict) Hash() uint64 {
	if d == nil {
		return 0
	}
	return d.hash
}

// computeHash folds every name, with namespace markers and terminators so
// that ["ab"] and ["a","b"] hash differently, through FNV-1a.
func (d *Dict) computeHash() uint64 {
	h := fnv.New64a()
	for _, r := range d.resources {
		h.Write([]byte{'r'})
		h.Write([]byte(r))
		h.Write([]byte{0})
	}
	for i, t := range d.tasks {
		h.Write([]byte{'t'})
		h.Write([]byte(t))
		h.Write([]byte{0})
		for _, s := range d.subs[i] {
			h.Write([]byte{'s'})
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}
