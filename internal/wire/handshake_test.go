package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// accept runs the server side of a handshake against a client hello.
func accept(t *testing.T, server *Codec, hello []byte) (ack []byte, ok bool) {
	t.Helper()
	r := bytes.NewReader(hello)
	var prefix [4]byte
	if _, err := r.Read(prefix[:]); err != nil {
		t.Fatal(err)
	}
	if !server.Sniff(prefix[:]) {
		t.Fatal("server did not sniff the hello")
	}
	ack, ok, err := server.Accept(prefix[:], r)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	return ack, ok
}

func TestHandshakeAgreesBinary(t *testing.T) {
	d := testDict(t)
	client, server := NewCodec(d), NewCodec(d)
	ack, ok := accept(t, server, client.Hello())
	if !ok {
		t.Fatal("matching codecs negotiated JSON")
	}
	got, err := client.ReadAck(bytes.NewReader(ack))
	if err != nil || !got {
		t.Fatalf("client ReadAck = %v, %v; want binary", got, err)
	}
}

func TestHandshakeDictlessPairAgreesBinary(t *testing.T) {
	client, server := NewCodec(nil), NewCodec(nil)
	ack, ok := accept(t, server, client.Hello())
	if !ok {
		t.Fatal("dictless pair negotiated JSON")
	}
	if got, err := client.ReadAck(bytes.NewReader(ack)); err != nil || !got {
		t.Fatalf("ReadAck = %v, %v", got, err)
	}
}

// TestHandshakeVersionSkewFallsBackToJSON: a future client speaking only
// version 2 and a current server share no version, so the ack says "JSON"
// and both sides keep interoperating on the legacy framing.
func TestHandshakeVersionSkewFallsBackToJSON(t *testing.T) {
	future := NewCodec(nil)
	future.minVersion, future.maxVersion = 2, 2
	server := NewCodec(nil)
	ack, ok := accept(t, server, future.Hello())
	if ok {
		t.Fatal("disjoint version ranges negotiated binary")
	}
	if got, err := future.ReadAck(bytes.NewReader(ack)); err != nil || got {
		t.Fatalf("future client ReadAck = %v, %v; want JSON fallback", got, err)
	}
	// The symmetric skew: current client, future-only server.
	ack, ok = accept(t, future, server.Hello())
	if ok {
		t.Fatal("future server agreed to binary with a v1 client")
	}
	if got, err := server.ReadAck(bytes.NewReader(ack)); err != nil || got {
		t.Fatalf("current client ReadAck = %v, %v; want JSON fallback", got, err)
	}
}

// TestHandshakeOverlappingRangesPickCommonVersion: a client advertising
// 1..2 and a v1 server settle on version 1.
func TestHandshakeOverlappingRangesPickCommonVersion(t *testing.T) {
	wide := NewCodec(nil)
	wide.maxVersion = 2
	server := NewCodec(nil)
	ack, ok := accept(t, server, wide.Hello())
	if !ok {
		t.Fatal("overlapping ranges negotiated JSON")
	}
	if ack[4] != 1 {
		t.Fatalf("negotiated version %d, want 1", ack[4])
	}
	if got, err := wide.ReadAck(bytes.NewReader(ack)); err != nil || !got {
		t.Fatalf("ReadAck = %v, %v", got, err)
	}
}

func TestHandshakeDictMismatchFallsBackToJSON(t *testing.T) {
	other, err := NewDict([]string{"different"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, server := NewCodec(testDict(t)), NewCodec(other)
	ack, ok := accept(t, server, client.Hello())
	if ok {
		t.Fatal("mismatched dictionaries negotiated binary")
	}
	if got, err := client.ReadAck(bytes.NewReader(ack)); err != nil || got {
		t.Fatalf("ReadAck = %v, %v; want JSON fallback", got, err)
	}
}

func TestHandshakeCorruptHelloRejected(t *testing.T) {
	c := NewCodec(nil)
	hello := c.Hello()
	hello[6] ^= 0xFF // dict hash byte: CRC must catch it
	r := bytes.NewReader(hello[4:])
	if _, _, err := c.Accept(hello[:4], r); err == nil {
		t.Fatal("corrupt hello accepted")
	}
}

func TestHandshakeCorruptAckRejected(t *testing.T) {
	d := testDict(t)
	client, server := NewCodec(d), NewCodec(d)
	ack, _ := accept(t, server, client.Hello())
	ack[4] ^= 0x01
	if _, err := client.ReadAck(bytes.NewReader(ack)); err == nil {
		t.Fatal("corrupt ack accepted")
	}
	if _, err := client.ReadAck(bytes.NewReader(ack[:3])); err == nil {
		t.Fatal("truncated ack accepted")
	}
}

// TestHelloRejectedByLegacyFrameReader documents the fallback mechanism:
// read as a legacy big-endian length prefix, the hello magic decodes to
// ~1.28 GB — far above the 16 MiB frame cap — so a pre-codec server
// rejects the connection immediately instead of waiting for a giant frame.
func TestHelloRejectedByLegacyFrameReader(t *testing.T) {
	if n := binary.BigEndian.Uint32(helloMagic[:]); n <= 16<<20 {
		t.Fatalf("hello magic reads as a plausible frame length %d; legacy peers would hang", n)
	}
}
