package wire

import (
	"sort"
)

// Mirror payload structs. Field names, JSON tags and declaration order
// match the internal/dist message structs exactly, so a payload
// re-marshaled after a binary round trip is byte-identical to the JSON the
// sender's legacy path would have produced (the cross-codec equivalence
// tests assert this). The structs are exported so tests, tools and the
// PROTOCOL.md examples can construct frames directly.

// PriceUpdate mirrors dist's priceMsg: one resource's price broadcast.
type PriceUpdate struct {
	Round     int     `json:"round"`
	Seq       int64   `json:"seq,omitempty"`
	Epoch     uint64  `json:"epoch,omitempty"`
	Resource  string  `json:"resource"`
	Mu        float64 `json:"mu,omitempty"`
	Congested bool    `json:"congested,omitempty"`
	Delta     bool    `json:"delta,omitempty"`
}

// ShareReport mirrors dist's latencyMsg: one controller's per-resource
// latency allocations.
type ShareReport struct {
	Round int                `json:"round"`
	Seq   int64              `json:"seq,omitempty"`
	Epoch uint64             `json:"epoch,omitempty"`
	Task  string             `json:"task"`
	LatMs map[string]float64 `json:"latMs,omitempty"`
	Delta bool               `json:"delta,omitempty"`
}

// UtilityReport mirrors dist's reportMsg.
type UtilityReport struct {
	Round   int     `json:"round"`
	Epoch   uint64  `json:"epoch,omitempty"`
	Task    string  `json:"task"`
	Utility float64 `json:"utility"`
}

// Stop mirrors dist's stopMsg.
type Stop struct {
	AfterRound int    `json:"afterRound"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// Fin mirrors dist's finMsg.
type Fin struct {
	Resource string `json:"resource"`
}

// Rejoin mirrors dist's rejoinMsg.
type Rejoin struct {
	Epoch uint64 `json:"epoch"`
}

// RejoinAck mirrors dist's rejoinAckMsg. Round may be -1 (nothing reported
// yet), hence the zigzag encoding on the wire.
type RejoinAck struct {
	Epoch uint64 `json:"epoch"`
	Task  string `json:"task"`
	Round int    `json:"round"`
}

// BoundaryPrice is one entry of the fleet aggregator's boundary-price
// broadcast (SHARDING.md): the externally owned price and congestion flag a
// shard must pin on a cross-shard resource for the next local sweep.
type BoundaryPrice struct {
	Round     int     `json:"round"`
	Resource  string  `json:"resource"`
	Mu        float64 `json:"mu"`
	Congested bool    `json:"congested,omitempty"`
}

// BoundaryDemand is one entry of a shard's boundary report: the shard's
// local share demand (and optionally demand-response curvature, for the
// diagonal-Newton aggregator) on a cross-shard resource after a local sweep.
type BoundaryDemand struct {
	Round     int     `json:"round"`
	Shard     int     `json:"shard"`
	Resource  string  `json:"resource"`
	Demand    float64 `json:"demand"`
	Curvature float64 `json:"curvature,omitempty"`
}

// Message kinds with a dedicated frame type. They mirror the internal/dist
// kind tags; any other kind rides a RAW frame.
const (
	KindPrice     = "price"
	KindLatency   = "latency"
	KindReport    = "report"
	KindStop      = "stop"
	KindFin       = "fin"
	KindRejoin    = "rejoin"
	KindRejoinAck = "rejoinAck"
	KindPriceAgg  = "priceAgg"
	KindBoundary  = "boundary"
)

// Per-entry flag bits of PRICE frames.
const (
	priceFlagCongested = 0x01
	priceFlagDelta     = 0x02
	priceFlagSeq       = 0x04
	priceFlagMu        = 0x08
	priceFlagsKnown    = priceFlagCongested | priceFlagDelta | priceFlagSeq | priceFlagMu
)

// Per-entry flag bits of LATENCY frames.
const (
	latFlagDelta  = 0x01
	latFlagSeq    = 0x02
	latFlagsKnown = latFlagDelta | latFlagSeq
)

// Per-entry flag bits of PRICE_AGG frames.
const (
	aggFlagCongested = 0x01
	aggFlagsKnown    = aggFlagCongested
)

// Per-entry flag bits of BOUNDARY frames.
const (
	bdyFlagCurvature = 0x01
	bdyFlagsKnown    = bdyFlagCurvature
)

// Address tags. Endpoint addresses follow the dist naming scheme
// ("coordinator", "res/<id>", "ctl/<task>"); the tag compresses the common
// prefixes and lets the id ride the dictionary. Any other address is a
// literal string.
const (
	addrCoordinator = 0x00
	addrResource    = 0x01
	addrController  = 0x02
	addrLiteral     = 0x03
)

// coordinatorName is dist's coordinator endpoint address.
const coordinatorName = "coordinator"

// Encode side ------------------------------------------------------------

// resRef appends a resource id, as a dictionary index in dict mode.
func (c *Codec) resRef(e *enc, id string, dict bool) {
	if dict {
		i, ok := c.dict.resIdx[id]
		if !ok {
			e.setErr(errDictMiss)
			return
		}
		e.uvarint(uint64(i))
		return
	}
	e.str(id)
}

// taskRef appends a task name and returns its dictionary index (-1 in
// string mode) for subtask resolution.
func (c *Codec) taskRef(e *enc, name string, dict bool) int {
	if dict {
		i, ok := c.dict.taskIdx[name]
		if !ok {
			e.setErr(errDictMiss)
			return -1
		}
		e.uvarint(uint64(i))
		return i
	}
	e.str(name)
	return -1
}

// subRef appends a subtask name, as an index into task ti's subtask list in
// dict mode.
func (c *Codec) subRef(e *enc, ti int, name string, dict bool) {
	if dict {
		j, ok := c.dict.subIdx[ti][name]
		if !ok {
			e.setErr(errDictMiss)
			return
		}
		e.uvarint(uint64(j))
		return
	}
	e.str(name)
}

// addr appends an endpoint address.
func (c *Codec) addr(e *enc, a string, dict bool) {
	switch {
	case a == coordinatorName:
		e.u8(addrCoordinator)
	case len(a) > 4 && a[:4] == "res/":
		e.u8(addrResource)
		c.resRef(e, a[4:], dict)
	case len(a) > 4 && a[:4] == "ctl/":
		e.u8(addrController)
		c.taskRef(e, a[4:], dict)
	default:
		e.u8(addrLiteral)
		e.str(a)
	}
}

// encPrice appends a PRICE body (entry count + entries).
func (c *Codec) encPrice(e *enc, batch []PriceUpdate, dict bool) {
	e.uvarint(uint64(len(batch)))
	for i := range batch {
		p := &batch[i]
		c.resRef(e, p.Resource, dict)
		e.svarint(int64(p.Round))
		e.uvarint(p.Epoch)
		var fl byte
		if p.Congested {
			fl |= priceFlagCongested
		}
		if p.Delta {
			fl |= priceFlagDelta
		}
		if p.Seq != 0 {
			fl |= priceFlagSeq
		}
		if !p.Delta {
			fl |= priceFlagMu
		}
		e.u8(fl)
		if fl&priceFlagSeq != 0 {
			e.svarint(p.Seq)
		}
		if fl&priceFlagMu != 0 {
			e.f64(p.Mu)
		}
	}
}

// encLatency appends a LATENCY body. Map keys are emitted sorted so the
// encoding is deterministic (and matches encoding/json's map ordering).
func (c *Codec) encLatency(e *enc, batch []ShareReport, dict bool) {
	e.uvarint(uint64(len(batch)))
	for i := range batch {
		s := &batch[i]
		ti := c.taskRef(e, s.Task, dict)
		e.svarint(int64(s.Round))
		e.uvarint(s.Epoch)
		var fl byte
		if s.Delta {
			fl |= latFlagDelta
		}
		if s.Seq != 0 {
			fl |= latFlagSeq
		}
		e.u8(fl)
		if fl&latFlagSeq != 0 {
			e.svarint(s.Seq)
		}
		if s.Delta {
			continue
		}
		keys := make([]string, 0, len(s.LatMs))
		for k := range s.LatMs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			c.subRef(e, ti, k, dict)
			e.f64(s.LatMs[k])
		}
	}
}

// encPriceAgg appends a PRICE_AGG body (entry count + entries).
func (c *Codec) encPriceAgg(e *enc, batch []BoundaryPrice, dict bool) {
	e.uvarint(uint64(len(batch)))
	for i := range batch {
		p := &batch[i]
		c.resRef(e, p.Resource, dict)
		e.svarint(int64(p.Round))
		var fl byte
		if p.Congested {
			fl |= aggFlagCongested
		}
		e.u8(fl)
		e.f64(p.Mu)
	}
}

// encBoundary appends a BOUNDARY body (entry count + entries). The curvature
// rides behind a presence flag so gradient-aggregator reports (curvature
// always zero) stay 8 bytes smaller per entry and round-trip the struct's
// omitempty JSON exactly.
func (c *Codec) encBoundary(e *enc, batch []BoundaryDemand, dict bool) {
	e.uvarint(uint64(len(batch)))
	for i := range batch {
		b := &batch[i]
		c.resRef(e, b.Resource, dict)
		e.svarint(int64(b.Round))
		e.uvarint(uint64(b.Shard))
		var fl byte
		if b.Curvature != 0 {
			fl |= bdyFlagCurvature
		}
		e.u8(fl)
		e.f64(b.Demand)
		if fl&bdyFlagCurvature != 0 {
			e.f64(b.Curvature)
		}
	}
}

// Decode side ------------------------------------------------------------

// readResRef reads a resource id.
func (c *Codec) readResRef(d *dec, dict bool) string {
	if dict {
		return c.dict.resources[d.index(len(c.dict.resources), "resource")]
	}
	return d.strN(maxStrLen)
}

// readTaskRef reads a task name, returning the dictionary index (-1 in
// string mode).
func (c *Codec) readTaskRef(d *dec, dict bool) (string, int) {
	if dict {
		i := d.index(len(c.dict.tasks), "task")
		return c.dict.tasks[i], i
	}
	return d.strN(maxStrLen), -1
}

// readSubRef reads a subtask name of task ti.
func (c *Codec) readSubRef(d *dec, ti int, dict bool) string {
	if dict {
		subs := c.dict.subs[ti]
		return subs[d.index(len(subs), "subtask")]
	}
	return d.strN(maxStrLen)
}

// readAddr reads an endpoint address.
func (c *Codec) readAddr(d *dec, dict bool) string {
	switch tag := d.u8(); tag {
	case addrCoordinator:
		return coordinatorName
	case addrResource:
		return "res/" + c.readResRef(d, dict)
	case addrController:
		name, _ := c.readTaskRef(d, dict)
		return "ctl/" + name
	case addrLiteral:
		return d.strN(maxStrLen)
	default:
		d.fail("unknown address tag 0x%02x", tag)
		return ""
	}
}

// decPrice reads a PRICE body.
func (c *Codec) decPrice(d *dec, dict bool) []PriceUpdate {
	n := d.count(maxBatch)
	out := make([]PriceUpdate, 0, min(n, 4096))
	for i := 0; i < n && d.err == nil; i++ {
		var p PriceUpdate
		p.Resource = c.readResRef(d, dict)
		p.Round = int(d.svarint())
		p.Epoch = d.uvarint()
		fl := d.u8()
		if fl&^priceFlagsKnown != 0 {
			d.fail("reserved price entry flag bits 0x%02x", fl)
		}
		p.Congested = fl&priceFlagCongested != 0
		p.Delta = fl&priceFlagDelta != 0
		if (fl&priceFlagMu != 0) == p.Delta {
			// A delta carries no price; a full update always does. Any
			// other combination is not something the encoder emits.
			d.fail("price entry flags 0x%02x: mu presence inconsistent with delta", fl)
		}
		if fl&priceFlagSeq != 0 {
			p.Seq = d.svarint()
		}
		if fl&priceFlagMu != 0 {
			p.Mu = d.f64()
		}
		out = append(out, p)
	}
	return out
}

// decPriceAgg reads a PRICE_AGG body.
func (c *Codec) decPriceAgg(d *dec, dict bool) []BoundaryPrice {
	n := d.count(maxBatch)
	out := make([]BoundaryPrice, 0, min(n, 4096))
	for i := 0; i < n && d.err == nil; i++ {
		var p BoundaryPrice
		p.Resource = c.readResRef(d, dict)
		p.Round = int(d.svarint())
		fl := d.u8()
		if fl&^byte(aggFlagsKnown) != 0 {
			d.fail("reserved price-agg entry flag bits 0x%02x", fl)
		}
		p.Congested = fl&aggFlagCongested != 0
		p.Mu = d.f64()
		out = append(out, p)
	}
	return out
}

// decBoundary reads a BOUNDARY body.
func (c *Codec) decBoundary(d *dec, dict bool) []BoundaryDemand {
	n := d.count(maxBatch)
	out := make([]BoundaryDemand, 0, min(n, 4096))
	for i := 0; i < n && d.err == nil; i++ {
		var b BoundaryDemand
		b.Resource = c.readResRef(d, dict)
		b.Round = int(d.svarint())
		b.Shard = int(d.uvarint())
		fl := d.u8()
		if fl&^byte(bdyFlagsKnown) != 0 {
			d.fail("reserved boundary entry flag bits 0x%02x", fl)
		}
		b.Demand = d.f64()
		if fl&bdyFlagCurvature != 0 {
			b.Curvature = d.f64()
			if b.Curvature == 0 {
				// Zero curvature is encoded by omitting the field; a present
				// zero would break the byte-identical JSON round trip.
				d.fail("explicit zero curvature in boundary entry")
			}
		}
		out = append(out, b)
	}
	return out
}

// decLatency reads a LATENCY body.
func (c *Codec) decLatency(d *dec, dict bool) []ShareReport {
	n := d.count(maxBatch)
	out := make([]ShareReport, 0, min(n, 4096))
	for i := 0; i < n && d.err == nil; i++ {
		var s ShareReport
		var ti int
		s.Task, ti = c.readTaskRef(d, dict)
		s.Round = int(d.svarint())
		s.Epoch = d.uvarint()
		fl := d.u8()
		if fl&^latFlagsKnown != 0 {
			d.fail("reserved latency entry flag bits 0x%02x", fl)
		}
		s.Delta = fl&latFlagDelta != 0
		if fl&latFlagSeq != 0 {
			s.Seq = d.svarint()
		}
		if !s.Delta {
			m := d.count(maxBatch)
			if m > 0 {
				s.LatMs = make(map[string]float64, min(m, 4096))
				for j := 0; j < m && d.err == nil; j++ {
					k := c.readSubRef(d, ti, dict)
					v := d.f64()
					if _, dup := s.LatMs[k]; dup {
						d.fail("duplicate subtask %q in latency entry", k)
					}
					s.LatMs[k] = v
				}
			}
		}
		out = append(out, s)
	}
	return out
}
