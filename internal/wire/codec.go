package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lla/internal/obs"
	"lla/internal/transport"
)

// Codec is the binary frame codec. It is stateless apart from metrics, so
// one Codec instance can serve every connection of a process concurrently.
// The zero value is not usable; construct with NewCodec.
type Codec struct {
	dict *Dict
	// minVersion..maxVersion is the advertised negotiation range; production
	// codecs use MinVersion..Version, tests skew them to exercise fallback.
	minVersion, maxVersion byte

	m *obs.WireMetrics
}

var _ transport.Codec = (*Codec)(nil)

// NewCodec returns a codec using the given dictionary (nil for inline
// string ids). Call Observe to attach metrics.
func NewCodec(d *Dict) *Codec {
	return &Codec{dict: d, minVersion: MinVersion, maxVersion: Version, m: &obs.WireMetrics{}}
}

// Observe registers the lla_wire_* metric set on reg (nil is a no-op).
func (c *Codec) Observe(reg *obs.Registry) {
	if reg != nil {
		c.m = obs.NewWireMetrics(reg)
	}
}

// Name implements transport.Codec.
func (c *Codec) Name() string { return "binary" }

// Encode implements transport.Codec: it renders one message as a binary
// frame. Messages whose kind or payload shape the codec does not model ride
// a RAW frame (kind string + verbatim JSON payload), so Encode fails only
// on oversize or non-finite inputs.
func (c *Codec) Encode(m transport.Message) ([]byte, error) {
	ft, flags, body, err := c.encodeBody(m, c.dict != nil)
	if errors.Is(err, errDictMiss) {
		// A name outside the negotiated dictionary (e.g. an ad-hoc client
		// address): re-encode the whole frame with inline strings.
		ft, flags, body, err = c.encodeBody(m, false)
	}
	if err != nil {
		return nil, err
	}
	if len(body) > maxBodyBytes {
		return nil, fmt.Errorf("wire: frame body of %d bytes exceeds limit", len(body))
	}
	frame := make([]byte, 0, 4+binary.MaxVarintLen32+len(body)+4)
	frame = append(frame, FrameMagic, Version, ft, flags)
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = append(frame, body...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
	c.m.FramesEncoded.Inc()
	c.m.BytesEncoded.Add(int64(len(frame)))
	if ft == FrameRaw {
		c.m.RawFrames.Inc()
	}
	return frame, nil
}

// encodeBody renders the frame body, choosing the frame type from the
// message kind and payload shape.
func (c *Codec) encodeBody(m transport.Message, dict bool) (ft, flags byte, body []byte, err error) {
	e := &enc{}
	c.addr(e, m.From, dict)
	c.addr(e, m.To, dict)
	batch := false
	switch m.Kind {
	case KindPrice:
		if ps, isBatch, ok := parsePayload[PriceUpdate](m.Payload); ok {
			ft, batch = FramePrice, isBatch
			c.encPrice(e, ps, dict)
		}
	case KindLatency:
		if ss, isBatch, ok := parsePayload[ShareReport](m.Payload); ok {
			ft, batch = FrameLatency, isBatch
			c.encLatency(e, ss, dict)
		}
	case KindReport:
		if rs, isBatch, ok := parsePayload[UtilityReport](m.Payload); ok && !isBatch {
			ft = FrameReport
			r := &rs[0]
			c.taskRef(e, r.Task, dict)
			e.svarint(int64(r.Round))
			e.uvarint(r.Epoch)
			e.f64(r.Utility)
		}
	case KindStop:
		if vs, isBatch, ok := parsePayload[Stop](m.Payload); ok && !isBatch {
			ft = FrameStop
			e.svarint(int64(vs[0].AfterRound))
			e.uvarint(vs[0].Epoch)
		}
	case KindFin:
		if vs, isBatch, ok := parsePayload[Fin](m.Payload); ok && !isBatch {
			ft = FrameFin
			c.resRef(e, vs[0].Resource, dict)
		}
	case KindRejoin:
		if vs, isBatch, ok := parsePayload[Rejoin](m.Payload); ok && !isBatch {
			ft = FrameRejoin
			e.uvarint(vs[0].Epoch)
		}
	case KindRejoinAck:
		if vs, isBatch, ok := parsePayload[RejoinAck](m.Payload); ok && !isBatch {
			ft = FrameRejoinAck
			c.taskRef(e, vs[0].Task, dict)
			e.svarint(int64(vs[0].Round))
			e.uvarint(vs[0].Epoch)
		}
	case KindPriceAgg:
		if ps, isBatch, ok := parsePayload[BoundaryPrice](m.Payload); ok {
			ft, batch = FramePriceAgg, isBatch
			c.encPriceAgg(e, ps, dict)
		}
	case KindBoundary:
		if bs, isBatch, ok := parsePayload[BoundaryDemand](m.Payload); ok {
			ft, batch = FrameBoundary, isBatch
			c.encBoundary(e, bs, dict)
		}
	}
	if ft == 0 {
		ft = FrameRaw
		e.str(m.Kind)
		e.bytes(m.Payload)
	}
	if e.err != nil {
		return 0, 0, nil, e.err
	}
	if dict {
		flags |= flagDict
	}
	if batch {
		flags |= flagBatch
	}
	return ft, flags, e.b, nil
}

// parsePayload strictly parses a JSON payload as either a single entry or
// an array of entries. Unknown fields, mismatched types, trailing data, or
// any non-object/array payload report ok=false, steering the message onto
// the RAW escape hatch instead of silently dropping information (the
// forward-evolution rule of PROTOCOL.md §7).
func parsePayload[T any](raw json.RawMessage) (entries []T, isBatch, ok bool) {
	switch firstByte(raw) {
	case '{':
		var v T
		if !strictUnmarshal(raw, &v) {
			return nil, false, false
		}
		return []T{v}, false, true
	case '[':
		v := []T{}
		if !strictUnmarshal(raw, &v) {
			return nil, false, false
		}
		return v, true, true
	default:
		return nil, false, false
	}
}

// firstByte returns the first non-whitespace byte of a JSON document (0 if
// none).
func firstByte(raw []byte) byte {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		}
		return b
	}
	return 0
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(raw []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return false
	}
	return !dec.More()
}

// Read implements transport.Codec: it consumes exactly one binary frame
// from r and reconstructs the message. The body buffer grows only as bytes
// actually arrive, so a corrupt length field on a truncated stream cannot
// force a large up-front allocation.
func (c *Codec) Read(r *bufio.Reader) (transport.Message, error) {
	msg, n, err := c.readFrame(r)
	if err != nil {
		if err != io.EOF {
			c.m.DecodeErrors.Inc()
		}
		return transport.Message{}, err
	}
	c.m.FramesDecoded.Inc()
	c.m.BytesDecoded.Add(int64(n))
	return msg, nil
}

func (c *Codec) readFrame(r *bufio.Reader) (transport.Message, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return transport.Message{}, 0, err
	}
	if hdr[0] != FrameMagic {
		return transport.Message{}, 0, fmt.Errorf("wire: bad frame magic 0x%02x", hdr[0])
	}
	if hdr[1] != Version {
		return transport.Message{}, 0, fmt.Errorf("wire: unsupported frame version %d", hdr[1])
	}
	flags := hdr[3]
	if flags&^byte(flagsKnown) != 0 {
		return transport.Message{}, 0, fmt.Errorf("wire: reserved frame flag bits 0x%02x", flags)
	}
	bodyLen, lenBytes, err := readUvarintBytes(r)
	if err != nil {
		return transport.Message{}, 0, err
	}
	if bodyLen > maxBodyBytes {
		return transport.Message{}, 0, fmt.Errorf("wire: frame body of %d bytes exceeds limit", bodyLen)
	}
	var buf bytes.Buffer
	if bodyLen <= 64<<10 {
		buf.Grow(int(bodyLen)) // typical small frame: one exact allocation
	}
	if _, err := io.CopyN(&buf, r, int64(bodyLen)); err != nil {
		return transport.Message{}, 0, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return transport.Message{}, 0, fmt.Errorf("wire: truncated frame trailer: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(lenBytes)
	crc.Write(buf.Bytes())
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != crc.Sum32() {
		return transport.Message{}, 0, fmt.Errorf("wire: frame CRC mismatch: got %08x want %08x", got, crc.Sum32())
	}
	msg, err := c.decodeBody(hdr[2], flags, buf.Bytes())
	if err != nil {
		return transport.Message{}, 0, err
	}
	total := len(hdr) + len(lenBytes) + buf.Len() + len(crcBuf)
	return msg, total, nil
}

// readUvarintBytes reads a varint byte-by-byte, returning the raw bytes for
// CRC accumulation.
func readUvarintBytes(r io.ByteReader) (uint64, []byte, error) {
	var raw [binary.MaxVarintLen64]byte
	var x uint64
	var s uint
	for i := 0; i < len(raw); i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, nil, fmt.Errorf("wire: truncated frame length: %w", err)
		}
		raw[i] = b
		if b < 0x80 {
			if i == len(raw)-1 && b > 1 {
				break // overflows uint64
			}
			return x | uint64(b)<<s, raw[:i+1], nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, nil, errors.New("wire: frame length varint overflow")
}

// decodeBody reconstructs a transport.Message from a verified frame body.
func (c *Codec) decodeBody(ft, flags byte, body []byte) (transport.Message, error) {
	dict := flags&flagDict != 0
	if dict && c.dict == nil {
		return transport.Message{}, errors.New("wire: dictionary-encoded frame but codec has no dictionary")
	}
	batch := flags&flagBatch != 0
	d := &dec{buf: body}
	var m transport.Message
	m.From = c.readAddr(d, dict)
	m.To = c.readAddr(d, dict)
	switch ft {
	case FramePrice:
		m.Kind = KindPrice
		m.Payload = marshalEntries(d, c.decPrice(d, dict), batch)
	case FrameLatency:
		m.Kind = KindLatency
		m.Payload = marshalEntries(d, c.decLatency(d, dict), batch)
	case FrameReport:
		m.Kind = KindReport
		var v UtilityReport
		v.Task, _ = c.readTaskRef(d, dict)
		v.Round = int(d.svarint())
		v.Epoch = d.uvarint()
		v.Utility = d.f64()
		m.Payload = marshalOne(d, batch, &v)
	case FrameStop:
		m.Kind = KindStop
		var v Stop
		v.AfterRound = int(d.svarint())
		v.Epoch = d.uvarint()
		m.Payload = marshalOne(d, batch, &v)
	case FrameFin:
		m.Kind = KindFin
		v := Fin{Resource: c.readResRef(d, dict)}
		m.Payload = marshalOne(d, batch, &v)
	case FrameRejoin:
		m.Kind = KindRejoin
		v := Rejoin{Epoch: d.uvarint()}
		m.Payload = marshalOne(d, batch, &v)
	case FrameRejoinAck:
		m.Kind = KindRejoinAck
		var v RejoinAck
		v.Task, _ = c.readTaskRef(d, dict)
		v.Round = int(d.svarint())
		v.Epoch = d.uvarint()
		m.Payload = marshalOne(d, batch, &v)
	case FramePriceAgg:
		m.Kind = KindPriceAgg
		m.Payload = marshalEntries(d, c.decPriceAgg(d, dict), batch)
	case FrameBoundary:
		m.Kind = KindBoundary
		m.Payload = marshalEntries(d, c.decBoundary(d, dict), batch)
	case FrameRaw:
		if batch {
			d.fail("batch flag on a RAW frame")
		}
		m.Kind = d.strN(maxStrLen)
		m.Payload = d.bytesN(maxBodyBytes)
	default:
		d.fail("unknown frame type 0x%02x", ft)
	}
	if err := d.done(); err != nil {
		return transport.Message{}, err
	}
	return m, nil
}

// marshalEntries re-marshals a decoded batch as the original JSON shape:
// a bare object unless the batch flag was set.
func marshalEntries[T any](d *dec, entries []T, batch bool) json.RawMessage {
	if d.err != nil {
		return nil
	}
	if batch {
		raw, err := json.Marshal(entries)
		if err != nil {
			d.fail("re-marshaling batch: %v", err)
			return nil
		}
		return raw
	}
	if len(entries) != 1 {
		d.fail("%d entries in an unbatched frame", len(entries))
		return nil
	}
	return marshalOne(d, false, &entries[0])
}

// marshalOne re-marshals a single decoded entry, rejecting the batch flag
// on frame types that never batch.
func marshalOne[T any](d *dec, batch bool, v *T) json.RawMessage {
	if batch {
		d.fail("batch flag on a single-entry frame")
	}
	if d.err != nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		d.fail("re-marshaling payload: %v", err)
		return nil
	}
	return raw
}
