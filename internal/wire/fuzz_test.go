package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives the defensive decoder with arbitrary bytes. The
// seed corpus is captured real frames (every frame type, both id modes),
// the handshake blobs, and a few deliberately broken variants; the fuzzer
// mutates from there. Decoding must never panic, and any input that does
// decode must re-encode and decode again to the identical message
// (canonical-form stability).
func FuzzDecodeFrame(f *testing.F) {
	d, err := NewDict(
		[]string{"cpu0", "net1", "disk2"},
		[]string{"alpha", "beta"},
		[][]string{{"a1", "a2"}, {"b1"}},
	)
	if err != nil {
		f.Fatal(err)
	}
	dictCodec, plainCodec := NewCodec(d), NewCodec(nil)
	for _, c := range []*Codec{dictCodec, plainCodec} {
		for _, m := range corpus(f) {
			frame, err := c.Encode(m)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(frame)
		}
	}
	f.Add(dictCodec.Hello())
	f.Add([]byte{FrameMagic, Version, FramePrice, 0, 0})
	f.Add([]byte{FrameMagic, Version, FrameRaw, 0x02, 3, 'a', 'b', 'c'})
	f.Add([]byte{FrameMagic, 2, FramePrice, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []*Codec{dictCodec, plainCodec} {
			msg, err := c.Read(bufio.NewReader(bytes.NewReader(data)))
			if err != nil {
				continue
			}
			// One re-encode may canonicalize (e.g. a RAW payload whose JSON
			// key order differs from the struct order); after that the
			// representation must be a fixed point.
			frame, err := c.Encode(msg)
			if err != nil {
				t.Fatalf("decoded message failed to re-encode: %v", err)
			}
			canon, err := c.Read(bufio.NewReader(bytes.NewReader(frame)))
			if err != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err)
			}
			frame2, err := c.Encode(canon)
			if err != nil {
				t.Fatalf("canonical message failed to re-encode: %v", err)
			}
			again, err := c.Read(bufio.NewReader(bytes.NewReader(frame2)))
			if err != nil {
				t.Fatalf("canonical frame failed to decode: %v", err)
			}
			if again.From != canon.From || again.To != canon.To || again.Kind != canon.Kind || !bytes.Equal(again.Payload, canon.Payload) {
				t.Fatalf("round trip unstable:\n first %+v\n again %+v", canon, again)
			}
		}
	})
}
