package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"

	"lla/internal/obs"
	"lla/internal/transport"
)

// testDict builds the dictionary the round-trip tests share.
func testDict(t *testing.T) *Dict {
	t.Helper()
	d, err := NewDict(
		[]string{"cpu0", "net1", "disk2"},
		[]string{"alpha", "beta"},
		[][]string{{"a1", "a2"}, {"b1"}},
	)
	if err != nil {
		t.Fatalf("NewDict: %v", err)
	}
	return d
}

// msg marshals a payload into a transport.Message.
func msg(t testing.TB, from, to, kind string, payload any) transport.Message {
	t.Helper()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshal payload: %v", err)
	}
	return transport.Message{From: from, To: to, Kind: kind, Payload: raw}
}

// corpus returns one message per frame type (all names in testDict), plus
// delta/seq/congested variants.
func corpus(t testing.TB) []transport.Message {
	return []transport.Message{
		msg(t, "res/cpu0", "ctl/alpha", "price", PriceUpdate{Round: 3, Resource: "cpu0", Mu: 1.25, Congested: true}),
		msg(t, "res/net1", "ctl/beta", "price", PriceUpdate{Round: 17, Seq: 42, Epoch: 2, Resource: "net1", Delta: true}),
		msg(t, "ctl/alpha", "res/cpu0", "latency", ShareReport{Round: 3, Task: "alpha", LatMs: map[string]float64{"a1": 4.5, "a2": 6.25}}),
		msg(t, "ctl/beta", "res/disk2", "latency", ShareReport{Round: 9, Seq: -7, Epoch: 1, Task: "beta", Delta: true}),
		msg(t, "ctl/alpha", "coordinator", "report", UtilityReport{Round: 5, Epoch: 3, Task: "alpha", Utility: -12.75}),
		msg(t, "coordinator", "res/cpu0", "stop", Stop{AfterRound: 8, Epoch: 3}),
		msg(t, "res/disk2", "ctl/beta", "fin", Fin{Resource: "disk2"}),
		msg(t, "coordinator", "ctl/alpha", "rejoin", Rejoin{Epoch: 4}),
		msg(t, "ctl/alpha", "coordinator", "rejoinAck", RejoinAck{Epoch: 4, Task: "alpha", Round: -1}),
		msg(t, "coordinator", "shard/0", "priceAgg", BoundaryPrice{Round: 6, Resource: "cpu0", Mu: 2.125, Congested: true}),
		msg(t, "shard/1", "coordinator", "boundary", BoundaryDemand{Round: 6, Shard: 1, Resource: "net1", Demand: 0.875, Curvature: 0.25}),
		msg(t, "shard/2", "coordinator", "boundary", BoundaryDemand{Round: 7, Shard: 2, Resource: "disk2", Demand: 1.5}),
		msg(t, "admit-client-1", "coordinator", "admitQuery", map[string]any{"task": "gamma", "budget": 3.5}),
	}
}

// roundTrip encodes and decodes one message.
func roundTrip(t testing.TB, c *Codec, m transport.Message) transport.Message {
	t.Helper()
	frame, err := c.Encode(m)
	if err != nil {
		t.Fatalf("Encode(%s): %v", m.Kind, err)
	}
	out, err := c.Read(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("Read(%s): %v", m.Kind, err)
	}
	return out
}

// assertSame requires an exact message round trip: routing fields equal and
// payload byte-identical (the mirror structs share dist's field order and
// tags, so re-marshaling reproduces the original bytes).
func assertSame(t *testing.T, want, got transport.Message) {
	t.Helper()
	if got.From != want.From || got.To != want.To || got.Kind != want.Kind {
		t.Fatalf("envelope mismatch: got %s->%s %q want %s->%s %q",
			got.From, got.To, got.Kind, want.From, want.To, want.Kind)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("payload mismatch for %s:\n got %s\nwant %s", want.Kind, got.Payload, want.Payload)
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, mode := range []struct {
		name string
		c    *Codec
	}{
		{"dict", NewCodec(testDict(t))},
		{"strings", NewCodec(nil)},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for _, m := range corpus(t) {
				assertSame(t, m, roundTrip(t, mode.c, m))
			}
		})
	}
}

func TestRoundTripBatched(t *testing.T) {
	c := NewCodec(testDict(t))
	batchPrice := msg(t, "res/cpu0", "ctl/alpha", "price", []PriceUpdate{
		{Round: 1, Resource: "cpu0", Mu: 0.5},
		{Round: 1, Resource: "net1", Delta: true},
		{Round: 1, Resource: "disk2", Mu: 2.5, Congested: true, Seq: 9},
	})
	assertSame(t, batchPrice, roundTrip(t, c, batchPrice))

	single := msg(t, "res/cpu0", "ctl/alpha", "price", []PriceUpdate{{Round: 2, Resource: "cpu0", Mu: 1}})
	assertSame(t, single, roundTrip(t, c, single)) // a 1-element array stays an array

	empty := msg(t, "res/cpu0", "ctl/alpha", "price", []PriceUpdate{})
	assertSame(t, empty, roundTrip(t, c, empty))

	batchLat := msg(t, "ctl/alpha", "res/cpu0", "latency", []ShareReport{
		{Round: 4, Task: "alpha", LatMs: map[string]float64{"a1": 1, "a2": 2}},
		{Round: 4, Task: "beta", Delta: true},
	})
	assertSame(t, batchLat, roundTrip(t, c, batchLat))

	batchAgg := msg(t, "coordinator", "shard/0", "priceAgg", []BoundaryPrice{
		{Round: 2, Resource: "cpu0", Mu: 1.5, Congested: true},
		{Round: 2, Resource: "net1", Mu: 0},
	})
	assertSame(t, batchAgg, roundTrip(t, c, batchAgg))

	batchBdy := msg(t, "shard/3", "coordinator", "boundary", []BoundaryDemand{
		{Round: 2, Shard: 3, Resource: "cpu0", Demand: 0.5, Curvature: 0.125},
		{Round: 2, Shard: 3, Resource: "disk2", Demand: 1},
	})
	assertSame(t, batchBdy, roundTrip(t, c, batchBdy))
}

// TestCrossCodecEquivalence is the JSON<->binary suite: for every corpus
// message, the decoded binary payload must be semantically identical to
// what the legacy JSON framing delivers (which ships Payload verbatim).
func TestCrossCodecEquivalence(t *testing.T) {
	for _, c := range []*Codec{NewCodec(testDict(t)), NewCodec(nil)} {
		for _, m := range corpus(t) {
			got := roundTrip(t, c, m)
			var viaJSON, viaBinary any
			if err := json.Unmarshal(m.Payload, &viaJSON); err != nil {
				t.Fatalf("unmarshal original: %v", err)
			}
			if err := json.Unmarshal(got.Payload, &viaBinary); err != nil {
				t.Fatalf("unmarshal decoded: %v", err)
			}
			if !reflect.DeepEqual(viaJSON, viaBinary) {
				t.Fatalf("%s payload diverged:\n json %v\n binary %v", m.Kind, viaJSON, viaBinary)
			}
		}
	}
}

// jsonFrameSize is the legacy framing cost: 4-byte length prefix plus the
// JSON-marshaled envelope.
func jsonFrameSize(t testing.TB, m transport.Message) int {
	t.Helper()
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal message: %v", err)
	}
	return 4 + len(raw)
}

// TestBatchedPriceFrameTenTimesSmaller pins the acceptance target the
// benchparse gate enforces in CI: a 64-update price batch must be at least
// 10x smaller in binary than as legacy JSON frames.
func TestBatchedPriceFrameTenTimesSmaller(t *testing.T) {
	resources := make([]string, 64)
	batch := make([]PriceUpdate, 64)
	jsonBytes := 0
	for i := range batch {
		resources[i] = "res-" + strings.Repeat("x", 2) + string(rune('a'+i%26)) + string(rune('a'+i/26))
		batch[i] = PriceUpdate{Round: 1000 + i, Epoch: 3, Resource: resources[i], Mu: 0.5 + float64(i)/7}
		jsonBytes += jsonFrameSize(t, msg(t, "res/"+resources[i], "ctl/alpha", "price", batch[i]))
	}
	d, err := NewDict(resources, []string{"alpha"}, [][]string{{}})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCodec(d)
	frame, err := c.Encode(msg(t, "res/"+resources[0], "ctl/alpha", "price", batch))
	if err != nil {
		t.Fatal(err)
	}
	if 10*len(frame) > jsonBytes {
		t.Fatalf("binary batch frame %dB not >=10x smaller than %dB of JSON frames", len(frame), jsonBytes)
	}
}

func TestTruncatedFramesError(t *testing.T) {
	c := NewCodec(testDict(t))
	for _, m := range corpus(t) {
		frame, err := c.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(frame); i++ {
			if _, err := c.Read(bufio.NewReader(bytes.NewReader(frame[:i]))); err == nil {
				t.Fatalf("%s frame truncated to %d/%d bytes decoded successfully", m.Kind, i, len(frame))
			}
		}
	}
}

// reseal recomputes the CRC trailer after a test mutates frame bytes.
func reseal(frame []byte) {
	binary.LittleEndian.PutUint32(frame[len(frame)-4:], crc32.ChecksumIEEE(frame[:len(frame)-4]))
}

func TestCorruptFramesError(t *testing.T) {
	c := NewCodec(testDict(t))
	m := corpus(t)[0]
	frame, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(frame); i++ {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= flip
			if _, err := c.Read(bufio.NewReader(bytes.NewReader(mut))); err == nil {
				t.Fatalf("frame with byte %d flipped by %#x decoded successfully", i, flip)
			}
		}
	}
}

func TestExtremeIntegerFieldsRoundTrip(t *testing.T) {
	c := NewCodec(nil)
	m := msg(t, "res/"+strings.Repeat("r", 300), "ctl/alpha", "price", PriceUpdate{
		Round:    math.MaxInt64,
		Seq:      math.MinInt64,
		Epoch:    math.MaxUint64,
		Resource: strings.Repeat("r", 300),
		Mu:       math.MaxFloat64,
	})
	assertSame(t, m, roundTrip(t, c, m))

	ack := msg(t, "ctl/alpha", "coordinator", "rejoinAck", RejoinAck{Epoch: math.MaxUint64, Task: "alpha", Round: math.MinInt64})
	assertSame(t, ack, roundTrip(t, c, ack))
}

func TestOversizeStringRejected(t *testing.T) {
	c := NewCodec(nil)
	long := strings.Repeat("x", maxStrLen+1)
	if _, err := c.Encode(msg(t, "res/"+long, "ctl/alpha", "fin", Fin{Resource: long})); err == nil {
		t.Fatal("oversize id encoded successfully")
	}
}

func TestDictIndexOutOfRangeRejected(t *testing.T) {
	big := testDict(t) // 3 resources
	small, err := NewDict([]string{"cpu0"}, []string{"alpha", "beta"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := NewCodec(big).Encode(corpus(t)[1]) // resource net1 = index 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCodec(small).Read(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("frame with out-of-range dictionary index decoded successfully")
	}
	// A dictless codec must reject dictionary-encoded frames outright.
	if _, err := NewCodec(nil).Read(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("dictless codec decoded a dictionary-encoded frame")
	}
}

func TestNonFiniteFloatsRejected(t *testing.T) {
	e := &enc{}
	e.f64(math.NaN())
	if e.err == nil {
		t.Fatal("encoder accepted NaN")
	}
	e = &enc{}
	e.f64(math.Inf(1))
	if e.err == nil {
		t.Fatal("encoder accepted +Inf")
	}

	// Craft a frame whose mu bits are NaN: encode mu=1.5 (a bit pattern
	// that appears exactly once) and overwrite it.
	c := NewCodec(nil)
	frame, err := c.Encode(msg(t, "res/cpu0", "ctl/alpha", "price", PriceUpdate{Round: 1, Resource: "cpu0", Mu: 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	var pat [8]byte
	binary.LittleEndian.PutUint64(pat[:], math.Float64bits(1.5))
	i := bytes.Index(frame, pat[:])
	if i < 0 {
		t.Fatal("mu bit pattern not found in frame")
	}
	binary.LittleEndian.PutUint64(frame[i:], math.Float64bits(math.NaN()))
	reseal(frame)
	if _, err := c.Read(bufio.NewReader(bytes.NewReader(frame))); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN price decoded: err=%v", err)
	}
}

func TestReservedFlagBitsRejected(t *testing.T) {
	c := NewCodec(nil)
	frame, err := c.Encode(corpus(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	frame[3] |= 0x80
	reseal(frame)
	if _, err := c.Read(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("reserved flag bit accepted")
	}
}

func TestUnknownFrameTypeRejected(t *testing.T) {
	c := NewCodec(nil)
	frame, err := c.Encode(corpus(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	frame[2] = 0x7E
	reseal(frame)
	if _, err := c.Read(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("unknown frame type accepted")
	}
}

// TestUnknownFieldsRideRaw is the forward-evolution rule: a price payload
// with a field this codec version does not know must ship verbatim on a
// RAW frame rather than being silently stripped.
func TestUnknownFieldsRideRaw(t *testing.T) {
	c := NewCodec(testDict(t))
	m := transport.Message{From: "res/cpu0", To: "ctl/alpha", Kind: "price",
		Payload: json.RawMessage(`{"round":1,"resource":"cpu0","mu":1,"futureField":true}`)}
	frame, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != FrameRaw {
		t.Fatalf("unknown-field payload used frame type 0x%02x, want RAW", frame[2])
	}
	assertSame(t, m, roundTrip(t, c, m))
}

// TestDictMissFallsBackToStrings: ids outside the negotiated dictionary
// re-encode the frame in string mode instead of failing.
func TestDictMissFallsBackToStrings(t *testing.T) {
	c := NewCodec(testDict(t))
	m := msg(t, "res/rogue", "ctl/alpha", "price", PriceUpdate{Round: 1, Resource: "rogue", Mu: 2})
	frame, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[3]&flagDict != 0 {
		t.Fatal("dict flag set on a frame with an out-of-dictionary id")
	}
	assertSame(t, m, roundTrip(t, c, m))
}

// TestHostileBodyLengthAllocation mirrors the transport readFrame test: a
// huge declared body length on a truncated stream must not allocate the
// declared size up front.
func TestHostileBodyLengthAllocation(t *testing.T) {
	hdr := []byte{FrameMagic, Version, FramePrice, 0}
	hdr = binary.AppendUvarint(hdr, maxBodyBytes) // claims 16 MiB, delivers none
	c := NewCodec(nil)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.Read(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
			t.Fatal("truncated hostile frame decoded")
		}
	})
	// bufio.Reader + bytes.Reader + error wrapping stay small; a 16 MiB
	// up-front allocation would dwarf this bound.
	if allocs > 20 {
		t.Fatalf("hostile length triggered %v allocations per read", allocs)
	}
}

func TestWireMetricsCount(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCodec(testDict(t))
	c.Observe(reg)
	for _, m := range corpus(t) {
		roundTrip(t, c, m)
	}
	m := c.m
	if n := m.FramesEncoded.Value(); n != int64(len(corpus(t))) {
		t.Fatalf("FramesEncoded = %d, want %d", n, len(corpus(t)))
	}
	if m.FramesDecoded.Value() != m.FramesEncoded.Value() {
		t.Fatalf("decoded %d != encoded %d", m.FramesDecoded.Value(), m.FramesEncoded.Value())
	}
	if m.RawFrames.Value() != 1 { // the admitQuery corpus entry
		t.Fatalf("RawFrames = %d, want 1", m.RawFrames.Value())
	}
	if m.BytesEncoded.Value() == 0 || m.BytesDecoded.Value() != m.BytesEncoded.Value() {
		t.Fatalf("byte counters inconsistent: enc %d dec %d", m.BytesEncoded.Value(), m.BytesDecoded.Value())
	}
	if _, err := c.Read(bufio.NewReader(bytes.NewReader([]byte{0xFF, 0, 0, 0, 0}))); err == nil {
		t.Fatal("garbage decoded")
	}
	if m.DecodeErrors.Value() != 1 {
		t.Fatalf("DecodeErrors = %d, want 1", m.DecodeErrors.Value())
	}
}

// TestStreamedFrames reads several frames back-to-back from one reader,
// the way a connection read loop does.
func TestStreamedFrames(t *testing.T) {
	c := NewCodec(testDict(t))
	var stream bytes.Buffer
	for _, m := range corpus(t) {
		frame, err := c.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(frame)
	}
	br := bufio.NewReader(&stream)
	for _, want := range corpus(t) {
		got, err := c.Read(br)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, want, got)
	}
	if _, err := c.Read(br); err == nil {
		t.Fatal("read past end of stream succeeded")
	}
}
