// Package wire implements the LLA binary wire protocol: a versioned,
// CRC-guarded binary frame codec for the distributed runtime's control
// messages, ~10-30x smaller than the legacy length-prefixed JSON frames for
// batched price updates. PROTOCOL.md is the normative byte-level
// specification; this package is the reference implementation.
//
// The codec is transport-pluggable: it implements transport.Codec, so the
// TCP network negotiates it per connection (falling back to JSON when the
// peer predates it or disagrees on version/dictionary) and the in-process
// network can round-trip every delivery through it for bitwise-equivalence
// testing. Frames carry the same payloads as the JSON transport — a decoded
// frame reconstructs a transport.Message whose JSON payload is
// indistinguishable from what the sender would have put on the legacy
// path — so the round-synchronized protocol in internal/dist runs bitwise
// identical under either encoding.
//
// Decoding follows the defensive-decoder discipline of internal/recover:
// a bounds-checked cursor with a latched first error, explicit limits on
// every length field, CRC verification before any payload interpretation,
// and rejection of non-finite floats and reserved flag bits.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Protocol version bounds. Version is the only frame version this
// implementation emits and accepts; MinVersion..Version is the range
// advertised in the negotiation hello.
const (
	Version    = 1
	MinVersion = 1
)

// FrameMagic is the first byte of every binary data frame. It is distinct
// from 0x00, the first byte of every legacy length-prefixed JSON frame
// (whose 16 MiB size cap keeps the top length byte zero), so a binary
// connection can carry interleaved JSON frames and a reader can classify
// each frame by its first byte.
const FrameMagic = 0xA7

// Frame type codes. PROTOCOL.md documents the body layout of each;
// FrameTypes lists them for the docs coverage test.
const (
	FramePrice     = 0x01 // batched resource price updates (priceMsg)
	FrameLatency   = 0x02 // batched share/latency reports (latencyMsg)
	FrameReport    = 0x03 // controller utility report (reportMsg)
	FrameStop      = 0x04 // coordinator stop (stopMsg)
	FrameFin       = 0x05 // resource fin handshake (finMsg)
	FrameRejoin    = 0x06 // coordinator rejoin announcement (rejoinMsg)
	FrameRejoinAck = 0x07 // controller rejoin answer (rejoinAckMsg)
	FramePriceAgg  = 0x08 // batched fleet boundary-price broadcast (BoundaryPrice)
	FrameBoundary  = 0x09 // batched shard boundary-demand report (BoundaryDemand)
	FrameRaw       = 0x0F // escape hatch: any kind, verbatim JSON payload
)

// FrameTypes maps every frame type this codec can emit to its wire code.
// docs_test.go asserts PROTOCOL.md documents each entry.
func FrameTypes() map[string]byte {
	return map[string]byte{
		"PRICE":      FramePrice,
		"LATENCY":    FrameLatency,
		"REPORT":     FrameReport,
		"STOP":       FrameStop,
		"FIN":        FrameFin,
		"REJOIN":     FrameRejoin,
		"REJOIN_ACK": FrameRejoinAck,
		"PRICE_AGG":  FramePriceAgg,
		"BOUNDARY":   FrameBoundary,
		"RAW":        FrameRaw,
	}
}

// Frame header flag bits. Reserved bits must be zero; decoders reject
// frames that set them (evolution rule: a new optional behavior needs a new
// version, not a quietly ignored bit).
const (
	// flagDict marks ids encoded as indexes into the negotiated dictionary
	// instead of inline strings.
	flagDict = 0x01
	// flagBatch marks a payload that was a JSON array of entries (the
	// legacy encoding distinguishes [{...}] from {...}; the flag preserves
	// that round-trip).
	flagBatch = 0x02

	flagsKnown = flagDict | flagBatch
)

// Size limits, enforced on both encode and decode so a corrupt or hostile
// length field cannot trigger a huge allocation.
const (
	// maxBodyBytes bounds a frame body; it matches the transport's JSON
	// frame cap.
	maxBodyBytes = 16 << 20
	// maxStrLen bounds any inline identifier (addresses, ids, kinds).
	maxStrLen = 1 << 16
	// maxBatch bounds the entry count of a batched frame.
	maxBatch = 1 << 20
)

// errDictMiss is latched by the encoder when dictionary mode is requested
// but an id is not in the dictionary; the caller retries in string mode.
var errDictMiss = errors.New("wire: id not in dictionary")

// enc is an append-only encode buffer with a latched first error, the
// write-side counterpart of dec.
type enc struct {
	b   []byte
	err error
}

// fail latches the first error.
func (e *enc) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("wire: "+format, args...)
	}
}

// setErr latches a sentinel error.
func (e *enc) setErr(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *enc) u8(v byte)        { e.b = append(e.b, v) }
func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) svarint(v int64)  { e.b = binary.AppendVarint(e.b, v) }

// f64 appends a little-endian IEEE-754 value; non-finite values are a
// protocol error (prices, shares and utilities are finite by construction).
func (e *enc) f64(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		e.fail("non-finite float %v", v)
		return
	}
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// str appends a length-prefixed UTF-8 string.
func (e *enc) str(s string) {
	if len(s) > maxStrLen {
		e.fail("string of %d bytes exceeds limit", len(s))
		return
	}
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// bytes appends a length-prefixed byte blob.
func (e *enc) bytes(p []byte) {
	if len(p) > maxBodyBytes {
		e.fail("blob of %d bytes exceeds limit", len(p))
		return
	}
	e.uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// dec is a bounds-checked decode cursor over a frame body. The first
// failure latches err and every subsequent read returns zero values, so
// decode paths read linearly without per-field error checks (the
// internal/recover reader discipline).
type dec struct {
	buf []byte
	off int
	err error
}

// fail latches the first error.
func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// remaining reports how many bytes are left.
func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated body: need 1 byte, have 0")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	d.off += n
	return v
}

// f64 reads a little-endian IEEE-754 value, rejecting NaN and ±Inf.
func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated body: need 8 bytes, have %d", d.remaining())
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	if math.IsNaN(v) || math.IsInf(v, 0) {
		d.fail("non-finite float on the wire")
		return 0
	}
	return v
}

// strN reads a length-prefixed string of at most max bytes.
func (d *dec) strN(max int) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(max) || n > uint64(d.remaining()) {
		d.fail("string length %d exceeds limit or remaining bytes", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// bytesN reads a length-prefixed blob of at most max bytes. A zero length
// yields nil.
func (d *dec) bytesN(max int) []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(max) || n > uint64(d.remaining()) {
		d.fail("blob length %d exceeds limit or remaining bytes", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.buf[d.off:])
	d.off += int(n)
	return p
}

// count reads an entry count bounded by max. Counts are additionally
// bounded by the remaining body bytes (every entry is at least one byte),
// so a hostile count cannot force a large allocation.
func (d *dec) count(max int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(max) || n > uint64(d.remaining()) {
		d.fail("entry count %d exceeds limit or remaining bytes", n)
		return 0
	}
	return int(n)
}

// index reads a dictionary index bounded by size.
func (d *dec) index(size int, what string) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n >= uint64(size) {
		d.fail("%s index %d out of range (dictionary has %d)", what, n, size)
		return 0
	}
	return int(n)
}

// done returns the latched error, or an error if trailing bytes remain (a
// well-formed body is consumed exactly).
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes after body", len(d.buf)-d.off)
	}
	return nil
}
