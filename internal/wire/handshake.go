package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Version negotiation (PROTOCOL.md §5). After dialing, a binary-capable
// client writes one fixed-size hello; the server answers with one
// fixed-size ack choosing the frame version (0 = speak legacy JSON). The
// hello magic "LLAW" doubles as the connection discriminator: read as a
// legacy big-endian length prefix it decodes to ~1.28 GB, far above the
// 16 MiB frame cap, so a pre-codec server rejects the hello instantly and
// closes — the client reads EOF instead of an ack and falls back to JSON
// on a fresh connection. A pre-codec client's first bytes are a <16 MiB
// length prefix, which never matches "LLAW", so a binary-capable server
// serves it legacy JSON without any round trip.

var (
	helloMagic = [4]byte{'L', 'L', 'A', 'W'}
	ackMagic   = [4]byte{'L', 'L', 'A', 'B'}
)

const (
	helloLen = 18 // magic(4) maxVer(1) minVer(1) dictHash(8) crc(4)
	ackLen   = 10 // magic(4) version(1) flags(1) crc(4)
)

// Hello implements transport.Codec: the client handshake blob.
func (c *Codec) Hello() []byte {
	b := make([]byte, 0, helloLen)
	b = append(b, helloMagic[:]...)
	b = append(b, c.maxVersion, c.minVersion)
	b = binary.LittleEndian.AppendUint64(b, c.dict.Hash())
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// Sniff implements transport.Codec: reports whether a connection's first
// four bytes are a codec hello.
func (c *Codec) Sniff(prefix []byte) bool {
	return len(prefix) >= 4 && bytes.Equal(prefix[:4], helloMagic[:])
}

// Accept implements transport.Codec: it consumes the rest of a sniffed
// hello and returns the ack to write back. ok reports whether the
// connection will carry binary frames; a version or dictionary mismatch
// negotiates JSON (ok=false) rather than failing. A corrupt hello is an
// error: the caller should drop the connection.
func (c *Codec) Accept(prefix []byte, r io.Reader) (ack []byte, ok bool, err error) {
	hello := make([]byte, helloLen)
	copy(hello, prefix[:4])
	if _, err := io.ReadFull(r, hello[4:]); err != nil {
		return nil, false, fmt.Errorf("wire: truncated hello: %w", err)
	}
	if got, want := binary.LittleEndian.Uint32(hello[helloLen-4:]), crc32.ChecksumIEEE(hello[:helloLen-4]); got != want {
		return nil, false, fmt.Errorf("wire: hello CRC mismatch: got %08x want %08x", got, want)
	}
	theirMax, theirMin := hello[4], hello[5]
	theirDict := binary.LittleEndian.Uint64(hello[6:14])

	version := min(c.maxVersion, theirMax)
	if version < theirMin || version < c.minVersion {
		version = 0 // no common version: speak JSON
	}
	if theirDict != c.dict.Hash() {
		version = 0 // dictionary disagreement: speak JSON
	}
	if version != 0 {
		c.m.NegotiatedBinary.Inc()
	} else {
		c.m.NegotiatedJSON.Inc()
	}
	b := make([]byte, 0, ackLen)
	b = append(b, ackMagic[:]...)
	b = append(b, version, 0)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b, version != 0, nil
}

// ReadAck implements transport.Codec: it parses the server's handshake
// answer. ok=false means the server negotiated JSON. An error (including a
// connection closed by a pre-codec server) tells the caller to redial and
// speak JSON.
func (c *Codec) ReadAck(r io.Reader) (bool, error) {
	var b [ackLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		c.m.NegotiatedJSON.Inc()
		return false, fmt.Errorf("wire: reading handshake ack: %w", err)
	}
	if !bytes.Equal(b[:4], ackMagic[:]) {
		c.m.NegotiatedJSON.Inc()
		return false, fmt.Errorf("wire: bad ack magic % x", b[:4])
	}
	if got, want := binary.LittleEndian.Uint32(b[ackLen-4:]), crc32.ChecksumIEEE(b[:ackLen-4]); got != want {
		c.m.NegotiatedJSON.Inc()
		return false, fmt.Errorf("wire: ack CRC mismatch: got %08x want %08x", got, want)
	}
	switch version := b[4]; {
	case version == 0:
		c.m.NegotiatedJSON.Inc()
		return false, nil
	case version < c.minVersion || version > c.maxVersion:
		c.m.NegotiatedJSON.Inc()
		return false, fmt.Errorf("wire: server chose unsupported version %d", version)
	default:
		c.m.NegotiatedBinary.Inc()
		return true, nil
	}
}
