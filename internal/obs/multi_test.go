package obs

import (
	"testing"
)

// recordIter drives one Begin/Commit cycle the way an engine does.
func recordIter(t *testing.T, r Recorder, iter int, mu float64) {
	t.Helper()
	s := r.Begin(iter)
	if s == nil {
		return
	}
	s.Iteration = iter
	s.Utility = mu * 10
	s.Mu = append(s.Mu[:0], mu)
	r.Commit(s)
}

func TestMultiRecorderFansOut(t *testing.T) {
	a, b := NewRing(8), NewRing(8)
	m := MultiRecorder(a, b)
	for i := 0; i < 3; i++ {
		recordIter(t, m, i, float64(i))
	}
	for name, ring := range map[string]*Ring{"a": a, "b": b} {
		if ring.Len() != 3 {
			t.Fatalf("ring %s recorded %d samples, want 3", name, ring.Len())
		}
		last, ok := ring.Last()
		if !ok || last.Iteration != 2 || last.Mu[0] != 2 {
			t.Fatalf("ring %s last sample %+v", name, last)
		}
	}
}

// TestMultiRecorderRespectsDownsampling: a sub-recorder that declines an
// iteration (Begin returning nil) is skipped while the others still record,
// and when every sub-recorder declines the composite declines too.
func TestMultiRecorderRespectsDownsampling(t *testing.T) {
	every := NewRing(8)
	sparse := NewRing(8)
	sparse.Every = 2
	m := MultiRecorder(every, sparse)
	for i := 0; i < 4; i++ {
		recordIter(t, m, i, float64(i))
	}
	if every.Len() != 4 {
		t.Fatalf("dense ring got %d samples, want 4", every.Len())
	}
	if sparse.Len() != 2 {
		t.Fatalf("sparse ring got %d samples, want 2", sparse.Len())
	}

	only := NewRing(8)
	only.Every = 2
	m = MultiRecorder(only)
	if m != Recorder(only) {
		t.Fatal("single-recorder composite should be the recorder itself")
	}
	lone := MultiRecorder(nil, only, nil)
	if s := lone.Begin(1); s != nil {
		t.Fatal("composite did not propagate unanimous downsampling")
	}
}

func TestMultiRecorderDeepCopies(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := MultiRecorder(a, b)
	recordIter(t, m, 0, 1)
	recordIter(t, m, 1, 2)
	la, _ := a.Last()
	lb, _ := b.Last()
	la.Mu[0] = -99
	if lb.Mu[0] != 2 {
		t.Fatal("rings share slice memory")
	}
}

func TestMultiRecorderEmptyAndNil(t *testing.T) {
	if MultiRecorder() != nil {
		t.Fatal("empty composite should be nil")
	}
	if MultiRecorder(nil, nil) != nil {
		t.Fatal("all-nil composite should be nil")
	}
	r := NewRing(1)
	if MultiRecorder(nil, r) != Recorder(r) {
		t.Fatal("single survivor should be returned directly")
	}
}

type captureSink struct{ events []Event }

func (c *captureSink) Emit(ev Event) { c.events = append(c.events, ev) }

func TestMultiSinkFansOut(t *testing.T) {
	a, b := &captureSink{}, &captureSink{}
	s := MultiSink(a, nil, b)
	s.Emit(Event{Kind: EventConverged, Value: 42})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("fan-out delivered %d/%d events, want 1/1", len(a.events), len(b.events))
	}
	if a.events[0].Value != 42 || b.events[0].Kind != EventConverged {
		t.Fatalf("payload corrupted: %+v / %+v", a.events[0], b.events[0])
	}
	if MultiSink(nil) != nil {
		t.Fatal("all-nil sink composite should be nil")
	}
	if MultiSink(a) != Sink(a) {
		t.Fatal("single sink should be returned directly")
	}
}
