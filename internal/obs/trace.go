package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds emitted by the engine and the distributed runtimes.
const (
	// EventConverged fires when a convergence detector declares the
	// utility stable (engine RunUntilConverged, dist coordinator).
	EventConverged = "converged"
	// EventWorkloadChange fires on a runtime variation: availability,
	// minimum share, or model-error change (Detail says which).
	EventWorkloadChange = "workload_change"
	// EventLeaseExpiry fires when the coordinator's per-task report lease
	// expires: the task's controller stayed silent past
	// FaultPolicy.LeaseAfter.
	EventLeaseExpiry = "lease_expiry"
	// EventDegradedEnter fires when an async controller marks a used
	// resource's price lease expired and starts clamping allocations
	// deadline-safe on its frozen price.
	EventDegradedEnter = "degraded_enter"
	// EventDegradedExit fires when a fresh price ends a resource's
	// degradation.
	EventDegradedExit = "degraded_exit"
	// EventAdmission fires per admission decision: Task names the candidate,
	// Detail names the deciding gate, Value is 1 (admitted) or 0 (rejected).
	EventAdmission = "admission"
	// EventRebalance fires when the placer's skew-triggered rebalance moves
	// a resident task; Task names it and Detail the new binding.
	EventRebalance = "rebalance"
	// EventCheckpoint fires when a checkpoint is durably written; Iteration
	// is the engine iteration it captured, Value its encoded size in bytes.
	EventCheckpoint = "checkpoint"
	// EventRestore fires when an engine is rebuilt from a checkpoint;
	// Iteration is the restored iteration, Detail the checkpoint path.
	EventRestore = "restore"
	// EventEpochBump fires when a restarted coordinator adopts a new
	// generation; Value is the new epoch, Round the emission cursor at
	// restart.
	EventEpochBump = "epoch_bump"
	// EventFleetRound fires per completed aggregator round of the sharded
	// fleet; Round is the aggregator round, Iteration the shard iterations
	// it consumed, Value the worst boundary residual after the round, and
	// Swept/Skipped/Workers describe the round's shard-level active set and
	// sweep concurrency.
	EventFleetRound = "fleet_round"
	// EventFleetRebuild fires when Fleet.ReplaceWorkload applies a churn
	// delta; Iteration is the number of shards rebuilt, Value the number
	// reused untouched, and Detail "full" when the delta forced a full
	// repartition (else "incremental").
	EventFleetRebuild = "fleet_rebuild"
	// EventFleetConverged fires when the fleet aggregator certifies the
	// global fixed point; Round is the certifying round, Value the worst
	// shard-local KKT residual.
	EventFleetConverged = "fleet_converged"
)

// Event is one structured trace event. Unused fields are omitted from the
// JSON encoding; OBSERVABILITY.md documents the fields each kind carries.
type Event struct {
	// Record discriminates JSONL lines ("event"); set by the sink.
	Record string `json:"record,omitempty"`
	// Kind is one of the Event* constants.
	Kind string `json:"event"`
	// TimeUnixNano is the wall-clock emission time (stamped by
	// Observer.Emit when the emitter left it zero).
	TimeUnixNano int64 `json:"t_unix_ns"`
	// Iteration/Round locate the event in optimization time where known.
	Iteration int `json:"iter,omitempty"`
	Round     int `json:"round,omitempty"`
	// Task, Subtask and Resource name the entities involved.
	Task     string `json:"task,omitempty"`
	Subtask  string `json:"subtask,omitempty"`
	Resource string `json:"resource,omitempty"`
	// Detail qualifies the kind (e.g. which knob a workload_change moved).
	Detail string `json:"detail,omitempty"`
	// Value carries the kind's scalar payload (e.g. the converged utility,
	// or a workload change's new value).
	Value float64 `json:"value,omitempty"`
	// Swept, Skipped and Workers carry fleet_round's shard-level active-set
	// tally: sweeps executed, sweeps skipped at a proven fixed point, and
	// the concurrent sweep worker count (SHARDING.md).
	Swept   int `json:"swept,omitempty"`
	Skipped int `json:"skipped,omitempty"`
	Workers int `json:"workers,omitempty"`
}

// stamp fills the emission time if the emitter did not.
func stamp(ev Event) Event {
	if ev.TimeUnixNano == 0 {
		ev.TimeUnixNano = time.Now().UnixNano()
	}
	return ev
}

// Sink consumes trace events. Implementations must be safe for concurrent
// Emit calls: distributed nodes emit from their own goroutines.
type Sink interface {
	Emit(Event)
}

// Memory is an in-memory Sink for tests and programmatic inspection.
type Memory struct {
	mu     sync.Mutex
	events []Event
}

// NewMemory returns an empty in-memory sink.
func NewMemory() *Memory { return &Memory{} }

// Emit appends the event.
func (m *Memory) Emit(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, stamp(ev))
	m.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (m *Memory) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// ByKind returns the emitted events of one kind.
func (m *Memory) ByKind(kind string) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, ev := range m.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// JSONL writes telemetry — iteration samples and trace events — as one JSON
// object per line to an io.Writer. Every line carries a "record" field
// ("sample" or "event") so a stream mixing both remains machine-parseable;
// EXPERIMENTS.md's runbook and OBSERVABILITY.md's walkthrough build the
// paper's convergence plots from these streams.
//
// JSONL is both a Recorder and a Sink: attach one instance as both fields
// of an Observer to interleave samples and events in a single file. Emit is
// safe for concurrent use; as a Recorder it must be attached to at most one
// engine (the Recorder contract).
type JSONL struct {
	// Every downsamples recording: only iterations divisible by Every are
	// written (0 or 1 writes everything). Set before attaching.
	Every int

	scratch IterationSample

	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink/recorder writing one JSON object per line to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Begin returns the scratch sample, or nil on downsampled iterations.
func (j *JSONL) Begin(iteration int) *IterationSample {
	if j.Every > 1 && iteration%j.Every != 0 {
		return nil
	}
	return &j.scratch
}

// sampleLine wraps a sample with the line discriminator.
type sampleLine struct {
	Record string `json:"record"`
	*IterationSample
}

// Commit writes the filled sample as a "sample" line.
func (j *JSONL) Commit(s *IterationSample) {
	j.mu.Lock()
	if err := j.enc.Encode(sampleLine{Record: "sample", IterationSample: s}); err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

// Emit writes the event as an "event" line.
func (j *JSONL) Emit(ev Event) {
	ev = stamp(ev)
	ev.Record = "event"
	j.mu.Lock()
	if err := j.enc.Encode(ev); err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

// Err returns the first write error encountered, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
