package obs

import "sync"

// IterationSample is one optimization iteration's telemetry, in the paper's
// notation (see OBSERVABILITY.md for the full field reference):
//
//   - Mu[r] is the resource price mu_r of Equation 8.
//   - Lambda is the flat concatenation of every task's path prices lambda_p
//     (Equation 9), task-major in compiled task order.
//   - KKTMax/KKTMean summarize the Equation 7 stationarity residuals over
//     interior subtasks; both vanish at the optimum.
//   - ShareSums[r] is the demand Σ share_r on resource r, to be read
//     against Avail[r] (the capacity B_r of Equation 3).
//   - Gamma[r] is the resource's current step size — the state of the
//     Section 5.2 adaptive controller.
//
// Samples are filled by the component being observed; slices are reused
// across iterations, so a consumer that stores samples must deep-copy them
// (Ring already does).
type IterationSample struct {
	// Iteration counts completed engine iterations.
	Iteration int `json:"iter"`
	// Utility is the aggregate utility Σ_i U_i.
	Utility float64 `json:"utility"`
	// MaxResourceViolation is max_r (ShareSums[r] − B_r), clamped at 0.
	MaxResourceViolation float64 `json:"max_res_viol"`
	// MaxPathViolationFrac is the worst relative critical-time violation,
	// clamped at 0.
	MaxPathViolationFrac float64 `json:"max_path_viol"`
	// KKTMax and KKTMean summarize the normalized Equation 7 stationarity
	// residuals across subtasks strictly inside their latency bounds;
	// KKTCount is how many such subtasks there were.
	KKTMax   float64 `json:"kkt_max"`
	KKTMean  float64 `json:"kkt_mean"`
	KKTCount int     `json:"kkt_count"`
	// Mu[r] is each resource's price (compiled resource order).
	Mu []float64 `json:"mu"`
	// ShareSums[r] is the total share demanded on each resource.
	ShareSums []float64 `json:"share_sums"`
	// Avail[r] is each resource's availability B_r (it can change at
	// runtime via resource variation).
	Avail []float64 `json:"avail"`
	// Gamma[r] is each resource's current price step size.
	Gamma []float64 `json:"gamma"`
	// Lambda is the concatenation of per-task path-price vectors,
	// task-major in compiled order.
	Lambda []float64 `json:"lambda"`
	// KKT holds the individual normalized Equation 7 residuals over
	// interior subtasks (the vector KKTMax/KKTMean/KKTCount summarize).
	// Omitted from JSONL traces when the component publishes only the
	// summary.
	KKT []float64 `json:"kkt,omitempty"`
}

// copyFrom deep-copies src into s, reusing s's slice capacity.
func (s *IterationSample) copyFrom(src *IterationSample) {
	mu, sums, avail, gamma, lambda, kkt := s.Mu, s.ShareSums, s.Avail, s.Gamma, s.Lambda, s.KKT
	*s = *src
	s.Mu = append(mu[:0], src.Mu...)
	s.ShareSums = append(sums[:0], src.ShareSums...)
	s.Avail = append(avail[:0], src.Avail...)
	s.Gamma = append(gamma[:0], src.Gamma...)
	s.Lambda = append(lambda[:0], src.Lambda...)
	s.KKT = append(kkt[:0], src.KKT...)
}

// Recorder receives per-iteration telemetry. The observed component calls
// Begin once per iteration from its driving goroutine; a non-nil result is
// a sample for the component to fill and hand back through Commit. Begin
// may return nil to skip the iteration (downsampling). Implementations must
// make Commit safe against concurrent readers of the recorded data, but
// Begin/Commit themselves are only ever called from one goroutine at a
// time — attach a Recorder instance to at most one engine.
type Recorder interface {
	Begin(iteration int) *IterationSample
	Commit(*IterationSample)
}

// Ring is a fixed-capacity in-memory Recorder keeping the most recent
// samples. The observed component fills a scratch sample owned by the ring;
// Commit deep-copies it into the next slot under a short mutex, so
// steady-state recording performs no heap allocation once every slot's
// buffers have grown to the workload's size, and readers (Samples, Last)
// never race with the writer.
type Ring struct {
	// Every downsamples: only iterations divisible by Every are recorded
	// (0 or 1 records everything). Set before attaching.
	Every int

	scratch IterationSample

	mu    sync.Mutex
	slots []IterationSample
	next  int
	n     int
	total int
}

// NewRing returns a ring recorder holding the last capacity samples.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]IterationSample, capacity)}
}

// Begin returns the scratch sample for iteration it, or nil when the
// iteration is downsampled away.
func (r *Ring) Begin(iteration int) *IterationSample {
	if r.Every > 1 && iteration%r.Every != 0 {
		return nil
	}
	return &r.scratch
}

// Commit copies the filled sample into the ring.
func (r *Ring) Commit(s *IterationSample) {
	r.mu.Lock()
	r.slots[r.next].copyFrom(s)
	r.next = (r.next + 1) % len(r.slots)
	if r.n < len(r.slots) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// Len returns how many samples are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total returns how many samples have been committed over the ring's
// lifetime (retained or evicted).
func (r *Ring) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Samples returns the retained samples oldest-first as deep copies, safe to
// hold while recording continues.
func (r *Ring) Samples() []IterationSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]IterationSample, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.slots)
	}
	for i := 0; i < r.n; i++ {
		out[i].copyFrom(&r.slots[(start+i)%len(r.slots)])
	}
	return out
}

// Last returns a deep copy of the most recent sample, and whether one
// exists.
func (r *Ring) Last() (IterationSample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return IterationSample{}, false
	}
	i := r.next - 1
	if i < 0 {
		i += len(r.slots)
	}
	var out IterationSample
	out.copyFrom(&r.slots[i])
	return out, true
}

// Reset discards all retained samples.
func (r *Ring) Reset() {
	r.mu.Lock()
	r.n, r.next, r.total = 0, 0, 0
	r.mu.Unlock()
}
