package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram must count 0")
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("lla_test_total", "A counter.").Add(3)
	r.Gauge("lla_test_value", "A gauge.", "resource", "r0").Set(0.5)
	r.Gauge("lla_test_value", "A gauge.", "resource", "r1").Set(1.5)
	r.Histogram("lla_test_seconds", "A histogram.", []float64{0.1, 1}).Observe(0.05)
	r.Histogram("lla_test_seconds", "A histogram.", []float64{0.1, 1}).Observe(0.5)
	r.Histogram("lla_test_seconds", "A histogram.", []float64{0.1, 1}).Observe(5)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lla_test_total counter",
		"lla_test_total 3",
		`lla_test_value{resource="r0"} 0.5`,
		`lla_test_value{resource="r1"} 1.5`,
		`lla_test_seconds_bucket{le="0.1"} 1`,
		`lla_test_seconds_bucket{le="1"} 2`,
		`lla_test_seconds_bucket{le="+Inf"} 3`,
		"lla_test_seconds_sum 5.55",
		"lla_test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Re-registration returns the same handle.
	if r.Counter("lla_test_total", "A counter.").Value() != 3 {
		t.Error("re-registration did not return the existing counter")
	}
	// Deterministic rendering.
	var b2 bytes.Buffer
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition is not deterministic")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a name under two types must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("lla_conflict", "c")
	r.Gauge("lla_conflict", "g")
}

func TestRingRecorder(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		s := r.Begin(i)
		if s == nil {
			t.Fatalf("Begin(%d) returned nil without downsampling", i)
		}
		s.Iteration = i
		s.Utility = float64(i)
		s.Mu = append(s.Mu[:0], float64(i), float64(i+1))
		r.Commit(s)
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3/5", r.Len(), r.Total())
	}
	got := r.Samples()
	for i, s := range got {
		wantIter := i + 2
		if s.Iteration != wantIter || s.Mu[0] != float64(wantIter) {
			t.Errorf("sample %d = iter %d mu %v", i, s.Iteration, s.Mu)
		}
	}
	last, ok := r.Last()
	if !ok || last.Iteration != 4 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
	// The copies must not alias the ring.
	got[0].Mu[0] = -1
	if again := r.Samples(); again[0].Mu[0] == -1 {
		t.Error("Samples aliases ring storage")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestRingDownsampling(t *testing.T) {
	r := NewRing(10)
	r.Every = 3
	for i := 0; i < 10; i++ {
		if s := r.Begin(i); s != nil {
			s.Iteration = i
			r.Commit(s)
		}
	}
	want := []int{0, 3, 6, 9}
	got := r.Samples()
	if len(got) != len(want) {
		t.Fatalf("recorded %d samples, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Iteration != want[i] {
			t.Errorf("sample %d iter %d, want %d", i, s.Iteration, want[i])
		}
	}
}

func TestJSONLSampleAndEventLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	s := j.Begin(0)
	s.Iteration = 0
	s.Utility = 42
	s.Mu = append(s.Mu[:0], 1, 2)
	j.Commit(s)
	j.Emit(Event{Kind: EventConverged, Iteration: 7, Value: 42})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["record"] != "sample" || rec["utility"] != 42.0 {
		t.Errorf("sample line = %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["record"] != "event" || rec["event"] != EventConverged || rec["t_unix_ns"] == 0.0 {
		t.Errorf("event line = %v", rec)
	}
}

func TestMemorySink(t *testing.T) {
	m := NewMemory()
	var o *Observer
	o.Emit(Event{Kind: EventLeaseExpiry}) // nil observer: no-op
	o = &Observer{Trace: m}
	o.Emit(Event{Kind: EventLeaseExpiry, Task: "task1"})
	o.Emit(Event{Kind: EventConverged})
	if got := m.ByKind(EventLeaseExpiry); len(got) != 1 || got[0].Task != "task1" {
		t.Fatalf("ByKind = %v", got)
	}
	if evs := m.Events(); len(evs) != 2 || evs[0].TimeUnixNano == 0 {
		t.Fatalf("Events = %v", evs)
	}
}

func TestConcurrentEmitAndRecord(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	m := NewMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Emit(Event{Kind: EventDegradedEnter, Resource: fmt.Sprintf("r%d", g)})
				m.Emit(Event{Kind: EventDegradedExit})
			}
		}(g)
	}
	wg.Wait()
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 800 {
		t.Fatalf("JSONL wrote %d lines, want 800", got)
	}
	if got := len(m.Events()); got != 800 {
		t.Fatalf("memory sink holds %d events, want 800", got)
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lla_dist_retransmits_total", "Messages re-sent.").Add(2)
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "lla_dist_retransmits_total 2") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Error("/debug/vars missing expvar memstats")
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
}
