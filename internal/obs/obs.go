// Package obs is the observability layer of the LLA reproduction: it makes
// the *online* behavior the paper is judged on — how fast prices mu_r
// (Equation 8), path prices lambda_p (Equation 9) and latency assignments
// re-converge after workload and resource variations (Sections 5 and 6) —
// visible while the system runs, instead of only through a final result.
//
// Three channels, bundled by Observer and all optional:
//
//   - Recorder: per-iteration telemetry (price vectors, KKT stationarity
//     residuals of Equation 7, aggregate utility, per-resource demand vs.
//     availability B_r, step-size controller state). Ring keeps the last N
//     samples in memory with no steady-state allocation; JSONL streams every
//     sample as one JSON object per line.
//   - Registry: counters, gauges and histograms exported in Prometheus text
//     format (and via expvar on the debug server). NewEngineMetrics and
//     NewDistMetrics register the standard LLA metric sets.
//   - Sink: structured trace events (convergence detected, workload change,
//     lease expiry, degradation enter/exit) with JSONL and in-memory
//     implementations.
//
// The package deliberately depends only on the standard library so every
// layer (internal/core, internal/dist, internal/eval, the CLIs) can attach
// to it without import cycles. Attaching costs: a component with a nil
// Observer pays a single nil-check per iteration — internal/core's engine
// hot path stays allocation-free (see the alloc regression tests).
// OBSERVABILITY.md documents every exported field and metric.
package obs

// Observer bundles the three observability channels. A nil *Observer — or
// any nil field — disables that channel; components check once per
// iteration and skip all telemetry work when nothing is attached.
type Observer struct {
	// Recorder receives per-iteration telemetry samples.
	Recorder Recorder
	// Metrics is the counter/gauge/histogram registry components register
	// their standard metric sets on.
	Metrics *Registry
	// Trace receives structured trace events.
	Trace Sink
}

// Emit forwards an event to the trace sink, stamping the wall-clock time.
// Safe on a nil Observer or nil Trace; safe for concurrent use when the
// underlying sink is (both provided sinks are).
func (o *Observer) Emit(ev Event) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.Emit(stamp(ev))
}
