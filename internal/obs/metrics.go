package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable;
// all methods are atomic and safe on a nil receiver (a nil counter is a
// disabled counter — components hold possibly-nil handles and increment
// unconditionally).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric that can go up and down. Safe on a nil
// receiver, like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets (Prometheus
// histogram semantics). Safe on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []uint64  // len(bounds)+1, non-cumulative
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// metric is one registered instance (family name + label set).
type metric struct {
	family string
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family carries the per-family metadata emitted once in the text format.
type family struct {
	help string
	typ  string // "counter", "gauge", "histogram"
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric handles are cheap to use (atomic operations);
// registration takes a mutex and should happen at attach time, not in hot
// paths. Registering the same family+labels again returns the existing
// handle, so independent components can share a metric.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	metrics  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		metrics:  make(map[string]*metric),
	}
}

// renderLabels formats k/v pairs as a deterministic Prometheus label block.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the metric for family+labels, creating it via mk if new.
// It panics when the name is already registered as a different type —
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help, typ string, labels []string, mk func(*metric)) *metric {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
		}
	} else {
		r.families[name] = &family{help: help, typ: typ}
	}
	if m, ok := r.metrics[key]; ok {
		return m
	}
	m := &metric{family: name, labels: ls}
	mk(m)
	r.metrics[key] = m
	return m
}

// Counter returns (registering if needed) the counter for name and the
// optional key/value label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, "counter", labels, func(m *metric) { m.c = &Counter{} }).c
}

// Gauge returns (registering if needed) the gauge for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, "gauge", labels, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns (registering if needed) the histogram for name and
// labels, with the given ascending upper bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, help, "histogram", labels, func(m *metric) {
		m.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
	}).h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families and instances in
// deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	byFamily := make(map[string][]*metric, len(r.families))
	for _, m := range r.metrics {
		byFamily[m.family] = append(byFamily[m.family], m)
	}
	fams := make(map[string]family, len(r.families))
	for name, f := range r.families {
		fams[name] = *f
	}
	r.mu.Unlock()

	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.typ); err != nil {
			return err
		}
		ms := byFamily[name]
		sort.Slice(ms, func(i, j int) bool { return ms[i].labels < ms[j].labels })
		for _, m := range ms {
			var err error
			switch {
			case m.c != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", name, m.labels, m.c.Value())
			case m.g != nil:
				_, err = fmt.Fprintf(w, "%s%s %g\n", name, m.labels, m.g.Value())
			case m.h != nil:
				err = m.h.write(w, name, m.labels)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// write renders a histogram's cumulative buckets, sum and count.
func (h *Histogram) write(w io.Writer, name, labels string) error {
	h.mu.Lock()
	bounds := append([]float64(nil), h.bounds...)
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	// Splice le="..." into the label block.
	open := "{"
	closing := "}"
	inner := ""
	if labels != "" {
		inner = labels[1:len(labels)-1] + ","
	}
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s%sle=%q%s %d\n", name, open, inner, fmt.Sprintf("%g", b), closing, cum); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s%sle=\"+Inf\"%s %d\n", name, open, inner, closing, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	return err
}
