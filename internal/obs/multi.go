package obs

// Fan-out adapters: a component accepts one Recorder and one Sink, but a
// run may want both a JSONL trace and the live SSE gateway attached.

// multiRecorder fans Begin/Commit out to several recorders. It owns one
// scratch sample the component fills; Commit deep-copies it into each
// sub-recorder's own Begin sample, preserving every recorder's slice-reuse
// contract.
type multiRecorder struct {
	rs      []Recorder
	scratch IterationSample
	active  []Recorder
	pending []*IterationSample
}

// MultiRecorder composes recorders into one. Nil entries are dropped; the
// result is nil for an empty set and the recorder itself for a single one.
// Like any Recorder, the composite must be attached to at most one engine.
func MultiRecorder(rs ...Recorder) Recorder {
	kept := make([]Recorder, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multiRecorder{rs: kept}
}

// Begin implements Recorder: it returns the shared scratch sample unless
// every sub-recorder downsampled the iteration away.
func (m *multiRecorder) Begin(iteration int) *IterationSample {
	m.active, m.pending = m.active[:0], m.pending[:0]
	for _, r := range m.rs {
		if s := r.Begin(iteration); s != nil {
			m.active = append(m.active, r)
			m.pending = append(m.pending, s)
		}
	}
	if len(m.active) == 0 {
		return nil
	}
	return &m.scratch
}

// Commit implements Recorder.
func (m *multiRecorder) Commit(s *IterationSample) {
	for i, r := range m.active {
		m.pending[i].copyFrom(s)
		r.Commit(m.pending[i])
	}
}

// multiSink fans Emit out to several sinks.
type multiSink struct{ sinks []Sink }

// MultiSink composes sinks into one. Nil entries are dropped; the result
// is nil for an empty set and the sink itself for a single one.
func MultiSink(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multiSink{sinks: kept}
}

// Emit implements Sink.
func (m *multiSink) Emit(ev Event) {
	for _, s := range m.sinks {
		s.Emit(ev)
	}
}
