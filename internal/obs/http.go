package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the debug mux served behind the CLIs' -debug-addr
// flag:
//
//	/metrics        the registry in Prometheus text format
//	/debug/vars     expvar JSON (process cmdline + memstats)
//	/debug/pprof/   the full net/http/pprof profile suite
//
// reg may be nil, in which case /metrics serves an empty exposition.
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// Wire pprof explicitly rather than importing it for its DefaultServeMux
	// side effect: the debug server must not leak onto any mux the embedding
	// program serves application traffic from.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr (e.g. "127.0.0.1:6060"; port 0
// picks a free port) in a background goroutine and returns the server and
// its bound address. Callers own shutdown via srv.Close.
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: DebugHandler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
