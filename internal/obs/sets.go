package obs

// Standard metric sets. Components resolve their handles once at attach
// time (registration locks the registry) and afterwards update them with
// atomic operations only. OBSERVABILITY.md documents every name.

// EngineMetrics is the synchronous optimizer's standard metric set.
type EngineMetrics struct {
	// Iterations counts completed engine iterations.
	Iterations *Counter
	// Utility is the aggregate utility Σ_i U_i after the last iteration.
	Utility *Gauge
	// KKTMax is the worst normalized Equation 7 stationarity residual.
	KKTMax *Gauge
	// MaxResourceViolation and MaxPathViolation mirror the Snapshot
	// diagnostics of the same names.
	MaxResourceViolation *Gauge
	MaxPathViolation     *Gauge
}

// NewEngineMetrics registers (or re-resolves) the engine metric set on r.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	return &EngineMetrics{
		Iterations:           r.Counter("lla_engine_iterations_total", "Completed optimizer iterations."),
		Utility:              r.Gauge("lla_engine_utility", "Aggregate utility after the last iteration."),
		KKTMax:               r.Gauge("lla_engine_kkt_residual_max", "Worst normalized KKT stationarity residual (Eq 7)."),
		MaxResourceViolation: r.Gauge("lla_engine_max_resource_violation", "Worst resource capacity violation, share units (Eq 3)."),
		MaxPathViolation:     r.Gauge("lla_engine_max_path_violation", "Worst relative critical-time violation (Eq 4)."),
	}
}

// ResourceMetrics is the per-resource gauge set, shared by the engine and
// the distributed resource nodes (labelled by resource ID).
type ResourceMetrics struct {
	// ShareSum is the total share demanded on the resource (Σ share_r).
	ShareSum *Gauge
	// Availability is the capacity B_r.
	Availability *Gauge
	// Utilization is ShareSum / Availability (1.0 = saturated; LLA's
	// optimum saturates congested resources exactly).
	Utilization *Gauge
	// Price is the resource price mu_r (Eq 8).
	Price *Gauge
}

// NewResourceMetrics registers the per-resource gauges for resource id.
func NewResourceMetrics(r *Registry, id string) *ResourceMetrics {
	return &ResourceMetrics{
		ShareSum:     r.Gauge("lla_resource_share_sum", "Total share demanded on the resource.", "resource", id),
		Availability: r.Gauge("lla_resource_availability", "Resource availability B_r.", "resource", id),
		Utilization:  r.Gauge("lla_resource_utilization", "Demand over availability (1.0 = saturated).", "resource", id),
		Price:        r.Gauge("lla_resource_price", "Resource price mu_r (Eq 8).", "resource", id),
	}
}

// DistMetrics is the distributed runtime's standard metric set — the live
// counterpart of the dist Result/AsyncResult counters.
type DistMetrics struct {
	// Rounds counts fully reported synchronous rounds (coordinator view).
	Rounds *Counter
	// Retransmits counts reliability-layer re-sends (sender timeouts,
	// receiver-side stale recovery, async idle heartbeats).
	Retransmits *Counter
	// RejectedStale counts deliveries rejected as duplicates or
	// reordered-stale (round gating or per-sender sequence dedup).
	RejectedStale *Counter
	// DegradedRounds counts async controller steps computed while a used
	// resource's price lease had expired.
	DegradedRounds *Counter
	// LeaseExpirations counts lease expirations (coordinator report leases
	// and async per-resource price leases).
	LeaseExpirations *Counter
	// RoundSeconds is the distribution of coordinator-observed gaps
	// between completed rounds.
	RoundSeconds *Histogram
}

// NewDistMetrics registers the distributed runtime metric set on r.
func NewDistMetrics(r *Registry) *DistMetrics {
	return &DistMetrics{
		Rounds:           r.Counter("lla_dist_rounds_total", "Fully reported synchronous rounds."),
		Retransmits:      r.Counter("lla_dist_retransmits_total", "Messages re-sent by the reliability layer."),
		RejectedStale:    r.Counter("lla_dist_rejected_stale_total", "Deliveries rejected as duplicate or stale."),
		DegradedRounds:   r.Counter("lla_dist_degraded_rounds_total", "Async compute steps taken on frozen (stale) prices."),
		LeaseExpirations: r.Counter("lla_dist_lease_expirations_total", "Report/price leases that expired."),
		RoundSeconds: r.Histogram("lla_dist_round_seconds", "Gap between completed rounds at the coordinator.",
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
	}
}
