package obs

// Standard metric sets. Components resolve their handles once at attach
// time (registration locks the registry) and afterwards update them with
// atomic operations only. OBSERVABILITY.md documents every name.

// EngineMetrics is the synchronous optimizer's standard metric set.
type EngineMetrics struct {
	// Iterations counts completed engine iterations.
	Iterations *Counter
	// Utility is the aggregate utility Σ_i U_i after the last iteration.
	Utility *Gauge
	// KKTMax is the worst normalized Equation 7 stationarity residual.
	KKTMax *Gauge
	// MaxResourceViolation and MaxPathViolation mirror the Snapshot
	// diagnostics of the same names.
	MaxResourceViolation *Gauge
	MaxPathViolation     *Gauge
}

// NewEngineMetrics registers (or re-resolves) the engine metric set on r.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	return &EngineMetrics{
		Iterations:           r.Counter("lla_engine_iterations_total", "Completed optimizer iterations."),
		Utility:              r.Gauge("lla_engine_utility", "Aggregate utility after the last iteration."),
		KKTMax:               r.Gauge("lla_engine_kkt_residual_max", "Worst normalized KKT stationarity residual (Eq 7)."),
		MaxResourceViolation: r.Gauge("lla_engine_max_resource_violation", "Worst resource capacity violation, share units (Eq 3)."),
		MaxPathViolation:     r.Gauge("lla_engine_max_path_violation", "Worst relative critical-time violation (Eq 4)."),
	}
}

// ResourceMetrics is the per-resource gauge set, shared by the engine and
// the distributed resource nodes (labelled by resource ID).
type ResourceMetrics struct {
	// ShareSum is the total share demanded on the resource (Σ share_r).
	ShareSum *Gauge
	// Availability is the capacity B_r.
	Availability *Gauge
	// Utilization is ShareSum / Availability (1.0 = saturated; LLA's
	// optimum saturates congested resources exactly).
	Utilization *Gauge
	// Price is the resource price mu_r (Eq 8).
	Price *Gauge
}

// NewResourceMetrics registers the per-resource gauges for resource id.
func NewResourceMetrics(r *Registry, id string) *ResourceMetrics {
	return &ResourceMetrics{
		ShareSum:     r.Gauge("lla_resource_share_sum", "Total share demanded on the resource.", "resource", id),
		Availability: r.Gauge("lla_resource_availability", "Resource availability B_r.", "resource", id),
		Utilization:  r.Gauge("lla_resource_utilization", "Demand over availability (1.0 = saturated).", "resource", id),
		Price:        r.Gauge("lla_resource_price", "Resource price mu_r (Eq 8).", "resource", id),
	}
}

// SparseMetrics is the incremental-iteration metric set: how much work the
// active-set engine path skipped (bitwise fixed-point controllers and clean
// resources) and how much wire traffic the distributed delta codec saved.
// The engine publishes the first four; the distributed runtime the last two.
type SparseMetrics struct {
	// SkippedSolves counts controller solves skipped because the observed
	// prices matched the previous solve's fingerprint at a fixed point.
	SkippedSolves *Counter
	// ExecutedSolves counts controller solves actually performed.
	ExecutedSolves *Counter
	// CleanResources counts resource price updates skipped as clean.
	CleanResources *Counter
	// RepricedResources counts resource price updates actually performed.
	RepricedResources *Counter
	// DeltaBroadcasts counts price broadcasts suppressed by the delta
	// codec (mu unchanged since the receiver's acknowledged round).
	DeltaBroadcasts *Counter
	// DeltaBytesSaved counts payload bytes the suppressed broadcasts and
	// coalesced reports would have put on the wire.
	DeltaBytesSaved *Counter
}

// NewSparseMetrics registers the incremental-iteration metric set on r.
func NewSparseMetrics(r *Registry) *SparseMetrics {
	return &SparseMetrics{
		SkippedSolves:     r.Counter("lla_sparse_skipped_solves_total", "Controller solves skipped at a bitwise fixed point."),
		ExecutedSolves:    r.Counter("lla_sparse_executed_solves_total", "Controller solves actually performed."),
		CleanResources:    r.Counter("lla_sparse_clean_resources_total", "Resource price updates skipped as clean."),
		RepricedResources: r.Counter("lla_sparse_repriced_resources_total", "Resource price updates actually performed."),
		DeltaBroadcasts:   r.Counter("lla_sparse_delta_broadcasts_total", "Price broadcasts suppressed by the delta codec."),
		DeltaBytesSaved:   r.Counter("lla_sparse_delta_bytes_saved_total", "Payload bytes saved by delta suppression and report coalescing."),
	}
}

// SolverMetrics is the price-dynamics metric set (DESIGN.md §12), labelled
// by solver name: how many price rounds the configured solver has taken,
// how often an accelerated solver's safeguard fell back to the reference
// gradient step, and the residual trajectory (the largest per-round price
// movement), whose decay toward zero is the live convergence signal.
type SolverMetrics struct {
	// Rounds counts price-update rounds taken by the solver.
	Rounds *Counter
	// Fallbacks counts safeguard fallbacks to the reference gradient step
	// (Anderson's rejected extrapolations, Newton's degenerate-curvature
	// coordinates); always zero for the reference solver.
	Fallbacks *Counter
	// Residual is the largest |Δμ| any resource moved in the last round.
	Residual *Gauge
}

// NewSolverMetrics registers the price-dynamics metric set for the named
// solver on r.
func NewSolverMetrics(r *Registry, solver string) *SolverMetrics {
	return &SolverMetrics{
		Rounds:    r.Counter("lla_solver_rounds_total", "Price-update rounds taken, by solver.", "solver", solver),
		Fallbacks: r.Counter("lla_solver_fallbacks_total", "Safeguard fallbacks to the reference gradient step.", "solver", solver),
		Residual:  r.Gauge("lla_solver_residual_max", "Largest per-resource price movement |dmu| of the last round.", "solver", solver),
	}
}

// AdmitMetrics is the admission controller's standard metric set — the live
// counterpart of its returned decision log (the internal/admit tests assert
// the two agree exactly).
type AdmitMetrics struct {
	// Considered counts arrival offers presented to the controller.
	Considered *Counter
	// Admitted counts offers that passed every gate and were enacted.
	Admitted *Counter
	// RejectedStatic/Price/Trial/Quarantine count rejections by the gate
	// that fired (stage label on one metric name).
	RejectedStatic     *Counter
	RejectedPrice      *Counter
	RejectedTrial      *Counter
	RejectedQuarantine *Counter
	// Departures counts resident tasks removed.
	Departures *Counter
	// Resident is the number of tasks currently in the live workload.
	Resident *Gauge
	// ReconvergeIters is the distribution of live-engine iterations needed
	// to re-converge after an enacted change.
	ReconvergeIters *Histogram
}

// NewAdmitMetrics registers the admission metric set on r.
func NewAdmitMetrics(r *Registry) *AdmitMetrics {
	return &AdmitMetrics{
		Considered:         r.Counter("lla_admit_considered_total", "Arrival offers presented to the admission controller."),
		Admitted:           r.Counter("lla_admit_admitted_total", "Offers admitted and enacted."),
		RejectedStatic:     r.Counter("lla_admit_rejected_total", "Offers rejected, by gate.", "stage", "static"),
		RejectedPrice:      r.Counter("lla_admit_rejected_total", "Offers rejected, by gate.", "stage", "price"),
		RejectedTrial:      r.Counter("lla_admit_rejected_total", "Offers rejected, by gate.", "stage", "trial"),
		RejectedQuarantine: r.Counter("lla_admit_rejected_total", "Offers rejected, by gate.", "stage", "quarantine"),
		Departures:         r.Counter("lla_admit_departures_total", "Resident tasks removed."),
		Resident:           r.Gauge("lla_admit_resident_tasks", "Tasks currently resident in the live workload."),
		ReconvergeIters: r.Histogram("lla_admit_reconverge_iterations", "Live-engine iterations to re-converge after an enacted change.",
			[]float64{10, 25, 50, 100, 250, 500, 1000, 2500}),
	}
}

// PlaceMetrics is the price-guided placer's metric set.
type PlaceMetrics struct {
	// Bindings counts subtask-to-resource bindings chosen by Bind.
	Bindings *Counter
	// Rebalances counts resident tasks moved by the skew-triggered
	// rebalance pass.
	Rebalances *Counter
}

// NewPlaceMetrics registers the placement metric set on r.
func NewPlaceMetrics(r *Registry) *PlaceMetrics {
	return &PlaceMetrics{
		Bindings:   r.Counter("lla_place_bindings_total", "Subtask-to-resource bindings chosen by the placer."),
		Rebalances: r.Counter("lla_place_rebalances_total", "Resident tasks moved by the rebalance pass."),
	}
}

// DistMetrics is the distributed runtime's standard metric set — the live
// counterpart of the dist Result/AsyncResult counters.
type DistMetrics struct {
	// Rounds counts fully reported synchronous rounds (coordinator view).
	Rounds *Counter
	// Retransmits counts reliability-layer re-sends (sender timeouts,
	// receiver-side stale recovery, async idle heartbeats).
	Retransmits *Counter
	// RejectedStale counts deliveries rejected as duplicates or
	// reordered-stale (round gating or per-sender sequence dedup).
	RejectedStale *Counter
	// DegradedRounds counts async controller steps computed while a used
	// resource's price lease had expired.
	DegradedRounds *Counter
	// LeaseExpirations counts lease expirations (coordinator report leases
	// and async per-resource price leases).
	LeaseExpirations *Counter
	// RoundSeconds is the distribution of coordinator-observed gaps
	// between completed rounds.
	RoundSeconds *Histogram
}

// NewDistMetrics registers the distributed runtime metric set on r.
func NewDistMetrics(r *Registry) *DistMetrics {
	return &DistMetrics{
		Rounds:           r.Counter("lla_dist_rounds_total", "Fully reported synchronous rounds."),
		Retransmits:      r.Counter("lla_dist_retransmits_total", "Messages re-sent by the reliability layer."),
		RejectedStale:    r.Counter("lla_dist_rejected_stale_total", "Deliveries rejected as duplicate or stale."),
		DegradedRounds:   r.Counter("lla_dist_degraded_rounds_total", "Async compute steps taken on frozen (stale) prices."),
		LeaseExpirations: r.Counter("lla_dist_lease_expirations_total", "Report/price leases that expired."),
		RoundSeconds: r.Histogram("lla_dist_round_seconds", "Gap between completed rounds at the coordinator.",
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
	}
}

// WireMetrics is the binary wire codec's metric set (PROTOCOL.md): frame
// and byte volume per direction, RAW escape-hatch frames, decode failures,
// and the outcome of per-connection codec negotiations.
type WireMetrics struct {
	// FramesEncoded/FramesDecoded count binary frames produced and
	// consumed.
	FramesEncoded *Counter
	FramesDecoded *Counter
	// BytesEncoded/BytesDecoded count whole-frame bytes (header, body and
	// CRC trailer) per direction.
	BytesEncoded *Counter
	BytesDecoded *Counter
	// RawFrames counts messages that rode the RAW escape hatch because
	// their kind or payload shape has no dedicated frame type.
	RawFrames *Counter
	// DecodeErrors counts frames rejected by the defensive decoder (bad
	// magic/version, CRC mismatch, malformed body).
	DecodeErrors *Counter
	// NegotiatedBinary/NegotiatedJSON count handshakes by outcome: JSON
	// covers version skew, dictionary mismatch, and pre-codec peers.
	NegotiatedBinary *Counter
	NegotiatedJSON   *Counter
}

// NewWireMetrics registers the wire codec metric set on r.
func NewWireMetrics(r *Registry) *WireMetrics {
	return &WireMetrics{
		FramesEncoded:    r.Counter("lla_wire_frames_total", "Binary frames, by direction.", "dir", "encode"),
		FramesDecoded:    r.Counter("lla_wire_frames_total", "Binary frames, by direction.", "dir", "decode"),
		BytesEncoded:     r.Counter("lla_wire_bytes_total", "Binary frame bytes, by direction.", "dir", "encode"),
		BytesDecoded:     r.Counter("lla_wire_bytes_total", "Binary frame bytes, by direction.", "dir", "decode"),
		RawFrames:        r.Counter("lla_wire_raw_frames_total", "Messages carried by the RAW escape-hatch frame."),
		DecodeErrors:     r.Counter("lla_wire_decode_errors_total", "Frames rejected by the defensive decoder."),
		NegotiatedBinary: r.Counter("lla_wire_negotiations_total", "Codec negotiations, by outcome.", "outcome", "binary"),
		NegotiatedJSON:   r.Counter("lla_wire_negotiations_total", "Codec negotiations, by outcome.", "outcome", "json"),
	}
}

// GatewayMetrics is the streaming control-plane gateway's metric set:
// connection count, emitted event volume by type, and the backpressure
// counters (events dropped on slow consumers, keyframe resyncs that
// repaired them).
type GatewayMetrics struct {
	// Connections is the number of live /stream subscribers.
	Connections *Gauge
	// Keyframes/Deltas/TraceEvents count emitted events by type.
	Keyframes   *Counter
	Deltas      *Counter
	TraceEvents *Counter
	// Dropped counts events discarded because a subscriber's queue was
	// full; the subscriber is marked lost until a keyframe resync.
	Dropped *Counter
	// Resyncs counts keyframe resyncs delivered to lost subscribers.
	Resyncs *Counter
}

// NewGatewayMetrics registers the gateway metric set on r.
func NewGatewayMetrics(r *Registry) *GatewayMetrics {
	return &GatewayMetrics{
		Connections: r.Gauge("lla_gateway_connections", "Live SSE stream subscribers."),
		Keyframes:   r.Counter("lla_gateway_events_total", "Emitted gateway events, by type.", "type", "keyframe"),
		Deltas:      r.Counter("lla_gateway_events_total", "Emitted gateway events, by type.", "type", "delta"),
		TraceEvents: r.Counter("lla_gateway_events_total", "Emitted gateway events, by type.", "type", "trace"),
		Dropped:     r.Counter("lla_gateway_dropped_events_total", "Events discarded on slow subscribers."),
		Resyncs:     r.Counter("lla_gateway_resyncs_total", "Keyframe resyncs delivered to lost subscribers."),
	}
}

// FleetMetrics is the hierarchical sharding metric set (SHARDING.md): the
// top-level aggregator's boundary-price iteration and the partition it runs
// over.
type FleetMetrics struct {
	// Rounds counts completed aggregator rounds (local sweeps + one
	// boundary-price update).
	Rounds *Counter
	// LocalIters counts shard engine iterations summed across shards.
	LocalIters *Counter
	// Broadcasts counts boundary-price pins broadcast to shards.
	Broadcasts *Counter
	// BoundaryResources is the number of cross-shard resources the
	// aggregator iterates on.
	BoundaryResources *Gauge
	// CutCost is the partition cut Σ_r (shards touching r − 1).
	CutCost *Gauge
	// BoundaryResidual is the last round's worst boundary residual: the
	// larger of the relative capacity overload and the relative
	// boundary-price movement.
	BoundaryResidual *Gauge
	// KKTMax is the worst shard-local KKT residual of the last round.
	KKTMax *Gauge
	// Converged is 1 once the KKT stopping rule has certified the global
	// fixed point, else 0.
	Converged *Gauge
	// ShardSweeps and ShardSkips count per-shard sweep decisions: a sweep
	// runs the shard engine's local iteration; a skip reuses the shard's
	// frozen state because its pinned boundary prices did not move since its
	// last sweep ended at a self-fixed-point (the shard-level active set).
	ShardSweeps *Counter
	ShardSkips  *Counter
	// ShardWorkers is the resolved sweep concurrency (fleet.Config
	// .ShardWorkers after defaulting).
	ShardWorkers *Gauge
	// ShardRebuilds and ShardReuses count Fleet.ReplaceWorkload decisions:
	// shards rebuilt (warm-started via state carry-over) versus shards whose
	// engines were left untouched by the churn delta.
	ShardRebuilds *Counter
	ShardReuses   *Counter
}

// NewFleetMetrics registers the fleet metric set on r.
func NewFleetMetrics(r *Registry) *FleetMetrics {
	return &FleetMetrics{
		Rounds:            r.Counter("lla_fleet_rounds_total", "Completed aggregator rounds."),
		LocalIters:        r.Counter("lla_fleet_local_iters_total", "Shard engine iterations, summed across shards."),
		Broadcasts:        r.Counter("lla_fleet_broadcasts_total", "Boundary-price pins broadcast to shards."),
		BoundaryResources: r.Gauge("lla_fleet_boundary_resources", "Cross-shard resources the aggregator iterates on."),
		CutCost:           r.Gauge("lla_fleet_cut_cost", "Partition cut: sum over resources of (touching shards - 1)."),
		BoundaryResidual:  r.Gauge("lla_fleet_boundary_residual", "Worst boundary residual of the last round."),
		KKTMax:            r.Gauge("lla_fleet_kkt_residual_max", "Worst shard-local KKT residual of the last round."),
		Converged:         r.Gauge("lla_fleet_converged", "1 once the global fixed point is certified, else 0."),
		ShardSweeps:       r.Counter("lla_fleet_shard_sweeps_total", "Shard sweeps executed by aggregator rounds."),
		ShardSkips:        r.Counter("lla_fleet_shard_skips_total", "Shard sweeps skipped by the shard-level active set."),
		ShardWorkers:      r.Gauge("lla_fleet_shard_workers", "Resolved concurrent shard-sweep worker count."),
		ShardRebuilds:     r.Counter("lla_fleet_shard_rebuilds_total", "Shards rebuilt (warm) by ReplaceWorkload churn deltas."),
		ShardReuses:       r.Counter("lla_fleet_shard_reuses_total", "Shards left untouched by ReplaceWorkload churn deltas."),
	}
}

// RecoverMetrics is the crash-recovery metric set: checkpoint writes,
// restores, the coordinator generation, and the fencing/rejoin counters that
// prove a dead generation stayed dead.
type RecoverMetrics struct {
	// Checkpoints counts durably written checkpoints.
	Checkpoints *Counter
	// CheckpointBytes is the encoded size of the most recent checkpoint.
	CheckpointBytes *Gauge
	// Restores counts engines rebuilt from a checkpoint.
	Restores *Counter
	// Epoch is the current coordinator generation.
	Epoch *Gauge
	// FencedFrames counts stale-epoch frames discarded by epoch fencing.
	FencedFrames *Counter
	// Rejoins counts completed rejoin handshakes after coordinator restarts.
	Rejoins *Counter
	// RecoveryRounds is the distribution of rounds needed to re-converge
	// after a restore (warm restarts; cold re-convergence sits in the tail).
	RecoveryRounds *Histogram
}

// NewRecoverMetrics registers the crash-recovery metric set on r.
func NewRecoverMetrics(r *Registry) *RecoverMetrics {
	return &RecoverMetrics{
		Checkpoints:     r.Counter("lla_recover_checkpoints_total", "Checkpoints durably written."),
		CheckpointBytes: r.Gauge("lla_recover_checkpoint_bytes", "Encoded size of the most recent checkpoint."),
		Restores:        r.Counter("lla_recover_restores_total", "Engines rebuilt from a checkpoint."),
		Epoch:           r.Gauge("lla_recover_epoch", "Current coordinator generation."),
		FencedFrames:    r.Counter("lla_recover_fenced_frames_total", "Stale-epoch frames discarded by fencing."),
		Rejoins:         r.Counter("lla_recover_rejoins_total", "Completed rejoin handshakes after restarts."),
		RecoveryRounds: r.Histogram("lla_recover_recovery_rounds", "Rounds to re-converge after a restore.",
			[]float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500}),
	}
}
