package workload

import (
	"fmt"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
)

// Parameters of the prototype workload (Section 6.2).
const (
	// PrototypeLagMs is the resource lag assumed by the prototype's share
	// model (Section 6.3: "a resource lag of 5ms").
	PrototypeLagMs = 5.0
	// PrototypeGCShare is the share reserved for the Metronome garbage
	// collector, leaving B_r = 0.9 for the tasks.
	PrototypeGCShare = 0.1

	// Fast tasks (tasks 1, 2): WCET 5ms, 40 jobs/second, critical time
	// 105ms; minimum share per subtask = 40/s * 5ms = 0.2.
	FastExecMs     = 5.0
	FastPeriodMs   = 25.0
	FastCriticalMs = 105.0

	// Slow tasks (tasks 3, 4): WCET 13ms, 10 jobs/second, critical time
	// 800ms; minimum share per subtask = 10/s * 13ms = 0.13.
	SlowExecMs     = 13.0
	SlowPeriodMs   = 100.0
	SlowCriticalMs = 800.0
)

// Prototype returns the four-task workload of the paper's system experiment
// (Section 6.2): four linearly-dependent three-subtask tasks over three CPU
// resources, so each CPU runs one subtask of every task. Tasks 1-2 are
// "fast" (WCET 5ms, 40/s, C=105ms), tasks 3-4 "slow" (WCET 13ms, 10/s,
// C=800ms); all use the utility f(lat) = -lat. Each subtask carries its
// rate-derived minimum share (0.2 fast, 0.13 slow) so the optimizer never
// starves a queue.
func Prototype() *Workload {
	res := make([]share.Resource, 3)
	for i := range res {
		res[i] = share.Resource{
			ID:           fmt.Sprintf("cpu%d", i),
			Kind:         share.CPU,
			Availability: 1 - PrototypeGCShare,
			LagMs:        PrototypeLagMs,
		}
	}

	w := &Workload{Name: "prototype-4task", Resources: res, Curves: make(map[string]utility.Curve)}
	for ti := 1; ti <= 4; ti++ {
		fast := ti <= 2
		exec, period, crit := SlowExecMs, SlowPeriodMs, SlowCriticalMs
		if fast {
			exec, period, crit = FastExecMs, FastPeriodMs, FastCriticalMs
		}
		minShare := exec / period // rate (1/ms) * WCET (ms)
		name := fmt.Sprintf("task%d", ti)
		b := task.NewBuilder(name, crit).Trigger(task.Periodic(period))
		var names []string
		for si := 0; si < 3; si++ {
			sn := fmt.Sprintf("T%d%d", ti, si+1)
			b.SubtaskOpts(task.Subtask{
				Name:     sn,
				Resource: fmt.Sprintf("cpu%d", si),
				ExecMs:   exec,
				MinShare: minShare,
			})
			names = append(names, sn)
		}
		b.Chain(names...)
		w.Tasks = append(w.Tasks, b.MustBuild())
		w.Curves[name] = utility.NegLatency{}
	}
	return w
}
