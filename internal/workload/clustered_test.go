package workload

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestClusteredDeterminism(t *testing.T) {
	cfg := DefaultClusteredConfig(42)
	a, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("same config produced different workloads")
	}

	cfg2 := cfg
	cfg2.Seed = 43
	c, err := Clustered(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	jc, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestClusteredSeparableWhenCrossZero(t *testing.T) {
	cfg := DefaultClusteredConfig(7)
	cfg.CrossFraction = 0
	w, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range w.Tasks {
		prefix := tk.Name[:strings.Index(tk.Name, "-")+1]
		for _, s := range tk.Subtasks {
			if !strings.HasPrefix(s.Resource, prefix) {
				t.Fatalf("CrossFraction=0 but task %s has subtask on foreign resource %s", tk.Name, s.Resource)
			}
		}
	}
}

func TestClusteredCrossEdgesPresent(t *testing.T) {
	cfg := DefaultClusteredConfig(7)
	cfg.CrossFraction = 0.5
	cfg.TasksPerCluster = 20
	w, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cross := 0
	for _, tk := range w.Tasks {
		prefix := tk.Name[:strings.Index(tk.Name, "-")+1]
		for _, s := range tk.Subtasks {
			if !strings.HasPrefix(s.Resource, prefix) {
				cross++
			}
		}
	}
	if cross == 0 {
		t.Fatal("CrossFraction=0.5 produced no cross-cluster edges")
	}
}

func TestClusteredReplicateFactorScales(t *testing.T) {
	cfg := DefaultClusteredConfig(5)
	cfg.ReplicateFactor = 3
	w, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Clusters * cfg.TasksPerCluster * cfg.ReplicateFactor
	if len(w.Tasks) != want {
		t.Fatalf("got %d tasks, want %d", len(w.Tasks), want)
	}
}

func TestClusteredRejectsBadConfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*ClusteredConfig)
	}{
		{"zero clusters", func(c *ClusteredConfig) { c.Clusters = 0 }},
		{"zero replicate", func(c *ClusteredConfig) { c.ReplicateFactor = 0 }},
		{"negative cross", func(c *ClusteredConfig) { c.CrossFraction = -0.1 }},
		{"cross above one", func(c *ClusteredConfig) { c.CrossFraction = 1.5 }},
		{"zero tasks", func(c *ClusteredConfig) { c.TasksPerCluster = 0 }},
		{"subtasks exceed pool", func(c *ClusteredConfig) { c.MaxSubtasks = c.ResourcesPerCluster + 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultClusteredConfig(1)
			tc.mut(&cfg)
			if _, err := Clustered(cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

// FuzzClusteredSeed asserts that any seed and cross fraction yields either a
// clean error or a valid, deterministic workload.
func FuzzClusteredSeed(f *testing.F) {
	f.Add(int64(0), 0.0)
	f.Add(int64(42), 0.15)
	f.Add(int64(-9), 1.0)
	f.Fuzz(func(t *testing.T, seed int64, cross float64) {
		cfg := DefaultClusteredConfig(seed)
		cfg.TasksPerCluster = 3
		cfg.CrossFraction = cross
		a, err := Clustered(cfg)
		if err != nil {
			if !(cross >= 0 && cross <= 1) {
				return // rejected cleanly
			}
			t.Fatalf("valid config rejected: %v", err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("generated workload does not validate: %v", err)
		}
		b, err := Clustered(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatal("same config produced different workloads")
		}
	})
}
