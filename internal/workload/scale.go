package workload

import (
	"fmt"

	"lla/internal/utility"
)

// Replicate returns a workload containing factor copies of every task in w
// (sharing w's resources), as in the scalability experiment of Section 5.3:
// "for each of the tasks we add another task with the same characteristics".
// critScale multiplies every critical time, implementing the paper's
// overprovisioning ("we ensure that schedulability is maintained ... by
// setting a high enough critical time"); pass 1 to keep the original
// critical times, which for factor >= 2 yields the unschedulable workload of
// the Section 5.4 schedulability test.
//
// Linear curves are rebuilt against the scaled critical time so that
// f_i(lat) = k*C_i' - lat keeps its intended shape; other curve types are
// reused as-is.
func Replicate(w *Workload, factor int, critScale float64) (*Workload, error) {
	if factor < 1 {
		return nil, fmt.Errorf("workload: replication factor must be >= 1, got %d", factor)
	}
	if critScale <= 0 {
		return nil, fmt.Errorf("workload: critical-time scale must be positive, got %v", critScale)
	}
	out := &Workload{
		Name:      fmt.Sprintf("%s-x%d", w.Name, factor),
		Resources: append(w.Resources[:0:0], w.Resources...),
		Curves:    make(map[string]utility.Curve, len(w.Tasks)*factor),
	}
	for copyIdx := 0; copyIdx < factor; copyIdx++ {
		for _, t := range w.Tasks {
			c := t.Clone()
			if copyIdx > 0 {
				c.Name = fmt.Sprintf("%s-copy%d", t.Name, copyIdx)
				for si := range c.Subtasks {
					c.Subtasks[si].Name = fmt.Sprintf("%s-copy%d", c.Subtasks[si].Name, copyIdx)
				}
			}
			c.CriticalMs = t.CriticalMs * critScale
			curve := w.Curves[t.Name]
			if lin, ok := curve.(utility.Linear); ok {
				curve = utility.Linear{K: lin.K, CMs: c.CriticalMs}
			}
			out.Tasks = append(out.Tasks, c)
			out.Curves[c.Name] = curve
		}
	}
	return out, nil
}
