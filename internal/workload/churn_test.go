package workload

import (
	"reflect"
	"testing"
)

func churnTestConfig(seed int64) ChurnConfig {
	return ChurnConfig{
		Seed:               seed,
		MeanInterarrivalMs: 40,
		MeanLifetimeMs:     150,
		HorizonMs:          2000,
		Templates: []ChurnTemplate{
			{Name: "web", CriticalMs: 80, StageExecMs: []float64{3, 2, 4}, UtilityK: 2},
			{Name: "etl", CriticalMs: 250, StageExecMs: []float64{6, 5}, UtilityK: 2},
		},
	}
}

func TestGenerateChurnDeterministic(t *testing.T) {
	a, err := GenerateChurn(churnTestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChurn(churnTestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different traces")
	}
	c, err := GenerateChurn(churnTestConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
}

func TestGenerateChurnWellFormed(t *testing.T) {
	events, err := GenerateChurn(churnTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	arrived := make(map[string]float64)
	departed := make(map[string]bool)
	last := 0.0
	for i, ev := range events {
		if ev.TimeMs < last {
			t.Fatalf("event %d out of order: %v after %v", i, ev.TimeMs, last)
		}
		last = ev.TimeMs
		if ev.TimeMs >= churnTestConfig(3).HorizonMs {
			t.Fatalf("event %d beyond horizon: %v", i, ev.TimeMs)
		}
		if ev.Arrival {
			if _, dup := arrived[ev.Name]; dup {
				t.Fatalf("instance %s arrived twice", ev.Name)
			}
			arrived[ev.Name] = ev.TimeMs
		} else {
			at, ok := arrived[ev.Name]
			if !ok {
				t.Fatalf("instance %s departed before arriving", ev.Name)
			}
			if departed[ev.Name] {
				t.Fatalf("instance %s departed twice", ev.Name)
			}
			if ev.TimeMs < at {
				t.Fatalf("instance %s departs at %v before arrival %v", ev.Name, ev.TimeMs, at)
			}
			departed[ev.Name] = true
		}
	}
	if len(arrived) == 0 {
		t.Fatal("no arrivals generated")
	}
	// Every departure pairs with an arrival; some instances may outlive the
	// horizon, but not more instances than arrived.
	if len(departed) > len(arrived) {
		t.Fatalf("%d departures for %d arrivals", len(departed), len(arrived))
	}
}

func TestGenerateChurnRejectsBadConfig(t *testing.T) {
	bad := []ChurnConfig{
		{},
		{MeanInterarrivalMs: 10, MeanLifetimeMs: 10},
		{MeanInterarrivalMs: 10, MeanLifetimeMs: 10, HorizonMs: 100},
		{MeanInterarrivalMs: 10, MeanLifetimeMs: 10, HorizonMs: 100,
			Templates: []ChurnTemplate{{Name: "x", CriticalMs: 10}}},
	}
	for i, cfg := range bad {
		if _, err := GenerateChurn(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestChurnTemplateInstantiate(t *testing.T) {
	tpl := ChurnTemplate{Name: "web", CriticalMs: 80, StageExecMs: []float64{3, 2}, UtilityK: 2}
	task, curve, err := tpl.Instantiate("web-a0", []string{"r0", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	if task.Name != "web-a0" || len(task.Subtasks) != 2 {
		t.Fatalf("unexpected instance: %+v", task)
	}
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := curve.Value(0); got != 160 {
		t.Fatalf("curve.Value(0) = %v, want 160", got)
	}
	if _, _, err := tpl.Instantiate("web-a1", []string{"r0"}); err == nil {
		t.Fatal("mismatched resource count should fail")
	}
}
