package workload

import (
	"encoding/json"
	"math"
	"testing"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
)

func TestBaseValidates(t *testing.T) {
	w := Base()
	if err := w.Validate(); err != nil {
		t.Fatalf("base workload invalid: %v", err)
	}
	if len(w.Tasks) != 3 || len(w.Resources) != 8 {
		t.Fatalf("base shape: %d tasks, %d resources", len(w.Tasks), len(w.Resources))
	}
	if w.TotalSubtasks() != 21 {
		t.Fatalf("TotalSubtasks = %d, want 21", w.TotalSubtasks())
	}
}

// tableLatencyVector maps the published Table 1 latencies onto a task's
// subtask index order.
func tableLatencyVector(t *testing.T, tk *task.Task) []float64 {
	t.Helper()
	ref := Table1LatenciesMs()[tk.Name]
	if ref == nil {
		t.Fatalf("no Table 1 reference for %s", tk.Name)
	}
	lats := make([]float64, len(tk.Subtasks))
	for i, s := range tk.Subtasks {
		v, ok := ref[s.Name]
		if !ok {
			t.Fatalf("no Table 1 latency for %s.%s", tk.Name, s.Name)
		}
		lats[i] = v
	}
	return lats
}

// The central reconstruction check (see DESIGN.md): at the published Table 1
// latencies, with lag=1ms and B_r=1, the share sums on all eight resources
// are ≈ 1.00 — the paper's "all resources are close to congestion".
func TestBaseReconstructionSharesSumToAvailability(t *testing.T) {
	w := Base()
	sums := make(map[string]float64)
	for _, tk := range w.Tasks {
		lats := tableLatencyVector(t, tk)
		for si, s := range tk.Subtasks {
			r, ok := w.ResourceByID(s.Resource)
			if !ok {
				t.Fatalf("unknown resource %s", s.Resource)
			}
			fn := share.WCETLag{ExecMs: s.ExecMs, LagMs: r.LagMs}
			sums[s.Resource] += fn.Share(lats[si])
		}
	}
	if len(sums) != 8 {
		t.Fatalf("share sums over %d resources, want 8", len(sums))
	}
	for id, sum := range sums {
		if math.Abs(sum-1.0) > 0.02 {
			t.Errorf("resource %s share sum = %.4f, want ≈ 1.00 (Table 1 reconstruction)", id, sum)
		}
	}
}

// At the published latencies, each task's critical path must match the
// published Crit.Path row and respect the critical time.
func TestBaseReconstructionCriticalPaths(t *testing.T) {
	w := Base()
	wantCP := Table1CriticalPathsMs()
	for _, tk := range w.Tasks {
		lats := tableLatencyVector(t, tk)
		cp, _, err := tk.CriticalPathMs(lats)
		if err != nil {
			t.Fatal(err)
		}
		// 0.15ms tolerance: Table 1 is rounded to 0.1ms and our task-2
		// reconstruction has two nearly-tied longest paths (75.6 / 75.7).
		if math.Abs(cp-wantCP[tk.Name]) > 0.15 {
			t.Errorf("%s critical path = %.2f, published %.2f", tk.Name, cp, wantCP[tk.Name])
		}
		if cp > tk.CriticalMs+0.15 {
			t.Errorf("%s critical path %.2f exceeds critical time %.1f", tk.Name, cp, tk.CriticalMs)
		}
	}
}

// Structural expectations from the KKT derivation: task1 has 4 paths, task2
// has 3 paths with single leaf T28, task3 is a 6-chain.
func TestBaseGraphShapes(t *testing.T) {
	w := Base()
	p1, _ := w.Tasks[0].Paths()
	if len(p1) != 4 {
		t.Errorf("task1 paths = %d, want 4", len(p1))
	}
	p2, _ := w.Tasks[1].Paths()
	if len(p2) != 3 {
		t.Errorf("task2 paths = %d, want 3", len(p2))
	}
	leaves2 := w.Tasks[1].Leaves()
	if len(leaves2) != 1 || w.Tasks[1].Subtasks[leaves2[0]].Name != "T28" {
		t.Errorf("task2 leaves = %v, want single T28", leaves2)
	}
	p3, _ := w.Tasks[2].Paths()
	if len(p3) != 1 || len(p3[0]) != 6 {
		t.Errorf("task3 paths = %v, want one 6-chain", p3)
	}
}

func TestPrototypeShape(t *testing.T) {
	w := Prototype()
	if err := w.Validate(); err != nil {
		t.Fatalf("prototype invalid: %v", err)
	}
	if len(w.Tasks) != 4 || len(w.Resources) != 3 {
		t.Fatalf("shape: %d tasks, %d resources", len(w.Tasks), len(w.Resources))
	}
	// Minimum shares: 0.2 for fast, 0.13 for slow; their sum is the 66%
	// utilization quoted in Section 6.2.
	perCPU := 0.0
	for _, s := range w.Tasks[0].Subtasks {
		if math.Abs(s.MinShare-0.2) > 1e-12 {
			t.Errorf("fast MinShare = %v, want 0.2", s.MinShare)
		}
		_ = s
	}
	for _, s := range w.Tasks[2].Subtasks {
		if math.Abs(s.MinShare-0.13) > 1e-12 {
			t.Errorf("slow MinShare = %v, want 0.13", s.MinShare)
		}
	}
	for _, tk := range w.Tasks {
		perCPU += tk.Subtasks[0].MinShare
	}
	if math.Abs(perCPU-0.66) > 1e-9 {
		t.Errorf("per-CPU minimum share sum = %v, want 0.66", perCPU)
	}
	for _, r := range w.Resources {
		if math.Abs(r.Availability-0.9) > 1e-12 {
			t.Errorf("availability = %v, want 0.9 (GC reserve)", r.Availability)
		}
	}
}

func TestReplicateScalesTasks(t *testing.T) {
	base := Base()
	w6, err := Replicate(base, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w6.Validate(); err != nil {
		t.Fatalf("replicated workload invalid: %v", err)
	}
	if len(w6.Tasks) != 6 {
		t.Fatalf("tasks = %d, want 6", len(w6.Tasks))
	}
	if len(w6.Resources) != len(base.Resources) {
		t.Error("replication must share the resource pool")
	}
	// Critical times scaled; linear curves rebuilt against the new C.
	if w6.Tasks[3].CriticalMs != 180 {
		t.Errorf("scaled critical = %v, want 180", w6.Tasks[3].CriticalMs)
	}
	lin, ok := w6.Curves[w6.Tasks[3].Name].(utility.Linear)
	if !ok || lin.CMs != 180 {
		t.Errorf("curve not rebuilt: %+v", w6.Curves[w6.Tasks[3].Name])
	}
	// The original workload is untouched.
	if base.Tasks[0].CriticalMs != 45 {
		t.Error("Replicate mutated its input")
	}
}

func TestReplicateErrors(t *testing.T) {
	if _, err := Replicate(Base(), 0, 1); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := Replicate(Base(), 2, 0); err == nil {
		t.Error("zero crit scale should fail")
	}
}

func TestRandomWorkloadDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig(7)
	w1, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(w1)
	j2, _ := json.Marshal(w2)
	if string(j1) != string(j2) {
		t.Error("same seed must produce identical workloads")
	}
	w3, err := Random(DefaultRandomConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	j3, _ := json.Marshal(w3)
	if string(j1) == string(j3) {
		t.Error("different seeds should produce different workloads")
	}
}

func TestRandomWorkloadValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		w, err := Random(DefaultRandomConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomChainOnly(t *testing.T) {
	cfg := DefaultRandomConfig(3)
	cfg.ChainOnly = true
	w, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range w.Tasks {
		paths, _ := tk.Paths()
		if len(paths) != 1 {
			t.Errorf("%s is not a chain: %d paths", tk.Name, len(paths))
		}
	}
}

func TestRandomConfigValidation(t *testing.T) {
	bad := []func(*RandomConfig){
		func(c *RandomConfig) { c.NumTasks = 0 },
		func(c *RandomConfig) { c.NumResources = 1 },
		func(c *RandomConfig) { c.MinSubtasks = 0 },
		func(c *RandomConfig) { c.MaxSubtasks = 2 }, // below MinSubtasks=3
		func(c *RandomConfig) { c.MaxSubtasks = 99 },
		func(c *RandomConfig) { c.MinExecMs = 0 },
		func(c *RandomConfig) { c.MaxExecMs = 0.1 },
		func(c *RandomConfig) { c.SlackFactor = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultRandomConfig(1)
		mut(&cfg)
		if _, err := Random(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	mkValid := func() *Workload {
		tk := task.NewBuilder("t", 50).
			Subtask("a", "r0", 1).Subtask("b", "r1", 1).
			Edge("a", "b").MustBuild()
		return &Workload{
			Name:  "w",
			Tasks: []*task.Task{tk},
			Resources: []share.Resource{
				{ID: "r0", Kind: share.CPU, Availability: 1},
				{ID: "r1", Kind: share.Link, Availability: 1},
			},
			Curves: map[string]utility.Curve{"t": utility.Linear{K: 2, CMs: 50}},
		}
	}
	if err := mkValid().Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}

	w := mkValid()
	w.Tasks = nil
	if err := w.Validate(); err == nil {
		t.Error("empty tasks should fail")
	}

	w = mkValid()
	w.Resources = nil
	if err := w.Validate(); err == nil {
		t.Error("empty resources should fail")
	}

	w = mkValid()
	w.Resources = append(w.Resources, w.Resources[0])
	if err := w.Validate(); err == nil {
		t.Error("duplicate resource should fail")
	}

	w = mkValid()
	w.Tasks = append(w.Tasks, w.Tasks[0])
	if err := w.Validate(); err == nil {
		t.Error("duplicate task should fail")
	}

	w = mkValid()
	w.Tasks[0].Subtasks[1].Resource = "r9"
	if err := w.Validate(); err == nil {
		t.Error("unknown resource reference should fail")
	}

	w = mkValid()
	w.Tasks[0].Subtasks[1].Resource = "r0"
	if err := w.Validate(); err == nil {
		t.Error("two subtasks of one task on one resource should fail")
	}

	w = mkValid()
	delete(w.Curves, "t")
	if err := w.Validate(); err == nil {
		t.Error("missing curve should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := Base()
	c := w.Clone()
	c.Tasks[0].CriticalMs = 999
	c.Resources[0].Availability = 0.5
	c.Curves["task1"] = utility.NegLatency{}
	if w.Tasks[0].CriticalMs == 999 || w.Resources[0].Availability == 0.5 {
		t.Error("Clone shares storage with original")
	}
	if _, isNeg := w.Curves["task1"].(utility.NegLatency); isNeg {
		t.Error("Clone shares curve map")
	}
}

func TestSubtasksOn(t *testing.T) {
	w := Base()
	m := w.SubtasksOn()
	// r0 hosts T11, T21, T31.
	if len(m["r0"]) != 3 {
		t.Errorf("r0 hosts %d subtasks, want 3", len(m["r0"]))
	}
	// r3 hosts T14 and T27 only.
	if len(m["r3"]) != 2 {
		t.Errorf("r3 hosts %d subtasks, want 2", len(m["r3"]))
	}
	total := 0
	for _, v := range m {
		total += len(v)
	}
	if total != w.TotalSubtasks() {
		t.Errorf("SubtasksOn covers %d, want %d", total, w.TotalSubtasks())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, w := range []*Workload{Base(), Prototype()} {
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", w.Name, err)
		}
		var back Workload
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", w.Name, err)
		}
		if back.Name != w.Name || len(back.Tasks) != len(w.Tasks) || len(back.Resources) != len(w.Resources) {
			t.Fatalf("%s: round trip changed shape", w.Name)
		}
		data2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Errorf("%s: round trip not idempotent", w.Name)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: decoded workload invalid: %v", w.Name, err)
		}
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	var w Workload
	if err := json.Unmarshal([]byte(`{`), &w); err == nil {
		t.Error("syntax error should fail")
	}
	if err := json.Unmarshal([]byte(`{"name":"x","resources":[{"id":"r0","kind":"warp","availability":1}],"tasks":[]}`), &w); err == nil {
		t.Error("unknown kind should fail")
	}
	bad := `{"name":"x","resources":[{"id":"r0","kind":"cpu","availability":1}],
	  "tasks":[{"name":"t","criticalMs":10,"curve":{"kind":"nope"},
	  "subtasks":[{"name":"a","resource":"r0","execMs":1}],"edges":[]}]}`
	if err := json.Unmarshal([]byte(bad), &w); err == nil {
		t.Error("unknown curve should fail")
	}
	badTrig := `{"name":"x","resources":[{"id":"r0","kind":"cpu","availability":1}],
	  "tasks":[{"name":"t","criticalMs":10,"trigger":{"kind":"warp","periodMs":1},
	  "curve":{"kind":"neg-latency"},
	  "subtasks":[{"name":"a","resource":"r0","execMs":1}],"edges":[]}]}`
	if err := json.Unmarshal([]byte(badTrig), &w); err == nil {
		t.Error("unknown trigger should fail")
	}
}

func TestResourceAndTaskLookup(t *testing.T) {
	w := Base()
	if _, ok := w.ResourceByID("r5"); !ok {
		t.Error("r5 should exist")
	}
	if _, ok := w.ResourceByID("zz"); ok {
		t.Error("zz should not exist")
	}
	if w.TaskByName("task2") == nil {
		t.Error("task2 should exist")
	}
	if w.TaskByName("zz") != nil {
		t.Error("zz task should not exist")
	}
}
