// Package workload defines complete LLA problem instances — tasks, resources
// and per-task utility curves — including the paper's evaluation workloads:
// the base three-task simulation workload of Section 5 (Table 1 / Figure 4),
// the four-task prototype workload of Section 6, replication-based scaling
// (Sections 5.3 and 5.4), and a seeded random workload generator.
package workload

import (
	"fmt"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
)

// Workload is a full problem instance for the optimizer and simulator.
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// Tasks are the end-to-end tasks competing for the resources.
	Tasks []*task.Task
	// Resources are the schedulable resources, each with availability B_r
	// and scheduling lag l_r.
	Resources []share.Resource
	// Curves maps task name to its latency-to-benefit curve.
	Curves map[string]utility.Curve
}

// ResourceByID returns the resource with the given ID, or false.
func (w *Workload) ResourceByID(id string) (share.Resource, bool) {
	for _, r := range w.Resources {
		if r.ID == id {
			return r, true
		}
	}
	return share.Resource{}, false
}

// TaskByName returns the task with the given name, or nil.
func (w *Workload) TaskByName(name string) *task.Task {
	for _, t := range w.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Validate checks the workload for structural consistency: valid tasks and
// resources, unique names, every referenced resource defined, a curve for
// every task, and (per the paper's simplifying assumption in Section 2.1)
// no two subtasks of the same task on the same resource.
func (w *Workload) Validate() error {
	if len(w.Tasks) == 0 {
		return fmt.Errorf("workload %s: no tasks", w.Name)
	}
	if len(w.Resources) == 0 {
		return fmt.Errorf("workload %s: no resources", w.Name)
	}
	resIDs := make(map[string]bool, len(w.Resources))
	for _, r := range w.Resources {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("workload %s: %w", w.Name, err)
		}
		if resIDs[r.ID] {
			return fmt.Errorf("workload %s: duplicate resource %q", w.Name, r.ID)
		}
		resIDs[r.ID] = true
	}
	taskNames := make(map[string]bool, len(w.Tasks))
	for _, t := range w.Tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("workload %s: %w", w.Name, err)
		}
		if taskNames[t.Name] {
			return fmt.Errorf("workload %s: duplicate task %q", w.Name, t.Name)
		}
		taskNames[t.Name] = true
		perRes := make(map[string]string)
		for _, s := range t.Subtasks {
			if !resIDs[s.Resource] {
				return fmt.Errorf("workload %s: task %s subtask %s references unknown resource %q", w.Name, t.Name, s.Name, s.Resource)
			}
			if prev, dup := perRes[s.Resource]; dup {
				return fmt.Errorf("workload %s: task %s has subtasks %s and %s on the same resource %q", w.Name, t.Name, prev, s.Name, s.Resource)
			}
			perRes[s.Resource] = s.Name
		}
		curve, ok := w.Curves[t.Name]
		if !ok || curve == nil {
			return fmt.Errorf("workload %s: task %s has no utility curve", w.Name, t.Name)
		}
		if err := utility.ValidateCurve(curve, t.CriticalMs); err != nil {
			return fmt.Errorf("workload %s: task %s: %w", w.Name, t.Name, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the workload. Curves are shared (they are
// immutable values).
func (w *Workload) Clone() *Workload {
	c := &Workload{
		Name:      w.Name,
		Resources: append([]share.Resource(nil), w.Resources...),
		Curves:    make(map[string]utility.Curve, len(w.Curves)),
	}
	for _, t := range w.Tasks {
		c.Tasks = append(c.Tasks, t.Clone())
	}
	for k, v := range w.Curves {
		c.Curves[k] = v
	}
	return c
}

// TotalSubtasks counts subtasks across all tasks.
func (w *Workload) TotalSubtasks() int {
	n := 0
	for _, t := range w.Tasks {
		n += len(t.Subtasks)
	}
	return n
}

// SubtasksOn returns, for each resource ID, the (task index, subtask index)
// pairs of subtasks consuming it.
func (w *Workload) SubtasksOn() map[string][][2]int {
	m := make(map[string][][2]int, len(w.Resources))
	for ti, t := range w.Tasks {
		for si, s := range t.Subtasks {
			m[s.Resource] = append(m[s.Resource], [2]int{ti, si})
		}
	}
	return m
}
