package workload

import (
	"strings"
	"testing"
)

func TestAnalyzeBaseWorkloadPasses(t *testing.T) {
	rep, err := Analyze(Base())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible() {
		t.Fatalf("base workload should pass necessary conditions: %v", rep)
	}
	if !strings.Contains(rep.String(), "passes") {
		t.Errorf("String = %q", rep.String())
	}
	// Floors are positive and below availability.
	for id, floor := range rep.ResourceFloor {
		if floor <= 0 || floor > 1 {
			t.Errorf("resource %s floor = %v", id, floor)
		}
	}
}

func TestAnalyzePrototypeFloorMatchesPaper(t *testing.T) {
	rep, err := Analyze(Prototype())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible() {
		t.Fatalf("prototype should pass: %v", rep)
	}
	// Per CPU: fast floor = max(0.2, 10/50) = 0.2 each; slow floor =
	// max(0.13, 18/138.46) = 0.13 each -> 0.66 (the paper's utilization).
	for _, id := range []string{"cpu0", "cpu1", "cpu2"} {
		if f := rep.ResourceFloor[id]; f < 0.659 || f > 0.661 {
			t.Errorf("%s floor = %v, want 0.66", id, f)
		}
	}
}

// The static floors are only necessary conditions: the unschedulable 6-task
// workload of Section 5.4 passes them (each subtask alone could stretch to
// its critical time), which is precisely why the paper uses LLA itself as
// the schedulability test. Analyze documents this insufficiency.
func TestAnalyzeStaticFloorsAreInsufficient(t *testing.T) {
	w, err := Replicate(Base(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible() {
		t.Fatalf("the weak static floors were expected to pass here: %v", rep)
	}
}

func TestAnalyzeDetectsResourceOverload(t *testing.T) {
	// Min-share floors that provably exceed capacity: 4 subtasks of
	// MinShare 0.3 on one CPU.
	w := Prototype()
	for _, tk := range w.Tasks {
		tk.Subtasks[0].MinShare = 0.3
	}
	rep, err := Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible() {
		t.Fatalf("1.2 total min share on a 0.9 CPU should fail: %+v", rep.ResourceFloor)
	}
	if len(rep.ResourceViolations) == 0 || rep.ResourceViolations[0] != "cpu0" {
		t.Errorf("violations = %v, want cpu0", rep.ResourceViolations)
	}
	if !strings.Contains(rep.String(), "unschedulable") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestAnalyzeDetectsImpossiblePath(t *testing.T) {
	w := Base()
	w.Tasks[2].CriticalMs = 10 // chain of 6 with Σ(c+l) = 24 > 10
	rep, err := Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PathViolations) == 0 {
		t.Fatal("expected a path violation")
	}
	found := false
	for _, v := range rep.PathViolations {
		if strings.HasPrefix(v, "task3/") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations = %v, want task3 path", rep.PathViolations)
	}
}

func TestAnalyzeRejectsInvalidWorkload(t *testing.T) {
	w := Base()
	w.Resources = nil
	if _, err := Analyze(w); err == nil {
		t.Fatal("invalid workload should fail")
	}
}
