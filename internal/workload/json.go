package workload

import (
	"encoding/json"
	"fmt"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
)

// The JSON schema is a flat, explicit mirror of the in-memory model so that
// workloads can be generated, inspected and exchanged by the CLI tools.

type workloadJSON struct {
	Name      string         `json:"name"`
	Resources []resourceJSON `json:"resources"`
	Tasks     []taskJSON     `json:"tasks"`
}

type resourceJSON struct {
	ID           string  `json:"id"`
	Kind         string  `json:"kind"`
	Availability float64 `json:"availability"`
	LagMs        float64 `json:"lagMs"`
}

type taskJSON struct {
	Name       string        `json:"name"`
	CriticalMs float64       `json:"criticalMs"`
	Trigger    *triggerJSON  `json:"trigger,omitempty"`
	Curve      curveJSON     `json:"curve"`
	Subtasks   []subtaskJSON `json:"subtasks"`
	Edges      [][2]string   `json:"edges"`
}

type triggerJSON struct {
	Kind     string  `json:"kind"`
	PeriodMs float64 `json:"periodMs"`
	OnMs     float64 `json:"onMs,omitempty"`
	OffMs    float64 `json:"offMs,omitempty"`
}

type subtaskJSON struct {
	Name     string  `json:"name"`
	Resource string  `json:"resource"`
	ExecMs   float64 `json:"execMs"`
	MinShare float64 `json:"minShare,omitempty"`
}

type curveJSON struct {
	Kind string    `json:"kind"`
	K    float64   `json:"k,omitempty"`
	CMs  float64   `json:"cMs,omitempty"`
	A    float64   `json:"a,omitempty"`
	B    float64   `json:"b,omitempty"`
	Tau  float64   `json:"tau,omitempty"`
	Xs   []float64 `json:"xs,omitempty"`
	Ys   []float64 `json:"ys,omitempty"`
}

// MarshalJSON encodes the workload.
func (w *Workload) MarshalJSON() ([]byte, error) {
	out := workloadJSON{Name: w.Name}
	for _, r := range w.Resources {
		out.Resources = append(out.Resources, resourceJSON{
			ID: r.ID, Kind: r.Kind.String(), Availability: r.Availability, LagMs: r.LagMs,
		})
	}
	for _, t := range w.Tasks {
		tj := taskJSON{Name: t.Name, CriticalMs: t.CriticalMs}
		if t.Trigger.Kind != 0 {
			tj.Trigger = &triggerJSON{
				Kind: t.Trigger.Kind.String(), PeriodMs: t.Trigger.PeriodMs,
				OnMs: t.Trigger.OnMs, OffMs: t.Trigger.OffMs,
			}
		}
		cj, err := encodeCurve(w.Curves[t.Name])
		if err != nil {
			return nil, fmt.Errorf("workload: task %s: %w", t.Name, err)
		}
		tj.Curve = cj
		for _, s := range t.Subtasks {
			tj.Subtasks = append(tj.Subtasks, subtaskJSON{
				Name: s.Name, Resource: s.Resource, ExecMs: s.ExecMs, MinShare: s.MinShare,
			})
		}
		for _, e := range t.Edges() {
			tj.Edges = append(tj.Edges, [2]string{t.Subtasks[e[0]].Name, t.Subtasks[e[1]].Name})
		}
		out.Tasks = append(out.Tasks, tj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON decodes and validates a workload.
func (w *Workload) UnmarshalJSON(data []byte) error {
	var in workloadJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("workload: decoding: %w", err)
	}
	w.Name = in.Name
	w.Resources = nil
	w.Tasks = nil
	w.Curves = make(map[string]utility.Curve, len(in.Tasks))
	for _, rj := range in.Resources {
		kind, err := parseKind(rj.Kind)
		if err != nil {
			return err
		}
		w.Resources = append(w.Resources, share.Resource{
			ID: rj.ID, Kind: kind, Availability: rj.Availability, LagMs: rj.LagMs,
		})
	}
	for _, tj := range in.Tasks {
		b := task.NewBuilder(tj.Name, tj.CriticalMs)
		if tj.Trigger != nil {
			tr, err := parseTrigger(*tj.Trigger)
			if err != nil {
				return fmt.Errorf("workload: task %s: %w", tj.Name, err)
			}
			b.Trigger(tr)
		}
		for _, sj := range tj.Subtasks {
			b.SubtaskOpts(task.Subtask{
				Name: sj.Name, Resource: sj.Resource, ExecMs: sj.ExecMs, MinShare: sj.MinShare,
			})
		}
		for _, e := range tj.Edges {
			b.Edge(e[0], e[1])
		}
		t, err := b.Build()
		if err != nil {
			return fmt.Errorf("workload: %w", err)
		}
		curve, err := decodeCurve(tj.Curve)
		if err != nil {
			return fmt.Errorf("workload: task %s: %w", tj.Name, err)
		}
		w.Tasks = append(w.Tasks, t)
		w.Curves[tj.Name] = curve
	}
	return w.Validate()
}

func parseKind(s string) (share.Kind, error) {
	switch s {
	case "cpu":
		return share.CPU, nil
	case "link":
		return share.Link, nil
	default:
		return 0, fmt.Errorf("workload: unknown resource kind %q", s)
	}
}

func parseTrigger(tj triggerJSON) (task.Trigger, error) {
	switch tj.Kind {
	case "periodic":
		return task.Periodic(tj.PeriodMs), nil
	case "poisson":
		return task.Poisson(tj.PeriodMs), nil
	case "bursty":
		return task.Bursty(tj.PeriodMs, tj.OnMs, tj.OffMs), nil
	default:
		return task.Trigger{}, fmt.Errorf("unknown trigger kind %q", tj.Kind)
	}
}

func encodeCurve(c utility.Curve) (curveJSON, error) {
	switch v := c.(type) {
	case utility.Linear:
		return curveJSON{Kind: "linear", K: v.K, CMs: v.CMs}, nil
	case utility.NegLatency:
		return curveJSON{Kind: "neg-latency"}, nil
	case utility.Quadratic:
		return curveJSON{Kind: "quadratic", A: v.A, B: v.B}, nil
	case utility.ExpPenalty:
		return curveJSON{Kind: "exp-penalty", A: v.A, B: v.B, Tau: v.Tau}, nil
	default:
		return curveJSON{}, fmt.Errorf("curve type %T not serializable", c)
	}
}

func decodeCurve(cj curveJSON) (utility.Curve, error) {
	switch cj.Kind {
	case "linear":
		return utility.Linear{K: cj.K, CMs: cj.CMs}, nil
	case "neg-latency":
		return utility.NegLatency{}, nil
	case "quadratic":
		return utility.Quadratic{A: cj.A, B: cj.B}, nil
	case "exp-penalty":
		return utility.ExpPenalty{A: cj.A, B: cj.B, Tau: cj.Tau}, nil
	case "piecewise":
		return utility.NewPiecewiseLinear(cj.Xs, cj.Ys)
	default:
		return nil, fmt.Errorf("unknown curve kind %q", cj.Kind)
	}
}
