package workload

import (
	"fmt"

	"lla/internal/share"
)

// SchedulabilityReport summarizes the static necessary-condition analysis of
// Analyze. Passing this analysis does not guarantee schedulability (only
// running LLA does, per the paper's Section 5.4 methodology), but failing it
// proves the workload infeasible without running the optimizer.
type SchedulabilityReport struct {
	// ResourceFloor[resourceID] is the share demand that every feasible
	// allocation must place on the resource: the sum over its subtasks of
	// max(MinShare, (c+l)/latMax) where latMax is the subtask's largest
	// admissible latency (critical time, tightened by its rate floor).
	ResourceFloor map[string]float64
	// ResourceViolations lists resources whose floor exceeds availability.
	ResourceViolations []string
	// PathViolations lists "task/path" identifiers whose minimum achievable
	// latency (every subtask at full availability) exceeds the critical
	// time.
	PathViolations []string
}

// Feasible reports whether no necessary condition is violated.
func (r *SchedulabilityReport) Feasible() bool {
	return len(r.ResourceViolations) == 0 && len(r.PathViolations) == 0
}

// String summarizes the report.
func (r *SchedulabilityReport) String() string {
	if r.Feasible() {
		return "workload passes the static necessary conditions (run LLA for a sufficient test)"
	}
	return fmt.Sprintf("workload provably unschedulable: %d resource floor violation(s) %v, %d path violation(s) %v",
		len(r.ResourceViolations), r.ResourceViolations, len(r.PathViolations), r.PathViolations)
}

// Analyze runs the static necessary conditions for schedulability:
//
//  1. Path floor: along every path, even with every subtask granted its
//     resource's full availability, the summed latencies must fit within
//     the critical time.
//  2. Resource floor: every subtask needs at least share (c+l)/latMax —
//     with latMax bounded by its critical time and rate floor — so the sum
//     of these floors must fit within each resource's availability.
//
// Both are necessary, not sufficient: the floors ignore the coupling that
// a subtask cannot simultaneously take its minimum on one constraint and
// leave slack for every other. The paper's sufficient test is running LLA
// itself (Section 5.4); Analyze is the cheap pre-filter.
func Analyze(w *Workload) (*SchedulabilityReport, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	rep := &SchedulabilityReport{ResourceFloor: make(map[string]float64, len(w.Resources))}

	for _, t := range w.Tasks {
		paths, err := t.Paths()
		if err != nil {
			return nil, err
		}
		// Minimum achievable latency per subtask: full availability.
		minLat := make([]float64, len(t.Subtasks))
		maxLat := make([]float64, len(t.Subtasks))
		for si, s := range t.Subtasks {
			r, _ := w.ResourceByID(s.Resource)
			fn := share.WCETLag{ExecMs: s.ExecMs, LagMs: r.LagMs}
			minLat[si] = fn.LatencyFor(r.Availability)
			maxLat[si] = t.CriticalMs
			if s.MinShare > 0 {
				if cap := fn.LatencyFor(s.MinShare); cap < maxLat[si] {
					maxLat[si] = cap
				}
			}
		}
		for pi, p := range paths {
			sum := 0.0
			for _, si := range p {
				sum += minLat[si]
			}
			if sum > t.CriticalMs {
				rep.PathViolations = append(rep.PathViolations, fmt.Sprintf("%s/path%d", t.Name, pi))
			}
		}
		for si, s := range t.Subtasks {
			r, _ := w.ResourceByID(s.Resource)
			fn := share.WCETLag{ExecMs: s.ExecMs, LagMs: r.LagMs}
			floor := fn.Share(maxLat[si])
			if s.MinShare > floor {
				floor = s.MinShare
			}
			rep.ResourceFloor[r.ID] += floor
		}
	}
	for _, r := range w.Resources {
		if rep.ResourceFloor[r.ID] > r.Availability+1e-9 {
			rep.ResourceViolations = append(rep.ResourceViolations, r.ID)
		}
	}
	return rep, nil
}
