package workload

import (
	"encoding/json"
	"testing"
)

// FuzzWorkloadJSON hardens the workload decoder: arbitrary JSON must either
// fail cleanly or produce a workload that validates and round-trips.
func FuzzWorkloadJSON(f *testing.F) {
	for _, w := range []*Workload{Base(), Prototype()} {
		data, err := json.Marshal(w)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","resources":[],"tasks":[]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var w Workload
		if err := json.Unmarshal(data, &w); err != nil {
			return // malformed input fails cleanly
		}
		// Decoded successfully: it must validate (UnmarshalJSON validates)
		// and re-encode to something decodable.
		if err := w.Validate(); err != nil {
			t.Fatalf("decoded workload does not validate: %v", err)
		}
		out, err := json.Marshal(&w)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Workload
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
