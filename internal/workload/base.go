package workload

import (
	"fmt"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
)

// Parameters of the base workload (Section 5.1, Table 1). All resources are
// fully available with a 1ms proportional-share lag; this parametrization is
// derived in DESIGN.md: at the Table 1 latencies, Σ share = 1.00 on every
// resource, matching the paper's "all resources are close to congestion".
const (
	// BaseLagMs is the scheduling lag l_r shared by all base resources.
	BaseLagMs = 1.0
	// BaseAvailability is B_r for all base resources.
	BaseAvailability = 1.0
	// BaseUtilityK is the k in f_i(lat) = k*C_i - lat (Section 5.2).
	BaseUtilityK = 2.0
	// BaseTriggerPeriodMs is the period of the base tasks' triggering
	// events ("triggered by periodic events occurring every 100ms").
	BaseTriggerPeriodMs = 100.0
)

// BaseCriticalTimesMs are the end-to-end deadlines of the three base tasks.
var BaseCriticalTimesMs = [3]float64{45, 76, 53}

// Base returns the three-task simulation workload of Section 5.1. The
// subtask-to-resource mapping and execution times follow Table 1 exactly;
// the subtask graphs (the paper's Figure 4, not included in the text) are
// reconstructed from the Table 1 latencies via KKT consistency — see
// DESIGN.md for the derivation:
//
//   - Task 1 (push / publish-subscribe): T11 -> {T12, T13, T17};
//     T12 -> {T14, T15}; T13 -> T16.
//   - Task 2 (complex pull / aggregation): T21 -> {T22, T23};
//     T22 -> {T24, T25}; T23 -> T24; T24 -> T26; T25 -> T27; T26 -> T27;
//     T27 -> T28.
//   - Task 3 (simple pull / client-server): chain T31 -> ... -> T36.
func Base() *Workload {
	res := make([]share.Resource, 8)
	for i := range res {
		kind := share.CPU
		if i%2 == 1 {
			// Alternate CPU and link resources; the optimizer treats them
			// uniformly ("each utilizing a different resource — either CPU
			// or network bandwidth").
			kind = share.Link
		}
		res[i] = share.Resource{
			ID:           fmt.Sprintf("r%d", i),
			Kind:         kind,
			Availability: BaseAvailability,
			LagMs:        BaseLagMs,
		}
	}

	t1 := task.NewBuilder("task1", BaseCriticalTimesMs[0]).
		Trigger(task.Periodic(BaseTriggerPeriodMs)).
		Subtask("T11", "r0", 2).
		Subtask("T12", "r1", 3).
		Subtask("T13", "r2", 4).
		Subtask("T14", "r3", 5).
		Subtask("T15", "r4", 4).
		Subtask("T16", "r5", 3).
		Subtask("T17", "r6", 2).
		Edge("T11", "T12").Edge("T11", "T13").Edge("T11", "T17").
		Edge("T12", "T14").Edge("T12", "T15").
		Edge("T13", "T16").
		MustBuild()

	t2 := task.NewBuilder("task2", BaseCriticalTimesMs[1]).
		Trigger(task.Periodic(BaseTriggerPeriodMs)).
		Subtask("T21", "r0", 2).
		Subtask("T22", "r1", 4).
		Subtask("T23", "r2", 3).
		Subtask("T24", "r4", 6).
		Subtask("T25", "r5", 7).
		Subtask("T26", "r6", 5).
		Subtask("T27", "r3", 2).
		Subtask("T28", "r7", 3).
		Edge("T21", "T22").Edge("T21", "T23").
		Edge("T22", "T24").Edge("T22", "T25").
		Edge("T23", "T24").
		Edge("T24", "T26").
		Edge("T25", "T27").
		Edge("T26", "T27").
		Edge("T27", "T28").
		MustBuild()

	t3 := task.NewBuilder("task3", BaseCriticalTimesMs[2]).
		Trigger(task.Periodic(BaseTriggerPeriodMs)).
		Subtask("T31", "r0", 3).
		Subtask("T32", "r1", 2).
		Subtask("T33", "r2", 2).
		Subtask("T34", "r4", 3).
		Subtask("T35", "r6", 4).
		Subtask("T36", "r7", 4).
		Chain("T31", "T32", "T33", "T34", "T35", "T36").
		MustBuild()

	w := &Workload{
		Name:      "base-3task",
		Tasks:     []*task.Task{t1, t2, t3},
		Resources: res,
		Curves: map[string]utility.Curve{
			"task1": utility.Linear{K: BaseUtilityK, CMs: BaseCriticalTimesMs[0]},
			"task2": utility.Linear{K: BaseUtilityK, CMs: BaseCriticalTimesMs[1]},
			"task3": utility.Linear{K: BaseUtilityK, CMs: BaseCriticalTimesMs[2]},
		},
	}
	return w
}

// Table1LatenciesMs returns the paper's published per-subtask optimal
// latencies (Table 1, "Latency" row), keyed by task name then subtask name.
// These are the reference values EXPERIMENTS.md compares against.
func Table1LatenciesMs() map[string]map[string]float64 {
	return map[string]map[string]float64{
		"task1": {"T11": 9.7, "T12": 13.8, "T13": 19.5, "T14": 14.4, "T15": 21.4, "T16": 10.5, "T17": 19.2},
		"task2": {"T21": 10.3, "T22": 15.0, "T23": 15.1, "T24": 19.3, "T25": 12.8, "T26": 16.6, "T27": 5.1, "T28": 9.3},
		"task3": {"T31": 9.9, "T32": 7.9, "T33": 6.2, "T34": 9.8, "T35": 10.3, "T36": 8.7},
	}
}

// Table1CriticalPathsMs returns the paper's published critical-path lengths
// at the optimum (Table 1, "Crit.Path" row).
func Table1CriticalPathsMs() map[string]float64 {
	return map[string]float64{"task1": 44.9, "task2": 75.6, "task3": 52.8}
}
