package workload

import (
	"fmt"
	"math/rand"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
)

// RandomConfig parametrizes the random workload generator.
type RandomConfig struct {
	// Seed drives the deterministic generator.
	Seed int64
	// NumTasks is the number of tasks to generate (>= 1).
	NumTasks int
	// NumResources is the size of the resource pool (>= 2).
	NumResources int
	// MinSubtasks and MaxSubtasks bound per-task subtask counts; MaxSubtasks
	// must not exceed NumResources (each task uses distinct resources).
	MinSubtasks int
	MaxSubtasks int
	// MinExecMs and MaxExecMs bound subtask WCETs.
	MinExecMs float64
	MaxExecMs float64
	// SlackFactor scales each task's critical time relative to the minimum
	// feasible critical path (the sum of effective exec times along the
	// longest path at full share). Values well above 1 yield schedulable
	// workloads; values near or below 1 are likely infeasible.
	SlackFactor float64
	// LagMs is the scheduling lag of every generated resource.
	LagMs float64
	// Availability is B_r of every generated resource.
	Availability float64
	// UtilityK is the k of the linear curves f = k*C - lat.
	UtilityK float64
	// ChainOnly forces linear chains instead of layered DAGs.
	ChainOnly bool
	// MixedCurves draws each task's curve from the full concave family
	// (linear, quadratic, exp-penalty) instead of all-linear, exercising
	// the controllers' nonlinear inner solver.
	MixedCurves bool
}

// DefaultRandomConfig returns a schedulable medium-sized configuration.
func DefaultRandomConfig(seed int64) RandomConfig {
	return RandomConfig{
		Seed:         seed,
		NumTasks:     5,
		NumResources: 8,
		MinSubtasks:  3,
		MaxSubtasks:  7,
		MinExecMs:    1,
		MaxExecMs:    6,
		SlackFactor:  8,
		LagMs:        1,
		Availability: 1,
		UtilityK:     2,
	}
}

// Random generates a deterministic pseudo-random workload: layered-DAG tasks
// over a shared resource pool, each subtask on a distinct resource, with
// critical times derived from longest-path workloads times SlackFactor.
func Random(cfg RandomConfig) (*Workload, error) {
	if cfg.NumTasks < 1 {
		return nil, fmt.Errorf("workload: NumTasks must be >= 1, got %d", cfg.NumTasks)
	}
	if cfg.NumResources < 2 {
		return nil, fmt.Errorf("workload: NumResources must be >= 2, got %d", cfg.NumResources)
	}
	if cfg.MinSubtasks < 1 || cfg.MaxSubtasks < cfg.MinSubtasks {
		return nil, fmt.Errorf("workload: invalid subtask bounds [%d,%d]", cfg.MinSubtasks, cfg.MaxSubtasks)
	}
	if cfg.MaxSubtasks > cfg.NumResources {
		return nil, fmt.Errorf("workload: MaxSubtasks %d exceeds NumResources %d (each task needs distinct resources)", cfg.MaxSubtasks, cfg.NumResources)
	}
	if cfg.MinExecMs <= 0 || cfg.MaxExecMs < cfg.MinExecMs {
		return nil, fmt.Errorf("workload: invalid exec bounds [%v,%v]", cfg.MinExecMs, cfg.MaxExecMs)
	}
	if cfg.SlackFactor <= 0 {
		return nil, fmt.Errorf("workload: SlackFactor must be positive, got %v", cfg.SlackFactor)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{
		Name:   fmt.Sprintf("random-seed%d", cfg.Seed),
		Curves: make(map[string]utility.Curve, cfg.NumTasks),
	}
	for i := 0; i < cfg.NumResources; i++ {
		kind := share.CPU
		if rng.Intn(2) == 1 {
			kind = share.Link
		}
		w.Resources = append(w.Resources, share.Resource{
			ID:           fmt.Sprintf("r%d", i),
			Kind:         kind,
			Availability: cfg.Availability,
			LagMs:        cfg.LagMs,
		})
	}

	for ti := 0; ti < cfg.NumTasks; ti++ {
		n := cfg.MinSubtasks + rng.Intn(cfg.MaxSubtasks-cfg.MinSubtasks+1)
		resources := rng.Perm(cfg.NumResources)[:n]
		name := fmt.Sprintf("task%d", ti)

		t := task.New(name, 1) // critical time set after topology is known
		t.Trigger = task.Periodic(100 + float64(rng.Intn(100)))
		for si := 0; si < n; si++ {
			exec := cfg.MinExecMs + rng.Float64()*(cfg.MaxExecMs-cfg.MinExecMs)
			t.AddSubtask(task.Subtask{
				Name:     fmt.Sprintf("T%d_%d", ti, si),
				Resource: fmt.Sprintf("r%d", resources[si]),
				ExecMs:   exec,
			})
		}
		if cfg.ChainOnly || n <= 2 {
			for si := 0; si+1 < n; si++ {
				t.MustEdge(si, si+1)
			}
		} else {
			// Layered DAG: subtask 0 is the root; every later subtask gets
			// at least one predecessor among the earlier ones.
			for si := 1; si < n; si++ {
				t.MustEdge(rng.Intn(si), si)
				for p := 0; p < si; p++ {
					if rng.Float64() < 0.25 {
						_ = t.AddEdge(p, si) // duplicate edges rejected; fine
					}
				}
			}
		}

		// Critical time: SlackFactor times the longest-path sum of
		// (exec + lag), i.e. the critical path if every subtask held the
		// full resource.
		lats := make([]float64, n)
		for si, s := range t.Subtasks {
			lats[si] = s.ExecMs + cfg.LagMs
		}
		minCrit, _, err := t.CriticalPathMs(lats)
		if err != nil {
			return nil, fmt.Errorf("workload: generating %s: %w", name, err)
		}
		t.CriticalMs = minCrit * cfg.SlackFactor

		w.Tasks = append(w.Tasks, t)
		if cfg.MixedCurves {
			switch rng.Intn(3) {
			case 0:
				w.Curves[name] = utility.Linear{K: cfg.UtilityK, CMs: t.CriticalMs}
			case 1:
				// Scale B so the quadratic's slope at C matches a linear
				// curve's order of magnitude.
				w.Curves[name] = utility.Quadratic{A: cfg.UtilityK * t.CriticalMs, B: 0.5 / t.CriticalMs}
			default:
				w.Curves[name] = utility.ExpPenalty{A: cfg.UtilityK * t.CriticalMs, B: 1, Tau: t.CriticalMs / 3}
			}
		} else {
			w.Curves[name] = utility.Linear{K: cfg.UtilityK, CMs: t.CriticalMs}
		}
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated workload invalid: %w", err)
	}
	return w, nil
}
