package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"lla/internal/task"
	"lla/internal/utility"
)

// ChurnTemplate describes a replicable task shape for churn traces: a chain
// pipeline whose instances arrive and depart over time. Instantiate stamps
// out one concrete task per arrival.
type ChurnTemplate struct {
	// Name labels the template; instance names derive from it.
	Name string
	// CriticalMs is the end-to-end deadline of every instance.
	CriticalMs float64
	// StageExecMs holds the per-stage WCETs; the instance is a chain with
	// one subtask per stage.
	StageExecMs []float64
	// UtilityK scales the instance's linear utility curve (K*CriticalMs at
	// zero latency; the paper's simulations use K=2).
	UtilityK float64
	// PeriodMs is the instance trigger period (default 100).
	PeriodMs float64
}

// Validate checks the template parameters.
func (tpl ChurnTemplate) Validate() error {
	if tpl.Name == "" {
		return fmt.Errorf("workload: churn template has empty name")
	}
	if tpl.CriticalMs <= 0 {
		return fmt.Errorf("workload: churn template %s: critical time %v not positive", tpl.Name, tpl.CriticalMs)
	}
	if len(tpl.StageExecMs) == 0 {
		return fmt.Errorf("workload: churn template %s: no stages", tpl.Name)
	}
	for i, c := range tpl.StageExecMs {
		if c <= 0 {
			return fmt.Errorf("workload: churn template %s: stage %d WCET %v not positive", tpl.Name, i, c)
		}
	}
	return nil
}

// Instantiate stamps out one chain-task instance named name, binding stage i
// to resources[i], plus the instance's utility curve. len(resources) must
// match the stage count; admission-control callers typically pass
// placeholder bindings and let the price-guided placer rebind them.
func (tpl ChurnTemplate) Instantiate(name string, resources []string) (*task.Task, utility.Curve, error) {
	if err := tpl.Validate(); err != nil {
		return nil, nil, err
	}
	if len(resources) != len(tpl.StageExecMs) {
		return nil, nil, fmt.Errorf("workload: churn template %s: %d resources for %d stages",
			tpl.Name, len(resources), len(tpl.StageExecMs))
	}
	period := tpl.PeriodMs
	if period <= 0 {
		period = 100
	}
	b := task.NewBuilder(name, tpl.CriticalMs).Trigger(task.Periodic(period))
	names := make([]string, len(tpl.StageExecMs))
	for i, c := range tpl.StageExecMs {
		names[i] = fmt.Sprintf("%s-s%d", name, i)
		b.Subtask(names[i], resources[i], c)
	}
	b.Chain(names...)
	t, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return t, utility.Linear{K: tpl.UtilityK, CMs: tpl.CriticalMs}, nil
}

// ChurnEvent is one arrival or departure in a churn trace.
type ChurnEvent struct {
	// TimeMs is the event's position on the trace clock.
	TimeMs float64
	// Arrival is true for an arrival, false for a departure.
	Arrival bool
	// Name is the unique instance name (template name + arrival sequence).
	Name string
	// Template indexes ChurnConfig.Templates.
	Template int
}

// ChurnConfig parametrizes GenerateChurn.
type ChurnConfig struct {
	// Seed fixes the trace; equal seeds produce identical traces.
	Seed int64
	// MeanInterarrivalMs is the mean of the exponential inter-arrival gap
	// (Poisson arrival process).
	MeanInterarrivalMs float64
	// MeanLifetimeMs is the mean of each instance's exponential lifetime.
	MeanLifetimeMs float64
	// HorizonMs bounds the trace: arrivals stop at the horizon, and
	// departures falling beyond it are dropped (those instances stay
	// resident at trace end).
	HorizonMs float64
	// Templates are the task shapes instances are drawn from, uniformly.
	Templates []ChurnTemplate
}

// GenerateChurn produces a seeded arrival/departure trace: Poisson arrivals
// draw a template uniformly and an exponential lifetime, so every arrival
// has a matching departure (dropped only when it falls past the horizon).
// The trace is policy-independent — an admission policy that rejects an
// arrival simply skips the corresponding departure — and deterministic for
// a fixed seed: events are strictly ordered by time with ties broken by
// arrival sequence.
func GenerateChurn(cfg ChurnConfig) ([]ChurnEvent, error) {
	if cfg.MeanInterarrivalMs <= 0 {
		return nil, fmt.Errorf("workload: churn mean interarrival %v not positive", cfg.MeanInterarrivalMs)
	}
	if cfg.MeanLifetimeMs <= 0 {
		return nil, fmt.Errorf("workload: churn mean lifetime %v not positive", cfg.MeanLifetimeMs)
	}
	if cfg.HorizonMs <= 0 {
		return nil, fmt.Errorf("workload: churn horizon %v not positive", cfg.HorizonMs)
	}
	if len(cfg.Templates) == 0 {
		return nil, fmt.Errorf("workload: churn config has no templates")
	}
	for _, tpl := range cfg.Templates {
		if err := tpl.Validate(); err != nil {
			return nil, err
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []ChurnEvent
	seq := make([]int, 0, 64) // arrival sequence per event index, for tie-breaks
	clock := 0.0
	n := 0
	for {
		clock += rng.ExpFloat64() * cfg.MeanInterarrivalMs
		if clock >= cfg.HorizonMs {
			break
		}
		ti := rng.Intn(len(cfg.Templates))
		life := rng.ExpFloat64() * cfg.MeanLifetimeMs
		name := fmt.Sprintf("%s-a%d", cfg.Templates[ti].Name, n)
		events = append(events, ChurnEvent{TimeMs: clock, Arrival: true, Name: name, Template: ti})
		seq = append(seq, n)
		if dep := clock + life; dep < cfg.HorizonMs {
			events = append(events, ChurnEvent{TimeMs: dep, Arrival: false, Name: name, Template: ti})
			seq = append(seq, n)
		}
		n++
	}
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := events[order[a]], events[order[b]]
		if ea.TimeMs != eb.TimeMs {
			return ea.TimeMs < eb.TimeMs
		}
		if seq[order[a]] != seq[order[b]] {
			return seq[order[a]] < seq[order[b]]
		}
		return ea.Arrival && !eb.Arrival // same instance at the same instant: arrive first
	})
	sorted := make([]ChurnEvent, len(events))
	for i, oi := range order {
		sorted[i] = events[oi]
	}
	return sorted, nil
}
