package workload

import (
	"fmt"
	"math/rand"

	"lla/internal/utility"
)

// ClusteredConfig parametrizes the clustered workload generator: K clusters
// of tasks, each cluster with its own private resource pool, plus a tunable
// fraction of tasks given one subtask on the next cluster's resources. The
// result is a shard-friendly topology — a partitioner that discovers the
// clusters keeps all price traffic intra-shard except for the deliberately
// rewired cross-cluster edges.
type ClusteredConfig struct {
	// Seed drives the deterministic generator. Cluster c uses a seed derived
	// from Seed and c, so clusters differ but the whole workload is a pure
	// function of the config.
	Seed int64
	// Clusters is the number of clusters K (>= 1).
	Clusters int
	// TasksPerCluster is the number of distinct random tasks generated per
	// cluster before replication (>= 1).
	TasksPerCluster int
	// ReplicateFactor stamps out each cluster's random tasks this many times
	// via Replicate (>= 1), so million-subtask workloads generate quickly:
	// total tasks = Clusters * TasksPerCluster * ReplicateFactor.
	ReplicateFactor int
	// ResourcesPerCluster is the size of each cluster's private resource
	// pool (>= 2, >= MaxSubtasks).
	ResourcesPerCluster int
	// MinSubtasks and MaxSubtasks bound per-task subtask counts.
	MinSubtasks int
	MaxSubtasks int
	// MinExecMs and MaxExecMs bound subtask WCETs.
	MinExecMs float64
	MaxExecMs float64
	// SlackFactor scales critical times relative to the minimum feasible
	// critical path, as in RandomConfig.
	SlackFactor float64
	// LagMs is the scheduling lag of every generated resource.
	LagMs float64
	// Availability is B_r of every generated resource.
	Availability float64
	// UtilityK is the k of the linear curves f = k*C - lat.
	UtilityK float64
	// ChainOnly forces linear chains instead of layered DAGs.
	ChainOnly bool
	// MixedCurves draws curves from the full concave family.
	MixedCurves bool
	// CrossFraction in [0,1] is the probability that a task gets one of its
	// non-root subtasks reassigned to a resource of the next cluster,
	// creating a cross-cluster (boundary) edge. 0 yields a fully separable
	// workload: the clusters share no resources at all.
	CrossFraction float64
}

// DefaultClusteredConfig returns a schedulable medium-sized clustered
// configuration: 4 clusters, light cross-cluster coupling.
func DefaultClusteredConfig(seed int64) ClusteredConfig {
	return ClusteredConfig{
		Seed:                seed,
		Clusters:            4,
		TasksPerCluster:     6,
		ReplicateFactor:     1,
		ResourcesPerCluster: 8,
		MinSubtasks:         3,
		MaxSubtasks:         5,
		MinExecMs:           1,
		MaxExecMs:           6,
		SlackFactor:         10,
		LagMs:               1,
		Availability:        1,
		UtilityK:            2,
		CrossFraction:       0.15,
	}
}

// Clustered generates a deterministic clustered workload. Each cluster is a
// Random workload over a private resource pool, scaled up with Replicate and
// renamed with a cluster prefix; clusters are then merged and a seeded
// CrossFraction of tasks have one subtask rewired onto the next cluster's
// resources. Identical configs always produce identical workloads.
func Clustered(cfg ClusteredConfig) (*Workload, error) {
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("workload: Clusters must be >= 1, got %d", cfg.Clusters)
	}
	if cfg.ReplicateFactor < 1 {
		return nil, fmt.Errorf("workload: ReplicateFactor must be >= 1, got %d", cfg.ReplicateFactor)
	}
	if !(cfg.CrossFraction >= 0 && cfg.CrossFraction <= 1) { // also rejects NaN
		return nil, fmt.Errorf("workload: CrossFraction must be in [0,1], got %v", cfg.CrossFraction)
	}

	out := &Workload{
		Name:   fmt.Sprintf("clustered-seed%d-k%d", cfg.Seed, cfg.Clusters),
		Curves: make(map[string]utility.Curve),
	}
	// clusterRes[c] lists the resource IDs owned by cluster c, in generation
	// order, for the rewiring pass below.
	clusterRes := make([][]string, cfg.Clusters)
	// taskCluster[i] is the cluster of out.Tasks[i].
	var taskCluster []int

	for c := 0; c < cfg.Clusters; c++ {
		cw, err := Random(RandomConfig{
			Seed:         cfg.Seed + int64(c)*1000003,
			NumTasks:     cfg.TasksPerCluster,
			NumResources: cfg.ResourcesPerCluster,
			MinSubtasks:  cfg.MinSubtasks,
			MaxSubtasks:  cfg.MaxSubtasks,
			MinExecMs:    cfg.MinExecMs,
			MaxExecMs:    cfg.MaxExecMs,
			SlackFactor:  cfg.SlackFactor,
			LagMs:        cfg.LagMs,
			Availability: cfg.Availability,
			UtilityK:     cfg.UtilityK,
			ChainOnly:    cfg.ChainOnly,
			MixedCurves:  cfg.MixedCurves,
		})
		if err != nil {
			return nil, fmt.Errorf("workload: cluster %d: %w", c, err)
		}
		if cfg.ReplicateFactor > 1 {
			cw, err = Replicate(cw, cfg.ReplicateFactor, 1)
			if err != nil {
				return nil, fmt.Errorf("workload: cluster %d: %w", c, err)
			}
		}

		prefix := fmt.Sprintf("c%d-", c)
		rename := make(map[string]string, len(cw.Resources))
		for _, r := range cw.Resources {
			nr := r
			nr.ID = prefix + r.ID
			rename[r.ID] = nr.ID
			out.Resources = append(out.Resources, nr)
			clusterRes[c] = append(clusterRes[c], nr.ID)
		}
		for _, t := range cw.Tasks {
			nt := t.Clone()
			nt.Name = prefix + t.Name
			for si := range nt.Subtasks {
				nt.Subtasks[si].Name = prefix + nt.Subtasks[si].Name
				nt.Subtasks[si].Resource = rename[nt.Subtasks[si].Resource]
			}
			out.Tasks = append(out.Tasks, nt)
			out.Curves[nt.Name] = cw.Curves[t.Name]
			taskCluster = append(taskCluster, c)
		}
	}

	// Cross-cluster rewiring: a seeded fraction of tasks move one non-root
	// subtask onto a resource of the next cluster. Clusters own disjoint
	// resource pools, so the rewired resource can only collide with another
	// already-rewired subtask of the same task; such picks are skipped to
	// preserve the distinct-resources-per-task invariant.
	if cfg.CrossFraction > 0 && cfg.Clusters > 1 {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed_c105))
		for i, t := range out.Tasks {
			if rng.Float64() >= cfg.CrossFraction || len(t.Subtasks) < 2 {
				continue
			}
			next := clusterRes[(taskCluster[i]+1)%cfg.Clusters]
			si := 1 + rng.Intn(len(t.Subtasks)-1)
			target := next[rng.Intn(len(next))]
			used := false
			for _, s := range t.Subtasks {
				if s.Resource == target {
					used = true
					break
				}
			}
			if !used {
				t.Subtasks[si].Resource = target
			}
		}
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated clustered workload invalid: %w", err)
	}
	return out, nil
}
