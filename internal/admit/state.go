package admit

import "sort"

// Checkpoint support (DESIGN.md §13). Admission decisions are event-counted:
// the quarantine clocks are offsets on the controller's event counter, not
// wall time, so the pair (event counter, quarantine entries) is the complete
// replayable state — a restored controller makes the same decisions the
// uninterrupted one would, given the same engine state and offer sequence.
// The decision log is telemetry, not state, and is not checkpointed.

// QuarantineEntry is one quarantined task name's backoff state.
type QuarantineEntry struct {
	// Name is the quarantined task name.
	Name string
	// Strikes counts consecutive rejections.
	Strikes int
	// Until is the first event at which a retry is considered again.
	Until int
}

// State is the serializable snapshot of a Controller. Entries are sorted by
// name so the encoding is deterministic.
type State struct {
	// Event is the controller's event counter.
	Event int
	// Quarantine lists the active backoff entries.
	Quarantine []QuarantineEntry
}

// State captures the controller's event counter and quarantine clocks.
func (c *Controller) State() State {
	st := State{Event: c.event}
	for name, q := range c.quarantine {
		st.Quarantine = append(st.Quarantine, QuarantineEntry{Name: name, Strikes: q.strikes, Until: q.until})
	}
	sort.Slice(st.Quarantine, func(i, j int) bool { return st.Quarantine[i].Name < st.Quarantine[j].Name })
	return st
}

// RestoreState replaces the controller's event counter and quarantine map
// with a captured snapshot. The decision log is left as-is (it restarts
// empty on a fresh controller).
func (c *Controller) RestoreState(st State) {
	c.event = st.Event
	c.quarantine = make(map[string]*quarEntry, len(st.Quarantine))
	for _, q := range st.Quarantine {
		c.quarantine[q.Name] = &quarEntry{strikes: q.Strikes, until: q.Until}
	}
}
