package admit

import (
	"fmt"
	"strings"

	"lla/internal/obs"
	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// Candidate is a task offered for placed admission: a template task whose
// subtask resource bindings are advisory, per-subtask candidate resource
// sets, and the utility curve.
type Candidate struct {
	// Task is the template; Bind clones it and rewrites each subtask's
	// Resource field.
	Task *task.Task
	// Candidates[si] lists the resource IDs subtask si may bind to, tried
	// in order with first-wins tie-breaking. A nil (or missing) entry means
	// every workload resource, in workload order. Candidates itself may be
	// nil.
	Candidates [][]string
	// Curve is the instance's utility curve.
	Curve utility.Curve
}

// PlacerConfig tunes the price-guided placer.
type PlacerConfig struct {
	// SkewRatio and SkewWindow arm the rebalance pass: when the ratio of
	// the most to least expensive resource price exceeds SkewRatio for
	// SkewWindow consecutive observations, MaybeRebalance looks for a
	// profitable move. Defaults 4 and 8.
	SkewRatio  float64
	SkewWindow int
	// MinGain is the minimum relative binding-cost improvement a rebalance
	// move must deliver. Default 0.2.
	MinGain float64
	// MuFloor floors prices when predicting per-binding shares, matching
	// Config.MuFloor. Default 1.
	MuFloor float64
}

// withDefaults fills unset fields.
func (c PlacerConfig) withDefaults() PlacerConfig {
	if c.SkewRatio == 0 {
		c.SkewRatio = 4
	}
	if c.SkewWindow == 0 {
		c.SkewWindow = 8
	}
	if c.MinGain == 0 {
		c.MinGain = 0.2
	}
	if c.MuFloor == 0 {
		c.MuFloor = 1
	}
	return c
}

// Placer binds candidate subtasks to the cheapest feasible resource at the
// live prices, and optionally re-places resident tasks when prices skew for
// long enough. Like the Controller it is single-goroutine.
type Placer struct {
	cfg PlacerConfig

	m    *obs.PlaceMetrics
	obsv *obs.Observer

	skewStreak int
	// placed tracks the candidates of admitted placed tasks (for the
	// rebalance pass); order keeps iteration deterministic.
	placed map[string]Candidate
	order  []string
}

// NewPlacer builds a placer.
func NewPlacer(cfg PlacerConfig) *Placer {
	return &Placer{cfg: cfg.withDefaults(), placed: make(map[string]Candidate)}
}

// Observe attaches placement metrics; nil detaches.
func (p *Placer) Observe(o *obs.Observer) {
	p.obsv, p.m = o, nil
	if o != nil && o.Metrics != nil {
		p.m = obs.NewPlaceMetrics(o.Metrics)
	}
}

// Bind returns a copy of the candidate's task with every subtask bound to
// its cheapest feasible candidate resource: argmin over the candidate set
// of mu_r × predicted share (the newcomer demand model of EstimateDemand).
// Subtasks bind greedily in order, never reusing a resource already chosen
// for the same task (the paper's distinct-resources assumption). Ties keep
// the earliest candidate, so bindings are deterministic.
func (p *Placer) Bind(w *workload.Workload, cand Candidate, mode task.WeightMode, mu map[string]float64) (*task.Task, error) {
	weights, err := cand.Task.Weights(mode)
	if err != nil {
		return nil, err
	}
	slope := cand.Curve.Slope(cand.Task.CriticalMs)
	bound := cand.Task.Clone()
	used := make(map[string]bool, len(bound.Subtasks))
	for si := range bound.Subtasks {
		s := &bound.Subtasks[si]
		options := p.options(w, cand, si)
		bestID, bestCost := "", 0.0
		for _, rid := range options {
			if used[rid] {
				continue
			}
			r, ok := w.ResourceByID(rid)
			if !ok {
				return nil, fmt.Errorf("admit: candidate %s subtask %s: unknown resource %q", cand.Task.Name, s.Name, rid)
			}
			sh := predictShare(s.ExecMs, s.MinShare, bound.CriticalMs, weights[si], slope, r, effMu(mu[rid], p.cfg.MuFloor))
			cost := mu[rid] * sh
			if bestID == "" || cost < bestCost {
				bestID, bestCost = rid, cost
			}
		}
		if bestID == "" {
			return nil, fmt.Errorf("admit: candidate %s subtask %s: no feasible resource among %v", cand.Task.Name, s.Name, options)
		}
		s.Resource = bestID
		used[bestID] = true
		if p.m != nil {
			p.m.Bindings.Inc()
		}
	}
	return bound, nil
}

// options resolves the candidate resource IDs of subtask si.
func (p *Placer) options(w *workload.Workload, cand Candidate, si int) []string {
	if si < len(cand.Candidates) && len(cand.Candidates[si]) > 0 {
		return cand.Candidates[si]
	}
	ids := make([]string, len(w.Resources))
	for i, r := range w.Resources {
		ids[i] = r.ID
	}
	return ids
}

// bindingCost prices a task's current binding: Σ mu_r × predicted share.
func (p *Placer) bindingCost(w *workload.Workload, t *task.Task, curve utility.Curve, mode task.WeightMode, mu map[string]float64) (float64, error) {
	weights, err := t.Weights(mode)
	if err != nil {
		return 0, err
	}
	slope := curve.Slope(t.CriticalMs)
	cost := 0.0
	for si, s := range t.Subtasks {
		r, ok := w.ResourceByID(s.Resource)
		if !ok {
			return 0, fmt.Errorf("admit: task %s subtask %s: unknown resource %q", t.Name, s.Name, s.Resource)
		}
		sh := predictShare(s.ExecMs, s.MinShare, t.CriticalMs, weights[si], slope, r, effMu(mu[s.Resource], p.cfg.MuFloor))
		cost += mu[s.Resource] * sh
	}
	return cost, nil
}

// noteSkew observes the live prices once and reports whether the sustained
// skew trigger is armed.
func (p *Placer) noteSkew(mu map[string]float64) bool {
	minMu, maxMu, first := 0.0, 0.0, true
	for _, v := range mu {
		if first {
			minMu, maxMu, first = v, v, false
			continue
		}
		if v < minMu {
			minMu = v
		}
		if v > maxMu {
			maxMu = v
		}
	}
	skewed := false
	if !first {
		if minMu < 1e-12 {
			skewed = maxMu > 1e-12
		} else {
			skewed = maxMu/minMu > p.cfg.SkewRatio
		}
	}
	if skewed {
		p.skewStreak++
	} else {
		p.skewStreak = 0
	}
	return p.skewStreak >= p.cfg.SkewWindow
}

// place records an admitted placed task; forget drops it.
func (p *Placer) place(name string, cand Candidate) {
	if _, ok := p.placed[name]; !ok {
		p.order = append(p.order, name)
	}
	p.placed[name] = cand
}

func (p *Placer) forget(name string) {
	if _, ok := p.placed[name]; !ok {
		return
	}
	delete(p.placed, name)
	for i, n := range p.order {
		if n == name {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// OfferPlaced binds the candidate with the attached placer and offers the
// bound task for admission. Placement failures (no feasible binding) are
// recorded as rejections at the "place" stage.
func (c *Controller) OfferPlaced(cand Candidate) (Decision, error) {
	if c.placer == nil {
		return Decision{}, fmt.Errorf("admit: OfferPlaced requires UsePlacer")
	}
	w := c.eng.CurrentWorkload()
	mode := c.eng.Config().WeightMode
	bound, err := c.placer.Bind(w, cand, mode, c.liveMu())
	if err != nil {
		c.event++
		d := Decision{Event: c.event, Task: cand.Task.Name, Kind: KindArrival,
			Stage: StagePlace, Reason: err.Error()}
		c.strike(cand.Task.Name)
		return c.finish(d), nil
	}
	d, err := c.Offer(bound, cand.Curve)
	if err == nil && d.Admitted {
		c.placer.place(cand.Task.Name, Candidate{Task: bound, Candidates: cand.Candidates, Curve: cand.Curve})
	}
	return d, err
}

// MaybeRebalance observes the live price skew and, when it has persisted
// for the placer's window, re-places the single resident placed task with
// the largest relative binding-cost improvement (if it beats MinGain). Call
// it once per controller event; it returns whether a move was enacted.
func (c *Controller) MaybeRebalance() (Decision, bool, error) {
	if c.placer == nil {
		return Decision{}, false, nil
	}
	mu := c.liveMu()
	if !c.placer.noteSkew(mu) {
		return Decision{}, false, nil
	}
	w := c.eng.CurrentWorkload()
	mode := c.eng.Config().WeightMode

	bestGain := 0.0
	bestName := ""
	var bestBound *task.Task
	var bestCand Candidate
	for _, name := range c.placer.order {
		pc := c.placer.placed[name]
		cur := w.TaskByName(name)
		if cur == nil {
			continue
		}
		curCost, err := c.placer.bindingCost(w, cur, pc.Curve, mode, mu)
		if err != nil || curCost <= 0 {
			continue
		}
		rb, err := c.placer.Bind(w, Candidate{Task: pc.Task, Candidates: pc.Candidates, Curve: pc.Curve}, mode, mu)
		if err != nil {
			continue
		}
		rbCost, err := c.placer.bindingCost(w, rb, pc.Curve, mode, mu)
		if err != nil {
			continue
		}
		if gain := (curCost - rbCost) / curCost; gain > bestGain {
			bestGain, bestName, bestBound, bestCand = gain, name, rb, pc
		}
	}
	// Scan done: reset the streak either way so the trigger re-arms over a
	// fresh window instead of re-scanning every event.
	c.placer.skewStreak = 0
	if bestName == "" || bestGain < c.placer.cfg.MinGain {
		return Decision{}, false, nil
	}

	c.event++
	d := Decision{Event: c.event, Task: bestName, Kind: KindRebalance, Stage: StagePlace}
	for i, t := range w.Tasks {
		if t.Name == bestName {
			w.Tasks[i] = bestBound
			break
		}
	}
	if err := c.eng.ReplaceWorkload(w); err != nil {
		return d, false, fmt.Errorf("admit: rebalancing %q: %w", bestName, err)
	}
	d.ReconvergeIters = c.reconverge()
	d.Admitted = true
	d.Reason = fmt.Sprintf("rebound to [%s], binding cost down %.0f%%", bindingString(bestBound), bestGain*100)
	c.placer.place(bestName, Candidate{Task: bestBound, Candidates: bestCand.Candidates, Curve: bestCand.Curve})
	if c.placer.m != nil {
		c.placer.m.Rebalances.Inc()
	}
	return c.finish(d), true, nil
}

// bindingString renders a task's resource bindings for log messages.
func bindingString(t *task.Task) string {
	ids := make([]string, len(t.Subtasks))
	for i, s := range t.Subtasks {
		ids[i] = s.Resource
	}
	return strings.Join(ids, " ")
}

// effMu floors a live price for demand prediction.
func effMu(mu, floor float64) float64 {
	if mu < floor {
		return floor
	}
	return mu
}

// predictShare is predictLatShare's share-only view.
func predictShare(execMs, minShare, criticalMs, weight, slope float64, r share.Resource, muEff float64) float64 {
	_, sh := predictLatShare(execMs, minShare, criticalMs, weight, slope, r, muEff)
	return sh
}
