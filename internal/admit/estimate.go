package admit

import (
	"fmt"
	"math"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// Estimate predicts the marginal footprint an arriving task would have at
// the live resource prices: the share it would demand on each resource at
// its price-optimal latencies, the congestion cost of that demand, and the
// utility it would gain. It is a screening heuristic — the sufficient test
// remains the trial optimization — but it is cheap (closed form, no
// iteration) and uses exactly the dual signal the optimizer maintains.
type Estimate struct {
	// PredictedShare maps resource ID to the share the candidate is
	// predicted to demand there.
	PredictedShare map[string]float64
	// CongestionCost is Σ_r mu_r · PredictedShare[r]: what the demand costs
	// at the live prices (the marginal congestion the task inflicts).
	CongestionCost float64
	// UtilityGain is the candidate's utility at its predicted aggregate
	// latency.
	UtilityGain float64
	// AggLatMs is the predicted weighted aggregate latency.
	AggLatMs float64
}

// EstimateDemand evaluates the candidate against the live price vector mu
// (resource ID → mu_r). For each subtask it solves the newcomer's
// stationarity condition — Equation 7 with zero path prices,
// lat = sqrt(mu·(c+l) / (w·|slope|)) — clamped to the subtask's admissible
// latency interval, and reads the share off the share function. Prices are
// floored at muFloor so uncongested resources (mu ≈ 0) price the newcomer
// as a fresh engine would (InitialMu) instead of predicting it swallows the
// whole availability. The curve slope is taken at the critical time, the
// steepest point of a concave curve, which biases latencies low and shares
// high: the screen errs toward over-predicting demand.
func EstimateDemand(w *workload.Workload, cand *task.Task, curve utility.Curve, mode task.WeightMode, mu map[string]float64, muFloor float64) (*Estimate, error) {
	weights, err := cand.Weights(mode)
	if err != nil {
		return nil, err
	}
	slope := curve.Slope(cand.CriticalMs)
	est := &Estimate{PredictedShare: make(map[string]float64, len(cand.Subtasks))}
	for si, s := range cand.Subtasks {
		r, ok := w.ResourceByID(s.Resource)
		if !ok {
			return nil, fmt.Errorf("admit: subtask %s/%s references unknown resource %q", cand.Name, s.Name, s.Resource)
		}
		muR := mu[r.ID]
		lat, sh := predictLatShare(s.ExecMs, s.MinShare, cand.CriticalMs, weights[si], slope, r, effMu(muR, muFloor))
		est.PredictedShare[r.ID] += sh
		est.CongestionCost += muR * sh
		est.AggLatMs += weights[si] * lat
	}
	est.UtilityGain = curve.Value(est.AggLatMs)
	return est, nil
}

// predictLatShare solves the newcomer's stationarity condition for one
// subtask on one resource — Equation 7 with zero path prices — clamped to
// the admissible latency interval, and returns the latency and implied
// share.
func predictLatShare(execMs, minShare, criticalMs, weight, slope float64, r share.Resource, muEff float64) (lat, sh float64) {
	fn := share.WCETLag{ExecMs: execMs, LagMs: r.LagMs}
	latMin := fn.LatencyFor(r.Availability)
	latMax := criticalMs
	if minShare > 0 {
		if cap := fn.LatencyFor(minShare); cap < latMax {
			latMax = cap
		}
	}
	if latMax < latMin {
		latMax = latMin
	}
	denom := -weight * slope
	if denom <= 1e-12 {
		lat = latMax // flat curve: latency is free, take the cheapest
	} else {
		lat = math.Sqrt(muEff * (execMs + r.LagMs) / denom)
	}
	if lat < latMin {
		lat = latMin
	} else if lat > latMax {
		lat = latMax
	}
	return lat, fn.Share(lat)
}

// PriceScreen runs the admission price gate for a candidate. Two tests:
// headroom — the combined demand floors of residents plus candidate (the
// share every feasible allocation must grant, from workload.Analyze) must
// fit under each resource's overcommit-adjusted availability with the
// configured reserve — and cost-benefit — the candidate's predicted demand
// at the live prices mu must not cost more congestion than the utility it
// brings. Floors (not predicted demand) drive the headroom test because at
// an LLA optimum congested resources sit exactly at capacity, so any
// live-price demand prediction there saturates and would veto every
// arrival; the floors are the irreducible claim, and the reserve knob buys
// back slack. trial is the resident workload plus the candidate. It returns
// the demand estimate and a non-empty rejection reason when a gate fires;
// err reports malformed inputs only. The dist coordinator runs the same
// screen against its price mirrors, so engine-backed and coordinator-backed
// decisions agree.
func PriceScreen(trial *workload.Workload, cand *task.Task, curve utility.Curve, mode task.WeightMode, mu map[string]float64, cfg Config) (*Estimate, string, error) {
	cfg = cfg.WithDefaults()
	est, err := EstimateDemand(trial, cand, curve, mode, mu, cfg.MuFloor)
	if err != nil {
		return nil, "", err
	}
	rep, err := workload.Analyze(trial)
	if err != nil {
		return nil, "", err
	}
	for _, r := range trial.Resources {
		limit := r.Availability * (cfg.Overcommit - cfg.Headroom)
		if floor := rep.ResourceFloor[r.ID]; floor > limit+1e-9 {
			return est, fmt.Sprintf("resource %s: demand floor %.3f exceeds headroom %.3f (B=%.3f, overcommit %.2f, headroom %.2f)",
				r.ID, floor, limit, r.Availability, cfg.Overcommit, cfg.Headroom), nil
		}
	}
	if cfg.MaxCostBenefit > 0 {
		if est.UtilityGain <= 0 && est.CongestionCost > 0 {
			return est, fmt.Sprintf("congestion cost %.3f with no utility gain (%.3f)", est.CongestionCost, est.UtilityGain), nil
		}
		if est.CongestionCost > cfg.MaxCostBenefit*est.UtilityGain {
			return est, fmt.Sprintf("congestion cost %.3f exceeds %.2f× utility gain %.3f",
				est.CongestionCost, cfg.MaxCostBenefit, est.UtilityGain), nil
		}
	}
	return est, "", nil
}
