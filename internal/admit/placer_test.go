package admit

import (
	"testing"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// placerWorkload is a resource pool for pure Bind tests (no engine).
func placerWorkload() *workload.Workload {
	return &workload.Workload{
		Name: "pool",
		Resources: []share.Resource{
			{ID: "r0", Kind: share.CPU, Availability: 1, LagMs: 1},
			{ID: "r1", Kind: share.CPU, Availability: 1, LagMs: 1},
			{ID: "r2", Kind: share.CPU, Availability: 1, LagMs: 1},
		},
	}
}

func placedCandidate(t *testing.T, name string, stages int, candidates [][]string) Candidate {
	t.Helper()
	b := task.NewBuilder(name, 100).Trigger(task.Periodic(100))
	names := make([]string, stages)
	for i := range names {
		names[i] = name + "-s" + string(rune('0'+i))
		b.Subtask(names[i], "r0", 4) // advisory binding; Bind rewrites it
	}
	b.Chain(names...)
	tk, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return Candidate{Task: tk, Candidates: candidates, Curve: utility.Linear{K: 2, CMs: 100}}
}

func TestBindChoosesCheapest(t *testing.T) {
	w := placerWorkload()
	p := NewPlacer(PlacerConfig{})
	mu := map[string]float64{"r0": 5, "r1": 0.5, "r2": 2}

	bound, err := p.Bind(w, placedCandidate(t, "solo", 1, nil), task.WeightSum, mu)
	if err != nil {
		t.Fatal(err)
	}
	if got := bound.Subtasks[0].Resource; got != "r1" {
		t.Fatalf("bound to %s, want cheapest r1", got)
	}

	// Candidate sets are honored even when a cheaper resource exists outside.
	bound, err = p.Bind(w, placedCandidate(t, "boxed", 1, [][]string{{"r0", "r2"}}), task.WeightSum, mu)
	if err != nil {
		t.Fatal(err)
	}
	if got := bound.Subtasks[0].Resource; got != "r2" {
		t.Fatalf("bound to %s, want r2 (cheapest inside candidate set)", got)
	}
}

func TestBindDistinctResources(t *testing.T) {
	w := placerWorkload()
	p := NewPlacer(PlacerConfig{})
	mu := map[string]float64{"r0": 5, "r1": 0.5, "r2": 2}

	bound, err := p.Bind(w, placedCandidate(t, "pair", 2, nil), task.WeightSum, mu)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := bound.Subtasks[0].Resource, bound.Subtasks[1].Resource; a != "r1" || b != "r2" {
		t.Fatalf("bindings %s,%s; want r1,r2 (cheapest then next-cheapest)", a, b)
	}

	// With only one candidate resource for both subtasks, the second cannot
	// bind (distinct-resources rule) and Bind fails.
	_, err = p.Bind(w, placedCandidate(t, "clash", 2, [][]string{{"r1"}, {"r1"}}), task.WeightSum, mu)
	if err == nil {
		t.Fatal("expected a binding failure when both subtasks share one candidate resource")
	}
}

func TestBindDeterministicTies(t *testing.T) {
	w := placerWorkload()
	p := NewPlacer(PlacerConfig{})
	mu := map[string]float64{"r0": 1, "r1": 1, "r2": 1} // all tied
	for i := 0; i < 10; i++ {
		bound, err := p.Bind(w, placedCandidate(t, "tied", 2, nil), task.WeightSum, mu)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := bound.Subtasks[0].Resource, bound.Subtasks[1].Resource; a != "r0" || b != "r1" {
			t.Fatalf("tie-break drifted to %s,%s; want first-wins r0,r1", a, b)
		}
	}
}

// TestRebalanceMovesOnSkew admits a placed task, then starves whichever
// resource it landed on; once the price skew persists past the window the
// controller must re-place it onto the other resource.
func TestRebalanceMovesOnSkew(t *testing.T) {
	eng := testCluster(t, 1)
	ctrl := New(eng, Config{})
	ctrl.UsePlacer(NewPlacer(PlacerConfig{SkewRatio: 2, SkewWindow: 3, MinGain: 0.05}))

	cand := placedCandidate(t, "mover", 1, [][]string{{"r0", "r1"}})
	d, err := ctrl.OfferPlaced(cand)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatalf("mover not admitted: %+v", d)
	}
	home := eng.Problem().Workload().TaskByName("mover").Subtasks[0].Resource
	other := "r1"
	if home == "r1" {
		other = "r0"
	}

	if err := eng.SetAvailability(home, 0.25); err != nil {
		t.Fatal(err)
	}
	eng.RunUntilConverged(3000, 1e-7, 20, 1e-3)

	moved := false
	for i := 0; i < 30 && !moved; i++ {
		var err error
		_, moved, err = ctrl.MaybeRebalance()
		if err != nil {
			t.Fatal(err)
		}
	}
	if !moved {
		t.Fatal("no rebalance despite sustained price skew")
	}
	if got := eng.Problem().Workload().TaskByName("mover").Subtasks[0].Resource; got != other {
		t.Fatalf("mover on %s after rebalance, want %s", got, other)
	}
	log := ctrl.Log()
	last := log[len(log)-1]
	if last.Kind != KindRebalance || !last.Admitted || last.ReconvergeIters <= 0 {
		t.Fatalf("rebalance decision malformed: %+v", last)
	}
}
