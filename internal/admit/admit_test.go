package admit

import (
	"reflect"
	"testing"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// testCluster builds a small running system: three unit-availability CPUs
// and one converged resident chain task.
func testCluster(t *testing.T, workers int) *core.Engine {
	t.Helper()
	resident := task.NewBuilder("resident", 150).
		Trigger(task.Periodic(100)).
		Subtask("resident-s0", "r0", 4).
		Subtask("resident-s1", "r1", 3).
		Subtask("resident-s2", "r2", 4).
		Chain("resident-s0", "resident-s1", "resident-s2").
		MustBuild()
	w := &workload.Workload{
		Name: "admit-test",
		Tasks: []*task.Task{resident},
		Resources: []share.Resource{
			{ID: "r0", Kind: share.CPU, Availability: 1, LagMs: 1},
			{ID: "r1", Kind: share.CPU, Availability: 1, LagMs: 1},
			{ID: "r2", Kind: share.CPU, Availability: 1, LagMs: 1},
		},
		Curves: map[string]utility.Curve{"resident": utility.Linear{K: 2, CMs: 150}},
	}
	eng, err := core.NewEngine(w, core.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	eng.RunUntilConverged(3000, 1e-7, 20, 1e-3)
	return eng
}

// chainCandidate stamps a chain instance over the given resources.
func chainCandidate(t *testing.T, name string, criticalMs float64, execMs []float64, resources []string) (*task.Task, utility.Curve) {
	t.Helper()
	tpl := workload.ChurnTemplate{Name: name, CriticalMs: criticalMs, StageExecMs: execMs, UtilityK: 2}
	tk, curve, err := tpl.Instantiate(name, resources)
	if err != nil {
		t.Fatal(err)
	}
	return tk, curve
}

func TestOfferGates(t *testing.T) {
	eng := testCluster(t, 1)
	ctrl := New(eng, Config{})

	// A loose pipeline is admitted and enacted.
	ok, curve := chainCandidate(t, "loose", 300, []float64{5, 4}, []string{"r0", "r1"})
	d, err := ctrl.Offer(ok, curve)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted || d.Stage != StageAdmit {
		t.Fatalf("loose candidate not admitted: %+v", d)
	}
	if d.TrialIters <= 0 || d.ReconvergeIters <= 0 {
		t.Fatalf("missing iteration accounting: %+v", d)
	}
	if eng.Problem().Workload().TaskByName("loose") == nil {
		t.Fatal("admitted task not enacted on the live engine")
	}

	// A statically impossible deadline is rejected by the static floors.
	imp, curve := chainCandidate(t, "impossible", 8, []float64{5, 5}, []string{"r0", "r1"})
	d, err = ctrl.Offer(imp, curve)
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted || d.Stage != StageStatic {
		t.Fatalf("impossible candidate: %+v", d)
	}
	if eng.Problem().Workload().TaskByName("impossible") != nil {
		t.Fatal("rejected task leaked into the live engine")
	}

	// Re-offering the same name immediately hits quarantine.
	d, err = ctrl.Offer(imp, curve)
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted || d.Stage != StageQuarantine {
		t.Fatalf("expected quarantine, got %+v", d)
	}

	// Departure removes and re-converges; an unknown departure is a no-op.
	d, err = ctrl.Remove("loose")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted || d.Kind != KindDeparture {
		t.Fatalf("departure: %+v", d)
	}
	if eng.Problem().Workload().TaskByName("loose") != nil {
		t.Fatal("departed task still resident")
	}
	d, err = ctrl.Remove("never-admitted")
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatalf("unknown departure should be a no-op: %+v", d)
	}
	if _, err := ctrl.Remove("resident"); err == nil {
		t.Fatal("removing the last resident task should fail")
	}
}

func TestOfferHeadroomPolicy(t *testing.T) {
	eng := testCluster(t, 1)
	// Reserve 95% of every resource: even a modest candidate must fail the
	// price screen's headroom test while still passing the static floors.
	ctrl := New(eng, Config{Headroom: 0.95})
	cand, curve := chainCandidate(t, "modest", 120, []float64{4, 4}, []string{"r0", "r1"})
	d, err := ctrl.Offer(cand, curve)
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted || d.Stage != StagePrice {
		t.Fatalf("expected price-stage rejection under 0.9 headroom, got %+v", d)
	}
}

func TestAdmitAllSkipsGates(t *testing.T) {
	eng := testCluster(t, 1)
	ctrl := New(eng, Config{AdmitAll: true})
	// Statically impossible, but the baseline enacts it anyway.
	imp, curve := chainCandidate(t, "impossible", 8, []float64{5, 5}, []string{"r0", "r1"})
	d, err := ctrl.Offer(imp, curve)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted || d.TrialIters != 0 {
		t.Fatalf("admit-all should enact without a trial: %+v", d)
	}
	if eng.Problem().Workload().TaskByName("impossible") == nil {
		t.Fatal("admit-all did not enact the task")
	}
}

// TestQuarantineBackoffCap drives repeated rejections of one name and
// checks the evaluated-retry schedule follows capped exponential backoff.
func TestQuarantineBackoffCap(t *testing.T) {
	eng := testCluster(t, 1)
	cfg := Config{BackoffBase: 2, BackoffFactor: 2, BackoffCap: 5}
	ctrl := New(eng, cfg)
	imp, curve := chainCandidate(t, "impossible", 8, []float64{5, 5}, []string{"r0", "r1"})

	var gaps []int
	lastEval := 0
	for i := 0; i < 30; i++ {
		d, err := ctrl.Offer(imp, curve)
		if err != nil {
			t.Fatal(err)
		}
		if d.Admitted {
			t.Fatalf("impossible candidate admitted: %+v", d)
		}
		if d.Stage != StageQuarantine {
			if lastEval != 0 {
				gaps = append(gaps, d.Event-lastEval)
			}
			lastEval = d.Event
		}
	}
	// until = event + backoff and retry fires at event == until, so the gap
	// between evaluated retries equals the backoff: 2, then 4, then capped 5.
	want := []int{2, 4, 5, 5}
	if len(gaps) < len(want) {
		t.Fatalf("too few evaluated retries: gaps %v", gaps)
	}
	for i, g := range want {
		if gaps[i] != g {
			t.Fatalf("retry gap %d = %d, want %d (gaps %v)", i, gaps[i], g, gaps)
		}
	}
	for i, g := range gaps {
		if g > cfg.BackoffCap {
			t.Fatalf("gap %d = %d exceeds cap %d", i, g, cfg.BackoffCap)
		}
	}
}

// TestCountersMatchDecisionLog asserts the lla_admit_* metrics agree
// exactly with the controller's returned decision log.
func TestCountersMatchDecisionLog(t *testing.T) {
	eng := testCluster(t, 1)
	ctrl := New(eng, Config{Headroom: 0.2})
	ctrl.UsePlacer(NewPlacer(PlacerConfig{}))
	ctrl.Observe(&obs.Observer{Metrics: obs.NewRegistry()})

	offers := []struct {
		name     string
		critical float64
		exec     []float64
	}{
		{"a", 300, []float64{5, 4}},
		{"b", 200, []float64{4, 4, 4}},
		{"impossible", 8, []float64{5, 5}},
		{"impossible", 8, []float64{5, 5}}, // quarantined
		{"tight", 24, []float64{6, 6}},
		{"c", 250, []float64{3, 3}},
	}
	for _, o := range offers {
		tk, curve := chainCandidate(t, o.name, o.critical, o.exec, []string{"r0", "r1", "r2"}[:len(o.exec)])
		if _, err := ctrl.Offer(tk, curve); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctrl.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Remove("ghost"); err != nil {
		t.Fatal(err)
	}

	var considered, admitted, depart int64
	rejected := map[string]int64{}
	for _, d := range ctrl.Log() {
		switch d.Kind {
		case KindArrival:
			considered++
			if d.Admitted {
				admitted++
			} else {
				rejected[d.Stage]++
			}
		case KindDeparture:
			if d.Admitted {
				depart++
			}
		}
	}
	check := func(name string, c *obs.Counter, want int64) {
		t.Helper()
		if c.Value() != want {
			t.Errorf("%s = %d, want %d (log)", name, c.Value(), want)
		}
	}
	m := ctrl.m
	check("considered", m.Considered, considered)
	check("admitted", m.Admitted, admitted)
	check("rejected{static}", m.RejectedStatic, rejected[StageStatic]+rejected[StagePlace])
	check("rejected{price}", m.RejectedPrice, rejected[StagePrice])
	check("rejected{trial}", m.RejectedTrial, rejected[StageTrial])
	check("rejected{quarantine}", m.RejectedQuarantine, rejected[StageQuarantine])
	check("departures", m.Departures, depart)
	if got, want := m.Resident.Value(), float64(len(eng.Problem().Tasks)); got != want {
		t.Errorf("resident gauge = %v, want %v", got, want)
	}
	if considered == 0 || admitted == 0 || rejected[StageQuarantine] == 0 {
		t.Fatalf("test did not exercise all paths: considered=%d admitted=%d rejected=%v", considered, admitted, rejected)
	}
}

// TestDecisionsDeterministicAcrossWorkers replays one seeded churn trace
// against controllers whose engines shard differently and requires
// identical decision logs.
func TestDecisionsDeterministicAcrossWorkers(t *testing.T) {
	trace, err := workload.GenerateChurn(workload.ChurnConfig{
		Seed:               11,
		MeanInterarrivalMs: 30,
		MeanLifetimeMs:     120,
		HorizonMs:          900,
		Templates: []workload.ChurnTemplate{
			{Name: "web", CriticalMs: 60, StageExecMs: []float64{3, 2}, UtilityK: 2},
			{Name: "burst", CriticalMs: 22, StageExecMs: []float64{5, 4}, UtilityK: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) []Decision {
		eng := testCluster(t, workers)
		ctrl := New(eng, Config{TrialIters: 800})
		ctrl.UsePlacer(NewPlacer(PlacerConfig{}))
		for _, ev := range trace {
			tpl := []workload.ChurnTemplate{
				{Name: "web", CriticalMs: 60, StageExecMs: []float64{3, 2}, UtilityK: 2},
				{Name: "burst", CriticalMs: 22, StageExecMs: []float64{5, 4}, UtilityK: 2},
			}[ev.Template]
			if ev.Arrival {
				tk, curve, err := tpl.Instantiate(ev.Name, []string{"r0", "r1"})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ctrl.OfferPlaced(Candidate{Task: tk, Curve: curve}); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := ctrl.Remove(ev.Name); err != nil {
					t.Fatal(err)
				}
			}
			if _, _, err := ctrl.MaybeRebalance(); err != nil {
				t.Fatal(err)
			}
		}
		return ctrl.Log()
	}

	serial := run(1)
	sharded := run(3)
	if !reflect.DeepEqual(serial, sharded) {
		for i := range serial {
			if i < len(sharded) && !reflect.DeepEqual(serial[i], sharded[i]) {
				t.Fatalf("decision %d differs:\n  workers=1: %+v\n  workers=3: %+v", i, serial[i], sharded[i])
			}
		}
		t.Fatalf("decision logs differ in length: %d vs %d", len(serial), len(sharded))
	}
	var admitted int
	for _, d := range serial {
		if d.Kind == KindArrival && d.Admitted {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("trace admitted nothing; test is vacuous")
	}
}
