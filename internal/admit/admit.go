// Package admit implements online admission control and price-guided
// placement on top of the LLA optimizer. The paper assumes admission
// control is layered above the latency assignment (Section 3.2) and offers
// "run LLA and check convergence" as the sufficient schedulability test
// (Section 5.4); this package turns those remarks into a subsystem that can
// say no fast: arriving tasks pass a static necessary-condition screen, a
// price screen against the live dual variables mu (predicted demand vs.
// per-resource headroom, congestion cost vs. utility gain), and finally a
// bounded warm-started trial optimization on a forked scratch engine.
// Rejected tasks are quarantined with capped exponential backoff, counted
// in controller events rather than wall-clock time so decision traces are
// deterministic and replayable.
package admit

import (
	"fmt"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// Config tunes the admission controller. The zero value uses the defaults
// noted per field.
type Config struct {
	// Headroom is the fraction of every resource's availability the price
	// screen keeps in reserve: candidates must fit under
	// (Overcommit − Headroom)·B_r. Default 0.
	Headroom float64
	// Overcommit relaxes (>1) or tightens (<1) the price screen's demand
	// ceiling; the trial gate still arbitrates truth. Default 1.
	Overcommit float64
	// MaxCostBenefit rejects candidates whose congestion cost at live
	// prices exceeds MaxCostBenefit × their utility gain. Default 1
	// (admitting must not cost more congestion than it adds utility);
	// negative disables the test.
	MaxCostBenefit float64
	// MuFloor floors live prices when predicting candidate demand, so
	// uncongested resources price newcomers like a fresh engine would.
	// Default 1 (the engine's default InitialMu).
	MuFloor float64
	// TrialIters bounds the scratch trial optimization and each live
	// re-convergence. Default 1500.
	TrialIters int
	// TrialRelTol and TrialWindow parametrize the convergence detector of
	// trial and re-convergence runs. Defaults 1e-7 and 20.
	TrialRelTol float64
	TrialWindow int
	// Tol is the feasibility tolerance on constraint violations. Default 1e-3.
	Tol float64
	// BackoffBase is how many controller events a rejected task is
	// quarantined for after its first strike; BackoffFactor multiplies the
	// quarantine per further strike; BackoffCap caps it. Defaults 2, 2, 32.
	// Event-counted (not wall-clock) so decisions stay deterministic.
	BackoffBase   int
	BackoffFactor int
	BackoffCap    int
	// AdmitAll skips every gate and enacts each offer directly — the
	// admit-everything baseline the churn experiment compares against.
	AdmitAll bool
}

// WithDefaults returns the config with unset fields filled.
func (c Config) WithDefaults() Config {
	if c.Overcommit == 0 {
		c.Overcommit = 1
	}
	if c.MaxCostBenefit == 0 {
		c.MaxCostBenefit = 1
	}
	if c.MuFloor == 0 {
		c.MuFloor = 1
	}
	if c.TrialIters == 0 {
		c.TrialIters = 1500
	}
	if c.TrialRelTol == 0 {
		c.TrialRelTol = 1e-7
	}
	if c.TrialWindow == 0 {
		c.TrialWindow = 20
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 2
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = 2
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 32
	}
	return c
}

// Decision kinds and gate stages.
const (
	KindArrival   = "arrival"
	KindDeparture = "departure"
	KindRebalance = "rebalance"

	StageQuarantine = "quarantine"
	StageStatic     = "static"
	StagePrice      = "price"
	StageTrial      = "trial"
	StageAdmit      = "admit"
	StageLeave      = "leave"
	StagePlace      = "place"
)

// Decision is one entry of the controller's decision log. The log is the
// authoritative record; the lla_admit_* metrics are derived from it
// one-to-one (asserted by tests).
type Decision struct {
	// Event is the controller's event counter at decision time (1-based).
	Event int
	// Task names the candidate or resident involved.
	Task string
	// Kind is KindArrival, KindDeparture or KindRebalance.
	Kind string
	// Admitted reports arrival admission; for departures it reports whether
	// the task was resident and removed, for rebalances whether a move
	// happened.
	Admitted bool
	// Stage names the gate that decided (Stage* constants).
	Stage string
	// Reason explains the decision.
	Reason string
	// TrialIters is the scratch-engine iteration count of the trial gate.
	TrialIters int
	// ReconvergeIters counts live-engine iterations spent re-converging
	// after an enacted change (admission, departure, rebalance).
	ReconvergeIters int
	// Utility is the live aggregate utility after the decision.
	Utility float64
}

// quarEntry tracks one quarantined task name.
type quarEntry struct {
	strikes int
	until   int // first event at which a retry is considered again
}

// Controller is the online admission controller for one live engine. It is
// not safe for concurrent use; drive it from the goroutine that owns the
// engine (the same discipline Engine.Step requires).
type Controller struct {
	eng    *core.Engine
	cfg    Config
	placer *Placer

	m    *obs.AdmitMetrics
	obsv *obs.Observer

	event      int
	log        []Decision
	quarantine map[string]*quarEntry

	snap core.Snapshot // reusable scratch for live-price reads
}

// New builds a controller over a running engine. The engine should be
// converged (or close) before the first Offer: the price screen reads the
// live mu vector.
func New(eng *core.Engine, cfg Config) *Controller {
	return &Controller{
		eng:        eng,
		cfg:        cfg.WithDefaults(),
		quarantine: make(map[string]*quarEntry),
	}
}

// Engine returns the controlled engine.
func (c *Controller) Engine() *core.Engine { return c.eng }

// UsePlacer attaches a price-guided placer; OfferPlaced and MaybeRebalance
// require one.
func (c *Controller) UsePlacer(p *Placer) { c.placer = p }

// Observe attaches observability: admission counters/gauges on the metrics
// registry, an "admission" trace event per decision. nil detaches.
func (c *Controller) Observe(o *obs.Observer) {
	c.obsv, c.m = o, nil
	if o != nil && o.Metrics != nil {
		c.m = obs.NewAdmitMetrics(o.Metrics)
		c.m.Resident.Set(float64(len(c.eng.Problem().Tasks)))
	}
	if c.placer != nil {
		c.placer.Observe(o)
	}
}

// Log returns a copy of the decision log.
func (c *Controller) Log() []Decision { return append([]Decision(nil), c.log...) }

// liveMu snapshots the engine's price vector as a resource-ID map.
func (c *Controller) liveMu() map[string]float64 {
	c.eng.SnapshotInto(&c.snap)
	p := c.eng.Problem()
	mu := make(map[string]float64, len(p.Resources))
	for ri := range p.Resources {
		mu[p.Resources[ri].ID] = c.snap.Mu[ri]
	}
	return mu
}

// finish records the decision in the log, mirrors it onto the metrics and
// trace, and returns it.
func (c *Controller) finish(d Decision) Decision {
	d.Utility = c.eng.Probe().Utility
	c.log = append(c.log, d)
	if c.m != nil {
		switch d.Kind {
		case KindArrival:
			c.m.Considered.Inc()
			if d.Admitted {
				c.m.Admitted.Inc()
			} else {
				switch d.Stage {
				case StageQuarantine:
					c.m.RejectedQuarantine.Inc()
				case StagePrice:
					c.m.RejectedPrice.Inc()
				case StageTrial:
					c.m.RejectedTrial.Inc()
				default:
					c.m.RejectedStatic.Inc()
				}
			}
		case KindDeparture:
			if d.Admitted {
				c.m.Departures.Inc()
			}
		}
		if d.Admitted && d.Kind != KindRebalance {
			c.m.ReconvergeIters.Observe(float64(d.ReconvergeIters))
		}
		c.m.Resident.Set(float64(len(c.eng.Problem().Tasks)))
	}
	if c.obsv != nil {
		v := 0.0
		if d.Admitted {
			v = 1
		}
		kind := obs.EventAdmission
		if d.Kind == KindRebalance {
			kind = obs.EventRebalance
		}
		c.obsv.Emit(obs.Event{Kind: kind, Iteration: c.eng.Iteration(),
			Task: d.Task, Detail: d.Stage, Value: v})
	}
	return d
}

// strike quarantines a rejected task name with capped exponential backoff:
// BackoffBase events after the first strike, multiplied by BackoffFactor
// per further strike, never more than BackoffCap.
func (c *Controller) strike(name string) *quarEntry {
	q := c.quarantine[name]
	if q == nil {
		q = &quarEntry{}
		c.quarantine[name] = q
	}
	q.strikes++
	backoff := c.cfg.BackoffBase
	for i := 1; i < q.strikes && backoff < c.cfg.BackoffCap; i++ {
		backoff *= c.cfg.BackoffFactor
	}
	if backoff > c.cfg.BackoffCap {
		backoff = c.cfg.BackoffCap
	}
	q.until = c.event + backoff
	return q
}

// reconverge drives the live engine after an enacted change and returns the
// iterations spent.
func (c *Controller) reconverge() int {
	snap, _ := c.eng.RunUntilConverged(c.cfg.TrialIters, c.cfg.TrialRelTol, c.cfg.TrialWindow, c.cfg.Tol)
	return snap.Iteration
}

// Offer screens an arriving task and, if every gate passes, enacts it on
// the live engine (warm-started ReplaceWorkload plus re-convergence). The
// returned Decision says which gate decided and why; err is reserved for
// mechanical failures (duplicate names, engine errors), not rejections.
func (c *Controller) Offer(t *task.Task, curve utility.Curve) (Decision, error) {
	c.event++
	d := Decision{Event: c.event, Task: t.Name, Kind: KindArrival}

	if q := c.quarantine[t.Name]; q != nil && c.event < q.until {
		d.Stage = StageQuarantine
		d.Reason = fmt.Sprintf("quarantined until event %d (strike %d)", q.until, q.strikes)
		return c.finish(d), nil
	}

	resident := c.eng.CurrentWorkload()
	if resident.TaskByName(t.Name) != nil {
		return d, fmt.Errorf("admit: task %q is already resident", t.Name)
	}
	trial := resident.Clone()
	trial.Tasks = append(trial.Tasks, t.Clone())
	trial.Curves[t.Name] = curve

	if !c.cfg.AdmitAll {
		if rejected, why, err := c.screen(trial, t, curve, &d); err != nil {
			return d, err
		} else if rejected {
			d.Stage, d.Reason = why.Stage, why.Reason
			c.strike(t.Name)
			return c.finish(d), nil
		}
	}

	if err := c.eng.ReplaceWorkload(trial); err != nil {
		return d, fmt.Errorf("admit: enacting %q: %w", t.Name, err)
	}
	d.ReconvergeIters = c.reconverge()
	d.Admitted = true
	d.Stage = StageAdmit
	if c.cfg.AdmitAll {
		d.Reason = "admit-everything policy"
	} else {
		d.Reason = "passed static, price and trial gates"
	}
	delete(c.quarantine, t.Name)
	return c.finish(d), nil
}

// screen runs the static, price and trial gates. It returns rejected=true
// with the stage/reason in why, or an error for malformed inputs.
func (c *Controller) screen(trial *workload.Workload, t *task.Task, curve utility.Curve, d *Decision) (bool, Decision, error) {
	// Gate 1: static necessary conditions (path and resource floors).
	rep, err := workload.Analyze(trial)
	if err != nil {
		// An unanalyzable trial workload means the candidate itself is
		// malformed relative to the running system (bad resource reference,
		// duplicate placement); reject rather than fail the control loop.
		return true, Decision{Stage: StageStatic, Reason: err.Error()}, nil
	}
	if !rep.Feasible() {
		return true, Decision{Stage: StageStatic, Reason: rep.String()}, nil
	}

	// Gate 2: price the candidate against the live mu vector.
	mode := c.eng.Config().WeightMode
	_, reason, err := PriceScreen(trial, t, curve, mode, c.liveMu(), c.cfg)
	if err != nil {
		return false, Decision{}, fmt.Errorf("admit: pricing %q: %w", t.Name, err)
	}
	if reason != "" {
		return true, Decision{Stage: StagePrice, Reason: reason}, nil
	}

	// Gate 3: bounded warm-started trial optimization on a scratch fork —
	// the paper's sufficient schedulability test (Section 5.4), run without
	// disturbing the live engine.
	scratch, err := c.eng.Fork()
	if err != nil {
		return false, Decision{}, fmt.Errorf("admit: forking trial engine: %w", err)
	}
	defer scratch.Close()
	if err := scratch.ReplaceWorkload(trial); err != nil {
		return true, Decision{Stage: StageTrial, Reason: err.Error()}, nil
	}
	snap, ok := scratch.RunUntilConverged(c.cfg.TrialIters, c.cfg.TrialRelTol, c.cfg.TrialWindow, c.cfg.Tol)
	d.TrialIters = snap.Iteration
	if !ok || !snap.Feasible(c.cfg.Tol) {
		return true, Decision{Stage: StageTrial, Reason: fmt.Sprintf(
			"trial did not converge feasibly in %d iterations (resViol %.4f, pathViol %.4f)",
			snap.Iteration, snap.MaxResourceViolation, snap.MaxPathViolationFrac)}, nil
	}
	return false, Decision{}, nil
}

// Remove retires a resident task (a departure) and re-converges the
// remaining workload. Removing an unknown name is recorded as a no-op
// decision, not an error, so churn traces can replay departures of tasks
// that were never admitted.
func (c *Controller) Remove(name string) (Decision, error) {
	c.event++
	d := Decision{Event: c.event, Task: name, Kind: KindDeparture, Stage: StageLeave}

	w := c.eng.CurrentWorkload()
	idx := -1
	for i, t := range w.Tasks {
		if t.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		d.Reason = "not resident"
		return c.finish(d), nil
	}
	if len(w.Tasks) == 1 {
		return d, fmt.Errorf("admit: cannot remove %q: it is the last resident task", name)
	}
	w.Tasks = append(w.Tasks[:idx], w.Tasks[idx+1:]...)
	delete(w.Curves, name)
	if err := c.eng.ReplaceWorkload(w); err != nil {
		return d, fmt.Errorf("admit: removing %q: %w", name, err)
	}
	d.ReconvergeIters = c.reconverge()
	d.Admitted = true
	d.Reason = "departed"
	if c.placer != nil {
		c.placer.forget(name)
	}
	return c.finish(d), nil
}
