package fleet

import (
	"math"
	"testing"

	"lla/internal/task"
	"lla/internal/workload"
)

// replaceUtility runs a cold fleet on w and returns its converged utility —
// the reference a warm-started fleet must match.
func replaceUtility(t *testing.T, w *workload.Workload, cfg Config) float64 {
	t.Helper()
	f, err := New(w, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("cold reference did not converge in %d rounds", res.Rounds)
	}
	return res.Utility
}

// TestFleetReplaceWorkloadIncremental: a one-task churn delta rebuilds only
// the affected shards, keeps every untouched shard's engine (same pointer,
// still skippable), and re-converges to the cold fleet's utility.
func TestFleetReplaceWorkloadIncremental(t *testing.T) {
	cfg := Config{Shards: 4, Seed: 1, LocalFreeze: true, LocalIters: 5000}
	w := clusteredWorkload(t, 17, 0.25)
	f, err := New(w, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if res, err := f.Run(); err != nil || !res.Converged {
		t.Fatalf("initial run: converged=%v err=%v", res.Converged, err)
	}

	// Churn: tighten one task's critical time by 10%.
	w2 := w.Clone()
	w2.Tasks[0].CriticalMs *= 0.9
	changedShard := f.Partition().TaskShard[0]
	engines := make(map[int]interface{}, f.Shards())
	for s := 0; s < f.Shards(); s++ {
		engines[s] = f.Engine(s)
	}

	st, err := f.ReplaceWorkload(w2)
	if err != nil {
		t.Fatalf("ReplaceWorkload: %v", err)
	}
	if st.Full {
		t.Fatal("one-task delta forced a full rebuild")
	}
	if st.Rebuilt < 1 || st.Reused < 1 {
		t.Fatalf("rebuilt %d reused %d, want both >= 1", st.Rebuilt, st.Reused)
	}
	if st.Added != 0 || st.Removed != 0 {
		t.Fatalf("added %d removed %d, want 0/0", st.Added, st.Removed)
	}
	for s := 0; s < f.Shards(); s++ {
		same := f.Engine(s) == engines[s]
		if s == changedShard && same {
			t.Fatalf("shard %d holds the changed task but kept its engine", s)
		}
		if s != changedShard && !same {
			t.Fatalf("untouched shard %d was rebuilt", s)
		}
	}

	res, err := f.Run()
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("warm fleet did not re-converge in %d rounds", res.Rounds)
	}
	cold := replaceUtility(t, w2, cfg)
	if dev := math.Abs(res.Utility-cold) / math.Max(math.Abs(cold), 1); dev > 1e-3 {
		t.Fatalf("warm utility %v deviates from cold %v by %v", res.Utility, cold, dev)
	}
}

// TestFleetReplaceWorkloadChurn: tasks joining and leaving route through
// the incremental path — the newcomer lands on the shard already touching
// its resources, the leaver's shard rebuilds, and the fleet re-converges.
func TestFleetReplaceWorkloadChurn(t *testing.T) {
	cfg := Config{Shards: 4, Seed: 1, LocalFreeze: true, LocalIters: 5000}
	w := clusteredWorkload(t, 23, 0.25)
	f, err := New(w, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if res, err := f.Run(); err != nil || !res.Converged {
		t.Fatalf("initial run: converged=%v err=%v", res.Converged, err)
	}

	// Remove the last task; add a clone of task 0 under a new name (same
	// resources, so placement should follow the overlap signal to task 0's
	// shard).
	w2 := w.Clone()
	leaver := w2.Tasks[len(w2.Tasks)-1].Name
	w2.Tasks = w2.Tasks[:len(w2.Tasks)-1]
	delete(w2.Curves, leaver)
	twin := w2.Tasks[0].Clone()
	renameTask(twin, w2.Tasks[0].Name+"-twin")
	w2.Tasks = append(w2.Tasks, twin)
	w2.Curves[twin.Name] = w2.Curves[w2.Tasks[0].Name]

	homeShard := f.Partition().TaskShard[0]
	st, err := f.ReplaceWorkload(w2)
	if err != nil {
		t.Fatalf("ReplaceWorkload: %v", err)
	}
	if st.Full {
		t.Fatal("join/leave delta forced a full rebuild")
	}
	if st.Added != 1 || st.Removed != 1 {
		t.Fatalf("added %d removed %d, want 1/1", st.Added, st.Removed)
	}
	if got := f.Partition().TaskShard[len(w2.Tasks)-1]; got != homeShard {
		t.Fatalf("twin placed on shard %d, want its resources' shard %d", got, homeShard)
	}

	res, err := f.Run()
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("warm fleet did not re-converge in %d rounds", res.Rounds)
	}
	cold := replaceUtility(t, w2, cfg)
	if dev := math.Abs(res.Utility-cold) / math.Max(math.Abs(cold), 1); dev > 1e-3 {
		t.Fatalf("warm utility %v deviates from cold %v by %v", res.Utility, cold, dev)
	}
}

// TestFleetReplaceWorkloadFullFallback: shrinking below one task per shard
// invalidates the partition shape; ReplaceWorkload falls back to a full
// (still warm-started) rebuild and the fleet stays usable.
func TestFleetReplaceWorkloadFullFallback(t *testing.T) {
	cfg := Config{Shards: 4, Seed: 1, LocalFreeze: true, LocalIters: 5000}
	w := clusteredWorkload(t, 17, 0.25)
	f, err := New(w, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if res, err := f.Run(); err != nil || !res.Converged {
		t.Fatalf("initial run: converged=%v err=%v", res.Converged, err)
	}
	rounds := f.Stats().Rounds

	tiny := subWorkload(w, "tiny", []int{0, 1, 2})
	st, err := f.ReplaceWorkload(tiny)
	if err != nil {
		t.Fatalf("ReplaceWorkload: %v", err)
	}
	if !st.Full {
		t.Fatal("3 tasks on 4 shards should force a full rebuild")
	}
	if f.Shards() != 3 {
		t.Fatalf("shrunken fleet has %d shards, want 3", f.Shards())
	}
	if f.Stats().Rounds != rounds {
		t.Fatalf("lifetime stats lost across full rebuild: %d, want %d", f.Stats().Rounds, rounds)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("rebuilt fleet did not converge in %d rounds", res.Rounds)
	}
}

// renameTask gives a cloned task a fresh name, including its subtask and
// curve bindings that key on the task name.
func renameTask(c *task.Task, name string) {
	c.Name = name
}
