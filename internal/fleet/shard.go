package fleet

import (
	"math"

	"lla/internal/core"
	"lla/internal/utility"
	"lla/internal/wire"
	"lla/internal/workload"
)

// shardRuntime wraps one shard's engine: the sub-workload's tasks with their
// original data, boundary resources pinned to the aggregator's prices.
type shardRuntime struct {
	id  int
	eng *core.Engine

	// localRi[j] is the engine-local resource index of the shard's j-th
	// present boundary resource; slot[j] is its index into the fleet's
	// boundary vectors. Both ascend in boundary order.
	localRi []int
	slot    []int

	// Certification state refreshed by sweep.
	iters    int     // engine iterations consumed by the last sweep
	kktMax   float64 // shard-local KKT residual after the last sweep
	viol     float64 // worst unpinned resource violation (absolute)
	pathViol float64 // worst path violation fraction

	// Shard-level active-set state (SHARDING.md): frozen records that the
	// last sweep exited at a bitwise self-fixed-point (a Step that executed
	// zero solves and repriced zero resources), sweptEpoch the engine's pin
	// epoch when that sweep ended. While both hold — no pinned boundary
	// price has moved since a proven fixed point — re-sweeping would be a
	// bitwise no-op, so the round skips the shard entirely. skip caches the
	// current round's decision.
	frozen     bool
	sweptEpoch uint64
	skip       bool

	// bd and bp are the shard's reusable boundary report/pin buffers
	// (demand+curvature out, price+congestion in). Resource and Shard
	// fields are fixed at (re)build; per-round refreshes touch only the
	// varying fields, so a steady-state round allocates nothing. On a
	// skipped round bd is reused as-is: the shard's state is bitwise
	// unchanged, so the cached demand and curvature are bit-exact.
	bd []wire.BoundaryDemand
	bp []wire.BoundaryPrice
}

// refreshBoundary refreshes the shard's boundary demand report from the
// engine's post-sweep state. Curvature is recomputed only when the boundary
// solver consumes it (O(degree) per resource). Runs inside the sweep job —
// it touches only this shard's engine and buffers, so concurrent shard
// sweeps stay race-free.
func (s *shardRuntime) refreshBoundary(needCurv bool) {
	for j, lri := range s.localRi {
		s.bd[j].Demand = s.eng.ShareSumAt(lri)
		if needCurv {
			s.bd[j].Curvature = s.eng.CurvatureAt(lri)
		}
	}
}

// subWorkload extracts the tasks of one shard, keeping task and resource
// order as in the full workload. Order preservation is what makes the
// shard's compiled sub-problem a projection of the full one: every per-task
// datum is identical and every resource's Subs list is the original list
// filtered to the shard's tasks — so an overlap-free shard reproduces the
// single engine's per-component arithmetic bit for bit.
func subWorkload(w *workload.Workload, name string, taskIdx []int) *workload.Workload {
	sub := &workload.Workload{
		Name:   name,
		Curves: make(map[string]utility.Curve, len(taskIdx)),
	}
	used := make(map[string]bool)
	for _, ti := range taskIdx {
		t := w.Tasks[ti].Clone()
		sub.Tasks = append(sub.Tasks, t)
		sub.Curves[t.Name] = w.Curves[t.Name]
		for _, s := range t.Subtasks {
			used[s.Resource] = true
		}
	}
	for _, r := range w.Resources {
		if used[r.ID] {
			sub.Resources = append(sub.Resources, r)
		}
	}
	return sub
}

// sweep runs the shard's local price dynamics against the current pinned
// boundary prices until the shard-local fixed point: the KKT/feasibility
// window rule, or — in freeze mode, and as an early exit on the sparse
// path — until a Step executes zero solves and reprices zero resources,
// meaning the state is bitwise frozen and further Steps are no-ops.
// maxIters always caps the sweep. The certification fields are refreshed
// on exit.
func (s *shardRuntime) sweep(maxIters int, freeze bool, kktTol float64, window int, tol float64) {
	if window < 1 {
		window = 1
	}
	stable := 0
	s.iters = 0
	s.frozen = false
	sparse := s.eng.SparseEnabled()
	for s.iters < maxIters {
		var before core.SparseStats
		if sparse {
			before = s.eng.SparseStats()
		}
		s.eng.Step()
		s.iters++
		if sparse {
			after := s.eng.SparseStats()
			if after.ExecutedSolves == before.ExecutedSolves &&
				after.RepricedResources == before.RepricedResources {
				s.frozen = true
				break // bitwise frozen: replaying the Step changes nothing
			}
		}
		if freeze {
			continue
		}
		kktMax, _, _ := s.eng.KKTStats()
		pr := s.eng.Probe()
		if kktMax < kktTol && s.unpinnedViolation() < tol && pr.MaxPathViolationFrac < tol {
			stable++
			if stable >= window {
				break
			}
		} else {
			stable = 0
		}
	}
	s.kktMax, _, _ = s.eng.KKTStats()
	s.viol = s.unpinnedViolation()
	s.pathViol = s.eng.Probe().MaxPathViolationFrac
}

// unpinnedViolation is the worst absolute capacity violation over the
// shard's unpinned resources — the shard-owned half of primal feasibility.
// Pinned (boundary) resources are excluded: their prices are the
// aggregator's iterate, and while it is still searching, local demand
// against an underpriced boundary resource legitimately exceeds capacity.
// The aggregator checks boundary feasibility globally instead.
func (s *shardRuntime) unpinnedViolation() float64 {
	p := s.eng.Problem()
	v := 0.0
	for ri := range p.Resources {
		if s.eng.PinnedAt(ri) {
			continue
		}
		if over := s.eng.ShareSumAt(ri) - p.Resources[ri].Availability; over > v {
			v = over
		}
	}
	return v
}

// stateHash is an FNV-1a 64 hash over the shard's full optimization state —
// every resource price and every subtask latency, bit for bit. Equal hashes
// across runs at every aggregator round are the fleet's per-shard
// determinism certificate.
func (s *shardRuntime) stateHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	p := s.eng.Problem()
	for ri := range p.Resources {
		mix(math.Float64bits(s.eng.MuAt(ri)))
	}
	for ti := range p.Tasks {
		for _, l := range s.eng.Controller(ti).LatMs {
			mix(math.Float64bits(l))
		}
	}
	return h
}
