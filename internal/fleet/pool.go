package fleet

import "sync"

// sweepPool runs shard sweeps concurrently on a persistent set of parked
// goroutines, mirroring the core engine's workerPool idiom: workers block on
// a buffered channel, a job send is a struct copy (no allocation), and the
// caller helps drain the queue instead of idling. Determinism does not depend
// on scheduling: each sweep reads and writes only its own shard's engine and
// buffers, and the boundary reduction over the results happens afterwards,
// serially, in ascending shard order (see Fleet.round).
type sweepPool struct {
	jobs chan sweepJob
	wg   sync.WaitGroup
	once sync.Once
}

// sweepJob is one shard sweep: the fleet supplies the sweep parameters, the
// shard the state to advance.
type sweepJob struct {
	f *Fleet
	s *shardRuntime
}

// newSweepPool parks extra worker goroutines; cap sizes the job queue so
// enqueueing a full round of sweeps never blocks the caller.
func newSweepPool(extra, cap int) *sweepPool {
	p := &sweepPool{jobs: make(chan sweepJob, cap)}
	for i := 0; i < extra; i++ {
		go func() {
			for j := range p.jobs {
				j.f.sweepShard(j.s)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run sweeps every due shard, using the caller as one more worker, and
// returns once all sweeps completed.
func (p *sweepPool) run(f *Fleet, due []*shardRuntime) {
	p.wg.Add(len(due))
	for _, s := range due {
		p.jobs <- sweepJob{f: f, s: s}
	}
	for {
		select {
		case j := <-p.jobs:
			j.f.sweepShard(j.s)
			p.wg.Done()
		default:
			p.wg.Wait()
			return
		}
	}
}

// close releases the parked workers. Safe to call multiple times; only call
// with no run in flight.
func (p *sweepPool) close() {
	p.once.Do(func() { close(p.jobs) })
}
