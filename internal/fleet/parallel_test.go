package fleet

import (
	"reflect"
	"testing"

	"lla/internal/core"
)

// TestFleetShardWorkersBitwiseInvariant is the parallel-rounds determinism
// property: at every sweep concurrency — serial, partial, full, and
// over-provisioned — the fleet produces bitwise-identical per-round shard
// hashes, boundary residual series, and round counts. Sweeps touch disjoint
// shard state and the boundary reduction is serial in ascending shard
// order, so the schedule cannot reach the arithmetic.
func TestFleetShardWorkersBitwiseInvariant(t *testing.T) {
	const shards = 4
	for _, seed := range []int64{31, 47} {
		w := clusteredWorkload(t, seed, 0.25)
		var ref Result
		for i, workers := range []int{1, 2, shards, shards + 3} {
			f, err := New(w, Config{Shards: shards, Seed: 5, ShardWorkers: workers, RecordHashes: true})
			if err != nil {
				t.Fatalf("seed %d workers %d: New: %v", seed, workers, err)
			}
			res, err := f.Run()
			f.Close()
			if err != nil {
				t.Fatalf("seed %d workers %d: Run: %v", seed, workers, err)
			}
			if !res.Converged {
				t.Fatalf("seed %d workers %d: did not converge in %d rounds", seed, workers, res.Rounds)
			}
			if i == 0 {
				ref = res
				continue
			}
			if res.Rounds != ref.Rounds {
				t.Fatalf("seed %d workers %d: %d rounds, serial took %d", seed, workers, res.Rounds, ref.Rounds)
			}
			if !reflect.DeepEqual(res.ShardHashes, ref.ShardHashes) {
				t.Fatalf("seed %d workers %d: shard hashes diverged from serial", seed, workers)
			}
			if !reflect.DeepEqual(res.BoundaryResiduals, ref.BoundaryResiduals) {
				t.Fatalf("seed %d workers %d: boundary residual series diverged from serial", seed, workers)
			}
			if res.LocalIters != ref.LocalIters {
				t.Fatalf("seed %d workers %d: %d local iters, serial %d", seed, workers, res.LocalIters, ref.LocalIters)
			}
		}
	}
}

// TestFleetSkipsFrozenShards: once Run certifies, the shards sit at proven
// fixed points under unchanged pins, so further rounds skip every sweep.
func TestFleetSkipsFrozenShards(t *testing.T) {
	w := clusteredWorkload(t, 17, 0.25)
	f, err := New(w, Config{Shards: 4, Seed: 1, LocalFreeze: true, LocalIters: 5000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds", res.Rounds)
	}
	if res.SweptShards == 0 {
		t.Fatal("run reported zero swept shards")
	}
	before := f.Stats()
	if before.Swept+before.Skipped != before.Rounds*f.Shards() {
		t.Fatalf("stats don't tally: %+v over %d shards", before, f.Shards())
	}
	for i := 0; i < 3; i++ {
		conv, err := f.Round()
		if err != nil {
			t.Fatalf("Round: %v", err)
		}
		if !conv {
			t.Fatalf("round %d: certified fleet reported not converged", i)
		}
	}
	after := f.Stats()
	if got := after.Skipped - before.Skipped; got != 3*f.Shards() {
		t.Fatalf("steady-state rounds skipped %d sweeps, want %d", got, 3*f.Shards())
	}
	if after.Swept != before.Swept {
		t.Fatalf("steady-state rounds executed %d sweeps, want 0", after.Swept-before.Swept)
	}
}

// TestFleetSkippedRoundZeroAllocs: a steady-state round — every shard
// skipped, no wire verify, no hash recording, no observer — must allocate
// nothing: cached demand reports and persistent boundary buffers carry the
// whole round.
func TestFleetSkippedRoundZeroAllocs(t *testing.T) {
	w := clusteredWorkload(t, 17, 0.25)
	f, err := New(w, Config{Shards: 4, Seed: 1, ShardWorkers: 1, Engine: core.Config{Workers: 1},
		LocalFreeze: true, LocalIters: 5000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds", res.Rounds)
	}
	var roundErr error
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := f.Round(); err != nil {
			roundErr = err
		}
	})
	if roundErr != nil {
		t.Fatalf("Round: %v", roundErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state round allocates %v times, want 0", allocs)
	}
	if st := f.Stats(); st.Skipped == 0 {
		t.Fatal("steady-state rounds did not skip")
	}
}
