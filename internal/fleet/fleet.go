package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"runtime"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/price"
	"lla/internal/transport"
	"lla/internal/wire"
	"lla/internal/workload"
)

// Config configures a sharded fleet.
type Config struct {
	// Shards is the shard count K (>= 1; clamped to the task count).
	Shards int
	// Seed drives the partitioner's refinement order.
	Seed int64
	// BalanceSlack and Passes tune the partitioner (0 = defaults).
	BalanceSlack float64
	Passes       int

	// ShardWorkers is the number of shard sweeps run concurrently per round
	// (0 = min(Shards, GOMAXPROCS), 1 = serial). Results are bitwise
	// identical at every setting: sweeps touch disjoint shard state and the
	// boundary reduction over their results is serial in ascending shard
	// order, so the schedule cannot reach the arithmetic (SHARDING.md).
	ShardWorkers int

	// Engine configures every shard engine (zero value = paper defaults).
	// The fleet is the same optimization as one engine over the full
	// workload: each shard runs these dynamics on its sub-problem with the
	// boundary prices pinned. When ShardWorkers > 1 and Engine.Workers is
	// left 0, each shard engine gets GOMAXPROCS/ShardWorkers workers instead
	// of the engine default (GOMAXPROCS) so concurrent sweeps do not
	// oversubscribe the machine — bitwise-safe, engines are worker-count
	// invariant.
	Engine core.Config

	// BoundarySolver selects the aggregator's dynamics over the boundary
	// price vector — gradient or diagonal-Newton ("" = the Engine config's
	// solver, which defaults to gradient). Diagonal Newton consumes the
	// shard-summed demand curvature carried by the BOUNDARY frames.
	BoundarySolver price.Solver

	// LocalIters caps one shard sweep (0 = 400). LocalKKTTol, LocalWindow
	// and Tol form the sweep's stopping rule (0 = KKTTol, 2, 1e-6).
	LocalIters  int
	LocalKKTTol float64
	LocalWindow int
	// LocalFreeze makes sweeps run to the bitwise frozen fixed point (every
	// Step a no-op) instead of the KKT window — the mode the bitwise
	// single-engine equivalence tests use. Requires a sparse, non-dyn
	// engine config; other configs simply run LocalIters.
	LocalFreeze bool

	// MaxRounds caps aggregator rounds (0 = 300).
	MaxRounds int
	// KKTTol bounds the worst shard-local KKT residual at certification
	// (0 = 1e-6); Tol bounds constraint violations (0 = 1e-6); BoundaryTol
	// bounds the boundary residual — relative overload and relative price
	// movement (0 = 1e-6). Window is how many consecutive rounds must
	// certify (0 = 2).
	KKTTol      float64
	Tol         float64
	BoundaryTol float64
	Window      int

	// WireVerify routes every PRICE_AGG broadcast and BOUNDARY demand
	// report through an encode/decode round trip of the binary wire codec,
	// consuming the decoded values — the in-process stand-in for the
	// distributed deployment's frame path.
	WireVerify bool
	// RecordHashes captures every shard's FNV-1a state hash after each
	// round into Result.ShardHashes, and the per-round boundary residual
	// into Result.BoundaryResiduals (the determinism certificate).
	RecordHashes bool

	// Observer receives lla_fleet_* metrics and fleet trace events (nil =
	// disabled).
	Observer *obs.Observer
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.LocalIters == 0 {
		c.LocalIters = 400
	}
	if c.KKTTol == 0 {
		c.KKTTol = 1e-6
	}
	if c.LocalKKTTol == 0 {
		c.LocalKKTTol = c.KKTTol
	}
	if c.LocalWindow == 0 {
		c.LocalWindow = 2
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 300
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	if c.BoundaryTol == 0 {
		c.BoundaryTol = 1e-6
	}
	if c.Window == 0 {
		c.Window = 2
	}
	return c
}

// Result summarizes one fleet run.
type Result struct {
	// Converged reports whether the certification held for Window
	// consecutive rounds before MaxRounds.
	Converged bool
	// Rounds is the number of aggregator rounds executed; LocalIters the
	// total shard engine iterations they consumed.
	Rounds     int
	LocalIters int
	// SweptShards and SkippedShards total, over the run's rounds, the shard
	// sweeps executed and the sweeps skipped because the shard sat at a
	// proven fixed point under unchanged pinned prices. ShardWorkers is the
	// resolved sweep concurrency.
	SweptShards   int
	SkippedShards int
	ShardWorkers  int
	// KKTMax is the worst shard-local KKT residual at exit;
	// BoundaryResidual the worst boundary residual (relative overload /
	// relative price movement).
	KKTMax           float64
	BoundaryResidual float64
	// Utility is the global aggregate utility (sum over shards).
	Utility float64
	// BoundaryCount and CutCost describe the partition.
	BoundaryCount int
	CutCost       int
	// ShardHashes[r][s] is shard s's state hash after round r, and
	// BoundaryResiduals[r] the round's boundary residual (only with
	// Config.RecordHashes).
	ShardHashes       [][]uint64
	BoundaryResiduals []float64
}

// Stats totals the fleet's lifetime round and sweep counters, across Run and
// Round calls and surviving ReplaceWorkload.
type Stats struct {
	// Rounds is the number of aggregator rounds executed so far.
	Rounds int
	// Swept and Skipped count shard sweeps executed and skipped.
	Swept   int
	Skipped int
}

// Fleet is the hierarchical runtime: K shard engines under one boundary
// price aggregator. The aggregator owns the prices of the cross-shard
// resources (pinned in every shard that touches them) and iterates only
// that vector; everything else converges inside the shards.
type Fleet struct {
	cfg      Config
	ecfg     core.Config
	shardCfg core.Config
	w        *workload.Workload
	part     *Partition
	shards   []*shardRuntime

	// workers is the resolved sweep concurrency; pool the persistent sweep
	// workers, created lazily on the first round that can use them (so a
	// fleet that is built and discarded, or runs serial, spawns nothing).
	workers int
	pool    *sweepPool
	due     []*shardRuntime // reusable per-round list of non-skipped shards

	// Boundary state, indexed by boundary slot (aligned with
	// part.Boundary): resource ID, capacity, the aggregator's price
	// iterate, the aggregated demand and curvature of the last round, the
	// externally owned congestion flags, and the last update's relative
	// per-coordinate movement. bprev is the update step's scratch copy of
	// the previous iterate, persistent so steady-state rounds allocate
	// nothing.
	bid     []string
	bavail  []float64
	bmu     []float64
	bdemand []float64
	bcurv   []float64
	bcong   []bool
	bmove   []float64
	bprev   []float64

	bdyn     price.Dynamics
	needCurv bool

	// stable counts consecutive certified rounds; stats the lifetime
	// counters; hashLog/residLog the RecordHashes determinism certificate
	// (Run slices off its own suffix).
	stable   int
	stats    Stats
	hashLog  [][]uint64
	residLog []float64

	codec *wire.Codec
	obsv  *obs.Observer
	fm    *obs.FleetMetrics
}

// New partitions the workload, builds one engine per shard, and pins every
// boundary resource to the initial price.
func New(w *workload.Workload, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	ecfg := cfg.Engine.WithDefaults()
	p, err := core.Compile(w, ecfg.WeightMode)
	if err != nil {
		return nil, err
	}
	inc := core.NewIncidence(p)
	part, err := NewPartition(&inc, PartitionConfig{
		Shards: cfg.Shards, Seed: cfg.Seed,
		BalanceSlack: cfg.BalanceSlack, Passes: cfg.Passes,
	})
	if err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, ecfg: ecfg, w: w, part: part, obsv: cfg.Observer}

	f.workers = cfg.ShardWorkers
	if f.workers <= 0 {
		f.workers = runtime.GOMAXPROCS(0)
	}
	if f.workers > part.Shards {
		f.workers = part.Shards
	}
	f.shardCfg = cfg.Engine
	if f.workers > 1 && f.shardCfg.Workers == 0 {
		f.shardCfg.Workers = runtime.GOMAXPROCS(0) / f.workers
		if f.shardCfg.Workers < 1 {
			f.shardCfg.Workers = 1
		}
	}

	for s := 0; s < part.Shards; s++ {
		sw := subWorkload(w, fmt.Sprintf("%s/shard%d", w.Name, s), part.ShardTasks[s])
		eng, err := core.NewEngine(sw, f.shardCfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: building shard %d: %w", s, err)
		}
		f.shards = append(f.shards, &shardRuntime{id: s, eng: eng})
	}

	nb := len(part.Boundary)
	f.bid = make([]string, nb)
	f.bavail = make([]float64, nb)
	f.bmu = make([]float64, nb)
	f.bdemand = make([]float64, nb)
	f.bcurv = make([]float64, nb)
	f.bcong = make([]bool, nb)
	f.bmove = make([]float64, nb)
	f.bprev = make([]float64, nb)
	for b, ri := range part.Boundary {
		f.bid[b] = p.Resources[ri].ID
		f.bavail[b] = p.Resources[ri].Availability
		f.bmu[b] = ecfg.InitialMu
	}
	for _, s := range f.shards {
		for b, id := range f.bid {
			lri := s.eng.ResourceIndex(id)
			if lri < 0 {
				continue
			}
			s.localRi = append(s.localRi, lri)
			s.slot = append(s.slot, b)
			if err := s.eng.PinPrice(lri, f.bmu[b], false); err != nil {
				f.Close()
				return nil, fmt.Errorf("fleet: pinning %s on shard %d: %w", id, s.id, err)
			}
		}
		s.initBuffers(f.bid)
	}

	// The boundary price vector runs the same pluggable dynamics as an
	// engine's resource phase, built through the shared constructor so the
	// aggregator's update arithmetic is the engine's.
	bcfg := core.Config{Step: ecfg.Step, PriceSolver: cfg.BoundarySolver}
	if bcfg.PriceSolver == "" {
		bcfg.PriceSolver = ecfg.PriceSolver
	}
	bcfg = bcfg.WithDefaults()
	f.bdyn = bcfg.NewDynamics()
	f.bdyn.Reset(nb)
	f.needCurv = f.bdyn.NeedsCurvature()

	if cfg.WireVerify {
		f.codec = wire.NewCodec(nil)
		if f.obsv != nil {
			f.codec.Observe(f.obsv.Metrics)
		}
	}
	if f.obsv != nil && f.obsv.Metrics != nil {
		f.fm = obs.NewFleetMetrics(f.obsv.Metrics)
		f.fm.BoundaryResources.Set(float64(nb))
		f.fm.CutCost.Set(float64(part.CutCost))
		f.fm.ShardWorkers.Set(float64(f.workers))
	}
	// The pool's parked goroutines would otherwise leak if the fleet is
	// dropped without Close; Close is benign on a live fleet (pools respawn
	// lazily), so the finalizer is safe even after a full-rebuild swap.
	runtime.SetFinalizer(f, (*Fleet).Close)
	return f, nil
}

// initBuffers sizes the shard's reusable boundary report/pin buffers and
// stamps the fixed fields.
func (s *shardRuntime) initBuffers(bid []string) {
	s.bd = make([]wire.BoundaryDemand, len(s.localRi))
	s.bp = make([]wire.BoundaryPrice, len(s.localRi))
	for j, b := range s.slot {
		s.bd[j].Shard = s.id
		s.bd[j].Resource = bid[b]
		s.bp[j].Resource = bid[b]
	}
}

// Partition exposes the fleet's task partition.
func (f *Fleet) Partition() *Partition { return f.part }

// Shards returns the effective shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// ShardWorkers returns the resolved sweep concurrency.
func (f *Fleet) ShardWorkers() int { return f.workers }

// Stats returns the fleet's lifetime round and sweep counters.
func (f *Fleet) Stats() Stats { return f.stats }

// Engine returns shard s's engine (read-only use: tests compare shard state
// against the single-engine reference).
func (f *Fleet) Engine(s int) *core.Engine { return f.shards[s].eng }

// Close retires the sweep pool and every shard engine's worker pool. The
// fleet remains usable: pools respawn lazily on the next parallel round.
func (f *Fleet) Close() {
	if f.pool != nil {
		f.pool.close()
		f.pool = nil
	}
	for _, s := range f.shards {
		s.eng.Close()
	}
}

// Run drives aggregator rounds until certification or MaxRounds. Each round
// sweeps every shard whose pinned prices moved (concurrently, ShardWorkers
// at a time) to its local fixed point, aggregates the boundary demand (and
// curvature, for Newton), checks the certification, and — when not yet
// certified — advances the boundary price vector one dynamics step and
// re-pins it everywhere.
func (f *Fleet) Run() (Result, error) {
	res := Result{BoundaryCount: len(f.bid), CutCost: f.part.CutCost, ShardWorkers: f.workers}
	f.stable = 0
	hashStart, residStart := len(f.hashLog), len(f.residLog)
	for res.Rounds < f.cfg.MaxRounds {
		info, err := f.round()
		res.Rounds++
		res.LocalIters += info.iters
		res.SweptShards += info.swept
		res.SkippedShards += info.skipped
		res.KKTMax, res.BoundaryResidual = info.kktMax, info.boundary
		if err != nil {
			return res, err
		}
		if info.converged {
			res.Converged = true
			break
		}
	}
	res.ShardHashes = f.hashLog[hashStart:]
	res.BoundaryResiduals = f.residLog[residStart:]
	for _, s := range f.shards {
		res.Utility += s.eng.Probe().Utility
	}
	if f.fm != nil {
		f.fm.KKTMax.Set(res.KKTMax)
		f.fm.BoundaryResidual.Set(res.BoundaryResidual)
		if res.Converged {
			f.fm.Converged.Set(1)
		} else {
			f.fm.Converged.Set(0)
		}
	}
	if res.Converged {
		f.obsv.Emit(obs.Event{Kind: obs.EventFleetConverged, Round: res.Rounds, Value: res.KKTMax})
	}
	return res, nil
}

// Round executes one aggregator round against the current boundary iterate
// and reports whether the fleet is now certified-stable (the same condition
// that ends Run). Steady-state rounds — every shard skipped, WireVerify off,
// RecordHashes off, no Observer — allocate nothing.
func (f *Fleet) Round() (bool, error) {
	info, err := f.round()
	return info.converged, err
}

// roundInfo is one round's outcome.
type roundInfo struct {
	iters   int
	swept   int
	skipped int
	kktMax  float64
	// boundary is the round's boundary residual.
	boundary  float64
	certified bool
	converged bool
}

// round runs one aggregator round: decide the active set, sweep it,
// aggregate, certify, and (unless certified-stable) advance the boundary.
func (f *Fleet) round() (roundInfo, error) {
	n := f.stats.Rounds
	var ri roundInfo

	// Active set: a shard whose last sweep ended at a bitwise
	// self-fixed-point and whose pinned prices have not moved since (pin
	// epoch unchanged) would replay a no-op sweep — skip it and reuse its
	// cached boundary report, which is bit-exact because nothing in the
	// shard changed.
	f.due = f.due[:0]
	for _, s := range f.shards {
		s.skip = s.frozen && s.eng.PinEpoch() == s.sweptEpoch
		if s.skip {
			s.iters = 0
			ri.skipped++
		} else {
			f.due = append(f.due, s)
			ri.swept++
		}
	}
	if f.workers > 1 && len(f.due) > 1 {
		if f.pool == nil {
			f.pool = newSweepPool(f.workers-1, len(f.shards))
		}
		f.pool.run(f, f.due)
	} else {
		for _, s := range f.due {
			f.sweepShard(s)
		}
	}
	// Serial reduction in ascending shard order, regardless of the sweep
	// schedule — the fleet's bitwise worker-count invariance.
	for _, s := range f.due {
		ri.iters += s.iters
	}

	if err := f.aggregate(n); err != nil {
		return ri, err
	}
	if f.cfg.RecordHashes {
		hashes := make([]uint64, len(f.shards))
		for i, s := range f.shards {
			hashes[i] = s.stateHash()
		}
		f.hashLog = append(f.hashLog, hashes)
	}

	ri.kktMax, ri.boundary = f.residuals()
	if f.cfg.RecordHashes {
		f.residLog = append(f.residLog, ri.boundary)
	}
	feasible := true
	for _, s := range f.shards {
		if s.viol >= f.cfg.Tol || s.pathViol >= f.cfg.Tol {
			feasible = false
		}
	}
	ri.certified = ri.kktMax < f.cfg.KKTTol && feasible && ri.boundary < f.cfg.BoundaryTol

	f.publish(n, &ri)
	if ri.certified {
		f.stable++
	} else {
		f.stable = 0
	}
	ri.converged = f.stable >= f.cfg.Window

	f.stats.Rounds++
	f.stats.Swept += ri.swept
	f.stats.Skipped += ri.skipped

	if !ri.converged {
		if err := f.updateBoundary(n); err != nil {
			return ri, err
		}
	}
	return ri, nil
}

// sweepShard runs one shard's sweep and refreshes its boundary report. Safe
// to run concurrently across distinct shards: it touches only the shard's
// own engine and buffers.
func (f *Fleet) sweepShard(s *shardRuntime) {
	s.sweep(f.cfg.LocalIters, f.cfg.LocalFreeze, f.cfg.LocalKKTTol, f.cfg.LocalWindow, f.cfg.Tol)
	s.sweptEpoch = s.eng.PinEpoch()
	s.refreshBoundary(f.needCurv)
}

// aggregate sums each boundary resource's demand (and curvature) over the
// shards touching it — in ascending shard order, the serial reduction order
// a single engine's compiled Subs list induces on a cluster-ordered
// partition. Skipped shards contribute their cached report. With WireVerify
// the per-shard reports round-trip through BOUNDARY frames first and the
// decoded values are the ones summed.
func (f *Fleet) aggregate(round int) error {
	for b := range f.bdemand {
		f.bdemand[b], f.bcurv[b] = 0, 0
	}
	for _, s := range f.shards {
		if len(s.localRi) == 0 {
			continue
		}
		for j := range s.bd {
			s.bd[j].Round = round
		}
		entries := s.bd
		if f.codec != nil {
			decoded, err := roundTripPayload[wire.BoundaryDemand](f.codec,
				fmt.Sprintf("shard/%d", s.id), "coordinator", wire.KindBoundary, entries)
			if err != nil {
				return fmt.Errorf("fleet: BOUNDARY round trip (shard %d): %w", s.id, err)
			}
			entries = decoded
		}
		if len(entries) != len(s.slot) {
			return fmt.Errorf("fleet: shard %d reported %d boundary entries, want %d", s.id, len(entries), len(s.slot))
		}
		for j := range entries {
			e := &entries[j]
			b := s.slot[j]
			if e.Resource != f.bid[b] {
				return fmt.Errorf("fleet: shard %d entry %d names %q, want %q", s.id, j, e.Resource, f.bid[b])
			}
			f.bdemand[b] += e.Demand
			f.bcurv[b] += e.Curvature
		}
		if f.fm != nil && !s.skip {
			f.fm.Broadcasts.Inc()
		}
	}
	return nil
}

// residuals returns the worst shard-local KKT residual and the worst
// boundary residual: the larger of each boundary resource's relative
// overload max(0, (D−B)/B) and its last update's relative price movement.
func (f *Fleet) residuals() (kktMax, boundary float64) {
	for _, s := range f.shards {
		if s.kktMax > kktMax {
			kktMax = s.kktMax
		}
	}
	for b := range f.bid {
		if over := (f.bdemand[b] - f.bavail[b]) / f.bavail[b]; over > boundary {
			boundary = over
		}
		if f.bmove[b] > boundary {
			boundary = f.bmove[b]
		}
	}
	return kktMax, boundary
}

// updateBoundary advances the boundary price vector one dynamics step and
// pins the new prices (with the globally computed congestion flags) into
// every shard. Pinning an unchanged price does not advance a shard's pin
// epoch, so shards whose boundary did not move stay skippable. With
// WireVerify each shard's pins arrive through a PRICE_AGG frame round trip.
func (f *Fleet) updateBoundary(round int) error {
	if len(f.bmu) == 0 {
		return nil
	}
	for b := range f.bcong {
		f.bcong[b] = f.bdemand[b] > f.bavail[b]*(1+core.CongestionMargin)
	}
	copy(f.bprev, f.bmu)
	f.bdyn.Step(price.StepInput{
		Mu:        f.bmu,
		ShareSums: f.bdemand,
		Avail:     f.bavail,
		Congested: f.bcong,
		Curvature: f.bcurv,
	})
	for b := range f.bmu {
		f.bmove[b] = math.Abs(f.bmu[b]-f.bprev[b]) / math.Max(f.bprev[b], 1)
	}

	for _, s := range f.shards {
		if len(s.localRi) == 0 {
			continue
		}
		for j, b := range s.slot {
			s.bp[j].Round = round
			s.bp[j].Mu = f.bmu[b]
			s.bp[j].Congested = f.bcong[b]
		}
		entries := s.bp
		if f.codec != nil {
			decoded, err := roundTripPayload[wire.BoundaryPrice](f.codec,
				"coordinator", fmt.Sprintf("shard/%d", s.id), wire.KindPriceAgg, entries)
			if err != nil {
				return fmt.Errorf("fleet: PRICE_AGG round trip (shard %d): %w", s.id, err)
			}
			entries = decoded
		}
		for j := range entries {
			e := &entries[j]
			if e.Resource != f.bid[s.slot[j]] {
				return fmt.Errorf("fleet: PRICE_AGG entry %d names %q, want %q", j, e.Resource, f.bid[s.slot[j]])
			}
			if err := s.eng.PinPrice(s.localRi[j], e.Mu, e.Congested); err != nil {
				return fmt.Errorf("fleet: re-pinning %s on shard %d: %w", e.Resource, s.id, err)
			}
		}
		if f.fm != nil {
			f.fm.Broadcasts.Inc()
		}
	}
	return nil
}

// publish emits the per-round metrics and trace event.
func (f *Fleet) publish(round int, ri *roundInfo) {
	if f.fm != nil {
		f.fm.Rounds.Inc()
		f.fm.LocalIters.Add(int64(ri.iters))
		f.fm.ShardSweeps.Add(int64(ri.swept))
		f.fm.ShardSkips.Add(int64(ri.skipped))
	}
	f.obsv.Emit(obs.Event{Kind: obs.EventFleetRound, Round: round, Iteration: ri.iters,
		Value: ri.boundary, Swept: ri.swept, Skipped: ri.skipped, Workers: f.workers})
}

// roundTripPayload encodes one message as a binary frame, decodes it back,
// and returns the decoded payload entries — failing on any divergence the
// codec detects (CRC, framing, or field-level validation).
func roundTripPayload[T any](c *wire.Codec, from, to, kind string, entries []T) ([]T, error) {
	payload, err := json.Marshal(entries)
	if err != nil {
		return nil, err
	}
	frame, err := c.Encode(transport.Message{From: from, To: to, Kind: kind, Payload: payload})
	if err != nil {
		return nil, err
	}
	out, err := c.Read(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		return nil, err
	}
	if out.Kind != kind {
		return nil, fmt.Errorf("wire round trip changed kind %q -> %q", kind, out.Kind)
	}
	var decoded []T
	if err := json.Unmarshal(out.Payload, &decoded); err != nil {
		return nil, err
	}
	return decoded, nil
}
