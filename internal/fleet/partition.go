// Package fleet implements hierarchical multi-coordinator sharding
// (SHARDING.md, ROADMAP item 1): a deterministic balanced min-cut
// partitioner over the core CSR incidence index, a shard runtime wrapping
// one core.Engine per shard, and a top-level aggregator that iterates only
// on cross-shard ("boundary") resource prices — the decomposition of the
// Agrawal/Boyd price-discovery method applied to the paper's dual. Each
// shard's subproblem is just a smaller instance of the same Lagrangian, so
// the shard engines run their configured price.Dynamics unchanged, and on a
// partition with no cross-shard resources the fleet trajectory is bitwise
// identical to the single engine's.
package fleet

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"lla/internal/core"
)

// PartitionConfig parametrizes the task partitioner.
type PartitionConfig struct {
	// Shards is the number of shards K (>= 1; clamped to the task count).
	Shards int
	// Seed drives the refinement pass's task visit order. The partition is a
	// pure function of (incidence, config) — identical inputs produce
	// identical partitions on every run and GOMAXPROCS setting.
	Seed int64
	// BalanceSlack bounds shard size: no shard exceeds
	// ceil(numTasks/K * (1+BalanceSlack)). 0 means the default 0.2.
	BalanceSlack float64
	// Passes is the number of greedy refinement passes (0 = default 3).
	Passes int
}

// Partition assigns every task to exactly one shard and identifies the
// boundary resources — those receiving shares from tasks in more than one
// shard, whose prices the top-level aggregator owns.
type Partition struct {
	// Shards is the effective shard count.
	Shards int
	// TaskShard[ti] is the shard of task ti.
	TaskShard []int
	// ShardTasks[s] lists shard s's tasks in ascending task order.
	ShardTasks [][]int
	// Boundary lists the cross-shard resource indices, ascending.
	Boundary []int
	// CutCost is Σ_r max(0, shards touching r − 1): the number of
	// shard-resource attachments the aggregator must reconcile.
	CutCost int
}

// NewPartition computes a seeded, balanced, small-cut partition of the tasks
// into cfg.Shards shards. Initial assignment is contiguous blocks (cluster-
// ordered workloads land whole clusters in one shard); greedy refinement
// passes then move tasks toward shards their resources already touch, each
// move strictly reducing the cut under the balance cap. If naive round-robin
// would beat the refined cut (pathological topologies), round-robin is used
// instead — the result never cuts more than round-robin. Every shard always
// holds at least one task (refinement never drains a shard).
func NewPartition(inc *core.Incidence, cfg PartitionConfig) (*Partition, error) {
	n, nr := inc.NumTasks(), inc.NumResources()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: Shards must be >= 1, got %d", cfg.Shards)
	}
	if n < 1 {
		return nil, fmt.Errorf("fleet: cannot partition an empty problem")
	}
	k := cfg.Shards
	if k > n {
		k = n
	}
	slack := cfg.BalanceSlack
	if slack <= 0 {
		slack = 0.2
	}
	passes := cfg.Passes
	if passes <= 0 {
		passes = 3
	}
	capacity := int(math.Ceil(float64(n) / float64(k) * (1 + slack)))
	if capacity < 1 {
		capacity = 1
	}

	// Contiguous-block initial assignment: task i -> shard i*k/n. Block
	// sizes differ by at most one, so the balance cap holds from the start.
	assign := make([]int, n)
	count := make([]int, k)
	for i := range assign {
		s := i * k / n
		assign[i] = s
		count[s]++
	}

	// cnt[r*k+s] counts shard s's tasks touching resource r; mask holds the
	// same as a per-resource shard bitset so candidate shards and cut costs
	// come from O(degree) scans, not O(k) ones.
	words := (k + 63) / 64
	cnt := make([]int32, nr*k)
	mask := make([]uint64, nr*words)
	for i := 0; i < n; i++ {
		s := assign[i]
		for _, r32 := range inc.TaskResources(i) {
			r := int(r32)
			if cnt[r*k+s] == 0 {
				mask[r*words+s/64] |= 1 << (s % 64)
			}
			cnt[r*k+s]++
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, i := range order {
			s0 := assign[i]
			if count[s0] == 1 {
				continue // never empty a shard: every shard keeps >= 1 task
			}
			res := inc.TaskResources(i)
			// Candidates: shards already touching one of i's resources.
			// Moving elsewhere can only add cut edges.
			best, bestDelta := -1, 0
			for w := 0; w < words; w++ {
				var m uint64
				for _, r32 := range res {
					m |= mask[int(r32)*words+w]
				}
				for m != 0 {
					b := bits.TrailingZeros64(m)
					m &^= 1 << b
					s := w*64 + b
					if s == s0 || count[s] >= capacity {
						continue
					}
					delta := 0
					for _, r32 := range res {
						r := int(r32)
						if cnt[r*k+s] == 0 {
							delta++ // move attaches r to a new shard
						}
						if cnt[r*k+s0] == 1 {
							delta-- // move detaches r from s0
						}
					}
					// Strict improvement only (bestDelta starts at 0), first
					// candidate wins ties — s iterates ascending, so the
					// tie-break is the lowest shard index: deterministic.
					if delta < bestDelta {
						best, bestDelta = s, delta
					}
				}
			}
			if best < 0 {
				continue
			}
			count[s0]--
			count[best]++
			assign[i] = best
			for _, r32 := range res {
				r := int(r32)
				cnt[r*k+s0]--
				if cnt[r*k+s0] == 0 {
					mask[r*words+s0/64] &^= 1 << (s0 % 64)
				}
				if cnt[r*k+best] == 0 {
					mask[r*words+best/64] |= 1 << (best % 64)
				}
				cnt[r*k+best]++
			}
			moved++
		}
		if moved == 0 {
			break
		}
	}

	// Guarantee: never worse than naive round-robin. Round-robin is also
	// perfectly balanced, so swapping it in cannot violate the balance cap.
	greedyCut, _ := cutOf(inc, assign, k)
	rr := make([]int, n)
	for i := range rr {
		rr[i] = i % k
	}
	rrCut, _ := cutOf(inc, rr, k)
	if rrCut < greedyCut {
		assign = rr
	}

	cut, boundary := cutOf(inc, assign, k)
	p := &Partition{
		Shards:     k,
		TaskShard:  assign,
		ShardTasks: make([][]int, k),
		Boundary:   boundary,
		CutCost:    cut,
	}
	for i, s := range assign {
		p.ShardTasks[s] = append(p.ShardTasks[s], i)
	}
	return p, nil
}

// cutOf computes the cut cost and boundary resource list of an assignment.
func cutOf(inc *core.Incidence, assign []int, k int) (cut int, boundary []int) {
	nr := inc.NumResources()
	seen := make([]int, k) // stamped with r+1
	for r := 0; r < nr; r++ {
		distinct := 0
		for _, t32 := range inc.ResourceTasks(r) {
			s := assign[t32]
			if seen[s] != r+1 {
				seen[s] = r + 1
				distinct++
			}
		}
		if distinct > 1 {
			cut += distinct - 1
			boundary = append(boundary, r)
		}
	}
	return cut, boundary
}
