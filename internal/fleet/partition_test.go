package fleet

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"lla/internal/core"
	"lla/internal/task"
	"lla/internal/workload"
)

// incidenceOf compiles a workload and returns its CSR incidence.
func incidenceOf(t *testing.T, w *workload.Workload) *core.Incidence {
	t.Helper()
	p, err := core.Compile(w, task.WeightPathNormalized)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	inc := core.NewIncidence(p)
	return &inc
}

// roundRobinCut computes the cut cost of the naive i%k assignment.
func roundRobinCut(inc *core.Incidence, k int) int {
	assign := make([]int, inc.NumTasks())
	for i := range assign {
		assign[i] = i % k
	}
	cut, _ := cutOf(inc, assign, k)
	return cut
}

// TestPartitionProperties is the table-driven property suite: every
// partition must assign each task exactly once, respect the balance cap,
// cut no more than round-robin, and classify boundary resources exactly.
func TestPartitionProperties(t *testing.T) {
	clustered := func(seed int64, cross float64) *workload.Workload {
		cfg := workload.DefaultClusteredConfig(seed)
		cfg.CrossFraction = cross
		w, err := workload.Clustered(cfg)
		if err != nil {
			t.Fatalf("Clustered: %v", err)
		}
		return w
	}
	random := func(seed int64) *workload.Workload {
		cfg := workload.DefaultRandomConfig(seed)
		cfg.NumTasks = 30
		cfg.NumResources = 12
		w, err := workload.Random(cfg)
		if err != nil {
			t.Fatalf("Random: %v", err)
		}
		return w
	}
	cases := []struct {
		name   string
		w      *workload.Workload
		shards int
	}{
		{"base-2", workload.Base(), 2},
		{"clustered-separable-4", clustered(7, 0), 4},
		{"clustered-coupled-4", clustered(7, 0.3), 4},
		{"clustered-coupled-3", clustered(11, 0.5), 3},
		{"random-5", random(3), 5},
		{"random-65", random(4), 65}, // > 64: exercises multi-word bitmasks
		{"single-shard", clustered(7, 0.3), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inc := incidenceOf(t, tc.w)
			part, err := NewPartition(inc, PartitionConfig{Shards: tc.shards, Seed: 42})
			if err != nil {
				t.Fatalf("NewPartition: %v", err)
			}
			n := inc.NumTasks()
			if len(part.TaskShard) != n {
				t.Fatalf("TaskShard length %d, want %d", len(part.TaskShard), n)
			}

			// Every task in exactly one shard, consistent with ShardTasks.
			total := 0
			for s, tasks := range part.ShardTasks {
				total += len(tasks)
				for i := 1; i < len(tasks); i++ {
					if tasks[i] <= tasks[i-1] {
						t.Fatalf("shard %d task list not ascending: %v", s, tasks)
					}
				}
				for _, ti := range tasks {
					if part.TaskShard[ti] != s {
						t.Fatalf("task %d listed in shard %d but TaskShard says %d", ti, s, part.TaskShard[ti])
					}
				}
			}
			if total != n {
				t.Fatalf("ShardTasks covers %d tasks, want %d", total, n)
			}

			// Balance: no shard above ceil(n/K * 1.2) (the default slack).
			cap := int(math.Ceil(float64(n) / float64(part.Shards) * 1.2))
			for s, tasks := range part.ShardTasks {
				if len(tasks) > cap {
					t.Errorf("shard %d holds %d tasks, cap %d", s, len(tasks), cap)
				}
			}

			// Cut never worse than naive round-robin.
			if rr := roundRobinCut(inc, part.Shards); part.CutCost > rr {
				t.Errorf("CutCost %d worse than round-robin %d", part.CutCost, rr)
			}

			// Boundary classification: exactly the resources touched by >= 2
			// shards, ascending.
			wantCut := 0
			var wantBoundary []int
			for r := 0; r < inc.NumResources(); r++ {
				shards := map[int]bool{}
				for _, ti := range inc.ResourceTasks(r) {
					shards[part.TaskShard[ti]] = true
				}
				if len(shards) > 1 {
					wantCut += len(shards) - 1
					wantBoundary = append(wantBoundary, r)
				}
			}
			if part.CutCost != wantCut {
				t.Errorf("CutCost %d, recomputed %d", part.CutCost, wantCut)
			}
			if !reflect.DeepEqual(part.Boundary, wantBoundary) {
				t.Errorf("Boundary %v, recomputed %v", part.Boundary, wantBoundary)
			}
			if tc.shards == 1 && (part.CutCost != 0 || len(part.Boundary) != 0) {
				t.Errorf("single shard must have empty cut, got cost %d boundary %v", part.CutCost, part.Boundary)
			}
		})
	}
}

// TestPartitionDeterminism re-runs the partitioner under different
// GOMAXPROCS values: the result must be identical on every run — it is a
// pure function of (incidence, config).
func TestPartitionDeterminism(t *testing.T) {
	cfg := workload.DefaultClusteredConfig(5)
	cfg.CrossFraction = 0.4
	w, err := workload.Clustered(cfg)
	if err != nil {
		t.Fatalf("Clustered: %v", err)
	}
	inc := incidenceOf(t, w)
	pcfg := PartitionConfig{Shards: 4, Seed: 99}
	ref, err := NewPartition(inc, pcfg)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		for run := 0; run < 3; run++ {
			got, err := NewPartition(inc, pcfg)
			if err != nil {
				t.Fatalf("NewPartition (GOMAXPROCS=%d run %d): %v", procs, run, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("partition differs at GOMAXPROCS=%d run %d", procs, run)
			}
		}
	}
	// A different seed may legitimately coincide on tiny inputs, but a
	// different shard count must not.
	other, err := NewPartition(inc, PartitionConfig{Shards: 3, Seed: 99})
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	if reflect.DeepEqual(other.TaskShard, ref.TaskShard) {
		t.Fatal("different shard counts produced identical assignments")
	}
}

// TestPartitionSeparableClustersZeroCut checks the headline case: a
// cluster-ordered workload with no cross-cluster edges partitions with an
// empty boundary when K equals the cluster count.
func TestPartitionSeparableClustersZeroCut(t *testing.T) {
	cfg := workload.DefaultClusteredConfig(21)
	cfg.CrossFraction = 0
	w, err := workload.Clustered(cfg)
	if err != nil {
		t.Fatalf("Clustered: %v", err)
	}
	part, err := NewPartition(incidenceOf(t, w), PartitionConfig{Shards: cfg.Clusters, Seed: 1})
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	if part.CutCost != 0 || len(part.Boundary) != 0 {
		t.Fatalf("separable clusters cut %d (boundary %v), want 0", part.CutCost, part.Boundary)
	}
}

// TestPartitionRejectsBadConfig covers validation and clamping.
func TestPartitionRejectsBadConfig(t *testing.T) {
	inc := incidenceOf(t, workload.Base())
	if _, err := NewPartition(inc, PartitionConfig{Shards: 0}); err == nil {
		t.Error("Shards=0 accepted")
	}
	part, err := NewPartition(inc, PartitionConfig{Shards: 1000})
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	if part.Shards != inc.NumTasks() {
		t.Errorf("Shards clamped to %d, want task count %d", part.Shards, inc.NumTasks())
	}
}
