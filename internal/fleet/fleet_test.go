package fleet

import (
	"math"
	"reflect"
	"testing"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/price"
	"lla/internal/workload"
)

// clusteredWorkload builds the standard test topology.
func clusteredWorkload(t *testing.T, seed int64, cross float64) *workload.Workload {
	t.Helper()
	cfg := workload.DefaultClusteredConfig(seed)
	cfg.CrossFraction = cross
	w, err := workload.Clustered(cfg)
	if err != nil {
		t.Fatalf("Clustered: %v", err)
	}
	return w
}

// runToFrozen steps a sparse engine until one Step executes zero solves and
// reprices zero resources — the bitwise frozen fixed point.
func runToFrozen(t *testing.T, eng *core.Engine, maxIters int) {
	t.Helper()
	for i := 0; i < maxIters; i++ {
		before := eng.SparseStats()
		eng.Step()
		after := eng.SparseStats()
		if after.ExecutedSolves == before.ExecutedSolves &&
			after.RepricedResources == before.RepricedResources {
			return
		}
	}
	t.Fatalf("engine did not freeze within %d iterations", maxIters)
}

// TestFleetOverlapFreeBitwiseMatchesSingle is the headline equivalence: on
// a partition with no cross-shard resources, the fleet's frozen fixed point
// is bitwise identical to the single engine's — every latency and every
// price, bit for bit.
func TestFleetOverlapFreeBitwiseMatchesSingle(t *testing.T) {
	w := clusteredWorkload(t, 17, 0)
	ecfg := core.Config{Workers: 1}

	f, err := New(w, Config{Shards: 4, Seed: 1, Engine: ecfg, LocalFreeze: true, LocalIters: 5000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if got := len(f.Partition().Boundary); got != 0 {
		t.Fatalf("separable workload has %d boundary resources, want 0", got)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("fleet did not certify: %+v", res)
	}

	single, err := core.NewEngine(w, ecfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer single.Close()
	runToFrozen(t, single, 20000)

	sp := single.Problem()
	// Prices, by resource ID.
	for s := 0; s < f.Shards(); s++ {
		eng := f.Engine(s)
		p := eng.Problem()
		for ri := range p.Resources {
			id := p.Resources[ri].ID
			sri := single.ResourceIndex(id)
			if sri < 0 {
				t.Fatalf("resource %s missing from single engine", id)
			}
			if got, want := eng.MuAt(ri), single.MuAt(sri); got != want {
				t.Errorf("resource %s price %v, single engine %v", id, got, want)
			}
		}
	}
	// Latencies, by task name.
	singleTask := make(map[string]int, len(sp.Tasks))
	for ti := range sp.Tasks {
		singleTask[sp.Tasks[ti].Name] = ti
	}
	for s := 0; s < f.Shards(); s++ {
		eng := f.Engine(s)
		p := eng.Problem()
		for ti := range p.Tasks {
			sti, ok := singleTask[p.Tasks[ti].Name]
			if !ok {
				t.Fatalf("task %s missing from single engine", p.Tasks[ti].Name)
			}
			got := eng.Controller(ti).LatMs
			want := single.Controller(sti).LatMs
			if !reflect.DeepEqual(got, want) {
				t.Errorf("task %s latencies %v, single engine %v", p.Tasks[ti].Name, got, want)
			}
		}
	}
	// And the aggregate utility follows.
	if got, want := res.Utility, single.Probe().Utility; got != want {
		t.Errorf("fleet utility %v, single engine %v", got, want)
	}
}

// TestFleetCoupledMatchesSingleWithinTol runs a genuinely coupled partition
// (cross-cluster edges force boundary resources) and gates the fleet's
// answer against the single engine's certified fixed point.
func TestFleetCoupledMatchesSingleWithinTol(t *testing.T) {
	w := clusteredWorkload(t, 23, 0.3)
	ecfg := core.Config{Workers: 1}

	f, err := New(w, Config{Shards: 4, Seed: 1, Engine: ecfg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if len(f.Partition().Boundary) == 0 {
		t.Fatal("coupled workload produced no boundary resources; test is vacuous")
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("fleet did not certify: %+v", res)
	}
	if res.KKTMax >= 1e-6 {
		t.Errorf("certified KKT residual %v, want < 1e-6", res.KKTMax)
	}

	single, err := core.NewEngine(w, ecfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer single.Close()
	snap, ok := single.RunUntilKKT(20000, 1e-6, 3, 1e-6)
	if !ok {
		t.Fatal("single engine did not converge")
	}
	if rel := math.Abs(res.Utility-snap.Utility) / math.Abs(snap.Utility); rel > 1e-3 {
		t.Errorf("fleet utility %v vs single %v (rel diff %v > 1e-3)", res.Utility, snap.Utility, rel)
	}
}

// TestFleetDeterministicHashes certifies per-shard bitwise determinism:
// identical config and seed reproduce identical per-shard state hashes at
// every aggregator round.
func TestFleetDeterministicHashes(t *testing.T) {
	run := func(wireVerify bool) Result {
		w := clusteredWorkload(t, 31, 0.25)
		f, err := New(w, Config{Shards: 4, Seed: 5, Engine: core.Config{Workers: 1},
			RecordHashes: true, WireVerify: wireVerify})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer f.Close()
		res, err := f.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(false), run(false)
	if a.Rounds != b.Rounds || a.Converged != b.Converged {
		t.Fatalf("runs diverged: %d/%v rounds vs %d/%v", a.Rounds, a.Converged, b.Rounds, b.Converged)
	}
	if !reflect.DeepEqual(a.ShardHashes, b.ShardHashes) {
		t.Fatal("per-shard state hashes differ between identical runs")
	}
	if len(a.ShardHashes) != a.Rounds {
		t.Fatalf("recorded %d hash rounds, want %d", len(a.ShardHashes), a.Rounds)
	}

	// The binary wire path must be invisible: floats and flags round-trip
	// bit-exactly, so a WireVerify run reproduces the same trajectory.
	c := run(true)
	if !reflect.DeepEqual(a.ShardHashes, c.ShardHashes) {
		t.Fatal("WireVerify changed the trajectory — codec round trip is not value-preserving")
	}
}

// TestFleetBoundaryNewton drives the aggregator with diagonal-Newton
// boundary dynamics (curvature aggregated over shards) and checks it
// certifies in no more rounds than MaxRounds.
func TestFleetBoundaryNewton(t *testing.T) {
	w := clusteredWorkload(t, 41, 0.3)
	f, err := New(w, Config{Shards: 4, Seed: 2, Engine: core.Config{Workers: 1},
		BoundarySolver: price.SolverNewton, WireVerify: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("newton boundary dynamics did not certify: %+v", res)
	}
}

// TestFleetObservability checks the lla_fleet_* metric set and the trace
// events: one fleet_round per executed round, one fleet_converged on
// certification, and the converged gauge set.
func TestFleetObservability(t *testing.T) {
	w := clusteredWorkload(t, 31, 0.25)
	reg := obs.NewRegistry()
	sink := obs.NewMemory()
	f, err := New(w, Config{Shards: 4, Seed: 5, Engine: core.Config{Workers: 1},
		Observer: &obs.Observer{Metrics: reg, Trace: sink}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("fleet did not certify: %+v", res)
	}
	if got := len(sink.ByKind(obs.EventFleetRound)); got != res.Rounds {
		t.Errorf("%d fleet_round events, want %d", got, res.Rounds)
	}
	if got := len(sink.ByKind(obs.EventFleetConverged)); got != 1 {
		t.Errorf("%d fleet_converged events, want 1", got)
	}
	fm := obs.NewFleetMetrics(reg)
	if got := fm.Rounds.Value(); got != int64(res.Rounds) {
		t.Errorf("lla_fleet_rounds_total %d, want %d", got, res.Rounds)
	}
	if got := fm.LocalIters.Value(); got != int64(res.LocalIters) {
		t.Errorf("lla_fleet_local_iters_total %d, want %d", got, res.LocalIters)
	}
	if got := fm.Converged.Value(); got != 1 {
		t.Errorf("lla_fleet_converged %v, want 1", got)
	}
	if got := fm.BoundaryResources.Value(); got != float64(res.BoundaryCount) {
		t.Errorf("lla_fleet_boundary_resources %v, want %d", got, res.BoundaryCount)
	}
}

// TestFleetParallelWorkers runs the coupled fleet with the engines' default
// parallel controller phase: the worker count must not change the result
// (the engine is bitwise worker-count independent), and the run must be
// race-clean under -race.
func TestFleetParallelWorkers(t *testing.T) {
	w := clusteredWorkload(t, 31, 0.25)
	serial, err := New(w, Config{Shards: 3, Seed: 7, Engine: core.Config{Workers: 1}, RecordHashes: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer serial.Close()
	sres, err := serial.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	parallel, err := New(w, Config{Shards: 3, Seed: 7, Engine: core.Config{Workers: 4}, RecordHashes: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer parallel.Close()
	pres, err := parallel.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(sres.ShardHashes, pres.ShardHashes) {
		t.Fatal("worker count changed the fleet trajectory")
	}
}
