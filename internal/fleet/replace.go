package fleet

import (
	"fmt"
	"math"
	"reflect"
	"runtime"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// ReplaceStats reports what a ReplaceWorkload call did.
type ReplaceStats struct {
	// Full reports that the churn forced a full repartition-and-rebuild
	// instead of the incremental path.
	Full bool
	// Rebuilt and Reused count shards that got a new (warm-started) engine
	// versus shards whose engine — including its converged state and
	// skippability — survived untouched.
	Rebuilt int
	Reused  int
	// Added and Removed count tasks that joined and left.
	Added   int
	Removed int
	// BoundaryCount and CutCost describe the post-churn partition.
	BoundaryCount int
	CutCost       int
}

// ReplaceWorkload applies a workload churn delta — tasks joining, leaving or
// changing, resources changing capacity — rebuilding only the shards the
// delta touches. Surviving tasks keep their shard; new tasks are placed
// deterministically on the shard already touching most of their resources.
// Untouched shards keep their engine, converged state and pin epochs, so a
// localized delta leaves most of the fleet skippable and re-certification
// costs roughly the affected shards' sweeps. Rebuilt shards warm-start via
// core.CarryFrom from the old engines holding their tasks; the boundary
// price vector is recomputed for the new cut and warm-started by resource
// ID. Falls back to a full rebuild (still warm-started) when the delta
// invalidates the partition shape — fewer tasks than shards, or a shard
// left empty. On error the fleet must be discarded.
func (f *Fleet) ReplaceWorkload(w *workload.Workload) (ReplaceStats, error) {
	p2, err := core.Compile(w, f.ecfg.WeightMode)
	if err != nil {
		return ReplaceStats{}, err
	}
	inc2 := core.NewIncidence(p2)
	K := f.part.Shards
	n2 := len(p2.Tasks)

	oldShardOf := make(map[string]int, len(f.w.Tasks))
	oldTaskIdx := make(map[string]int, len(f.w.Tasks))
	for ti := range f.w.Tasks {
		oldShardOf[f.w.Tasks[ti].Name] = f.part.TaskShard[ti]
		oldTaskIdx[f.w.Tasks[ti].Name] = ti
	}
	added, removed := 0, len(f.w.Tasks)
	for ti := range w.Tasks {
		if _, ok := oldTaskIdx[w.Tasks[ti].Name]; ok {
			removed--
		} else {
			added++
		}
	}

	if n2 < K {
		return f.replaceFull(w, added, removed)
	}

	// Survivors keep their shard; new tasks go, in ascending task order, to
	// the shard already touching the most of their resources (ties to the
	// lowest index) under the partitioner's balance cap — the same greedy
	// signal NewPartition's refinement uses, applied incrementally.
	assign := make([]int, n2)
	count := make([]int, K)
	var fresh []int
	for ti := range w.Tasks {
		if s, ok := oldShardOf[w.Tasks[ti].Name]; ok {
			assign[ti] = s
			count[s]++
		} else {
			assign[ti] = -1
			fresh = append(fresh, ti)
		}
	}
	cnt := make([]int32, inc2.NumResources()*K)
	for ti, s := range assign {
		if s < 0 {
			continue
		}
		for _, r32 := range inc2.TaskResources(ti) {
			cnt[int(r32)*K+s]++
		}
	}
	slack := f.cfg.BalanceSlack
	if slack <= 0 {
		slack = 0.2
	}
	capacity := int(math.Ceil(float64(n2) / float64(K) * (1 + slack)))
	if capacity < 1 {
		capacity = 1
	}
	for _, ti := range fresh {
		best, bestScore := -1, -1
		for s := 0; s < K; s++ {
			if count[s] >= capacity {
				continue
			}
			score := 0
			for _, r32 := range inc2.TaskResources(ti) {
				if cnt[int(r32)*K+s] > 0 {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = s, score
			}
		}
		if best < 0 { // every shard at capacity: least loaded, lowest index
			best = 0
			for s := 1; s < K; s++ {
				if count[s] < count[best] {
					best = s
				}
			}
		}
		assign[ti] = best
		count[best]++
		for _, r32 := range inc2.TaskResources(ti) {
			cnt[int(r32)*K+best]++
		}
	}
	for s := 0; s < K; s++ {
		if count[s] == 0 {
			return f.replaceFull(w, added, removed)
		}
	}

	shardTasks2 := make([][]int, K)
	for ti, s := range assign {
		shardTasks2[s] = append(shardTasks2[s], ti)
	}

	// A shard is dirty — needs a rebuilt engine — iff its task-name set
	// changed, a surviving task's definition changed, or a resource its
	// tasks use changed. Everything else about a clean shard's sub-problem
	// is bit-identical, so its engine state remains valid as-is.
	oldRes := make(map[string]share.Resource, len(f.w.Resources))
	for _, r := range f.w.Resources {
		oldRes[r.ID] = r
	}
	newRes := make(map[string]share.Resource, len(w.Resources))
	for _, r := range w.Resources {
		newRes[r.ID] = r
	}
	dirty := make([]bool, K)
	for s := 0; s < K; s++ {
		oldNames := make(map[string]bool, len(f.part.ShardTasks[s]))
		for _, ti := range f.part.ShardTasks[s] {
			oldNames[f.w.Tasks[ti].Name] = true
		}
		if len(shardTasks2[s]) != len(oldNames) {
			dirty[s] = true
			continue
		}
		for _, ti := range shardTasks2[s] {
			t := w.Tasks[ti]
			if !oldNames[t.Name] {
				dirty[s] = true
				break
			}
			old := f.w.Tasks[oldTaskIdx[t.Name]]
			if taskChanged(old, t, f.w.Curves[t.Name], w.Curves[t.Name]) {
				dirty[s] = true
				break
			}
			for _, st := range t.Subtasks {
				if newRes[st.Resource] != oldRes[st.Resource] {
					dirty[s] = true
					break
				}
			}
			if dirty[s] {
				break
			}
		}
	}

	// Build the dirty shards' replacement engines, warm-started from the
	// old engine of the same shard first, then (ascending) the old shards
	// of any surviving tasks that moved in. Old engines stay alive as
	// donors until every carry is done.
	newEngines := make([]*core.Engine, K)
	rebuilt := 0
	for s := 0; s < K; s++ {
		if !dirty[s] {
			continue
		}
		sub := subWorkload(w, fmt.Sprintf("%s/shard%d", w.Name, s), shardTasks2[s])
		eng, err := core.NewEngine(sub, f.shardCfg)
		if err != nil {
			return ReplaceStats{}, fmt.Errorf("fleet: rebuilding shard %d: %w", s, err)
		}
		donorSet := map[int]bool{s: true}
		donors := []*core.Engine{f.shards[s].eng}
		for _, ti := range shardTasks2[s] {
			if os, ok := oldShardOf[w.Tasks[ti].Name]; ok && !donorSet[os] {
				donorSet[os] = true
			}
		}
		for os := 0; os < K; os++ {
			if donorSet[os] && os != s {
				donors = append(donors, f.shards[os].eng)
			}
		}
		eng.CarryFrom(donors...)
		newEngines[s] = eng
		rebuilt++
	}

	// Boundary rework: new cut, prices warm-started by ID — surviving
	// boundary resources keep the aggregator's iterate, promoted interior
	// resources adopt their current engine price.
	cut2, bRes2 := cutOf(&inc2, assign, K)
	part2 := &Partition{
		Shards: K, TaskShard: assign, ShardTasks: shardTasks2,
		Boundary: bRes2, CutCost: cut2,
	}
	oldBMu := make(map[string]float64, len(f.bid))
	oldBCong := make(map[string]bool, len(f.bid))
	for b, id := range f.bid {
		oldBMu[id] = f.bmu[b]
		oldBCong[id] = f.bcong[b]
	}
	oldPinIDs := make([][]string, K)
	for s := 0; s < K; s++ {
		ids := make([]string, len(f.shards[s].slot))
		for j, b := range f.shards[s].slot {
			ids[j] = f.bid[b]
		}
		oldPinIDs[s] = ids
	}

	nb2 := len(bRes2)
	f.bid = make([]string, nb2)
	f.bavail = make([]float64, nb2)
	f.bmu = make([]float64, nb2)
	f.bdemand = make([]float64, nb2)
	f.bcurv = make([]float64, nb2)
	f.bcong = make([]bool, nb2)
	f.bmove = make([]float64, nb2)
	f.bprev = make([]float64, nb2)
	for b, ri := range bRes2 {
		id := p2.Resources[ri].ID
		f.bid[b] = id
		f.bavail[b] = p2.Resources[ri].Availability
		if mu, ok := oldBMu[id]; ok {
			f.bmu[b] = mu
		} else {
			mu := f.ecfg.InitialMu
			for s := 0; s < K; s++ {
				eng := newEngines[s]
				if eng == nil {
					eng = f.shards[s].eng
				}
				if lri := eng.ResourceIndex(id); lri >= 0 {
					mu = eng.MuAt(lri)
					break
				}
			}
			f.bmu[b] = mu
		}
		f.bcong[b] = oldBCong[id]
	}

	// Swap in the rebuilt engines and re-pin the new boundary everywhere.
	// On a clean shard, pinning an unchanged (price, congestion) pair does
	// not advance the pin epoch, so shards the delta did not reach stay
	// skippable; demoted boundary resources are unpinned (which does
	// advance it — the shard must re-solve with the resource free).
	newSet := make(map[string]bool, nb2)
	for _, id := range f.bid {
		newSet[id] = true
	}
	for s := 0; s < K; s++ {
		sr := f.shards[s]
		if dirty[s] {
			old := sr.eng
			sr.eng = newEngines[s]
			old.Close()
			sr.frozen, sr.sweptEpoch, sr.iters = false, 0, 0
		} else {
			for j, id := range oldPinIDs[s] {
				if !newSet[id] {
					sr.eng.UnpinPrice(sr.localRi[j])
				}
			}
		}
		sr.localRi, sr.slot = sr.localRi[:0], sr.slot[:0]
		for b, id := range f.bid {
			lri := sr.eng.ResourceIndex(id)
			if lri < 0 {
				continue
			}
			sr.localRi = append(sr.localRi, lri)
			sr.slot = append(sr.slot, b)
			if err := sr.eng.PinPrice(lri, f.bmu[b], f.bcong[b]); err != nil {
				return ReplaceStats{}, fmt.Errorf("fleet: re-pinning %s on shard %d: %w", id, s, err)
			}
		}
		sr.initBuffers(f.bid)
		// Repopulate the report buffer from the engine: a shard that stays
		// skippable must aggregate its real (cached) demand, not the zeroed
		// fresh buffer.
		sr.refreshBoundary(f.needCurv)
	}

	f.bdyn.Reset(nb2)
	f.part = part2
	f.w = w
	f.stable = 0

	st := ReplaceStats{
		Rebuilt: rebuilt, Reused: K - rebuilt,
		Added: added, Removed: removed,
		BoundaryCount: nb2, CutCost: cut2,
	}
	f.publishRebuild(st, "incremental")
	return st, nil
}

// replaceFull rebuilds the fleet from scratch — fresh partition, fresh
// engines — but still warm-starts every shard from the old engines holding
// its surviving tasks and the boundary vector from the old iterate by ID.
func (f *Fleet) replaceFull(w *workload.Workload, added, removed int) (ReplaceStats, error) {
	nf, err := New(w, f.cfg)
	if err != nil {
		return ReplaceStats{}, err
	}
	oldShardOf := make(map[string]int, len(f.w.Tasks))
	for ti := range f.w.Tasks {
		oldShardOf[f.w.Tasks[ti].Name] = f.part.TaskShard[ti]
	}
	for _, s := range nf.shards {
		donorSet := make(map[int]bool)
		for _, ti := range nf.part.ShardTasks[s.id] {
			if os, ok := oldShardOf[w.Tasks[ti].Name]; ok {
				donorSet[os] = true
			}
		}
		var donors []*core.Engine
		for os := 0; os < f.part.Shards; os++ {
			if donorSet[os] {
				donors = append(donors, f.shards[os].eng)
			}
		}
		if len(donors) > 0 {
			s.eng.CarryFrom(donors...)
		}
	}
	// Warm the boundary iterate by ID (falling back to the engines' carried
	// prices for newly boundary resources) and re-pin it: CarryFrom just
	// overwrote the cold prices New pinned.
	oldBMu := make(map[string]float64, len(f.bid))
	oldBCong := make(map[string]bool, len(f.bid))
	for b, id := range f.bid {
		oldBMu[id] = f.bmu[b]
		oldBCong[id] = f.bcong[b]
	}
	for b, id := range nf.bid {
		if mu, ok := oldBMu[id]; ok {
			nf.bmu[b] = mu
		} else {
			for _, s := range nf.shards {
				if lri := s.eng.ResourceIndex(id); lri >= 0 {
					nf.bmu[b] = s.eng.MuAt(lri)
					break
				}
			}
		}
		nf.bcong[b] = oldBCong[id]
	}
	for _, s := range nf.shards {
		for j, b := range s.slot {
			if err := s.eng.PinPrice(s.localRi[j], nf.bmu[b], nf.bcong[b]); err != nil {
				return ReplaceStats{}, fmt.Errorf("fleet: re-pinning %s on shard %d: %w", nf.bid[b], s.id, err)
			}
		}
	}
	nf.stats = f.stats
	nf.hashLog, nf.residLog = f.hashLog, f.residLog
	f.Close()
	runtime.SetFinalizer(nf, nil)
	*f = *nf

	st := ReplaceStats{
		Full: true, Rebuilt: len(f.shards),
		Added: added, Removed: removed,
		BoundaryCount: len(f.bid), CutCost: f.part.CutCost,
	}
	f.publishRebuild(st, "full")
	return st, nil
}

// publishRebuild emits the rebuild metrics and trace event.
func (f *Fleet) publishRebuild(st ReplaceStats, detail string) {
	if f.fm != nil {
		f.fm.BoundaryResources.Set(float64(st.BoundaryCount))
		f.fm.CutCost.Set(float64(st.CutCost))
		f.fm.ShardRebuilds.Add(int64(st.Rebuilt))
		f.fm.ShardReuses.Add(int64(st.Reused))
	}
	f.obsv.Emit(obs.Event{Kind: obs.EventFleetRebuild,
		Iteration: st.Rebuilt, Value: float64(st.Reused), Detail: detail})
}

// taskChanged reports whether a surviving task's definition differs in any
// way the compiled sub-problem can see.
func taskChanged(a, b *task.Task, ca, cb utility.Curve) bool {
	return a.CriticalMs != b.CriticalMs ||
		!reflect.DeepEqual(a.Trigger, b.Trigger) ||
		!reflect.DeepEqual(a.Subtasks, b.Subtasks) ||
		!reflect.DeepEqual(a.Edges(), b.Edges()) ||
		!reflect.DeepEqual(ca, cb)
}
