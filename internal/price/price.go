// Package price implements LLA's price machinery (Section 4.3): the
// gradient-projection updates for resource prices (Equation 8) and path
// prices (Equation 9), and the step-size policies of Section 5.2 (fixed, and
// the adaptive congestion-doubling heuristic).
package price

import "fmt"

// MaxPrice caps prices: on an infeasible workload the violations never
// clear, so prices grow without bound (exponentially under price-scaled
// steps) and would eventually overflow to +Inf and poison the latency
// arithmetic with NaNs. The cap is astronomically above any feasible workload's
// equilibrium prices and does not affect converging runs.
const MaxPrice = 1e150

// UpdateResource applies Equation 8 with projection onto [0, MaxPrice]:
//
//	mu(t+1) = max(0, mu(t) - gamma * (B_r - Σ_s share_s)).
//
// A positive slack (resource under-utilized) drives the price down; excess
// demand drives it up.
func UpdateResource(mu, gamma, availability, shareSum float64) float64 {
	next := mu - gamma*(availability-shareSum)
	if next < 0 {
		return 0
	}
	if next > MaxPrice {
		return MaxPrice
	}
	return next
}

// UpdatePath applies Equation 9 with projection onto [0, MaxPrice]:
//
//	lambda(t+1) = max(0, lambda(t) - gamma * (1 - Σ_s lat_s / C_i)).
//
// Slack in the path deadline drives the price down; a violated critical
// time drives it up.
func UpdatePath(lambda, gamma, pathLatMs, criticalMs float64) float64 {
	next := lambda - gamma*(1-pathLatMs/criticalMs)
	if next < 0 {
		return 0
	}
	if next > MaxPrice {
		return MaxPrice
	}
	return next
}

// StepSizer yields the step size gamma for each priced entity (a resource or
// a path) at every iteration, optionally reacting to congestion feedback.
type StepSizer interface {
	// Gamma returns the current step size for the entity.
	Gamma() float64
	// Observe feeds the congestion state after an iteration: congested is
	// true when the entity's constraint is violated (share sum exceeds
	// availability, or path latency exceeds the critical time).
	Observe(congested bool)
	// Reset restores the initial step size.
	Reset()
}

// Fixed is a constant step size.
type Fixed struct {
	Value float64
}

var _ StepSizer = (*Fixed)(nil)

// Gamma implements StepSizer.
func (f *Fixed) Gamma() float64 { return f.Value }

// Observe implements StepSizer (no-op).
func (f *Fixed) Observe(bool) {}

// Reset implements StepSizer (no-op).
func (f *Fixed) Reset() {}

// Adaptive implements the paper's heuristic (Section 5.2): start from Base;
// while the entity is congested, double gamma each iteration (bounded by
// Max); as soon as it becomes uncongested, revert to Base. Fast multiplicative
// ramping escapes congestion quickly, and the reversion restores the
// fine-grained updates needed to settle on the convergence point.
type Adaptive struct {
	// Base is the initial and post-congestion step size.
	Base float64
	// Max caps the doubling to keep updates numerically sane. Zero means
	// use DefaultAdaptiveMax.
	Max float64

	cur float64
}

// DefaultAdaptiveMax bounds the adaptive step size when no explicit cap is
// configured.
const DefaultAdaptiveMax = 1024

var _ StepSizer = (*Adaptive)(nil)

// NewAdaptive returns the paper's adaptive step-size controller with the
// given starting value.
func NewAdaptive(base float64) *Adaptive {
	if base <= 0 {
		panic(fmt.Sprintf("price: adaptive base step must be positive, got %v", base))
	}
	return &Adaptive{Base: base, cur: base}
}

// Gamma implements StepSizer.
func (a *Adaptive) Gamma() float64 {
	if a.cur == 0 {
		a.cur = a.Base
	}
	return a.cur
}

// Observe implements StepSizer.
func (a *Adaptive) Observe(congested bool) {
	if a.cur == 0 {
		a.cur = a.Base
	}
	if congested {
		max := a.Max
		if max == 0 {
			max = DefaultAdaptiveMax
		}
		a.cur *= 2
		if a.cur > max {
			a.cur = max
		}
		return
	}
	a.cur = a.Base
}

// Reset implements StepSizer.
func (a *Adaptive) Reset() { a.cur = a.Base }
