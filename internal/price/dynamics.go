package price

import (
	"fmt"
	"math"
)

// Price dynamics (DESIGN.md §12). The paper's dual update is scalar gradient
// projection with the Section 5.2 congestion-doubling step. Every iteration
// of it costs a full broadcast round in the distributed runtime, so
// rounds-to-converge is the dominant term in end-to-end convergence latency.
// Dynamics generalizes the per-entity StepSizer into a pluggable vector
// update over all resource prices with access to the measured demand, the
// availability, a local curvature estimate, and (for the accelerating
// solvers) a window of recent price iterates.
//
// Every implementation is coordinate-separable: coordinate j's next price
// depends only on coordinate j's inputs and history. That is a hard
// requirement, not a convenience — the synchronous engine drives one
// n-resource Dynamics while each distributed resource node drives its own
// 1-resource instance, and separability is what makes the two bitwise
// identical.

// Solver identifies a price-dynamics implementation.
type Solver string

const (
	// SolverGradient is the paper's gradient projection with the Section 5.2
	// congestion-doubling heuristic — the reference dynamics.
	SolverGradient Solver = "gradient"
	// SolverNewton is diagonal Newton: each coordinate's step is scaled by
	// the closed-form controller response derivative (the local diagonal of
	// the dual Hessian).
	SolverNewton Solver = "newton"
	// SolverAnderson is coordinate-wise Anderson acceleration over the
	// reference gradient map, with a fallback-to-gradient safeguard.
	SolverAnderson Solver = "anderson"
	// SolverPriceDiscovery is the multiplicative tâtonnement update of
	// Agrawal & Boyd's price-discovery method.
	SolverPriceDiscovery Solver = "price-discovery"
)

// Solvers lists every implemented solver, reference first.
func Solvers() []Solver {
	return []Solver{SolverGradient, SolverNewton, SolverAnderson, SolverPriceDiscovery}
}

// ParseSolver resolves a flag/config string to a Solver.
func ParseSolver(s string) (Solver, error) {
	switch Solver(s) {
	case SolverGradient, SolverNewton, SolverAnderson, SolverPriceDiscovery:
		return Solver(s), nil
	case "":
		return SolverGradient, nil
	}
	return "", fmt.Errorf("price: unknown solver %q (have gradient, newton, anderson, price-discovery)", s)
}

// String implements fmt.Stringer for flags and telemetry.
func (s Solver) String() string { return string(s) }

// StepInput is one round of per-resource observations handed to a Dynamics.
// All slices are indexed by resource coordinate and have equal length; Mu is
// updated in place.
type StepInput struct {
	// Mu is the price vector, advanced in place.
	Mu []float64
	// ShareSums[j] is the measured demand Σ_s share_s on coordinate j.
	ShareSums []float64
	// Avail[j] is the capacity B_j.
	Avail []float64
	// Congested[j] reports demand beyond the ramping margin; it feeds the
	// adaptive step sizers exactly as in the reference dynamics.
	Congested []bool
	// Curvature[j] is the local demand response −∂(Σ share)/∂μ_j ≥ 0,
	// summed over interior subtasks. Solvers that report NeedsCurvature
	// false ignore it and callers may leave it nil.
	Curvature []float64
}

// Dynamics advances the full price vector once per round. Implementations
// must be coordinate-separable (see the package comment) and must not
// allocate in Step once Reset has sized their buffers.
type Dynamics interface {
	// Solver identifies the implementation.
	Solver() Solver
	// Step advances in.Mu in place and reports whether any coordinate's
	// observable state moved bitwise (a price, or a step sizer's size) —
	// false means replaying the round with identical inputs would be a
	// no-op.
	Step(in StepInput) bool
	// Reset sizes the solver for n coordinates and clears all history.
	Reset(n int)
	// Invalidate drops accumulated iterate history without resizing. Any
	// out-of-band change to prices or problem data (availability changes,
	// workload edits) must invalidate: stale windows would extrapolate
	// across the discontinuity.
	Invalidate()
	// NeedsCurvature reports whether Step consumes StepInput.Curvature.
	NeedsCurvature() bool
	// Fallbacks returns the cumulative count of safeguard fallbacks to the
	// reference gradient step.
	Fallbacks() uint64
}

// DynamicsConfig carries the reference-step parameters every solver shares:
// accelerated solvers embed the exact reference update as their safeguard
// and bootstrap path.
type DynamicsConfig struct {
	// NewStep constructs one per-coordinate step sizer (the engine config's
	// NewStepSizer).
	NewStep func() StepSizer
	// BaseGamma is the base step size (floors the stability clamp).
	BaseGamma float64
	// PriceScaled enables the adaptive-mode step floor at Mu/2.
	PriceScaled bool
}

// NewDynamics builds the named solver. Unknown solvers panic: flag parsing
// goes through ParseSolver, so reaching here with a bad name is a
// programming error.
func NewDynamics(s Solver, cfg DynamicsConfig) Dynamics {
	switch s {
	case SolverGradient, "":
		return NewGradientProjection(cfg)
	case SolverNewton:
		return NewDiagonalNewton(cfg)
	case SolverAnderson:
		return NewAnderson(cfg)
	case SolverPriceDiscovery:
		return NewPriceDiscovery(cfg)
	}
	panic(fmt.Sprintf("price: unknown solver %q", s))
}

// GradStep is one coordinate's reference gradient-projection update — the
// exact arithmetic of the paper's dual step with the Section 5.2 adaptive
// heuristic and the local stability clamp. core.ResourceAgent delegates to
// it, and every accelerated solver embeds it as safeguard, so "fall back to
// gradient" means bit-for-bit the reference behavior.
type GradStep struct {
	// Step sizes the gradient step, ramping under congestion when the
	// adaptive policy is configured.
	Step StepSizer
	// BaseGamma floors the stability clamp so prices can always rise from
	// zero at the configured base rate.
	BaseGamma float64
	// PriceScaled (adaptive mode) floors the effective step at Mu/2:
	// because demand scales as 1/sqrt(mu), a price far from equilibrium
	// needs steps proportional to itself to move in O(1) iterations.
	PriceScaled bool
}

// Update advances one coordinate by the reference dynamics: feed the sizer
// the congestion state, clamp the step to the local stability bound
// (gamma ≤ max(BaseGamma, 2·mu/B), floored at mu/2 in price-scaled mode),
// and apply Equation 8. It returns the next price and whether any state
// moved bitwise (the price or the sizer's step size).
func (g *GradStep) Update(mu, availability, shareSum float64, congested bool) (float64, bool) {
	g0 := g.Step.Gamma()
	g.Step.Observe(congested)
	gamma := g.Step.Gamma()
	changed := gamma != g0
	if g.PriceScaled && gamma < mu/2 {
		gamma = mu / 2
	}
	if cap := math.Max(g.BaseGamma, 2*mu/availability); gamma > cap {
		gamma = cap
	}
	next := UpdateResource(mu, gamma, availability, shareSum)
	return next, changed || next != mu
}

// Reset restores the sizer's initial step size.
func (g *GradStep) Reset() { g.Step.Reset() }

// gradSteps builds n reference coordinate steps.
func gradSteps(cfg DynamicsConfig, n int) []GradStep {
	steps := make([]GradStep, n)
	for i := range steps {
		steps[i] = GradStep{Step: cfg.NewStep(), BaseGamma: cfg.BaseGamma, PriceScaled: cfg.PriceScaled}
	}
	return steps
}

// GradientProjection is the reference dynamics: the paper's per-coordinate
// gradient projection, expressed through the Dynamics interface. The
// engine's built-in agent path and this implementation share GradStep, so
// they are bitwise interchangeable.
type GradientProjection struct {
	cfg   DynamicsConfig
	steps []GradStep
}

var _ Dynamics = (*GradientProjection)(nil)

// NewGradientProjection builds the reference dynamics; call Reset before
// the first Step.
func NewGradientProjection(cfg DynamicsConfig) *GradientProjection {
	return &GradientProjection{cfg: cfg}
}

// Solver implements Dynamics.
func (g *GradientProjection) Solver() Solver { return SolverGradient }

// NeedsCurvature implements Dynamics.
func (g *GradientProjection) NeedsCurvature() bool { return false }

// Fallbacks implements Dynamics: the reference never falls back.
func (g *GradientProjection) Fallbacks() uint64 { return 0 }

// Reset implements Dynamics.
func (g *GradientProjection) Reset(n int) { g.steps = gradSteps(g.cfg, n) }

// Invalidate implements Dynamics: the gradient step is memoryless beyond
// its sizer, whose state remains valid across out-of-band changes (it did
// for the pre-Dynamics engine too).
func (g *GradientProjection) Invalidate() {}

// Step implements Dynamics.
func (g *GradientProjection) Step(in StepInput) bool {
	changed := false
	for j := range in.Mu {
		next, ch := g.steps[j].Update(in.Mu[j], in.Avail[j], in.ShareSums[j], in.Congested[j])
		in.Mu[j] = next
		changed = changed || ch
	}
	return changed
}

// curvatureFloor guards the Newton division: below it the interior demand
// response is effectively zero (every subtask bound-active) and the
// reference gradient step takes over.
const curvatureFloor = 1e-12

// newtonTrustFactor bounds one diagonal-Newton move to a geometric trust
// region [mu/factor, mu*factor]: coordinates far from their root still move
// geometrically fast, but a Jacobi-style simultaneous sweep over coupled
// coordinates cannot overshoot into oscillation.
const newtonTrustFactor = 16

// newtonElasticityFloor bounds the measured demand elasticity away from
// zero: p below it would exponentiate measurement noise into astronomical
// price moves, so such coordinates take the reference step instead.
const newtonElasticityFloor = 0.05

// DiagonalNewton scales each coordinate's dual step by the closed-form
// demand response — the diagonal of the dual Hessian — applied in log-price
// coordinates. With share = (c+l)/(lat−e) and the stationarity solution
// lat−e = sqrt(mu·k/denom), each interior subtask responds as
// ∂share/∂mu = −share/(2·mu) (Controller.ResponseSlope), so the measured
// demand has local log-log elasticity
//
//	p = −dlog(Σshare)/dlog(mu) = mu·curv/Σshare  (= 1/2 when fully interior).
//
// A plain Newton step mu' = mu + (Σshare−B)/curv linearizes that power law
// and therefore cannot move more than ~3× per round from below the root; the
// log-space Newton step solves the local model Σshare·(mu'/mu)^(−p) = B
// exactly:
//
//	mu' = mu · (Σshare/B)^(1/p),
//
// closing any demand gap in one move when the power-law model holds, and
// landing where the linear step lands when it is near the root. Coordinates
// with no interior response (every subtask bound-active), a zero price, or
// zero demand fall back to the reference gradient step.
type DiagonalNewton struct {
	cfg       DynamicsConfig
	steps     []GradStep
	fallbacks uint64
}

var _ Dynamics = (*DiagonalNewton)(nil)

// NewDiagonalNewton builds the diagonal-Newton dynamics; call Reset before
// the first Step.
func NewDiagonalNewton(cfg DynamicsConfig) *DiagonalNewton {
	return &DiagonalNewton{cfg: cfg}
}

// Solver implements Dynamics.
func (d *DiagonalNewton) Solver() Solver { return SolverNewton }

// NeedsCurvature implements Dynamics.
func (d *DiagonalNewton) NeedsCurvature() bool { return true }

// Fallbacks implements Dynamics.
func (d *DiagonalNewton) Fallbacks() uint64 { return d.fallbacks }

// Reset implements Dynamics.
func (d *DiagonalNewton) Reset(n int) { d.steps = gradSteps(d.cfg, n) }

// Invalidate implements Dynamics: Newton is memoryless per round.
func (d *DiagonalNewton) Invalidate() {}

// Step implements Dynamics.
func (d *DiagonalNewton) Step(in StepInput) bool {
	changed := false
	for j := range in.Mu {
		mu := in.Mu[j]
		curv := in.Curvature[j]
		sum := in.ShareSums[j]
		p := mu * curv / sum
		if mu <= 0 || curv <= curvatureFloor || sum <= 0 || p < newtonElasticityFloor {
			// Zero price, zero demand, or no usable interior response: the
			// Newton model is degenerate here; take the reference step (which
			// can lift a zero price and parks released resources at zero).
			next, ch := d.steps[j].Update(mu, in.Avail[j], sum, in.Congested[j])
			in.Mu[j] = next
			changed = changed || ch
			d.fallbacks++
			continue
		}
		next := mu * math.Pow(sum/in.Avail[j], 1/p)
		if next > mu*newtonTrustFactor {
			next = mu * newtonTrustFactor
		} else if next < mu/newtonTrustFactor {
			next = mu / newtonTrustFactor
		}
		if next > MaxPrice {
			next = MaxPrice
		}
		if next != mu {
			changed = true
		}
		in.Mu[j] = next
	}
	return changed
}

// andersonWindow is the default mixing window m: the extrapolation sees the
// last m (price, residual) pairs of each coordinate.
const andersonWindow = 5

// Anderson is coordinate-wise Anderson acceleration (type II, ridge
// regularized) over the reference gradient map g: each round it evaluates
// the reference step g(mu), forms the residual f = g(mu) − mu, and
// extrapolates the next price from the window of recent (mu, f) pairs. The
// per-coordinate (diagonal) mixing keeps the solver distributable — every
// resource node can run its own window — at the cost of ignoring
// cross-resource residual correlations.
//
// Safeguards (counted by Fallbacks, and the window is cleared): the
// extrapolated price is rejected when it is non-finite or outside
// [0, MaxPrice], and retroactively when the residual grew after an accepted
// extrapolation — the scalar proxy for "the step increased the KKT
// residuals". A rejected round takes the already-computed reference
// gradient step, so Anderson can never do worse than a cleared-window
// restart of the reference dynamics.
type Anderson struct {
	cfg DynamicsConfig
	// Window is the mixing depth m (0 = andersonWindow). Set before Reset.
	Window int

	steps []GradStep
	// xs/fs hold each coordinate's window as m chronological (price,
	// residual) pairs in one flat buffer; cnt is the per-coordinate fill.
	xs, fs []float64
	cnt    []int
	// accepted marks coordinates whose previous round took an extrapolated
	// step; prevAbsF is the residual magnitude it is judged against.
	accepted  []bool
	prevAbsF  []float64
	fallbacks uint64
}

var _ Dynamics = (*Anderson)(nil)

// NewAnderson builds the Anderson-accelerated dynamics; call Reset before
// the first Step.
func NewAnderson(cfg DynamicsConfig) *Anderson {
	return &Anderson{cfg: cfg}
}

// Solver implements Dynamics.
func (a *Anderson) Solver() Solver { return SolverAnderson }

// NeedsCurvature implements Dynamics.
func (a *Anderson) NeedsCurvature() bool { return false }

// Fallbacks implements Dynamics.
func (a *Anderson) Fallbacks() uint64 { return a.fallbacks }

// window returns the configured mixing depth.
func (a *Anderson) window() int {
	if a.Window > 0 {
		return a.Window
	}
	return andersonWindow
}

// Reset implements Dynamics.
func (a *Anderson) Reset(n int) {
	m := a.window()
	a.steps = gradSteps(a.cfg, n)
	a.xs = make([]float64, n*m)
	a.fs = make([]float64, n*m)
	a.cnt = make([]int, n)
	a.accepted = make([]bool, n)
	a.prevAbsF = make([]float64, n)
}

// Invalidate implements Dynamics: drop every coordinate's window — iterates
// straddling an out-of-band change would extrapolate across the
// discontinuity.
func (a *Anderson) Invalidate() {
	for j := range a.cnt {
		a.cnt[j] = 0
		a.accepted[j] = false
	}
}

// clear drops one coordinate's window.
func (a *Anderson) clear(j int) {
	a.cnt[j] = 0
	a.accepted[j] = false
}

// push appends a (price, residual) pair to coordinate j's window, shifting
// the oldest pair out when full (m is small, so the shift is cheaper than
// ring arithmetic and keeps the window chronological).
func (a *Anderson) push(j int, x, f float64) {
	m := a.window()
	base := j * m
	if a.cnt[j] == m {
		copy(a.xs[base:base+m-1], a.xs[base+1:base+m])
		copy(a.fs[base:base+m-1], a.fs[base+1:base+m])
		a.cnt[j]--
	}
	a.xs[base+a.cnt[j]] = x
	a.fs[base+a.cnt[j]] = f
	a.cnt[j]++
}

// Step implements Dynamics.
func (a *Anderson) Step(in StepInput) bool {
	m := a.window()
	changed := false
	for j := range in.Mu {
		mu := in.Mu[j]
		// The reference map g is evaluated every round: it advances the
		// coordinate's adaptive sizer exactly as the reference dynamics
		// would, it is the fallback value, and g(mu) − mu is the residual
		// the extrapolation mixes.
		gnext, ch := a.steps[j].Update(mu, in.Avail[j], in.ShareSums[j], in.Congested[j])
		changed = changed || ch
		f := gnext - mu
		absF := math.Abs(f)

		// Delayed safeguard: an accepted extrapolation must have shrunk
		// the residual. If it grew, the window is extrapolating badly —
		// drop it and take the reference step.
		if a.accepted[j] && absF > a.prevAbsF[j] {
			a.fallbacks++
			a.clear(j)
		}
		a.prevAbsF[j] = absF
		a.push(j, mu, f)

		if a.cnt[j] < 2 {
			in.Mu[j] = gnext
			a.accepted[j] = false
			continue
		}

		// Type-II extrapolation with ridge regularization: minimize
		// |f_k − ΔF·γ|² + λ|γ|², whose closed form for a scalar residual
		// sequence is γ_i = Δf_i·f_k / (Σ Δf² + λ). λ scales with f_k² so a
		// stagnant window (tiny Δf against a large residual) degrades to
		// the plain gradient step instead of amplifying noise.
		base := j * m
		c := a.cnt[j]
		denom := 0.0
		for i := 0; i < c-1; i++ {
			df := a.fs[base+i+1] - a.fs[base+i]
			denom += df * df
		}
		next := mu + f
		if denom > 0 {
			scale := f / (denom + 1e-10*f*f)
			for i := 0; i < c-1; i++ {
				df := a.fs[base+i+1] - a.fs[base+i]
				dx := a.xs[base+i+1] - a.xs[base+i]
				next -= scale * df * (dx + df)
			}
		}

		// Immediate safeguard: reject extrapolations outside the price
		// domain.
		if math.IsNaN(next) || math.IsInf(next, 0) || next < 0 || next > MaxPrice {
			a.fallbacks++
			a.clear(j)
			in.Mu[j] = gnext
			a.accepted[j] = false
			continue
		}
		if next != mu {
			changed = true
		}
		in.Mu[j] = next
		a.accepted[j] = next != gnext
	}
	return changed
}

// pdRatioMax clamps one multiplicative update to [1/pdRatioMax, pdRatioMax]
// per round, the stability guard of the tâtonnement iteration.
const pdRatioMax = 2

// pdSnapFloor is the price below which an uncongested coordinate snaps to
// exactly zero: the multiplicative update alone decays geometrically but
// never reaches the reference fixed point's exact zero.
const pdSnapFloor = 1e-9

// PriceDiscovery is the multiplicative price update of Agrawal & Boyd's
// fast price-discovery method: mu' = mu · (demand/capacity)^eta, clamped to
// a per-round ratio bound. Over-demanded coordinates raise their price in
// proportion to the violation ratio, giving scale-free convergence — the
// contraction rate is independent of the price magnitude, where the
// additive gradient step must ramp its step size first. Zero prices cannot
// move multiplicatively, so those coordinates bootstrap with the reference
// gradient step.
type PriceDiscovery struct {
	cfg DynamicsConfig
	// Eta is the update exponent (0 = 1, the plain ratio update).
	Eta float64

	steps []GradStep
}

var _ Dynamics = (*PriceDiscovery)(nil)

// NewPriceDiscovery builds the multiplicative dynamics; call Reset before
// the first Step.
func NewPriceDiscovery(cfg DynamicsConfig) *PriceDiscovery {
	return &PriceDiscovery{cfg: cfg}
}

// Solver implements Dynamics.
func (p *PriceDiscovery) Solver() Solver { return SolverPriceDiscovery }

// NeedsCurvature implements Dynamics.
func (p *PriceDiscovery) NeedsCurvature() bool { return false }

// Fallbacks implements Dynamics: the multiplicative update has no unsafe
// region — the zero-price bootstrap is part of the method, not a safeguard.
func (p *PriceDiscovery) Fallbacks() uint64 { return 0 }

// Reset implements Dynamics.
func (p *PriceDiscovery) Reset(n int) { p.steps = gradSteps(p.cfg, n) }

// Invalidate implements Dynamics: the update is memoryless.
func (p *PriceDiscovery) Invalidate() {}

// eta returns the configured exponent.
func (p *PriceDiscovery) eta() float64 {
	if p.Eta > 0 {
		return p.Eta
	}
	return 1
}

// Step implements Dynamics.
func (p *PriceDiscovery) Step(in StepInput) bool {
	eta := p.eta()
	changed := false
	for j := range in.Mu {
		mu := in.Mu[j]
		if mu <= 0 {
			// Multiplicative updates cannot lift a zero price; the
			// reference gradient step can (and leaves a released resource
			// parked at zero).
			next, ch := p.steps[j].Update(mu, in.Avail[j], in.ShareSums[j], in.Congested[j])
			in.Mu[j] = next
			changed = changed || ch
			continue
		}
		ratio := in.ShareSums[j] / in.Avail[j]
		if eta != 1 {
			ratio = math.Pow(ratio, eta)
		}
		if ratio > pdRatioMax {
			ratio = pdRatioMax
		} else if ratio < 1/pdRatioMax {
			ratio = 1 / pdRatioMax
		}
		next := mu * ratio
		if next < pdSnapFloor && in.ShareSums[j] < in.Avail[j] {
			next = 0
		}
		if next > MaxPrice {
			next = MaxPrice
		}
		if next != mu {
			changed = true
		}
		in.Mu[j] = next
	}
	return changed
}
