package price

import (
	"math"
	"testing"
)

// testCfg is the dynamics configuration the engine's defaults produce:
// adaptive doubling from base 1, price-scaled steps.
func testCfg() DynamicsConfig {
	return DynamicsConfig{
		NewStep:     func() StepSizer { return NewAdaptive(1) },
		BaseGamma:   1,
		PriceScaled: true,
	}
}

func TestParseSolver(t *testing.T) {
	for _, s := range Solvers() {
		got, err := ParseSolver(string(s))
		if err != nil || got != s {
			t.Errorf("ParseSolver(%q) = %v, %v", s, got, err)
		}
	}
	if got, err := ParseSolver(""); err != nil || got != SolverGradient {
		t.Errorf("ParseSolver(\"\") = %v, %v; want gradient default", got, err)
	}
	if _, err := ParseSolver("bogus"); err == nil {
		t.Error("ParseSolver must reject unknown names")
	}
}

func TestSolversReferenceFirst(t *testing.T) {
	all := Solvers()
	if len(all) != 4 || all[0] != SolverGradient {
		t.Fatalf("Solvers() = %v, want the reference gradient first of four", all)
	}
	for _, s := range all {
		d := NewDynamics(s, testCfg())
		if d.Solver() != s {
			t.Errorf("NewDynamics(%q).Solver() = %q", s, d.Solver())
		}
		d.Reset(2)
		if d.Fallbacks() != 0 {
			t.Errorf("%s: fresh dynamics reports %d fallbacks", s, d.Fallbacks())
		}
	}
}

func TestNewDynamicsPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDynamics with an unvetted name must panic")
		}
	}()
	NewDynamics("bogus", testCfg())
}

// TestGradientProjectionMatchesGradStep: the vector reference dynamics is the
// per-coordinate GradStep applied coordinate-wise — bit for bit.
func TestGradientProjectionMatchesGradStep(t *testing.T) {
	cfg := testCfg()
	g := NewGradientProjection(cfg)
	g.Reset(2)
	manual := gradSteps(cfg, 2)

	mu := []float64{1, 1}
	want := []float64{1, 1}
	sums := [][]float64{{1.4, 0.3}, {1.2, 0.5}, {0.9, 0.8}, {1.6, 0.2}}
	for round, sum := range sums {
		avail := []float64{1, 1}
		cong := []bool{sum[0] > 1, sum[1] > 1}
		g.Step(StepInput{Mu: mu, ShareSums: sum, Avail: avail, Congested: cong})
		for j := range want {
			next, _ := manual[j].Update(want[j], avail[j], sum[j], cong[j])
			want[j] = next
			if mu[j] != want[j] {
				t.Fatalf("round %d coord %d: GradientProjection %v, GradStep %v", round, j, mu[j], want[j])
			}
		}
	}
}

// TestNewtonStepSolvesPowerLaw pins the log-space update: with the
// closed-form curvature curv = sum/(2mu) the elasticity is 1/2, so the step
// solves sum·(mu'/mu)^(-1/2) = B exactly — mu' = mu·(sum/B)².
func TestNewtonStepSolvesPowerLaw(t *testing.T) {
	d := NewDiagonalNewton(testCfg())
	d.Reset(1)
	mu := []float64{1}
	d.Step(StepInput{
		Mu: mu, ShareSums: []float64{2}, Avail: []float64{1},
		Congested: []bool{true}, Curvature: []float64{1}, // sum/(2mu) = 1
	})
	if mu[0] != 4 {
		t.Errorf("log-space Newton moved to %v, want (2/1)^2 = 4", mu[0])
	}
	if d.Fallbacks() != 0 {
		t.Errorf("healthy coordinate fell back %d times", d.Fallbacks())
	}

	// A huge demand gap is confined to the geometric trust region.
	mu[0] = 1
	d.Step(StepInput{
		Mu: mu, ShareSums: []float64{100}, Avail: []float64{1},
		Congested: []bool{true}, Curvature: []float64{50},
	})
	if mu[0] != newtonTrustFactor {
		t.Errorf("trust region let the price move to %v, want %v", mu[0], float64(newtonTrustFactor))
	}
}

// TestNewtonFallsBackOnDegenerateCurvature: zero curvature (every subtask
// bound-active), zero demand, and zero price all take the reference gradient
// step and count a fallback.
func TestNewtonFallsBackOnDegenerateCurvature(t *testing.T) {
	cfg := testCfg()
	d := NewDiagonalNewton(cfg)
	d.Reset(1)
	ref := gradSteps(cfg, 1)

	cases := []struct {
		name          string
		mu, sum, curv float64
		congested     bool
	}{
		{"zero curvature", 2, 1.5, 0, true},
		{"zero demand", 2, 0, 0.1, false},
		{"zero price", 0, 1.5, 0.2, true},
	}
	for i, tc := range cases {
		mu := []float64{tc.mu}
		d.Step(StepInput{
			Mu: mu, ShareSums: []float64{tc.sum}, Avail: []float64{1},
			Congested: []bool{tc.congested}, Curvature: []float64{tc.curv},
		})
		want, _ := ref[0].Update(tc.mu, 1, tc.sum, tc.congested)
		if mu[0] != want {
			t.Errorf("%s: fell back to %v, reference step gives %v", tc.name, mu[0], want)
		}
		if got := d.Fallbacks(); got != uint64(i+1) {
			t.Errorf("%s: Fallbacks() = %d, want %d", tc.name, got, i+1)
		}
	}
}

// TestAndersonForcedFallback drives the safeguard on purpose: an adversarial
// demand signal that flips between heavy congestion and deep slack makes the
// residual grow after accepted extrapolations, so the window must be dropped
// (Fallbacks advances) while the price stays inside [0, MaxPrice] throughout.
func TestAndersonForcedFallback(t *testing.T) {
	a := NewAnderson(testCfg())
	a.Reset(1)
	mu := []float64{1}
	for round := 0; round < 60; round++ {
		sum := 0.05
		if round%2 == 0 {
			sum = 8
		}
		a.Step(StepInput{
			Mu: mu, ShareSums: []float64{sum}, Avail: []float64{1},
			Congested: []bool{sum > 1},
		})
		if math.IsNaN(mu[0]) || mu[0] < 0 || mu[0] > MaxPrice {
			t.Fatalf("round %d: safeguarded price left the domain: %v", round, mu[0])
		}
	}
	if a.Fallbacks() == 0 {
		t.Error("adversarial demand did not trigger the Anderson safeguard")
	}
}

// TestAndersonInvalidateClearsWindow: after Invalidate the next round must
// behave like a bootstrap — the window holds fewer than two pairs, so the
// coordinate takes exactly the reference gradient step.
func TestAndersonInvalidateClearsWindow(t *testing.T) {
	cfg := testCfg()
	a := NewAnderson(cfg)
	a.Reset(1)
	mu := []float64{1}
	in := func(sum float64) StepInput {
		return StepInput{Mu: mu, ShareSums: []float64{sum}, Avail: []float64{1}, Congested: []bool{sum > 1}}
	}
	for _, sum := range []float64{1.5, 1.4, 1.3, 1.2} {
		a.Step(in(sum))
	}
	a.Invalidate()
	for j, n := range a.cnt {
		if n != 0 {
			t.Fatalf("coordinate %d still holds %d window pairs after Invalidate", j, n)
		}
	}
	// Mirror the post-invalidate round with a reference step whose sizer
	// carries the same state the solver's sizer had going in.
	restored := NewAdaptive(1)
	restored.cur = a.steps[0].Step.Gamma()
	ref := GradStep{Step: restored, BaseGamma: cfg.BaseGamma, PriceScaled: cfg.PriceScaled}
	before := mu[0]
	a.Step(in(1.25))
	want, _ := ref.Update(before, 1, 1.25, true)
	if mu[0] != want {
		t.Errorf("post-Invalidate step moved to %v, reference gives %v", mu[0], want)
	}
}

// TestPriceDiscoveryUpdate pins the multiplicative dynamics: ratio updates
// clamped per round, sub-floor uncongested prices snap to exactly zero, and
// zero prices bootstrap through the reference gradient step.
func TestPriceDiscoveryUpdate(t *testing.T) {
	p := NewPriceDiscovery(testCfg())
	p.Reset(1)

	mu := []float64{1}
	p.Step(StepInput{Mu: mu, ShareSums: []float64{8}, Avail: []float64{1}, Congested: []bool{true}})
	if mu[0] != pdRatioMax {
		t.Errorf("over-demand update = %v, want the ratio clamp %v", mu[0], float64(pdRatioMax))
	}

	mu[0] = 4e-10
	p.Step(StepInput{Mu: mu, ShareSums: []float64{0.2}, Avail: []float64{1}, Congested: []bool{false}})
	if mu[0] != 0 {
		t.Errorf("sub-floor uncongested price = %v, want exact 0", mu[0])
	}

	// A zero price with returning demand must rise again (the multiplicative
	// update alone could not lift it).
	p.Step(StepInput{Mu: mu, ShareSums: []float64{1.5}, Avail: []float64{1}, Congested: []bool{true}})
	if mu[0] <= 0 {
		t.Errorf("zero price with excess demand stayed at %v, want > 0", mu[0])
	}
}

// Satellite: Adaptive step-sizer edge cases.

// TestAdaptiveResetAfterSaturation: a long congestion streak saturates the
// doubling at the cap; Reset must restore the base exactly.
func TestAdaptiveResetAfterSaturation(t *testing.T) {
	a := NewAdaptive(1)
	for i := 0; i < 30; i++ {
		a.Observe(true)
	}
	if a.Gamma() != DefaultAdaptiveMax {
		t.Fatalf("saturated gamma = %v, want %v", a.Gamma(), float64(DefaultAdaptiveMax))
	}
	a.Reset()
	if a.Gamma() != 1 {
		t.Errorf("post-Reset gamma = %v, want base 1", a.Gamma())
	}
}

// TestAdaptiveAlternatingObserve: congestion flapping must not ratchet the
// step size — every uncongested observation reverts to base, so the step
// never exceeds 2x base.
func TestAdaptiveAlternatingObserve(t *testing.T) {
	a := NewAdaptive(0.5)
	for i := 0; i < 40; i++ {
		congested := i%2 == 0
		a.Observe(congested)
		if congested {
			if a.Gamma() != 1 {
				t.Fatalf("step %d: congested gamma = %v, want 2x base = 1", i, a.Gamma())
			}
		} else if a.Gamma() != 0.5 {
			t.Fatalf("step %d: uncongested gamma = %v, want base 0.5", i, a.Gamma())
		}
	}
}

// TestAdaptiveDoublingCapNearMax: a cap that is not a power-of-two multiple
// of the base is still respected exactly — the ramp clamps at Max rather
// than stepping over it, and stays pinned there while congestion persists.
func TestAdaptiveDoublingCapNearMax(t *testing.T) {
	a := NewAdaptive(1)
	a.Max = 3
	for i := 0; i < 10; i++ {
		a.Observe(true)
		if a.Gamma() > 3 {
			t.Fatalf("observation %d stepped over the cap: %v", i, a.Gamma())
		}
	}
	if a.Gamma() != 3 {
		t.Errorf("saturated gamma = %v, want the exact cap 3", a.Gamma())
	}
	a.Observe(false)
	if a.Gamma() != 1 {
		t.Errorf("uncongested reversion = %v, want base 1", a.Gamma())
	}
}
