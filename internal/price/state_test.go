package price

import (
	"math"
	"testing"
)

// driveDynamics runs a few rounds of a small 3-coordinate problem so the
// solver accumulates non-trivial internal state (ramped sizers, Anderson
// windows, fallback counts).
func driveDynamics(d Dynamics, rounds int) []float64 {
	mu := []float64{0.5, 2, 0}
	avail := []float64{1, 1, 1}
	curv := make([]float64, 3)
	sums := make([]float64, 3)
	cong := make([]bool, 3)
	for r := 0; r < rounds; r++ {
		for j := range mu {
			// A synthetic demand response: over-demand on 0, near balance on
			// 1, idle on 2, with congestion flipping to exercise the adaptive
			// sizers on both branches.
			sums[j] = avail[j] * (1.3 - 0.4*float64(j)) * (1 + 0.1*math.Sin(float64(r+j)))
			cong[j] = sums[j] > avail[j]*1.01
			curv[j] = sums[j] / (2 * math.Max(mu[j], 1e-3))
		}
		d.Step(StepInput{Mu: mu, ShareSums: sums, Avail: avail, Congested: cong, Curvature: curv})
	}
	return mu
}

func testConfig() DynamicsConfig {
	return DynamicsConfig{NewStep: func() StepSizer { return NewAdaptive(0.1) }, BaseGamma: 0.1, PriceScaled: true}
}

// TestDynamicsStateRoundTrip drives each solver, captures it, restores into
// a fresh instance, and verifies both continue bitwise identically.
func TestDynamicsStateRoundTrip(t *testing.T) {
	for _, solver := range Solvers() {
		t.Run(string(solver), func(t *testing.T) {
			orig := NewDynamics(solver, testConfig())
			orig.Reset(3)
			muPrefix := driveDynamics(orig, 7)

			st, ok := CaptureDynamics(orig)
			if !ok {
				t.Fatalf("CaptureDynamics(%s) not supported", solver)
			}
			if st.Solver != solver {
				t.Fatalf("captured solver = %s, want %s", st.Solver, solver)
			}

			fresh := NewDynamics(solver, testConfig())
			fresh.Reset(3)
			if err := RestoreDynamics(fresh, st); err != nil {
				t.Fatalf("RestoreDynamics: %v", err)
			}
			if fresh.Fallbacks() != orig.Fallbacks() {
				t.Fatalf("restored fallbacks = %d, want %d", fresh.Fallbacks(), orig.Fallbacks())
			}

			// Continue both from the same price vector: every subsequent
			// round must agree bitwise.
			muA := append([]float64(nil), muPrefix...)
			muB := append([]float64(nil), muPrefix...)
			avail := []float64{1, 1, 1}
			curv := make([]float64, 3)
			sums := make([]float64, 3)
			cong := make([]bool, 3)
			for r := 0; r < 10; r++ {
				for j := range sums {
					sums[j] = avail[j] * (1.2 - 0.3*float64(j)) * (1 + 0.1*math.Cos(float64(r+j)))
					cong[j] = sums[j] > avail[j]*1.01
					curv[j] = sums[j] / (2 * math.Max(muA[j], 1e-3))
				}
				orig.Step(StepInput{Mu: muA, ShareSums: sums, Avail: avail, Congested: cong, Curvature: curv})
				fresh.Step(StepInput{Mu: muB, ShareSums: sums, Avail: avail, Congested: cong, Curvature: curv})
				for j := range muA {
					if math.Float64bits(muA[j]) != math.Float64bits(muB[j]) {
						t.Fatalf("round %d coordinate %d: restored %v != original %v", r, j, muB[j], muA[j])
					}
				}
			}
			if fresh.Fallbacks() != orig.Fallbacks() {
				t.Fatalf("post-run fallbacks diverged: restored %d, original %d", fresh.Fallbacks(), orig.Fallbacks())
			}
		})
	}
}

// TestRestoreDynamicsRejectsMismatch checks solver and shape mismatches are
// errors rather than silent partial loads.
func TestRestoreDynamicsRejectsMismatch(t *testing.T) {
	grad := NewDynamics(SolverGradient, testConfig())
	grad.Reset(3)
	st, ok := CaptureDynamics(grad)
	if !ok {
		t.Fatal("capture failed")
	}

	newton := NewDynamics(SolverNewton, testConfig())
	newton.Reset(3)
	if err := RestoreDynamics(newton, st); err == nil {
		t.Fatal("restoring gradient state into newton succeeded, want error")
	}

	small := NewDynamics(SolverGradient, testConfig())
	small.Reset(2)
	if err := RestoreDynamics(small, st); err == nil {
		t.Fatal("restoring 3-coordinate state into 2-coordinate solver succeeded, want error")
	}

	if err := RestoreDynamics(nil, st); err == nil {
		t.Fatal("restoring into nil Dynamics succeeded, want error")
	}
}

// TestRestoreFixedSizerMismatch: a Fixed sizer has no setter; restoring its
// own value succeeds, any other value errors.
func TestRestoreFixedSizerMismatch(t *testing.T) {
	cfg := DynamicsConfig{NewStep: func() StepSizer { return &Fixed{Value: 0.25} }, BaseGamma: 0.25}
	d := NewDynamics(SolverGradient, cfg)
	d.Reset(2)
	st, _ := CaptureDynamics(d)

	fresh := NewDynamics(SolverGradient, cfg)
	fresh.Reset(2)
	if err := RestoreDynamics(fresh, st); err != nil {
		t.Fatalf("restoring matching fixed gammas: %v", err)
	}

	st.Gammas[1] = 0.5
	if err := RestoreDynamics(fresh, st); err == nil {
		t.Fatal("restoring mismatched fixed gamma succeeded, want error")
	}
}

// TestAdaptiveSetGamma: SetGamma must place the sizer exactly where a
// congestion ramp left it.
func TestAdaptiveSetGamma(t *testing.T) {
	a := NewAdaptive(0.1)
	a.Observe(true)
	a.Observe(true)
	want := a.Gamma()

	b := NewAdaptive(0.1)
	b.SetGamma(want)
	if b.Gamma() != want {
		t.Fatalf("SetGamma: got %v, want %v", b.Gamma(), want)
	}
	// Both must evolve identically afterwards.
	a.Observe(true)
	b.Observe(true)
	if a.Gamma() != b.Gamma() {
		t.Fatalf("post-set Observe diverged: %v vs %v", b.Gamma(), a.Gamma())
	}
}
