package price

import "fmt"

// Checkpoint support (DESIGN.md §13). A Dynamics is part of the engine's
// observable state: the adaptive sizers' current step sizes and Anderson's
// iterate window both influence future price trajectories, so a restore that
// dropped them would diverge bitwise from the uninterrupted run. This file
// defines the serializable snapshot of every built-in solver and the
// capture/restore pair the engine checkpointer drives.
//
// The contract is two-tier: the four built-in solvers round-trip exactly
// (CaptureDynamics reports ok=true and RestoreDynamics reproduces every bit
// of internal state), while an unknown third-party Dynamics falls back to
// the Reset-on-restore contract — CaptureDynamics reports ok=false, and the
// restored engine calls Reset, trading bitwise continuity for a safe warm
// start from the restored prices.

// GammaSetter is the optional StepSizer extension a bitwise restore needs:
// Gamma() is the sizer's entire observable state (the engine relies on that
// for its replay-absorbing sparse skips), so a sizer that can be set to a
// captured gamma can be restored exactly. Fixed sizers need no setter — their
// gamma never moves — and sizers implementing neither are rejected by
// RestoreDynamics rather than silently reset.
type GammaSetter interface {
	// SetGamma forces the current step size to a previously captured value.
	SetGamma(gamma float64)
}

// SetGamma implements GammaSetter: restoring cur is exactly restoring the
// adaptive controller, since Base/Max are configuration, not state.
func (a *Adaptive) SetGamma(gamma float64) { a.cur = gamma }

// DynamicsState is the serializable snapshot of a built-in Dynamics. Gammas
// and Fallbacks cover every solver (all four embed the reference GradStep
// per coordinate); the remaining fields are Anderson's window and are empty
// for the memoryless solvers.
type DynamicsState struct {
	// Solver names the implementation the state belongs to; restoring onto a
	// different solver is an error, never a silent partial load.
	Solver Solver
	// Gammas holds each coordinate's current step size.
	Gammas []float64
	// Fallbacks is the cumulative safeguard-fallback count.
	Fallbacks uint64

	// Window, Cnt, Xs, Fs, Accepted, PrevAbsF are Anderson's mixing window
	// (flat m-per-coordinate layout, chronological); empty for other solvers.
	Window   int
	Cnt      []int
	Xs       []float64
	Fs       []float64
	Accepted []bool
	PrevAbsF []float64
}

// captureSteps snapshots the per-coordinate sizer gammas shared by every
// built-in solver.
func captureSteps(steps []GradStep) []float64 {
	gammas := make([]float64, len(steps))
	for j := range steps {
		gammas[j] = steps[j].Step.Gamma()
	}
	return gammas
}

// restoreSteps forces each coordinate's sizer to a captured gamma. Fixed
// sizers accept only their own value (a mismatch means the checkpoint was
// taken under a different configuration); everything else must implement
// GammaSetter.
func restoreSteps(steps []GradStep, gammas []float64) error {
	if len(gammas) != len(steps) {
		return fmt.Errorf("price: restore has %d step gammas, solver has %d coordinates", len(gammas), len(steps))
	}
	for j := range steps {
		switch s := steps[j].Step.(type) {
		case GammaSetter:
			s.SetGamma(gammas[j])
		default:
			if steps[j].Step.Gamma() != gammas[j] {
				return fmt.Errorf("price: coordinate %d sizer %T cannot restore gamma %v (has %v and no SetGamma)",
					j, steps[j].Step, gammas[j], steps[j].Step.Gamma())
			}
		}
	}
	return nil
}

// CaptureDynamics snapshots a Dynamics for checkpointing. ok is false for
// implementations outside this package, which restore under the
// Reset-on-restore contract instead. A nil Dynamics (the engine's built-in
// gradient agent path) captures as ok=false too: the agents' sizer state is
// captured by the engine itself.
func CaptureDynamics(d Dynamics) (DynamicsState, bool) {
	switch v := d.(type) {
	case *GradientProjection:
		return DynamicsState{Solver: v.Solver(), Gammas: captureSteps(v.steps)}, true
	case *DiagonalNewton:
		return DynamicsState{Solver: v.Solver(), Gammas: captureSteps(v.steps), Fallbacks: v.fallbacks}, true
	case *PriceDiscovery:
		return DynamicsState{Solver: v.Solver(), Gammas: captureSteps(v.steps)}, true
	case *Anderson:
		m := v.window()
		st := DynamicsState{
			Solver:    v.Solver(),
			Gammas:    captureSteps(v.steps),
			Fallbacks: v.fallbacks,
			Window:    m,
			Cnt:       append([]int(nil), v.cnt...),
			Xs:        append([]float64(nil), v.xs...),
			Fs:        append([]float64(nil), v.fs...),
			Accepted:  append([]bool(nil), v.accepted...),
			PrevAbsF:  append([]float64(nil), v.prevAbsF...),
		}
		return st, true
	}
	return DynamicsState{}, false
}

// RestoreDynamics loads a captured snapshot into a freshly Reset Dynamics of
// the same solver and coordinate count. The caller must have called Reset(n)
// first (NewEngine does); RestoreDynamics then overwrites the cleared state
// with the captured bits. Solver or shape mismatches are errors — a restore
// must be exact or refused, never approximate.
func RestoreDynamics(d Dynamics, st DynamicsState) error {
	if d == nil {
		return fmt.Errorf("price: cannot restore %s state into a nil Dynamics", st.Solver)
	}
	if d.Solver() != st.Solver {
		return fmt.Errorf("price: checkpoint holds %s solver state, engine runs %s", st.Solver, d.Solver())
	}
	switch v := d.(type) {
	case *GradientProjection:
		return restoreSteps(v.steps, st.Gammas)
	case *DiagonalNewton:
		if err := restoreSteps(v.steps, st.Gammas); err != nil {
			return err
		}
		v.fallbacks = st.Fallbacks
		return nil
	case *PriceDiscovery:
		return restoreSteps(v.steps, st.Gammas)
	case *Anderson:
		if err := restoreSteps(v.steps, st.Gammas); err != nil {
			return err
		}
		m := v.window()
		n := len(v.cnt)
		if st.Window != m {
			return fmt.Errorf("price: checkpoint Anderson window %d, engine configured %d", st.Window, m)
		}
		if len(st.Cnt) != n || len(st.Xs) != n*m || len(st.Fs) != n*m ||
			len(st.Accepted) != n || len(st.PrevAbsF) != n {
			return fmt.Errorf("price: Anderson state sized for %d coordinates, engine has %d", len(st.Cnt), n)
		}
		copy(v.cnt, st.Cnt)
		copy(v.xs, st.Xs)
		copy(v.fs, st.Fs)
		copy(v.accepted, st.Accepted)
		copy(v.prevAbsF, st.PrevAbsF)
		v.fallbacks = st.Fallbacks
		return nil
	}
	return fmt.Errorf("price: %T does not support state restore (Reset-on-restore contract applies)", d)
}
