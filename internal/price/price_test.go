package price

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUpdateResourceDirection(t *testing.T) {
	// Over-subscribed resource: price rises.
	if got := UpdateResource(1, 0.5, 1.0, 1.2); math.Abs(got-1.1) > 1e-12 {
		t.Errorf("congested update = %v, want 1.1", got)
	}
	// Under-subscribed: price falls.
	if got := UpdateResource(1, 0.5, 1.0, 0.8); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("uncongested update = %v, want 0.9", got)
	}
	// Exactly balanced: unchanged.
	if got := UpdateResource(1, 0.5, 1.0, 1.0); got != 1 {
		t.Errorf("balanced update = %v, want 1", got)
	}
}

func TestUpdateResourceProjection(t *testing.T) {
	if got := UpdateResource(0.1, 1.0, 1.0, 0.2); got != 0 {
		t.Errorf("price should project to 0, got %v", got)
	}
}

func TestUpdatePathDirection(t *testing.T) {
	// Path over deadline: price rises.
	if got := UpdatePath(1, 0.5, 90, 45); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("violated path update = %v, want 1.5", got)
	}
	// Path with slack: price falls.
	if got := UpdatePath(1, 0.5, 22.5, 45); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("slack path update = %v, want 0.75", got)
	}
	// Projection.
	if got := UpdatePath(0.01, 1, 10, 100); got != 0 {
		t.Errorf("path price should project to 0, got %v", got)
	}
}

// Property: prices never go negative and move monotonically with congestion.
func TestUpdateProperties(t *testing.T) {
	f := func(muU, gammaU, sumU uint16) bool {
		mu := float64(muU) / 100
		gamma := float64(gammaU)/1000 + 0.001
		sum := float64(sumU) / 100
		next := UpdateResource(mu, gamma, 1.0, sum)
		if next < 0 {
			return false
		}
		if sum > 1 && next < mu {
			return false // congestion must not lower the price
		}
		if sum < 1 && next > mu {
			return false // slack must not raise the price
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedStepSizer(t *testing.T) {
	f := &Fixed{Value: 2.5}
	if f.Gamma() != 2.5 {
		t.Errorf("Gamma = %v, want 2.5", f.Gamma())
	}
	f.Observe(true)
	f.Observe(false)
	f.Reset()
	if f.Gamma() != 2.5 {
		t.Errorf("Fixed must never change, got %v", f.Gamma())
	}
}

func TestAdaptiveDoublesWhileCongested(t *testing.T) {
	a := NewAdaptive(1)
	if a.Gamma() != 1 {
		t.Fatalf("initial Gamma = %v, want 1", a.Gamma())
	}
	a.Observe(true)
	if a.Gamma() != 2 {
		t.Errorf("after 1 congested iter Gamma = %v, want 2", a.Gamma())
	}
	a.Observe(true)
	a.Observe(true)
	if a.Gamma() != 8 {
		t.Errorf("after 3 congested iters Gamma = %v, want 8", a.Gamma())
	}
	a.Observe(false)
	if a.Gamma() != 1 {
		t.Errorf("after decongestion Gamma = %v, want 1 (revert to base)", a.Gamma())
	}
}

func TestAdaptiveCap(t *testing.T) {
	a := NewAdaptive(1)
	a.Max = 4
	for i := 0; i < 10; i++ {
		a.Observe(true)
	}
	if a.Gamma() != 4 {
		t.Errorf("Gamma = %v, want capped at 4", a.Gamma())
	}
	// Default cap applies when Max is zero.
	d := NewAdaptive(1)
	for i := 0; i < 40; i++ {
		d.Observe(true)
	}
	if d.Gamma() != DefaultAdaptiveMax {
		t.Errorf("Gamma = %v, want default cap %v", d.Gamma(), DefaultAdaptiveMax)
	}
}

func TestAdaptiveReset(t *testing.T) {
	a := NewAdaptive(0.5)
	a.Observe(true)
	a.Reset()
	if a.Gamma() != 0.5 {
		t.Errorf("after Reset Gamma = %v, want 0.5", a.Gamma())
	}
}

func TestAdaptiveZeroValueStruct(t *testing.T) {
	// A zero-value Adaptive with only Base set lazily initializes.
	a := &Adaptive{Base: 2}
	if a.Gamma() != 2 {
		t.Errorf("lazy Gamma = %v, want 2", a.Gamma())
	}
	b := &Adaptive{Base: 2}
	b.Observe(true)
	if b.Gamma() != 4 {
		t.Errorf("lazy Observe Gamma = %v, want 4", b.Gamma())
	}
}

func TestNewAdaptivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive base")
		}
	}()
	NewAdaptive(0)
}
