package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is an append-only numeric time series keyed by iteration (or time).
// The experiment harness records utility, share sums and latencies per
// iteration through this type and renders them as figures/CSV.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Append records one (x, y) point. X values are expected to be
// non-decreasing but this is not enforced.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of recorded points.
func (s *Series) Len() int { return len(s.Y) }

// Last returns the final y value, or NaN when empty.
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[len(s.Y)-1]
}

// YRange returns the min and max y over the window [from, to) of indices,
// clamped to the series bounds. It returns NaNs for an empty window.
func (s *Series) YRange(from, to int) (lo, hi float64) {
	if from < 0 {
		from = 0
	}
	if to > len(s.Y) {
		to = len(s.Y)
	}
	if from >= to {
		return math.NaN(), math.NaN()
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range s.Y[from:to] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// TailAmplitude measures oscillation as (max-min)/|mean| over the final
// frac portion of the series (frac in (0,1]). A converged series has small
// tail amplitude; a diverging or oscillating one does not.
func (s *Series) TailAmplitude(frac float64) float64 {
	n := len(s.Y)
	if n == 0 || frac <= 0 {
		return math.NaN()
	}
	from := n - int(float64(n)*frac)
	if from >= n {
		from = n - 1
	}
	lo, hi := s.YRange(from, n)
	mean := 0.0
	for _, v := range s.Y[from:] {
		mean += v
	}
	mean /= float64(n - from)
	if mean == 0 {
		return hi - lo
	}
	return (hi - lo) / math.Abs(mean)
}

// Downsample returns a copy retaining at most n points, evenly spaced,
// always including the first and last points. It returns the series itself
// when it already fits.
func (s *Series) Downsample(n int) *Series {
	if n <= 0 || s.Len() <= n {
		return s
	}
	out := NewSeries(s.Name)
	step := float64(s.Len()-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * step))
		out.Append(s.X[idx], s.Y[idx])
	}
	return out
}

// CSV renders the series as two-column CSV with a header line.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x,%s\n", s.Name)
	for i := range s.Y {
		fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// MergeCSV renders several series sharing the same x axis as a multi-column
// CSV. Series shorter than the longest are padded with empty cells.
func MergeCSV(series ...*Series) string {
	var b strings.Builder
	b.WriteString("x")
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		wroteX := false
		for _, s := range series {
			if !wroteX {
				if i < s.Len() {
					fmt.Fprintf(&b, "%g", s.X[i])
					wroteX = true
				}
			}
			if wroteX {
				break
			}
		}
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
