package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFirstObservation(t *testing.T) {
	e := NewEWMA(0.3)
	if e.Initialized() {
		t.Fatal("fresh EWMA should not be initialized")
	}
	if !math.IsNaN(e.Value()) {
		t.Fatal("fresh EWMA should return NaN")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value = %v, want 10", e.Value())
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(0)
	e.Add(10)
	if got := e.Value(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("value = %v, want 5", got)
	}
	e.Add(10)
	if got := e.Value(); math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("value = %v, want 7.5", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("value = %v, want 42", e.Value())
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(1)
	e.Reset()
	if e.Initialized() || !math.IsNaN(e.Value()) {
		t.Fatal("Reset did not clear state")
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for alpha=%v", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

// Property: the EWMA always lies within [min, max] of the observations.
func TestEWMAWithinEnvelope(t *testing.T) {
	f := func(values []float64) bool {
		e := NewEWMA(0.3)
		lo, hi := math.Inf(1), math.Inf(-1)
		any := false
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			e.Add(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			any = true
		}
		if !any {
			return true
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count != 8 {
		t.Errorf("Count = %d, want 8", s.Count)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Stddev()-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", s.Stddev())
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if !math.IsNaN(s.Variance()) {
		t.Fatal("empty summary variance should be NaN")
	}
}
