package stats

import (
	"fmt"
	"math"
)

// EWMA is an exponentially-weighted moving average. The paper's online model
// error correction (Section 6.3) smooths the additive latency error with
// exponential smoothing; this type implements that smoother.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns a smoother with the given smoothing factor alpha in (0,1].
// Larger alpha weights recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("stats: EWMA alpha must be in (0,1], got %v", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Add folds one observation into the average. The first observation
// initializes the average directly.
func (e *EWMA) Add(v float64) {
	if !e.seen {
		e.value = v
		e.seen = true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value returns the current smoothed value, or NaN before any observation.
func (e *EWMA) Value() float64 {
	if !e.seen {
		return math.NaN()
	}
	return e.value
}

// Initialized reports whether at least one observation has been added.
func (e *EWMA) Initialized() bool { return e.seen }

// Reset forgets all history.
func (e *EWMA) Reset() { e.seen = false; e.value = 0 }

// Summary holds basic aggregate statistics over a set of observations.
type Summary struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	// M2 is the running sum of squared deviations (Welford), from which
	// Variance and Stddev are derived.
	m2 float64
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add folds one observation into the summary using Welford's algorithm.
func (s *Summary) Add(v float64) {
	s.Count++
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
	delta := v - s.Mean
	s.Mean += delta / float64(s.Count)
	s.m2 += delta * (v - s.Mean)
}

// Variance returns the population variance of the observations, or NaN when
// empty.
func (s *Summary) Variance() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.m2 / float64(s.Count)
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }
