package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileEmpty(t *testing.T) {
	if v := Quantile(nil, 0.5); !math.IsNaN(v) {
		t.Fatalf("Quantile(nil) = %v, want NaN", v)
	}
}

func TestQuantileOutOfRange(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if v := Quantile([]float64{1, 2}, q); !math.IsNaN(v) {
			t.Errorf("Quantile(q=%v) = %v, want NaN", q, v)
		}
	}
}

func TestQuantileSingle(t *testing.T) {
	for _, q := range []float64{0, 0.5, 1} {
		if v := Quantile([]float64{7}, q); v != 7 {
			t.Errorf("Quantile([7], %v) = %v, want 7", q, v)
		}
	}
}

func TestQuantileKnownValues(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(samples, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	samples := []float64{3, 1, 2}
	Quantile(samples, 0.5)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", samples)
	}
}

// Property: the quantile is always within [min, max] and monotone in q.
func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64, q1u, q2u uint8) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		q1 := float64(q1u) / 255
		q2 := float64(q2u) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(samples, q1), Quantile(samples, q2)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		lo, hi := sorted[0], sorted[len(sorted)-1]
		return v1 >= lo && v2 <= hi && v1 <= v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirExactBelowCapacity(t *testing.T) {
	r := NewReservoir(100)
	for i := 1; i <= 50; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0.5); math.Abs(got-25.5) > 1e-9 {
		t.Errorf("median = %v, want 25.5", got)
	}
	if r.Count() != 50 {
		t.Errorf("Count = %d, want 50", r.Count())
	}
	if got := r.Mean(); math.Abs(got-25.5) > 1e-9 {
		t.Errorf("mean = %v, want 25.5", got)
	}
}

func TestReservoirSamplingApproximates(t *testing.T) {
	r := NewReservoir(2000)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100000; i++ {
		r.Add(rng.Float64())
	}
	if got := r.Quantile(0.9); math.Abs(got-0.9) > 0.05 {
		t.Errorf("p90 of U(0,1) = %v, want ~0.9", got)
	}
	if r.Count() != 100000 {
		t.Errorf("Count = %d, want 100000", r.Count())
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(4)
	r.Add(1)
	r.Reset()
	if r.Count() != 0 || !math.IsNaN(r.Quantile(0.5)) {
		t.Fatal("Reset did not clear reservoir")
	}
}

func TestReservoirSnapshotIsCopy(t *testing.T) {
	r := NewReservoir(4)
	r.Add(1)
	snap := r.Snapshot()
	snap[0] = 99
	if r.Quantile(0.5) == 99 {
		t.Fatal("Snapshot aliases internal storage")
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive capacity")
		}
	}()
	NewReservoir(0)
}

func TestP2MatchesExactOnUniform(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.99} {
		p := NewP2(q)
		rng := rand.New(rand.NewSource(7))
		var all []float64
		for i := 0; i < 50000; i++ {
			v := rng.Float64() * 100
			p.Add(v)
			all = append(all, v)
		}
		exact := Quantile(all, q)
		if math.Abs(p.Value()-exact) > 2.0 {
			t.Errorf("P2(%v) = %v, exact = %v", q, p.Value(), exact)
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	p := NewP2(0.5)
	if !math.IsNaN(p.Value()) {
		t.Error("empty P2 should return NaN")
	}
	p.Add(3)
	p.Add(1)
	p.Add(2)
	if got := p.Value(); math.Abs(got-2) > 1e-12 {
		t.Errorf("small-sample median = %v, want 2", got)
	}
	if p.Count() != 3 {
		t.Errorf("Count = %d, want 3", p.Count())
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for q=%v", q)
				}
			}()
			NewP2(q)
		}()
	}
}

// Property: P2 estimate stays within the observed min/max envelope.
func TestP2WithinEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewP2(0.75)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 200; i++ {
			v := rng.NormFloat64() * 10
			p.Add(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		v := p.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
