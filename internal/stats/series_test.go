package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAppendAndLast(t *testing.T) {
	s := NewSeries("utility")
	if !math.IsNaN(s.Last()) {
		t.Fatal("empty series Last should be NaN")
	}
	s.Append(0, 1)
	s.Append(1, 2)
	if s.Len() != 2 || s.Last() != 2 {
		t.Fatalf("Len=%d Last=%v, want 2, 2", s.Len(), s.Last())
	}
}

func TestSeriesYRange(t *testing.T) {
	s := NewSeries("x")
	for i, v := range []float64{5, 1, 9, 3} {
		s.Append(float64(i), v)
	}
	lo, hi := s.YRange(0, 4)
	if lo != 1 || hi != 9 {
		t.Errorf("YRange = %v,%v want 1,9", lo, hi)
	}
	lo, hi = s.YRange(2, 4)
	if lo != 3 || hi != 9 {
		t.Errorf("YRange tail = %v,%v want 3,9", lo, hi)
	}
	if lo, _ := s.YRange(4, 4); !math.IsNaN(lo) {
		t.Error("empty window should return NaN")
	}
	// Out-of-bounds windows are clamped.
	lo, hi = s.YRange(-5, 100)
	if lo != 1 || hi != 9 {
		t.Errorf("clamped YRange = %v,%v want 1,9", lo, hi)
	}
}

func TestSeriesTailAmplitude(t *testing.T) {
	flat := NewSeries("flat")
	for i := 0; i < 100; i++ {
		flat.Append(float64(i), 50)
	}
	if a := flat.TailAmplitude(0.2); a > 1e-12 {
		t.Errorf("flat tail amplitude = %v, want 0", a)
	}

	osc := NewSeries("osc")
	for i := 0; i < 100; i++ {
		y := 50.0
		if i%2 == 0 {
			y = 150
		}
		osc.Append(float64(i), y)
	}
	if a := osc.TailAmplitude(0.2); a < 0.5 {
		t.Errorf("oscillating tail amplitude = %v, want >= 0.5", a)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("s")
	for i := 0; i < 1000; i++ {
		s.Append(float64(i), float64(i))
	}
	d := s.Downsample(11)
	if d.Len() != 11 {
		t.Fatalf("downsampled Len = %d, want 11", d.Len())
	}
	if d.X[0] != 0 || d.X[10] != 999 {
		t.Errorf("endpoints = %v,%v want 0,999", d.X[0], d.X[10])
	}
	// Small series are returned unchanged.
	small := NewSeries("small")
	small.Append(0, 0)
	if small.Downsample(10) != small {
		t.Error("small series should be returned as-is")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("u")
	s.Append(0, 1.5)
	s.Append(1, 2)
	got := s.CSV()
	want := "x,u\n0,1.5\n1,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestMergeCSV(t *testing.T) {
	a := NewSeries("a")
	a.Append(0, 1)
	a.Append(1, 2)
	b := NewSeries("b")
	b.Append(0, 3)
	got := MergeCSV(a, b)
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3: %q", len(lines), got)
	}
	if lines[0] != "x,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,3" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "1,2," {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestConvergenceDetector(t *testing.T) {
	d := NewConvergenceDetector(0.01, 3)
	// Large changes: never converges.
	vals := []float64{1, 2, 4, 8}
	for _, v := range vals {
		if d.Observe(v) {
			t.Fatal("converged on doubling sequence")
		}
	}
	// Now stabilize.
	for i := 0; i < 5; i++ {
		d.Observe(8.0001)
	}
	if !d.Converged() {
		t.Fatal("did not converge on stable sequence")
	}
	at := d.ConvergedAt()
	if at <= 4 {
		t.Errorf("ConvergedAt = %d, want > 4", at)
	}
	d.Reset()
	if d.Converged() || d.ConvergedAt() != -1 {
		t.Fatal("Reset did not clear detector")
	}
}

func TestConvergenceDetectorWindowResets(t *testing.T) {
	d := NewConvergenceDetector(0.01, 3)
	d.Observe(100)
	d.Observe(100) // stable 1
	d.Observe(100) // stable 2
	d.Observe(200) // breaks the window
	d.Observe(200)
	d.Observe(200)
	if d.Converged() {
		t.Fatal("should need 3 consecutive stable steps after the break")
	}
	d.Observe(200)
	if !d.Converged() {
		t.Fatal("should converge after 3 stable steps")
	}
}

func TestConvergenceDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConvergenceDetector(0, 1)
}
