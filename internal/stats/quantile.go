// Package stats provides the statistical substrate used throughout the LLA
// reproduction: exact and streaming quantile estimation, exponential
// smoothing, time-series recording and convergence detection.
//
// The LLA paper expresses timeliness constraints over configurable latency
// percentiles (Section 2.1) and drives its online model error correction
// from high-percentile latency samples (Section 6.3); this package supplies
// the estimators those components rely on.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile computes the q-quantile (0 <= q <= 1) of the given samples using
// linear interpolation between closest ranks. It does not mutate the input.
// It returns NaN for an empty sample set or an out-of-range q.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted interpolates the q-quantile of an ascending-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Reservoir is a bounded-memory sample recorder. Up to cap samples are kept
// exactly; beyond that, uniform reservoir sampling (Vitter's algorithm R with
// a deterministic LCG) keeps an unbiased subset. Quantiles over the reservoir
// approximate quantiles over the full stream.
type Reservoir struct {
	cap      int
	seen     int
	samples  []float64
	rngState uint64
}

// NewReservoir returns a reservoir holding at most capacity samples.
// Capacity must be positive.
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		panic(fmt.Sprintf("stats: reservoir capacity must be positive, got %d", capacity))
	}
	return &Reservoir{cap: capacity, samples: make([]float64, 0, capacity), rngState: 0x9e3779b97f4a7c15}
}

// nextRand returns a pseudo-random uint64 from a splitmix64 generator. A
// deterministic local generator keeps experiment runs reproducible without
// depending on math/rand global state.
func (r *Reservoir) nextRand() uint64 {
	r.rngState += 0x9e3779b97f4a7c15
	z := r.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add records one sample.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	// Replace a random existing slot with probability cap/seen.
	j := int(r.nextRand() % uint64(r.seen))
	if j < r.cap {
		r.samples[j] = v
	}
}

// Count reports how many samples have been offered to the reservoir.
func (r *Reservoir) Count() int { return r.seen }

// Quantile estimates the q-quantile of the observed stream.
func (r *Reservoir) Quantile(q float64) float64 {
	return Quantile(r.samples, q)
}

// Mean returns the mean of the retained samples.
func (r *Reservoir) Mean() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range r.samples {
		sum += v
	}
	return sum / float64(len(r.samples))
}

// Reset discards all samples but keeps the capacity and RNG state.
func (r *Reservoir) Reset() {
	r.seen = 0
	r.samples = r.samples[:0]
}

// Snapshot returns a copy of the retained samples.
func (r *Reservoir) Snapshot() []float64 {
	out := make([]float64, len(r.samples))
	copy(out, r.samples)
	return out
}

// P2 is the P² (Jain & Chlamtac) streaming quantile estimator: constant
// memory, no sample retention. It tracks a single quantile q.
type P2 struct {
	q       float64
	count   int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64
	initial []float64
}

// NewP2 returns a streaming estimator for the q-quantile, 0 < q < 1.
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: P2 quantile must be in (0,1), got %v", q))
	}
	p := &P2{q: q}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add feeds one observation to the estimator.
func (p *P2) Add(v float64) {
	p.count++
	if p.count <= 5 {
		p.initial = append(p.initial, v)
		if p.count == 5 {
			sort.Float64s(p.initial)
			for i := 0; i < 5; i++ {
				p.heights[i] = p.initial[i]
				p.pos[i] = float64(i + 1)
				p.want[i] = 1 + 4*p.incr[i]
			}
			p.initial = nil
		}
		return
	}

	// Locate cell k such that heights[k] <= v < heights[k+1].
	var k int
	switch {
	case v < p.heights[0]:
		p.heights[0] = v
		k = 0
	case v >= p.heights[4]:
		p.heights[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < p.heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

// parabolic implements the piecewise-parabolic (P²) height update.
func (p *P2) parabolic(i int, d float64) float64 {
	num1 := p.pos[i] - p.pos[i-1] + d
	num2 := p.pos[i+1] - p.pos[i] - d
	den := p.pos[i+1] - p.pos[i-1]
	t1 := (p.heights[i+1] - p.heights[i]) / (p.pos[i+1] - p.pos[i])
	t2 := (p.heights[i] - p.heights[i-1]) / (p.pos[i] - p.pos[i-1])
	return p.heights[i] + d/den*(num1*t1+num2*t2)
}

// linear is the fallback linear height update.
func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Count reports how many observations have been added.
func (p *P2) Count() int { return p.count }

// Value returns the current quantile estimate. Before five observations have
// been seen it falls back to an exact small-sample quantile; with no samples
// it returns NaN.
func (p *P2) Value() float64 {
	if p.count == 0 {
		return math.NaN()
	}
	if p.count < 5 {
		return Quantile(p.initial, p.q)
	}
	return p.heights[2]
}
