package stats

import (
	"fmt"
	"math"
)

// ConvergenceDetector decides whether a scalar iterate (typically the
// aggregate utility) has converged: the relative change must stay below a
// tolerance for a configured number of consecutive iterations. The paper's
// prototype stops iterating "until the utility improvement from the previous
// iteration is below 1%" (Section 6.4); this generalizes that rule with a
// stability window.
type ConvergenceDetector struct {
	relTol float64
	window int

	prev     float64
	havePrev bool
	stable   int
	steps    int
	// convergedAt records the iteration index at which the window was first
	// satisfied; -1 while unconverged.
	convergedAt int
}

// NewConvergenceDetector returns a detector requiring |Δ|/max(|prev|,eps) <
// relTol for window consecutive observations.
func NewConvergenceDetector(relTol float64, window int) *ConvergenceDetector {
	if relTol <= 0 || window <= 0 {
		panic(fmt.Sprintf("stats: invalid convergence params relTol=%v window=%d", relTol, window))
	}
	return &ConvergenceDetector{relTol: relTol, window: window, convergedAt: -1}
}

// Observe feeds the next iterate value and reports whether the detector is
// (now or previously) converged.
func (c *ConvergenceDetector) Observe(v float64) bool {
	c.steps++
	if c.havePrev {
		denom := math.Max(math.Abs(c.prev), 1e-12)
		if math.Abs(v-c.prev)/denom < c.relTol {
			c.stable++
		} else {
			c.stable = 0
		}
		if c.stable >= c.window && c.convergedAt < 0 {
			c.convergedAt = c.steps
		}
	}
	c.prev = v
	c.havePrev = true
	return c.convergedAt >= 0
}

// Converged reports whether the stability window has been satisfied.
func (c *ConvergenceDetector) Converged() bool { return c.convergedAt >= 0 }

// ConvergedAt returns the 1-based observation index at which convergence was
// first declared, or -1 if not converged.
func (c *ConvergenceDetector) ConvergedAt() int { return c.convergedAt }

// Reset clears all detector state.
func (c *ConvergenceDetector) Reset() {
	c.havePrev = false
	c.stable = 0
	c.steps = 0
	c.convergedAt = -1
}
