package stats

import "testing"

func BenchmarkReservoirAdd(b *testing.B) {
	r := NewReservoir(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 1000))
	}
}

func BenchmarkP2Add(b *testing.B) {
	p := NewP2(0.95)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(float64(i % 1000))
	}
}

func BenchmarkQuantileExact(b *testing.B) {
	samples := make([]float64, 4096)
	for i := range samples {
		samples[i] = float64((i * 2654435761) % 10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantile(samples, 0.95)
	}
}
