package utility

import (
	"math"
	"testing"
	"testing/quick"

	"lla/internal/task"
)

func TestLinearCurve(t *testing.T) {
	c := Linear{K: 2, CMs: 45}
	if got := c.Value(0); got != 90 {
		t.Errorf("Value(0) = %v, want 90", got)
	}
	if got := c.Value(45); got != 45 {
		t.Errorf("Value(45) = %v, want 45", got)
	}
	if got := c.Slope(10); got != -1 {
		t.Errorf("Slope = %v, want -1", got)
	}
	if err := ValidateCurve(c, 100); err != nil {
		t.Errorf("ValidateCurve: %v", err)
	}
}

func TestNegLatency(t *testing.T) {
	c := NegLatency{}
	if c.Value(30) != -30 || c.Slope(5) != -1 {
		t.Errorf("NegLatency misbehaves: Value(30)=%v Slope=%v", c.Value(30), c.Slope(5))
	}
	if err := ValidateCurve(c, 1000); err != nil {
		t.Errorf("ValidateCurve: %v", err)
	}
}

func TestQuadratic(t *testing.T) {
	c := Quadratic{A: 100, B: 0.01}
	if got := c.Value(10); math.Abs(got-99) > 1e-12 {
		t.Errorf("Value(10) = %v, want 99", got)
	}
	if got := c.Slope(10); math.Abs(got-(-0.2)) > 1e-12 {
		t.Errorf("Slope(10) = %v, want -0.2", got)
	}
	if err := ValidateCurve(c, 100); err != nil {
		t.Errorf("ValidateCurve: %v", err)
	}
}

func TestExpPenalty(t *testing.T) {
	c := ExpPenalty{A: 10, B: 1, Tau: 20}
	if got := c.Value(0); math.Abs(got-10) > 1e-12 {
		t.Errorf("Value(0) = %v, want 10", got)
	}
	if c.Slope(0) >= 0 || c.Slope(40) >= c.Slope(0) {
		t.Errorf("ExpPenalty slopes not decreasing: %v, %v", c.Slope(0), c.Slope(40))
	}
	if err := ValidateCurve(c, 100); err != nil {
		t.Errorf("ValidateCurve: %v", err)
	}
}

func TestPiecewiseLinear(t *testing.T) {
	// Concave: slopes -1 then -3.
	c, err := NewPiecewiseLinear([]float64{0, 10, 20}, []float64{100, 90, 60})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Value(5); math.Abs(got-95) > 1e-12 {
		t.Errorf("Value(5) = %v, want 95", got)
	}
	if got := c.Value(15); math.Abs(got-75) > 1e-12 {
		t.Errorf("Value(15) = %v, want 75", got)
	}
	if got := c.Slope(5); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("Slope(5) = %v, want -1", got)
	}
	if got := c.Slope(15); math.Abs(got-(-3)) > 1e-12 {
		t.Errorf("Slope(15) = %v, want -3", got)
	}
	// Extrapolation beyond the last knot uses the final slope.
	if got := c.Value(30); math.Abs(got-30) > 1e-12 {
		t.Errorf("Value(30) = %v, want 30", got)
	}
	if err := ValidateCurve(c, 30); err != nil {
		t.Errorf("ValidateCurve: %v", err)
	}
}

func TestPiecewiseLinearRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"length mismatch", []float64{0, 1}, []float64{1}},
		{"too few knots", []float64{0}, []float64{1}},
		{"non-increasing x", []float64{0, 0}, []float64{1, 0}},
		{"increasing y", []float64{0, 1}, []float64{0, 1}},
		{"convex", []float64{0, 1, 2}, []float64{100, 90, 85}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewPiecewiseLinear(c.xs, c.ys); err == nil {
				t.Errorf("NewPiecewiseLinear(%v,%v) should fail", c.xs, c.ys)
			}
		})
	}
}

func TestValidateCurveRejectsConvex(t *testing.T) {
	// e^-x style decay is convex; ValidateCurve must reject it.
	if err := ValidateCurve(convexDecay{}, 10); err == nil {
		t.Error("ValidateCurve should reject a convex curve")
	}
	if err := ValidateCurve(increasing{}, 10); err == nil {
		t.Error("ValidateCurve should reject an increasing curve")
	}
}

type convexDecay struct{}

func (convexDecay) Value(x float64) float64 { return math.Exp(-x) }
func (convexDecay) Slope(x float64) float64 { return -math.Exp(-x) }

type increasing struct{}

func (increasing) Value(x float64) float64 { return x }
func (increasing) Slope(x float64) float64 { return 1 }

// Property: for all valid curves, Value decreases and Slope is non-positive
// on random points.
func TestCurveMonotonicityProperty(t *testing.T) {
	curves := []Curve{
		Linear{K: 2, CMs: 50},
		NegLatency{},
		Quadratic{A: 10, B: 0.5},
		ExpPenalty{A: 5, B: 2, Tau: 7},
	}
	f := func(au, bu uint16) bool {
		a := float64(au) / 100
		b := float64(bu) / 100
		if a > b {
			a, b = b, a
		}
		for _, c := range curves {
			if c.Value(a) < c.Value(b)-1e-9 {
				return false
			}
			if c.Slope(b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildDiamond(t *testing.T) *task.Task {
	t.Helper()
	return task.NewBuilder("d", 100).
		Subtask("a", "r0", 1).Subtask("b", "r1", 1).
		Subtask("c", "r2", 1).Subtask("d", "r3", 1).
		Edge("a", "b").Edge("a", "c").Edge("b", "d").Edge("c", "d").
		MustBuild()
}

func TestTaskUtilityValueAndSlope(t *testing.T) {
	tk := buildDiamond(t)
	u, err := NewTaskUtility(tk, task.WeightPathNormalized, Linear{K: 2, CMs: 100})
	if err != nil {
		t.Fatal(err)
	}
	lats := []float64{10, 20, 30, 40}
	// Normalized weights: {1, .5, .5, 1} -> aggregate = 10+10+15+40 = 75.
	agg, err := u.Aggregate(lats)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg-75) > 1e-12 {
		t.Fatalf("aggregate = %v, want 75", agg)
	}
	v, err := u.Value(lats)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-125) > 1e-12 {
		t.Errorf("value = %v, want 125", v)
	}
	if got := u.PartialSlope(1, agg); math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("PartialSlope(1) = %v, want -0.5", got)
	}
	if got := u.PartialSlope(0, agg); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("PartialSlope(0) = %v, want -1", got)
	}
	if u.Mode() != task.WeightPathNormalized {
		t.Errorf("Mode = %v", u.Mode())
	}
	if u.NumSubtasks() != 4 {
		t.Errorf("NumSubtasks = %d, want 4", u.NumSubtasks())
	}
	if u.Weight(3) != 1 {
		t.Errorf("Weight(3) = %v, want 1", u.Weight(3))
	}
	if u.Curve() == nil {
		t.Error("Curve() returned nil")
	}
	if _, err := u.Value([]float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestTaskUtilityBadMode(t *testing.T) {
	tk := buildDiamond(t)
	if _, err := NewTaskUtility(tk, task.WeightMode(0), Linear{}); err == nil {
		t.Error("invalid mode should error")
	}
}

func TestSubtaskPercentile(t *testing.T) {
	// Single-subtask path: the subtask percentile is the path percentile.
	q, err := SubtaskPercentile(99, 1)
	if err != nil || math.Abs(q-99) > 1e-9 {
		t.Fatalf("SubtaskPercentile(99,1) = %v, %v", q, err)
	}
	// Two subtasks at percentile q compose to q^2/100 (paper Section 2.1):
	// verify round trip for several path lengths.
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, p := range []float64{50, 90, 99, 99.9} {
			q, err := SubtaskPercentile(p, n)
			if err != nil {
				t.Fatal(err)
			}
			if q < p || q > 100 {
				t.Errorf("SubtaskPercentile(%v,%d) = %v outside [p,100]", p, n, q)
			}
			back, err := ComposedPercentile(q, n)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("round trip p=%v n=%d: got %v", p, n, back)
			}
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := SubtaskPercentile(0, 2); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := SubtaskPercentile(101, 2); err == nil {
		t.Error("p=101 should fail")
	}
	if _, err := SubtaskPercentile(50, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ComposedPercentile(0, 2); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := ComposedPercentile(50, -1); err == nil {
		t.Error("n<0 should fail")
	}
}

// Paper example: lat_a^p + lat_b^p at the same number of released jobs
// yields the p²/100 percentile; for p=50 and n=2, per-subtask percentile
// must be sqrt(50)*sqrt(100) ≈ 70.7 to recover an end-to-end median.
func TestPercentilePaperExample(t *testing.T) {
	q, err := SubtaskPercentile(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(50) * math.Sqrt(100)
	if math.Abs(q-want) > 1e-9 {
		t.Errorf("q = %v, want %v", q, want)
	}
}
