package utility

import (
	"fmt"

	"lla/internal/task"
)

// TaskUtility evaluates a task's utility as curve(Σ_s w_s · lat_s), the
// tractable surrogate the paper introduces in Section 3.2 to replace the
// non-concave critical-path formulation of Equation 1. The weights are
// derived from the subtask graph by a task.WeightMode.
type TaskUtility struct {
	curve   Curve
	weights []float64
	mode    task.WeightMode
}

// NewTaskUtility derives the weights for the given task and mode and binds
// them to the curve.
func NewTaskUtility(t *task.Task, mode task.WeightMode, curve Curve) (*TaskUtility, error) {
	w, err := t.Weights(mode)
	if err != nil {
		return nil, fmt.Errorf("utility: deriving weights for task %s: %w", t.Name, err)
	}
	return &TaskUtility{curve: curve, weights: w, mode: mode}, nil
}

// Mode reports the weight mode the utility was built with.
func (u *TaskUtility) Mode() task.WeightMode { return u.mode }

// Curve returns the underlying latency-to-benefit curve.
func (u *TaskUtility) Curve() Curve { return u.curve }

// Weight returns the weight of subtask s.
func (u *TaskUtility) Weight(s int) float64 { return u.weights[s] }

// NumSubtasks returns the number of subtasks the utility covers.
func (u *TaskUtility) NumSubtasks() int { return len(u.weights) }

// Aggregate returns the weighted latency sum Σ_s w_s · lat_s.
func (u *TaskUtility) Aggregate(latMs []float64) (float64, error) {
	return task.WeightedLatencyMs(u.weights, latMs)
}

// Value returns the utility at the given subtask latencies.
func (u *TaskUtility) Value(latMs []float64) (float64, error) {
	agg, err := u.Aggregate(latMs)
	if err != nil {
		return 0, err
	}
	return u.curve.Value(agg), nil
}

// PartialSlope returns ∂U/∂lat_s = curve'(Σ w·lat) · w_s, the quantity the
// task controller's stationarity condition (Equation 7) needs.
func (u *TaskUtility) PartialSlope(s int, aggregateMs float64) float64 {
	return u.curve.Slope(aggregateMs) * u.weights[s]
}
