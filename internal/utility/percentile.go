package utility

import (
	"fmt"
	"math"
)

// SubtaskPercentile implements the percentile-composition rule of Section
// 2.1: if a task's utility is specified over the p-th percentile of its
// end-to-end latency and a path has n subtasks, each subtask latency bound
// must be taken at the q-th percentile with
//
//	q = p^(1/n) * 100^((n-1)/n),
//
// so that (q/100)^n = p/100 — i.e. n independent per-subtask bounds compose
// into the desired end-to-end percentile. Percentiles are expressed in
// [0, 100]; n must be positive.
func SubtaskPercentile(pathPercentile float64, n int) (float64, error) {
	if pathPercentile <= 0 || pathPercentile > 100 {
		return 0, fmt.Errorf("utility: path percentile %v outside (0,100]", pathPercentile)
	}
	if n <= 0 {
		return 0, fmt.Errorf("utility: path length must be positive, got %d", n)
	}
	nf := float64(n)
	q := math.Pow(pathPercentile, 1/nf) * math.Pow(100, (nf-1)/nf)
	return q, nil
}

// ComposedPercentile is the inverse check: given a per-subtask percentile q
// applied uniformly along a path of n subtasks, it returns the end-to-end
// percentile p = 100 * (q/100)^n that the summed bounds guarantee.
func ComposedPercentile(subtaskPercentile float64, n int) (float64, error) {
	if subtaskPercentile <= 0 || subtaskPercentile > 100 {
		return 0, fmt.Errorf("utility: subtask percentile %v outside (0,100]", subtaskPercentile)
	}
	if n <= 0 {
		return 0, fmt.Errorf("utility: path length must be positive, got %d", n)
	}
	return 100 * math.Pow(subtaskPercentile/100, float64(n)), nil
}
