// Package utility implements the time-utility functions of the LLA paper
// (Sections 2.1 and 3.2): concave, non-increasing curves mapping an
// aggregate task latency to a benefit value, the sum / path-weighted task
// aggregation variants, and the latency-percentile composition rule.
package utility

import (
	"fmt"
	"math"
	"sort"
)

// Curve maps an aggregate latency (milliseconds) to a utility value. LLA
// requires curves that are non-increasing, concave and continuously
// differentiable below the critical time (Section 3.2).
type Curve interface {
	// Value returns the utility at aggregate latency x.
	Value(x float64) float64
	// Slope returns dValue/dx at x; it is <= 0 for a valid curve and
	// non-increasing in x (concavity).
	Slope(x float64) float64
}

// Linear is the curve f(x) = K*C - x used throughout the paper's
// simulations (Section 5.2 uses K=2). Its slope is the constant -1, which
// makes the task controllers' latency allocation closed-form.
type Linear struct {
	// K scales the critical time to set the zero-latency utility K*C.
	K float64
	// CMs is the task's critical time in milliseconds.
	CMs float64
}

var _ Curve = Linear{}

// Value implements Curve.
func (l Linear) Value(x float64) float64 { return l.K*l.CMs - x }

// Slope implements Curve.
func (l Linear) Slope(float64) float64 { return -1 }

// NegLatency is the curve f(x) = -x used by the paper's prototype
// experiment (Section 6.2). It is Linear with K=0 but kept as its own type
// for readability at call sites.
type NegLatency struct{}

var _ Curve = NegLatency{}

// Value implements Curve.
func (NegLatency) Value(x float64) float64 { return -x }

// Slope implements Curve.
func (NegLatency) Slope(float64) float64 { return -1 }

// Quadratic is the concave curve f(x) = A - B*x^2 (B > 0): benefit decays
// slowly at low latency and increasingly fast as latency grows, modeling
// elastic tasks with soft preferences near zero latency.
type Quadratic struct {
	A float64
	B float64
}

var _ Curve = Quadratic{}

// Value implements Curve.
func (q Quadratic) Value(x float64) float64 { return q.A - q.B*x*x }

// Slope implements Curve.
func (q Quadratic) Slope(x float64) float64 { return -2 * q.B * x }

// ExpPenalty is the concave curve f(x) = A - B*(e^(x/Tau) - 1) (B, Tau > 0):
// near-flat for x << Tau, then sharply decreasing. With small Tau relative
// to the critical time it approximates an inelastic (hard-deadline) task
// while remaining concave and continuously differentiable, as the paper
// requires for accommodating inelastic tasks.
type ExpPenalty struct {
	A   float64
	B   float64
	Tau float64
}

var _ Curve = ExpPenalty{}

// Value implements Curve.
func (e ExpPenalty) Value(x float64) float64 {
	return e.A - e.B*(math.Exp(x/e.Tau)-1)
}

// Slope implements Curve.
func (e ExpPenalty) Slope(x float64) float64 {
	return -e.B / e.Tau * math.Exp(x/e.Tau)
}

// PiecewiseLinear is a concave piecewise-linear curve defined by knots with
// strictly increasing x and non-increasing, progressively steeper slopes.
// Outside the knot range the first/last segment is extrapolated.
type PiecewiseLinear struct {
	xs []float64
	ys []float64
}

var _ Curve = (*PiecewiseLinear)(nil)

// NewPiecewiseLinear builds a piecewise-linear curve through the given
// (x, y) knots. It validates that x values strictly increase, that the curve
// is non-increasing, and that successive slopes are non-increasing
// (concavity). At least two knots are required.
func NewPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("utility: knot length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("utility: need at least 2 knots, got %d", len(xs))
	}
	prevSlope := math.Inf(1)
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("utility: knot x values must strictly increase (%v after %v)", xs[i], xs[i-1])
		}
		slope := (ys[i] - ys[i-1]) / (xs[i] - xs[i-1])
		if slope > 0 {
			return nil, fmt.Errorf("utility: curve must be non-increasing, segment %d has slope %v", i, slope)
		}
		if slope > prevSlope+1e-12 {
			return nil, fmt.Errorf("utility: curve must be concave, slope rises from %v to %v at segment %d", prevSlope, slope, i)
		}
		prevSlope = slope
	}
	p := &PiecewiseLinear{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	}
	return p, nil
}

// segment returns the index i of the segment [xs[i], xs[i+1]] containing x,
// clamped to the first/last segment for out-of-range x.
func (p *PiecewiseLinear) segment(x float64) int {
	i := sort.SearchFloat64s(p.xs, x) - 1
	if i < 0 {
		i = 0
	}
	if i > len(p.xs)-2 {
		i = len(p.xs) - 2
	}
	return i
}

// Value implements Curve.
func (p *PiecewiseLinear) Value(x float64) float64 {
	i := p.segment(x)
	slope := (p.ys[i+1] - p.ys[i]) / (p.xs[i+1] - p.xs[i])
	return p.ys[i] + slope*(x-p.xs[i])
}

// Slope implements Curve.
func (p *PiecewiseLinear) Slope(x float64) float64 {
	i := p.segment(x)
	return (p.ys[i+1] - p.ys[i]) / (p.xs[i+1] - p.xs[i])
}

// ValidateCurve numerically spot-checks that a curve is non-increasing and
// concave over (0, maxX]: used by workload validation and property tests to
// reject curves that would break LLA's convergence assumptions.
func ValidateCurve(c Curve, maxX float64) error {
	const steps = 64
	prevSlope := math.Inf(1)
	for i := 1; i <= steps; i++ {
		x := maxX * float64(i) / steps
		s := c.Slope(x)
		if s > 1e-9 {
			return fmt.Errorf("utility: slope %v > 0 at x=%v (curve must be non-increasing)", s, x)
		}
		if s > prevSlope+1e-9 {
			return fmt.Errorf("utility: slope rises from %v to %v at x=%v (curve must be concave)", prevSlope, s, x)
		}
		prevSlope = s
	}
	return nil
}
