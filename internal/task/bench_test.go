package task

import "testing"

// benchTask builds a 4-layer DAG with fan-out, ~16 subtasks.
func benchTask(b *testing.B) *Task {
	b.Helper()
	t := New("bench", 1000)
	id := 0
	var prev []int
	for layer := 0; layer < 4; layer++ {
		width := 4
		if layer == 0 {
			width = 1 // unique root
		}
		var cur []int
		for k := 0; k < width; k++ {
			idx := t.AddSubtask(Subtask{Name: "s" + string(rune('a'+id)), Resource: "r", ExecMs: 1})
			id++
			cur = append(cur, idx)
			for _, p := range prev {
				_ = t.AddEdge(p, idx)
			}
		}
		prev = cur
	}
	return t
}

func BenchmarkPathsEnumeration(b *testing.B) {
	t := benchTask(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.pathsOK = false // force recomputation
		if _, err := t.Paths(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightsPathNormalized(b *testing.B) {
	t := benchTask(b)
	if _, err := t.Paths(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Weights(WeightPathNormalized); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	t := benchTask(b)
	lats := make([]float64, len(t.Subtasks))
	for i := range lats {
		lats[i] = float64(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := t.CriticalPathMs(lats); err != nil {
			b.Fatal(err)
		}
	}
}
