package task

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the DAG a -> {b, c} -> d used across tests.
func diamond(t *testing.T) *Task {
	t.Helper()
	tk, err := NewBuilder("diamond", 100).
		Trigger(Periodic(50)).
		Subtask("a", "r0", 1).
		Subtask("b", "r1", 2).
		Subtask("c", "r2", 3).
		Subtask("d", "r3", 4).
		Edge("a", "b").Edge("a", "c").Edge("b", "d").Edge("c", "d").
		Build()
	if err != nil {
		t.Fatalf("build diamond: %v", err)
	}
	return tk
}

func TestRootAndLeaves(t *testing.T) {
	tk := diamond(t)
	root, err := tk.Root()
	if err != nil || root != 0 {
		t.Fatalf("Root = %d, %v; want 0, nil", root, err)
	}
	leaves := tk.Leaves()
	if len(leaves) != 1 || leaves[0] != 3 {
		t.Fatalf("Leaves = %v, want [3]", leaves)
	}
}

func TestPathsDiamond(t *testing.T) {
	tk := diamond(t)
	paths, err := tk.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2 paths", paths)
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 3 || len(p) != 3 {
			t.Errorf("unexpected path %v", p)
		}
	}
}

func TestPathsCached(t *testing.T) {
	tk := diamond(t)
	p1, _ := tk.Paths()
	p2, _ := tk.Paths()
	if &p1[0] != &p2[0] {
		t.Error("Paths should be cached between calls")
	}
	tk.AddSubtask(Subtask{Name: "e", Resource: "r4", ExecMs: 1})
	tk.MustEdge(3, 4)
	p3, _ := tk.Paths()
	if len(p3[0]) == len(p1[0]) {
		t.Error("mutation should invalidate the path cache")
	}
}

func TestPathCountAndWeights(t *testing.T) {
	tk := diamond(t)
	counts, err := tk.PathCount()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 1, 2}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("count[%d] = %d, want %d", i, c, want[i])
		}
	}

	wsum, _ := tk.Weights(WeightSum)
	for i, w := range wsum {
		if w != 1 {
			t.Errorf("sum weight[%d] = %v, want 1", i, w)
		}
	}
	wnorm, _ := tk.Weights(WeightPathNormalized)
	wantNorm := []float64{1, 0.5, 0.5, 1}
	for i, w := range wnorm {
		if math.Abs(w-wantNorm[i]) > 1e-12 {
			t.Errorf("normalized weight[%d] = %v, want %v", i, w, wantNorm[i])
		}
	}
	wraw, _ := tk.Weights(WeightPathRaw)
	for i := range wraw {
		if math.Abs(wraw[i]-float64(want[i])) > 1e-12 {
			t.Errorf("raw weight[%d] = %v, want %v", i, wraw[i], want[i])
		}
	}
	if _, err := tk.Weights(WeightMode(99)); err == nil {
		t.Error("unknown weight mode should error")
	}
}

// Property: the normalized weighted latency sum equals the mean path latency
// for arbitrary latency vectors.
func TestNormalizedWeightsGiveMeanPathLatency(t *testing.T) {
	tk := diamond(t)
	weights, _ := tk.Weights(WeightPathNormalized)
	paths, _ := tk.Paths()
	f := func(a, b, c, d uint16) bool {
		lats := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1}
		got, err := WeightedLatencyMs(weights, lats)
		if err != nil {
			return false
		}
		mean := 0.0
		for _, p := range paths {
			sum := 0.0
			for _, s := range p {
				sum += lats[s]
			}
			mean += sum
		}
		mean /= float64(len(paths))
		return math.Abs(got-mean) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPath(t *testing.T) {
	tk := diamond(t)
	lat := []float64{1, 10, 2, 5}
	cp, idx, err := tk.CriticalPathMs(lat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp-16) > 1e-12 {
		t.Errorf("critical path = %v, want 16 (a-b-d)", cp)
	}
	paths, _ := tk.Paths()
	sum := 0.0
	for _, s := range paths[idx] {
		sum += lat[s]
	}
	if sum != cp {
		t.Errorf("returned index %d does not identify the critical path", idx)
	}
	if _, _, err := tk.CriticalPathMs([]float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	tk := New("cyclic", 10)
	tk.AddSubtask(Subtask{Name: "a", Resource: "r", ExecMs: 1})
	tk.AddSubtask(Subtask{Name: "b", Resource: "r", ExecMs: 1})
	tk.MustEdge(0, 1)
	tk.MustEdge(1, 0)
	if err := tk.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate = %v, want cycle error", err)
	}
}

func TestValidateCatchesMultipleRoots(t *testing.T) {
	tk := New("two-roots", 10)
	tk.AddSubtask(Subtask{Name: "a", Resource: "r", ExecMs: 1})
	tk.AddSubtask(Subtask{Name: "b", Resource: "r", ExecMs: 1})
	if err := tk.Validate(); err == nil || !strings.Contains(err.Error(), "multiple roots") {
		t.Fatalf("Validate = %v, want multiple-roots error", err)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Task)
		want string
	}{
		{"no subtasks", func(tk *Task) { tk.Subtasks = nil; tk.succ = nil; tk.pred = nil }, "no subtasks"},
		{"bad critical", func(tk *Task) { tk.CriticalMs = 0 }, "critical time"},
		{"bad wcet", func(tk *Task) { tk.Subtasks[0].ExecMs = -1 }, "WCET"},
		{"no resource", func(tk *Task) { tk.Subtasks[0].Resource = "" }, "no resource"},
		{"bad minshare", func(tk *Task) { tk.Subtasks[0].MinShare = 1.5 }, "MinShare"},
		{"empty name", func(tk *Task) { tk.Subtasks[0].Name = "" }, "empty name"},
		{"dup name", func(tk *Task) { tk.Subtasks[1].Name = "a" }, "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tk := New("x", 10)
			tk.AddSubtask(Subtask{Name: "a", Resource: "r", ExecMs: 1})
			tk.AddSubtask(Subtask{Name: "b", Resource: "r", ExecMs: 1})
			tk.MustEdge(0, 1)
			c.mut(tk)
			err := tk.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestAddEdgeErrors(t *testing.T) {
	tk := New("e", 10)
	tk.AddSubtask(Subtask{Name: "a", Resource: "r", ExecMs: 1})
	if err := tk.AddEdge(0, 0); err == nil {
		t.Error("self edge should fail")
	}
	if err := tk.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge should fail")
	}
	tk.AddSubtask(Subtask{Name: "b", Resource: "r", ExecMs: 1})
	if err := tk.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tk.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge should fail")
	}
}

func TestTopoSortOrder(t *testing.T) {
	tk := diamond(t)
	order, err := tk.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range tk.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order %v", e, order)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tk := diamond(t)
	c := tk.Clone()
	c.Subtasks[0].ExecMs = 99
	c.MustEdge(1, 2)
	if tk.Subtasks[0].ExecMs == 99 {
		t.Error("Clone shares subtask storage")
	}
	if len(tk.Successors(1)) == len(c.Successors(1)) {
		t.Error("Clone shares edge storage")
	}
}

func TestSubtaskIndexByName(t *testing.T) {
	tk := diamond(t)
	if i := tk.SubtaskIndexByName("c"); i != 2 {
		t.Errorf("index of c = %d, want 2", i)
	}
	if i := tk.SubtaskIndexByName("nope"); i != -1 {
		t.Errorf("index of missing = %d, want -1", i)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x", 10).Subtask("a", "r", 1).Subtask("a", "r", 1).Build(); err == nil {
		t.Error("duplicate subtask should fail build")
	}
	if _, err := NewBuilder("x", 10).Subtask("a", "r", 1).Edge("a", "zz").Build(); err == nil {
		t.Error("unknown edge endpoint should fail build")
	}
}

func TestBuilderChain(t *testing.T) {
	tk, err := NewBuilder("chain", 10).
		Subtask("a", "r", 1).Subtask("b", "r", 1).Subtask("c", "r", 1).
		Chain("a", "b", "c").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	paths, _ := tk.Paths()
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Fatalf("chain paths = %v", paths)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("x", -1).Subtask("a", "r", 1).MustBuild()
}

// randomDAGTask builds a random layered DAG and checks structural
// invariants: Σ_p |p| == Σ_s pathcount(s), normalized weights of the root
// equal 1, and every path starts at the root and ends at a leaf.
func TestRandomDAGPathInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		layers := 2 + rng.Intn(4)
		tk := New("rand"+strconv.Itoa(trial), 1000)
		var prev []int
		id := 0
		for l := 0; l < layers; l++ {
			width := 1
			if l > 0 {
				width = 1 + rng.Intn(3)
			}
			var cur []int
			for k := 0; k < width; k++ {
				idx := tk.AddSubtask(Subtask{Name: "s" + strconv.Itoa(id), Resource: "r", ExecMs: 1})
				id++
				cur = append(cur, idx)
				if l > 0 {
					// Connect to at least one node of the previous layer.
					tk.MustEdge(prev[rng.Intn(len(prev))], idx)
					for _, p := range prev {
						if rng.Float64() < 0.3 {
							_ = tk.AddEdge(p, idx) // duplicates rejected, fine
						}
					}
				}
			}
			prev = cur
		}
		if err := tk.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		paths, err := tk.Paths()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		counts, _ := tk.PathCount()
		sumLens, sumCounts := 0, 0
		for _, p := range paths {
			sumLens += len(p)
		}
		for _, c := range counts {
			sumCounts += c
		}
		if sumLens != sumCounts {
			t.Fatalf("trial %d: Σ|p|=%d != Σcounts=%d", trial, sumLens, sumCounts)
		}
		root, _ := tk.Root()
		w, _ := tk.Weights(WeightPathNormalized)
		if math.Abs(w[root]-1) > 1e-12 {
			t.Fatalf("trial %d: root weight = %v, want 1", trial, w[root])
		}
		for _, p := range paths {
			if p[0] != root {
				t.Fatalf("trial %d: path %v does not start at root", trial, p)
			}
			if len(tk.Successors(p[len(p)-1])) != 0 {
				t.Fatalf("trial %d: path %v does not end at a leaf", trial, p)
			}
		}
	}
}

func TestTriggerRateAndValidation(t *testing.T) {
	if r := Periodic(100).RateHz(); math.Abs(r-10) > 1e-12 {
		t.Errorf("periodic rate = %v, want 10", r)
	}
	if r := Poisson(50).RateHz(); math.Abs(r-20) > 1e-12 {
		t.Errorf("poisson rate = %v, want 20", r)
	}
	b := Bursty(10, 100, 300)
	if r := b.RateHz(); math.Abs(r-25) > 1e-12 {
		t.Errorf("bursty rate = %v, want 25", r)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("bursty validate: %v", err)
	}
	if err := (Trigger{Kind: TriggerPeriodic, PeriodMs: 0}).Validate(); err == nil {
		t.Error("zero period should fail")
	}
	if err := (Trigger{Kind: TriggerKind(42)}).Validate(); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := (Trigger{}).Validate(); err != nil {
		t.Errorf("zero trigger should validate, got %v", err)
	}
	if got := (Trigger{}).RateHz(); got != 0 {
		t.Errorf("zero trigger rate = %v, want 0", got)
	}
}

func TestWeightModeString(t *testing.T) {
	cases := map[WeightMode]string{
		WeightSum:            "sum",
		WeightPathNormalized: "path-weighted",
		WeightPathRaw:        "path-weighted-raw",
		WeightMode(9):        "WeightMode(9)",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestTriggerKindString(t *testing.T) {
	cases := map[TriggerKind]string{
		TriggerPeriodic: "periodic",
		TriggerPoisson:  "poisson",
		TriggerBursty:   "bursty",
		TriggerKind(77): "TriggerKind(77)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}
