package task

import "fmt"

// TriggerKind enumerates the supported triggering-event arrival patterns
// (Section 2: "signals with an arrival pattern").
type TriggerKind int

const (
	// TriggerPeriodic releases a job set every PeriodMs milliseconds.
	TriggerPeriodic TriggerKind = iota + 1
	// TriggerPoisson releases job sets as a Poisson process with mean
	// inter-arrival PeriodMs.
	TriggerPoisson
	// TriggerBursty is a two-state on/off (Markov-modulated) process: during
	// an on-phase, arrivals are periodic with PeriodMs; off-phases produce
	// no arrivals. It models bursty real-world event streams.
	TriggerBursty
)

// String implements fmt.Stringer.
func (k TriggerKind) String() string {
	switch k {
	case TriggerPeriodic:
		return "periodic"
	case TriggerPoisson:
		return "poisson"
	case TriggerBursty:
		return "bursty"
	default:
		return fmt.Sprintf("TriggerKind(%d)", int(k))
	}
}

// Trigger specifies a task's triggering-event arrival pattern.
type Trigger struct {
	Kind TriggerKind
	// PeriodMs is the (mean) inter-arrival time in milliseconds.
	PeriodMs float64
	// OnMs and OffMs are mean phase durations for TriggerBursty; ignored
	// otherwise.
	OnMs  float64
	OffMs float64
}

// Periodic returns a periodic trigger with the given period.
func Periodic(periodMs float64) Trigger {
	return Trigger{Kind: TriggerPeriodic, PeriodMs: periodMs}
}

// Poisson returns a Poisson trigger with the given mean inter-arrival time.
func Poisson(meanMs float64) Trigger {
	return Trigger{Kind: TriggerPoisson, PeriodMs: meanMs}
}

// Bursty returns an on/off trigger: periodic arrivals of period periodMs
// during on-phases of mean length onMs, separated by off-phases of mean
// length offMs.
func Bursty(periodMs, onMs, offMs float64) Trigger {
	return Trigger{Kind: TriggerBursty, PeriodMs: periodMs, OnMs: onMs, OffMs: offMs}
}

// RateHz returns the long-run average arrival rate in events per second.
func (tr Trigger) RateHz() float64 {
	if tr.PeriodMs <= 0 {
		return 0
	}
	base := 1000 / tr.PeriodMs
	if tr.Kind == TriggerBursty && tr.OnMs+tr.OffMs > 0 {
		return base * tr.OnMs / (tr.OnMs + tr.OffMs)
	}
	return base
}

// Validate checks trigger parameters.
func (tr Trigger) Validate() error {
	switch tr.Kind {
	case TriggerPeriodic, TriggerPoisson:
		if tr.PeriodMs <= 0 {
			return fmt.Errorf("trigger %s: period must be positive, got %v", tr.Kind, tr.PeriodMs)
		}
	case TriggerBursty:
		if tr.PeriodMs <= 0 || tr.OnMs <= 0 || tr.OffMs < 0 {
			return fmt.Errorf("trigger bursty: invalid parameters period=%v on=%v off=%v", tr.PeriodMs, tr.OnMs, tr.OffMs)
		}
	case 0:
		// Zero value: task without an arrival specification (allowed for
		// pure optimization workloads that never get simulated).
	default:
		return fmt.Errorf("trigger: unknown kind %d", int(tr.Kind))
	}
	return nil
}
