package task

import "fmt"

// Builder constructs tasks fluently by subtask name, deferring index
// bookkeeping and error handling to a final Build call. It is the
// recommended construction path for application code:
//
//	t, err := task.NewBuilder("ingest", 45).
//		Trigger(task.Periodic(100)).
//		Subtask("parse", "cpu-0", 2).
//		Subtask("route", "net-0", 3).
//		Edge("parse", "route").
//		Build()
type Builder struct {
	t    *Task
	errs []error
	idx  map[string]int
}

// NewBuilder starts building a task with the given name and critical time in
// milliseconds.
func NewBuilder(name string, criticalMs float64) *Builder {
	return &Builder{t: New(name, criticalMs), idx: make(map[string]int)}
}

// Trigger sets the task's triggering-event specification.
func (b *Builder) Trigger(tr Trigger) *Builder {
	b.t.Trigger = tr
	return b
}

// Subtask adds a subtask consuming the given resource with the given WCET.
func (b *Builder) Subtask(name, resource string, execMs float64) *Builder {
	return b.SubtaskOpts(Subtask{Name: name, Resource: resource, ExecMs: execMs})
}

// SubtaskOpts adds a fully-specified subtask.
func (b *Builder) SubtaskOpts(s Subtask) *Builder {
	if _, dup := b.idx[s.Name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate subtask %q", s.Name))
		return b
	}
	b.idx[s.Name] = b.t.AddSubtask(s)
	return b
}

// Edge records a precedence edge between two named subtasks.
func (b *Builder) Edge(from, to string) *Builder {
	fi, ok1 := b.idx[from]
	ti, ok2 := b.idx[to]
	if !ok1 || !ok2 {
		b.errs = append(b.errs, fmt.Errorf("edge (%q,%q): unknown subtask", from, to))
		return b
	}
	if err := b.t.AddEdge(fi, ti); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Chain adds precedence edges along the given sequence of subtask names.
func (b *Builder) Chain(names ...string) *Builder {
	for i := 0; i+1 < len(names); i++ {
		b.Edge(names[i], names[i+1])
	}
	return b
}

// Build validates and returns the task. The builder must not be reused after
// Build.
func (b *Builder) Build() (*Task, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("task %s: %d build error(s), first: %w", b.t.Name, len(b.errs), b.errs[0])
	}
	if err := b.t.Validate(); err != nil {
		return nil, err
	}
	return b.t, nil
}

// MustBuild is Build that panics on error; for static workload definitions.
func (b *Builder) MustBuild() *Task {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
