package task

import "fmt"

// WeightMode selects how subtask weights are derived from the subtask graph
// for the utility-variant formulations of Section 3.2.
type WeightMode int

const (
	// WeightSum gives every subtask weight 1: the task utility becomes a
	// function of the plain sum of subtask latencies (the paper's "sum"
	// variant).
	WeightSum WeightMode = iota + 1
	// WeightPathNormalized weights each subtask by the fraction of
	// root-to-leaf paths that traverse it. The weighted latency sum then
	// equals the mean path latency. This is the paper's "path-weighted"
	// variant with the proportionality constant fixed by normalization; the
	// KKT analysis of Table 1 (see DESIGN.md) shows this is the variant the
	// published numbers correspond to.
	WeightPathNormalized
	// WeightPathRaw weights each subtask by the absolute number of paths
	// through it (unnormalized); provided for ablation.
	WeightPathRaw
)

// String implements fmt.Stringer.
func (m WeightMode) String() string {
	switch m {
	case WeightSum:
		return "sum"
	case WeightPathNormalized:
		return "path-weighted"
	case WeightPathRaw:
		return "path-weighted-raw"
	default:
		return fmt.Sprintf("WeightMode(%d)", int(m))
	}
}

// Weights computes the per-subtask weights for the given mode.
func (t *Task) Weights(mode WeightMode) ([]float64, error) {
	n := len(t.Subtasks)
	w := make([]float64, n)
	switch mode {
	case WeightSum:
		for i := range w {
			w[i] = 1
		}
		return w, nil
	case WeightPathNormalized, WeightPathRaw:
		counts, err := t.PathCount()
		if err != nil {
			return nil, err
		}
		paths, err := t.Paths()
		if err != nil {
			return nil, err
		}
		norm := 1.0
		if mode == WeightPathNormalized {
			norm = float64(len(paths))
		}
		for i, c := range counts {
			w[i] = float64(c) / norm
		}
		return w, nil
	default:
		return nil, fmt.Errorf("task %s: unknown weight mode %d", t.Name, int(mode))
	}
}

// WeightedLatencyMs returns the weighted sum of subtask latencies under the
// given weights.
func WeightedLatencyMs(weights, latMs []float64) (float64, error) {
	if len(weights) != len(latMs) {
		return 0, fmt.Errorf("task: weight/latency length mismatch %d != %d", len(weights), len(latMs))
	}
	sum := 0.0
	for i, w := range weights {
		sum += w * latMs[i]
	}
	return sum, nil
}
