// Package task implements the end-to-end task model of the LLA paper
// (Section 2): tasks composed of subtasks related by a precedence DAG with a
// unique root, where each subtask consumes exactly one resource. It provides
// path enumeration, path-count weights for the paper's utility variants
// (Section 3.2), triggering-event specifications, and validation.
package task

import (
	"errors"
	"fmt"
	"sync"
)

// Subtask is one stage of an end-to-end task. A subtask consumes exactly one
// resource (a CPU or a network link) and is characterized by its worst-case
// execution time on that resource.
type Subtask struct {
	// Name identifies the subtask within its task (e.g. "T12").
	Name string
	// Resource is the identifier of the resource the subtask consumes.
	Resource string
	// ExecMs is the worst-case execution time (WCET) in milliseconds. For a
	// network subtask this is the worst-case transmission time.
	ExecMs float64
	// MinShare, if positive, is the lowest admissible resource share for
	// this subtask. A subtask with a periodic arrival of rate jobs/sec and
	// WCET c needs share >= rate*c to keep its queue bounded (Section 6.2);
	// the optimizer never allocates below this floor.
	MinShare float64
}

// Task is a distributed end-to-end computation: a set of subtasks, a
// precedence DAG over them, a triggering-event specification and a critical
// time (end-to-end deadline).
type Task struct {
	// Name identifies the task.
	Name string
	// CriticalMs is the critical time C_i: the deadline that no path's
	// end-to-end latency may exceed.
	CriticalMs float64
	// Subtasks holds the task's subtasks; graph edges refer to indices in
	// this slice.
	Subtasks []Subtask
	// Trigger describes the arrival pattern of triggering events that
	// release instances (job sets) of this task.
	Trigger Trigger

	// succ[i] lists the successor subtask indices of subtask i.
	succ [][]int
	// pred[i] lists the predecessor subtask indices of subtask i.
	pred [][]int

	// pathMu guards the lazily computed path cache: workloads share *Task
	// pointers, and engines may be compiled from the same workload on
	// different goroutines (e.g. standalone distributed nodes).
	pathMu sync.Mutex
	// Lazily computed under pathMu, invalidated by mutation.
	paths   [][]int
	pathsOK bool
}

// New returns a task with the given name and critical time and no subtasks.
func New(name string, criticalMs float64) *Task {
	return &Task{Name: name, CriticalMs: criticalMs}
}

// AddSubtask appends a subtask and returns its index.
func (t *Task) AddSubtask(s Subtask) int {
	t.Subtasks = append(t.Subtasks, s)
	t.succ = append(t.succ, nil)
	t.pred = append(t.pred, nil)
	t.invalidatePaths()
	return len(t.Subtasks) - 1
}

// invalidatePaths drops the memoized path enumeration after a mutation.
func (t *Task) invalidatePaths() {
	t.pathMu.Lock()
	t.pathsOK = false
	t.pathMu.Unlock()
}

// AddEdge records a precedence constraint: subtask from must complete before
// subtask to is released. Indices must refer to existing subtasks.
func (t *Task) AddEdge(from, to int) error {
	n := len(t.Subtasks)
	if from < 0 || from >= n || to < 0 || to >= n {
		return fmt.Errorf("task %s: edge (%d,%d) out of range [0,%d)", t.Name, from, to, n)
	}
	if from == to {
		return fmt.Errorf("task %s: self edge on subtask %d", t.Name, from)
	}
	for _, s := range t.succ[from] {
		if s == to {
			return fmt.Errorf("task %s: duplicate edge (%d,%d)", t.Name, from, to)
		}
	}
	t.succ[from] = append(t.succ[from], to)
	t.pred[to] = append(t.pred[to], from)
	t.invalidatePaths()
	return nil
}

// MustEdge is AddEdge that panics on error; intended for static workload
// construction where edges are known to be valid.
func (t *Task) MustEdge(from, to int) {
	if err := t.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// Successors returns the successor indices of subtask i. The returned slice
// must not be modified.
func (t *Task) Successors(i int) []int { return t.succ[i] }

// Predecessors returns the predecessor indices of subtask i. The returned
// slice must not be modified.
func (t *Task) Predecessors(i int) []int { return t.pred[i] }

// Root returns the index of the unique root subtask (no predecessors), or an
// error if there is not exactly one.
func (t *Task) Root() (int, error) {
	root := -1
	for i := range t.Subtasks {
		if len(t.pred[i]) == 0 {
			if root >= 0 {
				return -1, fmt.Errorf("task %s: multiple roots (%d and %d)", t.Name, root, i)
			}
			root = i
		}
	}
	if root < 0 {
		if len(t.Subtasks) == 0 {
			return -1, fmt.Errorf("task %s: no subtasks", t.Name)
		}
		return -1, fmt.Errorf("task %s: no root (cycle through every subtask)", t.Name)
	}
	return root, nil
}

// Leaves returns the indices of all end subtasks (no successors).
func (t *Task) Leaves() []int {
	var leaves []int
	for i := range t.Subtasks {
		if len(t.succ[i]) == 0 {
			leaves = append(leaves, i)
		}
	}
	return leaves
}

// TopoSort returns the subtask indices in a topological order, or an error
// if the graph has a cycle.
func (t *Task) TopoSort() ([]int, error) {
	n := len(t.Subtasks)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(t.pred[i])
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range t.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("task %s: precedence graph has a cycle", t.Name)
	}
	return order, nil
}

// Validate checks the structural invariants required by the model: at least
// one subtask, acyclicity, a unique root, every subtask reachable from the
// root, positive execution times and critical time, and MinShare in [0,1].
func (t *Task) Validate() error {
	if len(t.Subtasks) == 0 {
		return fmt.Errorf("task %s: no subtasks", t.Name)
	}
	if t.CriticalMs <= 0 {
		return fmt.Errorf("task %s: critical time must be positive, got %v", t.Name, t.CriticalMs)
	}
	if _, err := t.TopoSort(); err != nil {
		return err
	}
	root, err := t.Root()
	if err != nil {
		return err
	}
	// Reachability from the root.
	seen := make([]bool, len(t.Subtasks))
	stack := []int{root}
	seen[root] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range t.succ[v] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("task %s: subtask %s (index %d) unreachable from root", t.Name, t.Subtasks[i].Name, i)
		}
	}
	names := make(map[string]bool, len(t.Subtasks))
	for i, s := range t.Subtasks {
		if s.Name == "" {
			return fmt.Errorf("task %s: subtask %d has empty name", t.Name, i)
		}
		if names[s.Name] {
			return fmt.Errorf("task %s: duplicate subtask name %q", t.Name, s.Name)
		}
		names[s.Name] = true
		if s.Resource == "" {
			return fmt.Errorf("task %s: subtask %s has no resource", t.Name, s.Name)
		}
		if s.ExecMs <= 0 {
			return fmt.Errorf("task %s: subtask %s has non-positive WCET %v", t.Name, s.Name, s.ExecMs)
		}
		if s.MinShare < 0 || s.MinShare > 1 {
			return fmt.Errorf("task %s: subtask %s MinShare %v outside [0,1]", t.Name, s.Name, s.MinShare)
		}
	}
	if err := t.Trigger.Validate(); err != nil {
		return fmt.Errorf("task %s: %w", t.Name, err)
	}
	return nil
}

// ErrNoPaths indicates a task whose graph yields no root-to-leaf paths.
var ErrNoPaths = errors.New("task: no root-to-leaf paths")

// Paths enumerates every root-to-leaf path as a slice of subtask indices.
// Results are cached until the task is mutated. The caller must not modify
// the returned slices. Safe for concurrent callers as long as none mutates
// the task.
func (t *Task) Paths() ([][]int, error) {
	t.pathMu.Lock()
	defer t.pathMu.Unlock()
	if t.pathsOK {
		return t.paths, nil
	}
	root, err := t.Root()
	if err != nil {
		return nil, err
	}
	if _, err := t.TopoSort(); err != nil {
		return nil, err
	}
	var paths [][]int
	var cur []int
	var walk func(v int)
	walk = func(v int) {
		cur = append(cur, v)
		if len(t.succ[v]) == 0 {
			p := make([]int, len(cur))
			copy(p, cur)
			paths = append(paths, p)
		} else {
			for _, s := range t.succ[v] {
				walk(s)
			}
		}
		cur = cur[:len(cur)-1]
	}
	walk(root)
	if len(paths) == 0 {
		return nil, ErrNoPaths
	}
	t.paths = paths
	t.pathsOK = true
	return paths, nil
}

// PathCount returns, for each subtask index, the number of root-to-leaf
// paths that traverse it.
func (t *Task) PathCount() ([]int, error) {
	paths, err := t.Paths()
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(t.Subtasks))
	for _, p := range paths {
		for _, s := range p {
			counts[s]++
		}
	}
	return counts, nil
}

// CriticalPathMs returns the maximum over paths of the summed latencies, and
// the index (into Paths()) of a maximizing path. The latencies slice is
// indexed by subtask index.
func (t *Task) CriticalPathMs(latMs []float64) (float64, int, error) {
	paths, err := t.Paths()
	if err != nil {
		return 0, -1, err
	}
	if len(latMs) != len(t.Subtasks) {
		return 0, -1, fmt.Errorf("task %s: latency vector length %d, want %d", t.Name, len(latMs), len(t.Subtasks))
	}
	best, bestIdx := 0.0, -1
	for i, p := range paths {
		sum := 0.0
		for _, s := range p {
			sum += latMs[s]
		}
		if bestIdx < 0 || sum > best {
			best, bestIdx = sum, i
		}
	}
	return best, bestIdx, nil
}

// SubtaskIndexByName returns the index of the named subtask, or -1.
func (t *Task) SubtaskIndexByName(name string) int {
	for i, s := range t.Subtasks {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the task (graph, subtasks and trigger).
func (t *Task) Clone() *Task {
	c := New(t.Name, t.CriticalMs)
	c.Trigger = t.Trigger
	c.Subtasks = append([]Subtask(nil), t.Subtasks...)
	c.succ = make([][]int, len(t.succ))
	c.pred = make([][]int, len(t.pred))
	for i := range t.succ {
		c.succ[i] = append([]int(nil), t.succ[i]...)
		c.pred[i] = append([]int(nil), t.pred[i]...)
	}
	return c
}

// Edges returns all precedence edges as (from, to) pairs in deterministic
// order.
func (t *Task) Edges() [][2]int {
	var edges [][2]int
	for from, succs := range t.succ {
		for _, to := range succs {
			edges = append(edges, [2]int{from, to})
		}
	}
	return edges
}
