package dist

import (
	"testing"

	"lla/internal/core"
	"lla/internal/price"
	"lla/internal/transport"
	"lla/internal/workload"
)

// TestDistMatchesEngineAllSolvers locks in the coordinate-separability
// contract of the price dynamics (DESIGN.md §12): the synchronous engine
// drives one n-resource Dynamics while every distributed resource node
// drives its own 1-resource instance, and for each solver the two must
// produce bitwise-identical prices and latencies round for round — including
// the same safeguard-fallback count.
func TestDistMatchesEngineAllSolvers(t *testing.T) {
	const rounds = 150
	for _, s := range price.Solvers() {
		t.Run(string(s), func(t *testing.T) {
			cfg := core.Config{PriceSolver: s}
			e, err := core.NewEngine(workload.Base(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			e.Run(rounds, nil)
			want := e.Snapshot()

			rt, err := New(workload.Base(), cfg, transport.NewInproc(transport.InprocConfig{}))
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			res, err := rt.Run(rounds)
			if err != nil {
				t.Fatal(err)
			}

			for ri := range want.Mu {
				if res.Mu[ri] != want.Mu[ri] {
					t.Errorf("mu[%d]: dist %x engine %x", ri, res.Mu[ri], want.Mu[ri])
				}
			}
			for ti := range want.LatMs {
				for si := range want.LatMs[ti] {
					if res.LatMs[ti][si] != want.LatMs[ti][si] {
						t.Errorf("lat[%d][%d]: dist %x engine %x",
							ti, si, res.LatMs[ti][si], want.LatMs[ti][si])
					}
				}
			}
			if res.Utility != want.Utility {
				t.Errorf("utility: dist %x engine %x", res.Utility, want.Utility)
			}
			if res.SolverFallbacks != e.SolverFallbacks() {
				t.Errorf("fallbacks: dist %d engine %d", res.SolverFallbacks, e.SolverFallbacks())
			}
		})
	}
}
