package dist

import (
	"context"
	"fmt"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Standalone node entry points: each process compiles the (identical,
// deterministic) problem locally and runs exactly one node, so a deployment
// can spread resources and controllers across machines (cmd/lla-node).
// Standalone nodes do not send coordinator reports — a deployment without a
// coordinator simply runs for the fixed number of rounds.
//
// Step sizers come from core.Config.NewStepSizer — the same constructor the
// engine uses — so a standalone node's price dynamics match the reference
// engine exactly (TestConfigDefaultsSingleSource pins this).

// RunResource runs the price agent of one resource for the given number of
// rounds over the network, blocking until the protocol completes or ctx is
// cancelled (a cancellation stops the node gracefully, flushing its state).
// It returns the final resource price.
func RunResource(ctx context.Context, w *workload.Workload, cfg core.Config, net transport.Network, resourceID string, rounds int) (float64, error) {
	return RunResourceObserved(ctx, w, cfg, net, resourceID, rounds, nil)
}

// RunResourceObserved is RunResource with observability attached: the node's
// retransmit/stale counters increment live on the observer's registry and
// the per-resource gauges (share sum, utilization, price) refresh each
// completed round. A nil observer behaves exactly like RunResource.
func RunResourceObserved(ctx context.Context, w *workload.Workload, cfg core.Config, net transport.Network, resourceID string, rounds int, o *obs.Observer) (float64, error) {
	cfg = cfg.WithDefaults()
	p, err := core.Compile(w, cfg.WeightMode)
	if err != nil {
		return 0, err
	}
	ri := -1
	for i := range p.Resources {
		if p.Resources[i].ID == resourceID {
			ri = i
			break
		}
	}
	if ri < 0 {
		return 0, fmt.Errorf("dist: unknown resource %q", resourceID)
	}
	ep, err := net.Endpoint(resourceAddr(resourceID))
	if err != nil {
		return 0, err
	}
	defer ep.Close()
	agent := core.NewResourceAgent(p, ri, cfg.NewStepSizer(), cfg.Step.Gamma, cfg.Step.Adaptive, cfg.InitialMu)
	node := newResourceNode(p, ri, agent, ep)
	node.dyn = newDynStepper(cfg)
	node.fp, node.stop = DefaultFaultPolicy(), ctx.Done()
	node.delta = cfg.Sparse != core.SparseOff
	if o != nil && o.Metrics != nil {
		dm := obs.NewDistMetrics(o.Metrics)
		node.mRetransmits, node.mRejectedStale = dm.Retransmits, dm.RejectedStale
		if node.delta {
			sm := obs.NewSparseMetrics(o.Metrics)
			node.mDeltaSuppressed, node.mDeltaBytesSaved = sm.DeltaBroadcasts, sm.DeltaBytesSaved
		}
		node.rm = obs.NewResourceMetrics(o.Metrics, resourceID)
	}
	if err := node.run(rounds); err != nil {
		return 0, err
	}
	return agent.Mu, nil
}

// RunController runs the task controller of one task for the given number
// of rounds, blocking until the protocol completes or ctx is cancelled. It
// returns the final per-subtask latencies keyed by subtask name, and the
// final task utility.
func RunController(ctx context.Context, w *workload.Workload, cfg core.Config, net transport.Network, taskName string, rounds int) (map[string]float64, float64, error) {
	return RunControllerObserved(ctx, w, cfg, net, taskName, rounds, nil)
}

// RunControllerObserved is RunController with observability attached: the
// node's retransmit/stale counters increment live on the observer's
// registry. A nil observer behaves exactly like RunController.
func RunControllerObserved(ctx context.Context, w *workload.Workload, cfg core.Config, net transport.Network, taskName string, rounds int, o *obs.Observer) (map[string]float64, float64, error) {
	cfg = cfg.WithDefaults()
	p, err := core.Compile(w, cfg.WeightMode)
	if err != nil {
		return nil, 0, err
	}
	ti := -1
	for i := range p.Tasks {
		if p.Tasks[i].Name == taskName {
			ti = i
			break
		}
	}
	if ti < 0 {
		return nil, 0, fmt.Errorf("dist: unknown task %q", taskName)
	}
	ep, err := net.Endpoint(controllerAddr(taskName))
	if err != nil {
		return nil, 0, err
	}
	defer ep.Close()
	ctl := core.NewController(p, ti, cfg.NewStepSizer, cfg.Step.Gamma, cfg.Step.Adaptive, cfg.MaxInner)
	node := newControllerNode(p, ti, ctl, ep)
	node.reports = false
	node.fp, node.stop = DefaultFaultPolicy(), ctx.Done()
	node.delta = cfg.Sparse != core.SparseOff
	if o != nil && o.Metrics != nil {
		dm := obs.NewDistMetrics(o.Metrics)
		node.mRetransmits, node.mRejectedStale = dm.Retransmits, dm.RejectedStale
		if node.delta {
			sm := obs.NewSparseMetrics(o.Metrics)
			node.mDeltaSuppressed, node.mDeltaBytesSaved = sm.DeltaBroadcasts, sm.DeltaBytesSaved
		}
	}
	if err := node.run(rounds); err != nil {
		return nil, 0, err
	}
	out := make(map[string]float64, len(ctl.LatMs))
	for si, lat := range ctl.LatMs {
		out[p.Tasks[ti].SubtaskNames[si]] = lat
	}
	return out, ctl.Utility(), nil
}

// Addresses returns the logical endpoint names a workload's deployment
// needs (controllers, resources, coordinator), for building transport
// registries.
func Addresses(w *workload.Workload) []string {
	out := []string{coordinatorAddr}
	for _, t := range w.Tasks {
		out = append(out, controllerAddr(t.Name))
	}
	for _, r := range w.Resources {
		out = append(out, resourceAddr(r.ID))
	}
	return out
}
