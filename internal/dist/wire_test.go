package dist

import (
	"strings"
	"testing"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/price"
	"lla/internal/transport"
	"lla/internal/wire"
	"lla/internal/workload"
)

// TestWireCodecCoversWorkloadDict: the codec built from a workload indexes
// every resource and subtask so production traffic never falls back to
// string-mode addressing.
func TestWireCodecCoversWorkloadDict(t *testing.T) {
	w := workload.Base()
	reg := obs.NewRegistry()
	c := WireCodec(w, reg)
	if c == nil || c.Name() != "binary" {
		t.Fatalf("WireCodec = %v", c)
	}
	want := wire.NewCodec(mustDict(t, w))
	if got, exp := c.Hello(), want.Hello(); len(got) != len(exp) || string(got) != string(exp) {
		t.Fatal("workload codec hello differs from a hand-built dict codec")
	}
}

func mustDict(t *testing.T, w *workload.Workload) *wire.Dict {
	t.Helper()
	resources := make([]string, len(w.Resources))
	for i, r := range w.Resources {
		resources[i] = r.ID
	}
	tasks := make([]string, len(w.Tasks))
	subs := make([][]string, len(w.Tasks))
	for i, task := range w.Tasks {
		tasks[i] = task.Name
		subs[i] = make([]string, len(task.Subtasks))
		for j, s := range task.Subtasks {
			subs[i][j] = s.Name
		}
	}
	d, err := wire.NewDict(resources, tasks, subs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDistBinaryWireMatchesEngineAllSolvers: with every delivery round-
// tripped through the binary codec, the distributed runtime still
// reproduces the serial engine bitwise for every price solver.
func TestDistBinaryWireMatchesEngineAllSolvers(t *testing.T) {
	const rounds = 150
	for _, s := range price.Solvers() {
		t.Run(string(s), func(t *testing.T) {
			cfg := core.Config{PriceSolver: s}
			e, err := core.NewEngine(workload.Base(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			e.Run(rounds, nil)
			want := e.Snapshot()

			reg := obs.NewRegistry()
			net := transport.NewInproc(transport.InprocConfig{})
			net.SetCodec(WireCodec(workload.Base(), reg))
			rt, err := New(workload.Base(), cfg, net)
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			res, err := rt.Run(rounds)
			if err != nil {
				t.Fatal(err)
			}

			for ri := range want.Mu {
				if res.Mu[ri] != want.Mu[ri] {
					t.Errorf("mu[%d]: dist %x engine %x", ri, res.Mu[ri], want.Mu[ri])
				}
			}
			for ti := range want.LatMs {
				for si := range want.LatMs[ti] {
					if res.LatMs[ti][si] != want.LatMs[ti][si] {
						t.Errorf("lat[%d][%d]: dist %x engine %x",
							ti, si, res.LatMs[ti][si], want.LatMs[ti][si])
					}
				}
			}
			if res.Utility != want.Utility {
				t.Errorf("utility: dist %x engine %x", res.Utility, want.Utility)
			}
			if reg.Counter("lla_wire_frames_total", "Binary frames, by direction.", "dir", "decode").Value() == 0 {
				t.Error("no binary frames decoded: codec was bypassed")
			}
			if raw := reg.Counter("lla_wire_raw_frames_total", "Messages carried by the RAW escape-hatch frame.").Value(); raw != 0 {
				t.Errorf("%d dist messages fell back to RAW framing", raw)
			}
		})
	}
}

// TestDistBinaryWireChaosMatchesEngine: binary framing under seeded loss,
// duplication, delay, and reordering — retransmitted frames re-encode and
// the result still matches the engine bitwise (within the chaos-suite
// tolerance).
func TestDistBinaryWireChaosMatchesEngine(t *testing.T) {
	const rounds = 80
	ch, inner := chaosNet(transport.ChaosConfig{
		Seed:          7,
		LossRate:      0.10,
		DupRate:       0.10,
		DelayMs:       0.3,
		DelayJitterMs: 0.5,
		ReorderRate:   0.10,
	})
	reg := obs.NewRegistry()
	inner.SetCodec(WireCodec(workload.Base(), reg))
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	res := runWithDeadline(t, rt, rounds)
	assertMatchesEngine(t, res, rounds)
	if res.Retransmits == 0 {
		t.Error("10% loss over 80 rounds recovered without a single retransmit")
	}
	if reg.Counter("lla_wire_frames_total", "Binary frames, by direction.", "dir", "decode").Value() == 0 {
		t.Error("chaos run decoded no binary frames")
	}
	ch.Wait()
	inner.Wait()
}

// TestDistWireMessagesNeverRideRaw: every message kind dist emits has a
// dedicated binary frame; if a schema change reintroduces RAW fallback for
// control traffic, this catches it by name.
func TestDistWireMessagesNeverRideRaw(t *testing.T) {
	kinds := []string{kindPrice, kindLatency, kindReport, kindStop, kindFin, kindRejoin, kindRejoinAck}
	for _, k := range kinds {
		if _, ok := wire.FrameTypes()[strings.ToUpper(strings.ReplaceAll(k, "rejoinAck", "rejoin_ack"))]; !ok {
			t.Errorf("dist kind %q has no dedicated frame type", k)
		}
	}
}
