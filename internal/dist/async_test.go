package dist

import (
	"math"
	"testing"
	"time"

	"lla/internal/core"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Asynchronous LLA converges close to the synchronous optimum on the base
// workload despite unsynchronized, stale updates.
func TestAsyncConvergesNearOptimum(t *testing.T) {
	net := transport.NewInproc(transport.InprocConfig{QueueLen: 8192})
	res, err := RunAsync(workload.Base(), core.Config{}, net, 1500*time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous optimum is 188.73 (Table 1 reproduction).
	if math.Abs(res.Utility-188.73) > 2 {
		t.Errorf("async utility = %.2f, want ≈188.73", res.Utility)
	}
	if res.ControllerSteps == 0 || res.ResourceSteps == 0 {
		t.Errorf("no compute steps: %+v", res)
	}
	// Latencies close to Table 1 (loose tolerance: async endpoint is
	// timing-dependent).
	ref := workload.Table1LatenciesMs()
	w := workload.Base()
	for ti, tk := range w.Tasks {
		for si, s := range tk.Subtasks {
			want := ref[tk.Name][s.Name]
			if rel := math.Abs(res.LatMs[ti][si]-want) / want; rel > 0.10 {
				t.Errorf("%s.%s async latency %.2f vs published %.1f (%.0f%% off)",
					tk.Name, s.Name, res.LatMs[ti][si], want, rel*100)
			}
		}
	}
}

// With message delay (stale prices), the asynchronous protocol still
// converges to the neighbourhood of the optimum — provided the steps are
// conservative. Aggressive price-proportional steps amplify stale gradients
// (the standard asynchronous-gradient staleness/step-size trade-off), so
// this case runs with a fixed moderate gamma.
func TestAsyncTolerantOfDelay(t *testing.T) {
	net := transport.NewInproc(transport.InprocConfig{QueueLen: 8192, DelayMs: 1, Seed: 5})
	cfg := core.Config{Step: core.StepPolicy{Adaptive: false, Gamma: 2}}
	res, err := RunAsync(workload.Base(), cfg, net, 4*time.Second, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utility-188.73) > 5 {
		t.Errorf("async-with-delay utility = %.2f, want ≈188.73", res.Utility)
	}
	net.Wait()
}

func TestAsyncPrototypeMeetsConstraints(t *testing.T) {
	net := transport.NewInproc(transport.InprocConfig{QueueLen: 8192})
	res, err := RunAsync(workload.Prototype(), core.Config{}, net, 1500*time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Fast tasks settle at the 35ms per-subtask allocation (C=105 binding).
	for ti := 0; ti < 2; ti++ {
		sum := 0.0
		for _, lat := range res.LatMs[ti] {
			sum += lat
		}
		if math.Abs(sum-105) > 2 {
			t.Errorf("fast task %d path latency %.1f, want ≈105", ti, sum)
		}
	}
	// Resource prices near the analytic mu* = 667.
	for ri, mu := range res.Mu {
		if math.Abs(mu-667) > 30 {
			t.Errorf("mu[%d] = %.1f, want ≈667", ri, mu)
		}
	}
}

func TestAsyncRejectsInvalidWorkload(t *testing.T) {
	bad := workload.Base()
	bad.Resources = nil
	net := transport.NewInproc(transport.InprocConfig{})
	if _, err := RunAsync(bad, core.Config{}, net, 10*time.Millisecond, 0); err == nil {
		t.Fatal("invalid workload should fail")
	}
}
