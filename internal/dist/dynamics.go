package dist

import (
	"lla/internal/core"
	"lla/internal/price"
)

// Accelerated price dynamics in the distributed runtimes (DESIGN.md §12).
// Every price.Dynamics implementation is coordinate-separable, so a resource
// node runs its own 1-coordinate instance: the vector update the engine
// performs over all resources decomposes into exactly the per-resource
// updates the nodes perform, and a loss-free synchronous run stays bitwise
// identical to the engine under every solver — the property the dist tests
// pin for the reference gradient extends to the accelerated solvers.

// dynStepper drives a 1-coordinate price.Dynamics for one resource node,
// holding the fixed-size StepInput scratch so the per-round update does not
// allocate.
type dynStepper struct {
	dyn   price.Dynamics
	mu    [1]float64
	sum   [1]float64
	avail [1]float64
	curv  [1]float64
	cong  [1]bool
}

// newDynStepper builds the node-local dynamics for an accelerated config, or
// nil for the reference gradient solver — nil keeps the agent's built-in
// UpdatePrice path bit-for-bit untouched, mirroring the engine's dyn == nil
// fast path.
func newDynStepper(cfg core.Config) *dynStepper {
	if !cfg.Accelerated() {
		return nil
	}
	d := &dynStepper{dyn: cfg.NewDynamics()}
	d.dyn.Reset(1)
	return d
}

// step advances the agent's price one round through the accelerated
// dynamics. The curvature (when the solver needs it) is summed over the
// resource's subtasks in compiled Subs order from the freshest reported
// latencies — the same serial order and inputs as Engine.curvatureInto, which
// is what keeps the trajectories bitwise identical. It reports whether any
// observable solver state moved, the fixed-point signal the async sparse
// path uses.
func (d *dynStepper) step(p *core.Problem, ri int, agent *core.ResourceAgent, lat map[[2]int]float64, sum float64) bool {
	r := &p.Resources[ri]
	d.mu[0] = agent.Mu
	d.sum[0] = sum
	d.avail[0] = r.Availability
	d.cong[0] = agent.Congested(sum)
	if d.dyn.NeedsCurvature() {
		c := 0.0
		for _, sub := range r.Subs {
			c += p.ResponseSlope(sub[0], sub[1], lat[sub], agent.Mu)
		}
		d.curv[0] = c
	}
	changed := d.dyn.Step(price.StepInput{
		Mu:        d.mu[:],
		ShareSums: d.sum[:],
		Avail:     d.avail[:],
		Congested: d.cong[:],
		Curvature: d.curv[:],
	})
	agent.Mu = d.mu[0]
	return changed
}

// fallbacks returns the cumulative safeguard-fallback count.
func (d *dynStepper) fallbacks() uint64 { return d.dyn.Fallbacks() }
