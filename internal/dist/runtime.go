package dist

import (
	"fmt"
	"sync"

	"lla/internal/core"
	"lla/internal/price"
	"lla/internal/stats"
	"lla/internal/task"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Runtime assembles and drives a distributed LLA deployment: one resource
// node per resource, one controller node per task, and a coordinator that
// aggregates per-round utility reports.
type Runtime struct {
	p           *core.Problem
	cfg         core.Config
	net         transport.Network
	controllers []*core.Controller
	agents      []*core.ResourceAgent
	ctlNodes    []*controllerNode
	resNodes    []*resourceNode
	coordinator transport.Endpoint
}

// New compiles the workload and registers all endpoints on the network.
func New(w *workload.Workload, cfg core.Config, net transport.Network) (*Runtime, error) {
	cfg = fillConfig(cfg)
	p, err := core.Compile(w, cfg.WeightMode)
	if err != nil {
		return nil, err
	}
	r := &Runtime{p: p, cfg: cfg, net: net}
	newStep := func() price.StepSizer {
		if cfg.Step.Adaptive {
			a := price.NewAdaptive(cfg.Step.Gamma)
			a.Max = cfg.Step.Max
			return a
		}
		return &price.Fixed{Value: cfg.Step.Gamma}
	}

	r.coordinator, err = net.Endpoint(coordinatorAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	for ti := range p.Tasks {
		ep, err := net.Endpoint(controllerAddr(p.Tasks[ti].Name))
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		ctl := core.NewController(p, ti, newStep, cfg.Step.Gamma, cfg.Step.Adaptive, cfg.MaxInner)
		r.controllers = append(r.controllers, ctl)
		r.ctlNodes = append(r.ctlNodes, newControllerNode(p, ti, ctl, ep))
	}
	for ri := range p.Resources {
		ep, err := net.Endpoint(resourceAddr(p.Resources[ri].ID))
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		agent := core.NewResourceAgent(p, ri, newStep(), cfg.Step.Gamma, cfg.Step.Adaptive, cfg.InitialMu)
		r.agents = append(r.agents, agent)
		r.resNodes = append(r.resNodes, newResourceNode(p, ri, agent, ep))
	}
	return r, nil
}

// fillConfig mirrors core.Config defaults (kept in sync with
// core.Config.withDefaults, which is unexported).
func fillConfig(c core.Config) core.Config {
	if c.WeightMode == 0 {
		c.WeightMode = task.WeightPathNormalized
	}
	if c.Step.Gamma == 0 {
		c.Step = core.StepPolicy{Adaptive: true, Gamma: 1}
	}
	if c.InitialMu == 0 {
		c.InitialMu = 1
	}
	if c.MaxInner == 0 {
		c.MaxInner = 30
	}
	return c
}

// Result summarizes a distributed run.
type Result struct {
	// Rounds is the number of completed allocation rounds.
	Rounds int
	// Utility is the final aggregate utility.
	Utility float64
	// UtilitySeries records the aggregate utility per round.
	UtilitySeries *stats.Series
	// LatMs[ti][si] are the final latencies.
	LatMs [][]float64
	// Mu[ri] are the final resource prices.
	Mu []float64
	// Converged reports whether a convergence stop fired (RunUntilConverged
	// only).
	Converged bool
}

// Run executes exactly rounds synchronous rounds and returns the final
// state. A loss-free in-order network makes the result identical to
// core.Engine after the same number of Steps.
func (r *Runtime) Run(rounds int) (*Result, error) {
	return r.run(rounds, nil)
}

// RunUntilConverged executes until the aggregate utility is stable (relative
// change < relTol over window rounds) or maxRounds; on convergence it
// broadcasts a stop and lets the protocol drain.
func (r *Runtime) RunUntilConverged(maxRounds int, relTol float64, window int) (*Result, error) {
	det := stats.NewConvergenceDetector(relTol, window)
	return r.run(maxRounds, det)
}

// run starts all nodes, monitors reports at the coordinator, and joins.
func (r *Runtime) run(maxRounds int, det *stats.ConvergenceDetector) (*Result, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("dist: rounds must be positive, got %d", maxRounds)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(r.ctlNodes)*2+len(r.resNodes)*2+8)
	for _, n := range r.resNodes {
		wg.Add(1)
		go func(n *resourceNode) {
			defer wg.Done()
			if err := n.run(maxRounds); err != nil {
				errCh <- err
			}
		}(n)
	}
	for _, n := range r.ctlNodes {
		wg.Add(1)
		go func(n *controllerNode) {
			defer wg.Done()
			if err := n.run(maxRounds); err != nil {
				errCh <- err
			}
		}(n)
	}

	// Coordinator: aggregate per-round utilities; on convergence, broadcast
	// stop. The coordinator reads until all controllers have reported their
	// final round.
	res := &Result{UtilitySeries: stats.NewSeries("utility")}
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		perRound := make(map[int]float64)
		counts := make(map[int]int)
		converged := false
		nextEmit := 0
		for m := range r.coordinator.Recv() {
			if m.Kind != kindReport {
				continue
			}
			var rm reportMsg
			if err := m.Decode(&rm); err != nil {
				errCh <- err
				continue
			}
			perRound[rm.Round] += rm.Utility
			counts[rm.Round]++
			// Emit completed rounds strictly in order: a fast controller's
			// round r+1 report can beat a slow controller's round r report.
			for counts[nextEmit] == len(r.ctlNodes) {
				u := perRound[nextEmit]
				res.UtilitySeries.Append(float64(nextEmit), u)
				delete(perRound, nextEmit)
				delete(counts, nextEmit)
				if det != nil && !converged && det.Observe(u) {
					converged = true
					res.Converged = true
					r.broadcastStop(nextEmit+1, errCh)
				}
				nextEmit++
			}
		}
	}()

	wg.Wait()
	r.coordinator.Close()
	<-coordDone
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res.Rounds = res.UtilitySeries.Len()
	res.Utility = res.UtilitySeries.Last()
	for _, c := range r.controllers {
		res.LatMs = append(res.LatMs, append([]float64(nil), c.LatMs...))
	}
	for _, a := range r.agents {
		res.Mu = append(res.Mu, a.Mu)
	}
	return res, nil
}

// broadcastStop tells every node to stop after the given round.
func (r *Runtime) broadcastStop(afterRound int, errCh chan<- error) {
	msg := stopMsg{AfterRound: afterRound}
	for ti := range r.p.Tasks {
		if err := r.coordinator.Send(controllerAddr(r.p.Tasks[ti].Name), kindStop, msg); err != nil {
			errCh <- err
		}
	}
	for ri := range r.p.Resources {
		if err := r.coordinator.Send(resourceAddr(r.p.Resources[ri].ID), kindStop, msg); err != nil {
			errCh <- err
		}
	}
}

// Close releases all endpoints.
func (r *Runtime) Close() error {
	var first error
	for _, n := range r.ctlNodes {
		if err := n.ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, n := range r.resNodes {
		if err := n.ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
