package dist

import (
	"fmt"
	"sync"
	"time"

	"lla/internal/admit"
	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/stats"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Runtime assembles and drives a distributed LLA deployment: one resource
// node per resource, one controller node per task, and a coordinator that
// aggregates per-round utility reports and watches per-task report leases.
type Runtime struct {
	p           *core.Problem
	cfg         core.Config
	net         transport.Network
	controllers []*core.Controller
	agents      []*core.ResourceAgent
	ctlNodes    []*controllerNode
	resNodes    []*resourceNode
	coordinator transport.Endpoint

	fp       FaultPolicy
	admitCfg admit.Config
	stop     chan struct{}
	stopOnce sync.Once

	// obsv and dm are set by Observe; nil means no observability overhead
	// beyond the nodes' nil-safe counter calls.
	obsv *obs.Observer
	dm   *obs.DistMetrics
}

// New compiles the workload and registers all endpoints on the network.
func New(w *workload.Workload, cfg core.Config, net transport.Network) (*Runtime, error) {
	cfg = cfg.WithDefaults()
	p, err := core.Compile(w, cfg.WeightMode)
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		p:    p,
		cfg:  cfg,
		net:  net,
		fp:   DefaultFaultPolicy(),
		stop: make(chan struct{}),
	}
	newStep := cfg.NewStepSizer

	r.coordinator, err = net.Endpoint(coordinatorAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	for ti := range p.Tasks {
		ep, err := net.Endpoint(controllerAddr(p.Tasks[ti].Name))
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		ctl := core.NewController(p, ti, newStep, cfg.Step.Gamma, cfg.Step.Adaptive, cfg.MaxInner)
		r.controllers = append(r.controllers, ctl)
		r.ctlNodes = append(r.ctlNodes, newControllerNode(p, ti, ctl, ep))
	}
	for ri := range p.Resources {
		ep, err := net.Endpoint(resourceAddr(p.Resources[ri].ID))
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		agent := core.NewResourceAgent(p, ri, newStep(), cfg.Step.Gamma, cfg.Step.Adaptive, cfg.InitialMu)
		r.agents = append(r.agents, agent)
		node := newResourceNode(p, ri, agent, ep)
		node.dyn = newDynStepper(cfg)
		r.resNodes = append(r.resNodes, node)
	}
	return r, nil
}

// SetFaultPolicy overrides the fault-tolerance policy (retransmission timers
// and report leases). Call before Run; the zero policy disables
// retransmission and lease tracking entirely, which is only safe on
// loss-free networks.
func (r *Runtime) SetFaultPolicy(fp FaultPolicy) { r.fp = fp.withDefaults() }

// Observe attaches observability to the deployment; nil detaches. Call
// before Run. With a metrics registry attached, every node increments the
// lla_dist_* counters live (alongside the join-time Result totals), resource
// nodes refresh the per-resource gauges each completed round, and the
// coordinator counts rounds and samples round latency; with a trace sink
// attached, the coordinator emits lease_expiry and converged events.
func (r *Runtime) Observe(o *obs.Observer) {
	r.obsv, r.dm = o, nil
	if o == nil {
		for _, n := range r.resNodes {
			n.mRetransmits, n.mRejectedStale, n.rm = nil, nil, nil
			n.mDeltaSuppressed, n.mDeltaBytesSaved = nil, nil
		}
		for _, n := range r.ctlNodes {
			n.mRetransmits, n.mRejectedStale = nil, nil
			n.mDeltaSuppressed, n.mDeltaBytesSaved = nil, nil
		}
		return
	}
	if o.Metrics == nil {
		return
	}
	r.dm = obs.NewDistMetrics(o.Metrics)
	var sm *obs.SparseMetrics
	if r.cfg.Sparse != core.SparseOff {
		sm = obs.NewSparseMetrics(o.Metrics)
	}
	for ri, n := range r.resNodes {
		n.mRetransmits = r.dm.Retransmits
		n.mRejectedStale = r.dm.RejectedStale
		if sm != nil {
			n.mDeltaSuppressed = sm.DeltaBroadcasts
			n.mDeltaBytesSaved = sm.DeltaBytesSaved
		}
		n.rm = obs.NewResourceMetrics(o.Metrics, r.p.Resources[ri].ID)
	}
	for _, n := range r.ctlNodes {
		n.mRetransmits = r.dm.Retransmits
		n.mRejectedStale = r.dm.RejectedStale
		if sm != nil {
			n.mDeltaSuppressed = sm.DeltaBroadcasts
			n.mDeltaBytesSaved = sm.DeltaBytesSaved
		}
	}
}

// Shutdown asks all nodes to stop gracefully at their next receive: node
// goroutines return without error, Run joins them and returns the state
// reached so far. Safe to call concurrently with Run and more than once.
func (r *Runtime) Shutdown() {
	r.stopOnce.Do(func() { close(r.stop) })
}

// Result summarizes a distributed run.
type Result struct {
	// Rounds is the number of rounds the coordinator saw completed reports
	// for. Reports are best-effort under loss, so this may trail the rounds
	// the protocol actually completed.
	Rounds int
	// Utility is the final aggregate utility, computed from the controllers'
	// final state (robust to lost coordinator reports).
	Utility float64
	// UtilitySeries records the aggregate utility per fully reported round.
	UtilitySeries *stats.Series
	// LatMs[ti][si] are the final latencies.
	LatMs [][]float64
	// Mu[ri] are the final resource prices.
	Mu []float64
	// Converged reports whether a convergence stop fired (RunUntilConverged
	// only).
	Converged bool
	// Retransmits counts messages re-sent by the reliability layer
	// (sender-side timeouts plus receiver-side stale recovery).
	Retransmits int64
	// RejectedStale counts received messages from already-completed rounds.
	RejectedStale int64
	// DeltaSuppressed counts delta-encoded sends: broadcasts and share
	// reports whose payload was unchanged and went out as markers.
	DeltaSuppressed int64
	// DeltaBytesSaved totals the encoded payload bytes those markers kept
	// off the wire.
	DeltaBytesSaved int64
	// LeaseExpirations counts coordinator-observed report leases expiring: a
	// controller stayed silent longer than FaultPolicy.LeaseAfter.
	LeaseExpirations int64
	// SolverFallbacks totals the accelerated price solvers' safeguard
	// fallbacks to the reference gradient step across all resource nodes
	// (0 under the reference gradient solver).
	SolverFallbacks uint64
	// Admissions records every admission query the coordinator answered
	// during the run, in arrival order (see admission.go).
	Admissions []AdmissionDecision
	// Epoch is the coordinator generation the run finished on: 0 for an
	// uninterrupted run, bumped once per coordinator restart (failover.go).
	Epoch uint64
	// CoordinatorRestarts counts coordinator crash/restart cycles executed
	// by a failover plan.
	CoordinatorRestarts int
	// FencedStale counts stale-epoch frames discarded by epoch fencing,
	// summed over the coordinator (old-generation reports and acks) and the
	// nodes (a zombie coordinator's control frames).
	FencedStale int64
	// Rejoins counts completed rejoin handshakes (controller acks processed
	// by a restarted coordinator).
	Rejoins int64
}

// Run executes exactly rounds synchronous rounds and returns the final
// state. A loss-free in-order network makes the result identical to
// core.Engine after the same number of Steps; on lossy networks the
// reliability layer (see nodes.go) recovers the same result bitwise.
func (r *Runtime) Run(rounds int) (*Result, error) {
	return r.run(rounds, nil)
}

// RunUntilConverged executes until the aggregate utility is stable (relative
// change < relTol over window rounds) or maxRounds; on convergence it
// broadcasts a stop and lets the protocol drain.
func (r *Runtime) RunUntilConverged(maxRounds int, relTol float64, window int) (*Result, error) {
	det := stats.NewConvergenceDetector(relTol, window)
	return r.run(maxRounds, det)
}

// startNodes installs the fault policy on every node and launches the node
// goroutines; failures land on errCh. Shared by run and RunWithFailover.
func (r *Runtime) startNodes(maxRounds int, wg *sync.WaitGroup, errCh chan<- error) {
	for _, n := range r.resNodes {
		n.fp, n.stop = r.fp, r.stop
		n.delta = r.cfg.Sparse != core.SparseOff
		wg.Add(1)
		go func(n *resourceNode) {
			defer wg.Done()
			if err := n.run(maxRounds); err != nil {
				errCh <- err
			}
		}(n)
	}
	for _, n := range r.ctlNodes {
		n.fp, n.stop = r.fp, r.stop
		n.delta = r.cfg.Sparse != core.SparseOff
		wg.Add(1)
		go func(n *controllerNode) {
			defer wg.Done()
			if err := n.run(maxRounds); err != nil {
				errCh <- err
			}
		}(n)
	}
}

// collect folds the final node state and counters into res after all node
// goroutines have joined. Shared by run and RunWithFailover.
func (r *Runtime) collect(res *Result) {
	res.Rounds = res.UtilitySeries.Len()
	for _, c := range r.controllers {
		res.Utility += c.Utility()
		res.LatMs = append(res.LatMs, append([]float64(nil), c.LatMs...))
	}
	for _, a := range r.agents {
		res.Mu = append(res.Mu, a.Mu)
	}
	for _, n := range r.ctlNodes {
		res.Retransmits += n.retransmits
		res.RejectedStale += n.rejectedStale
		res.DeltaSuppressed += n.deltaSuppressed
		res.DeltaBytesSaved += n.deltaBytesSaved
		res.FencedStale += n.fencedEpoch
		res.Rejoins += n.rejoins
	}
	for _, n := range r.resNodes {
		res.Retransmits += n.retransmits
		res.RejectedStale += n.rejectedStale
		res.DeltaSuppressed += n.deltaSuppressed
		res.DeltaBytesSaved += n.deltaBytesSaved
		res.FencedStale += n.fencedEpoch
		if n.dyn != nil {
			res.SolverFallbacks += n.dyn.fallbacks()
		}
	}
}

// run starts all nodes, monitors reports at the coordinator, and joins.
func (r *Runtime) run(maxRounds int, det *stats.ConvergenceDetector) (*Result, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("dist: rounds must be positive, got %d", maxRounds)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(r.ctlNodes)*2+len(r.resNodes)*2+8)
	r.startNodes(maxRounds, &wg, errCh)

	// Coordinator: aggregate per-round utilities and watch report leases; on
	// convergence, broadcast stop. The coordinator reads until its endpoint
	// closes after all nodes have joined.
	res := &Result{UtilitySeries: stats.NewSeries("utility")}
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		perRound := make(map[int]float64)
		counts := make(map[int]int)
		converged := false
		nextEmit := 0
		lastReport := make(map[string]time.Time)
		expired := make(map[string]bool)
		start := time.Now()
		lastEmit := start
		for ti := range r.p.Tasks {
			lastReport[r.p.Tasks[ti].Name] = start
		}
		var lease <-chan time.Time
		if r.fp.LeaseAfter > 0 {
			t := time.NewTicker(r.fp.LeaseAfter)
			defer t.Stop()
			lease = t.C
		}
		for {
			select {
			case m, ok := <-r.coordinator.Recv():
				if !ok {
					return
				}
				if m.Kind == kindAdmitQuery {
					r.handleAdmitQuery(m, res)
					continue
				}
				if m.Kind != kindReport {
					continue
				}
				var rm reportMsg
				if err := m.Decode(&rm); err != nil {
					errCh <- err
					continue
				}
				lastReport[rm.Task] = time.Now()
				delete(expired, rm.Task)
				perRound[rm.Round] += rm.Utility
				counts[rm.Round]++
				// Emit completed rounds strictly in order: a fast
				// controller's round r+1 report can beat a slow controller's
				// round r report.
				for counts[nextEmit] == len(r.ctlNodes) {
					u := perRound[nextEmit]
					res.UtilitySeries.Append(float64(nextEmit), u)
					delete(perRound, nextEmit)
					delete(counts, nextEmit)
					if r.dm != nil {
						now := time.Now()
						r.dm.Rounds.Inc()
						r.dm.RoundSeconds.Observe(now.Sub(lastEmit).Seconds())
						lastEmit = now
					}
					if det != nil && !converged && det.Observe(u) {
						converged = true
						res.Converged = true
						if r.obsv != nil {
							r.obsv.Emit(obs.Event{Kind: obs.EventConverged, Round: nextEmit, Value: u})
						}
						r.broadcastStop(nextEmit+1, 0, errCh)
					}
					nextEmit++
				}
			case <-lease:
				now := time.Now()
				for task, ts := range lastReport {
					if now.Sub(ts) > r.fp.LeaseAfter && !expired[task] {
						expired[task] = true
						res.LeaseExpirations++
						if r.dm != nil {
							r.dm.LeaseExpirations.Inc()
						}
						if r.obsv != nil {
							r.obsv.Emit(obs.Event{Kind: obs.EventLeaseExpiry, Round: nextEmit, Task: task})
						}
					}
				}
			}
		}
	}()

	wg.Wait()
	r.coordinator.Close()
	<-coordDone
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	r.collect(res)
	return res, nil
}

// broadcastStop tells every node to stop after the given round, stamped with
// the coordinator's current epoch (0 for uninterrupted runs).
func (r *Runtime) broadcastStop(afterRound int, epoch uint64, errCh chan<- error) {
	msg := stopMsg{AfterRound: afterRound, Epoch: epoch}
	for ti := range r.p.Tasks {
		if err := r.coordinator.Send(controllerAddr(r.p.Tasks[ti].Name), kindStop, msg); err != nil {
			errCh <- err
		}
	}
	for ri := range r.p.Resources {
		if err := r.coordinator.Send(resourceAddr(r.p.Resources[ri].ID), kindStop, msg); err != nil {
			errCh <- err
		}
	}
}

// Close releases all endpoints.
func (r *Runtime) Close() error {
	var first error
	for _, n := range r.ctlNodes {
		if err := n.ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, n := range r.resNodes {
		if err := n.ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
