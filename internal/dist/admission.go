package dist

import (
	"fmt"
	"time"

	"lla/internal/admit"
	"lla/internal/obs"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Coordinator-side admission. A running deployment answers "could this task
// join?" queries without owning an engine: the coordinator screens the
// candidate with the static necessary conditions (workload.Analyze) and the
// admission price screen (admit.PriceScreen) against the per-resource price
// mirrors the resource nodes refresh every completed round. That is the
// cheap two-gate prefix of the full controller pipeline — the sufficient
// trial-optimization gate needs an engine, so a coordinator admit verdict
// means "worth enacting", not "proven schedulable". Decisions are recorded
// on the run's Result and answered to the querying endpoint best-effort.

// AdmissionQuery describes a chain-pipeline candidate, mirroring
// workload.ChurnTemplate: stage i executes for StageExecMs[i] on
// Resources[i]. It is also the wire payload of kindAdmitQuery.
type AdmissionQuery struct {
	// Name is the instance name; it must not collide with a resident task.
	Name string `json:"name"`
	// CriticalMs is the end-to-end deadline.
	CriticalMs float64 `json:"criticalMs"`
	// StageExecMs holds per-stage WCETs; Resources the per-stage bindings.
	StageExecMs []float64 `json:"stageExecMs"`
	Resources   []string  `json:"resources"`
	// UtilityK scales the linear utility curve (K·CriticalMs at zero
	// latency); PeriodMs is the trigger period (default 100).
	UtilityK float64 `json:"utilityK"`
	PeriodMs float64 `json:"periodMs,omitempty"`
}

// AdmissionDecision is the coordinator's verdict, also the wire payload of
// kindAdmitDecision.
type AdmissionDecision struct {
	Name     string `json:"name"`
	Admitted bool   `json:"admitted"`
	// Stage is the admission gate that decided (admit.StageStatic or
	// admit.StagePrice — the coordinator runs no trial gate).
	Stage  string `json:"stage"`
	Reason string `json:"reason"`
}

// SetAdmissionPolicy overrides the admission screen configuration used for
// coordinator-side queries (headroom, overcommit, cost-benefit bound). Call
// before Run; the zero config uses admit's defaults.
func (r *Runtime) SetAdmissionPolicy(cfg admit.Config) { r.admitCfg = cfg }

// decideAdmission screens one query against the deployed workload and the
// live price mirrors.
func (r *Runtime) decideAdmission(q AdmissionQuery) AdmissionDecision {
	d := AdmissionDecision{Name: q.Name, Stage: admit.StageStatic}
	tpl := workload.ChurnTemplate{
		Name:        q.Name,
		CriticalMs:  q.CriticalMs,
		StageExecMs: q.StageExecMs,
		UtilityK:    q.UtilityK,
		PeriodMs:    q.PeriodMs,
	}
	cand, curve, err := tpl.Instantiate(q.Name, q.Resources)
	if err != nil {
		d.Reason = err.Error()
		return d
	}
	resident := r.p.Workload()
	if resident.TaskByName(q.Name) != nil {
		d.Reason = fmt.Sprintf("task %q is already resident", q.Name)
		return d
	}
	trial := resident.Clone()
	trial.Tasks = append(trial.Tasks, cand)
	trial.Curves[q.Name] = curve

	rep, err := workload.Analyze(trial)
	if err != nil {
		d.Reason = err.Error()
		return d
	}
	if !rep.Feasible() {
		d.Reason = rep.String()
		return d
	}

	mu := make(map[string]float64, len(r.resNodes))
	for ri := range r.resNodes {
		mu[r.p.Resources[ri].ID] = r.resNodes[ri].liveMu.Value()
	}
	d.Stage = admit.StagePrice
	_, reason, err := admit.PriceScreen(trial, cand, curve, r.cfg.WeightMode, mu, r.admitCfg)
	if err != nil {
		d.Reason = err.Error()
		return d
	}
	if reason != "" {
		d.Reason = reason
		return d
	}
	d.Admitted = true
	d.Reason = "passed static and price screens at the live prices"
	return d
}

// handleAdmitQuery decodes, decides, records and (best-effort) answers one
// admission query; called from the coordinator goroutine.
func (r *Runtime) handleAdmitQuery(m transport.Message, res *Result) {
	var q AdmissionQuery
	if err := m.Decode(&q); err != nil {
		return
	}
	d := r.decideAdmission(q)
	res.Admissions = append(res.Admissions, d)
	if r.obsv != nil {
		v := 0.0
		if d.Admitted {
			v = 1
		}
		r.obsv.Emit(obs.Event{Kind: obs.EventAdmission, Task: d.Name, Detail: d.Stage, Value: v})
	}
	if m.From != "" {
		// The querier may already be gone; admission answers are advisory.
		_ = r.coordinator.Send(m.From, kindAdmitDecision, d)
	}
}

// QueryAdmission asks a running deployment's coordinator whether the
// candidate could join, from the given (caller-owned) endpoint, and blocks
// for the decision up to timeout. The endpoint must not be one of the
// deployment's own node endpoints.
func QueryAdmission(ep transport.Endpoint, q AdmissionQuery, timeout time.Duration) (AdmissionDecision, error) {
	if err := ep.Send(coordinatorAddr, kindAdmitQuery, q); err != nil {
		return AdmissionDecision{}, fmt.Errorf("dist: sending admission query: %w", err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case m, ok := <-ep.Recv():
			if !ok {
				return AdmissionDecision{}, fmt.Errorf("dist: endpoint closed before admission decision for %q", q.Name)
			}
			if m.Kind != kindAdmitDecision {
				continue
			}
			var d AdmissionDecision
			if err := m.Decode(&d); err != nil {
				return AdmissionDecision{}, err
			}
			if d.Name != q.Name {
				continue
			}
			return d, nil
		case <-timer.C:
			return AdmissionDecision{}, fmt.Errorf("dist: admission decision for %q timed out after %v", q.Name, timeout)
		}
	}
}
