package dist

import (
	"math"
	"testing"
	"time"

	"lla/internal/core"
	"lla/internal/task"
	"lla/internal/transport"
	"lla/internal/workload"
)

// The chaos suite proves the fault-tolerance layer end to end: the
// round-synchronized Runtime recovers the serial engine's result bitwise
// under loss/delay/duplication/reordering and node crash/restart, and the
// asynchronous runtime converges to the optimum while never violating a
// critical-time constraint during degraded (stale-price) operation.

// fastPolicy shrinks the fault-tolerance timers so chaos tests recover in
// milliseconds instead of the production-shaped defaults.
func fastPolicy() FaultPolicy {
	return FaultPolicy{
		RetransmitAfter: 2 * time.Millisecond,
		RetransmitMax:   40 * time.Millisecond,
		LeaseAfter:      20 * time.Millisecond,
	}
}

// chaosNet wraps a roomy in-process network with the given fault injection.
func chaosNet(cfg transport.ChaosConfig) (*transport.Chaos, *transport.Inproc) {
	inner := transport.NewInproc(transport.InprocConfig{QueueLen: 16384})
	cfg.QueueLen = 16384
	return transport.NewChaos(inner, cfg), inner
}

// runWithDeadline guards chaos runs against protocol hangs.
func runWithDeadline(t *testing.T, rt *Runtime, rounds int) *Result {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := rt.Run(rounds)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		return o.res
	case <-time.After(90 * time.Second):
		t.Fatal("chaos run did not complete")
		return nil
	}
}

// assertMatchesEngine checks bitwise recovery against the serial engine.
func assertMatchesEngine(t *testing.T, res *Result, rounds int) {
	t.Helper()
	e, err := core.NewEngine(workload.Base(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rounds, nil)
	want := e.Snapshot()
	for ti := range want.LatMs {
		for si := range want.LatMs[ti] {
			if d := math.Abs(res.LatMs[ti][si] - want.LatMs[ti][si]); d > 1e-9 {
				t.Errorf("lat[%d][%d]: dist %v engine %v", ti, si, res.LatMs[ti][si], want.LatMs[ti][si])
			}
		}
	}
	for ri := range want.Mu {
		if d := math.Abs(res.Mu[ri] - want.Mu[ri]); d > 1e-9 {
			t.Errorf("mu[%d]: dist %v engine %v", ri, res.Mu[ri], want.Mu[ri])
		}
	}
	if d := math.Abs(res.Utility - want.Utility); d > 1e-6 {
		t.Errorf("utility: dist %v engine %v", res.Utility, want.Utility)
	}
}

// Seeded 10% loss plus delay, duplication, and reordering: retransmission
// and stale-message recovery must reproduce the engine exactly — far inside
// the 1%-of-serial-utility acceptance bound.
func TestChaosSyncLossDelayDupMatchesEngine(t *testing.T) {
	const rounds = 80
	ch, inner := chaosNet(transport.ChaosConfig{
		Seed:          42,
		LossRate:      0.10,
		DupRate:       0.10,
		DelayMs:       0.3,
		DelayJitterMs: 0.5,
		ReorderRate:   0.10,
	})
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	res := runWithDeadline(t, rt, rounds)
	assertMatchesEngine(t, res, rounds)
	if res.Retransmits == 0 {
		t.Error("10% loss over 80 rounds recovered without a single retransmit")
	}
	st := ch.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Errorf("chaos injected no faults: %v", st)
	}
	ch.Wait()
	inner.Wait()
}

// A resource node crashed at start and restarted mid-run: its traffic is
// blackholed in both directions, the protocol stalls for the affected tasks,
// and retransmission resynchronizes everything after the restart — again
// bitwise equal to the engine. The coordinator's lease tracking must notice
// the stalled controllers.
func TestChaosSyncResourceCrashRestartMatchesEngine(t *testing.T) {
	const rounds = 120
	ch, inner := chaosNet(transport.ChaosConfig{Seed: 7})
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	ch.Crash(resourceAddr("r0"))
	go func() {
		time.Sleep(60 * time.Millisecond)
		ch.Restart(resourceAddr("r0"))
	}()

	res := runWithDeadline(t, rt, rounds)
	assertMatchesEngine(t, res, rounds)
	if res.Retransmits == 0 {
		t.Error("crash recovery happened without retransmits")
	}
	if st := ch.Stats(); st.Blackholed == 0 {
		t.Errorf("crash blackholed nothing: %v", st)
	}
	if res.LeaseExpirations == 0 {
		t.Error("coordinator saw no lease expiration during a 60ms crash with a 20ms lease")
	}
	ch.Wait()
	inner.Wait()
}

// Shutdown stops a long run gracefully: node goroutines exit at their next
// receive, Run returns without error, and the final state is flushed.
func TestRuntimeShutdownGraceful(t *testing.T) {
	rt, err := New(workload.Base(), core.Config{}, transport.NewInproc(transport.InprocConfig{QueueLen: 8192}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := rt.Run(10_000_000)
		done <- out{res, err}
	}()
	time.Sleep(30 * time.Millisecond)
	rt.Shutdown()
	rt.Shutdown() // idempotent

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("graceful shutdown returned error: %v", o.err)
		}
		if len(o.res.LatMs) != len(workload.Base().Tasks) {
			t.Errorf("shutdown did not flush final state: %+v", o.res)
		}
		if math.IsNaN(o.res.Utility) || o.res.Utility <= 0 {
			t.Errorf("shutdown utility = %v", o.res.Utility)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not stop the run")
	}
}

// Asynchronous runtime under seeded loss, duplication, small delay, and a
// resource-node crash/restart (pause/resume): sequence numbers reject
// duplicated/reordered-stale prices, leases detect the silent resource,
// degraded allocations stay deadline-safe, and after resync the run still
// converges within 1% of the serial engine's utility.
func TestChaosAsyncLossCrashRestartConverges(t *testing.T) {
	e, err := core.NewEngine(workload.Base(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(20000, 1e-9, 30, 1e-3)
	if !ok {
		t.Fatalf("serial engine did not converge: %v", snap)
	}
	want := snap.Utility

	ch, inner := chaosNet(transport.ChaosConfig{
		Seed:          11,
		LossRate:      0.10,
		DupRate:       0.10,
		DelayMs:       0.1,
		DelayJitterMs: 0.2,
	})
	fp := FaultPolicy{
		RetransmitAfter: 3 * time.Millisecond,
		RetransmitMax:   30 * time.Millisecond,
		LeaseAfter:      25 * time.Millisecond,
	}
	go func() {
		time.Sleep(700 * time.Millisecond)
		ch.Crash(resourceAddr("r0"))
		time.Sleep(500 * time.Millisecond)
		ch.Restart(resourceAddr("r0"))
	}()
	res, err := RunAsyncWithPolicy(workload.Base(), core.Config{}, ch, 3500*time.Millisecond, time.Millisecond, fp)
	if err != nil {
		t.Fatal(err)
	}

	if rel := math.Abs(res.Utility-want) / math.Abs(want); rel > 0.01 {
		t.Errorf("async utility %.3f vs serial %.3f (%.2f%% off, want ≤1%%)", res.Utility, want, rel*100)
	}
	if res.DegradedRounds == 0 {
		t.Error("a 500ms crash with a 25ms lease caused no degraded rounds")
	}
	if res.MaxDegradedPathViolation > 1e-9 {
		t.Errorf("degraded allocation violated a critical-time constraint: %v", res.MaxDegradedPathViolation)
	}
	if res.RejectedStale == 0 {
		t.Error("10% duplication passed sequence-number dedup untouched")
	}
	if res.Retransmits == 0 {
		t.Error("no heartbeat rebroadcasts despite a crashed peer")
	}

	// The final allocation must honor every path's critical time (1% slack
	// for in-flight asynchronous wobble).
	p, err := core.Compile(workload.Base(), task.WeightPathNormalized)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range p.Tasks {
		pt := &p.Tasks[ti]
		for pi, path := range pt.Paths {
			sum := 0.0
			for _, s := range path {
				sum += res.LatMs[ti][s]
			}
			if sum > pt.CriticalMs*1.01 {
				t.Errorf("task %s path %d: %.3fms exceeds critical time %.3fms", pt.Name, pi, sum, pt.CriticalMs)
			}
		}
	}
	ch.Wait()
	inner.Wait()
}

// Loss alone (no duplication or delay): the asynchronous heartbeat recovers
// dropped broadcasts and the run stays within 1% of the serial optimum.
func TestChaosAsyncLossOnlyBoundedGap(t *testing.T) {
	e, err := core.NewEngine(workload.Base(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.RunUntilConverged(20000, 1e-9, 30, 1e-3)
	if !ok {
		t.Fatalf("serial engine did not converge: %v", snap)
	}
	want := snap.Utility

	ch, inner := chaosNet(transport.ChaosConfig{Seed: 3, LossRate: 0.15})
	fp := FaultPolicy{
		RetransmitAfter: 3 * time.Millisecond,
		RetransmitMax:   30 * time.Millisecond,
		LeaseAfter:      25 * time.Millisecond,
	}
	res, err := RunAsyncWithPolicy(workload.Base(), core.Config{}, ch, 2*time.Second, time.Millisecond, fp)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Utility-want) / math.Abs(want); rel > 0.01 {
		t.Errorf("async utility %.3f vs serial %.3f (%.2f%% off, want ≤1%%)", res.Utility, want, rel*100)
	}
	if res.ControllerSteps == 0 || res.ResourceSteps == 0 {
		t.Errorf("no compute steps: %+v", res)
	}
	if st := ch.Stats(); st.Dropped == 0 {
		t.Errorf("chaos dropped nothing: %v", st)
	}
	ch.Wait()
	inner.Wait()
}
