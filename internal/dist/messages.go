// Package dist runs LLA as a genuinely distributed system (Section 4.1):
// one resource node per resource computing prices (Equation 8), one
// controller node per task allocating latencies and path prices (Equations
// 7 and 9), all communicating over a transport.Network. The protocol is
// round-synchronized, so a dist run over a loss-free network reproduces the
// synchronous core.Engine iterate-for-iterate; the test suite asserts that
// equivalence.
package dist

// priceMsg is sent by a resource node to every controller with a subtask on
// the resource: the resource price and the congestion flag that drives the
// adaptive path-step heuristic. Seq is a per-sender monotonic sequence number
// used by the asynchronous protocol to reject duplicated and reordered-stale
// deliveries; the round-synchronized protocol leaves it zero (round gating
// already makes folds idempotent there).
type priceMsg struct {
	Round     int     `json:"round"`
	Seq       int64   `json:"seq,omitempty"`
	Resource  string  `json:"resource"`
	Mu        float64 `json:"mu"`
	Congested bool    `json:"congested"`
}

// latencyMsg is sent by a controller to a resource node: the newly allocated
// latencies of the controller's subtasks hosted on that resource. Seq works
// like priceMsg.Seq.
type latencyMsg struct {
	Round int                `json:"round"`
	Seq   int64              `json:"seq,omitempty"`
	Task  string             `json:"task"`
	LatMs map[string]float64 `json:"latMs"`
}

// reportMsg is sent by a controller to the coordinator after each round so
// the runtime can aggregate utility and detect convergence.
type reportMsg struct {
	Round   int     `json:"round"`
	Task    string  `json:"task"`
	Utility float64 `json:"utility"`
}

// stopMsg tells a node to finish after completing the given round.
type stopMsg struct {
	AfterRound int `json:"afterRound"`
}

// finMsg is sent by a resource node to its controllers when it has completed
// its final round. Controllers linger after their last allocation, answering
// retransmitted prices, until every resource has finned (or a quiet timeout
// elapses): without this tail handshake, a lost final-round latency message
// would strand the resource with no sender left to recover it.
type finMsg struct {
	Resource string `json:"resource"`
}

// Message kind tags.
const (
	kindPrice         = "price"
	kindLatency       = "latency"
	kindReport        = "report"
	kindStop          = "stop"
	kindFin           = "fin"
	kindAdmitQuery    = "admitQuery"
	kindAdmitDecision = "admitDecision"
)

// Address helpers: resources and controllers get deterministic names.
func resourceAddr(id string) string  { return "res/" + id }
func controllerAddr(t string) string { return "ctl/" + t }

// coordinatorAddr is the runtime's aggregation endpoint.
const coordinatorAddr = "coordinator"
