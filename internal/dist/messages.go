// Package dist runs LLA as a genuinely distributed system (Section 4.1):
// one resource node per resource computing prices (Equation 8), one
// controller node per task allocating latencies and path prices (Equations
// 7 and 9), all communicating over a transport.Network. The protocol is
// round-synchronized, so a dist run over a loss-free network reproduces the
// synchronous core.Engine iterate-for-iterate; the test suite asserts that
// equivalence.
package dist

import "encoding/json"

// Delta codec. Near convergence the per-round payloads stop changing:
// prices freeze bitwise and so do latencies. The round-synchronized
// protocol still needs one message per edge per round (the round gate
// counts senders, not bytes), so instead of suppressing the send, a sender
// whose payload is bitwise identical to its previous round's replaces it
// with a delta marker — Delta set, the value fields omitted — meaning "same
// as my round r−1 message". The round protocol makes the reference
// well-founded without per-receiver ack maps: a resource broadcasts its
// round-r price only after folding every controller's round r−1 latencies,
// and a controller sends round-r latencies only after folding every round-r
// price, so the receiver of a round-r delta provably folded the sender's
// round r−1 value already. Retransmissions and stale recovery always
// re-send the cached full message, so a lost delta is recovered by value,
// and every deltaKeyframeInterval rounds a full keyframe goes out anyway as
// defense-in-depth. Folding a delta (keep the held value) therefore
// produces the same bits as folding the full message, and the run stays
// bitwise identical to the dense protocol and to core.Engine.

// deltaKeyframeInterval is the period of forced full-payload broadcasts
// when the delta codec is active: rounds divisible by it never use delta
// markers, bounding how long any recovery path can go without seeing a
// payload by value.
const deltaKeyframeInterval = 16

// encodedBytesSaved reports how many payload bytes a delta marker keeps off
// the wire relative to the full message, measured on the JSON encoding the
// transport actually ships. Returns 0 when the marker is not smaller.
func encodedBytesSaved(full, delta any) int64 {
	fb, err1 := json.Marshal(full)
	db, err2 := json.Marshal(delta)
	if err1 != nil || err2 != nil || len(fb) <= len(db) {
		return 0
	}
	return int64(len(fb) - len(db))
}

// priceMsg is sent by a resource node to every controller with a subtask on
// the resource: the resource price and the congestion flag that drives the
// adaptive path-step heuristic. Seq is a per-sender monotonic sequence number
// used by the asynchronous protocol to reject duplicated and reordered-stale
// deliveries; the round-synchronized protocol leaves it zero (round gating
// already makes folds idempotent there). Delta marks a delta-encoded
// broadcast: Mu/Congested are omitted and the receiver keeps the values it
// folded for the previous round.
type priceMsg struct {
	Round     int     `json:"round"`
	Seq       int64   `json:"seq,omitempty"`
	Epoch     uint64  `json:"epoch,omitempty"`
	Resource  string  `json:"resource"`
	Mu        float64 `json:"mu,omitempty"`
	Congested bool    `json:"congested,omitempty"`
	Delta     bool    `json:"delta,omitempty"`
}

// latencyMsg is sent by a controller to a resource node: the newly allocated
// latencies of the controller's subtasks hosted on that resource. Seq works
// like priceMsg.Seq; Delta marks a coalesced share report whose latencies
// are unchanged from the previous round (LatMs omitted).
type latencyMsg struct {
	Round int                `json:"round"`
	Seq   int64              `json:"seq,omitempty"`
	Epoch uint64             `json:"epoch,omitempty"`
	Task  string             `json:"task"`
	LatMs map[string]float64 `json:"latMs,omitempty"`
	Delta bool               `json:"delta,omitempty"`
}

// Epoch fencing (DESIGN.md §13). Every frame is stamped with the sender's
// coordinator epoch — the generation number a restarted coordinator bumps
// after loading its checkpoint. Frames are divided into two fencing classes:
//
//   - Coordinator control frames (stop, rejoin) and coordinator-bound frames
//     (report, rejoinAck) are FENCED: a receiver discards — and counts — any
//     such frame whose epoch is below its own. This is what stops a zombie
//     coordinator from split-braining the cluster: its stale stop frames are
//     provably from a dead generation and cannot halt nodes that already
//     rejoined the live one.
//   - Node-to-node data frames (price, latency) are STAMPED BUT NOT FENCED.
//     The round protocol's correctness never depended on the coordinator
//     (reports are fire-and-forget), so a price retransmitted from before the
//     crash must still be folded after it — fencing data frames would strand
//     the very recovery paths that make the run bitwise-exact.
type reportMsg struct {
	Round   int     `json:"round"`
	Epoch   uint64  `json:"epoch,omitempty"`
	Task    string  `json:"task"`
	Utility float64 `json:"utility"`
}

// stopMsg tells a node to finish after completing the given round. Nodes
// fence stale-epoch stops (see the epoch-fencing comment above).
type stopMsg struct {
	AfterRound int    `json:"afterRound"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// rejoinMsg is broadcast by a restarted coordinator: it announces the bumped
// epoch and asks every live node to re-register. Controllers answer with a
// rejoinAckMsg and re-send their cached last report (re-stamped with the new
// epoch) so the coordinator can rebuild its aggregation state; resources just
// adopt the epoch so they fence stale stops.
type rejoinMsg struct {
	Epoch uint64 `json:"epoch"`
}

// rejoinAckMsg is a controller's answer to a rejoin: the adopted epoch and
// the last round it reported, which the coordinator uses to resynchronize
// its emission cursor past the rounds whose reports died with the crash.
type rejoinAckMsg struct {
	Epoch uint64 `json:"epoch"`
	Task  string `json:"task"`
	Round int    `json:"round"`
}

// finMsg is sent by a resource node to its controllers when it has completed
// its final round. Controllers linger after their last allocation, answering
// retransmitted prices, until every resource has finned (or a quiet timeout
// elapses): without this tail handshake, a lost final-round latency message
// would strand the resource with no sender left to recover it.
type finMsg struct {
	Resource string `json:"resource"`
}

// Message kind tags.
const (
	kindPrice         = "price"
	kindLatency       = "latency"
	kindReport        = "report"
	kindStop          = "stop"
	kindFin           = "fin"
	kindAdmitQuery    = "admitQuery"
	kindAdmitDecision = "admitDecision"
	kindRejoin        = "rejoin"
	kindRejoinAck     = "rejoinAck"
)

// Address helpers: resources and controllers get deterministic names.
func resourceAddr(id string) string  { return "res/" + id }
func controllerAddr(t string) string { return "ctl/" + t }

// coordinatorAddr is the runtime's aggregation endpoint.
const coordinatorAddr = "coordinator"
