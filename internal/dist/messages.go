// Package dist runs LLA as a genuinely distributed system (Section 4.1):
// one resource node per resource computing prices (Equation 8), one
// controller node per task allocating latencies and path prices (Equations
// 7 and 9), all communicating over a transport.Network. The protocol is
// round-synchronized, so a dist run over a loss-free network reproduces the
// synchronous core.Engine iterate-for-iterate; the test suite asserts that
// equivalence.
package dist

import "encoding/json"

// Delta codec. Near convergence the per-round payloads stop changing:
// prices freeze bitwise and so do latencies. The round-synchronized
// protocol still needs one message per edge per round (the round gate
// counts senders, not bytes), so instead of suppressing the send, a sender
// whose payload is bitwise identical to its previous round's replaces it
// with a delta marker — Delta set, the value fields omitted — meaning "same
// as my round r−1 message". The round protocol makes the reference
// well-founded without per-receiver ack maps: a resource broadcasts its
// round-r price only after folding every controller's round r−1 latencies,
// and a controller sends round-r latencies only after folding every round-r
// price, so the receiver of a round-r delta provably folded the sender's
// round r−1 value already. Retransmissions and stale recovery always
// re-send the cached full message, so a lost delta is recovered by value,
// and every deltaKeyframeInterval rounds a full keyframe goes out anyway as
// defense-in-depth. Folding a delta (keep the held value) therefore
// produces the same bits as folding the full message, and the run stays
// bitwise identical to the dense protocol and to core.Engine.

// deltaKeyframeInterval is the period of forced full-payload broadcasts
// when the delta codec is active: rounds divisible by it never use delta
// markers, bounding how long any recovery path can go without seeing a
// payload by value.
const deltaKeyframeInterval = 16

// encodedBytesSaved reports how many payload bytes a delta marker keeps off
// the wire relative to the full message, measured on the JSON encoding the
// transport actually ships. Returns 0 when the marker is not smaller.
func encodedBytesSaved(full, delta any) int64 {
	fb, err1 := json.Marshal(full)
	db, err2 := json.Marshal(delta)
	if err1 != nil || err2 != nil || len(fb) <= len(db) {
		return 0
	}
	return int64(len(fb) - len(db))
}

// priceMsg is sent by a resource node to every controller with a subtask on
// the resource: the resource price and the congestion flag that drives the
// adaptive path-step heuristic. Seq is a per-sender monotonic sequence number
// used by the asynchronous protocol to reject duplicated and reordered-stale
// deliveries; the round-synchronized protocol leaves it zero (round gating
// already makes folds idempotent there). Delta marks a delta-encoded
// broadcast: Mu/Congested are omitted and the receiver keeps the values it
// folded for the previous round.
type priceMsg struct {
	Round     int     `json:"round"`
	Seq       int64   `json:"seq,omitempty"`
	Resource  string  `json:"resource"`
	Mu        float64 `json:"mu,omitempty"`
	Congested bool    `json:"congested,omitempty"`
	Delta     bool    `json:"delta,omitempty"`
}

// latencyMsg is sent by a controller to a resource node: the newly allocated
// latencies of the controller's subtasks hosted on that resource. Seq works
// like priceMsg.Seq; Delta marks a coalesced share report whose latencies
// are unchanged from the previous round (LatMs omitted).
type latencyMsg struct {
	Round int                `json:"round"`
	Seq   int64              `json:"seq,omitempty"`
	Task  string             `json:"task"`
	LatMs map[string]float64 `json:"latMs,omitempty"`
	Delta bool               `json:"delta,omitempty"`
}

// reportMsg is sent by a controller to the coordinator after each round so
// the runtime can aggregate utility and detect convergence.
type reportMsg struct {
	Round   int     `json:"round"`
	Task    string  `json:"task"`
	Utility float64 `json:"utility"`
}

// stopMsg tells a node to finish after completing the given round.
type stopMsg struct {
	AfterRound int `json:"afterRound"`
}

// finMsg is sent by a resource node to its controllers when it has completed
// its final round. Controllers linger after their last allocation, answering
// retransmitted prices, until every resource has finned (or a quiet timeout
// elapses): without this tail handshake, a lost final-round latency message
// would strand the resource with no sender left to recover it.
type finMsg struct {
	Resource string `json:"resource"`
}

// Message kind tags.
const (
	kindPrice         = "price"
	kindLatency       = "latency"
	kindReport        = "report"
	kindStop          = "stop"
	kindFin           = "fin"
	kindAdmitQuery    = "admitQuery"
	kindAdmitDecision = "admitDecision"
)

// Address helpers: resources and controllers get deterministic names.
func resourceAddr(id string) string  { return "res/" + id }
func controllerAddr(t string) string { return "ctl/" + t }

// coordinatorAddr is the runtime's aggregation endpoint.
const coordinatorAddr = "coordinator"
