package dist

import "time"

// FaultPolicy tunes the fault-tolerance machinery of the distributed
// runtimes: sender-side retransmission, receiver-side staleness recovery, and
// lease-based failure detection. The zero value disables a mechanism (a zero
// RetransmitAfter never retransmits, a zero LeaseAfter never declares a peer
// failed); DefaultFaultPolicy returns production-shaped values.
type FaultPolicy struct {
	// RetransmitAfter is how long a node waits for protocol input before
	// re-sending its last output. Retries back off exponentially (with
	// jitter) up to RetransmitMax. In async mode it is also the heartbeat
	// interval: an idle node rebroadcasts its state every RetransmitAfter.
	RetransmitAfter time.Duration
	// RetransmitMax caps the retransmission backoff.
	RetransmitMax time.Duration
	// LeaseAfter is how long a peer may stay silent before it is considered
	// failed. Async controllers then freeze the peer's last-known price and
	// clamp allocations deadline-safe; the coordinator counts the expiration.
	LeaseAfter time.Duration
}

// DefaultFaultPolicy returns the policy the runtimes use unless overridden.
func DefaultFaultPolicy() FaultPolicy {
	return FaultPolicy{
		RetransmitAfter: 25 * time.Millisecond,
		RetransmitMax:   500 * time.Millisecond,
		LeaseAfter:      150 * time.Millisecond,
	}
}

// withDefaults fills unset knobs that depend on set ones.
func (fp FaultPolicy) withDefaults() FaultPolicy {
	if fp.RetransmitAfter > 0 && fp.RetransmitMax <= 0 {
		fp.RetransmitMax = 20 * fp.RetransmitAfter
	}
	return fp
}

// stopRequested reports whether the stop channel (possibly nil) has fired.
func stopRequested(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
