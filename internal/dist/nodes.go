package dist

import (
	"fmt"

	"lla/internal/core"
	"lla/internal/transport"
)

// resourceNode hosts one resource's price agent (Section 4.3). Each round it
// gathers the fresh latencies of every subtask on the resource, updates the
// price by gradient projection, and multicasts the new price (with the
// congestion flag for the adaptive heuristic) to the controllers of the
// tasks running here.
type resourceNode struct {
	p     *core.Problem
	ri    int
	agent *core.ResourceAgent
	ep    transport.Endpoint
	// controllers are the task names with subtasks on this resource.
	controllers []string
	// latNames maps (task name, subtask name) to (ti, si).
	subIdx map[string][2]int
	// lat holds the latest latency of each subtask on this resource.
	lat map[[2]int]float64
}

// newResourceNode wires a resource agent to an endpoint.
func newResourceNode(p *core.Problem, ri int, agent *core.ResourceAgent, ep transport.Endpoint) *resourceNode {
	n := &resourceNode{
		p:      p,
		ri:     ri,
		agent:  agent,
		ep:     ep,
		subIdx: make(map[string][2]int),
		lat:    make(map[[2]int]float64),
	}
	seen := make(map[string]bool)
	for _, sub := range p.Resources[ri].Subs {
		ti, si := sub[0], sub[1]
		tn := p.Tasks[ti].Name
		if !seen[tn] {
			seen[tn] = true
			n.controllers = append(n.controllers, tn)
		}
		n.subIdx[tn+"/"+p.Tasks[ti].SubtaskNames[si]] = sub
	}
	return n
}

// broadcastPrice sends the current price to every interested controller.
func (n *resourceNode) broadcastPrice(round int, congested bool) error {
	msg := priceMsg{
		Round:     round,
		Resource:  n.p.Resources[n.ri].ID,
		Mu:        n.agent.Mu,
		Congested: congested,
	}
	for _, tn := range n.controllers {
		if err := n.ep.Send(controllerAddr(tn), kindPrice, msg); err != nil {
			return fmt.Errorf("dist: resource %s: %w", n.p.Resources[n.ri].ID, err)
		}
	}
	return nil
}

// run executes the node until maxRounds latency rounds are processed or a
// stop message lowers the limit. It returns the first protocol error.
func (n *resourceNode) run(maxRounds int) error {
	if err := n.broadcastPrice(0, false); err != nil {
		return err
	}
	limit := maxRounds
	round := 0
	// pending buffers latency messages by round (delayed transports may
	// reorder across rounds).
	pending := make(map[int][]latencyMsg)
	got := make(map[string]bool)

	for round < limit {
		m, ok := <-n.ep.Recv()
		if !ok {
			return fmt.Errorf("dist: resource %s: endpoint closed mid-protocol", n.p.Resources[n.ri].ID)
		}
		switch m.Kind {
		case kindLatency:
			var lm latencyMsg
			if err := m.Decode(&lm); err != nil {
				return err
			}
			pending[lm.Round] = append(pending[lm.Round], lm)
		case kindStop:
			var sm stopMsg
			if err := m.Decode(&sm); err != nil {
				return err
			}
			if sm.AfterRound < limit {
				limit = sm.AfterRound
			}
			continue
		default:
			return fmt.Errorf("dist: resource %s: unexpected message kind %q", n.p.Resources[n.ri].ID, m.Kind)
		}

		// Fold in everything buffered for the current round.
		for _, lm := range pending[round] {
			for sn, lat := range lm.LatMs {
				sub, ok := n.subIdx[lm.Task+"/"+sn]
				if !ok {
					return fmt.Errorf("dist: resource %s: unknown subtask %s/%s", n.p.Resources[n.ri].ID, lm.Task, sn)
				}
				n.lat[sub] = lat
			}
			got[lm.Task] = true
		}
		delete(pending, round)
		if len(got) < len(n.controllers) {
			continue // round incomplete
		}

		// Round complete: price computation (Equation 8).
		sum := 0.0
		for _, sub := range n.p.Resources[n.ri].Subs {
			ti, si := sub[0], sub[1]
			sum += n.p.Tasks[ti].Share[si].Share(n.lat[sub])
		}
		n.agent.UpdatePrice(sum)
		round++
		got = make(map[string]bool)
		if round < limit {
			if err := n.broadcastPrice(round, n.agent.Congested(sum)); err != nil {
				return err
			}
		}
	}
	return nil
}

// controllerNode hosts one task's controller (Section 4.2). Each round it
// waits for the prices of every resource its subtasks use, refreshes path
// prices, re-solves latencies, and sends them to the resources.
type controllerNode struct {
	p    *core.Problem
	ti   int
	ctl  *core.Controller
	ep   transport.Endpoint
	res  []int // distinct resource indices used by the task
	name string
	// reports controls whether per-round utility reports are sent to the
	// coordinator; standalone deployments have no coordinator and disable
	// them.
	reports bool
}

// newControllerNode wires a task controller to an endpoint.
func newControllerNode(p *core.Problem, ti int, ctl *core.Controller, ep transport.Endpoint) *controllerNode {
	n := &controllerNode{p: p, ti: ti, ctl: ctl, ep: ep, name: p.Tasks[ti].Name, reports: true}
	seen := make(map[int]bool)
	for _, ri := range p.Tasks[ti].Res {
		if !seen[ri] {
			seen[ri] = true
			n.res = append(n.res, ri)
		}
	}
	return n
}

// sendLatencies distributes the freshly allocated latencies, grouped per
// resource, and reports utility to the coordinator.
func (n *controllerNode) sendLatencies(round int) error {
	pt := &n.p.Tasks[n.ti]
	byRes := make(map[int]map[string]float64, len(n.res))
	for si, ri := range pt.Res {
		m := byRes[ri]
		if m == nil {
			m = make(map[string]float64)
			byRes[ri] = m
		}
		m[pt.SubtaskNames[si]] = n.ctl.LatMs[si]
	}
	for ri, lats := range byRes {
		msg := latencyMsg{Round: round, Task: n.name, LatMs: lats}
		if err := n.ep.Send(resourceAddr(n.p.Resources[ri].ID), kindLatency, msg); err != nil {
			return fmt.Errorf("dist: controller %s: %w", n.name, err)
		}
	}
	if !n.reports {
		return nil
	}
	return n.ep.Send(coordinatorAddr, kindReport, reportMsg{
		Round:   round,
		Task:    n.name,
		Utility: n.ctl.Utility(),
	})
}

// run executes the controller until maxRounds allocations are done or a
// stop message lowers the limit.
func (n *controllerNode) run(maxRounds int) error {
	limit := maxRounds
	round := 0
	mu := make([]float64, len(n.p.Resources))
	congested := make([]bool, len(n.p.Resources))
	pending := make(map[int][]priceMsg)
	got := make(map[string]bool)

	for round < limit {
		m, ok := <-n.ep.Recv()
		if !ok {
			return fmt.Errorf("dist: controller %s: endpoint closed mid-protocol", n.name)
		}
		switch m.Kind {
		case kindPrice:
			var pm priceMsg
			if err := m.Decode(&pm); err != nil {
				return err
			}
			pending[pm.Round] = append(pending[pm.Round], pm)
		case kindStop:
			var sm stopMsg
			if err := m.Decode(&sm); err != nil {
				return err
			}
			if sm.AfterRound < limit {
				limit = sm.AfterRound
			}
			continue
		default:
			return fmt.Errorf("dist: controller %s: unexpected message kind %q", n.name, m.Kind)
		}

		for _, pm := range pending[round] {
			ri := -1
			for i := range n.p.Resources {
				if n.p.Resources[i].ID == pm.Resource {
					ri = i
					break
				}
			}
			if ri < 0 {
				return fmt.Errorf("dist: controller %s: unknown resource %q", n.name, pm.Resource)
			}
			mu[ri] = pm.Mu
			congested[ri] = pm.Congested
			got[pm.Resource] = true
		}
		delete(pending, round)
		if len(got) < len(n.res) {
			continue
		}

		// Round complete: latency allocation (Section 4.2).
		n.ctl.UpdatePathPrices(congested)
		n.ctl.AllocateLatencies(mu)
		if err := n.sendLatencies(round); err != nil {
			return err
		}
		round++
		got = make(map[string]bool)
	}
	return nil
}
