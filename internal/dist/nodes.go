package dist

import (
	"fmt"
	"time"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/transport"
)

// Reliable round protocol. The synchronized protocol survives message loss,
// duplication, and reordering without acknowledgements because its folds are
// idempotent and each round gates on content-completeness, not delivery
// order. Two mechanisms recover lost messages:
//
//   - Sender-side: a node stalled waiting for its current round's inputs
//     re-sends its last output after RetransmitAfter, backing off
//     exponentially (with jitter) up to RetransmitMax.
//   - Receiver-side: a message from a past round means its sender missed our
//     latest output, so we re-send the cached counterpart directly to that
//     peer (and count the rejection).
//
// Round numbering keeps recovery well-founded: a controller is never more
// than one round ahead of any resource it uses, and never behind one, so the
// cached message is always exactly what the stuck peer is waiting for. The
// recovered run is bitwise identical to a loss-free run.

// resourceNode hosts one resource's price agent (Section 4.3). Each round it
// gathers the fresh latencies of every subtask on the resource, updates the
// price by gradient projection, and multicasts the new price (with the
// congestion flag for the adaptive heuristic) to the controllers of the
// tasks running here.
type resourceNode struct {
	p     *core.Problem
	ri    int
	agent *core.ResourceAgent
	ep    transport.Endpoint
	// controllers are the task names with subtasks on this resource.
	controllers []string
	ctlSet      map[string]bool
	// latNames maps (task name, subtask name) to (ti, si).
	subIdx map[string][2]int
	// lat holds the latest latency of each subtask on this resource.
	lat map[[2]int]float64

	// fp, stop and delta are installed by the runtime before run.
	fp   FaultPolicy
	stop <-chan struct{}
	// delta enables the delta codec (messages.go): broadcasts whose payload
	// is bitwise unchanged from the previous round go out as markers.
	delta bool
	// dyn, when non-nil, replaces the agent's built-in gradient step with
	// the configured accelerated price dynamics (dynamics.go).
	dyn *dynStepper
	// lastPrice caches the latest full broadcast for retransmission and
	// stale recovery — recovery always re-sends by value, never a marker.
	lastPrice priceMsg
	// prevMu/prevCong hold the previous round's broadcast payload (the
	// delta codec's reference); prevValid gates the first round.
	prevMu    float64
	prevCong  bool
	prevValid bool
	// epoch is the coordinator generation this node has adopted, learned
	// from rejoin broadcasts and stop frames (monotone max). Stale-epoch
	// coordinator control frames are fenced and counted in fencedEpoch.
	epoch       uint64
	fencedEpoch int64
	// retransmits and rejectedStale count fault-recovery events; read by the
	// runtime after the node goroutine joins. deltaSuppressed counts
	// delta-encoded broadcasts, deltaBytesSaved the payload bytes those
	// markers kept off the wire.
	retransmits     int64
	rejectedStale   int64
	deltaSuppressed int64
	deltaBytesSaved int64
	// mRetransmits/mRejectedStale mirror the counters live on an attached
	// metrics registry; rm carries the per-resource gauges. All nil (and
	// therefore no-ops) unless observability is attached before run.
	mRetransmits, mRejectedStale       *obs.Counter
	mDeltaSuppressed, mDeltaBytesSaved *obs.Counter
	rm                                 *obs.ResourceMetrics
	// liveMu mirrors the agent's price after every completed round. Unlike
	// rm it is always on: the coordinator reads it (atomically, from its own
	// goroutine) to answer admission queries against fresh prices.
	liveMu obs.Gauge
}

// newResourceNode wires a resource agent to an endpoint.
func newResourceNode(p *core.Problem, ri int, agent *core.ResourceAgent, ep transport.Endpoint) *resourceNode {
	n := &resourceNode{
		p:      p,
		ri:     ri,
		agent:  agent,
		ep:     ep,
		ctlSet: make(map[string]bool),
		subIdx: make(map[string][2]int),
		lat:    make(map[[2]int]float64),
	}
	for _, sub := range p.Resources[ri].Subs {
		ti, si := sub[0], sub[1]
		tn := p.Tasks[ti].Name
		if !n.ctlSet[tn] {
			n.ctlSet[tn] = true
			n.controllers = append(n.controllers, tn)
		}
		n.subIdx[tn+"/"+p.Tasks[ti].SubtaskNames[si]] = sub
	}
	n.liveMu.Set(agent.Mu)
	return n
}

// broadcastPrice sends the current price to every interested controller and
// caches the full message for retransmission. With the delta codec enabled
// and the payload bitwise unchanged from the previous round, a delta marker
// goes on the wire instead (except on keyframe rounds).
func (n *resourceNode) broadcastPrice(round int, congested bool) error {
	msg := priceMsg{
		Round:     round,
		Epoch:     n.epoch,
		Resource:  n.p.Resources[n.ri].ID,
		Mu:        n.agent.Mu,
		Congested: congested,
	}
	n.lastPrice = msg
	wire := msg
	if n.delta && n.prevValid && round%deltaKeyframeInterval != 0 &&
		msg.Mu == n.prevMu && msg.Congested == n.prevCong {
		wire = priceMsg{Round: round, Epoch: n.epoch, Resource: msg.Resource, Delta: true}
		saved := encodedBytesSaved(msg, wire) * int64(len(n.controllers))
		n.deltaSuppressed += int64(len(n.controllers))
		n.deltaBytesSaved += saved
		n.mDeltaSuppressed.Add(int64(len(n.controllers)))
		n.mDeltaBytesSaved.Add(saved)
	}
	n.prevMu, n.prevCong, n.prevValid = msg.Mu, msg.Congested, true
	for _, tn := range n.controllers {
		if err := n.ep.Send(controllerAddr(tn), kindPrice, wire); err != nil {
			return fmt.Errorf("dist: resource %s: %w", n.p.Resources[n.ri].ID, err)
		}
	}
	return nil
}

// rebroadcast re-sends the cached price to the controllers whose latencies
// for the current round are still missing.
func (n *resourceNode) rebroadcast(got map[string]bool) error {
	for _, tn := range n.controllers {
		if got[tn] {
			continue
		}
		n.retransmits++
		n.mRetransmits.Inc()
		if err := n.ep.Send(controllerAddr(tn), kindPrice, n.lastPrice); err != nil {
			return fmt.Errorf("dist: resource %s: %w", n.p.Resources[n.ri].ID, err)
		}
	}
	return nil
}

// recv blocks for the next message, a retransmission timeout (attempt sizes
// the backoff), or a stop request. timedOut distinguishes the timeout case;
// stopped reports a graceful-stop request.
func recv(ep transport.Endpoint, stop <-chan struct{}, fp FaultPolicy, attempt int) (m transport.Message, ok, timedOut, stopped bool) {
	if fp.RetransmitAfter <= 0 {
		select {
		case m, ok = <-ep.Recv():
			return m, ok, false, false
		case <-stop:
			return m, false, false, true
		}
	}
	timer := time.NewTimer(transport.Backoff(attempt, fp.RetransmitAfter, fp.RetransmitMax))
	defer timer.Stop()
	select {
	case m, ok = <-ep.Recv():
		return m, ok, false, false
	case <-timer.C:
		return m, false, true, false
	case <-stop:
		return m, false, false, true
	}
}

// run executes the node until maxRounds latency rounds are processed, a stop
// message lowers the limit, or the runtime requests a shutdown. It returns
// the first protocol error.
func (n *resourceNode) run(maxRounds int) error {
	if err := n.broadcastPrice(0, false); err != nil {
		return err
	}
	limit := maxRounds
	round := 0
	attempt := 0
	// pending buffers latency messages by round (delayed transports may
	// reorder across rounds).
	pending := make(map[int][]latencyMsg)
	got := make(map[string]bool)

	for round < limit {
		m, ok, timedOut, stopped := recv(n.ep, n.stop, n.fp, attempt)
		if stopped {
			return nil
		}
		if timedOut {
			// Stalled: a controller missed our price, or its latencies were
			// lost. Nudge the silent ones with the cached price.
			attempt++
			if err := n.rebroadcast(got); err != nil {
				return err
			}
			continue
		}
		if !ok {
			if stopRequested(n.stop) {
				return nil
			}
			return fmt.Errorf("dist: resource %s: endpoint closed mid-protocol", n.p.Resources[n.ri].ID)
		}
		attempt = 0
		switch m.Kind {
		case kindLatency:
			var lm latencyMsg
			if err := m.Decode(&lm); err != nil {
				return err
			}
			if lm.Round < round {
				// Stale: that controller has not seen our current price
				// (lost, or this is a duplicate delivery). Re-send it
				// directly; the fold it triggers is idempotent.
				n.rejectedStale++
				n.mRejectedStale.Inc()
				if n.ctlSet[lm.Task] {
					n.retransmits++
					n.mRetransmits.Inc()
					if err := n.ep.Send(controllerAddr(lm.Task), kindPrice, n.lastPrice); err != nil {
						return fmt.Errorf("dist: resource %s: %w", n.p.Resources[n.ri].ID, err)
					}
				}
				continue
			}
			pending[lm.Round] = append(pending[lm.Round], lm)
		case kindStop:
			var sm stopMsg
			if err := m.Decode(&sm); err != nil {
				return err
			}
			if sm.Epoch < n.epoch {
				// A zombie coordinator from a fenced-off generation cannot
				// halt this node.
				n.fencedEpoch++
				continue
			}
			n.epoch = sm.Epoch
			if sm.AfterRound < limit {
				limit = sm.AfterRound
			}
			continue
		case kindRejoin:
			var jm rejoinMsg
			if err := m.Decode(&jm); err != nil {
				return err
			}
			if jm.Epoch < n.epoch {
				n.fencedEpoch++
			} else {
				n.epoch = jm.Epoch
			}
			continue
		default:
			return fmt.Errorf("dist: resource %s: unexpected message kind %q", n.p.Resources[n.ri].ID, m.Kind)
		}

		// Fold in everything buffered for the current round.
		for _, lm := range pending[round] {
			for sn, lat := range lm.LatMs {
				sub, ok := n.subIdx[lm.Task+"/"+sn]
				if !ok {
					return fmt.Errorf("dist: resource %s: unknown subtask %s/%s", n.p.Resources[n.ri].ID, lm.Task, sn)
				}
				n.lat[sub] = lat
			}
			got[lm.Task] = true
		}
		delete(pending, round)
		if len(got) < len(n.controllers) {
			continue // round incomplete
		}

		// Round complete: price computation (Equation 8, or the configured
		// accelerated dynamics).
		sum := 0.0
		for _, sub := range n.p.Resources[n.ri].Subs {
			ti, si := sub[0], sub[1]
			sum += n.p.Tasks[ti].Share[si].Share(n.lat[sub])
		}
		if n.dyn != nil {
			n.dyn.step(n.p, n.ri, n.agent, n.lat, sum)
		} else {
			n.agent.UpdatePrice(sum)
		}
		n.liveMu.Set(n.agent.Mu)
		if n.rm != nil {
			avail := n.p.Resources[n.ri].Availability
			n.rm.ShareSum.Set(sum)
			n.rm.Availability.Set(avail)
			n.rm.Utilization.Set(sum / avail)
			n.rm.Price.Set(n.agent.Mu)
		}
		round++
		got = make(map[string]bool)
		if round < limit {
			if err := n.broadcastPrice(round, n.agent.Congested(sum)); err != nil {
				return err
			}
		}
	}
	return n.sendFins()
}

// sendFins tells the controllers this resource has completed its final round
// so they can stop lingering on its behalf. The fin is repeated a few times
// when fault tolerance is on (it is the one message with no sender left to
// retransmit it); a surviving copy short-circuits the controller's quiet
// timeout, and losing all copies only costs that timeout.
func (n *resourceNode) sendFins() error {
	copies := 1
	if n.fp.RetransmitAfter > 0 {
		copies = 3
	}
	msg := finMsg{Resource: n.p.Resources[n.ri].ID}
	for i := 0; i < copies; i++ {
		for _, tn := range n.controllers {
			if err := n.ep.Send(controllerAddr(tn), kindFin, msg); err != nil {
				return fmt.Errorf("dist: resource %s: %w", n.p.Resources[n.ri].ID, err)
			}
		}
	}
	return nil
}

// controllerNode hosts one task's controller (Section 4.2). Each round it
// waits for the prices of every resource its subtasks use, refreshes path
// prices, re-solves latencies, and sends them to the resources.
type controllerNode struct {
	p    *core.Problem
	ti   int
	ctl  *core.Controller
	ep   transport.Endpoint
	res  []int // distinct resource indices used by the task
	name string
	// resByID resolves a price message's resource ID to its index.
	resByID map[string]int
	// reports controls whether per-round utility reports are sent to the
	// coordinator; standalone deployments have no coordinator and disable
	// them.
	reports bool

	// fp, stop and delta are installed by the runtime before run.
	fp   FaultPolicy
	stop <-chan struct{}
	// delta enables coalesced share reports (messages.go): per-resource
	// latency messages whose payload is bitwise unchanged from the previous
	// round go out as markers.
	delta bool
	// lastLat caches the latest full latency message per resource for
	// retransmission, stale recovery, and as the delta codec's reference.
	lastLat map[int]latencyMsg
	// epoch is the adopted coordinator generation; fencedEpoch counts
	// discarded stale-epoch coordinator control frames (see messages.go).
	epoch       uint64
	fencedEpoch int64
	// lastReport caches the most recent utility report so a rejoining
	// coordinator can rebuild its aggregation state; haveReport gates the
	// first round.
	lastReport reportMsg
	haveReport bool
	// rejoins counts rejoin handshakes this controller answered.
	rejoins int64
	// retransmits and rejectedStale count fault-recovery events; read by the
	// runtime after the node goroutine joins. deltaSuppressed counts
	// delta-encoded share reports, deltaBytesSaved the bytes they saved.
	retransmits     int64
	rejectedStale   int64
	deltaSuppressed int64
	deltaBytesSaved int64
	// mRetransmits/mRejectedStale mirror the counters live on an attached
	// metrics registry; nil (no-op) unless observability is attached.
	mRetransmits, mRejectedStale       *obs.Counter
	mDeltaSuppressed, mDeltaBytesSaved *obs.Counter
}

// newControllerNode wires a task controller to an endpoint.
func newControllerNode(p *core.Problem, ti int, ctl *core.Controller, ep transport.Endpoint) *controllerNode {
	n := &controllerNode{
		p:       p,
		ti:      ti,
		ctl:     ctl,
		ep:      ep,
		name:    p.Tasks[ti].Name,
		resByID: make(map[string]int, len(p.Resources)),
		reports: true,
		lastLat: make(map[int]latencyMsg),
	}
	for ri := range p.Resources {
		n.resByID[p.Resources[ri].ID] = ri
	}
	seen := make(map[int]bool)
	for _, ri := range p.Tasks[ti].Res {
		if !seen[ri] {
			seen[ri] = true
			n.res = append(n.res, ri)
		}
	}
	return n
}

// sendLatencies distributes the freshly allocated latencies, grouped per
// resource, caches the full messages for retransmission, and reports
// utility to the coordinator. With the delta codec enabled, a resource
// whose latencies are bitwise unchanged from the previous round gets a
// coalesced marker instead of the payload (except on keyframe rounds).
func (n *controllerNode) sendLatencies(round int) error {
	pt := &n.p.Tasks[n.ti]
	byRes := make(map[int]map[string]float64, len(n.res))
	for si, ri := range pt.Res {
		m := byRes[ri]
		if m == nil {
			m = make(map[string]float64)
			byRes[ri] = m
		}
		m[pt.SubtaskNames[si]] = n.ctl.LatMs[si]
	}
	for ri, lats := range byRes {
		msg := latencyMsg{Round: round, Epoch: n.epoch, Task: n.name, LatMs: lats}
		wire := msg
		if n.delta && round%deltaKeyframeInterval != 0 &&
			latMapsEqual(lats, n.lastLat[ri].LatMs) {
			wire = latencyMsg{Round: round, Epoch: n.epoch, Task: n.name, Delta: true}
			saved := encodedBytesSaved(msg, wire)
			n.deltaSuppressed++
			n.deltaBytesSaved += saved
			n.mDeltaSuppressed.Inc()
			n.mDeltaBytesSaved.Add(saved)
		}
		n.lastLat[ri] = msg
		if err := n.ep.Send(resourceAddr(n.p.Resources[ri].ID), kindLatency, wire); err != nil {
			return fmt.Errorf("dist: controller %s: %w", n.name, err)
		}
	}
	if !n.reports {
		return nil
	}
	n.lastReport = reportMsg{
		Round:   round,
		Epoch:   n.epoch,
		Task:    n.name,
		Utility: n.ctl.Utility(),
	}
	n.haveReport = true
	return n.ep.Send(coordinatorAddr, kindReport, n.lastReport)
}

// handleRejoin answers a restarted coordinator: adopt its epoch, acknowledge
// with the last reported round, and re-send the cached report re-stamped with
// the new epoch so the coordinator can resume aggregation. Stale-epoch
// rejoins (a zombie generation) are fenced; duplicate rejoins of the current
// epoch are re-acked (the handshake is idempotent under retries).
func (n *controllerNode) handleRejoin(jm rejoinMsg) error {
	if jm.Epoch < n.epoch {
		n.fencedEpoch++
		return nil
	}
	n.epoch = jm.Epoch
	n.rejoins++
	ack := rejoinAckMsg{Epoch: n.epoch, Task: n.name, Round: -1}
	if n.haveReport {
		ack.Round = n.lastReport.Round
	}
	if err := n.ep.Send(coordinatorAddr, kindRejoinAck, ack); err != nil {
		return fmt.Errorf("dist: controller %s: %w", n.name, err)
	}
	if n.haveReport && n.reports {
		n.lastReport.Epoch = n.epoch
		if err := n.ep.Send(coordinatorAddr, kindReport, n.lastReport); err != nil {
			return fmt.Errorf("dist: controller %s: %w", n.name, err)
		}
	}
	return nil
}

// latMapsEqual compares two latency payloads bitwise. A nil prev (first
// round) never matches.
func latMapsEqual(a, b map[string]float64) bool {
	if b == nil || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// rebroadcast re-sends the cached latencies to the resources whose prices
// for the current round are still missing. Before the first allocation there
// is nothing to re-send; the resources' own retransmission covers round 0.
func (n *controllerNode) rebroadcast(got map[string]bool) error {
	for _, ri := range n.res {
		if got[n.p.Resources[ri].ID] {
			continue
		}
		msg, ok := n.lastLat[ri]
		if !ok {
			continue
		}
		n.retransmits++
		n.mRetransmits.Inc()
		if err := n.ep.Send(resourceAddr(n.p.Resources[ri].ID), kindLatency, msg); err != nil {
			return fmt.Errorf("dist: controller %s: %w", n.name, err)
		}
	}
	return nil
}

// run executes the controller until maxRounds allocations are done, a stop
// message lowers the limit, or the runtime requests a shutdown.
func (n *controllerNode) run(maxRounds int) error {
	limit := maxRounds
	round := 0
	attempt := 0
	mu := make([]float64, len(n.p.Resources))
	congested := make([]bool, len(n.p.Resources))
	pending := make(map[int][]priceMsg)
	got := make(map[string]bool)

	for round < limit {
		m, ok, timedOut, stopped := recv(n.ep, n.stop, n.fp, attempt)
		if stopped {
			return nil
		}
		if timedOut {
			attempt++
			if err := n.rebroadcast(got); err != nil {
				return err
			}
			continue
		}
		if !ok {
			if stopRequested(n.stop) {
				return nil
			}
			return fmt.Errorf("dist: controller %s: endpoint closed mid-protocol", n.name)
		}
		attempt = 0
		switch m.Kind {
		case kindPrice:
			var pm priceMsg
			if err := m.Decode(&pm); err != nil {
				return err
			}
			if pm.Round < round {
				// Stale: the resource has not seen our latest latencies.
				// Re-send the cached message for that resource directly.
				n.rejectedStale++
				n.mRejectedStale.Inc()
				if ri, ok := n.resByID[pm.Resource]; ok {
					if msg, ok := n.lastLat[ri]; ok {
						n.retransmits++
						n.mRetransmits.Inc()
						if err := n.ep.Send(resourceAddr(pm.Resource), kindLatency, msg); err != nil {
							return fmt.Errorf("dist: controller %s: %w", n.name, err)
						}
					}
				}
				continue
			}
			pending[pm.Round] = append(pending[pm.Round], pm)
		case kindStop:
			var sm stopMsg
			if err := m.Decode(&sm); err != nil {
				return err
			}
			if sm.Epoch < n.epoch {
				// Fenced: a zombie coordinator cannot halt this node.
				n.fencedEpoch++
				continue
			}
			n.epoch = sm.Epoch
			if sm.AfterRound < limit {
				limit = sm.AfterRound
			}
			continue
		case kindRejoin:
			var jm rejoinMsg
			if err := m.Decode(&jm); err != nil {
				return err
			}
			if err := n.handleRejoin(jm); err != nil {
				return err
			}
			continue
		case kindFin:
			// A straggler fin from an earlier run on the same endpoints.
			continue
		default:
			return fmt.Errorf("dist: controller %s: unexpected message kind %q", n.name, m.Kind)
		}

		for _, pm := range pending[round] {
			ri, ok := n.resByID[pm.Resource]
			if !ok {
				return fmt.Errorf("dist: controller %s: unknown resource %q", n.name, pm.Resource)
			}
			if !pm.Delta {
				// A delta marker means "same as my previous round": mu and
				// congested already hold exactly that (round gating guarantees
				// the round r−1 fold happened), so only full payloads write.
				mu[ri] = pm.Mu
				congested[ri] = pm.Congested
			}
			got[pm.Resource] = true
		}
		delete(pending, round)
		if len(got) < len(n.res) {
			continue
		}

		// Round complete: latency allocation (Section 4.2).
		n.ctl.UpdatePathPrices(congested)
		n.ctl.AllocateLatencies(mu)
		if err := n.sendLatencies(round); err != nil {
			return err
		}
		round++
		got = make(map[string]bool)
	}
	return n.linger()
}

// linger keeps the controller responsive after its final allocation: a
// resource whose final-round latencies were lost retransmits its price, and
// nobody but this controller can answer. The controller re-sends the cached
// latencies until every resource has sent its fin, or until the network has
// been quiet long enough that any live resource would have retried
// (retransmission gaps are capped at RetransmitMax).
func (n *controllerNode) linger() error {
	if n.fp.RetransmitAfter <= 0 {
		return nil
	}
	window := n.fp.RetransmitMax
	if window < n.fp.RetransmitAfter {
		window = n.fp.RetransmitAfter
	}
	finned := make(map[string]bool)
	quiet := 0
	for quiet < 6 && len(finned) < len(n.res) {
		timer := time.NewTimer(window)
		select {
		case m, ok := <-n.ep.Recv():
			timer.Stop()
			if !ok {
				return nil
			}
			switch m.Kind {
			case kindFin:
				var fm finMsg
				if err := m.Decode(&fm); err == nil {
					finned[fm.Resource] = true
				}
			case kindRejoin:
				// A coordinator restarting after this controller's final
				// allocation still gets its ack and last report.
				var jm rejoinMsg
				if err := m.Decode(&jm); err != nil {
					continue
				}
				quiet = 0
				if err := n.handleRejoin(jm); err != nil {
					return err
				}
			case kindPrice:
				var pm priceMsg
				if err := m.Decode(&pm); err != nil {
					continue
				}
				// The resource is stalled on our final latencies: recover it.
				n.rejectedStale++
				n.mRejectedStale.Inc()
				quiet = 0
				if ri, ok := n.resByID[pm.Resource]; ok {
					if msg, ok := n.lastLat[ri]; ok {
						n.retransmits++
						n.mRetransmits.Inc()
						if err := n.ep.Send(resourceAddr(pm.Resource), kindLatency, msg); err != nil {
							return fmt.Errorf("dist: controller %s: %w", n.name, err)
						}
					}
				}
			}
		case <-timer.C:
			quiet++
		case <-n.stop:
			timer.Stop()
			return nil
		}
	}
	return nil
}
