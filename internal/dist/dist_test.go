package dist

import (
	"math"
	"testing"

	"lla/internal/core"
	"lla/internal/transport"
	"lla/internal/workload"
)

// The round-synchronized distributed runtime must reproduce the synchronous
// engine iterate-for-iterate over a loss-free in-order network.
func TestDistMatchesEngineExactly(t *testing.T) {
	const rounds = 200
	w := workload.Base()

	e, err := core.NewEngine(w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rounds, nil)
	want := e.Snapshot()

	rt, err := New(workload.Base(), core.Config{}, transport.NewInproc(transport.InprocConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}

	if res.Rounds != rounds {
		t.Fatalf("completed %d rounds, want %d", res.Rounds, rounds)
	}
	for ti := range want.LatMs {
		for si := range want.LatMs[ti] {
			if d := math.Abs(res.LatMs[ti][si] - want.LatMs[ti][si]); d > 1e-9 {
				t.Errorf("lat[%d][%d]: dist %v engine %v", ti, si, res.LatMs[ti][si], want.LatMs[ti][si])
			}
		}
	}
	for ri := range want.Mu {
		if d := math.Abs(res.Mu[ri] - want.Mu[ri]); d > 1e-9 {
			t.Errorf("mu[%d]: dist %v engine %v", ri, res.Mu[ri], want.Mu[ri])
		}
	}
	if d := math.Abs(res.Utility - want.Utility); d > 1e-6 {
		t.Errorf("utility: dist %v engine %v", res.Utility, want.Utility)
	}
}

// Message delay reorders deliveries but the round protocol must still
// produce the same result.
func TestDistTolerantOfDeliveryDelay(t *testing.T) {
	const rounds = 50
	e, err := core.NewEngine(workload.Base(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rounds, nil)
	want := e.Snapshot()

	net := transport.NewInproc(transport.InprocConfig{DelayMs: 1, Seed: 3})
	rt, err := New(workload.Base(), core.Config{}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	net.Wait()
	if d := math.Abs(res.Utility - want.Utility); d > 1e-6 {
		t.Errorf("utility with delay: dist %v engine %v", res.Utility, want.Utility)
	}
}

func TestDistConvergenceStop(t *testing.T) {
	rt, err := New(workload.Base(), core.Config{}, transport.NewInproc(transport.InprocConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.RunUntilConverged(3000, 1e-7, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds", res.Rounds)
	}
	if res.Rounds >= 3000 {
		t.Errorf("convergence stop did not shorten the run: %d rounds", res.Rounds)
	}
	// Converged utility matches the engine's optimum.
	if math.Abs(res.Utility-188.73) > 0.5 {
		t.Errorf("converged utility = %.2f, want ≈188.73", res.Utility)
	}
}

func TestDistOverTCP(t *testing.T) {
	w := workload.Base()
	registry := map[string]string{coordinatorAddr: "127.0.0.1:0"}
	for _, tk := range w.Tasks {
		registry[controllerAddr(tk.Name)] = "127.0.0.1:0"
	}
	for _, r := range w.Resources {
		registry[resourceAddr(r.ID)] = "127.0.0.1:0"
	}
	rt, err := New(w, core.Config{}, transport.NewTCP(registry))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const rounds = 100
	res, err := rt.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := core.NewEngine(workload.Base(), core.Config{})
	e.Run(rounds, nil)
	want := e.Snapshot()
	if d := math.Abs(res.Utility - want.Utility); d > 1e-6 {
		t.Errorf("TCP utility %v, engine %v", res.Utility, want.Utility)
	}
}

func TestDistRejectsBadInputs(t *testing.T) {
	w := workload.Base()
	w.Tasks = nil
	if _, err := New(w, core.Config{}, transport.NewInproc(transport.InprocConfig{})); err == nil {
		t.Error("invalid workload should fail")
	}

	rt, err := New(workload.Base(), core.Config{}, transport.NewInproc(transport.InprocConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Run(0); err == nil {
		t.Error("zero rounds should fail")
	}
}

func TestDistDuplicateEndpointRegistration(t *testing.T) {
	net := transport.NewInproc(transport.InprocConfig{})
	if _, err := New(workload.Base(), core.Config{}, net); err != nil {
		t.Fatal(err)
	}
	// A second runtime on the same network collides on endpoint names.
	if _, err := New(workload.Base(), core.Config{}, net); err == nil {
		t.Error("duplicate endpoints should fail")
	}
}

// Address naming is deterministic and collision-free across node types.
func TestAddressNaming(t *testing.T) {
	if resourceAddr("x") == controllerAddr("x") {
		t.Error("resource and controller addresses must differ")
	}
	if resourceAddr("a") == resourceAddr("b") {
		t.Error("distinct resources must have distinct addresses")
	}
}
