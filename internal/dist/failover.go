package dist

import (
	"fmt"
	"sync"
	"time"

	"lla/internal/obs"
	rec "lla/internal/recover"
	"lla/internal/stats"
	"lla/internal/transport"
)

// Coordinator failover (DESIGN.md §13). The coordinator is deliberately off
// the protocol's critical path: reports are fire-and-forget and round
// progress gates only on node-to-node frames, so a coordinator crash never
// stalls the optimization — it only blinds aggregation, convergence
// detection, and admission. Failover therefore has to restore exactly that
// aggregation view: a restarted coordinator loads the latest checkpoint for
// its epoch, bumps it, re-registers the live nodes with a rejoin handshake,
// and fences every frame from the dead generation so a zombie instance can
// never split-brain the cluster.

// Crash schedules one coordinator crash/restart cycle in a FailoverPlan.
type Crash struct {
	// AfterEmit triggers the crash once the coordinator has emitted this many
	// fully reported rounds.
	AfterEmit int
	// DownFor is how long the coordinator stays dead before restarting.
	DownFor time.Duration
}

// FailoverPlan drives RunWithFailover: scheduled coordinator crashes, the
// chaos layer that blackholes the dead coordinator, and the checkpoint
// directory the restarted coordinator recovers its epoch from.
type FailoverPlan struct {
	// Chaos, when non-nil, blackholes the coordinator address while it is
	// down (transport.Chaos.Crash/Restart), so in-flight reports are lost
	// exactly as they would be against a dead process.
	Chaos *transport.Chaos
	// Crashes is the schedule, executed in order.
	Crashes []Crash
	// CheckpointDir, when set, seeds the initial epoch from the newest
	// checkpoint (recover.Latest) and re-reads it at every restart — the
	// "restarted coordinator loads the latest checkpoint" path. Missing or
	// unreadable directories fall back to the in-memory epoch.
	CheckpointDir string
	// OnRestart, when non-nil, runs after each epoch bump (from the
	// coordinator goroutine) so the harness can persist a checkpoint carrying
	// the new epoch.
	OnRestart func(epoch uint64)
	// ZombieProbe, when true, has every restarted coordinator impersonate its
	// own dead generation once: a stale-epoch stop frame (AfterRound 0) is
	// sent to every rejoined controller. A correctly fencing node discards and
	// counts it; a node that failed to fence would halt immediately and the
	// run would visibly collapse.
	ZombieProbe bool
	// RelTol and Window enable convergence detection (as RunUntilConverged)
	// when Window > 0.
	RelTol float64
	Window int
}

// RunWithFailover executes up to maxRounds synchronous rounds while crashing
// and restarting the coordinator according to plan. Node state is never
// touched — the run's final latencies and prices are bitwise identical to an
// uninterrupted run — but aggregate reporting is best-effort across the
// crash gaps: rounds whose reports died with a coordinator generation are
// skipped by the emission cursor, so Result.Rounds may trail further than an
// uninterrupted run's would.
func (r *Runtime) RunWithFailover(maxRounds int, plan FailoverPlan) (*Result, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("dist: rounds must be positive, got %d", maxRounds)
	}
	var det *stats.ConvergenceDetector
	if plan.Window > 0 {
		det = stats.NewConvergenceDetector(plan.RelTol, plan.Window)
	}
	epoch := uint64(0)
	if plan.CheckpointDir != "" {
		if cp, _, err := rec.Latest(plan.CheckpointDir); err == nil {
			epoch = cp.Epoch
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, len(r.ctlNodes)*2+len(r.resNodes)*2+8)
	r.startNodes(maxRounds, &wg, errCh)

	res := &Result{UtilitySeries: stats.NewSeries("utility"), Epoch: epoch}
	coordDone := make(chan struct{})
	go r.failoverCoordinator(maxRounds, det, plan, epoch, res, errCh, coordDone)

	wg.Wait()
	r.coordinator.Close()
	<-coordDone
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	r.collect(res)
	return res, nil
}

// coordinator lifecycle states.
const (
	coordUp     = iota // normal aggregation
	coordDown          // crashed: reads nothing, remembers nothing
	coordRejoin        // restarted: collecting rejoin acks
)

// failoverCoordinator is the run-loop coordinator with a crash schedule. It
// mirrors run()'s aggregation (in-order emission, leases, admission) and adds
// the three-state crash/restart/rejoin machine around it.
func (r *Runtime) failoverCoordinator(maxRounds int, det *stats.ConvergenceDetector, plan FailoverPlan, epoch uint64, res *Result, errCh chan<- error, done chan struct{}) {
	defer close(done)
	perRound := make(map[int]float64)
	counts := make(map[int]int)
	converged := false
	nextEmit := 0
	emitted := 0
	lastReport := make(map[string]time.Time)
	expired := make(map[string]bool)
	start := time.Now()
	lastEmit := start
	for ti := range r.p.Tasks {
		lastReport[r.p.Tasks[ti].Name] = start
	}
	var lease <-chan time.Time
	if r.fp.LeaseAfter > 0 {
		t := time.NewTicker(r.fp.LeaseAfter)
		defer t.Stop()
		lease = t.C
	}

	ackWindow := r.fp.RetransmitAfter
	if ackWindow <= 0 {
		ackWindow = 20 * time.Millisecond
	}
	state := coordUp
	nextCrash := 0
	var downC, ackC <-chan time.Time
	acked := make(map[string]bool)
	maxAckRound := -1
	rejoinAttempts := 0

	// crash kills this coordinator generation: its network goes dark and its
	// aggregation memory is lost.
	crash := func() {
		if plan.Chaos != nil {
			plan.Chaos.Crash(coordinatorAddr)
		}
		perRound = make(map[int]float64)
		counts = make(map[int]int)
		state = coordDown
		downC = time.After(plan.Crashes[nextCrash].DownFor)
	}

	// restart brings a fresh generation up: reload the checkpointed epoch,
	// bump it, reconnect, and start the rejoin handshake.
	restart := func() {
		if plan.CheckpointDir != "" {
			if cp, _, err := rec.Latest(plan.CheckpointDir); err == nil && cp.Epoch > epoch {
				epoch = cp.Epoch
			}
		}
		epoch++
		res.Epoch = epoch
		res.CoordinatorRestarts++
		nextCrash++
		if plan.Chaos != nil {
			plan.Chaos.Restart(coordinatorAddr)
		}
		if plan.OnRestart != nil {
			plan.OnRestart(epoch)
		}
		if r.obsv != nil {
			r.obsv.Emit(obs.Event{Kind: obs.EventEpochBump, Round: nextEmit, Value: float64(epoch)})
		}
		now := time.Now()
		for ti := range r.p.Tasks {
			lastReport[r.p.Tasks[ti].Name] = now
		}
		expired = make(map[string]bool)
		acked = make(map[string]bool)
		maxAckRound = -1
		rejoinAttempts = 0
		r.broadcastRejoin(epoch, nil, errCh)
		state = coordRejoin
		downC = nil
		ackC = time.After(ackWindow)
	}

	if epoch > 0 {
		// Seeded from a checkpoint: announce the generation before
		// aggregating anything — nodes boot at epoch 0 and every report they
		// send would otherwise be fenced as stale.
		r.broadcastRejoin(epoch, nil, errCh)
		state = coordRejoin
		ackC = time.After(ackWindow)
	}

	// resync ends the rejoin handshake: jump the emission cursor past the
	// rounds whose reports died with the previous generation and resume.
	resync := func() {
		if maxAckRound+1 > nextEmit {
			nextEmit = maxAckRound + 1
		}
		for round := range counts {
			if round < nextEmit {
				delete(counts, round)
				delete(perRound, round)
			}
		}
		if plan.ZombieProbe {
			// Impersonate the dead generation: every rejoined controller must
			// fence this or halt on the spot.
			zombie := stopMsg{AfterRound: 0, Epoch: epoch - 1}
			for task := range acked {
				if err := r.coordinator.Send(controllerAddr(task), kindStop, zombie); err != nil {
					errCh <- err
				}
			}
		}
		state = coordUp
		ackC = nil
	}

	for {
		select {
		case m, ok := <-r.coordinator.Recv():
			if !ok {
				return
			}
			if state == coordDown {
				continue // a dead process reads nothing
			}
			switch m.Kind {
			case kindAdmitQuery:
				r.handleAdmitQuery(m, res)
				continue
			case kindRejoinAck:
				var am rejoinAckMsg
				if err := m.Decode(&am); err != nil {
					errCh <- err
					continue
				}
				if am.Epoch != epoch {
					res.FencedStale++
					continue
				}
				if !acked[am.Task] {
					acked[am.Task] = true
					res.Rejoins++
					if am.Round > maxAckRound {
						maxAckRound = am.Round
					}
				}
				if state == coordRejoin && len(acked) == len(r.ctlNodes) {
					resync()
				}
				continue
			case kindReport:
			default:
				continue
			}
			var rm reportMsg
			if err := m.Decode(&rm); err != nil {
				errCh <- err
				continue
			}
			if rm.Epoch != epoch {
				// A report from a fenced-off generation: sent before its
				// controller processed the rejoin, or retransmitted from
				// before the crash.
				res.FencedStale++
				continue
			}
			lastReport[rm.Task] = time.Now()
			delete(expired, rm.Task)
			perRound[rm.Round] += rm.Utility
			counts[rm.Round]++
			for counts[nextEmit] == len(r.ctlNodes) {
				u := perRound[nextEmit]
				res.UtilitySeries.Append(float64(nextEmit), u)
				delete(perRound, nextEmit)
				delete(counts, nextEmit)
				emitted++
				if r.dm != nil {
					now := time.Now()
					r.dm.Rounds.Inc()
					r.dm.RoundSeconds.Observe(now.Sub(lastEmit).Seconds())
					lastEmit = now
				}
				if det != nil && !converged && det.Observe(u) {
					converged = true
					res.Converged = true
					if r.obsv != nil {
						r.obsv.Emit(obs.Event{Kind: obs.EventConverged, Round: nextEmit, Value: u})
					}
					r.broadcastStop(nextEmit+1, epoch, errCh)
				}
				nextEmit++
			}
			if state == coordUp && !converged &&
				nextCrash < len(plan.Crashes) && emitted >= plan.Crashes[nextCrash].AfterEmit {
				crash()
			}
		case <-downC:
			restart()
		case <-ackC:
			if state != coordRejoin {
				continue
			}
			rejoinAttempts++
			if rejoinAttempts > 10 {
				// Some controllers never acked (already fully drained): resume
				// with the acks in hand rather than stalling the join.
				resync()
				continue
			}
			r.broadcastRejoin(epoch, acked, errCh)
			ackC = time.After(ackWindow)
		case <-lease:
			if state == coordDown {
				continue
			}
			now := time.Now()
			for task, ts := range lastReport {
				if now.Sub(ts) > r.fp.LeaseAfter && !expired[task] {
					expired[task] = true
					res.LeaseExpirations++
					if r.dm != nil {
						r.dm.LeaseExpirations.Inc()
					}
					if r.obsv != nil {
						r.obsv.Emit(obs.Event{Kind: obs.EventLeaseExpiry, Round: nextEmit, Task: task})
					}
				}
			}
		}
	}
}

// broadcastRejoin announces the new epoch. Controllers not yet in skip are
// asked to re-register (they ack and re-send their cached report); resources
// always get the announcement so they adopt the epoch for stop fencing.
func (r *Runtime) broadcastRejoin(epoch uint64, skip map[string]bool, errCh chan<- error) {
	msg := rejoinMsg{Epoch: epoch}
	for ti := range r.p.Tasks {
		name := r.p.Tasks[ti].Name
		if skip[name] {
			continue
		}
		if err := r.coordinator.Send(controllerAddr(name), kindRejoin, msg); err != nil {
			errCh <- err
		}
	}
	for ri := range r.p.Resources {
		if err := r.coordinator.Send(resourceAddr(r.p.Resources[ri].ID), kindRejoin, msg); err != nil {
			errCh <- err
		}
	}
}
