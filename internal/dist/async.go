package dist

import (
	"fmt"
	"sync"
	"time"

	"lla/internal/core"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Async mode runs LLA without round synchronization: every node computes on
// whatever prices/latencies have arrived so far and publishes its update
// immediately. This is the deployment style the optimization-flow-control
// literature analyses (gradient methods tolerate bounded staleness), and it
// is how a real system would run — the paper's controllers and resources
// exchange messages continuously rather than in lockstep. The synchronized
// Runtime remains the reference for exact engine equivalence; Async trades
// determinism for decoupling.

// AsyncResult summarizes an asynchronous run.
type AsyncResult struct {
	// Utility is the aggregate utility at the end of the run.
	Utility float64
	// LatMs[ti][si] are the final latencies.
	LatMs [][]float64
	// Mu[ri] are the final resource prices.
	Mu []float64
	// ControllerSteps and ResourceSteps count compute steps across nodes.
	ControllerSteps int
	ResourceSteps   int
}

// RunAsync executes the asynchronous protocol for the given wall-clock
// duration over the network, then quiesces and returns the final state.
// pace is the minimum interval between a node's compute steps (0 = 1ms):
// it bounds each node's update rate so that no controller/resource pair can
// spin thousands of iterations ahead of a lagging peer — unbounded relative
// staleness destabilizes the gradient updates. On a real network the
// round-trip time provides this pacing for free.
func RunAsync(w *workload.Workload, cfg core.Config, net transport.Network, d, pace time.Duration) (*AsyncResult, error) {
	if pace <= 0 {
		pace = time.Millisecond
	}
	cfg = fillConfig(cfg)
	p, err := core.Compile(w, cfg.WeightMode)
	if err != nil {
		return nil, err
	}
	newStep := newStepFactory(cfg)

	type ctlNode struct {
		ctl *core.Controller
		ep  transport.Endpoint
		ti  int
	}
	type resNode struct {
		agent *core.ResourceAgent
		ep    transport.Endpoint
		ri    int
	}

	var ctls []*ctlNode
	var ress []*resNode
	for ti := range p.Tasks {
		ep, err := net.Endpoint(controllerAddr(p.Tasks[ti].Name))
		if err != nil {
			return nil, fmt.Errorf("dist: async: %w", err)
		}
		ctls = append(ctls, &ctlNode{
			ctl: core.NewController(p, ti, newStep, cfg.Step.Gamma, cfg.Step.Adaptive, cfg.MaxInner),
			ep:  ep,
			ti:  ti,
		})
	}
	for ri := range p.Resources {
		ep, err := net.Endpoint(resourceAddr(p.Resources[ri].ID))
		if err != nil {
			return nil, fmt.Errorf("dist: async: %w", err)
		}
		ress = append(ress, &resNode{
			agent: core.NewResourceAgent(p, ri, newStep(), cfg.Step.Gamma, cfg.Step.Adaptive, cfg.InitialMu),
			ep:    ep,
			ri:    ri,
		})
	}
	defer func() {
		for _, n := range ctls {
			n.ep.Close()
		}
		for _, n := range ress {
			n.ep.Close()
		}
	}()

	stop := make(chan struct{})
	res := &AsyncResult{}
	var mu sync.Mutex // guards the step counters
	var wg sync.WaitGroup

	// Resource nodes: maintain the latest latency of each local subtask
	// (fair-split default until reported), reprice on every message batch.
	for _, n := range ress {
		wg.Add(1)
		go func(n *resNode) {
			defer wg.Done()
			r := &p.Resources[n.ri]
			lat := make(map[[2]int]float64, len(r.Subs))
			for _, sub := range r.Subs {
				ti, si := sub[0], sub[1]
				fair := r.Availability / float64(len(r.Subs))
				lat[sub] = p.Tasks[ti].Share[si].LatencyFor(fair)
			}
			broadcast := func() {
				sum := 0.0
				for _, sub := range r.Subs {
					ti, si := sub[0], sub[1]
					sum += p.Tasks[ti].Share[si].Share(lat[sub])
				}
				n.agent.UpdatePrice(sum)
				msg := priceMsg{Resource: r.ID, Mu: n.agent.Mu, Congested: n.agent.Congested(sum)}
				seen := make(map[string]bool)
				for _, sub := range r.Subs {
					tn := p.Tasks[sub[0]].Name
					if !seen[tn] {
						seen[tn] = true
						_ = n.ep.Send(controllerAddr(tn), kindPrice, msg)
					}
				}
				mu.Lock()
				res.ResourceSteps++
				mu.Unlock()
			}
			handle := func(m transport.Message) {
				if m.Kind != kindLatency {
					return
				}
				var lm latencyMsg
				if err := m.Decode(&lm); err != nil {
					return
				}
				for sn, v := range lm.LatMs {
					if sub, ok2 := subIndex(p, lm.Task, sn); ok2 {
						lat[sub] = v
					}
				}
			}
			broadcast() // seed the loop
			for {
				// Block for one message, then drain everything pending so
				// a burst coalesces into a single recompute+broadcast —
				// without coalescing each inbound message would fan out to
				// every controller and the message population would grow
				// without bound.
				select {
				case m, ok := <-n.ep.Recv():
					if !ok {
						return
					}
					handle(m)
				case <-stop:
					return
				}
			drainRes:
				for {
					select {
					case m, ok := <-n.ep.Recv():
						if !ok {
							return
						}
						handle(m)
					default:
						break drainRes
					}
				}
				broadcast()
				time.Sleep(pace)
			}
		}(n)
	}

	// Controller nodes: fold in whatever prices arrived, reallocate and
	// publish.
	for _, n := range ctls {
		wg.Add(1)
		go func(n *ctlNode) {
			defer wg.Done()
			muVec := make([]float64, len(p.Resources))
			for ri := range muVec {
				muVec[ri] = cfg.InitialMu
			}
			congested := make([]bool, len(p.Resources))
			publish := func() {
				n.ctl.UpdatePathPrices(congested)
				n.ctl.AllocateLatencies(muVec)
				pt := &p.Tasks[n.ti]
				byRes := make(map[int]map[string]float64)
				for si, ri := range pt.Res {
					if byRes[ri] == nil {
						byRes[ri] = make(map[string]float64)
					}
					byRes[ri][pt.SubtaskNames[si]] = n.ctl.LatMs[si]
				}
				for ri, lats := range byRes {
					_ = n.ep.Send(resourceAddr(p.Resources[ri].ID), kindLatency,
						latencyMsg{Task: pt.Name, LatMs: lats})
				}
				mu.Lock()
				res.ControllerSteps++
				mu.Unlock()
			}
			handle := func(m transport.Message) {
				if m.Kind != kindPrice {
					return
				}
				var pm priceMsg
				if err := m.Decode(&pm); err != nil {
					return
				}
				for ri := range p.Resources {
					if p.Resources[ri].ID == pm.Resource {
						muVec[ri] = pm.Mu
						congested[ri] = pm.Congested
						break
					}
				}
			}
			for {
				select {
				case m, ok := <-n.ep.Recv():
					if !ok {
						return
					}
					handle(m)
				case <-stop:
					return
				}
			drainCtl:
				for {
					select {
					case m, ok := <-n.ep.Recv():
						if !ok {
							return
						}
						handle(m)
					default:
						break drainCtl
					}
				}
				publish()
				time.Sleep(pace)
			}
		}(n)
	}

	time.Sleep(d)
	close(stop)
	wg.Wait()

	for _, n := range ctls {
		res.Utility += n.ctl.Utility()
		res.LatMs = append(res.LatMs, append([]float64(nil), n.ctl.LatMs...))
	}
	for _, n := range ress {
		res.Mu = append(res.Mu, n.agent.Mu)
	}
	return res, nil
}

// subIndex resolves (task name, subtask name) to compiled indices.
func subIndex(p *core.Problem, taskName, subName string) ([2]int, bool) {
	for ti := range p.Tasks {
		if p.Tasks[ti].Name != taskName {
			continue
		}
		for si, n := range p.Tasks[ti].SubtaskNames {
			if n == subName {
				return [2]int{ti, si}, true
			}
		}
	}
	return [2]int{}, false
}
