package dist

import (
	"fmt"
	"sync"
	"time"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Async mode runs LLA without round synchronization: every node computes on
// whatever prices/latencies have arrived so far and publishes its update
// immediately. This is the deployment style the optimization-flow-control
// literature analyses (gradient methods tolerate bounded staleness), and it
// is how a real system would run — the paper's controllers and resources
// exchange messages continuously rather than in lockstep. The synchronized
// Runtime remains the reference for exact engine equivalence; Async trades
// determinism for decoupling.
//
// Fault tolerance: every message carries a per-sender monotonic sequence
// number, and receivers reject duplicates and reordered-stale deliveries.
// Each node rebroadcasts its current state whenever it has been idle for
// FaultPolicy.RetransmitAfter — that rebroadcast is simultaneously the
// heartbeat that feeds failure detection and the recovery path for lost
// messages. Controllers track a lease per resource they use: when a resource
// stays silent past FaultPolicy.LeaseAfter it is marked degraded — its
// last-known price is frozen, and every allocation computed while any used
// resource is degraded is clamped deadline-safe (core.ClampDeadlineSafe), so
// stale prices can make the assignment suboptimal but never break a
// critical-time constraint. A fresh price from the resource ends the
// degradation and resynchronizes automatically.

// AsyncResult summarizes an asynchronous run.
type AsyncResult struct {
	// Utility is the aggregate utility at the end of the run.
	Utility float64
	// LatMs[ti][si] are the final latencies.
	LatMs [][]float64
	// Mu[ri] are the final resource prices.
	Mu []float64
	// ControllerSteps and ResourceSteps count compute steps across nodes.
	ControllerSteps int
	ResourceSteps   int
	// Retransmits counts idle-heartbeat rebroadcasts across all nodes.
	Retransmits int64
	// RejectedStale counts deliveries rejected by sequence-number dedup
	// (duplicates and reordered-stale messages).
	RejectedStale int64
	// DegradedRounds counts controller compute steps taken while at least
	// one used resource's lease had expired.
	DegradedRounds int64
	// SkippedSteps counts compute steps suppressed by the sparse active-set
	// path (core.Config.Sparse): the node's inputs were bitwise unchanged and
	// its previous update was a fixed point, so recomputing would reproduce
	// the exact state already published. Idle heartbeats still fire while
	// suppressed, keeping leases alive and recovering lost messages.
	SkippedSteps int64
	// MaxDegradedPathViolation is the worst relative critical-time violation
	// left after deadline-safe clamping across all degraded steps — 0 unless
	// the workload itself is degenerate.
	MaxDegradedPathViolation float64
}

// RunAsync executes the asynchronous protocol for the given wall-clock
// duration over the network with the default fault policy, then quiesces and
// returns the final state. pace is the minimum interval between a node's
// compute steps (0 = 1ms): it bounds each node's update rate so that no
// controller/resource pair can spin thousands of iterations ahead of a
// lagging peer — unbounded relative staleness destabilizes the gradient
// updates. On a real network the round-trip time provides this pacing for
// free.
func RunAsync(w *workload.Workload, cfg core.Config, net transport.Network, d, pace time.Duration) (*AsyncResult, error) {
	return RunAsyncWithPolicy(w, cfg, net, d, pace, DefaultFaultPolicy())
}

// RunAsyncWithPolicy is RunAsync with an explicit fault policy (heartbeat
// interval and failure-detection lease).
func RunAsyncWithPolicy(w *workload.Workload, cfg core.Config, net transport.Network, d, pace time.Duration, fp FaultPolicy) (*AsyncResult, error) {
	return RunAsyncObserved(w, cfg, net, d, pace, fp, nil)
}

// RunAsyncObserved is RunAsyncWithPolicy with observability attached: the
// lla_dist_* counters increment live as the fault machinery fires, resource
// gauges track each price publication, and the trace sink receives
// degraded_enter/degraded_exit events at every lease transition (plus
// lease_expiry when a controller first marks a resource silent). A nil
// observer behaves exactly like RunAsyncWithPolicy.
func RunAsyncObserved(w *workload.Workload, cfg core.Config, net transport.Network, d, pace time.Duration, fp FaultPolicy, o *obs.Observer) (*AsyncResult, error) {
	if pace <= 0 {
		pace = time.Millisecond
	}
	fp = fp.withDefaults()
	cfg = cfg.WithDefaults()
	p, err := core.Compile(w, cfg.WeightMode)
	if err != nil {
		return nil, err
	}
	newStep := cfg.NewStepSizer
	sparseOn := cfg.Sparse != core.SparseOff

	// Nil-safe metric handles: all remain nil (no-op) without a registry.
	var cRetrans, cStale, cDegraded, cLease *obs.Counter
	var rms []*obs.ResourceMetrics
	if o != nil && o.Metrics != nil {
		dm := obs.NewDistMetrics(o.Metrics)
		cRetrans, cStale = dm.Retransmits, dm.RejectedStale
		cDegraded, cLease = dm.DegradedRounds, dm.LeaseExpirations
		rms = make([]*obs.ResourceMetrics, len(p.Resources))
		for ri := range p.Resources {
			rms[ri] = obs.NewResourceMetrics(o.Metrics, p.Resources[ri].ID)
		}
	}

	type ctlNode struct {
		ctl *core.Controller
		ep  transport.Endpoint
		ti  int
	}
	type resNode struct {
		agent *core.ResourceAgent
		ep    transport.Endpoint
		ri    int
		dyn   *dynStepper
	}

	var ctls []*ctlNode
	var ress []*resNode
	for ti := range p.Tasks {
		ep, err := net.Endpoint(controllerAddr(p.Tasks[ti].Name))
		if err != nil {
			return nil, fmt.Errorf("dist: async: %w", err)
		}
		ctls = append(ctls, &ctlNode{
			ctl: core.NewController(p, ti, newStep, cfg.Step.Gamma, cfg.Step.Adaptive, cfg.MaxInner),
			ep:  ep,
			ti:  ti,
		})
	}
	for ri := range p.Resources {
		ep, err := net.Endpoint(resourceAddr(p.Resources[ri].ID))
		if err != nil {
			return nil, fmt.Errorf("dist: async: %w", err)
		}
		ress = append(ress, &resNode{
			agent: core.NewResourceAgent(p, ri, newStep(), cfg.Step.Gamma, cfg.Step.Adaptive, cfg.InitialMu),
			ep:    ep,
			ri:    ri,
			dyn:   newDynStepper(cfg),
		})
	}
	defer func() {
		for _, n := range ctls {
			n.ep.Close()
		}
		for _, n := range ress {
			n.ep.Close()
		}
	}()

	stop := make(chan struct{})
	res := &AsyncResult{}
	var mu sync.Mutex // guards the shared counters in res
	var wg sync.WaitGroup

	// fresh returns whether a message passes per-sender sequence dedup.
	// Seq 0 (a sender without the reliability layer) is always accepted.
	fresh := func(lastSeq map[string]int64, from string, seq int64) bool {
		if seq == 0 {
			return true
		}
		if seq <= lastSeq[from] {
			mu.Lock()
			res.RejectedStale++
			mu.Unlock()
			cStale.Inc()
			return false
		}
		lastSeq[from] = seq
		return true
	}

	// Resource nodes: maintain the latest latency of each local subtask
	// (fair-split default until reported), reprice on every message batch,
	// and heartbeat the current price while idle.
	for _, n := range ress {
		wg.Add(1)
		go func(n *resNode) {
			defer wg.Done()
			r := &p.Resources[n.ri]
			lat := make(map[[2]int]float64, len(r.Subs))
			for _, sub := range r.Subs {
				ti, si := sub[0], sub[1]
				fair := r.Availability / float64(len(r.Subs))
				lat[sub] = p.Tasks[ti].Share[si].LatencyFor(fair)
			}
			lastSeq := make(map[string]int64)
			var seq int64
			lastSent := time.Now()
			// publish recomputes the price from current latencies and
			// multicasts it; heartbeat re-sends the last price unchanged.
			send := func(msg priceMsg) {
				seen := make(map[string]bool)
				for _, sub := range r.Subs {
					tn := p.Tasks[sub[0]].Name
					if !seen[tn] {
						seen[tn] = true
						_ = n.ep.Send(controllerAddr(tn), kindPrice, msg)
					}
				}
				lastSent = time.Now()
			}
			// dirty tracks whether any input latency changed bitwise since the
			// last recompute; stable whether that recompute was a fixed point
			// of the agent. Both false → re-running would republish the exact
			// same price, so the sparse path skips it.
			dirty, stable := true, false
			var lastMsg priceMsg
			publish := func() {
				sum := 0.0
				for _, sub := range r.Subs {
					ti, si := sub[0], sub[1]
					sum += p.Tasks[ti].Share[si].Share(lat[sub])
				}
				if n.dyn != nil {
					stable = !n.dyn.step(p, n.ri, n.agent, lat, sum)
				} else {
					stable = !n.agent.UpdatePrice(sum)
				}
				dirty = false
				if rms != nil {
					rm := rms[n.ri]
					rm.ShareSum.Set(sum)
					rm.Availability.Set(r.Availability)
					rm.Utilization.Set(sum / r.Availability)
					rm.Price.Set(n.agent.Mu)
				}
				seq++
				lastMsg = priceMsg{Seq: seq, Resource: r.ID, Mu: n.agent.Mu, Congested: n.agent.Congested(sum)}
				send(lastMsg)
				mu.Lock()
				res.ResourceSteps++
				mu.Unlock()
			}
			handle := func(m transport.Message) {
				if m.Kind != kindLatency {
					return
				}
				var lm latencyMsg
				if err := m.Decode(&lm); err != nil {
					return
				}
				if !fresh(lastSeq, m.From, lm.Seq) {
					return
				}
				for sn, v := range lm.LatMs {
					if sub, ok2 := subIndex(p, lm.Task, sn); ok2 {
						if lat[sub] != v {
							lat[sub] = v
							dirty = true
						}
					}
				}
			}
			var tick <-chan time.Time
			if fp.RetransmitAfter > 0 {
				t := time.NewTicker(fp.RetransmitAfter)
				defer t.Stop()
				tick = t.C
			}
			publish() // seed the loop
			for {
				// Block for one message, then drain everything pending so
				// a burst coalesces into a single recompute+broadcast —
				// without coalescing each inbound message would fan out to
				// every controller and the message population would grow
				// without bound.
				select {
				case m, ok := <-n.ep.Recv():
					if !ok {
						return
					}
					handle(m)
				case <-tick:
					// Idle heartbeat: re-advertise the current price with a
					// fresh sequence number so controllers can both detect
					// liveness and recover a lost broadcast.
					if time.Since(lastSent) >= fp.RetransmitAfter {
						seq++
						lastMsg.Seq = seq
						send(lastMsg)
						mu.Lock()
						res.Retransmits++
						mu.Unlock()
						cRetrans.Inc()
					}
					continue
				case <-stop:
					return
				}
			drainRes:
				for {
					select {
					case m, ok := <-n.ep.Recv():
						if !ok {
							return
						}
						handle(m)
					default:
						break drainRes
					}
				}
				if sparseOn && !dirty && stable {
					mu.Lock()
					res.SkippedSteps++
					mu.Unlock()
					continue
				}
				publish()
				time.Sleep(pace)
			}
		}(n)
	}

	// Controller nodes: fold in whatever prices arrived, reallocate and
	// publish; track a lease per used resource and degrade to deadline-safe
	// allocations while a resource is silent.
	for _, n := range ctls {
		wg.Add(1)
		go func(n *ctlNode) {
			defer wg.Done()
			muVec := make([]float64, len(p.Resources))
			for ri := range muVec {
				muVec[ri] = cfg.InitialMu
			}
			congested := make([]bool, len(p.Resources))
			pt := &p.Tasks[n.ti]
			used := make([]int, 0, len(pt.Res))
			seenRes := make(map[int]bool)
			for _, ri := range pt.Res {
				if !seenRes[ri] {
					seenRes[ri] = true
					used = append(used, ri)
				}
			}
			lastHeard := make(map[int]time.Time, len(used))
			degraded := make(map[int]bool, len(used))
			for _, ri := range used {
				lastHeard[ri] = time.Now()
			}
			lastSeq := make(map[string]int64)
			var seq int64
			lastSent := time.Now()
			// outLat pairs a latency message with its destination resource so
			// heartbeats can re-send the whole last batch.
			type outLat struct {
				resID string
				msg   latencyMsg
			}
			var lastOut []outLat
			send := func(msgs []outLat) {
				for _, o := range msgs {
					_ = n.ep.Send(resourceAddr(o.resID), kindLatency, o.msg)
				}
				lastSent = time.Now()
			}
			// dirty tracks bitwise input changes (fresh price values, lease
			// transitions) since the last solve; stable whether that solve was
			// a fixed point. Degraded solves are never stable: the clamp
			// mutates latencies after the solve, so suppression must not
			// engage while any used resource is degraded.
			dirty, stable := true, false
			publish := func() {
				priceChanged := n.ctl.UpdatePathPrices(congested)
				latChanged := n.ctl.AllocateLatencies(muVec)
				anyDegraded := false
				for _, ri := range used {
					if degraded[ri] {
						anyDegraded = true
						break
					}
				}
				stable = !priceChanged && !latChanged && !anyDegraded
				dirty = false
				if anyDegraded {
					// Operating on a frozen (stale) price: the allocation may
					// be off-optimum, but it must never break a deadline.
					v := n.ctl.ClampDeadlineSafe()
					mu.Lock()
					res.DegradedRounds++
					if v > res.MaxDegradedPathViolation {
						res.MaxDegradedPathViolation = v
					}
					mu.Unlock()
					cDegraded.Inc()
				}
				byRes := make(map[int]map[string]float64)
				for si, ri := range pt.Res {
					if byRes[ri] == nil {
						byRes[ri] = make(map[string]float64)
					}
					byRes[ri][pt.SubtaskNames[si]] = n.ctl.LatMs[si]
				}
				seq++
				lastOut = lastOut[:0]
				for ri, lats := range byRes {
					lastOut = append(lastOut, outLat{
						resID: p.Resources[ri].ID,
						msg:   latencyMsg{Seq: seq, Task: pt.Name, LatMs: lats},
					})
				}
				send(lastOut)
				mu.Lock()
				res.ControllerSteps++
				mu.Unlock()
			}
			handle := func(m transport.Message) {
				if m.Kind != kindPrice {
					return
				}
				var pm priceMsg
				if err := m.Decode(&pm); err != nil {
					return
				}
				if !fresh(lastSeq, m.From, pm.Seq) {
					return
				}
				for ri := range p.Resources {
					if p.Resources[ri].ID == pm.Resource {
						if muVec[ri] != pm.Mu || congested[ri] != pm.Congested {
							dirty = true
						}
						muVec[ri] = pm.Mu
						congested[ri] = pm.Congested
						// A fresh price resynchronizes a degraded resource.
						lastHeard[ri] = time.Now()
						if degraded[ri] {
							dirty = true // leaving degraded changes the clamp
							if o != nil {
								o.Emit(obs.Event{Kind: obs.EventDegradedExit, Task: pt.Name, Resource: pm.Resource})
							}
						}
						degraded[ri] = false
						break
					}
				}
			}
			var tick <-chan time.Time
			if fp.RetransmitAfter > 0 {
				t := time.NewTicker(fp.RetransmitAfter)
				defer t.Stop()
				tick = t.C
			}
			for {
				recompute := false
				select {
				case m, ok := <-n.ep.Recv():
					if !ok {
						return
					}
					handle(m)
					recompute = true
				case <-tick:
					if fp.LeaseAfter > 0 {
						now := time.Now()
						for _, ri := range used {
							if !degraded[ri] && now.Sub(lastHeard[ri]) > fp.LeaseAfter {
								degraded[ri] = true
								recompute = true // re-clamp on frozen prices
								dirty = true
								cLease.Inc()
								if o != nil {
									o.Emit(obs.Event{Kind: obs.EventDegradedEnter, Task: pt.Name, Resource: p.Resources[ri].ID})
								}
							}
						}
					}
					// Idle heartbeat: re-send the last latencies so silent
					// resources can recover and observe our liveness.
					if lastOut != nil && time.Since(lastSent) >= fp.RetransmitAfter {
						seq++
						for i := range lastOut {
							lastOut[i].msg.Seq = seq
						}
						send(lastOut)
						mu.Lock()
						res.Retransmits++
						mu.Unlock()
						cRetrans.Inc()
					}
					if !recompute {
						continue
					}
				case <-stop:
					return
				}
			drainCtl:
				for {
					select {
					case m, ok := <-n.ep.Recv():
						if !ok {
							return
						}
						handle(m)
					default:
						break drainCtl
					}
				}
				if sparseOn && !dirty && stable {
					mu.Lock()
					res.SkippedSteps++
					mu.Unlock()
					continue
				}
				publish()
				time.Sleep(pace)
			}
		}(n)
	}

	time.Sleep(d)
	close(stop)
	wg.Wait()

	for _, n := range ctls {
		res.Utility += n.ctl.Utility()
		res.LatMs = append(res.LatMs, append([]float64(nil), n.ctl.LatMs...))
	}
	for _, n := range ress {
		res.Mu = append(res.Mu, n.agent.Mu)
	}
	return res, nil
}

// subIndex resolves (task name, subtask name) to compiled indices.
func subIndex(p *core.Problem, taskName, subName string) ([2]int, bool) {
	for ti := range p.Tasks {
		if p.Tasks[ti].Name != taskName {
			continue
		}
		for si, n := range p.Tasks[ti].SubtaskNames {
			if n == subName {
				return [2]int{ti, si}, true
			}
		}
	}
	return [2]int{}, false
}
