package dist

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"lla/internal/core"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Standalone nodes (one goroutine per process stand-in) without a
// coordinator must complete the protocol and agree with the engine.
func TestStandaloneNodesMatchEngine(t *testing.T) {
	const rounds = 150
	w := workload.Prototype()
	// Nodes start in arbitrary goroutine order; the registration wait lets
	// early broadcasts find late endpoints (as TCP's dial retry does).
	net := transport.NewInproc(transport.InprocConfig{RegistrationWait: 10 * time.Second})

	var wg sync.WaitGroup
	mus := make([]float64, len(w.Resources))
	utilities := make([]float64, len(w.Tasks))
	lats := make([]map[string]float64, len(w.Tasks))
	errs := make(chan error, len(w.Resources)+len(w.Tasks))

	for ri, r := range w.Resources {
		wg.Add(1)
		go func(ri int, id string) {
			defer wg.Done()
			mu, err := RunResource(context.Background(), w, core.Config{}, net, id, rounds)
			if err != nil {
				errs <- err
				return
			}
			mus[ri] = mu
		}(ri, r.ID)
	}
	for ti, tk := range w.Tasks {
		wg.Add(1)
		go func(ti int, name string) {
			defer wg.Done()
			l, u, err := RunController(context.Background(), w, core.Config{}, net, name, rounds)
			if err != nil {
				errs <- err
				return
			}
			lats[ti] = l
			utilities[ti] = u
		}(ti, tk.Name)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("standalone protocol stalled")
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	e, err := core.NewEngine(workload.Prototype(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rounds, nil)
	want := e.Snapshot()
	for ti, tk := range w.Tasks {
		for si, s := range tk.Subtasks {
			if d := math.Abs(lats[ti][s.Name] - want.LatMs[ti][si]); d > 1e-9 {
				t.Errorf("%s.%s: standalone %v engine %v", tk.Name, s.Name, lats[ti][s.Name], want.LatMs[ti][si])
			}
		}
		if d := math.Abs(utilities[ti] - want.TaskUtility[ti]); d > 1e-9 {
			t.Errorf("%s utility: standalone %v engine %v", tk.Name, utilities[ti], want.TaskUtility[ti])
		}
	}
	for ri := range w.Resources {
		if d := math.Abs(mus[ri] - want.Mu[ri]); d > 1e-9 {
			t.Errorf("mu[%d]: standalone %v engine %v", ri, mus[ri], want.Mu[ri])
		}
	}
}

func TestStandaloneUnknownNames(t *testing.T) {
	w := workload.Base()
	net := transport.NewInproc(transport.InprocConfig{})
	if _, err := RunResource(context.Background(), w, core.Config{}, net, "nope", 10); err == nil {
		t.Error("unknown resource should fail")
	}
	if _, _, err := RunController(context.Background(), w, core.Config{}, net, "nope", 10); err == nil {
		t.Error("unknown task should fail")
	}
	bad := workload.Base()
	bad.Tasks = nil
	if _, err := RunResource(context.Background(), bad, core.Config{}, net, "r0", 10); err == nil {
		t.Error("invalid workload should fail")
	}
}

func TestAddressesCoverDeployment(t *testing.T) {
	w := workload.Base()
	addrs := Addresses(w)
	want := 1 + len(w.Tasks) + len(w.Resources)
	if len(addrs) != want {
		t.Fatalf("addresses = %d, want %d", len(addrs), want)
	}
	seen := make(map[string]bool)
	for _, a := range addrs {
		if seen[a] {
			t.Errorf("duplicate address %q", a)
		}
		seen[a] = true
	}
	if !seen["coordinator"] || !seen["ctl/task1"] || !seen["res/r0"] {
		t.Errorf("missing expected addresses: %v", addrs)
	}
}
