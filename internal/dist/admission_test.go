package dist

import (
	"testing"
	"time"

	"lla/internal/admit"
	"lla/internal/core"
	"lla/internal/transport"
	"lla/internal/workload"
)

// TestCoordinatorAdmission runs a deployment on an in-process network and
// queries admission from a client endpoint mid-run: a loose candidate
// passes both coordinator gates, an impossible deadline is rejected
// statically, and both decisions land on the run's Result.
func TestCoordinatorAdmission(t *testing.T) {
	w := workload.Base()
	net := transport.NewInproc(transport.InprocConfig{})
	rt, err := New(w, core.Config{}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	client, err := net.Endpoint("client/admission")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	done := make(chan *Result, 1)
	errs := make(chan error, 1)
	go func() {
		res, err := rt.Run(4000)
		errs <- err
		done <- res
	}()

	ok, err := QueryAdmission(client, AdmissionQuery{
		Name:        "newbie",
		CriticalMs:  400,
		StageExecMs: []float64{4, 3},
		Resources:   []string{w.Resources[0].ID, w.Resources[1].ID},
		UtilityK:    2,
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Admitted || ok.Stage != admit.StagePrice {
		t.Fatalf("loose candidate: %+v", ok)
	}

	bad, err := QueryAdmission(client, AdmissionQuery{
		Name:        "impossible",
		CriticalMs:  5,
		StageExecMs: []float64{5, 5},
		Resources:   []string{w.Resources[0].ID, w.Resources[1].ID},
		UtilityK:    2,
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Admitted || bad.Stage != admit.StageStatic {
		t.Fatalf("impossible candidate: %+v", bad)
	}

	rt.Shutdown()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	res := <-done
	if len(res.Admissions) != 2 {
		t.Fatalf("recorded %d admission decisions, want 2: %+v", len(res.Admissions), res.Admissions)
	}
	if res.Admissions[0] != ok || res.Admissions[1] != bad {
		t.Fatalf("recorded decisions disagree with answers:\n%+v\nvs\n%+v %+v", res.Admissions, ok, bad)
	}
}

// TestAdmissionQueryTimeout checks the client helper fails cleanly when no
// coordinator answers.
func TestAdmissionQueryTimeout(t *testing.T) {
	net := transport.NewInproc(transport.InprocConfig{RegistrationWait: time.Millisecond})
	client, err := net.Endpoint("client/lonely")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = QueryAdmission(client, AdmissionQuery{
		Name: "nobody-home", CriticalMs: 100, StageExecMs: []float64{1}, Resources: []string{"r0"}, UtilityK: 2,
	}, 50*time.Millisecond)
	if err == nil {
		t.Fatal("expected an error with no coordinator on the network")
	}
}
