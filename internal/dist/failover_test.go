package dist

import (
	"testing"
	"time"

	"lla/internal/core"
	"lla/internal/price"
	rec "lla/internal/recover"
	"lla/internal/transport"
	"lla/internal/workload"
)

// The failover suite proves coordinator crash recovery end to end: node
// state and therefore the optimization result stay bitwise identical to the
// serial engine across coordinator generations, a restarted coordinator
// re-registers the live nodes via the rejoin handshake, and epoch fencing
// stops a zombie generation from split-braining the cluster.

// runFailoverWithDeadline guards failover runs against protocol hangs.
func runFailoverWithDeadline(t *testing.T, rt *Runtime, rounds int, plan FailoverPlan) *Result {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := rt.RunWithFailover(rounds, plan)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		return o.res
	case <-time.After(90 * time.Second):
		t.Fatal("failover run did not complete")
		return nil
	}
}

// A clean network, two scheduled coordinator crashes: the optimization result
// must be bitwise the uninterrupted engine's, every controller must rejoin
// each new generation, and the epoch must count both restarts.
func TestFailoverCoordinatorCrashMatchesEngine(t *testing.T) {
	const rounds = 120
	// DelayMs paces the rounds so the scheduled crashes land well before the
	// run drains: at full in-process speed a 120-round run can finish inside
	// a single coordinator downtime window.
	ch, inner := chaosNet(transport.ChaosConfig{Seed: 11, DelayMs: 0.3})
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	var restartEpochs []uint64
	plan := FailoverPlan{
		Chaos: ch,
		Crashes: []Crash{
			{AfterEmit: 5, DownFor: 2 * time.Millisecond},
			{AfterEmit: 15, DownFor: 2 * time.Millisecond},
		},
		OnRestart: func(e uint64) { restartEpochs = append(restartEpochs, e) },
	}
	res := runFailoverWithDeadline(t, rt, rounds, plan)
	assertMatchesEngine(t, res, rounds)
	if res.CoordinatorRestarts != 2 || res.Epoch != 2 {
		t.Errorf("restarts=%d epoch=%d, want 2 and 2", res.CoordinatorRestarts, res.Epoch)
	}
	if len(restartEpochs) != 2 || restartEpochs[0] != 1 || restartEpochs[1] != 2 {
		t.Errorf("OnRestart epochs = %v, want [1 2]", restartEpochs)
	}
	nTasks := len(workload.Base().Tasks)
	if res.Rejoins < int64(nTasks) {
		t.Errorf("rejoins = %d, want at least one full handshake (%d controllers)", res.Rejoins, nTasks)
	}
	ch.Wait()
	inner.Wait()
}

// The zombie probe: each restarted generation impersonates its dead
// predecessor with a stale-epoch stop (AfterRound 0). Fencing must discard
// and count every one — an unfenced node would halt instantly and the run
// would diverge from the engine.
func TestFailoverZombieCoordinatorFenced(t *testing.T) {
	const rounds = 100
	ch, inner := chaosNet(transport.ChaosConfig{Seed: 3})
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	plan := FailoverPlan{
		Chaos:       ch,
		Crashes:     []Crash{{AfterEmit: 8, DownFor: 10 * time.Millisecond}},
		ZombieProbe: true,
	}
	res := runFailoverWithDeadline(t, rt, rounds, plan)
	assertMatchesEngine(t, res, rounds)
	if res.FencedStale == 0 {
		t.Error("zombie probe ran but no stale-epoch frame was fenced")
	}
	ch.Wait()
	inner.Wait()
}

// Rejoin racing retransmitted pre-crash frames: loss, duplication, delay and
// reordering keep stale node-to-node frames in flight across both restarts.
// Data frames are stamped but never fenced, so recovery stays bitwise exact.
// AfterEmit 0 crashes the coordinator at the very first report, maximizing
// the population of pre-crash frames that survive into the new generation.
func TestFailoverRejoinRacesRetransmits(t *testing.T) {
	const rounds = 80
	ch, inner := chaosNet(transport.ChaosConfig{
		Seed:          19,
		LossRate:      0.08,
		DupRate:       0.08,
		DelayMs:       0.2,
		DelayJitterMs: 0.4,
		ReorderRate:   0.08,
	})
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	plan := FailoverPlan{
		Chaos:   ch,
		Crashes: []Crash{{AfterEmit: 0, DownFor: 12 * time.Millisecond}},
	}
	res := runFailoverWithDeadline(t, rt, rounds, plan)
	assertMatchesEngine(t, res, rounds)
	if res.CoordinatorRestarts != 1 {
		t.Errorf("restarts = %d, want 1", res.CoordinatorRestarts)
	}
	ch.Wait()
	inner.Wait()
}

// Report leases expiring exactly across a coordinator restart: the lease
// window is far shorter than the downtime, so every controller's lease would
// fire right as the coordinator dies. The restarted generation resets its
// lease clocks on rejoin and the run still recovers the engine bitwise.
func TestFailoverLeaseExpiresAtRestart(t *testing.T) {
	const rounds = 100
	ch, inner := chaosNet(transport.ChaosConfig{Seed: 23})
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(FaultPolicy{
		RetransmitAfter: 2 * time.Millisecond,
		RetransmitMax:   40 * time.Millisecond,
		LeaseAfter:      5 * time.Millisecond,
	})

	plan := FailoverPlan{
		Chaos:   ch,
		Crashes: []Crash{{AfterEmit: 5, DownFor: 30 * time.Millisecond}},
	}
	res := runFailoverWithDeadline(t, rt, rounds, plan)
	assertMatchesEngine(t, res, rounds)
	ch.Wait()
	inner.Wait()
}

// A restarted coordinator loads its epoch from the newest checkpoint: a
// directory seeded at generation 5 makes the first restart generation 6, and
// stops broadcast by the live generation still reach nodes that started at
// epoch 0 (fencing is strictly "below my own epoch").
func TestFailoverEpochLoadedFromCheckpoint(t *testing.T) {
	const rounds = 80
	dir := t.TempDir()
	eng, err := core.NewEngine(workload.Base(), core.Config{Workers: 1, PriceSolver: price.SolverGradient})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		eng.Step()
	}
	w, err := rec.NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Save(rec.Capture(eng, rec.CaptureOptions{Epoch: 5})); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	ch, inner := chaosNet(transport.ChaosConfig{Seed: 31, DelayMs: 0.3})
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	plan := FailoverPlan{
		Chaos:         ch,
		Crashes:       []Crash{{AfterEmit: 6, DownFor: 2 * time.Millisecond}},
		CheckpointDir: dir,
	}
	res := runFailoverWithDeadline(t, rt, rounds, plan)
	assertMatchesEngine(t, res, rounds)
	if res.Epoch != 6 {
		t.Errorf("epoch = %d, want 6 (checkpointed 5 + one bump)", res.Epoch)
	}
	ch.Wait()
	inner.Wait()
}

// Double restart back to back: two epoch bumps, two full rejoin handshakes,
// still bitwise engine-equal — the recovery machinery composes with itself.
func TestFailoverDoubleRestartBitwise(t *testing.T) {
	const rounds = 140
	ch, inner := chaosNet(transport.ChaosConfig{Seed: 47})
	rt, err := New(workload.Base(), core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	plan := FailoverPlan{
		Chaos: ch,
		Crashes: []Crash{
			{AfterEmit: 4, DownFor: 8 * time.Millisecond},
			{AfterEmit: 5, DownFor: 8 * time.Millisecond},
		},
		ZombieProbe: true,
	}
	res := runFailoverWithDeadline(t, rt, rounds, plan)
	assertMatchesEngine(t, res, rounds)
	if res.Epoch != 2 || res.CoordinatorRestarts != 2 {
		t.Errorf("epoch=%d restarts=%d, want 2 and 2", res.Epoch, res.CoordinatorRestarts)
	}
	if res.FencedStale == 0 {
		t.Error("two zombie generations probed but nothing was fenced")
	}
	ch.Wait()
	inner.Wait()
}
