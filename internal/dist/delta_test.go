package dist

import (
	"math"
	"testing"
	"time"

	"lla/internal/core"
	"lla/internal/transport"
	"lla/internal/workload"
)

// The delta-codec suite pins the tentpole's dist contract: delta-encoded
// price broadcasts and coalesced share reports change bytes on the wire,
// never bits in the result — loss-free and chaos runs alike must stay
// bitwise identical to the dense protocol and to the engine.

// frozenWorkload is a replication of the base workload that reaches a global
// bitwise fixed point (around iteration 115), so a long enough run is
// guaranteed to exercise the delta markers heavily.
func frozenWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.Replicate(workload.Base(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// assertMatchesEngineBitwise compares a dist result against the serial
// engine on the same workload with exact float equality: the delta codec's
// markers must be indistinguishable from full payloads, and Go's JSON
// encoding round-trips float64 exactly, so nothing may drift even an ulp.
func assertMatchesEngineBitwise(t *testing.T, w *workload.Workload, res *Result, rounds int) {
	t.Helper()
	e, err := core.NewEngine(w, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(rounds, nil)
	want := e.Snapshot()
	for ti := range want.LatMs {
		for si := range want.LatMs[ti] {
			if res.LatMs[ti][si] != want.LatMs[ti][si] {
				t.Errorf("lat[%d][%d]: dist %x engine %x", ti, si, res.LatMs[ti][si], want.LatMs[ti][si])
			}
		}
	}
	for ri := range want.Mu {
		if res.Mu[ri] != want.Mu[ri] {
			t.Errorf("mu[%d]: dist %x engine %x", ri, res.Mu[ri], want.Mu[ri])
		}
	}
}

// Loss-free run with the codec on (the default): past the freeze point every
// non-keyframe broadcast is a marker, so the run must report substantial
// suppression while remaining bitwise equal to the engine.
func TestDeltaLossFreeBitwiseAndSaves(t *testing.T) {
	const rounds = 200
	w := frozenWorkload(t)
	rt, err := New(w, core.Config{}, transport.NewInproc(transport.InprocConfig{QueueLen: 16384}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesEngineBitwise(t, frozenWorkload(t), res, rounds)
	if res.DeltaSuppressed == 0 {
		t.Error("frozen 200-round run sent no delta markers")
	}
	if res.DeltaBytesSaved == 0 {
		t.Error("delta markers saved no encoded bytes")
	}
}

// The same run with Sparse off must produce the same bits and zero markers:
// the dense protocol is untouched by the codec machinery.
func TestDeltaDisabledSendsFullPayloads(t *testing.T) {
	const rounds = 150
	w := frozenWorkload(t)
	rt, err := New(w, core.Config{Sparse: core.SparseOff}, transport.NewInproc(transport.InprocConfig{QueueLen: 16384}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesEngineBitwise(t, frozenWorkload(t), res, rounds)
	if res.DeltaSuppressed != 0 || res.DeltaBytesSaved != 0 {
		t.Errorf("SparseOff run still delta-encoded: suppressed=%d bytes=%d",
			res.DeltaSuppressed, res.DeltaBytesSaved)
	}
}

// Chaos-mode delta recovery: under loss, duplication and reordering the
// reliability layer re-sends cached full payloads (never markers) and
// keyframes bound marker chains, so the run reconverges to the exact same
// fixed point bitwise while still suppressing payloads past the freeze.
func TestDeltaChaosReconvergesBitwise(t *testing.T) {
	const rounds = 160
	w := frozenWorkload(t)
	ch, inner := chaosNet(transport.ChaosConfig{
		Seed:          19,
		LossRate:      0.08,
		DupRate:       0.08,
		DelayMs:       0.2,
		DelayJitterMs: 0.3,
		ReorderRate:   0.08,
	})
	rt, err := New(w, core.Config{}, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetFaultPolicy(fastPolicy())

	res := runWithDeadline(t, rt, rounds)
	assertMatchesEngineBitwise(t, frozenWorkload(t), res, rounds)
	if res.DeltaSuppressed == 0 {
		t.Error("chaos run past the freeze point sent no delta markers")
	}
	if res.Retransmits == 0 {
		t.Error("8% loss over 160 rounds recovered without a single retransmit")
	}
	ch.Wait()
	inner.Wait()
}

// Async suppression: once a node's inputs are bitwise stable and its last
// update was a fixed point, further compute steps are skipped — while idle
// heartbeats keep leases alive, so nothing degrades. The run must still
// converge to the serial optimum.
func TestAsyncSparseSuppression(t *testing.T) {
	e, err := core.NewEngine(workload.Base(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	snap, ok := e.RunUntilConverged(20000, 1e-9, 30, 1e-3)
	if !ok {
		t.Fatalf("serial engine did not converge: %v", snap)
	}

	net := transport.NewInproc(transport.InprocConfig{QueueLen: 16384})
	res, err := RunAsync(workload.Base(), core.Config{}, net, 1500*time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedSteps == 0 {
		t.Error("quiesced async run skipped no compute steps")
	}
	if res.DegradedRounds != 0 {
		t.Errorf("suppression starved a lease: %d degraded rounds", res.DegradedRounds)
	}
	if rel := math.Abs(res.Utility-snap.Utility) / math.Abs(snap.Utility); rel > 0.01 {
		t.Errorf("async utility %.3f vs serial %.3f (%.2f%% off, want ≤1%%)", res.Utility, snap.Utility, rel*100)
	}
	net.Wait()
}

// With Sparse off the async loop never suppresses.
func TestAsyncSparseOffNeverSkips(t *testing.T) {
	net := transport.NewInproc(transport.InprocConfig{QueueLen: 16384})
	res, err := RunAsync(workload.Base(), core.Config{Sparse: core.SparseOff}, net, 700*time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedSteps != 0 {
		t.Errorf("SparseOff async run skipped %d steps", res.SkippedSteps)
	}
	net.Wait()
}
