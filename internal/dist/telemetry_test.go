package dist

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/transport"
	"lla/internal/workload"
)

// Default-filling has a single source: the runtime's stored config is
// exactly core.Config{}.WithDefaults() — no dist-side defaults exist to
// drift from the engine's (step sizers likewise come only from
// core.Config.NewStepSizer; see standalone.go).
func TestConfigDefaultsSingleSource(t *testing.T) {
	net := transport.NewInproc(transport.InprocConfig{QueueLen: 64})
	rt, err := New(workload.Base(), core.Config{}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if want := (core.Config{}).WithDefaults(); !reflect.DeepEqual(rt.cfg, want) {
		t.Errorf("runtime config diverged from WithDefaults:\n got %+v\nwant %+v", rt.cfg, want)
	}
}

// Synchronized runtime with an observer: the coordinator counts rounds on
// the registry (matching the Result), resource gauges carry live
// utilization, and convergence emits a trace event.
func TestRuntimeObserveMetricsAndEvents(t *testing.T) {
	rt, err := New(workload.Base(), core.Config{}, transport.NewInproc(transport.InprocConfig{QueueLen: 8192}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	reg := obs.NewRegistry()
	mem := &obs.Memory{}
	rt.Observe(&obs.Observer{Metrics: reg, Trace: mem})

	res, err := rt.RunUntilConverged(5000, 1e-7, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("runtime did not converge")
	}

	dm := obs.NewDistMetrics(reg) // same handles: lookups are idempotent
	if got := dm.Rounds.Value(); got != int64(res.Rounds) {
		t.Errorf("lla_dist_rounds_total = %d, Result.Rounds = %d", got, res.Rounds)
	}
	if dm.RoundSeconds.Count() != uint64(res.Rounds) {
		t.Errorf("round-latency histogram has %d observations, want %d", dm.RoundSeconds.Count(), res.Rounds)
	}
	rm := obs.NewResourceMetrics(reg, workload.Base().Resources[0].ID)
	if u := rm.Utilization.Value(); u <= 0 {
		t.Errorf("resource utilization gauge = %v, want > 0", u)
	}
	conv := mem.ByKind(obs.EventConverged)
	if len(conv) != 1 {
		t.Fatalf("got %d converged events, want 1", len(conv))
	}
	if conv[0].Round == 0 || conv[0].Value == 0 {
		t.Errorf("converged event missing round/utility: %+v", conv[0])
	}
}

// traceLine is the superset of the JSONL schema the reconstruction reads:
// sample lines carry iteration telemetry, event lines carry the trace.
type traceLine struct {
	Record   string  `json:"record"`
	Event    string  `json:"event"`
	Iter     int     `json:"iter"`
	KKTMax   float64 `json:"kkt_max"`
	KKTCount int     `json:"kkt_count"`
	Task     string  `json:"task"`
	Resource string  `json:"resource"`
}

// Chaos telemetry smoke: one JSONL stream records an observed engine run
// (per-iteration KKT residuals) and an observed async run through a
// crash/restart (degradation trace events); both the residual series and
// the PR 2 degradation story must be reconstructable from the emitted
// lines, and the live registry counters must agree with the AsyncResult.
func TestChaosTelemetryJSONLReconstructs(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	reg := obs.NewRegistry()

	// Phase 1: engine with the JSONL writer as recorder — sample lines.
	e, err := core.NewEngine(workload.Base(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Observe(&obs.Observer{Recorder: j})
	e.Run(40, nil)
	e.Observe(nil)

	// Phase 2: async run under a resource crash/restart — event lines.
	ch, inner := chaosNet(transport.ChaosConfig{Seed: 11, LossRate: 0.05})
	// LeaseAfter must clear the crash window comfortably below 500ms but
	// leave generous absolute slack: sparse suppression means a quiesced
	// resource advertises at heartbeat cadence (RetransmitAfter), so a
	// too-tight lease expires spuriously under race-detector scheduling.
	fp := FaultPolicy{
		RetransmitAfter: 3 * time.Millisecond,
		RetransmitMax:   30 * time.Millisecond,
		LeaseAfter:      80 * time.Millisecond,
	}
	go func() {
		time.Sleep(400 * time.Millisecond)
		ch.Crash(resourceAddr("r0"))
		time.Sleep(500 * time.Millisecond)
		ch.Restart(resourceAddr("r0"))
	}()
	res, err := RunAsyncObserved(workload.Base(), core.Config{}, ch, 2500*time.Millisecond, time.Millisecond,
		fp, &obs.Observer{Metrics: reg, Trace: j})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("JSONL writer error: %v", err)
	}

	// Reconstruct both stories from the one stream.
	var samples, enters, exits int
	lastIter, maxResid := 0, 0.0
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var tl traceLine
		if err := json.Unmarshal(line, &tl); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		switch tl.Record {
		case "sample":
			samples++
			if tl.Iter != lastIter+1 {
				t.Fatalf("sample iterations not contiguous: %d after %d", tl.Iter, lastIter)
			}
			lastIter = tl.Iter
			if tl.KKTMax > maxResid {
				maxResid = tl.KKTMax
			}
		case "event":
			switch tl.Event {
			case obs.EventDegradedEnter:
				enters++
				if tl.Task == "" || tl.Resource != "r0" {
					t.Errorf("degraded_enter missing task/resource: %+v", tl)
				}
			case obs.EventDegradedExit:
				exits++
			}
		default:
			t.Fatalf("unknown record kind in %q", line)
		}
	}
	if samples != 40 {
		t.Errorf("reconstructed %d iteration samples, want 40", samples)
	}
	if maxResid == 0 {
		t.Error("no nonzero KKT residual in the recorded iterations")
	}
	if enters == 0 {
		t.Error("a 500ms crash with a 25ms lease emitted no degraded_enter event")
	}
	if exits == 0 {
		t.Error("restart emitted no degraded_exit event")
	}

	// Registry counters agree with the run's summary.
	dm := obs.NewDistMetrics(reg)
	if got := dm.DegradedRounds.Value(); got != res.DegradedRounds {
		t.Errorf("lla_dist_degraded_rounds_total = %d, AsyncResult.DegradedRounds = %d", got, res.DegradedRounds)
	}
	if got := dm.RejectedStale.Value(); got != res.RejectedStale {
		t.Errorf("lla_dist_rejected_stale_total = %d, AsyncResult.RejectedStale = %d", got, res.RejectedStale)
	}
	if dm.LeaseExpirations.Value() == 0 {
		t.Error("no lease expirations counted despite degradation")
	}
	ch.Wait()
	inner.Wait()
}
