package dist

import (
	"lla/internal/obs"
	"lla/internal/wire"
	"lla/internal/workload"
)

// WireCodec returns the binary frame codec preloaded with the workload's
// name dictionary (compiled resource/task/subtask order, the same order
// every node derives from the same workload), so price and latency frames
// carry varint indexes instead of entity names. reg may be nil; pass the
// run's registry to publish lla_wire_* metrics.
//
// The returned codec plugs into transport.TCP.SetCodec (genuine
// deployments) or transport.Inproc.SetCodec (in-process runs exercising
// the wire bytes).
func WireCodec(w *workload.Workload, reg *obs.Registry) *wire.Codec {
	resources := make([]string, len(w.Resources))
	for i, r := range w.Resources {
		resources[i] = r.ID
	}
	tasks := make([]string, len(w.Tasks))
	subs := make([][]string, len(w.Tasks))
	for i, t := range w.Tasks {
		tasks[i] = t.Name
		names := make([]string, len(t.Subtasks))
		for j, s := range t.Subtasks {
			names[j] = s.Name
		}
		subs[i] = names
	}
	d, err := wire.NewDict(resources, tasks, subs)
	if err != nil {
		// Duplicate names cannot come out of a compiled workload; if they
		// somehow do, string-mode frames stay correct, just larger.
		d = nil
	}
	c := wire.NewCodec(d)
	c.Observe(reg)
	return c
}
