package transport

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

type ping struct {
	N int `json:"n"`
}

func recvOne(t *testing.T, ep Endpoint) Message {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	panic("unreachable")
}

func testRoundTrip(t *testing.T, n Network) {
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send("b", "ping", ping{N: 7}); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b)
	if m.From != "a" || m.To != "b" || m.Kind != "ping" {
		t.Fatalf("envelope = %+v", m)
	}
	var p ping
	if err := m.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.N != 7 {
		t.Fatalf("payload = %+v", p)
	}

	// Reply path.
	if err := b.Send("a", "pong", ping{N: 8}); err != nil {
		t.Fatal(err)
	}
	m = recvOne(t, a)
	if m.Kind != "pong" {
		t.Fatalf("reply = %+v", m)
	}
}

func TestInprocRoundTrip(t *testing.T) {
	testRoundTrip(t, NewInproc(InprocConfig{}))
}

func TestTCPRoundTrip(t *testing.T) {
	testRoundTrip(t, NewTCP(map[string]string{
		"a": "127.0.0.1:0",
		"b": "127.0.0.1:0",
	}))
}

func TestInprocOrderingPerPair(t *testing.T) {
	n := NewInproc(InprocConfig{})
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := a.Send("b", "seq", ping{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		var p ping
		if err := recvOne(t, b).Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.N != i {
			t.Fatalf("out of order: got %d, want %d", p.N, i)
		}
	}
}

func TestInprocDuplicateAddress(t *testing.T) {
	n := NewInproc(InprocConfig{})
	if _, err := n.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatal("duplicate address should fail")
	}
	if _, err := n.Endpoint(""); err == nil {
		t.Fatal("empty address should fail")
	}
}

func TestInprocUnknownDestination(t *testing.T) {
	n := NewInproc(InprocConfig{})
	a, _ := n.Endpoint("a")
	defer a.Close()
	if err := a.Send("ghost", "ping", ping{}); err == nil {
		t.Fatal("send to unknown endpoint should fail")
	}
}

func TestInprocDropInjection(t *testing.T) {
	n := NewInproc(InprocConfig{DropRate: 0.5, Seed: 1})
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	for i := 0; i < 200; i++ {
		if err := a.Send("b", "x", ping{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	b.Close() // closes the channel so we can drain it
	for range b.Recv() {
		got++
	}
	if got < 50 || got > 150 {
		t.Fatalf("received %d of 200 at 50%% drop, want ≈100", got)
	}
}

func TestInprocDelayedDelivery(t *testing.T) {
	n := NewInproc(InprocConfig{DelayMs: 5})
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.Send("b", "x", ping{N: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~5ms", elapsed)
	}
	n.Wait()
}

func TestInprocSendAfterClose(t *testing.T) {
	n := NewInproc(InprocConfig{})
	a, _ := n.Endpoint("a")
	a.Close()
	if err := a.Send("a", "x", ping{}); err == nil {
		t.Fatal("send after close should fail")
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close should be fine")
	}
}

func TestTCPUnknownDestination(t *testing.T) {
	n := NewTCP(map[string]string{"a": "127.0.0.1:0"})
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("ghost", "x", ping{}); err == nil {
		t.Fatal("send to unregistered name should fail")
	}
}

func TestTCPManyMessagesBothDirections(t *testing.T) {
	n := NewTCP(map[string]string{
		"a": "127.0.0.1:0",
		"b": "127.0.0.1:0",
	})
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const total = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := a.Send("b", "x", ping{N: i}); err != nil {
				t.Errorf("a->b: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := b.Send("a", "y", ping{N: i}); err != nil {
				t.Errorf("b->a: %v", err)
				return
			}
		}
	}()
	gotA, gotB := 0, 0
	deadline := time.After(10 * time.Second)
	for gotA < total || gotB < total {
		select {
		case <-a.Recv():
			gotA++
		case <-b.Recv():
			gotB++
		case <-deadline:
			t.Fatalf("timeout: a=%d b=%d of %d", gotA, gotB, total)
		}
	}
	wg.Wait()
}

func TestTCPEndpointRequiresRegistryEntry(t *testing.T) {
	n := NewTCP(nil)
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatal("unregistered endpoint should fail")
	}
	n.Register("a", "127.0.0.1:0")
	ep, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
}

func TestTCPSendAfterClose(t *testing.T) {
	n := NewTCP(map[string]string{"a": "127.0.0.1:0", "b": "127.0.0.1:0"})
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer b.Close()
	a.Close()
	if err := a.Send("b", "x", ping{}); err == nil {
		t.Fatal("send after close should fail")
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close should be fine")
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	msg, err := encode("a", "b", "kind", ping{N: 42})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encodeFrame(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != "kind" || back.From != "a" {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Zero length.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame should fail")
	}
	// Absurd length.
	if _, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Error("oversized frame should fail")
	}
	// Truncated body.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 10, 'x'})); err == nil {
		t.Error("truncated frame should fail")
	}
	// Invalid JSON body.
	frame := []byte{0, 0, 0, 3, 'x', 'y', 'z'}
	if _, err := readFrame(bytes.NewReader(frame)); err == nil {
		t.Error("non-JSON frame should fail")
	}
}

func TestEncodeUnserializablePayload(t *testing.T) {
	n := NewInproc(InprocConfig{})
	a, _ := n.Endpoint("a")
	defer a.Close()
	if err := a.Send("a", "x", func() {}); err == nil {
		t.Fatal("unserializable payload should fail")
	}
}

func TestMessageDecodeError(t *testing.T) {
	m := Message{Kind: "x", Payload: []byte(`{"n": "notanint"}`)}
	var p ping
	if err := m.Decode(&p); err == nil {
		t.Fatal("type mismatch should fail")
	}
}
