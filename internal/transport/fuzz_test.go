package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the TCP frame decoder against arbitrary bytes: it
// must never panic and must round-trip frames it produced itself.
func FuzzReadFrame(f *testing.F) {
	msg, err := encode("a", "b", "kind", map[string]int{"x": 1})
	if err != nil {
		f.Fatal(err)
	}
	frame, err := encodeFrame(msg)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input is expected to fail cleanly
		}
		// A successfully decoded message must re-encode.
		if _, err := encodeFrame(got); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
	})
}
