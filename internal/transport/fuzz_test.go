package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame hardens the TCP frame decoder against arbitrary bytes: it
// must never panic, must round-trip frames it produced itself, and must
// reject truncated, oversized, and corrupt length-prefixed input with an
// error rather than a crash or a hostile-length allocation.
func FuzzReadFrame(f *testing.F) {
	msg, err := encode("a", "b", "kind", map[string]int{"x": 1})
	if err != nil {
		f.Fatal(err)
	}
	frame, err := encodeFrame(msg)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	// Truncated length prefixes.
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 0})
	// Length prefix claims far more body than the stream carries.
	f.Add([]byte{0, 0xf0, 0, 0, 'x', 'y'})
	// Length prefix exactly one past the frame limit.
	f.Add(binary.BigEndian.AppendUint32(nil, maxFrameBytes+1))
	// Valid frame followed by trailing garbage (stream framing must stop at
	// the declared length).
	f.Add(append(append([]byte{}, frame...), 0xde, 0xad))
	// Declared length larger than the JSON body it carries.
	f.Add(append([]byte{0, 0, 0, 9}, '{', '}'))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input is expected to fail cleanly
		}
		// A successful decode consumed a well-formed prefix: the input must
		// have carried at least the declared body.
		if len(data) < 4 {
			t.Fatalf("decoded a frame from %d bytes (< header)", len(data))
		}
		if n := binary.BigEndian.Uint32(data); uint64(len(data)) < 4+uint64(n) {
			t.Fatalf("decoded %d-byte body from %d-byte input", n, len(data))
		}
		// A successfully decoded message must re-encode.
		if _, err := encodeFrame(got); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
	})
}

// A length prefix claiming megabytes on a truncated stream must error
// without allocating the declared size up front.
func TestReadFrameHostileLengthTruncatedBody(t *testing.T) {
	hostile := binary.BigEndian.AppendUint32(nil, maxFrameBytes-1)
	hostile = append(hostile, []byte("only a few bytes")...)
	if _, err := readFrame(bytes.NewReader(hostile)); err == nil {
		t.Fatal("truncated 16MB claim should fail")
	}
	// Enough runs to amortize stray allocations from earlier tests'
	// connection goroutines still unwinding in the background.
	allocs := testing.AllocsPerRun(200, func() {
		_, _ = readFrame(bytes.NewReader(hostile))
	})
	// The incremental copy allocates the buffer struct and one ~32KiB copy
	// chunk — a handful of allocations, never the declared 16MB in one shot.
	if allocs > 10 {
		t.Errorf("truncated hostile frame cost %.0f allocations per read", allocs)
	}
}
